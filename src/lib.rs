//! # tesseract-repro
//!
//! Root facade for the reproduction of *Tesseract: Parallelize the Tensor
//! Parallelism Efficiently* (ICPP '22). Re-exports the workspace crates so
//! examples and integration tests can use a single dependency:
//!
//! * [`tensor`] — dense/shadow tensor substrate.
//! * [`comm`] — simulated multi-GPU cluster with collectives and cost model.
//! * [`core`] — the Tesseract 2.5-D algorithm, layers and analysis.
//! * [`baselines`] — Cannon/SUMMA/2.5-D matmuls, Megatron-LM 1-D, Optimus 2-D.
//! * [`hybrid`] — data/pipeline parallelism composition (Figure 6).
//! * [`train`] — optimizers, synthetic dataset, ViT, trainer (Figure 7).

pub use tesseract_baselines as baselines;
pub use tesseract_comm as comm;
pub use tesseract_core as core;
pub use tesseract_hybrid as hybrid;
pub use tesseract_tensor as tensor;
pub use tesseract_train as train;
