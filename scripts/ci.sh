#!/usr/bin/env sh
# Tier-1 verification entry point (see ROADMAP.md). Everything runs
# --offline: the workspace has no registry dependencies by construction
# (DESIGN.md §5), so CI must prove it stays that way.
set -eu
cd "$(dirname "$0")/.."

echo "== fmt check =="
cargo fmt --check

# Every TESSERACT_* environment knob is parsed in exactly one place —
# RunConfig::from_env — so configuration stays auditable. Any other
# env::var("TESSERACT_ read is a regression.
echo "== env-knob gate (TESSERACT_* reads live only in RunConfig) =="
stray=$(grep -rn 'env::var("TESSERACT_' crates src --include='*.rs' \
    | grep -v '^crates/comm/src/runconfig.rs:' || true)
if [ -n "$stray" ]; then
    echo "ci.sh: TESSERACT_* env reads outside crates/comm/src/runconfig.rs:"
    echo "$stray"
    exit 1
fi

# Traces are regenerated artifacts (serve_sweep writes them under target/);
# none may be committed.
echo "== trace-artifact gate (no committed TRACE_*.json) =="
if git ls-files | grep -q '^TRACE_.*\.json$'; then
    echo "ci.sh: TRACE_*.json artifacts must not be committed (write under target/)"
    exit 1
fi

echo "== build (release, offline, deny warnings) =="
RUSTFLAGS="-D warnings" cargo build --workspace --release --offline

echo "== test (offline) =="
cargo test -q --workspace --offline

# The sweep itself enforces per-path bitwise parity at every swept thread
# count before accepting a timing; CI additionally proves a TESSERACT_KERNEL
# override is honored end-to-end (forced run must report the forced path).
echo "== gemm_sweep smoke (tiny sizes, forced scalar path) =="
TESSERACT_KERNEL=scalar cargo run -q --release --offline -p tesseract-bench --bin gemm_sweep -- \
    --sizes 96,128 --reps 2 --threads 1,2 --out target/BENCH_kernels.smoke.scalar.json
grep -q '"kernel": "scalar"' target/BENCH_kernels.smoke.scalar.json \
    || { echo "ci.sh: forced scalar kernel not reported in sweep JSON"; exit 1; }
grep -q '"kernel_forced": true' target/BENCH_kernels.smoke.scalar.json \
    || { echo "ci.sh: kernel_forced flag missing for forced run"; exit 1; }

echo "== gemm_sweep smoke (auto-detected path, 2-thread pool) =="
TESSERACT_THREADS=2 cargo run -q --release --offline -p tesseract-bench --bin gemm_sweep -- \
    --sizes 96,128 --reps 2 --threads 1,2 --out target/BENCH_kernels.smoke.json
grep -Eq '"kernel": "(scalar|avx2)"' target/BENCH_kernels.smoke.json \
    || { echo "ci.sh: auto-detect run reported no kernel path"; exit 1; }
grep -q '"pool_threads": 2' target/BENCH_kernels.smoke.json \
    || { echo "ci.sh: TESSERACT_THREADS=2 not reflected in sweep JSON"; exit 1; }

# Hosts that auto-detect AVX2 must also honor forcing it explicitly.
if grep -q '"kernel": "avx2"' target/BENCH_kernels.smoke.json; then
    echo "== gemm_sweep smoke (forced avx2 path) =="
    TESSERACT_KERNEL=avx2 cargo run -q --release --offline -p tesseract-bench --bin gemm_sweep -- \
        --sizes 96 --reps 2 --threads 1,2 --out target/BENCH_kernels.smoke.avx2.json
    grep -q '"kernel": "avx2"' target/BENCH_kernels.smoke.avx2.json \
        || { echo "ci.sh: forced avx2 kernel not reported in sweep JSON"; exit 1; }
fi

# The copy-regression gate itself is crates/core/tests/collectives_parity.rs
# (runs under `cargo test` above): any reintroduced per-receiver clone in the
# SUMMA hot loop fails the `total_copies() == 0` assertions.
echo "== collectives_sweep smoke (tiny sizes) =="
cargo run -q --release --offline -p tesseract-bench --bin collectives_sweep -- \
    --sizes 64 --reps 2 --iters 4 --out target/BENCH_collectives.smoke.json

# The bitwise-parity gate itself is crates/core/tests/overlap_parity.rs (runs
# under `cargo test` above); the sweep additionally re-checks parity per size.
echo "== overlap_sweep smoke (tiny sizes) =="
cargo run -q --release --offline -p tesseract-bench --bin overlap_sweep -- \
    --sizes 64 --out target/BENCH_overlap.smoke.json

# trace_dump reconciles the event trace against Meter/CommStats internally
# (panics on mismatch) and re-parses its own Chrome JSON before writing.
echo "== trace_dump smoke (tiny grid) =="
cargo run -q --release --offline -p tesseract-bench --bin trace_dump -- \
    --grid 2,2 --n 64 --out target/TRACE.smoke.json
test -s target/TRACE.smoke.json || { echo "trace_dump wrote no JSON"; exit 1; }

# comm_cost_table asserts the two-level cost model's bounds internally
# (hierarchical within [NVLink floor, flat charge]; intra-node == flat;
# node-sharing placements win somewhere); CI re-checks the two headline
# facts on the emitted JSON: a size crossover exists, and intra-node
# groups never pay more than flat.
echo "== comm_cost_table smoke (hierarchical crossover) =="
cargo run -q --release --offline -p tesseract-bench --bin comm_cost_table -- \
    --out target/BENCH_comm.smoke.json > /dev/null
grep -q '"crossover_bytes": [0-9]' target/BENCH_comm.smoke.json \
    || { echo "ci.sh: no hierarchical-vs-flat crossover entry in BENCH_comm"; exit 1; }
grep -q '"intra_node_hier_exceeds_flat": false' target/BENCH_comm.smoke.json \
    || { echo "ci.sh: hierarchical cost exceeded flat on an intra-node group"; exit 1; }

# plan_sweep asserts internally that the planner re-derives the measured
# Table 1 winner from topology + workload alone (no hand-picked grid), and
# round-trips its JSON through the in-tree parser before writing; CI
# re-checks both facts on the emitted file.
echo "== plan_sweep smoke (Table 1 winner re-derivation) =="
cargo run -q --release --offline -p tesseract-bench --bin plan_sweep -- \
    --mode table1 --out target/BENCH_plan.smoke.json > /dev/null
grep -q '"winner": "tesseract\[4,4,4\]"' target/BENCH_plan.smoke.json \
    || { echo "ci.sh: planner did not select the Table 1 winner [4,4,4]"; exit 1; }
grep -q '"matches_expected": true' target/BENCH_plan.smoke.json \
    || { echo "ci.sh: plan_sweep winner does not match the measured table"; exit 1; }

# serve_sweep re-checks the serving-engine invariants internally (identical
# results on every rank, meter/engine counter reconciliation, ordered
# percentiles, latency growth past the saturation knee) and panics on any
# violation; CI greps the invariant lines it prints only after those asserts
# held, then proves the whole open-loop sweep is deterministic by running it
# twice and byte-comparing both the bench JSON and the Chrome trace.
echo "== serve_sweep smoke (tiny grid, open-loop determinism) =="
cargo run -q --release --offline -p tesseract-bench --bin serve_sweep -- \
    --grids 2,1 --requests 8 --out target/BENCH_serving.smoke.json \
    --trace-out target/TRACE_serving.smoke.json > target/serve_sweep.smoke.log
grep -q 'invariant ok: p99 >= p50 at every load point' target/serve_sweep.smoke.log \
    || { echo "ci.sh: serve_sweep p99 >= p50 invariant missing"; exit 1; }
grep -q 'invariant ok: nonzero throughput at every load point' target/serve_sweep.smoke.log \
    || { echo "ci.sh: serve_sweep nonzero-throughput invariant missing"; exit 1; }
grep -q 'invariant ok: latency grows past the saturation knee' target/serve_sweep.smoke.log \
    || { echo "ci.sh: serve_sweep saturation-knee invariant missing"; exit 1; }
cargo run -q --release --offline -p tesseract-bench --bin serve_sweep -- \
    --grids 2,1 --requests 8 --out target/BENCH_serving.smoke2.json \
    --trace-out target/TRACE_serving.smoke2.json > /dev/null
cmp target/BENCH_serving.smoke.json target/BENCH_serving.smoke2.json \
    || { echo "ci.sh: serve_sweep reruns are not byte-identical"; exit 1; }
cmp target/TRACE_serving.smoke.json target/TRACE_serving.smoke2.json \
    || { echo "ci.sh: serve_sweep trace reruns are not byte-identical"; exit 1; }
test -s target/TRACE_serving.smoke.json \
    || { echo "ci.sh: serve_sweep wrote no trace"; exit 1; }
grep -q '"traceEvents"' target/TRACE_serving.smoke.json \
    || { echo "ci.sh: serve_sweep trace is not Chrome-trace JSON"; exit 1; }

# sp_sweep asserts per rank, at every swept point, that sequence
# parallelism strictly lowers the measured tape peak and recomputation
# lowers it further, and that SP's non-boundary collective count never
# exceeds dense; the greppable lines print only after those asserts held.
echo "== sp_sweep smoke (tiny grids, SP memory + collective ledger) =="
cargo run -q --release --offline -p tesseract-bench --bin sp_sweep -- \
    --grids 2,1 --seqs 64,256 --out target/BENCH_sp.smoke.json > target/sp_sweep.smoke.log
grep -q 'measured-peak bytes/GPU' target/sp_sweep.smoke.log \
    || { echo "ci.sh: sp_sweep measured-peak column missing"; exit 1; }
grep -q 'sp_peak_lt_dense:true' target/sp_sweep.smoke.log \
    || { echo "ci.sh: sp_sweep SP-below-dense invariant missing"; exit 1; }
grep -q 'rc_peak_lt_sp:true' target/sp_sweep.smoke.log \
    || { echo "ci.sh: sp_sweep recompute-below-SP invariant missing"; exit 1; }
grep -q 'sp_collectives_flat:true' target/sp_sweep.smoke.log \
    || { echo "ci.sh: sp_sweep collective-flatness invariant missing"; exit 1; }
echo "ci.sh: OK"
