#!/usr/bin/env sh
# Tier-1 verification entry point (see ROADMAP.md). Everything runs
# --offline: the workspace has no registry dependencies by construction
# (DESIGN.md §5), so CI must prove it stays that way.
set -eu
cd "$(dirname "$0")/.."

echo "== fmt check =="
cargo fmt --check

echo "== build (release, offline, deny warnings) =="
RUSTFLAGS="-D warnings" cargo build --workspace --release --offline

echo "== test (offline) =="
cargo test -q --workspace --offline

echo "== gemm_sweep smoke (tiny sizes) =="
cargo run -q --release --offline -p tesseract-bench --bin gemm_sweep -- \
    --sizes 96,128 --reps 2 --out target/BENCH_kernels.smoke.json

# The copy-regression gate itself is crates/core/tests/collectives_parity.rs
# (runs under `cargo test` above): any reintroduced per-receiver clone in the
# SUMMA hot loop fails the `total_copies() == 0` assertions.
echo "== collectives_sweep smoke (tiny sizes) =="
cargo run -q --release --offline -p tesseract-bench --bin collectives_sweep -- \
    --sizes 64 --reps 2 --iters 4 --out target/BENCH_collectives.smoke.json

# The bitwise-parity gate itself is crates/core/tests/overlap_parity.rs (runs
# under `cargo test` above); the sweep additionally re-checks parity per size.
echo "== overlap_sweep smoke (tiny sizes) =="
cargo run -q --release --offline -p tesseract-bench --bin overlap_sweep -- \
    --sizes 64 --out target/BENCH_overlap.smoke.json
echo "ci.sh: OK"
