//! Optimus (paper §1/§2.2; Xu et al. 2021): 2-D tensor parallelism for
//! Transformers built on SUMMA.
//!
//! Algorithmically, Optimus is exactly the `d = 1` slice of Tesseract —
//! the paper's own Table 1 shows Tesseract `[2,2,1]` matching Optimus
//! `[2,2]` within noise (0.1666 s vs 0.1676 s forward). We therefore
//! instantiate the 2-D baseline as the Tesseract Transformer on a
//! `[q, q, 1]` grid (whose matmuls were *tested* to be bitwise equal to
//! the standalone SUMMA implementation in [`crate::summa`]), wrapped in
//! its own type so experiment code reads naturally.

use std::sync::Arc;

use tesseract_comm::{Payload, RankCtx};
use tesseract_core::module::{Module, ParamRef};
use tesseract_core::{GridShape, TesseractGrid, TesseractTransformer, TransformerConfig};
use tesseract_tensor::TensorLike;

/// Creates the `[q, q]` mesh Optimus runs on.
pub fn optimus_mesh(ctx: &RankCtx, q: usize, base: usize) -> TesseractGrid {
    TesseractGrid::new(ctx, GridShape::new(q, 1), base)
}

/// The Optimus 2-D Transformer stack.
pub struct OptimusTransformer<T> {
    inner: TesseractTransformer<T>,
}

impl<T: TensorLike + Payload> OptimusTransformer<T> {
    /// Builds the stack on a `[q, q]` mesh. `grid` must be depth-1.
    pub fn new(
        ctx: &RankCtx,
        grid: &TesseractGrid,
        cfg: TransformerConfig,
        with_bias: bool,
        seed: u64,
        base_param_id: u64,
    ) -> Self {
        assert_eq!(grid.shape.d, 1, "Optimus is the 2-D (d = 1) scheme");
        Self { inner: TesseractTransformer::new(ctx, grid, cfg, with_bias, seed, base_param_id) }
    }
}

impl<T: TensorLike + Payload> Module<T> for OptimusTransformer<T> {
    fn forward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        self.inner.forward(grid, ctx, x)
    }

    fn backward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, dy: &Arc<T>) -> Arc<T> {
        self.inner.backward(grid, ctx, dy)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_, T>)) {
        self.inner.visit_params(f);
    }

    fn zero_grad(&mut self) {
        self.inner.zero_grad();
    }
}
