//! Solomonik & Demmel's 2.5-D matrix multiplication (paper §2.3):
//! replicate the inputs across `d` layers, split the reduction dimension
//! across layers, and combine partial results with a depth all-reduce.
//!
//! The original paper formulates the per-layer schedule with Cannon-style
//! shifts; we use the SUMMA-style broadcast schedule (each layer performs
//! `q/d` of the `q` broadcast steps), which moves the same asymptotic
//! volume `Θ(n²/√(d·p))` and keeps the comparison with Tesseract apples to
//! apples (both then differ only in *what* is replicated: 2.5-D replicates
//! `A`, `B` **and** accumulates `C` across layers, Tesseract replicates
//! only `B`). This substitution is recorded in DESIGN.md.
//!
//! Requires `d | q`.

use tesseract_comm::{Payload, RankCtx};
use tesseract_core::{GridShape, TesseractGrid};
use tesseract_tensor::TensorLike;

/// Creates the `[q, q, d]` grid for the 2.5-D algorithm.
pub fn solomonik_grid(ctx: &RankCtx, q: usize, d: usize, base: usize) -> TesseractGrid {
    assert_eq!(q % d, 0, "2.5-D needs d | q");
    TesseractGrid::new(ctx, GridShape::new(q, d), base)
}

/// `C = A·B` on the 2.5-D grid.
///
/// Inputs live on layer 0 as natural `q×q` blocks (`[a/q, b/q]`,
/// `[b/q, c/q]`); the function returns this rank's `[a/q, c/q]` block of
/// `C`, valid on **every** layer (replicated by the final all-reduce).
/// Ranks on layers `k > 0` pass `None`.
pub fn solomonik_matmul<T>(
    grid: &TesseractGrid,
    ctx: &mut RankCtx,
    a_local: Option<T>,
    b_local: Option<T>,
) -> T
where
    T: TensorLike + Payload,
{
    let q = grid.shape.q;
    let d = grid.shape.d;
    assert_eq!(q % d, 0, "2.5-D needs d | q");
    let (i, j, k) = grid.coords;
    assert_eq!(a_local.is_some(), k == 0, "layer-0 ranks must provide A");
    assert_eq!(b_local.is_some(), k == 0, "layer-0 ranks must provide B");

    // Step 1: replicate A and B across the depth fiber.
    let a = grid.depth.broadcast(ctx, 0, a_local);
    let b = grid.depth.broadcast(ctx, 0, b_local);

    // Step 2: layer k performs SUMMA steps t ∈ [k·q/d, (k+1)·q/d).
    let steps = q / d;
    let mut c: Option<T> = None;
    for s in 0..steps {
        let t = k * steps + s;
        let a_t = grid.row.broadcast(ctx, t, (j == t).then(|| a.clone()));
        let b_t = grid.col.broadcast(ctx, t, (i == t).then(|| b.clone()));
        let partial = a_t.matmul(&b_t, &mut ctx.meter);
        match c.as_mut() {
            None => c = Some(partial),
            Some(acc) => acc.add_assign(&partial, &mut ctx.meter),
        }
    }
    let c = c.expect("q/d >= 1");

    // Step 3: sum the per-layer partial products across depth.
    if d > 1 {
        grid.depth.all_reduce(ctx, c)
    } else {
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesseract_comm::Cluster;
    use tesseract_core::partition::{b_block, combine_b};
    use tesseract_tensor::{assert_slices_close, matmul, DenseTensor, Matrix, Xoshiro256StarStar};

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
    }

    fn run(q: usize, d: usize, a: &Matrix, b: &Matrix) -> Vec<Matrix> {
        let shape2d = GridShape::new(q, 1);
        Cluster::a100(q * q * d)
            .run(|ctx| {
                let grid = solomonik_grid(ctx, q, d, 0);
                let (i, j, k) = grid.coords;
                let a_loc = (k == 0).then(|| DenseTensor::from_matrix(b_block(a, shape2d, i, j)));
                let b_loc = (k == 0).then(|| DenseTensor::from_matrix(b_block(b, shape2d, i, j)));
                solomonik_matmul(&grid, ctx, a_loc, b_loc).into_matrix()
            })
            .results
    }

    #[test]
    fn matches_serial_2x2x2() {
        let (q, d) = (2, 2);
        let a = random(4, 6, 1);
        let b = random(6, 4, 2);
        let results = run(q, d, &a, &b);
        // Layer 0's blocks assemble to the global product.
        let layer0: Vec<Matrix> = results[..q * q].to_vec();
        let got = combine_b(&layer0, GridShape::new(q, 1));
        assert_slices_close(got.data(), matmul::matmul(&a, &b).data(), 1e-4);
    }

    #[test]
    fn matches_serial_4x4x2() {
        let (q, d) = (4, 2);
        let a = random(8, 8, 3);
        let b = random(8, 8, 4);
        let results = run(q, d, &a, &b);
        let layer0: Vec<Matrix> = results[..q * q].to_vec();
        let got = combine_b(&layer0, GridShape::new(q, 1));
        assert_slices_close(got.data(), matmul::matmul(&a, &b).data(), 1e-4);
    }

    #[test]
    fn result_is_replicated_across_layers() {
        let (q, d) = (2, 2);
        let a = random(4, 4, 5);
        let b = random(4, 4, 6);
        let results = run(q, d, &a, &b);
        for off in q * q..2 * q * q {
            assert_eq!(results[off], results[off - q * q], "layer 1 must mirror layer 0");
        }
    }

    #[test]
    fn d1_degenerates_to_summa() {
        // §2.3: "In special cases like d = 1, the 2.5-D algorithm
        // degenerates to [the 2-D algorithm]".
        let q = 2;
        let a = random(4, 4, 7);
        let b = random(4, 4, 8);
        let results = run(q, 1, &a, &b);
        let got = combine_b(&results, GridShape::new(q, 1));
        assert_slices_close(got.data(), matmul::matmul(&a, &b).data(), 1e-4);
    }

    #[test]
    #[should_panic(expected = "d | q")]
    fn rejects_indivisible_depth() {
        let _ = run(3, 2, &random(6, 6, 9), &random(6, 6, 10));
    }
}
