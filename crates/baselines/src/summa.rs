//! SUMMA (paper §2.2, Algorithm 2): 2-D matmul by row/column broadcasts on
//! a `[q, q]` mesh — the algorithm Optimus builds on and the `d = 1`
//! special case of Tesseract. Implemented standalone (not by delegating to
//! `tesseract_matmul`) so the equivalence `SUMMA ≡ Tesseract(d=1)` can be
//! *tested* rather than assumed.

use tesseract_comm::{Payload, RankCtx};
use tesseract_core::{GridShape, TesseractGrid};
use tesseract_tensor::TensorLike;

/// Creates the `[q, q]` mesh SUMMA runs on.
pub fn summa_mesh(ctx: &RankCtx, q: usize, base: usize) -> TesseractGrid {
    TesseractGrid::new(ctx, GridShape::new(q, 1), base)
}

/// `C = A·B` with all matrices in natural `q×q` block layout.
pub fn summa_matmul<T>(grid: &TesseractGrid, ctx: &mut RankCtx, a_local: &T, b_local: &T) -> T
where
    T: TensorLike + Payload,
{
    assert_eq!(grid.shape.d, 1, "SUMMA runs on a [q, q] mesh");
    let q = grid.shape.q;
    let (i, j, _) = grid.coords;
    let mut c: Option<T> = None;
    for t in 0..q {
        let a_t = grid.row.broadcast(ctx, t, (j == t).then(|| a_local.clone()));
        let b_t = grid.col.broadcast(ctx, t, (i == t).then(|| b_local.clone()));
        let partial = a_t.matmul(&b_t, &mut ctx.meter);
        match c.as_mut() {
            None => c = Some(partial),
            Some(acc) => acc.add_assign(&partial, &mut ctx.meter),
        }
    }
    c.expect("q >= 1")
}

/// SUMMA backward rules (Eq. 3): `A' = C'·Bᵀ`.
pub fn summa_matmul_nt<T>(grid: &TesseractGrid, ctx: &mut RankCtx, a_local: &T, b_local: &T) -> T
where
    T: TensorLike + Payload,
{
    let q = grid.shape.q;
    let (i, j, _) = grid.coords;
    let mut mine: Option<T> = None;
    for t in 0..q {
        let b_t = grid.col.broadcast(ctx, t, (i == t).then(|| b_local.clone()));
        let partial = a_local.matmul_nt(&b_t, &mut ctx.meter);
        let reduced = grid.row.reduce(ctx, t, partial);
        if j == t {
            mine = Some(reduced.expect("root receives reduction"));
        }
    }
    mine.expect("every rank is root once")
}

/// SUMMA backward rules (Eq. 3): `B' = Aᵀ·C'`.
pub fn summa_matmul_tn<T>(grid: &TesseractGrid, ctx: &mut RankCtx, a_local: &T, b_local: &T) -> T
where
    T: TensorLike + Payload,
{
    let q = grid.shape.q;
    let (i, j, _) = grid.coords;
    let mut mine: Option<T> = None;
    for t in 0..q {
        let a_t = grid.row.broadcast(ctx, t, (j == t).then(|| a_local.clone()));
        let partial = a_t.matmul_tn(b_local, &mut ctx.meter);
        let reduced = grid.col.reduce(ctx, t, partial);
        if i == t {
            mine = Some(reduced.expect("root receives reduction"));
        }
    }
    mine.expect("every rank is root once")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesseract_comm::Cluster;
    use tesseract_core::mm::tesseract_matmul;
    use tesseract_core::partition::{b_block, combine_b};
    use tesseract_tensor::{assert_slices_close, matmul, DenseTensor, Matrix, Xoshiro256StarStar};

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
    }

    #[test]
    fn summa_matches_serial() {
        for q in [2usize, 3] {
            let shape = GridShape::new(q, 1);
            let a = random(2 * q, 3 * q, 1);
            let b = random(3 * q, 2 * q, 2);
            let out = Cluster::a100(q * q).run(|ctx| {
                let grid = summa_mesh(ctx, q, 0);
                let (i, j, _) = grid.coords;
                let a_loc = DenseTensor::from_matrix(b_block(&a, shape, i, j));
                let b_loc = DenseTensor::from_matrix(b_block(&b, shape, i, j));
                summa_matmul(&grid, ctx, &a_loc, &b_loc).into_matrix()
            });
            let got = combine_b(&out.results, shape);
            assert_slices_close(got.data(), matmul::matmul(&a, &b).data(), 1e-4);
        }
    }

    #[test]
    fn summa_equals_tesseract_depth_one_bitwise() {
        let q = 2;
        let shape = GridShape::new(q, 1);
        let a = random(4, 4, 3);
        let b = random(4, 4, 4);
        let out = Cluster::a100(q * q).run(|ctx| {
            let grid = summa_mesh(ctx, q, 0);
            let (i, j, _) = grid.coords;
            let a_loc = DenseTensor::from_matrix(b_block(&a, shape, i, j));
            let b_loc = DenseTensor::from_matrix(b_block(&b, shape, i, j));
            let summa = summa_matmul(&grid, ctx, &a_loc, &b_loc);
            let tess = tesseract_matmul(
                &grid,
                ctx,
                &std::sync::Arc::new(a_loc.clone()),
                &std::sync::Arc::new(b_loc.clone()),
            );
            summa.matrix() == tess.matrix()
        });
        assert!(out.results.iter().all(|&same| same), "SUMMA must equal Tesseract(d=1) bitwise");
    }

    #[test]
    fn summa_nt_matches_serial() {
        let q = 2;
        let shape = GridShape::new(q, 1);
        let a = random(4, 6, 5); // [a, c]
        let b = random(4, 6, 6); // [b, c] → C = A·Bᵀ is [4, 4]
        let out = Cluster::a100(q * q).run(|ctx| {
            let grid = summa_mesh(ctx, q, 0);
            let (i, j, _) = grid.coords;
            let a_loc = DenseTensor::from_matrix(b_block(&a, shape, i, j));
            let b_loc = DenseTensor::from_matrix(b_block(&b, shape, i, j));
            summa_matmul_nt(&grid, ctx, &a_loc, &b_loc).into_matrix()
        });
        let got = combine_b(&out.results, shape);
        assert_slices_close(got.data(), matmul::matmul_nt(&a, &b).data(), 1e-4);
    }

    #[test]
    fn summa_tn_matches_serial() {
        let q = 2;
        let shape = GridShape::new(q, 1);
        let a = random(4, 6, 7); // [a, b]
        let b = random(4, 8, 8); // [a, c] → C = Aᵀ·B is [6, 8]
        let out = Cluster::a100(q * q).run(|ctx| {
            let grid = summa_mesh(ctx, q, 0);
            let (i, j, _) = grid.coords;
            let a_loc = DenseTensor::from_matrix(b_block(&a, shape, i, j));
            let b_loc = DenseTensor::from_matrix(b_block(&b, shape, i, j));
            summa_matmul_tn(&grid, ctx, &a_loc, &b_loc).into_matrix()
        });
        let got = combine_b(&out.results, shape);
        assert_slices_close(got.data(), matmul::matmul_tn(&a, &b).data(), 1e-4);
    }
}
