//! Megatron-LM 1-D tensor parallelism (paper §2.5, Figure 2).
//!
//! Activations are **replicated** on all `p` ranks; weights are split along
//! one dimension. An MLP/attention block pairs a column-parallel linear
//! (no forward communication, all-reduce of `dX` in backward — Megatron's
//! `f` operator) with a row-parallel linear (all-reduce of `Y` in forward,
//! no backward communication — the `g` operator), giving the paper's
//! per-layer communication `2·β·(p−1)·b·s·h/p` in each direction.
//!
//! Weight blocks are carved from the same seeded global Xavier matrices as
//! the serial reference and the Tesseract layers, so outputs are comparable
//! across schemes.
//!
//! Every layer implements [`Module<T, MegatronWorld>`] — the same trait the
//! Tesseract layers implement over [`tesseract_core::TesseractGrid`] — so
//! optimizers and harnesses that are generic over the world type drive both
//! schemes through one interface.

use std::sync::Arc;

use tesseract_comm::{CommGroup, Mesh, MeshAxis, Payload, RankCtx};
use tesseract_tensor::TensorLike;

use tesseract_core::module::{Module, ParamRef, Sequential, Tape};
use tesseract_core::TransformerConfig;

/// How a weight is split across the 1-D group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Split {
    /// `W = [W₁ | W₂ | …]`: output features split; input replicated.
    Column,
    /// `W = [W₁; W₂; …]`: input features split; output all-reduced.
    Row,
}

/// One rank's handle on the 1-D tensor-parallel world.
pub struct MegatronWorld {
    pub group: CommGroup,
    pub p: usize,
    pub index: usize,
}

impl MegatronWorld {
    /// Builds the 1-D group over `ranks` (must include `ctx.rank`).
    pub fn new(ctx: &RankCtx, ranks: Vec<usize>) -> Self {
        let group = ctx.group("megatron.tp", ranks);
        Self { p: group.size(), index: group.my_index(), group }
    }

    /// The canonical 1-D layout as a named-axis mesh: `p` contiguous ranks
    /// from `base` on a single `"tp"` axis.
    pub fn tp_mesh(p: usize, base: usize) -> Mesh {
        Mesh::new(base, vec![MeshAxis::new("tp", p)])
    }

    /// Builds the world as the `"tp"` fiber of a 1-axis mesh (the whole
    /// mesh) — the mesh-layout counterpart of [`MegatronWorld::new`].
    pub fn from_mesh(ctx: &RankCtx, mesh: &Mesh) -> Self {
        let group = mesh.fiber_group(ctx, "megatron.tp", "tp");
        Self { p: group.size(), index: group.my_index(), group }
    }
}

/// A 1-D tensor-parallel linear layer.
pub struct MegatronLinear<T> {
    pub split: Split,
    pub in_features: usize,
    pub out_features: usize,
    w: T,
    dw: T,
    bias: Option<T>,
    dbias: Option<T>,
    tape: Tape<Arc<T>>,
}

impl<T: TensorLike + Payload> MegatronLinear<T> {
    pub fn new(
        world: &MegatronWorld,
        split: Split,
        in_features: usize,
        out_features: usize,
        with_bias: bool,
        seed: u64,
        param_id: u64,
    ) -> Self {
        Self::new_fused(world, split, in_features, &[(out_features, param_id)], with_bias, seed)
    }

    /// Fused column-parallel projection over several independent global
    /// weights (used for QKV so each rank owns whole heads).
    pub fn new_fused(
        world: &MegatronWorld,
        split: Split,
        in_features: usize,
        outs: &[(usize, u64)],
        with_bias: bool,
        seed: u64,
    ) -> Self {
        let p = world.p;
        let r = world.index;
        let mut scratch = tesseract_tensor::Meter::new();
        let mut blocks = Vec::with_capacity(outs.len());
        for &(out_i, pid) in outs {
            match split {
                Split::Column => {
                    assert_eq!(out_i % p, 0, "column split needs p | out");
                    let w = out_i / p;
                    blocks.push(T::init_xavier_block(
                        in_features,
                        out_i,
                        0,
                        r * w,
                        in_features,
                        w,
                        seed,
                        pid,
                    ));
                }
                Split::Row => {
                    assert_eq!(in_features % p, 0, "row split needs p | in");
                    let h = in_features / p;
                    blocks.push(T::init_xavier_block(
                        in_features,
                        out_i,
                        r * h,
                        0,
                        h,
                        out_i,
                        seed,
                        pid,
                    ));
                }
            }
        }
        let w = T::concat_cols(&blocks, &mut scratch);
        let out_features: usize = outs.iter().map(|&(o, _)| o).sum();
        let bias_cols = match split {
            Split::Column => out_features / p,
            Split::Row => out_features,
        };
        let (bias, dbias) = if with_bias {
            (Some(T::zeros(1, bias_cols)), Some(T::zeros(1, bias_cols)))
        } else {
            (None, None)
        };
        Self {
            split,
            in_features,
            out_features,
            dw: T::zeros(w.rows(), w.cols()),
            w,
            bias,
            dbias,
            tape: Tape::new(),
        }
    }

    pub fn weight(&self) -> &T {
        &self.w
    }
}

impl<T: TensorLike + Payload> Module<T, MegatronWorld> for MegatronLinear<T> {
    /// Column-parallel: `Y_local = X·W_local (+ b_local)`, no communication.
    /// Row-parallel: `Y = all_reduce(X_local·W_local) (+ b)`.
    fn forward(&mut self, world: &MegatronWorld, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        self.tape.push(Arc::clone(x));
        let y = x.matmul(&self.w, &mut ctx.meter);
        let mut y = match self.split {
            // The freshly computed partial is consumed by the in-place
            // reduction; every rank receives the shared sum uncopied.
            Split::Row => world.group.all_reduce_shared(ctx, y),
            Split::Column => Arc::new(y),
        };
        if let Some(b) = &self.bias {
            y = Arc::new(y.add_rowvec(b, &mut ctx.meter));
        }
        y
    }

    /// Column-parallel: `dX = all_reduce(dY_local·W_localᵀ)`.
    /// Row-parallel: `dX_local = dY·W_localᵀ`, no communication (dY is
    /// replicated after the forward all-reduce).
    fn backward(&mut self, world: &MegatronWorld, ctx: &mut RankCtx, dy: &Arc<T>) -> Arc<T> {
        let x = self.tape.pop("MegatronLinear");
        if let Some(db) = self.dbias.as_mut() {
            let local = dy.col_sums(&mut ctx.meter);
            db.add_assign(&local, &mut ctx.meter);
        }
        let dw = x.matmul_tn(dy, &mut ctx.meter);
        self.dw.add_assign(&dw, &mut ctx.meter);
        let dx = dy.matmul_nt(&self.w, &mut ctx.meter);
        match self.split {
            Split::Column => world.group.all_reduce_shared(ctx, dx),
            Split::Row => Arc::new(dx),
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_, T>)) {
        f(ParamRef { weight: &mut self.w, grad: &mut self.dw });
        if let (Some(b), Some(db)) = (self.bias.as_mut(), self.dbias.as_mut()) {
            f(ParamRef { weight: b, grad: db });
        }
    }

    fn zero_grad(&mut self) {
        self.tape.debug_assert_balanced("MegatronLinear");
        self.dw = T::zeros(self.dw.rows(), self.dw.cols());
        if let Some(db) = self.dbias.as_mut() {
            *db = T::zeros(db.rows(), db.cols());
        }
    }
}

/// Megatron MLP: column-parallel `[h, 4h]` → GELU → row-parallel `[4h, h]`.
pub struct MegatronMlp<T> {
    pub fc1: MegatronLinear<T>,
    pub fc2: MegatronLinear<T>,
    tape: Tape<Arc<T>>,
}

impl<T: TensorLike + Payload> MegatronMlp<T> {
    pub fn new(
        world: &MegatronWorld,
        hidden: usize,
        mlp_hidden: usize,
        with_bias: bool,
        seed: u64,
        param_id: u64,
    ) -> Self {
        Self {
            fc1: MegatronLinear::new(
                world,
                Split::Column,
                hidden,
                mlp_hidden,
                with_bias,
                seed,
                param_id,
            ),
            fc2: MegatronLinear::new(
                world,
                Split::Row,
                mlp_hidden,
                hidden,
                with_bias,
                seed,
                param_id + 1,
            ),
            tape: Tape::new(),
        }
    }
}

impl<T: TensorLike + Payload> Module<T, MegatronWorld> for MegatronMlp<T> {
    fn forward(&mut self, world: &MegatronWorld, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        let pre = self.fc1.forward(world, ctx, x);
        let act = Arc::new(pre.gelu(&mut ctx.meter));
        self.tape.push(pre);
        self.fc2.forward(world, ctx, &act)
    }

    fn backward(&mut self, world: &MegatronWorld, ctx: &mut RankCtx, dy: &Arc<T>) -> Arc<T> {
        let d_act = self.fc2.backward(world, ctx, dy);
        let pre = self.tape.pop("MegatronMlp");
        let d_pre = Arc::new(pre.gelu_backward(&d_act, &mut ctx.meter));
        self.fc1.backward(world, ctx, &d_pre)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_, T>)) {
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }

    fn zero_grad(&mut self) {
        self.tape.debug_assert_balanced("MegatronMlp");
        self.fc1.zero_grad();
        self.fc2.zero_grad();
    }
}

struct HeadCache<T> {
    q: T,
    k: T,
    v: T,
    attn: T,
}

/// Megatron multi-head attention: column-parallel fused QKV (each rank owns
/// `n/p` heads over the full batch), local attention, row-parallel output
/// projection.
pub struct MegatronAttention<T> {
    pub wqkv: MegatronLinear<T>,
    pub wo: MegatronLinear<T>,
    cfg: TransformerConfig,
    tape: Tape<Vec<HeadCache<T>>>,
}

impl<T: TensorLike + Payload> MegatronAttention<T> {
    pub fn new(
        world: &MegatronWorld,
        cfg: TransformerConfig,
        with_bias: bool,
        seed: u64,
        param_id: u64,
    ) -> Self {
        assert_eq!(cfg.heads % world.p, 0, "megatron needs p | heads");
        let h = cfg.hidden;
        let wqkv = MegatronLinear::new_fused(
            world,
            Split::Column,
            h,
            &[(h, param_id), (h, param_id + 1), (h, param_id + 2)],
            with_bias,
            seed,
        );
        let wo = MegatronLinear::new(world, Split::Row, h, h, with_bias, seed, param_id + 3);
        Self { wqkv, wo, cfg, tape: Tape::new() }
    }
}

impl<T: TensorLike + Payload> Module<T, MegatronWorld> for MegatronAttention<T> {
    fn forward(&mut self, world: &MegatronWorld, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        let (s, hd) = (self.cfg.seq, self.cfg.head_dim());
        let b = x.rows() / s;
        let heads_local = self.cfg.heads / world.p;
        let local_h = self.cfg.hidden / world.p;
        let qkv = self.wqkv.forward(world, ctx, x);
        let q_all = qkv.slice_cols(0, local_h, &mut ctx.meter);
        let k_all = qkv.slice_cols(local_h, 2 * local_h, &mut ctx.meter);
        let v_all = qkv.slice_cols(2 * local_h, 3 * local_h, &mut ctx.meter);
        let scale = 1.0 / (hd as f32).sqrt();
        let mut caches = Vec::with_capacity(b * heads_local);
        let mut sample_outs = Vec::with_capacity(b);
        for si in 0..b {
            let (r0, r1) = (si * s, (si + 1) * s);
            let qs = q_all.slice_rows(r0, r1, &mut ctx.meter);
            let ks = k_all.slice_rows(r0, r1, &mut ctx.meter);
            let vs = v_all.slice_rows(r0, r1, &mut ctx.meter);
            let mut head_outs = Vec::with_capacity(heads_local);
            for hi in 0..heads_local {
                let (c0, c1) = (hi * hd, (hi + 1) * hd);
                let qh = qs.slice_cols(c0, c1, &mut ctx.meter);
                let kh = ks.slice_cols(c0, c1, &mut ctx.meter);
                let vh = vs.slice_cols(c0, c1, &mut ctx.meter);
                let scores = qh.matmul_nt(&kh, &mut ctx.meter).scale(scale, &mut ctx.meter);
                let attn = scores.softmax_rows(&mut ctx.meter);
                head_outs.push(attn.matmul(&vh, &mut ctx.meter));
                caches.push(HeadCache { q: qh, k: kh, v: vh, attn });
            }
            sample_outs.push(T::concat_cols(&head_outs, &mut ctx.meter));
        }
        self.tape.push(caches);
        let merged = Arc::new(T::concat_rows(&sample_outs, &mut ctx.meter));
        self.wo.forward(world, ctx, &merged)
    }

    fn backward(&mut self, world: &MegatronWorld, ctx: &mut RankCtx, dy: &Arc<T>) -> Arc<T> {
        let (s, hd) = (self.cfg.seq, self.cfg.head_dim());
        let heads_local = self.cfg.heads / world.p;
        let scale = 1.0 / (hd as f32).sqrt();
        let caches = self.tape.pop("MegatronAttention");
        let d_merged = self.wo.backward(world, ctx, dy);
        let b = d_merged.rows() / s;
        let mut dq_rows = Vec::with_capacity(b);
        let mut dk_rows = Vec::with_capacity(b);
        let mut dv_rows = Vec::with_capacity(b);
        for si in 0..b {
            let (r0, r1) = (si * s, (si + 1) * s);
            let d_sample = d_merged.slice_rows(r0, r1, &mut ctx.meter);
            let mut dq_heads = Vec::with_capacity(heads_local);
            let mut dk_heads = Vec::with_capacity(heads_local);
            let mut dv_heads = Vec::with_capacity(heads_local);
            for hi in 0..heads_local {
                let cache = &caches[si * heads_local + hi];
                let (c0, c1) = (hi * hd, (hi + 1) * hd);
                let d_out = d_sample.slice_cols(c0, c1, &mut ctx.meter);
                let d_attn = d_out.matmul_nt(&cache.v, &mut ctx.meter);
                let dv = cache.attn.matmul_tn(&d_out, &mut ctx.meter);
                let d_scores = cache
                    .attn
                    .softmax_rows_backward(&d_attn, &mut ctx.meter)
                    .scale(scale, &mut ctx.meter);
                dq_heads.push(d_scores.matmul(&cache.k, &mut ctx.meter));
                dk_heads.push(d_scores.matmul_tn(&cache.q, &mut ctx.meter));
                dv_heads.push(dv);
            }
            dq_rows.push(T::concat_cols(&dq_heads, &mut ctx.meter));
            dk_rows.push(T::concat_cols(&dk_heads, &mut ctx.meter));
            dv_rows.push(T::concat_cols(&dv_heads, &mut ctx.meter));
        }
        let d_qkv = Arc::new(T::concat_cols(
            &[
                T::concat_rows(&dq_rows, &mut ctx.meter),
                T::concat_rows(&dk_rows, &mut ctx.meter),
                T::concat_rows(&dv_rows, &mut ctx.meter),
            ],
            &mut ctx.meter,
        ));
        self.wqkv.backward(world, ctx, &d_qkv)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_, T>)) {
        self.wqkv.visit_params(f);
        self.wo.visit_params(f);
    }

    fn zero_grad(&mut self) {
        self.tape.debug_assert_balanced("MegatronAttention");
        self.wqkv.zero_grad();
        self.wo.zero_grad();
    }
}

/// Serial layer norm on the replicated activation (Megatron keeps layer
/// norms unsharded), built from TensorLike primitives so the shadow backend
/// can run it too.
pub struct MegatronLayerNorm<T> {
    pub eps: f32,
    hidden: usize,
    tape: Tape<(Arc<T>, T)>,
}

impl<T: TensorLike + Payload> MegatronLayerNorm<T> {
    pub fn new(hidden: usize, eps: f32) -> Self {
        Self { eps, hidden, tape: Tape::new() }
    }
}

impl<T: TensorLike + Payload> Module<T, MegatronWorld> for MegatronLayerNorm<T> {
    /// The norm is rank-local (activations are replicated), so the world is
    /// unused — it is only here to satisfy the `Module` signature.
    fn forward(&mut self, _world: &MegatronWorld, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        let n = self.hidden as f32;
        assert_eq!(x.cols(), self.hidden);
        let s1 = x.row_sums(&mut ctx.meter);
        let s2 = x.row_sums_of_squares(&mut ctx.meter);
        let mean = s1.scale(1.0 / n, &mut ctx.meter);
        let mean_sq = mean.hadamard(&mean, &mut ctx.meter);
        let var = s2.scale(1.0 / n, &mut ctx.meter).sub(&mean_sq, &mut ctx.meter);
        let inv_std = var.rsqrt_add(self.eps, &mut ctx.meter);
        let xhat =
            Arc::new(x.sub_colvec(&mean, &mut ctx.meter).mul_colvec(&inv_std, &mut ctx.meter));
        self.tape.push((Arc::clone(&xhat), inv_std));
        xhat
    }

    fn backward(&mut self, _world: &MegatronWorld, ctx: &mut RankCtx, dy: &Arc<T>) -> Arc<T> {
        let (xhat, inv_std) = self.tape.pop("MegatronLayerNorm");
        let n = self.hidden as f32;
        let t1 = xhat.hadamard(dy, &mut ctx.meter).row_sums(&mut ctx.meter);
        let t2 = dy.row_sums(&mut ctx.meter);
        let correction = xhat
            .mul_colvec(&t1, &mut ctx.meter)
            .add_colvec(&t2, &mut ctx.meter)
            .scale(1.0 / n, &mut ctx.meter);
        Arc::new(dy.sub(&correction, &mut ctx.meter).mul_colvec(&inv_std, &mut ctx.meter))
    }

    fn zero_grad(&mut self) {
        self.tape.debug_assert_balanced("MegatronLayerNorm");
    }
}

/// One Megatron Transformer layer (pre-norm residual blocks).
pub struct MegatronTransformerLayer<T> {
    pub ln1: MegatronLayerNorm<T>,
    pub attn: MegatronAttention<T>,
    pub ln2: MegatronLayerNorm<T>,
    pub mlp: MegatronMlp<T>,
}

impl<T: TensorLike + Payload> MegatronTransformerLayer<T> {
    pub fn new(
        world: &MegatronWorld,
        cfg: TransformerConfig,
        with_bias: bool,
        seed: u64,
        param_id: u64,
    ) -> Self {
        Self {
            ln1: MegatronLayerNorm::new(cfg.hidden, cfg.eps),
            attn: MegatronAttention::new(world, cfg, with_bias, seed, param_id),
            ln2: MegatronLayerNorm::new(cfg.hidden, cfg.eps),
            mlp: MegatronMlp::new(
                world,
                cfg.hidden,
                cfg.mlp_hidden(),
                with_bias,
                seed,
                param_id + 4,
            ),
        }
    }
}

impl<T: TensorLike + Payload> Module<T, MegatronWorld> for MegatronTransformerLayer<T> {
    fn forward(&mut self, world: &MegatronWorld, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        let a = self.ln1.forward(world, ctx, x);
        let b = self.attn.forward(world, ctx, &a);
        let x1 = Arc::new(x.add(&b, &mut ctx.meter));
        let c = self.ln2.forward(world, ctx, &x1);
        let d = self.mlp.forward(world, ctx, &c);
        Arc::new(x1.add(&d, &mut ctx.meter))
    }

    fn backward(&mut self, world: &MegatronWorld, ctx: &mut RankCtx, dy: &Arc<T>) -> Arc<T> {
        let d_mlp_in = self.mlp.backward(world, ctx, dy);
        let d_x1_from_ln2 = self.ln2.backward(world, ctx, &d_mlp_in);
        let d_x1 = Arc::new(dy.add(&d_x1_from_ln2, &mut ctx.meter));
        let d_attn_in = self.attn.backward(world, ctx, &d_x1);
        let d_x_from_ln1 = self.ln1.backward(world, ctx, &d_attn_in);
        Arc::new(d_x1.add(&d_x_from_ln1, &mut ctx.meter))
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_, T>)) {
        self.attn.visit_params(f);
        self.mlp.visit_params(f);
    }

    fn zero_grad(&mut self) {
        self.ln1.zero_grad();
        self.attn.zero_grad();
        self.ln2.zero_grad();
        self.mlp.zero_grad();
    }
}

/// A stack of Megatron Transformer layers, composed as a [`Sequential`]
/// over the 1-D world.
pub struct MegatronTransformer<T> {
    pub layers: Sequential<T, MegatronWorld>,
    pub cfg: TransformerConfig,
}

impl<T: TensorLike + Payload> MegatronTransformer<T> {
    pub fn new(
        world: &MegatronWorld,
        cfg: TransformerConfig,
        with_bias: bool,
        seed: u64,
        base_param_id: u64,
    ) -> Self {
        let mut layers = Sequential::new();
        for l in 0..cfg.layers {
            layers.push_boxed(Box::new(MegatronTransformerLayer::new(
                world,
                cfg,
                with_bias,
                seed,
                base_param_id + l as u64 * tesseract_core::layers::PARAM_IDS_PER_LAYER,
            )));
        }
        Self { layers, cfg }
    }
}

impl<T: TensorLike + Payload> Module<T, MegatronWorld> for MegatronTransformer<T> {
    fn forward(&mut self, world: &MegatronWorld, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        self.layers.forward(world, ctx, x)
    }

    fn backward(&mut self, world: &MegatronWorld, ctx: &mut RankCtx, dy: &Arc<T>) -> Arc<T> {
        self.layers.backward(world, ctx, dy)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_, T>)) {
        self.layers.visit_params(f);
    }

    fn zero_grad(&mut self) {
        self.layers.zero_grad();
    }
}
