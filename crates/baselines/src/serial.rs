//! Serial (single-device) reference Transformer.
//!
//! This is an **independent oracle**: it is written directly against
//! [`Matrix`] and the `tesseract_tensor::nn` kernels, not against the
//! generic `TensorLike` layer code, so a bug shared by the distributed
//! layers cannot hide here. It consumes the *same* parameter-id scheme as
//! the distributed stacks (Wq, Wk, Wv, Wo, fc1, fc2 = `base..base+6` per
//! layer, biases zero-initialized), so for equal seeds every scheme
//! computes the same function and gradients up to f32 rounding — the
//! property behind the paper's Figure 7.

use tesseract_tensor::init::global_xavier;
use tesseract_tensor::matmul::{matmul, matmul_nt, matmul_tn};
use tesseract_tensor::nn;
use tesseract_tensor::Matrix;

use tesseract_core::TransformerConfig;

/// Serial linear layer `Y = X·W + b`.
pub struct SerialLinear {
    pub w: Matrix,
    pub dw: Matrix,
    pub bias: Option<Matrix>,
    pub dbias: Option<Matrix>,
    cached_x: Option<Matrix>,
}

impl SerialLinear {
    pub fn new(
        in_features: usize,
        out_features: usize,
        with_bias: bool,
        seed: u64,
        param_id: u64,
    ) -> Self {
        let w = global_xavier(in_features, out_features, seed, param_id);
        Self {
            dw: Matrix::zeros(in_features, out_features),
            bias: with_bias.then(|| Matrix::zeros(1, out_features)),
            dbias: with_bias.then(|| Matrix::zeros(1, out_features)),
            w,
            cached_x: None,
        }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = matmul(x, &self.w);
        if let Some(b) = &self.bias {
            y = nn::bias_add(&y, b.row(0));
        }
        self.cached_x = Some(x.clone());
        y
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self.cached_x.take().expect("backward without forward");
        if let Some(db) = self.dbias.as_mut() {
            for i in 0..dy.rows() {
                for (acc, &g) in db.row_mut(0).iter_mut().zip(dy.row(i).iter()) {
                    *acc += g;
                }
            }
        }
        self.dw.add_assign(&matmul_tn(&x, dy));
        matmul_nt(dy, &self.w)
    }

    pub fn zero_grad(&mut self) {
        self.dw = Matrix::zeros(self.dw.rows(), self.dw.cols());
        if let Some(db) = self.dbias.as_mut() {
            *db = Matrix::zeros(1, db.cols());
        }
    }
}

/// Serial parameter-free layer norm.
pub struct SerialLayerNorm {
    pub eps: f32,
    cache: Option<nn::LayerNormCache>,
}

impl SerialLayerNorm {
    pub fn new(eps: f32) -> Self {
        Self { eps, cache: None }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let cache = nn::layernorm_rows(x, self.eps);
        let y = cache.y.clone();
        self.cache = Some(cache);
        y
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let cache = self.cache.take().expect("backward without forward");
        nn::layernorm_rows_backward(&cache, dy)
    }
}

struct SerialHeadCache {
    q: Matrix,
    k: Matrix,
    v: Matrix,
    attn: Matrix,
}

/// Serial multi-head self-attention with separate Q/K/V projections.
pub struct SerialAttention {
    pub wq: SerialLinear,
    pub wk: SerialLinear,
    pub wv: SerialLinear,
    pub wo: SerialLinear,
    cfg: TransformerConfig,
    cache: Vec<SerialHeadCache>,
}

impl SerialAttention {
    pub fn new(cfg: TransformerConfig, with_bias: bool, seed: u64, param_id: u64) -> Self {
        let h = cfg.hidden;
        Self {
            wq: SerialLinear::new(h, h, with_bias, seed, param_id),
            wk: SerialLinear::new(h, h, with_bias, seed, param_id + 1),
            wv: SerialLinear::new(h, h, with_bias, seed, param_id + 2),
            wo: SerialLinear::new(h, h, with_bias, seed, param_id + 3),
            cfg,
            cache: Vec::new(),
        }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let (s, hd, n) = (self.cfg.seq, self.cfg.head_dim(), self.cfg.heads);
        let b = x.rows() / s;
        let q_all = self.wq.forward(x);
        let k_all = self.wk.forward(x);
        let v_all = self.wv.forward(x);
        let scale = 1.0 / (hd as f32).sqrt();
        self.cache.clear();
        let mut out = Matrix::zeros(x.rows(), self.cfg.hidden);
        for si in 0..b {
            let (r0, r1) = (si * s, (si + 1) * s);
            for hi in 0..n {
                let (c0, c1) = (hi * hd, (hi + 1) * hd);
                let qh = q_all.block(r0, c0, r1 - r0, c1 - c0);
                let kh = k_all.block(r0, c0, r1 - r0, c1 - c0);
                let vh = v_all.block(r0, c0, r1 - r0, c1 - c0);
                let mut scores = matmul_nt(&qh, &kh);
                scores.scale_assign(scale);
                let attn = nn::softmax_rows(&scores);
                let head_out = matmul(&attn, &vh);
                out.set_block(r0, c0, &head_out);
                self.cache.push(SerialHeadCache { q: qh, k: kh, v: vh, attn });
            }
        }
        self.wo.forward(&out)
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let (s, hd, n) = (self.cfg.seq, self.cfg.head_dim(), self.cfg.heads);
        let d_merged = self.wo.backward(dy);
        let b = d_merged.rows() / s;
        let scale = 1.0 / (hd as f32).sqrt();
        let mut dq_all = Matrix::zeros(d_merged.rows(), self.cfg.hidden);
        let mut dk_all = Matrix::zeros(d_merged.rows(), self.cfg.hidden);
        let mut dv_all = Matrix::zeros(d_merged.rows(), self.cfg.hidden);
        for si in 0..b {
            let (r0, _r1) = (si * s, (si + 1) * s);
            for hi in 0..n {
                let cache = &self.cache[si * n + hi];
                let c0 = hi * hd;
                let d_out = d_merged.block(r0, c0, s, hd);
                let d_attn = matmul_nt(&d_out, &cache.v);
                let dv = matmul_tn(&cache.attn, &d_out);
                let mut d_scores = nn::softmax_rows_backward(&cache.attn, &d_attn);
                d_scores.scale_assign(scale);
                let dq = matmul(&d_scores, &cache.k);
                let dk = matmul_tn(&d_scores, &cache.q);
                dq_all.set_block(r0, c0, &dq);
                dk_all.set_block(r0, c0, &dk);
                dv_all.set_block(r0, c0, &dv);
            }
        }
        self.cache.clear();
        let mut dx = self.wq.backward(&dq_all);
        dx.add_assign(&self.wk.backward(&dk_all));
        dx.add_assign(&self.wv.backward(&dv_all));
        dx
    }

    pub fn zero_grad(&mut self) {
        self.wq.zero_grad();
        self.wk.zero_grad();
        self.wv.zero_grad();
        self.wo.zero_grad();
    }
}

/// Serial MLP: `fc2(gelu(fc1(x)))`.
pub struct SerialMlp {
    pub fc1: SerialLinear,
    pub fc2: SerialLinear,
    cached_pre: Option<Matrix>,
}

impl SerialMlp {
    pub fn new(
        hidden: usize,
        mlp_hidden: usize,
        with_bias: bool,
        seed: u64,
        param_id: u64,
    ) -> Self {
        Self {
            fc1: SerialLinear::new(hidden, mlp_hidden, with_bias, seed, param_id),
            fc2: SerialLinear::new(mlp_hidden, hidden, with_bias, seed, param_id + 1),
            cached_pre: None,
        }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let pre = self.fc1.forward(x);
        let act = nn::gelu_matrix(&pre);
        self.cached_pre = Some(pre);
        self.fc2.forward(&act)
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let d_act = self.fc2.backward(dy);
        let pre = self.cached_pre.take().expect("backward without forward");
        let d_pre = nn::gelu_backward_matrix(&pre, &d_act);
        self.fc1.backward(&d_pre)
    }

    pub fn zero_grad(&mut self) {
        self.fc1.zero_grad();
        self.fc2.zero_grad();
    }
}

/// One serial pre-norm Transformer layer.
pub struct SerialTransformerLayer {
    pub ln1: SerialLayerNorm,
    pub attn: SerialAttention,
    pub ln2: SerialLayerNorm,
    pub mlp: SerialMlp,
}

impl SerialTransformerLayer {
    pub fn new(cfg: TransformerConfig, with_bias: bool, seed: u64, param_id: u64) -> Self {
        Self {
            ln1: SerialLayerNorm::new(cfg.eps),
            attn: SerialAttention::new(cfg, with_bias, seed, param_id),
            ln2: SerialLayerNorm::new(cfg.eps),
            mlp: SerialMlp::new(cfg.hidden, cfg.mlp_hidden(), with_bias, seed, param_id + 4),
        }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let a = self.ln1.forward(x);
        let b = self.attn.forward(&a);
        let mut x1 = x.clone();
        x1.add_assign(&b);
        let c = self.ln2.forward(&x1);
        let d = self.mlp.forward(&c);
        let mut y = x1;
        y.add_assign(&d);
        y
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let d_mlp_in = self.mlp.backward(dy);
        let d_x1_from_ln2 = self.ln2.backward(&d_mlp_in);
        let mut d_x1 = dy.clone();
        d_x1.add_assign(&d_x1_from_ln2);
        let d_attn_in = self.attn.backward(&d_x1);
        let d_x_from_ln1 = self.ln1.backward(&d_attn_in);
        let mut dx = d_x1;
        dx.add_assign(&d_x_from_ln1);
        dx
    }

    pub fn zero_grad(&mut self) {
        self.attn.zero_grad();
        self.mlp.zero_grad();
    }
}

/// A stack of serial Transformer layers (param-id layout identical to
/// `TesseractTransformer`).
pub struct SerialTransformer {
    pub layers: Vec<SerialTransformerLayer>,
    pub cfg: TransformerConfig,
}

impl SerialTransformer {
    pub fn new(cfg: TransformerConfig, with_bias: bool, seed: u64, base_param_id: u64) -> Self {
        let layers = (0..cfg.layers)
            .map(|l| {
                SerialTransformerLayer::new(
                    cfg,
                    with_bias,
                    seed,
                    base_param_id + l as u64 * tesseract_core::layers::PARAM_IDS_PER_LAYER,
                )
            })
            .collect();
        Self { layers, cfg }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h);
        }
        h
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let mut g = dy.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesseract_tensor::Xoshiro256StarStar;

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
    }

    #[test]
    fn linear_backward_matches_finite_difference() {
        let mut lin = SerialLinear::new(4, 3, true, 7, 0);
        let x = random(2, 4, 1);
        let dy = random(2, 3, 2);
        let _ = lin.forward(&x);
        let dx = lin.backward(&dy);
        let h = 1e-2f32;
        // Check dx via loss L = sum(dy ∘ (xW + b)).
        for i in 0..2 {
            for j in 0..4 {
                let mut xp = x.clone();
                xp[(i, j)] += h;
                let mut xm = x.clone();
                xm[(i, j)] -= h;
                let mut l2 = SerialLinear::new(4, 3, true, 7, 0);
                let yp = l2.forward(&xp);
                let ym = l2.forward(&xm);
                let mut fd = 0.0;
                for r in 0..2 {
                    for c in 0..3 {
                        fd += dy[(r, c)] * (yp[(r, c)] - ym[(r, c)]) / (2.0 * h);
                    }
                }
                assert!((dx[(i, j)] - fd).abs() < 1e-2, "({i},{j}): {} vs {fd}", dx[(i, j)]);
            }
        }
    }

    #[test]
    fn transformer_layer_backward_matches_finite_difference() {
        let cfg = TransformerConfig {
            batch: 2,
            seq: 3,
            hidden: 8,
            heads: 2,
            mlp_ratio: 2,
            layers: 1,
            eps: 1e-5,
        };
        let x = random(cfg.rows(), cfg.hidden, 3);
        let dy = random(cfg.rows(), cfg.hidden, 4);
        let mut layer = SerialTransformerLayer::new(cfg, true, 11, 0);
        let _ = layer.forward(&x);
        let dx = layer.backward(&dy);
        let h = 3e-2f32;
        // Spot-check a few coordinates (full sweep is slow).
        for &(i, j) in &[(0usize, 0usize), (1, 3), (5, 7), (3, 2)] {
            let mut xp = x.clone();
            xp[(i, j)] += h;
            let mut xm = x.clone();
            xm[(i, j)] -= h;
            let mut lp = SerialTransformerLayer::new(cfg, true, 11, 0);
            let mut lm = SerialTransformerLayer::new(cfg, true, 11, 0);
            let yp = lp.forward(&xp);
            let ym = lm.forward(&xm);
            let mut fd = 0.0;
            for r in 0..cfg.rows() {
                for c in 0..cfg.hidden {
                    fd += dy[(r, c)] * (yp[(r, c)] - ym[(r, c)]) / (2.0 * h);
                }
            }
            assert!(
                (dx[(i, j)] - fd).abs() < 0.05 * dx[(i, j)].abs().max(1.0),
                "({i},{j}): {} vs {fd}",
                dx[(i, j)]
            );
        }
    }

    #[test]
    fn forward_is_deterministic_across_instances() {
        let cfg = TransformerConfig::tiny();
        let x = random(cfg.rows(), cfg.hidden, 5);
        let mut a = SerialTransformer::new(cfg, true, 42, 0);
        let mut b = SerialTransformer::new(cfg, true, 42, 0);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn different_seeds_change_output() {
        let cfg = TransformerConfig::tiny();
        let x = random(cfg.rows(), cfg.hidden, 5);
        let mut a = SerialTransformer::new(cfg, true, 42, 0);
        let mut b = SerialTransformer::new(cfg, true, 43, 0);
        assert_ne!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn attention_output_shape_is_input_shape() {
        let cfg = TransformerConfig::tiny();
        let x = random(cfg.rows(), cfg.hidden, 6);
        let mut attn = SerialAttention::new(cfg, true, 1, 0);
        assert_eq!(attn.forward(&x).shape(), x.shape());
    }
}
