//! # tesseract-baselines
//!
//! Everything the paper compares Tesseract against, implemented from the
//! published algorithms:
//!
//! * [`serial`] — independent single-device Transformer oracle (used to
//!   verify every distributed scheme's forward and backward numerics).
//! * [`megatron`] — Megatron-LM 1-D tensor parallelism (§2.5, Figure 2).
//! * [`optimus`] — Optimus 2-D tensor parallelism (SUMMA-based).
//! * [`cannon`] — Cannon's 2-D matmul (§2.1, Algorithm 1).
//! * [`summa`] — SUMMA 2-D matmul (§2.2, Algorithm 2) plus Eq. 3 backward.
//! * [`solomonik`] — Solomonik's 2.5-D matmul (§2.3).

pub mod cannon;
pub mod megatron;
pub mod optimus;
pub mod serial;
pub mod solomonik;
pub mod summa;

pub use cannon::cannon_matmul;
pub use megatron::{
    MegatronAttention, MegatronLayerNorm, MegatronLinear, MegatronMlp, MegatronTransformer,
    MegatronTransformerLayer, MegatronWorld, Split,
};
pub use optimus::OptimusTransformer;
pub use serial::{
    SerialAttention, SerialLayerNorm, SerialLinear, SerialMlp, SerialTransformer,
    SerialTransformerLayer,
};
pub use solomonik::solomonik_matmul;
pub use summa::{summa_matmul, summa_matmul_nt, summa_matmul_tn};
