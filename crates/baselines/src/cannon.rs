//! Cannon's algorithm (paper §2.1, Figure 1, Algorithm 1): 2-D matmul by
//! cyclic shifts on a `[q, q]` mesh.
//!
//! Initialization skews `A` left by the row index and `B` up by the column
//! index; each of the `q` steps multiplies the resident blocks and shifts
//! `A` left / `B` up by one. The shift offsets are uniform within each
//! row/column group (every member of a row shares `i`), so the grid's
//! existing row/column fibers implement the permutation directly.
//!
//! Used as a communication-count baseline for the §1/§3.1 claims: Cannon
//! needs `2·p^{3/2} − 2·p^{1/2}` transfers per matmul versus Tesseract's
//! `2·p^{2/3}` (at `d = q`).

use tesseract_comm::{Payload, RankCtx};
use tesseract_core::{GridShape, TesseractGrid};
use tesseract_tensor::TensorLike;

/// Creates the `[q, q]` mesh Cannon runs on (a depth-1 Tesseract grid).
pub fn cannon_mesh(ctx: &RankCtx, q: usize, base: usize) -> TesseractGrid {
    TesseractGrid::new(ctx, GridShape::new(q, 1), base)
}

/// `C = A·B` with `A` split into `[a/q, b/q]` blocks and `B` into
/// `[b/q, c/q]` blocks at their natural `(i, j)` positions. Returns this
/// rank's `[a/q, c/q]` block of `C`.
pub fn cannon_matmul<T>(grid: &TesseractGrid, ctx: &mut RankCtx, a_local: &T, b_local: &T) -> T
where
    T: TensorLike + Payload,
{
    assert_eq!(grid.shape.d, 1, "Cannon runs on a [q, q] mesh");
    let q = grid.shape.q;
    let (i, j, _) = grid.coords;

    // Initial skew (Figure 1a): A_{i,j} → p_{i, j-i}; B_{i,j} → p_{i-j, j}.
    let mut a = grid.row.shift(ctx, -(i as isize), a_local.clone());
    let mut b = grid.col.shift(ctx, -(j as isize), b_local.clone());

    let mut c = a.matmul(&b, &mut ctx.meter);
    for _step in 1..q {
        // Figure 1b: shift A left by one, B up by one.
        a = grid.row.shift(ctx, -1, a);
        b = grid.col.shift(ctx, -1, b);
        let partial = a.matmul(&b, &mut ctx.meter);
        c.add_assign(&partial, &mut ctx.meter);
    }
    let _ = j;
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesseract_comm::{Cluster, CollectiveOp};
    use tesseract_core::partition::{b_block, combine_b};
    use tesseract_tensor::{assert_slices_close, matmul, DenseTensor, Matrix, Xoshiro256StarStar};

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
    }

    fn run_cannon(q: usize, a: &Matrix, b: &Matrix) -> Matrix {
        let shape = GridShape::new(q, 1);
        let out = Cluster::a100(q * q).run(|ctx| {
            let grid = cannon_mesh(ctx, q, 0);
            let (i, j, _) = grid.coords;
            // With d = 1, A/B/C all use plain q×q 2-D blocks.
            let a_loc = DenseTensor::from_matrix(b_block(a, shape, i, j));
            let b_loc = DenseTensor::from_matrix(b_block(b, shape, i, j));
            cannon_matmul(&grid, ctx, &a_loc, &b_loc).into_matrix()
        });
        combine_b(&out.results, shape)
    }

    #[test]
    fn cannon_matches_serial_2x2() {
        let a = random(4, 6, 1);
        let b = random(6, 8, 2);
        let got = run_cannon(2, &a, &b);
        assert_slices_close(got.data(), matmul::matmul(&a, &b).data(), 1e-4);
    }

    #[test]
    fn cannon_matches_serial_3x3() {
        let a = random(6, 9, 3);
        let b = random(9, 6, 4);
        let got = run_cannon(3, &a, &b);
        assert_slices_close(got.data(), matmul::matmul(&a, &b).data(), 1e-4);
    }

    #[test]
    fn cannon_matches_serial_4x4() {
        let a = random(8, 8, 5);
        let b = random(8, 8, 6);
        let got = run_cannon(4, &a, &b);
        assert_slices_close(got.data(), matmul::matmul(&a, &b).data(), 1e-4);
    }

    #[test]
    fn cannon_uses_only_shifts() {
        let a = random(4, 4, 7);
        let b = random(4, 4, 8);
        let shape = GridShape::new(2, 1);
        let out = Cluster::a100(4).run(|ctx| {
            let grid = cannon_mesh(ctx, 2, 0);
            let (i, j, _) = grid.coords;
            let a_loc = DenseTensor::from_matrix(b_block(&a, shape, i, j));
            let b_loc = DenseTensor::from_matrix(b_block(&b, shape, i, j));
            let _ = cannon_matmul(&grid, ctx, &a_loc, &b_loc);
        });
        assert!(out.comm.get(CollectiveOp::Shift).calls > 0);
        assert_eq!(out.comm.get(CollectiveOp::Broadcast).calls, 0);
        // 2 skew shifts + 2 shifts per extra step, per row/col group:
        // q=2 → per group-pair: skew (2 groups * 2 rows... counted per call.
        // 2 rows + 2 cols skew = 4 calls, plus step 1: 4 calls = 8 total.
        assert_eq!(out.comm.get(CollectiveOp::Shift).calls, 8);
    }
}
