//! Property-based tests for the baseline algorithms: Cannon and SUMMA must
//! match serial matmul for randomized mesh sizes and block contents, and
//! Megatron's column/row split must tile the global weights.

// Gated behind the `proptest-tests` feature: run with
//     cargo test -p <crate> --features proptest-tests
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use tesseract_baselines::cannon::{cannon_matmul, cannon_mesh};
use tesseract_baselines::megatron::{MegatronLinear, MegatronWorld, Split};
use tesseract_baselines::summa::{summa_matmul, summa_mesh};
use tesseract_comm::Cluster;
use tesseract_core::partition::{b_block, combine_b};
use tesseract_core::{GridShape, Module};
use tesseract_tensor::{
    init::global_xavier, matmul::matmul, max_rel_diff, DenseTensor, Matrix, Xoshiro256StarStar,
};

proptest! {
    // Each case spawns a simulated cluster; keep counts small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn cannon_matches_serial_for_random_meshes(q in 2usize..4, m in 1usize..3, seed in 0u64..1000) {
        let shape = GridShape::new(q, 1);
        let n = q * m * 2;
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let a = Matrix::random_uniform(n, n, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(n, n, -1.0, 1.0, &mut rng);
        let out = Cluster::a100(q * q).run(|ctx| {
            let grid = cannon_mesh(ctx, q, 0);
            let (i, j, _) = grid.coords;
            let a_loc = DenseTensor::from_matrix(b_block(&a, shape, i, j));
            let b_loc = DenseTensor::from_matrix(b_block(&b, shape, i, j));
            cannon_matmul(&grid, ctx, &a_loc, &b_loc).into_matrix()
        });
        let got = combine_b(&out.results, shape);
        prop_assert!(max_rel_diff(got.data(), matmul(&a, &b).data()) < 1e-4);
    }

    #[test]
    fn summa_matches_serial_for_random_meshes(q in 2usize..4, m in 1usize..3, seed in 0u64..1000) {
        let shape = GridShape::new(q, 1);
        let n = q * m * 2;
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let a = Matrix::random_uniform(n, n, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(n, n, -1.0, 1.0, &mut rng);
        let out = Cluster::a100(q * q).run(|ctx| {
            let grid = summa_mesh(ctx, q, 0);
            let (i, j, _) = grid.coords;
            let a_loc = DenseTensor::from_matrix(b_block(&a, shape, i, j));
            let b_loc = DenseTensor::from_matrix(b_block(&b, shape, i, j));
            summa_matmul(&grid, ctx, &a_loc, &b_loc).into_matrix()
        });
        let got = combine_b(&out.results, shape);
        prop_assert!(max_rel_diff(got.data(), matmul(&a, &b).data()) < 1e-4);
    }

    #[test]
    fn megatron_column_blocks_tile_the_global_weight(p in 2usize..5, seed in 0u64..1000) {
        let (inf, outf) = (4usize, 4 * p);
        let global = global_xavier(inf, outf, seed, 3);
        let out = Cluster::a100(p).run(|ctx| {
            let world = MegatronWorld::new(ctx, (0..p).collect());
            let lin = MegatronLinear::<DenseTensor>::new(
                &world, Split::Column, inf, outf, false, seed, 3,
            );
            lin.weight().clone().into_matrix()
        });
        let assembled = Matrix::concat_cols(&out.results);
        prop_assert_eq!(assembled, global);
    }

    #[test]
    fn megatron_row_linear_matches_serial(p in 2usize..5, seed in 0u64..1000) {
        let (inf, outf) = (4usize * p, 6usize);
        let rows = 5usize;
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed ^ 0xabc);
        let x = Matrix::random_uniform(rows, inf, -1.0, 1.0, &mut rng);
        let w = global_xavier(inf, outf, seed, 9);
        let expected = matmul(&x, &w);
        let out = Cluster::a100(p).run(|ctx| {
            let world = MegatronWorld::new(ctx, (0..p).collect());
            let mut lin = MegatronLinear::<DenseTensor>::new(
                &world, Split::Row, inf, outf, false, seed, 9,
            );
            // Row-parallel input: this rank's column slice of x.
            let cols = inf / p;
            let r = world.index;
            let x_loc =
                std::sync::Arc::new(DenseTensor::from_matrix(x.slice_cols(r * cols, (r + 1) * cols)));
            lin.forward(&world, ctx, &x_loc).matrix().clone()
        });
        for y in &out.results {
            prop_assert!(max_rel_diff(y.data(), expected.data()) < 1e-4);
        }
    }
}
