//! Cross-scheme numerical parity: every distributed scheme (Tesseract on
//! several `[q, q, d]` arrangements, Megatron-LM 1-D, Optimus 2-D) must
//! compute the same Transformer function and the same gradients as the
//! independent serial oracle — the paper's §4 "we compute the matrix
//! multiplication result and the result using our Tesseract method
//! respectively, to guarantee outputs are the same", and the basis of the
//! Figure-7 accuracy-parity claim.

use std::sync::Arc;
use tesseract_baselines::megatron::{MegatronTransformerLayer, MegatronWorld};
use tesseract_baselines::optimus::OptimusTransformer;
use tesseract_baselines::serial::{SerialTransformer, SerialTransformerLayer};

use tesseract_comm::Cluster;
use tesseract_core::partition::{a_block, combine_c};
use tesseract_core::{
    GridShape, Module, TesseractGrid, TesseractTransformerLayer, TransformerConfig,
};
use tesseract_tensor::{assert_slices_close, DenseTensor, Matrix, Xoshiro256StarStar};

const SEED: u64 = 20220829; // ICPP '22 conference date.

fn cfg() -> TransformerConfig {
    TransformerConfig { batch: 4, seq: 3, hidden: 8, heads: 4, mlp_ratio: 2, layers: 1, eps: 1e-5 }
}

fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
}

/// Runs one Tesseract transformer layer fwd+bwd on `[q, q, d]`; returns
/// (global Y, global dX, global dW of attention's Wo block for spot-check).
fn run_tesseract(
    shape: GridShape,
    c: TransformerConfig,
    x: &Matrix,
    dy: &Matrix,
) -> (Matrix, Matrix, Matrix) {
    let out = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let mut layer = TesseractTransformerLayer::<DenseTensor>::new(ctx, &grid, c, true, SEED, 0);
        let x_loc = Arc::new(DenseTensor::from_matrix(a_block(x, shape, i, j, k)));
        let dy_loc = Arc::new(DenseTensor::from_matrix(a_block(dy, shape, i, j, k)));
        let y = layer.forward(&grid, ctx, &x_loc);
        let dx = layer.backward(&grid, ctx, &dy_loc);
        let wo_grad = layer.attn.wo.weight_grad().clone();
        (y.matrix().clone(), dx.matrix().clone(), wo_grad.into_matrix())
    });
    let ys: Vec<Matrix> = out.results.iter().map(|(y, _, _)| y.clone()).collect();
    let dxs: Vec<Matrix> = out.results.iter().map(|(_, dx, _)| dx.clone()).collect();
    let wo_grads: Vec<Matrix> = out.results.iter().map(|(_, _, g)| g.clone()).collect();
    (
        combine_c(&ys, shape),
        combine_c(&dxs, shape),
        tesseract_core::partition::combine_b(&wo_grads, shape),
    )
}

fn serial_reference(c: TransformerConfig, x: &Matrix, dy: &Matrix) -> (Matrix, Matrix, Matrix) {
    let mut layer = SerialTransformerLayer::new(c, true, SEED, 0);
    let y = layer.forward(x);
    let dx = layer.backward(dy);
    (y, dx, layer.attn.wo.dw.clone())
}

#[test]
fn tesseract_layer_matches_serial_on_2x2x1() {
    let c = cfg();
    let x = random(c.rows(), c.hidden, 1);
    let dy = random(c.rows(), c.hidden, 2);
    let (y_ser, dx_ser, dwo_ser) = serial_reference(c, &x, &dy);
    let (y, dx, dwo) = run_tesseract(GridShape::new(2, 1), c, &x, &dy);
    assert_slices_close(y.data(), y_ser.data(), 2e-4);
    assert_slices_close(dx.data(), dx_ser.data(), 2e-4);
    assert_slices_close(dwo.data(), dwo_ser.data(), 2e-4);
}

#[test]
fn tesseract_layer_matches_serial_on_2x2x2() {
    let c = cfg();
    let x = random(c.rows(), c.hidden, 1);
    let dy = random(c.rows(), c.hidden, 2);
    let (y_ser, dx_ser, dwo_ser) = serial_reference(c, &x, &dy);
    let (y, dx, dwo) = run_tesseract(GridShape::new(2, 2), c, &x, &dy);
    assert_slices_close(y.data(), y_ser.data(), 2e-4);
    assert_slices_close(dx.data(), dx_ser.data(), 2e-4);
    assert_slices_close(dwo.data(), dwo_ser.data(), 2e-4);
}

#[test]
fn tesseract_layer_matches_serial_on_1x1x1() {
    let c = cfg();
    let x = random(c.rows(), c.hidden, 1);
    let dy = random(c.rows(), c.hidden, 2);
    let (y_ser, dx_ser, dwo_ser) = serial_reference(c, &x, &dy);
    let (y, dx, dwo) = run_tesseract(GridShape::new(1, 1), c, &x, &dy);
    assert_slices_close(y.data(), y_ser.data(), 2e-4);
    assert_slices_close(dx.data(), dx_ser.data(), 2e-4);
    assert_slices_close(dwo.data(), dwo_ser.data(), 2e-4);
}

#[test]
fn tesseract_layer_matches_serial_on_4x4x1_and_2x2x4() {
    // Wider mesh and deeper-than-dimension grid both stay correct.
    let c = TransformerConfig {
        batch: 16,
        seq: 2,
        hidden: 16,
        heads: 4,
        mlp_ratio: 2,
        layers: 1,
        eps: 1e-5,
    };
    let x = random(c.rows(), c.hidden, 3);
    let dy = random(c.rows(), c.hidden, 4);
    let (y_ser, dx_ser, _) = serial_reference(c, &x, &dy);
    for shape in [GridShape::new(4, 1), GridShape::new(2, 4)] {
        let (y, dx, _) = run_tesseract(shape, c, &x, &dy);
        assert_slices_close(y.data(), y_ser.data(), 5e-4);
        assert_slices_close(dx.data(), dx_ser.data(), 5e-4);
    }
}

#[test]
fn megatron_layer_matches_serial() {
    let c = cfg();
    let x = random(c.rows(), c.hidden, 1);
    let dy = random(c.rows(), c.hidden, 2);
    let (y_ser, dx_ser, dwo_ser) = serial_reference(c, &x, &dy);
    for p in [2usize, 4] {
        let out = Cluster::a100(p).run(|ctx| {
            let world = MegatronWorld::new(ctx, (0..p).collect());
            let mut layer = MegatronTransformerLayer::<DenseTensor>::new(&world, c, true, SEED, 0);
            let x_full = Arc::new(DenseTensor::from_matrix(x.clone()));
            let dy_full = Arc::new(DenseTensor::from_matrix(dy.clone()));
            let y = layer.forward(&world, ctx, &x_full);
            let dx = layer.backward(&world, ctx, &dy_full);
            // Wo is row-split [h/p, h]: rank r holds rows r·h/p..(r+1)·h/p.
            let mut dwo_block = None;
            layer.attn.wo.visit_params(&mut |pr| {
                if dwo_block.is_none() {
                    dwo_block = Some(pr.grad.clone());
                }
            });
            (y.matrix().clone(), dx.matrix().clone(), dwo_block.unwrap().into_matrix())
        });
        // Activations are replicated: every rank must hold the full result.
        for (y, dx, _) in &out.results {
            assert_slices_close(y.data(), y_ser.data(), 2e-4);
            assert_slices_close(dx.data(), dx_ser.data(), 2e-4);
        }
        // Row-split Wo gradient blocks assemble to the serial gradient.
        let blocks: Vec<Matrix> = out.results.iter().map(|(_, _, g)| g.clone()).collect();
        let dwo = Matrix::concat_rows(&blocks);
        assert_slices_close(dwo.data(), dwo_ser.data(), 2e-4);
    }
}

#[test]
fn optimus_matches_serial_stack() {
    let c = TransformerConfig { layers: 2, ..cfg() };
    let x = random(c.rows(), c.hidden, 5);
    let dy = random(c.rows(), c.hidden, 6);
    let mut serial = SerialTransformer::new(c, true, SEED, 0);
    let y_ser = serial.forward(&x);
    let dx_ser = serial.backward(&dy);
    let shape = GridShape::new(2, 1);
    let out = Cluster::a100(4).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let mut model = OptimusTransformer::<DenseTensor>::new(ctx, &grid, c, true, SEED, 0);
        let x_loc = Arc::new(DenseTensor::from_matrix(a_block(&x, shape, i, j, k)));
        let dy_loc = Arc::new(DenseTensor::from_matrix(a_block(&dy, shape, i, j, k)));
        let y = model.forward(&grid, ctx, &x_loc);
        let dx = model.backward(&grid, ctx, &dy_loc);
        (y.matrix().clone(), dx.matrix().clone())
    });
    let ys: Vec<Matrix> = out.results.iter().map(|(y, _)| y.clone()).collect();
    let dxs: Vec<Matrix> = out.results.iter().map(|(_, dx)| dx.clone()).collect();
    assert_slices_close(combine_c(&ys, shape).data(), y_ser.data(), 5e-4);
    assert_slices_close(combine_c(&dxs, shape).data(), dx_ser.data(), 5e-4);
}

#[test]
fn all_schemes_agree_with_each_other() {
    // The paper's central "no approximation" claim across arrangements:
    // [1,1,1], [2,2,1] and [2,2,2] produce the same outputs (Figure 7).
    let c = cfg();
    let x = random(c.rows(), c.hidden, 7);
    let dy = random(c.rows(), c.hidden, 8);
    let (y1, dx1, _) = run_tesseract(GridShape::new(1, 1), c, &x, &dy);
    let (y2, dx2, _) = run_tesseract(GridShape::new(2, 1), c, &x, &dy);
    let (y3, dx3, _) = run_tesseract(GridShape::new(2, 2), c, &x, &dy);
    assert_slices_close(y1.data(), y2.data(), 2e-4);
    assert_slices_close(y2.data(), y3.data(), 2e-4);
    assert_slices_close(dx1.data(), dx2.data(), 2e-4);
    assert_slices_close(dx2.data(), dx3.data(), 2e-4);
}

#[test]
fn weight_gradients_are_depth_synchronized() {
    // After backward, weight blocks at the same (i, j) but different k must
    // be identical (the §3.1 depth all-reduce of B').
    let c = cfg();
    let shape = GridShape::new(2, 2);
    let x = random(c.rows(), c.hidden, 9);
    let dy = random(c.rows(), c.hidden, 10);
    let out = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let mut layer = TesseractTransformerLayer::<DenseTensor>::new(ctx, &grid, c, true, SEED, 0);
        let x_loc = Arc::new(DenseTensor::from_matrix(a_block(&x, shape, i, j, k)));
        let dy_loc = Arc::new(DenseTensor::from_matrix(a_block(&dy, shape, i, j, k)));
        let _ = layer.forward(&grid, ctx, &x_loc);
        let _ = layer.backward(&grid, ctx, &dy_loc);
        let mut grads = Vec::new();
        layer.visit_params(&mut |pr| grads.push(pr.grad.clone().into_matrix()));
        grads
    });
    for i in 0..2 {
        for j in 0..2 {
            let k0 = &out.results[shape.offset_of(i, j, 0)];
            let k1 = &out.results[shape.offset_of(i, j, 1)];
            // Same number of non-bias params; biases exist only on row 0
            // but identically across depth, so the lists line up.
            assert_eq!(k0.len(), k1.len());
            for (g0, g1) in k0.iter().zip(k1.iter()) {
                assert_slices_close(g0.data(), g1.data(), 1e-6);
            }
        }
    }
}

#[test]
fn serial_weight_gradients_match_assembled_tesseract_gradients() {
    let c = cfg();
    let shape = GridShape::new(2, 2);
    let x = random(c.rows(), c.hidden, 11);
    let dy = random(c.rows(), c.hidden, 12);
    let mut serial = SerialTransformerLayer::new(c, true, SEED, 0);
    let _ = serial.forward(&x);
    let _ = serial.backward(&dy);

    let out = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let mut layer = TesseractTransformerLayer::<DenseTensor>::new(ctx, &grid, c, true, SEED, 0);
        let x_loc = Arc::new(DenseTensor::from_matrix(a_block(&x, shape, i, j, k)));
        let dy_loc = Arc::new(DenseTensor::from_matrix(a_block(&dy, shape, i, j, k)));
        let _ = layer.forward(&grid, ctx, &x_loc);
        let _ = layer.backward(&grid, ctx, &dy_loc);
        (
            layer.mlp.fc1.weight_grad().clone().into_matrix(),
            layer.mlp.fc2.weight_grad().clone().into_matrix(),
        )
    });
    let fc1: Vec<Matrix> = out.results.iter().map(|(a, _)| a.clone()).collect();
    let fc2: Vec<Matrix> = out.results.iter().map(|(_, b)| b.clone()).collect();
    let fc1_global = tesseract_core::partition::combine_b(&fc1, shape);
    let fc2_global = tesseract_core::partition::combine_b(&fc2, shape);
    assert_slices_close(fc1_global.data(), serial.mlp.fc1.dw.data(), 3e-4);
    assert_slices_close(fc2_global.data(), serial.mlp.fc2.dw.data(), 3e-4);
}

#[test]
fn fused_qkv_blocks_match_separate_serial_projections() {
    // Spot-check the fused layout: each rank's Wqkv block columns must be
    // [Wq_j | Wk_j | Wv_j] of the global per-projection matrices.
    let c = cfg();
    let shape = GridShape::new(2, 1);
    let out = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let layer = TesseractTransformerLayer::<DenseTensor>::new(ctx, &grid, c, true, SEED, 0);
        (grid.coords, layer.attn.wqkv.weight().clone().into_matrix())
    });
    let wq = tesseract_tensor::init::global_xavier(c.hidden, c.hidden, SEED, 0);
    let wk = tesseract_tensor::init::global_xavier(c.hidden, c.hidden, SEED, 1);
    let local = c.hidden / 2;
    for ((i, j, _), block) in &out.results {
        let expect_q = wq.block(i * local, j * local, local, local);
        let got_q = block.slice_cols(0, local);
        assert_eq!(got_q, expect_q, "rank ({i},{j}) Q block");
        let expect_k = wk.block(i * local, j * local, local, local);
        let got_k = block.slice_cols(local, 2 * local);
        assert_eq!(got_k, expect_k, "rank ({i},{j}) K block");
    }
}
