//! Planner fidelity: the numbers the planner reports are not estimates of
//! the chosen arrangement's behaviour — they *are* its behaviour. Every
//! ranked entry's dry-run must be bitwise reproducible by an independent
//! re-execution of the same candidate on the same topology, traced or not
//! (the simulator's virtual clocks are deterministic and trace-invariant).

use tesseract_core::TransformerConfig;
use tesseract_plan::{dry_run, plan, EntryStatus, PlanRequest};

fn small_cfg() -> TransformerConfig {
    TransformerConfig {
        batch: 8,
        seq: 16,
        hidden: 64,
        heads: 8,
        mlp_ratio: 4,
        layers: 2,
        eps: 1e-5,
    }
}

#[test]
fn reported_dryruns_replay_bitwise() {
    let mut req = PlanRequest::new(8, small_cfg());
    req.microbatches = 2;
    let p = plan(&req);
    let mut replayed = 0;
    for e in &p.entries {
        let (EntryStatus::Ranked(_), Some(reported)) = (&e.status, &e.dryrun) else {
            continue;
        };
        let replay = dry_run(&req.topology, &req.params, &e.candidate, &req.cfg, false);
        assert_eq!(reported.makespan_s, replay.makespan_s, "{} makespan", e.label);
        assert_eq!(reported.forward_s, replay.forward_s, "{} forward", e.label);
        assert_eq!(reported.peak_bytes, replay.peak_bytes, "{} peak bytes", e.label);
        assert_eq!(reported.comm_s, replay.comm_s, "{} comm", e.label);
        replayed += 1;
    }
    assert!(replayed >= 3, "expected several ranked entries, replayed {replayed}");
}

#[test]
fn winner_replays_bitwise_under_tracing() {
    // The planner runs untraced by default; re-running the winner with
    // tracing enabled must reproduce the reported makespan bitwise, so a
    // chosen arrangement can be handed straight to the trace tooling.
    let mut req = PlanRequest::new(8, small_cfg());
    req.microbatches = 2;
    let p = plan(&req);
    let w = p.winner().expect("a winner exists at 8 GPUs");
    let traced = dry_run(&req.topology, &req.params, &w.candidate, &req.cfg, true);
    assert_eq!(w.dryrun.unwrap(), traced, "tracing perturbed the winner's clocks");
}

#[test]
fn planning_twice_is_deterministic() {
    let req = PlanRequest::new(8, small_cfg());
    let a = plan(&req);
    let b = plan(&req);
    assert_eq!(a.entries.len(), b.entries.len());
    for (ea, eb) in a.entries.iter().zip(&b.entries) {
        assert_eq!(ea.label, eb.label);
        assert_eq!(ea.status, eb.status);
        assert_eq!(ea.dryrun, eb.dryrun, "{}", ea.label);
        assert_eq!(ea.analytic.compute_s, eb.analytic.compute_s);
        assert_eq!(ea.analytic.comm_s, eb.analytic.comm_s);
    }
}

// Property form of the same guarantee, over randomly drawn workloads and
// GPU budgets. Gated behind the `proptest-tests` feature: run with
//     cargo test -p tesseract-plan --features proptest-tests
#[cfg(feature = "proptest-tests")]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn planner_numbers_replay_for_random_workloads(
            gpus_pow in 1usize..4,       // 2, 4, 8 GPUs
            batch_mul in 1usize..4,      // batch 8, 16, 24
            layers_mul in 1usize..3,     // 2 or 4 layers
        ) {
            let cfg = TransformerConfig {
                batch: 8 * batch_mul,
                layers: 2 * layers_mul,
                ..small_cfg()
            };
            let mut req = PlanRequest::new(1 << gpus_pow, cfg);
            req.microbatches = 2;
            req.dryrun_keep = 3;
            let p = plan(&req);
            for e in &p.entries {
                let (EntryStatus::Ranked(_), Some(reported)) = (&e.status, &e.dryrun) else {
                    continue;
                };
                let replay = dry_run(&req.topology, &req.params, &e.candidate, &req.cfg, false);
                prop_assert_eq!(reported, &replay, "{} diverged on replay", &e.label);
            }
        }
    }
}
