//! Stage 2 of the search: ShadowTensor dry-runs on the simulated cluster.
//!
//! Each candidate is executed for one real training step — shapes and exact
//! flop/byte metering, no data — on a [`Cluster`] built from the *target*
//! topology and cost constants. The returned numbers come from the same
//! Meter/RankReport machinery the benches publish, so a planner decision is
//! backed by the same virtual clocks as the paper-table reproductions, and
//! re-running the winning arrangement reproduces the reported makespan
//! bitwise (the runs are deterministic; tracing does not perturb clocks).
//!
//! Step convention, uniform across schemes so ranks are comparable:
//! **checkpointed backward** (forward; then recompute-forward + true
//! backward), the convention of `bench::timing` and the paper's ≈3×
//! backward/forward ratio. The hybrid GPipe schedule runs all microbatch
//! forwards, then per-microbatch recompute + backward in reverse order,
//! then the data-parallel gradient sync.

use std::sync::Arc;

use tesseract_baselines::megatron::{MegatronTransformer, MegatronWorld};
use tesseract_comm::{CostParams, RankReport, RunConfig, RunOutput, Topology};
use tesseract_core::layers::StackOptions;
use tesseract_core::{Module, TesseractGrid, TesseractTransformer, TransformerConfig};
use tesseract_hybrid::HybridTransformer;
use tesseract_tensor::ShadowTensor;

use crate::candidate::Candidate;

/// What one simulated training step of a candidate measured.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DryRun {
    /// Simulated step seconds — max virtual time over ranks, what a
    /// host-side `time` of one iteration sees.
    pub makespan_s: f64,
    /// Simulated seconds of the forward phase (max over ranks; for hybrids
    /// this includes the pipeline fill).
    pub forward_s: f64,
    /// `makespan_s − forward_s`: recompute + backward (+ drain + grad sync).
    pub backward_s: f64,
    /// Peak activation-traffic proxy: max over ranks of bytes the step
    /// materialized.
    pub peak_bytes: u64,
    /// Measured peak of tape-held activation bytes: max over ranks of the
    /// [`RankReport::activation_bytes_peak`] high-water mark. This is the
    /// number sequence parallelism and recomputation actually shrink.
    pub activation_peak_bytes: u64,
    /// Fraction of collective wait the split-phase pipelines hid under
    /// compute: Σ hidden / (Σ hidden + Σ blocked) over all ranks, in [0, 1].
    pub hidden_wait_frac: f64,
    /// Max over ranks of seconds blocked in collectives.
    pub comm_s: f64,
}

fn collect(results: &[(f64, f64)], reports: &[RankReport], makespan: f64) -> DryRun {
    let forward = results.iter().map(|&(f, _)| f).fold(0.0, f64::max);
    let peak_bytes = reports.iter().map(|r| r.bytes_allocated).max().unwrap_or(0);
    let activation_peak_bytes = reports.iter().map(|r| r.activation_bytes_peak).max().unwrap_or(0);
    let hidden: u64 = reports.iter().map(|r| r.overlap_hidden_nanos).sum();
    let blocked: u64 = reports.iter().map(|r| r.comm_wait_nanos).sum();
    let denom = hidden + blocked;
    let hidden_wait_frac = if denom == 0 { 0.0 } else { hidden as f64 / denom as f64 };
    let comm_s = reports.iter().map(|r| r.comm_time).fold(0.0, f64::max);
    DryRun {
        makespan_s: makespan,
        forward_s: forward,
        backward_s: makespan - forward,
        peak_bytes,
        activation_peak_bytes,
        hidden_wait_frac,
        comm_s,
    }
}

fn finish(out: RunOutput<(f64, f64)>) -> DryRun {
    let makespan = out.makespan();
    collect(&out.results, &out.reports, makespan)
}

/// Runs one simulated training step of `cand` on `topo`/`params`. The
/// candidate must be feasible ([`Candidate::check`]); infeasible shapes
/// panic inside the construction paths. `trace` forwards to
/// [`RunConfig::with_trace`] — traced runs are bitwise identical to untraced
/// ones, so the planner's reported numbers can be re-derived alongside a
/// full event trace.
pub fn dry_run(
    topo: &Topology,
    params: &CostParams,
    cand: &Candidate,
    cfg: &TransformerConfig,
    trace: bool,
) -> DryRun {
    let run_cfg =
        RunConfig::from_env(0).with_topology(*topo).with_params(*params).with_trace(trace);
    dry_run_with_config(&run_cfg, cand, cfg)
}

/// [`dry_run`] driven by a full [`RunConfig`]: the cluster's topology, cost
/// constants and trace toggle come from the config, and the
/// sequence-parallel / recompute-every execution options are applied to
/// Tesseract-grid candidates (the Megatron and hybrid schedules have no SP
/// mode and ignore them). `run_cfg.world` is ignored — each candidate sets
/// its own world size.
pub fn dry_run_with_config(
    run_cfg: &RunConfig,
    cand: &Candidate,
    cfg: &TransformerConfig,
) -> DryRun {
    let opts = StackOptions {
        sequence_parallel: run_cfg.sequence_parallel,
        recompute_every: run_cfg.recompute_every,
    };
    match cand {
        Candidate::Tesseract { grid } => {
            let shape = *grid;
            let cfg = *cfg;
            let mut rc = *run_cfg;
            rc.world = shape.size();
            let out = rc.cluster().run(|ctx| {
                let grid = TesseractGrid::new(ctx, shape, 0);
                let mut model = TesseractTransformer::<ShadowTensor>::new_with_options(
                    ctx, &grid, cfg, true, 0, 0, opts,
                );
                let rows_local = cfg.rows() / (shape.q * shape.d);
                let x = Arc::new(ShadowTensor::new(rows_local, cfg.hidden / shape.q));
                let _ = model.forward(&grid, ctx, &x);
                ctx.flush_compute();
                let t_fwd = ctx.clock();
                // Checkpointed backward: recompute forward + true
                // backward. The first forward's caches are discarded for
                // real (`reset_tape`), so the reported activation peak is
                // the one the recompute convention actually holds.
                model.reset_tape(ctx);
                let y = model.forward(&grid, ctx, &x);
                let _ = model.backward(&grid, ctx, &y);
                ctx.flush_compute();
                (t_fwd, ctx.clock())
            });
            finish(out)
        }
        Candidate::Megatron { p } => {
            let p = *p;
            let cfg = *cfg;
            let mut rc = *run_cfg;
            rc.world = p;
            let out = rc.cluster().run(|ctx| {
                let world = MegatronWorld::from_mesh(ctx, &MegatronWorld::tp_mesh(p, 0));
                let mut model = MegatronTransformer::<ShadowTensor>::new(&world, cfg, true, 0, 0);
                // Activations are replicated: every rank sees the full batch.
                let x = Arc::new(ShadowTensor::new(cfg.rows(), cfg.hidden));
                let _ = model.forward(&world, ctx, &x);
                ctx.flush_compute();
                let t_fwd = ctx.clock();
                model.reset_tape(ctx);
                let y = model.forward(&world, ctx, &x);
                let _ = model.backward(&world, ctx, &y);
                ctx.flush_compute();
                (t_fwd, ctx.clock())
            });
            finish(out)
        }
        Candidate::Hybrid { shape, microbatches } => {
            let shape = *shape;
            let mb = *microbatches;
            // The engine wants the per-microbatch batch size; the planner's
            // cfg.batch is global.
            let engine_cfg = TransformerConfig { batch: cfg.batch / (shape.dp * mb), ..*cfg };
            let mut rc = *run_cfg;
            rc.world = shape.total();
            let out = rc.cluster().run(|ctx| {
                let mut eng =
                    HybridTransformer::<ShadowTensor>::new(ctx, shape, engine_cfg, true, 0);
                let rows_local = eng.cfg.rows() / (shape.grid.q * shape.grid.d);
                let cols_local = engine_cfg.hidden / shape.grid.q;
                // GPipe forward phase; stage inputs are stashed so the
                // checkpointed backward can recompute without resending
                // activations.
                let mut xs: Vec<Arc<ShadowTensor>> = Vec::with_capacity(mb);
                for _ in 0..mb {
                    let x: Arc<ShadowTensor> = if eng.stage.is_first() {
                        Arc::new(ShadowTensor::new(rows_local, cols_local))
                    } else {
                        eng.stage.recv_forward(ctx)
                    };
                    let y = eng.model.forward(&eng.grid, ctx, &x);
                    xs.push(x);
                    // The first forward's outputs are modelled as
                    // discarded (checkpointing); the backward phase
                    // recomputes them.
                    if !eng.stage.is_last() {
                        eng.stage.send_forward(ctx, y);
                    }
                }
                ctx.flush_compute();
                let t_fwd = ctx.clock();
                eng.model.reset_tape(ctx);
                // Backward phase in reverse microbatch order: recompute
                // this stage's forward from the stashed input, then run
                // the true backward on the recomputed tape.
                for m in (0..mb).rev() {
                    let y = eng.model.forward(&eng.grid, ctx, &xs[m]);
                    let dy: Arc<ShadowTensor> = if eng.stage.is_last() {
                        y // loss gradient modelled as the output itself
                    } else {
                        eng.stage.recv_backward(ctx)
                    };
                    let dx = eng.model.backward(&eng.grid, ctx, &dy);
                    if !eng.stage.is_first() {
                        eng.stage.send_backward(ctx, dx);
                    }
                }
                if shape.dp > 1 {
                    eng.dp.sync_gradients(ctx, &mut eng.model);
                }
                ctx.flush_compute();
                (t_fwd, ctx.clock())
            });
            finish(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesseract_core::GridShape;
    use tesseract_hybrid::HybridShape;

    fn cfg() -> TransformerConfig {
        TransformerConfig {
            batch: 8,
            seq: 16,
            hidden: 64,
            heads: 8,
            mlp_ratio: 4,
            layers: 2,
            eps: 1e-5,
        }
    }

    #[test]
    fn dry_runs_are_deterministic_and_trace_invariant() {
        let topo = Topology::meluxina();
        let params = CostParams::a100_cluster();
        let cand = Candidate::Tesseract { grid: GridShape::new(2, 2) };
        let a = dry_run(&topo, &params, &cand, &cfg(), false);
        let b = dry_run(&topo, &params, &cand, &cfg(), false);
        assert_eq!(a, b);
        let traced = dry_run(&topo, &params, &cand, &cfg(), true);
        assert_eq!(a, traced, "tracing must not perturb the virtual clocks");
    }

    #[test]
    fn hybrid_trivial_wrapper_matches_tesseract_schedule() {
        // dp = pp = 1 with one microbatch executes the same
        // forward/recompute/backward schedule as the bare grid; the layer
        // stacks are built from the same layer modules, so the virtual
        // clocks agree bitwise.
        let topo = Topology::meluxina();
        let params = CostParams::a100_cluster();
        let grid = GridShape::new(2, 1);
        let tess = dry_run(&topo, &params, &Candidate::Tesseract { grid }, &cfg(), false);
        let hybrid = dry_run(
            &topo,
            &params,
            &Candidate::Hybrid { shape: HybridShape::new(1, 1, grid), microbatches: 1 },
            &cfg(),
            false,
        );
        assert_eq!(tess.makespan_s, hybrid.makespan_s);
        assert_eq!(tess.forward_s, hybrid.forward_s);
    }

    #[test]
    fn sp_and_recompute_shrink_the_measured_activation_peak() {
        let base = RunConfig::new(0);
        let cand = Candidate::Tesseract { grid: GridShape::new(2, 1) };
        let dense = dry_run_with_config(&base, &cand, &cfg());
        let sp = dry_run_with_config(&base.with_sequence_parallel(true), &cand, &cfg());
        let sp_rec = dry_run_with_config(
            &base.with_sequence_parallel(true).with_recompute_every(Some(1)),
            &cand,
            &cfg(),
        );
        assert!(dense.activation_peak_bytes > 0, "dense dry run tracked no activations");
        assert!(
            sp.activation_peak_bytes < dense.activation_peak_bytes,
            "SP peak {} must be below dense {}",
            sp.activation_peak_bytes,
            dense.activation_peak_bytes
        );
        assert!(
            sp_rec.activation_peak_bytes < sp.activation_peak_bytes,
            "recompute peak {} must be below SP {}",
            sp_rec.activation_peak_bytes,
            sp.activation_peak_bytes
        );
    }

    #[test]
    fn hybrid_dry_run_covers_pipeline_and_dp() {
        let topo = Topology::meluxina();
        let params = CostParams::a100_cluster();
        let cand = Candidate::Hybrid {
            shape: HybridShape::new(2, 2, GridShape::new(1, 1)),
            microbatches: 2,
        };
        let r = dry_run(&topo, &params, &cand, &cfg(), false);
        assert!(r.makespan_s > 0.0);
        assert!(r.forward_s > 0.0 && r.backward_s > 0.0);
        assert!(r.peak_bytes > 0);
    }
}
