//! Stage 1 of the search: a cheap analytic α–β estimate per candidate.
//!
//! The estimate prices one training step (forward + checkpointed backward,
//! the convention of `bench::timing` and the paper's tables: backward ≈ 3×
//! forward) from the same [`CostParams`] the simulator charges, with every
//! collective priced by [`CostParams::phased_collective_time`] on the
//! *actual* fiber placements of the candidate's mesh on the target
//! [`Topology`] — so node packing (NVLink vs InfiniBand) shows up in the
//! estimate exactly as it does in the dry-run. The numbers are estimates,
//! not replays: SUMMA overlap, skew and pipeline fill are simplified. They
//! exist to prune the candidate list before the expensive ShadowTensor
//! dry-runs; the dry-run decides the final ranking.

use tesseract_comm::{CollectiveOp, CostParams, GroupPlacement, Mesh, Topology};
use tesseract_core::{GridShape, TransformerConfig};

use crate::candidate::Candidate;

/// Analytic step-time estimate, split into compute and everything else
/// (collectives, point-to-point, pipeline bubble).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnalyticScore {
    /// Seconds of per-rank GEMM/attention math on the critical path.
    pub compute_s: f64,
    /// Seconds of communication (plus pipeline bubble for hybrids).
    pub comm_s: f64,
}

impl AnalyticScore {
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.comm_s
    }
}

/// Worst phased cost of one collective over all fibers of `mesh` along the
/// named axis — distinct [`GroupPlacement`]s are priced once; the max is
/// what the makespan sees (the slowest fiber gates the step).
fn worst_fiber_cost(
    topo: &Topology,
    params: &CostParams,
    mesh: &Mesh,
    axis: &str,
    op: CollectiveOp,
    bytes: usize,
) -> f64 {
    let idx = mesh.axis_index(axis);
    let mut seen: Vec<GroupPlacement> = Vec::new();
    let mut worst = 0.0f64;
    for off in 0..mesh.size() {
        let coords = mesh.coords_of(off);
        if coords[idx] != 0 {
            continue; // one representative per fiber
        }
        let ranks = mesh.fiber_ranks(axis, &coords);
        let placement = topo.placement(&ranks);
        if seen.contains(&placement) {
            continue;
        }
        seen.push(placement);
        worst = worst.max(params.phased_collective_time(op, bytes, placement).total);
    }
    worst
}

/// Cost of one *forward* pass of a `layers`-deep Transformer slice over
/// `rows` activation rows on a Tesseract module, plus the per-backward
/// depth-wise weight-gradient sync.
struct ModuleCost {
    /// Per-rank forward compute seconds.
    compute_fwd: f64,
    /// Forward collective seconds (SUMMA panel broadcasts + layer-norm
    /// reductions).
    comm_fwd: f64,
    /// Depth-axis weight-gradient all-reduce seconds charged once per
    /// backward (zero when `d = 1`).
    depth_sync: f64,
}

/// The four row-activation GEMMs of one Transformer layer as `(a, b, c)`
/// shapes of `[a,b]×[b,c]`: QKV projection, attention output projection,
/// MLP up, MLP down.
fn layer_gemms(rows: usize, cfg: &TransformerConfig) -> [(usize, usize, usize); 4] {
    let h = cfg.hidden;
    let m = cfg.mlp_hidden();
    [(rows, h, 3 * h), (rows, h, h), (rows, h, m), (rows, m, h)]
}

fn tesseract_module_cost(
    topo: &Topology,
    params: &CostParams,
    grid: GridShape,
    base: usize,
    rows: usize,
    layers: usize,
    cfg: &TransformerConfig,
) -> ModuleCost {
    let (q, d) = (grid.q, grid.d);
    let p = grid.size() as f64;
    let mesh = grid.mesh(base);
    let mut flops_fwd = 0.0f64;
    let mut comm_layer = 0.0f64;
    let mut depth_layer = 0.0f64;
    for (a, b, c) in layer_gemms(rows, cfg) {
        flops_fwd += 2.0 * a as f64 * b as f64 * c as f64;
        // SUMMA runs q steps; each broadcasts an A panel over the row group
        // (the fiber along "col") and a B panel over the column group (the
        // fiber along "row").
        let bytes_a = (a / (q * d)) * (b / q) * 4;
        let bytes_b = (b / q) * (c / q) * 4;
        comm_layer += q as f64
            * (worst_fiber_cost(topo, params, &mesh, "col", CollectiveOp::Broadcast, bytes_a)
                + worst_fiber_cost(topo, params, &mesh, "row", CollectiveOp::Broadcast, bytes_b));
        if d > 1 {
            // Weight gradients are replicated over depth: one all-reduce of
            // this rank's [b/q, c/q] block per backward.
            let bytes_w = (b / q) * (c / q) * 4;
            depth_layer +=
                worst_fiber_cost(topo, params, &mesh, "depth", CollectiveOp::AllReduce, bytes_w);
        }
    }
    // Attention scores/context (head-local, no extra collectives).
    flops_fwd += 4.0 * rows as f64 * cfg.seq as f64 * cfg.hidden as f64;
    // Two layer-norms per layer reduce statistics across the hidden axis
    // (the row group): small but latency-relevant at scale.
    let ln_bytes = (rows / (q * d)) * 8;
    comm_layer +=
        2.0 * worst_fiber_cost(topo, params, &mesh, "col", CollectiveOp::AllReduce, ln_bytes);
    // Kernel launches: ~q per SUMMA step per GEMM plus a fixed per-layer
    // tail of elementwise ops.
    let kernels = (layers * (4 * q + 12)) as u64;
    ModuleCost {
        compute_fwd: params.compute_time(layers as f64 * flops_fwd / p, kernels),
        comm_fwd: layers as f64 * comm_layer,
        depth_sync: layers as f64 * depth_layer,
    }
}

/// Analytic step-time estimate of one candidate on the target topology.
///
/// Conventions (matching the dry-run in [`crate::dryrun`]): every scheme
/// checkpoints activations, so a step is forward + recompute-forward + true
/// backward — 4× the forward compute and ~4× the forward collective volume
/// for SUMMA schemes (Megatron's backward re-runs its 2 all-reduces per
/// layer, giving 3× its forward comm), plus the depth-wise gradient sync.
pub fn analytic_score(
    topo: &Topology,
    params: &CostParams,
    cand: &Candidate,
    cfg: &TransformerConfig,
) -> AnalyticScore {
    match cand {
        Candidate::Megatron { p } => {
            let pf = *p as f64;
            let rows = cfg.rows();
            let mut flops_fwd = 0.0f64;
            for (a, b, c) in layer_gemms(rows, cfg) {
                flops_fwd += 2.0 * a as f64 * b as f64 * c as f64;
            }
            flops_fwd += 4.0 * rows as f64 * cfg.seq as f64 * cfg.hidden as f64;
            flops_fwd *= cfg.layers as f64;
            let kernels = (cfg.layers * 16) as u64;
            let compute_fwd = params.compute_time(flops_fwd / pf, kernels);
            // Two all-reduces of the full activation block per layer
            // (attention output + MLP output), over the whole tp group.
            let placement = topo.placement(&(0..*p).collect::<Vec<_>>());
            let ar = params
                .phased_collective_time(CollectiveOp::AllReduce, rows * cfg.hidden * 4, placement)
                .total;
            let comm_fwd = cfg.layers as f64 * 2.0 * ar;
            AnalyticScore { compute_s: 4.0 * compute_fwd, comm_s: 3.0 * comm_fwd }
        }
        Candidate::Tesseract { grid } => {
            let m = tesseract_module_cost(topo, params, *grid, 0, cfg.rows(), cfg.layers, cfg);
            AnalyticScore {
                compute_s: 4.0 * m.compute_fwd,
                comm_s: 4.0 * m.comm_fwd + m.depth_sync,
            }
        }
        Candidate::Hybrid { shape, microbatches } => {
            let mb = *microbatches;
            let micro_rows = (cfg.batch / (shape.dp * mb)) * cfg.seq;
            let stage_layers = cfg.layers / shape.pp;
            let m = tesseract_module_cost(
                topo,
                params,
                shape.grid,
                shape.module_base(0, 0),
                micro_rows,
                stage_layers,
                cfg,
            );
            // GPipe fill-and-drain: (mb + pp − 1) waves of forward then of
            // backward; each backward also pays the depth sync.
            let t_f = m.compute_fwd + m.comm_fwd;
            let t_b = 3.0 * t_f + m.depth_sync;
            let waves = (mb + shape.pp - 1) as f64;
            let mut total = waves * (t_f + t_b);
            if shape.pp > 1 {
                // Activation/gradient hand-off between adjacent stages: the
                // corresponding ranks sit one module apart.
                let bytes_act =
                    (micro_rows / (shape.grid.q * shape.grid.d)) * (cfg.hidden / shape.grid.q) * 4;
                let peers = [shape.module_base(0, 0), shape.module_base(0, 1)];
                let p2p = params
                    .phased_collective_time(
                        CollectiveOp::SendRecv,
                        bytes_act,
                        topo.placement(&peers),
                    )
                    .total;
                total += 2.0 * mb as f64 * p2p;
            }
            if shape.dp > 1 {
                // Post-step gradient all-reduce over the dp fibers of the
                // 5-axis mesh: each rank holds its stage's 1/q² weight
                // shard.
                let bytes_dp = (cfg.param_count() / (shape.pp * shape.grid.q * shape.grid.q)) * 4;
                let mesh = shape.mesh();
                total +=
                    worst_fiber_cost(topo, params, &mesh, "dp", CollectiveOp::AllReduce, bytes_dp);
            }
            let compute_s = 4.0 * mb as f64 * m.compute_fwd;
            AnalyticScore { compute_s, comm_s: total - compute_s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesseract_hybrid::HybridShape;

    fn cfg() -> TransformerConfig {
        TransformerConfig {
            batch: 16,
            seq: 32,
            hidden: 128,
            heads: 8,
            mlp_ratio: 4,
            layers: 4,
            eps: 1e-5,
        }
    }

    #[test]
    fn trivial_hybrid_wrapper_scores_identically_to_its_grid() {
        // A hybrid with dp = pp = 1 and one microbatch is the same
        // arrangement as the bare Tesseract grid, and the analytic model
        // agrees (up to float re-association: the hybrid path computes
        // comm as total − compute). The memo itself never re-derives this —
        // duplicates share the owner's score by signature.
        let topo = Topology::meluxina();
        let params = CostParams::a100_cluster();
        let grid = GridShape::new(2, 2);
        let tess = analytic_score(&topo, &params, &Candidate::Tesseract { grid }, &cfg());
        let hybrid = analytic_score(
            &topo,
            &params,
            &Candidate::Hybrid { shape: HybridShape::new(1, 1, grid), microbatches: 1 },
            &cfg(),
        );
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0);
        assert!(close(tess.compute_s, hybrid.compute_s), "{tess:?} vs {hybrid:?}");
        assert!(close(tess.comm_s, hybrid.comm_s), "{tess:?} vs {hybrid:?}");
    }

    #[test]
    fn megatron_pays_more_comm_than_tesseract_at_scale() {
        // The paper's core claim in analytic form: at 64 GPUs the 1-D
        // scheme's full-activation all-reduces dwarf Tesseract's panel
        // broadcasts.
        let topo = Topology::meluxina();
        let params = CostParams::a100_cluster();
        let big = TransformerConfig {
            batch: 16,
            seq: 512,
            hidden: 3072,
            heads: 64,
            mlp_ratio: 4,
            layers: 8,
            eps: 1e-5,
        };
        let mega = analytic_score(&topo, &params, &Candidate::Megatron { p: 64 }, &big);
        let tess = analytic_score(
            &topo,
            &params,
            &Candidate::Tesseract { grid: GridShape::new(4, 4) },
            &big,
        );
        assert!(tess.comm_s < mega.comm_s, "tess {tess:?} vs mega {mega:?}");
        assert!(tess.total_s() < mega.total_s());
    }

    #[test]
    fn free_comm_leaves_only_compute() {
        let topo = Topology::meluxina();
        let params = CostParams::a100_cluster().free_comm();
        let s = analytic_score(
            &topo,
            &params,
            &Candidate::Tesseract { grid: GridShape::new(2, 2) },
            &cfg(),
        );
        assert_eq!(s.comm_s, 0.0);
        assert!(s.compute_s > 0.0);
    }
}
