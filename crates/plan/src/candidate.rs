//! Candidate processor decompositions and their enumeration.
//!
//! A [`Candidate`] is one way to spend `p` GPUs on the workload: Megatron-LM
//! 1-D tensor parallelism, a Tesseract `[q, q, d]` grid, or the 5-axis
//! hybrid `[dp, pp, depth, row, col]` arrangement. [`enumerate`] generates
//! every structural factorization of the GPU budget (the paper's studied
//! range `1 ≤ d ≤ q` for Tesseract depth); feasibility against a concrete
//! workload is a separate, `Result`-returning step ([`Candidate::check`]) so
//! the planner can report *why* each rejected candidate cannot run.

use tesseract_core::{GridShape, ShapeError, TransformerConfig};
use tesseract_hybrid::HybridShape;

/// One processor decomposition the planner can evaluate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Candidate {
    /// Megatron-LM 1-D tensor parallelism over all `p` ranks.
    Megatron { p: usize },
    /// A Tesseract `[q, q, d]` grid over all ranks.
    Tesseract { grid: GridShape },
    /// dp × pp × Tesseract hybrid; `microbatches` is the GPipe schedule
    /// depth (1 when `pp == 1`: microbatching without a pipeline only adds
    /// latency).
    Hybrid { shape: HybridShape, microbatches: usize },
}

/// Which families of candidates a search may draw from. Table 1/2
/// validation restricts the menu to the paper's own schemes
/// ([`CandidateMenu::paper_schemes`]); sweeps use [`CandidateMenu::all`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CandidateMenu {
    pub megatron: bool,
    pub tesseract: bool,
    pub hybrid: bool,
}

impl CandidateMenu {
    pub fn all() -> Self {
        Self { megatron: true, tesseract: true, hybrid: true }
    }

    /// The schemes the paper's Table 1/Table 2 compare: Megatron-LM and
    /// Tesseract (Optimus is the `d = 1` Tesseract row).
    pub fn paper_schemes() -> Self {
        Self { megatron: true, tesseract: true, hybrid: false }
    }
}

impl Candidate {
    /// Total GPUs the candidate consumes.
    pub fn gpus(&self) -> usize {
        match self {
            Candidate::Megatron { p } => *p,
            Candidate::Tesseract { grid } => grid.size(),
            Candidate::Hybrid { shape, .. } => shape.total(),
        }
    }

    /// Human/JSON label, e.g. `tesseract[4,4,4]` or
    /// `hybrid[dp=2,pp=2,tess=[2,2,2],mb=4]`.
    pub fn label(&self) -> String {
        match self {
            Candidate::Megatron { p } => format!("megatron[{p}]"),
            Candidate::Tesseract { grid } => format!("tesseract[{0},{0},{1}]", grid.q, grid.d),
            Candidate::Hybrid { shape, microbatches } => format!(
                "hybrid[dp={},pp={},tess=[{2},{2},{3}],mb={4}]",
                shape.dp, shape.pp, shape.grid.q, shape.grid.d, microbatches
            ),
        }
    }

    /// Canonicalized mesh signature for analytic-score memoization: unit
    /// `dp`/`pp` axes are dropped (a hybrid with `dp = pp = 1` and one
    /// microbatch *is* its inner Tesseract grid) and the two `q`-sized mesh
    /// sides are recorded size-sorted, so symmetric candidates (transposed
    /// row/col at `q×q`, trivial hybrid wrappers) collapse to one key.
    pub fn signature(&self) -> String {
        // Row/col sides are recorded size-sorted; `GridShape` is square by
        // construction, so the sort is the identity today, but the key
        // format stays canonical if rectangular meshes ever appear.
        fn tess_sig(grid: &GridShape) -> String {
            let mut sides = [grid.q, grid.q];
            sides.sort_unstable();
            format!("tess:d{}:q{}x{}", grid.d, sides[0], sides[1])
        }
        match self {
            Candidate::Megatron { p } => format!("mega:p{p}"),
            Candidate::Tesseract { grid } => tess_sig(grid),
            Candidate::Hybrid { shape, microbatches } => {
                if shape.dp == 1 && shape.pp == 1 && *microbatches == 1 {
                    tess_sig(&shape.grid)
                } else {
                    format!(
                        "hyb:dp{}:pp{}:mb{}:{}",
                        shape.dp,
                        shape.pp,
                        microbatches,
                        tess_sig(&shape.grid)
                    )
                }
            }
        }
    }

    /// Per-microbatch batch size of a hybrid candidate (the global batch is
    /// split over `dp` replicas, then over `microbatches`).
    pub fn micro_batch(&self, cfg: &TransformerConfig) -> Option<usize> {
        match self {
            Candidate::Hybrid { shape, microbatches } => {
                Some(cfg.batch / (shape.dp * microbatches))
            }
            _ => None,
        }
    }

    /// Feasibility of this candidate for `cfg` on a `gpus`-rank budget:
    /// capacity first, then every divisibility constraint, reported as the
    /// structured [`ShapeError`] the construction paths now return.
    pub fn check(&self, cfg: &TransformerConfig, gpus: usize) -> Result<(), ShapeError> {
        match self {
            Candidate::Megatron { p } => {
                if *p != gpus {
                    return Err(ShapeError::Capacity {
                        what: format!("megatron[{p}]"),
                        needed: *p,
                        available: gpus,
                    });
                }
                if cfg.heads % p != 0 {
                    return Err(ShapeError::Indivisible {
                        what: "heads",
                        value: cfg.heads,
                        by: "p",
                        divisor: *p,
                    });
                }
                if cfg.hidden % p != 0 {
                    return Err(ShapeError::Indivisible {
                        what: "hidden",
                        value: cfg.hidden,
                        by: "p",
                        divisor: *p,
                    });
                }
                if cfg.mlp_hidden() % p != 0 {
                    return Err(ShapeError::Indivisible {
                        what: "mlp hidden",
                        value: cfg.mlp_hidden(),
                        by: "p",
                        divisor: *p,
                    });
                }
                Ok(())
            }
            Candidate::Tesseract { grid } => {
                grid.check_world(gpus)?;
                cfg.check_for_grid(grid.q, grid.d)
            }
            Candidate::Hybrid { shape, microbatches } => {
                shape.check_world(gpus)?;
                shape.check_carve(cfg.layers)?;
                let split = shape.dp * microbatches;
                if cfg.batch % split != 0 {
                    return Err(ShapeError::Indivisible {
                        what: "batch",
                        value: cfg.batch,
                        by: "dp*microbatches",
                        divisor: split,
                    });
                }
                let micro = TransformerConfig { batch: cfg.batch / split, ..*cfg };
                micro.check_for_grid(shape.grid.q, shape.grid.d)
            }
        }
    }
}

/// All `[q, q, d]` factorizations of `p` within the paper's studied range
/// `1 ≤ d ≤ q`, largest `q` first (the order the paper's tables list).
fn square_depth_factorizations(p: usize) -> Vec<GridShape> {
    let mut out = Vec::new();
    let mut q = 1usize;
    while q * q <= p {
        if p % (q * q) == 0 {
            let d = p / (q * q);
            if d <= q {
                out.push(GridShape::new(q, d));
            }
        }
        q += 1;
    }
    out.reverse();
    out
}

fn divisors(n: usize) -> Vec<usize> {
    (1..=n).filter(|k| n % k == 0).collect()
}

/// Enumerates every structural candidate for a `gpus`-rank budget from the
/// requested menu. Workload feasibility is *not* checked here — the planner
/// runs [`Candidate::check`] per candidate so infeasible arrangements are
/// reported with their rejection reason instead of silently skipped.
///
/// The hybrid family deliberately includes the trivial `dp = pp = 1`
/// wrapper of each Tesseract grid: it is the same arrangement spelled in
/// 5-axis form, and the canonicalized-signature memo collapses it onto the
/// Tesseract candidate (scored once, logged as a duplicate).
pub fn enumerate(gpus: usize, menu: CandidateMenu, microbatches: usize) -> Vec<Candidate> {
    assert!(gpus >= 1, "a plan needs at least one GPU");
    assert!(microbatches >= 1, "a GPipe schedule needs at least one microbatch");
    let mut out = Vec::new();
    if menu.megatron {
        out.push(Candidate::Megatron { p: gpus });
    }
    if menu.tesseract {
        for grid in square_depth_factorizations(gpus) {
            out.push(Candidate::Tesseract { grid });
        }
    }
    if menu.hybrid {
        for dp in divisors(gpus) {
            for pp in divisors(gpus / dp) {
                let module = gpus / (dp * pp);
                for grid in square_depth_factorizations(module) {
                    let mb = if pp == 1 { 1 } else { microbatches };
                    // `try_new` cannot fail here (dp, pp ≥ 1) but keeps the
                    // construction on the Result path.
                    let shape = match HybridShape::try_new(dp, pp, grid) {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    out.push(Candidate::Hybrid { shape, microbatches: mb });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorizations_respect_d_at_most_q() {
        let grids = square_depth_factorizations(64);
        assert_eq!(grids, vec![GridShape::new(8, 1), GridShape::new(4, 4)]);
        // 128 = q²d admits only [8,8,2] under d ≤ q.
        assert_eq!(square_depth_factorizations(128), vec![GridShape::new(8, 2)]);
    }

    #[test]
    fn labels_and_signatures() {
        let t = Candidate::Tesseract { grid: GridShape::new(4, 4) };
        assert_eq!(t.label(), "tesseract[4,4,4]");
        assert_eq!(t.signature(), "tess:d4:q4x4");
        let m = Candidate::Megatron { p: 64 };
        assert_eq!(m.label(), "megatron[64]");
        let h = Candidate::Hybrid {
            shape: HybridShape::new(2, 2, GridShape::new(2, 2)),
            microbatches: 4,
        };
        assert_eq!(h.label(), "hybrid[dp=2,pp=2,tess=[2,2,2],mb=4]");
        assert_eq!(h.signature(), "hyb:dp2:pp2:mb4:tess:d2:q2x2");
    }

    #[test]
    fn trivial_hybrid_wrapper_shares_the_tesseract_signature() {
        let grid = GridShape::new(4, 2);
        let tess = Candidate::Tesseract { grid };
        let wrapper = Candidate::Hybrid { shape: HybridShape::new(1, 1, grid), microbatches: 1 };
        assert_eq!(tess.signature(), wrapper.signature());
        // A real pipeline does not collapse.
        let piped = Candidate::Hybrid { shape: HybridShape::new(1, 2, grid), microbatches: 4 };
        assert_ne!(tess.signature(), piped.signature());
    }

    #[test]
    fn check_reports_descriptive_rejections() {
        let cfg = TransformerConfig {
            batch: 16,
            seq: 8,
            hidden: 64,
            heads: 8,
            mlp_ratio: 4,
            layers: 8,
            eps: 1e-5,
        };
        // 12 GPUs: megatron needs 8 | heads.
        let m = Candidate::Megatron { p: 12 };
        assert_eq!(m.check(&cfg, 12).unwrap_err().to_string(), "heads 8 not divisible by p = 12");
        // Wrong capacity.
        let t = Candidate::Tesseract { grid: GridShape::new(2, 2) };
        assert_eq!(
            t.check(&cfg, 12).unwrap_err().to_string(),
            "tesseract [2,2,2] needs 8 ranks but 12 are available"
        );
        // Hybrid with pp not dividing layers.
        let h = Candidate::Hybrid {
            shape: HybridShape::new(1, 3, GridShape::new(2, 1)),
            microbatches: 1,
        };
        assert_eq!(h.check(&cfg, 12).unwrap_err().to_string(), "layers 8 not divisible by pp = 3");
        // Feasible Tesseract.
        assert_eq!(t.check(&cfg, 8), Ok(()));
    }

    #[test]
    fn enumerate_covers_all_menus() {
        let all = enumerate(8, CandidateMenu::all(), 2);
        assert!(all.contains(&Candidate::Megatron { p: 8 }));
        assert!(all.contains(&Candidate::Tesseract { grid: GridShape::new(2, 2) }));
        // Trivial wrapper present (collapsed later by signature).
        assert!(all.contains(&Candidate::Hybrid {
            shape: HybridShape::new(1, 1, GridShape::new(2, 2)),
            microbatches: 1,
        }));
        // A real pipeline split of the same budget: 1 × 2 × [2,2,1].
        assert!(all.contains(&Candidate::Hybrid {
            shape: HybridShape::new(1, 2, GridShape::new(2, 1)),
            microbatches: 2,
        }));
        let paper = enumerate(8, CandidateMenu::paper_schemes(), 2);
        assert!(paper.iter().all(|c| !matches!(c, Candidate::Hybrid { .. })));
    }
}
