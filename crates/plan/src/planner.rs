//! The two-stage arrangement search.
//!
//! [`plan`] enumerates every structural candidate for the GPU budget,
//! rejects infeasible ones with their [`ShapeError`] reason, collapses
//! canonically-equivalent arrangements onto one signature (memoizing the
//! analytic score), prices the survivors with the analytic α–β model, keeps
//! the `dryrun_keep` cheapest, and ranks those by a full ShadowTensor
//! dry-run on the simulated cluster. The winner is the ranked entry with
//! the smallest simulated makespan — at a fixed global batch that is also
//! the throughput (sequences/s) winner, the paper's Table 1/2 metric.

use std::collections::HashMap;

use tesseract_comm::{CostParams, Topology};
use tesseract_core::{ShapeError, TransformerConfig};

use crate::analytic::{analytic_score, AnalyticScore};
use crate::candidate::{enumerate, Candidate, CandidateMenu};
use crate::dryrun::{dry_run, DryRun};

/// Inputs of one planning run.
#[derive(Clone, Debug)]
pub struct PlanRequest {
    /// GPU budget: every candidate must consume exactly this many ranks.
    pub gpus: usize,
    /// Workload: `cfg.batch` is the *global* batch (hybrid candidates split
    /// it over dp replicas and microbatches).
    pub cfg: TransformerConfig,
    /// Node topology candidates are placed on.
    pub topology: Topology,
    /// Cost constants of the simulated hardware.
    pub params: CostParams,
    /// Which candidate families to enumerate.
    pub menu: CandidateMenu,
    /// GPipe depth for pipelined hybrids (pp > 1).
    pub microbatches: usize,
    /// How many analytic-stage survivors get a dry-run.
    pub dryrun_keep: usize,
    /// Collect event traces during the dry-runs (bitwise-invariant).
    pub trace: bool,
}

impl PlanRequest {
    /// Defaults: meluxina topology, A100 cost constants, every candidate
    /// family, 4 microbatches, 8 dry-run slots, no tracing.
    pub fn new(gpus: usize, cfg: TransformerConfig) -> Self {
        Self {
            gpus,
            cfg,
            topology: Topology::meluxina(),
            params: CostParams::a100_cluster(),
            menu: CandidateMenu::all(),
            microbatches: 4,
            dryrun_keep: 8,
            trace: false,
        }
    }
}

/// Where a feasible candidate ended up in the search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EntryStatus {
    /// Dry-run and ranked; 0 is the winner.
    Ranked(usize),
    /// Survived feasibility but its analytic score fell outside the
    /// `dryrun_keep` cheapest — never dry-run.
    PrunedByAnalytic,
    /// Canonically equivalent to an earlier candidate (same signature);
    /// scored once under that entry's label.
    Duplicate { of: String },
}

/// One feasible candidate's scores.
#[derive(Clone, Debug)]
pub struct PlanEntry {
    pub candidate: Candidate,
    pub label: String,
    pub signature: String,
    pub analytic: AnalyticScore,
    /// Present iff `status` is `Ranked`.
    pub dryrun: Option<DryRun>,
    pub status: EntryStatus,
}

impl PlanEntry {
    /// Paper metric: global sequences per second through one fwd+bwd step
    /// (present iff the entry was dry-run).
    pub fn throughput_seq_s(&self, cfg: &TransformerConfig) -> Option<f64> {
        self.dryrun.map(|d| cfg.batch as f64 / d.makespan_s)
    }
}

/// The search result: every feasible candidate with its scores, every
/// infeasible candidate with its rejection reason, and the search-coverage
/// counters the CI smoke and the bench JSON surface.
#[derive(Clone, Debug)]
pub struct Plan {
    pub gpus: usize,
    pub cfg: TransformerConfig,
    /// Ranked entries first (by rank), then analytic-pruned (cheapest
    /// first), then duplicates.
    pub entries: Vec<PlanEntry>,
    /// `(label, reason)` of every enumerated-but-infeasible candidate.
    pub infeasible: Vec<(String, ShapeError)>,
    /// Analytic scores served from the signature memo instead of being
    /// recomputed (== number of duplicate arrangements collapsed).
    pub analytic_memo_hits: usize,
    /// Feasible, non-duplicate candidates that never got a dry-run.
    pub pruned_dryruns: usize,
}

impl Plan {
    /// The winning entry (rank 0), if any candidate was feasible.
    pub fn winner(&self) -> Option<&PlanEntry> {
        self.entries.iter().find(|e| e.status == EntryStatus::Ranked(0))
    }

    /// Renders the ranked table plus coverage counters as plain text.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "plan for {} GPUs, batch {} seq {} hidden {} heads {} layers {}\n",
            self.gpus,
            self.cfg.batch,
            self.cfg.seq,
            self.cfg.hidden,
            self.cfg.heads,
            self.cfg.layers
        ));
        out.push_str(
            "  rank  arrangement                               analytic(s)  makespan(s)  seq/s      peak(MB)  act-peak(MB)  hidden-wait\n",
        );
        for e in &self.entries {
            match (&e.status, &e.dryrun) {
                (EntryStatus::Ranked(r), Some(d)) => {
                    out.push_str(&format!(
                        "  {:>4}  {:<41} {:>10.4}  {:>10.4}  {:>8.2}  {:>8.1}  {:>12.1}  {:>10.3}\n",
                        r,
                        e.label,
                        e.analytic.total_s(),
                        d.makespan_s,
                        self.cfg.batch as f64 / d.makespan_s,
                        d.peak_bytes as f64 / 1e6,
                        d.activation_peak_bytes as f64 / 1e6,
                        d.hidden_wait_frac,
                    ));
                }
                (EntryStatus::PrunedByAnalytic, _) => {
                    out.push_str(&format!(
                        "     -  {:<41} {:>10.4}  (pruned by analytic stage)\n",
                        e.label,
                        e.analytic.total_s(),
                    ));
                }
                (EntryStatus::Duplicate { of }, _) => {
                    out.push_str(&format!("     -  {:<41} (duplicate of {of})\n", e.label));
                }
                _ => {}
            }
        }
        for (label, err) in &self.infeasible {
            out.push_str(&format!("     x  {label:<41} infeasible: {err}\n"));
        }
        out.push_str(&format!(
            "  coverage: {} feasible ({} dry-run, {} pruned, {} duplicates collapsed), {} infeasible, {} analytic memo hits\n",
            self.entries.len(),
            self.entries.iter().filter(|e| matches!(e.status, EntryStatus::Ranked(_))).count(),
            self.pruned_dryruns,
            self.entries.iter().filter(|e| matches!(e.status, EntryStatus::Duplicate { .. })).count(),
            self.infeasible.len(),
            self.analytic_memo_hits,
        ));
        out
    }
}

/// Runs the two-stage search. See the module docs for the pipeline.
pub fn plan(req: &PlanRequest) -> Plan {
    let candidates = enumerate(req.gpus, req.menu, req.microbatches);

    // Stage 0: feasibility (Result-based, so rejections carry their reason).
    let mut feasible: Vec<Candidate> = Vec::new();
    let mut infeasible: Vec<(String, ShapeError)> = Vec::new();
    for cand in candidates {
        match cand.check(&req.cfg, req.gpus) {
            Ok(()) => feasible.push(cand),
            Err(e) => infeasible.push((cand.label(), e)),
        }
    }

    // Stage 1: analytic scores, memoized by canonical signature. The first
    // candidate with a signature owns it; later holders are duplicates and
    // reuse the memoized score.
    let mut memo: HashMap<String, (usize, AnalyticScore)> = HashMap::new();
    let mut analytic_memo_hits = 0usize;
    let mut scored: Vec<PlanEntry> = Vec::new();
    for cand in feasible {
        let signature = cand.signature();
        let (analytic, status) = match memo.get(&signature) {
            Some(&(owner, score)) => {
                analytic_memo_hits += 1;
                (score, EntryStatus::Duplicate { of: scored[owner].label.clone() })
            }
            None => {
                let score = analytic_score(&req.topology, &req.params, &cand, &req.cfg);
                memo.insert(signature.clone(), (scored.len(), score));
                (score, EntryStatus::PrunedByAnalytic) // promoted below if kept
            }
        };
        scored.push(PlanEntry {
            candidate: cand,
            label: cand.label(),
            signature,
            analytic,
            dryrun: None,
            status,
        });
    }

    // Stage 2: dry-run the `dryrun_keep` analytically cheapest unique
    // candidates.
    let mut unique: Vec<usize> = (0..scored.len())
        .filter(|&i| !matches!(scored[i].status, EntryStatus::Duplicate { .. }))
        .collect();
    unique.sort_by(|&a, &b| {
        scored[a]
            .analytic
            .total_s()
            .partial_cmp(&scored[b].analytic.total_s())
            .expect("analytic scores are finite")
            .then(a.cmp(&b))
    });
    let keep = req.dryrun_keep.max(1).min(unique.len());
    let pruned_dryruns = unique.len() - keep;
    let mut ranked: Vec<(usize, DryRun)> = unique[..keep]
        .iter()
        .map(|&i| {
            let d = dry_run(&req.topology, &req.params, &scored[i].candidate, &req.cfg, req.trace);
            (i, d)
        })
        .collect();
    ranked.sort_by(|a, b| {
        a.1.makespan_s
            .partial_cmp(&b.1.makespan_s)
            .expect("makespans are finite")
            .then(a.0.cmp(&b.0))
    });
    for (rank, &(i, d)) in ranked.iter().enumerate() {
        scored[i].dryrun = Some(d);
        scored[i].status = EntryStatus::Ranked(rank);
    }

    // Present ranked entries first, then pruned by ascending analytic cost,
    // then duplicates.
    let mut order: Vec<usize> = (0..scored.len()).collect();
    order.sort_by(|&a, &b| {
        fn key(e: &PlanEntry) -> (usize, usize) {
            match e.status {
                EntryStatus::Ranked(r) => (0, r),
                EntryStatus::PrunedByAnalytic => (1, 0),
                EntryStatus::Duplicate { .. } => (2, 0),
            }
        }
        let (ka, kb) = (key(&scored[a]), key(&scored[b]));
        ka.cmp(&kb)
            .then(
                scored[a]
                    .analytic
                    .total_s()
                    .partial_cmp(&scored[b].analytic.total_s())
                    .expect("analytic scores are finite"),
            )
            .then(a.cmp(&b))
    });
    let entries: Vec<PlanEntry> = order.into_iter().map(|i| scored[i].clone()).collect();

    Plan { gpus: req.gpus, cfg: req.cfg, entries, infeasible, analytic_memo_hits, pruned_dryruns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesseract_core::GridShape;

    fn small_cfg() -> TransformerConfig {
        TransformerConfig {
            batch: 8,
            seq: 16,
            hidden: 64,
            heads: 8,
            mlp_ratio: 4,
            layers: 2,
            eps: 1e-5,
        }
    }

    #[test]
    fn plan_ranks_and_memoizes_at_8_gpus() {
        let mut req = PlanRequest::new(8, small_cfg());
        req.microbatches = 2;
        let p = plan(&req);
        let winner = p.winner().expect("some candidate must be feasible");
        assert!(winner.dryrun.is_some());
        // The trivial hybrid wrapper of [2,2,2] collapses onto the
        // Tesseract candidate: at least one memo hit and one duplicate.
        assert!(p.analytic_memo_hits >= 1, "memo hits: {}", p.analytic_memo_hits);
        assert!(
            p.entries.iter().any(|e| matches!(e.status, EntryStatus::Duplicate { .. })),
            "{}",
            p.describe()
        );
        // Ranks are contiguous from 0.
        let mut ranks: Vec<usize> = p
            .entries
            .iter()
            .filter_map(|e| match e.status {
                EntryStatus::Ranked(r) => Some(r),
                _ => None,
            })
            .collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..ranks.len()).collect::<Vec<_>>());
        // Winner has the smallest makespan of all ranked entries.
        let best = winner.dryrun.unwrap().makespan_s;
        for e in &p.entries {
            if let Some(d) = e.dryrun {
                assert!(d.makespan_s >= best);
            }
        }
    }

    #[test]
    fn pruning_is_logged_when_the_keep_budget_binds() {
        let mut req = PlanRequest::new(8, small_cfg());
        req.microbatches = 2;
        req.dryrun_keep = 2;
        let p = plan(&req);
        assert!(p.pruned_dryruns > 0);
        assert!(p.entries.iter().any(|e| e.status == EntryStatus::PrunedByAnalytic));
        assert!(p.describe().contains("pruned"));
    }

    #[test]
    fn infeasible_candidates_carry_their_reason() {
        // 12 GPUs: no q²d factorization under d ≤ q except q=2,d=3 (d>q) —
        // nothing feasible for Tesseract; Megatron fails on heads | p.
        let req = PlanRequest::new(12, small_cfg());
        let p = plan(&req);
        let mega = p
            .infeasible
            .iter()
            .find(|(label, _)| label == "megatron[12]")
            .expect("megatron[12] must be rejected");
        assert_eq!(mega.1.to_string(), "heads 8 not divisible by p = 12");
    }

    #[test]
    fn tesseract_only_menu_stays_tesseract() {
        let mut req = PlanRequest::new(8, small_cfg());
        req.menu = CandidateMenu { megatron: false, tesseract: true, hybrid: false };
        let p = plan(&req);
        let w = p.winner().unwrap();
        assert_eq!(w.candidate, Candidate::Tesseract { grid: GridShape::new(2, 2) });
    }
}
