//! Arrangement auto-tuner for the simulated Tesseract cluster.
//!
//! Given a GPU budget, a workload ([`TransformerConfig`]) and a node
//! topology, the planner answers the question the paper answers by hand in
//! Tables 1–2: *which processor arrangement should these GPUs form?* It
//! enumerates every structural decomposition — Megatron-LM 1-D, Tesseract
//! `[q, q, d]` with `1 ≤ d ≤ q`, and 5-axis `[dp, pp, depth, row, col]`
//! hybrids — and searches in two stages:
//!
//! 1. **Analytic** ([`analytic_score`]): a cheap α–β estimate per candidate,
//!    priced on the candidate's actual fiber placements over the topology
//!    (so NVLink vs InfiniBand boundaries are visible). Canonically
//!    equivalent arrangements share one memoized score.
//! 2. **Dry-run** ([`dry_run`]): the analytically cheapest survivors execute
//!    one real (shape-only, [`ShadowTensor`]-metered) training step on the
//!    simulated cluster; the final ranking is by simulated makespan, backed
//!    by the same deterministic virtual clocks as the paper-table benches.
//!
//! Entry point: build a [`PlanRequest`] and call [`plan`]; the returned
//! [`Plan`] carries the winner, the full ranked table with per-candidate
//! cost breakdowns, every infeasible candidate with its [`ShapeError`]
//! reason, and the search-coverage counters (memo hits, pruned dry-runs).
//!
//! [`TransformerConfig`]: tesseract_core::TransformerConfig
//! [`ShapeError`]: tesseract_core::ShapeError
//! [`ShadowTensor`]: tesseract_tensor::ShadowTensor

pub mod analytic;
pub mod candidate;
pub mod dryrun;
pub mod planner;

pub use analytic::{analytic_score, AnalyticScore};
pub use candidate::{enumerate, Candidate, CandidateMenu};
pub use dryrun::{dry_run, DryRun};
pub use planner::{plan, EntryStatus, Plan, PlanEntry, PlanRequest};
