//! Std-only, in-tree stand-in for the `criterion` crate.
//!
//! The offline build environment cannot fetch crates from a registry, so the
//! bench targets link against this shim instead (cargo dependency rename:
//! `criterion = { package = "tesseract-criterion", .. }`). It implements the
//! subset the workspace's benches use — `Criterion`, `benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! with a simple measurement loop: per sample, run the closure enough times
//! to cover a minimum window, and report the median over samples.
//!
//! No statistics engine, plots, or baseline comparison; the numbers are
//! honest wall-clock medians printed to stdout, good enough to eyeball
//! regressions. The `gemm_sweep` bin is the machine-readable perf record.

use std::time::{Duration, Instant};

/// Target accumulated time per sample; closures faster than this are batched.
const MIN_SAMPLE_WINDOW: Duration = Duration::from_millis(2);

/// Top-level driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 20 }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&id.into(), 20, f);
        self
    }
}

/// Identifier combining a function name and a parameter, as in criterion.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl ToString, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id.to_string()), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Passed to the measured closure; [`Bencher::iter`] times one sample.
pub struct Bencher {
    batch: u32,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Calibrate: grow the batch until one sample covers the minimum window.
    let mut batch = 1u32;
    loop {
        let mut b = Bencher { batch, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= MIN_SAMPLE_WINDOW || batch >= 1 << 20 {
            break;
        }
        batch = batch.saturating_mul(2);
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher { batch, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_secs_f64() / batch as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
    println!(
        "bench {label:<40} median {:>12}  (min {}, max {}, {} samples x {} iters)",
        fmt_ns(median),
        fmt_ns(lo),
        fmt_ns(hi),
        samples,
        batch
    );
}

fn fmt_ns(secs: f64) -> String {
    let ns = secs * 1e9;
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Registers a list of benchmark functions under one group name, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("nn", 64).to_string(), "nn/64");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
