//! Parameter initialization.
//!
//! The paper initializes parameter matrices with Xavier initialization
//! (§4: "Xavier initialized parameter matrices") and fixes seeds to compare
//! arrangements. A key requirement for the Figure-7 parity experiment is
//! **partition-consistent initialization**: a `[h, 4h]` weight initialized
//! on one device must equal the assembly of its `[h/q, 4h/q]` partitions
//! initialized rank-by-rank. We achieve this by always sampling the *global*
//! matrix from the parameter's own forked stream and letting each rank carve
//! out its block; sampling cost is negligible at the scales we train.

use crate::matrix::Matrix;
use crate::rng::Xoshiro256StarStar;

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut Xoshiro256StarStar) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::random_uniform(rows, cols, -a, a, rng)
}

/// Xavier/Glorot normal: `N(0, 2 / (fan_in + fan_out))`.
pub fn xavier_normal(rows: usize, cols: usize, rng: &mut Xoshiro256StarStar) -> Matrix {
    let std = (2.0 / (rows + cols) as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.normal() * std)
}

/// Samples the global `[rows, cols]` Xavier matrix from the stream forked at
/// `param_id` off `root`, so every rank deterministically reconstructs the
/// same global weight regardless of grid arrangement.
pub fn global_xavier(rows: usize, cols: usize, root_seed: u64, param_id: u64) -> Matrix {
    let mut root = Xoshiro256StarStar::seed_from_u64(root_seed);
    let mut rng = root.fork(param_id);
    xavier_uniform(rows, cols, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_uniform_within_bound() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let m = xavier_uniform(64, 64, &mut rng);
        let a = (6.0 / 128.0f32).sqrt();
        assert!(m.data().iter().all(|&v| v > -a && v < a));
    }

    #[test]
    fn xavier_normal_variance_close() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let m = xavier_normal(100, 100, &mut rng);
        let target = 2.0 / 200.0f32;
        let mean = m.sum() / m.len() as f32;
        let var = m.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / m.len() as f32;
        assert!(mean.abs() < 0.01);
        assert!((var - target).abs() / target < 0.1);
    }

    #[test]
    fn global_xavier_is_reproducible_and_param_dependent() {
        let a = global_xavier(8, 8, 42, 0);
        let b = global_xavier(8, 8, 42, 0);
        let c = global_xavier(8, 8, 42, 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
