//! Neural-network primitives on dense matrices: activations, row softmax,
//! layer normalization (Eq. 13/14 of the paper) and cross-entropy loss.
//!
//! These are the *serial* kernels; the distributed layers compose their
//! partial-sum versions from `TensorLike` primitives plus collectives, and
//! the tests in `tesseract-core` check them against these references.

use crate::matrix::Matrix;

/// GELU activation (tanh approximation, as used by BERT/GPT/Megatron).
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`] with respect to its input.
pub fn gelu_grad(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = SQRT_2_OVER_PI * (x + 0.044715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * SQRT_2_OVER_PI * (1.0 + 3.0 * 0.044715 * x * x)
}

/// Applies GELU elementwise.
pub fn gelu_matrix(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for v in out.data_mut() {
        *v = gelu(*v);
    }
    out
}

/// Elementwise GELU backward: `dX = dY ∘ gelu'(X)`.
pub fn gelu_backward_matrix(x: &Matrix, dy: &Matrix) -> Matrix {
    assert_eq!(x.shape(), dy.shape());
    let mut out = dy.clone();
    for (g, &xi) in out.data_mut().iter_mut().zip(x.data().iter()) {
        *g *= gelu_grad(xi);
    }
    out
}

/// Numerically-stable softmax over each row.
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    softmax_rows_inplace(&mut out);
    out
}

/// In-place form of [`softmax_rows`]: mutates `x` instead of allocating a
/// fresh matrix. [`softmax_rows`] is implemented as clone + this, so the two
/// are bitwise-identical by construction; decode-time attention uses this
/// variant to avoid a per-step full-matrix allocation.
pub fn softmax_rows_inplace(x: &mut Matrix) {
    for i in 0..x.rows() {
        softmax_row_prefix(x.row_mut(i));
    }
}

/// Softmax over one row slice (the shared kernel of the in-place variants).
fn softmax_row_prefix(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// Masked in-place row softmax: row `i` is softmaxed over its first
/// `limits[i]` entries only; the remaining entries are zeroed (they carry no
/// probability mass). This is the causal-attention kernel — during prefill,
/// token `t` of a request may only attend to positions `0..=t`, so
/// `limits[t] = cache_len + t + 1`.
///
/// Bitwise contract: row `i` of the result equals
/// `softmax_rows(x.slice_cols(0, limits[i]))` padded with zeros — the masked
/// path runs the exact same max/exp/sum/scale sequence over the prefix as
/// the allocating path does over a sliced row (tested in this module).
pub fn softmax_rows_masked_inplace(x: &mut Matrix, limits: &[usize]) {
    assert_eq!(x.rows(), limits.len(), "softmax mask: one limit per row");
    let cols = x.cols();
    for (i, &limit) in limits.iter().enumerate() {
        assert!(limit <= cols, "softmax mask: limit {limit} exceeds {cols} columns");
        let row = x.row_mut(i);
        softmax_row_prefix(&mut row[..limit]);
        for v in &mut row[limit..] {
            *v = 0.0;
        }
    }
}

/// Softmax backward given the forward output `y` and upstream gradient `dy`:
/// `dx_i = y_i * (dy_i - Σ_j y_j dy_j)` per row.
pub fn softmax_rows_backward(y: &Matrix, dy: &Matrix) -> Matrix {
    assert_eq!(y.shape(), dy.shape());
    let mut out = Matrix::zeros(y.rows(), y.cols());
    for i in 0..y.rows() {
        let yr = y.row(i);
        let dyr = dy.row(i);
        let dot: f32 = yr.iter().zip(dyr.iter()).map(|(a, b)| a * b).sum();
        for ((o, &yv), &dyv) in out.row_mut(i).iter_mut().zip(yr.iter()).zip(dyr.iter()) {
            *o = yv * (dyv - dot);
        }
    }
    out
}

/// Output of a layer-norm forward pass, caching what the backward needs.
pub struct LayerNormCache {
    /// Normalized output `X̂`.
    pub y: Matrix,
    /// `1 / sqrt(Var[X] + eps)` per row.
    pub inv_std: Vec<f32>,
}

/// Layer normalization over each row (Eq. 13), without affine parameters, as
/// in the paper's description of the residual-connection normalization.
pub fn layernorm_rows(x: &Matrix, eps: f32) -> LayerNormCache {
    let n = x.cols() as f32;
    let mut y = x.clone();
    let mut inv_std = Vec::with_capacity(x.rows());
    for i in 0..y.rows() {
        let row = y.row_mut(i);
        let mean = row.iter().sum::<f32>() / n;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let inv = 1.0 / (var + eps).sqrt();
        for v in row.iter_mut() {
            *v = (*v - mean) * inv;
        }
        inv_std.push(inv);
    }
    LayerNormCache { y, inv_std }
}

/// Layer-norm backward (Eq. 14): given `dY = δJ/δX̂`, the cached normalized
/// output `X̂` and `1/sqrt(Var+eps)`, returns `dX`.
pub fn layernorm_rows_backward(cache: &LayerNormCache, dy: &Matrix) -> Matrix {
    let y = &cache.y;
    assert_eq!(y.shape(), dy.shape());
    let n = y.cols() as f32;
    let mut dx = Matrix::zeros(y.rows(), y.cols());
    for i in 0..y.rows() {
        let yr = y.row(i);
        let dyr = dy.row(i);
        let sum_dy: f32 = dyr.iter().sum();
        let sum_y_dy: f32 = yr.iter().zip(dyr.iter()).map(|(a, b)| a * b).sum();
        let inv = cache.inv_std[i];
        for ((o, &yv), &dyv) in dx.row_mut(i).iter_mut().zip(yr.iter()).zip(dyr.iter()) {
            *o = (dyv - (yv * sum_y_dy + sum_dy) / n) * inv;
        }
    }
    dx
}

/// Adds a row-vector bias to every row.
pub fn bias_add(x: &Matrix, bias: &[f32]) -> Matrix {
    assert_eq!(x.cols(), bias.len());
    let mut out = x.clone();
    for i in 0..out.rows() {
        for (v, b) in out.row_mut(i).iter_mut().zip(bias.iter()) {
            *v += b;
        }
    }
    out
}

/// Mean cross-entropy of `logits` (rows = samples) against integer labels,
/// plus the gradient with respect to the logits.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(logits.rows(), labels.len());
    let probs = softmax_rows(logits);
    let n = logits.rows() as f32;
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < logits.cols(), "label {label} out of range");
        loss -= probs[(i, label)].max(1e-12).ln();
        grad[(i, label)] -= 1.0;
    }
    grad.scale_assign(1.0 / n);
    (loss / n, grad)
}

/// Count of argmax-correct rows (classification accuracy numerator).
pub fn count_correct(logits: &Matrix, labels: &[usize]) -> usize {
    assert_eq!(logits.rows(), labels.len());
    let mut correct = 0;
    for (i, &label) in labels.iter().enumerate() {
        let row = logits.row(i);
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(j, _)| j)
            .unwrap();
        if argmax == label {
            correct += 1;
        }
    }
    correct
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    #[test]
    fn gelu_known_values() {
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
        // Asymptotics: gelu(x) -> x for large x, -> 0 for very negative x.
        assert!((gelu(6.0) - 6.0).abs() < 1e-4);
        assert!(gelu(-6.0).abs() < 1e-4);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        let h = 1e-3f32;
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let fd = (gelu(x + h) - gelu(x - h)) / (2.0 * h);
            assert!((gelu_grad(x) - fd).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let x = Matrix::random_uniform(5, 8, -4.0, 4.0, &mut rng);
        let y = softmax_rows(&x);
        for i in 0..5 {
            let s: f32 = y.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(y.row(i).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn softmax_inplace_is_bitwise_identical_to_allocating() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(21);
        let x = Matrix::random_uniform(7, 9, -5.0, 5.0, &mut rng);
        let allocating = softmax_rows(&x);
        let mut inplace = x.clone();
        softmax_rows_inplace(&mut inplace);
        assert_eq!(allocating.data(), inplace.data());
    }

    #[test]
    fn masked_softmax_matches_sliced_allocating_path_bitwise() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(22);
        let x = Matrix::random_uniform(5, 8, -4.0, 4.0, &mut rng);
        let limits = [1usize, 3, 8, 5, 2];
        let mut masked = x.clone();
        softmax_rows_masked_inplace(&mut masked, &limits);
        for (i, &limit) in limits.iter().enumerate() {
            // Reference: slice the prefix out, run the allocating softmax.
            let prefix = softmax_rows(&x.slice_rows(i, i + 1).slice_cols(0, limit));
            assert_eq!(&masked.row(i)[..limit], prefix.data(), "row {i}");
            assert!(masked.row(i)[limit..].iter().all(|&v| v == 0.0), "row {i} tail");
        }
    }

    #[test]
    fn masked_softmax_with_full_limits_equals_plain_softmax() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(23);
        let x = Matrix::random_uniform(4, 6, -3.0, 3.0, &mut rng);
        let mut masked = x.clone();
        softmax_rows_masked_inplace(&mut masked, &[6, 6, 6, 6]);
        assert_eq!(masked.data(), softmax_rows(&x).data());
    }

    #[test]
    #[should_panic(expected = "limit 9 exceeds 8 columns")]
    fn masked_softmax_rejects_out_of_range_limits() {
        let mut x = Matrix::zeros(1, 8);
        softmax_rows_masked_inplace(&mut x, &[9]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let mut shifted = x.clone();
        for v in shifted.data_mut() {
            *v += 100.0;
        }
        crate::assert_slices_close(softmax_rows(&x).data(), softmax_rows(&shifted).data(), 1e-6);
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let x = Matrix::random_uniform(2, 4, -1.0, 1.0, &mut rng);
        let dy = Matrix::random_uniform(2, 4, -1.0, 1.0, &mut rng);
        let y = softmax_rows(&x);
        let dx = softmax_rows_backward(&y, &dy);
        let h = 1e-3f32;
        for i in 0..2 {
            for j in 0..4 {
                let mut xp = x.clone();
                xp[(i, j)] += h;
                let mut xm = x.clone();
                xm[(i, j)] -= h;
                let yp = softmax_rows(&xp);
                let ym = softmax_rows(&xm);
                let mut fd = 0.0f32;
                for jj in 0..4 {
                    fd += dy[(i, jj)] * (yp[(i, jj)] - ym[(i, jj)]) / (2.0 * h);
                }
                assert!((dx[(i, j)] - fd).abs() < 2e-3, "({i},{j}): {} vs {}", dx[(i, j)], fd);
            }
        }
    }

    #[test]
    fn layernorm_produces_zero_mean_unit_var() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let x = Matrix::random_uniform(4, 16, -3.0, 3.0, &mut rng);
        let cache = layernorm_rows(&x, 1e-5);
        for i in 0..4 {
            let row = cache.y.row(i);
            let mean: f32 = row.iter().sum::<f32>() / 16.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn layernorm_backward_matches_finite_difference() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let x = Matrix::random_uniform(2, 6, -2.0, 2.0, &mut rng);
        let dy = Matrix::random_uniform(2, 6, -1.0, 1.0, &mut rng);
        let cache = layernorm_rows(&x, 1e-5);
        let dx = layernorm_rows_backward(&cache, &dy);
        let h = 1e-2f32;
        for i in 0..2 {
            for j in 0..6 {
                let mut xp = x.clone();
                xp[(i, j)] += h;
                let mut xm = x.clone();
                xm[(i, j)] -= h;
                let yp = layernorm_rows(&xp, 1e-5).y;
                let ym = layernorm_rows(&xm, 1e-5).y;
                let mut fd = 0.0f32;
                for jj in 0..6 {
                    fd += dy[(i, jj)] * (yp[(i, jj)] - ym[(i, jj)]) / (2.0 * h);
                }
                assert!((dx[(i, j)] - fd).abs() < 5e-2, "({i},{j}): {} vs {}", dx[(i, j)], fd);
            }
        }
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Matrix::from_vec(2, 3, vec![10.0, 0.0, 0.0, 0.0, 10.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let logits = Matrix::random_uniform(3, 4, -1.0, 1.0, &mut rng);
        let labels = [2usize, 0, 3];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let h = 1e-2f32;
        for i in 0..3 {
            for j in 0..4 {
                let mut lp = logits.clone();
                lp[(i, j)] += h;
                let mut lm = logits.clone();
                lm[(i, j)] -= h;
                let (fp, _) = softmax_cross_entropy(&lp, &labels);
                let (fm, _) = softmax_cross_entropy(&lm, &labels);
                let fd = (fp - fm) / (2.0 * h);
                assert!((grad[(i, j)] - fd).abs() < 1e-3, "({i},{j})");
            }
        }
    }

    #[test]
    fn bias_add_broadcasts() {
        let x = Matrix::zeros(2, 3);
        let out = bias_add(&x, &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn count_correct_counts() {
        let logits = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
        assert_eq!(count_correct(&logits, &[0, 1, 1]), 2);
    }
}
