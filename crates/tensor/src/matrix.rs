//! Row-major dense `f32` matrix with the block operations the distributed
//! algorithms need (partition extraction/insertion, row/column slicing,
//! concatenation).

use crate::rng::Xoshiro256StarStar;

/// A dense row-major matrix of `f32`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from an explicit row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match {rows}x{cols}");
        Self { rows, cols, data }
    }

    /// Builds from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Uniform random matrix in `[lo, hi)`.
    pub fn random_uniform(
        rows: usize,
        cols: usize,
        lo: f32,
        hi: f32,
        rng: &mut Xoshiro256StarStar,
    ) -> Self {
        let data = (0..rows * cols).map(|_| rng.uniform(lo, hi)).collect();
        Self { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow of row `i`.
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Extracts the sub-matrix with rows `r0..r0+nr` and cols `c0..c0+nc`.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Matrix {
        assert!(r0 + nr <= self.rows && c0 + nc <= self.cols, "block out of bounds");
        let mut out = Matrix::zeros(nr, nc);
        for i in 0..nr {
            let src = &self.data[(r0 + i) * self.cols + c0..(r0 + i) * self.cols + c0 + nc];
            out.row_mut(i).copy_from_slice(src);
        }
        out
    }

    /// Writes `sub` into the block with top-left corner `(r0, c0)`.
    pub fn set_block(&mut self, r0: usize, c0: usize, sub: &Matrix) {
        assert!(r0 + sub.rows <= self.rows && c0 + sub.cols <= self.cols, "block out of bounds");
        for i in 0..sub.rows {
            let dst_start = (r0 + i) * self.cols + c0;
            self.data[dst_start..dst_start + sub.cols].copy_from_slice(sub.row(i));
        }
    }

    /// Rows `r0..r1` as a new matrix.
    pub fn slice_rows(&self, r0: usize, r1: usize) -> Matrix {
        self.block(r0, 0, r1 - r0, self.cols)
    }

    /// Columns `c0..c1` as a new matrix.
    pub fn slice_cols(&self, c0: usize, c1: usize) -> Matrix {
        self.block(0, c0, self.rows, c1 - c0)
    }

    /// Vertical concatenation (stack rows). All parts must share `cols`.
    pub fn concat_rows(parts: &[Matrix]) -> Matrix {
        assert!(!parts.is_empty());
        let cols = parts[0].cols;
        assert!(parts.iter().all(|p| p.cols == cols), "column mismatch in concat_rows");
        let rows = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Horizontal concatenation (stack columns). All parts must share `rows`.
    pub fn concat_cols(parts: &[Matrix]) -> Matrix {
        assert!(!parts.is_empty());
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows), "row mismatch in concat_cols");
        let cols = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut c0 = 0;
        for p in parts {
            out.set_block(0, c0, p);
            c0 += p.cols;
        }
        out
    }

    /// Elementwise in-place addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Elementwise in-place subtraction.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= b;
        }
    }

    /// Elementwise in-place scaling.
    pub fn scale_assign(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trip() {
        let mut m = Matrix::zeros(3, 4);
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f32);
        assert_eq!(m.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j * 3) as f32);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_swaps_entries() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], t[(j, i)]);
            }
        }
    }

    #[test]
    fn block_and_set_block_round_trip() {
        let m = Matrix::from_fn(4, 6, |i, j| (i * 100 + j) as f32);
        let b = m.block(1, 2, 2, 3);
        assert_eq!(b.shape(), (2, 3));
        assert_eq!(b[(0, 0)], m[(1, 2)]);
        assert_eq!(b[(1, 2)], m[(2, 4)]);
        let mut m2 = Matrix::zeros(4, 6);
        m2.set_block(1, 2, &b);
        assert_eq!(m2[(2, 4)], m[(2, 4)]);
        assert_eq!(m2[(0, 0)], 0.0);
    }

    #[test]
    fn concat_rows_inverts_slice_rows() {
        let m = Matrix::from_fn(6, 3, |i, j| (i * 3 + j) as f32);
        let parts = vec![m.slice_rows(0, 2), m.slice_rows(2, 5), m.slice_rows(5, 6)];
        assert_eq!(Matrix::concat_rows(&parts), m);
    }

    #[test]
    fn concat_cols_inverts_slice_cols() {
        let m = Matrix::from_fn(3, 6, |i, j| (i * 6 + j) as f32);
        let parts = vec![m.slice_cols(0, 1), m.slice_cols(1, 4), m.slice_cols(4, 6)];
        assert_eq!(Matrix::concat_cols(&parts), m);
    }

    #[test]
    fn eye_is_identity_under_index() {
        let m = Matrix::eye(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn elementwise_ops() {
        let mut a = Matrix::full(2, 2, 3.0);
        let b = Matrix::full(2, 2, 1.5);
        a.add_assign(&b);
        assert_eq!(a, Matrix::full(2, 2, 4.5));
        a.sub_assign(&b);
        assert_eq!(a, Matrix::full(2, 2, 3.0));
        a.scale_assign(2.0);
        assert_eq!(a, Matrix::full(2, 2, 6.0));
    }

    #[test]
    fn frobenius_norm_of_unit_row() {
        let m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 2.0, 0.0]);
        assert!((m.frobenius_norm() - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "block out of bounds")]
    fn block_out_of_bounds_panics() {
        Matrix::zeros(2, 2).block(1, 1, 2, 2);
    }
}
