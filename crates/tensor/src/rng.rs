//! Deterministic pseudo-random number generation.
//!
//! The reproduction needs bitwise-reproducible initialization streams that
//! are identical whether a weight matrix is materialized on one device or
//! assembled from per-rank partitions. An in-tree xoshiro256** keeps the
//! stream stable across dependency upgrades (external RNG crates change
//! their value streams between major versions).

/// SplitMix64, used to expand a single `u64` seed into xoshiro state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the generator via SplitMix64 so that any `u64` seed (including
    /// zero) produces a well-mixed state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 24 bits of mantissa entropy (exact for f32).
    pub fn next_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform in `[0, 1)` with 53 bits of mantissa entropy.
    pub fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, n)` via rejection-free Lemire reduction.
    /// Slightly biased for astronomically large `n`; fine for data shuffling.
    pub fn next_usize(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal via Box–Muller. Uses f64 internally for accuracy.
    pub fn normal(&mut self) -> f32 {
        loop {
            let u1 = self.next_f64();
            if u1 > 1e-12 {
                let u2 = self.next_f64();
                let r = (-2.0 * u1.ln()).sqrt();
                return (r * (2.0 * std::f64::consts::PI * u2).cos()) as f32;
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_usize(i + 1);
            xs.swap(i, j);
        }
    }

    /// Derives an independent child generator; used to give every rank /
    /// every parameter its own stream from one experiment seed.
    pub fn fork(&mut self, stream: u64) -> Self {
        let mix = self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        Self::seed_from_u64(mix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Xoshiro256StarStar::seed_from_u64(42);
        let mut b = Xoshiro256StarStar::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256StarStar::seed_from_u64(1);
        let mut b = Xoshiro256StarStar::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn next_usize_covers_range() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(13);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.next_usize(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(17);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Xoshiro256StarStar::seed_from_u64(5);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
