//! Execution metering.
//!
//! Every tensor op — dense or shadow — charges a [`Meter`] with the flops it
//! performs, the bytes it allocates for its output, and one "kernel launch".
//! The cluster runtime converts these into simulated time
//! (`flops / device_rate + kernels * launch_overhead`), which is what the
//! Table 1 / Table 2 reproductions report instead of host wall-clock.

/// Accumulated compute-side costs for one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Meter {
    /// Floating-point operations performed (multiply-accumulate counts as 2).
    pub flops: f64,
    /// Bytes allocated for op outputs (activation-memory proxy).
    pub bytes_allocated: u64,
    /// Number of kernel launches (each costs fixed overhead on a real GPU).
    pub kernels: u64,
}

impl Meter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one op: `flops` of math producing `out_bytes` of output.
    /// Zero-flop ops (slices, concatenations, transposes) model as views /
    /// fused data movement and launch no kernel — real frameworks do not
    /// pay a launch per reshape.
    pub fn record(&mut self, flops: f64, out_bytes: usize) {
        self.flops += flops;
        self.bytes_allocated += out_bytes as u64;
        if flops > 0.0 {
            self.kernels += 1;
        }
    }

    /// Merges another meter into this one (e.g. per-layer into per-step).
    pub fn merge(&mut self, other: &Meter) {
        self.flops += other.flops;
        self.bytes_allocated += other.bytes_allocated;
        self.kernels += other.kernels;
    }

    /// Returns the current totals and resets the meter, for converting a
    /// batch of ops into simulated time exactly once.
    pub fn take(&mut self) -> Meter {
        std::mem::take(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut m = Meter::new();
        m.record(100.0, 64);
        m.record(50.0, 32);
        assert_eq!(m.flops, 150.0);
        assert_eq!(m.bytes_allocated, 96);
        assert_eq!(m.kernels, 2);
    }

    #[test]
    fn zero_flop_ops_launch_no_kernel() {
        let mut m = Meter::new();
        m.record(0.0, 1024);
        assert_eq!(m.kernels, 0);
        assert_eq!(m.bytes_allocated, 1024);
    }

    #[test]
    fn take_resets() {
        let mut m = Meter::new();
        m.record(10.0, 8);
        let snap = m.take();
        assert_eq!(snap.kernels, 1);
        assert_eq!(m, Meter::default());
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = Meter::new();
        a.record(1.0, 2);
        let mut b = Meter::new();
        b.record(3.0, 4);
        a.merge(&b);
        assert_eq!(a.flops, 4.0);
        assert_eq!(a.bytes_allocated, 6);
        assert_eq!(a.kernels, 2);
    }
}
