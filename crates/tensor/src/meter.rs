//! Execution metering.
//!
//! Every tensor op — dense or shadow — charges a [`Meter`] with the flops it
//! performs, the bytes it allocates for its output, and one "kernel launch".
//! The cluster runtime converts these into simulated time
//! (`flops / device_rate + kernels * launch_overhead`), which is what the
//! Table 1 / Table 2 reproductions report instead of host wall-clock.

use crate::matmul::{KernelPath, MicroKernel};

/// Accumulated compute-side costs for one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Meter {
    /// Floating-point operations performed (multiply-accumulate counts as 2).
    pub flops: f64,
    /// Bytes allocated for op outputs (activation-memory proxy).
    pub bytes_allocated: u64,
    /// Number of kernel launches (each costs fixed overhead on a real GPU).
    pub kernels: u64,
    /// GEMM launches dispatched to the blocked-parallel kernel.
    pub gemms_blocked: u64,
    /// GEMM launches that fell back to the serial kernel (below the
    /// `matmul::planned_path` size threshold).
    pub gemms_serial: u64,
    /// Blocked-GEMM dispatches that ran the scalar micro-kernel backend
    /// (`matmul::MicroKernel::Scalar`, the portable 4×8 tile).
    pub gemms_kernel_scalar: u64,
    /// Blocked-GEMM dispatches that ran the AVX2+FMA micro-kernel backend
    /// (`matmul::MicroKernel::Avx2`, the 6×16 `_mm256_fmadd_ps` tile).
    pub gemms_kernel_avx2: u64,
    /// Host-side deep copies of collective payloads (each one a real
    /// memcpy the zero-copy collectives exist to avoid). Never converted
    /// into simulated time: copies are a host artifact, not part of the
    /// α–β model.
    pub payload_copies: u64,
    /// Bytes duplicated by those payload copies.
    pub payload_copy_bytes: u64,
    /// Simulated nanoseconds this rank's clock spent blocked in collectives
    /// (the `advance_comm` deltas). Recorded as integer nanoseconds so the
    /// counter is bitwise deterministic across runs.
    pub comm_wait_nanos: u64,
    /// Simulated nanoseconds of collective wait that split-phase overlap
    /// hid under compute (zero on the serial path). Informational: already
    /// excluded from `comm_wait_nanos`, never re-charged.
    pub overlap_hidden_nanos: u64,
    /// Serving-engine prefill steps this rank participated in (each one
    /// processes the full prompts of a batch of admitted requests).
    pub prefill_steps: u64,
    /// Serving-engine decode steps this rank participated in (each one
    /// advances every active request by one token).
    pub decode_steps: u64,
    /// Peak bytes of KV-cache blocks resident on this rank. Tracked as a
    /// high-water mark (merge takes the max), never converted into
    /// simulated time: it is the serving analogue of activation peak
    /// memory, the binding constraint at long sequence lengths.
    pub kv_cache_bytes_peak: u64,
    /// Peak bytes of tape-held activations resident on this rank: the
    /// training analogue of `kv_cache_bytes_peak`. A high-water mark over
    /// the running total of bytes pushed-minus-popped across every
    /// module's [`Tape`](../module) — what sequence parallelism and
    /// checkpointed recomputation exist to shrink. Merge takes the max.
    pub activation_bytes_peak: u64,
}

/// Converts simulated seconds into the integer-nanosecond resolution the
/// overlap counters use. Rounding (not truncation) keeps the conversion
/// stable against the ±1 ulp wobble of f64 cost arithmetic.
fn to_nanos(seconds: f64) -> u64 {
    (seconds * 1e9).round() as u64
}

impl Meter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one op: `flops` of math producing `out_bytes` of output.
    /// Zero-flop ops (slices, concatenations, transposes) model as views /
    /// fused data movement and launch no kernel — real frameworks do not
    /// pay a launch per reshape.
    pub fn record(&mut self, flops: f64, out_bytes: usize) {
        self.flops += flops;
        self.bytes_allocated += out_bytes as u64;
        if flops > 0.0 {
            self.kernels += 1;
        }
    }

    /// Records one GEMM launch, additionally tallying which kernel
    /// implementation its shape dispatched to, and — for blocked dispatches
    /// — which micro-kernel backend the process resolved
    /// (`matmul::active_kernel`). Dense and shadow backends both derive
    /// `path` from `matmul::planned_path` and share the process-wide
    /// backend, so their meters stay equal op for op.
    pub fn record_gemm(&mut self, flops: f64, out_bytes: usize, path: KernelPath) {
        self.record(flops, out_bytes);
        match path {
            KernelPath::BlockedParallel => {
                self.gemms_blocked += 1;
                match crate::matmul::active_kernel() {
                    MicroKernel::Scalar => self.gemms_kernel_scalar += 1,
                    MicroKernel::Avx2 => self.gemms_kernel_avx2 += 1,
                }
            }
            KernelPath::Serial => self.gemms_serial += 1,
        }
    }

    /// Opens a labeled RAII instrumentation scope over this meter. The
    /// guard derefs to the meter, so any op that takes `&mut Meter` can be
    /// charged through it unchanged; when the guard drops, `label` is
    /// reported to the active tracer (if any) as a name hint for the next
    /// compute flush. Charging arithmetic is untouched — a scoped call is
    /// bitwise identical to an unscoped one.
    pub fn scope(&mut self, label: &'static str) -> MeterScope<'_> {
        MeterScope { meter: self, label }
    }

    /// Charges one deep copy of a collective payload of `bytes` bytes.
    /// Copies contribute to no simulated time — `compute_time` never sees
    /// them — they exist so the copy-elimination in the shared collectives
    /// is observable and regressions are testable.
    pub fn charge_payload_copy(&mut self, bytes: u64) {
        self.payload_copies += 1;
        self.payload_copy_bytes += bytes;
    }

    /// Charges `seconds` of simulated time spent blocked in a collective.
    pub fn charge_comm_wait(&mut self, seconds: f64) {
        self.comm_wait_nanos += to_nanos(seconds);
    }

    /// Charges `seconds` of collective wait hidden under compute by a
    /// split-phase `begin`/`complete` pair.
    pub fn charge_overlap_hidden(&mut self, seconds: f64) {
        self.overlap_hidden_nanos += to_nanos(seconds);
    }

    /// Counts one serving prefill step (bookkeeping only, no time).
    pub fn charge_prefill_step(&mut self) {
        self.prefill_steps += 1;
    }

    /// Counts one serving decode step (bookkeeping only, no time).
    pub fn charge_decode_step(&mut self) {
        self.decode_steps += 1;
    }

    /// Raises the KV-cache high-water mark to `bytes` if it is the new
    /// peak. The serving engine calls this with its current per-rank cache
    /// footprint after every admit/append/evict transition.
    pub fn note_kv_cache_bytes(&mut self, bytes: u64) {
        self.kv_cache_bytes_peak = self.kv_cache_bytes_peak.max(bytes);
    }

    /// Raises the tape-held activation high-water mark to `bytes` if it is
    /// the new peak. Called by the tape-accounting layer with the rank's
    /// running tape total after every push.
    pub fn note_activation_bytes(&mut self, bytes: u64) {
        self.activation_bytes_peak = self.activation_bytes_peak.max(bytes);
    }

    /// Merges another meter into this one (e.g. per-layer into per-step).
    pub fn merge(&mut self, other: &Meter) {
        self.flops += other.flops;
        self.bytes_allocated += other.bytes_allocated;
        self.kernels += other.kernels;
        self.gemms_blocked += other.gemms_blocked;
        self.gemms_serial += other.gemms_serial;
        self.gemms_kernel_scalar += other.gemms_kernel_scalar;
        self.gemms_kernel_avx2 += other.gemms_kernel_avx2;
        self.payload_copies += other.payload_copies;
        self.payload_copy_bytes += other.payload_copy_bytes;
        self.comm_wait_nanos += other.comm_wait_nanos;
        self.overlap_hidden_nanos += other.overlap_hidden_nanos;
        self.prefill_steps += other.prefill_steps;
        self.decode_steps += other.decode_steps;
        // Peak memory is a high-water mark, not a flow: merging windows
        // keeps the larger peak instead of summing.
        self.kv_cache_bytes_peak = self.kv_cache_bytes_peak.max(other.kv_cache_bytes_peak);
        self.activation_bytes_peak = self.activation_bytes_peak.max(other.activation_bytes_peak);
    }

    /// Returns the current totals and resets the meter, for converting a
    /// batch of ops into simulated time exactly once.
    pub fn take(&mut self) -> Meter {
        std::mem::take(self)
    }
}

/// RAII guard from [`Meter::scope`]: the single front door of the
/// instrumentation API. It times and counts exactly like the bare meter
/// (via `Deref`/`DerefMut` — zero charging changes) and, on drop, emits
/// its label to the per-rank tracer so the next compute-flush trace span
/// is named after the ops it contains.
pub struct MeterScope<'m> {
    meter: &'m mut Meter,
    label: &'static str,
}

impl MeterScope<'_> {
    /// The label this scope reports to the tracer.
    pub fn label(&self) -> &'static str {
        self.label
    }
}

impl std::ops::Deref for MeterScope<'_> {
    type Target = Meter;

    fn deref(&self) -> &Meter {
        self.meter
    }
}

impl std::ops::DerefMut for MeterScope<'_> {
    fn deref_mut(&mut self) -> &mut Meter {
        self.meter
    }
}

impl Drop for MeterScope<'_> {
    fn drop(&mut self) {
        crate::trace::on_scope_label(self.label);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut m = Meter::new();
        m.record(100.0, 64);
        m.record(50.0, 32);
        assert_eq!(m.flops, 150.0);
        assert_eq!(m.bytes_allocated, 96);
        assert_eq!(m.kernels, 2);
    }

    #[test]
    fn zero_flop_ops_launch_no_kernel() {
        let mut m = Meter::new();
        m.record(0.0, 1024);
        assert_eq!(m.kernels, 0);
        assert_eq!(m.bytes_allocated, 1024);
    }

    #[test]
    fn take_resets() {
        let mut m = Meter::new();
        m.record(10.0, 8);
        let snap = m.take();
        assert_eq!(snap.kernels, 1);
        assert_eq!(m, Meter::default());
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = Meter::new();
        a.record(1.0, 2);
        let mut b = Meter::new();
        b.record(3.0, 4);
        a.merge(&b);
        assert_eq!(a.flops, 4.0);
        assert_eq!(a.bytes_allocated, 6);
        assert_eq!(a.kernels, 2);
    }

    #[test]
    fn payload_copies_accumulate_and_merge() {
        let mut a = Meter::new();
        a.charge_payload_copy(256);
        a.charge_payload_copy(64);
        assert_eq!((a.payload_copies, a.payload_copy_bytes), (2, 320));
        // Copies launch no kernels and allocate no metered output bytes:
        // they must never leak into simulated time.
        assert_eq!((a.kernels, a.bytes_allocated), (0, 0));
        assert_eq!(a.flops, 0.0);
        let mut b = Meter::new();
        b.charge_payload_copy(8);
        a.merge(&b);
        assert_eq!((a.payload_copies, a.payload_copy_bytes), (3, 328));
    }

    #[test]
    fn comm_wait_and_hidden_nanos_accumulate_and_merge() {
        let mut a = Meter::new();
        a.charge_comm_wait(1.5e-6);
        a.charge_comm_wait(0.5e-6);
        a.charge_overlap_hidden(0.25e-6);
        assert_eq!((a.comm_wait_nanos, a.overlap_hidden_nanos), (2000, 250));
        // Wait counters are pure bookkeeping: no kernels, no flops, no
        // allocation — they must never turn into compute time.
        assert_eq!((a.kernels, a.bytes_allocated), (0, 0));
        assert_eq!(a.flops, 0.0);
        let mut b = Meter::new();
        b.charge_comm_wait(1e-9);
        b.charge_overlap_hidden(2e-9);
        a.merge(&b);
        assert_eq!((a.comm_wait_nanos, a.overlap_hidden_nanos), (2001, 252));
    }

    #[test]
    fn nanos_conversion_rounds_instead_of_truncating() {
        let mut m = Meter::new();
        // 0.1 µs is not exactly representable; rounding keeps it at 100 ns.
        m.charge_comm_wait(1e-7);
        assert_eq!(m.comm_wait_nanos, 100);
    }

    #[test]
    fn scope_charges_like_the_bare_meter_and_labels_the_tracer() {
        let mut scoped = Meter::new();
        {
            let mut s = scoped.scope("gemm");
            s.record(100.0, 64);
            s.charge_payload_copy(8);
            assert_eq!(s.label(), "gemm");
        }
        let mut bare = Meter::new();
        bare.record(100.0, 64);
        bare.charge_payload_copy(8);
        assert_eq!(scoped, bare, "scope must be charging-transparent");
        // With a tracer installed, the label names the next flush event.
        crate::trace::install(0);
        {
            let mut s = scoped.scope("gemm");
            s.record(1.0, 4);
        }
        crate::trace::on_flush(1.0, 1, 4, 0.0, 1.0);
        let events = crate::trace::take();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "gemm");
    }

    #[test]
    fn serving_counters_accumulate_and_merge() {
        let mut a = Meter::new();
        a.charge_prefill_step();
        a.charge_decode_step();
        a.charge_decode_step();
        a.note_kv_cache_bytes(1024);
        a.note_kv_cache_bytes(512); // below the peak: must not lower it
        assert_eq!((a.prefill_steps, a.decode_steps), (1, 2));
        assert_eq!(a.kv_cache_bytes_peak, 1024);
        // Serving counters are pure bookkeeping: no kernels, no flops, no
        // allocation — they must never turn into simulated time.
        assert_eq!((a.kernels, a.bytes_allocated), (0, 0));
        assert_eq!(a.flops, 0.0);
        let mut b = Meter::new();
        b.charge_prefill_step();
        b.charge_decode_step();
        b.note_kv_cache_bytes(768);
        a.merge(&b);
        // Steps are flows (summed); the peak is a high-water mark (max).
        assert_eq!((a.prefill_steps, a.decode_steps), (2, 3));
        assert_eq!(a.kv_cache_bytes_peak, 1024);
        let mut c = Meter::new();
        c.note_kv_cache_bytes(4096);
        a.merge(&c);
        assert_eq!(a.kv_cache_bytes_peak, 4096);
    }

    #[test]
    fn activation_peak_is_a_high_water_mark() {
        let mut a = Meter::new();
        a.note_activation_bytes(2048);
        a.note_activation_bytes(512); // below the peak: must not lower it
        assert_eq!(a.activation_bytes_peak, 2048);
        // Pure bookkeeping: never turns into simulated time.
        assert_eq!((a.kernels, a.bytes_allocated), (0, 0));
        assert_eq!(a.flops, 0.0);
        let mut b = Meter::new();
        b.note_activation_bytes(4096);
        a.merge(&b);
        assert_eq!(a.activation_bytes_peak, 4096);
    }

    #[test]
    fn gemm_dispatch_counts_by_path() {
        let mut m = Meter::new();
        m.record_gemm(10.0, 8, KernelPath::Serial);
        m.record_gemm(20.0, 8, KernelPath::BlockedParallel);
        m.record_gemm(30.0, 8, KernelPath::BlockedParallel);
        assert_eq!((m.gemms_serial, m.gemms_blocked), (1, 2));
        assert_eq!(m.kernels, 3);
        let mut other = Meter::new();
        other.record_gemm(1.0, 1, KernelPath::Serial);
        m.merge(&other);
        assert_eq!((m.gemms_serial, m.gemms_blocked), (2, 2));
    }

    #[test]
    fn gemm_dispatch_counts_the_active_micro_kernel() {
        let mut m = Meter::new();
        m.record_gemm(10.0, 8, KernelPath::Serial);
        // Serial dispatches never touch a micro-kernel backend.
        assert_eq!((m.gemms_kernel_scalar, m.gemms_kernel_avx2), (0, 0));
        m.record_gemm(20.0, 8, KernelPath::BlockedParallel);
        m.record_gemm(30.0, 8, KernelPath::BlockedParallel);
        // Blocked dispatches count against exactly the resolved backend.
        let expected = match crate::matmul::active_kernel() {
            MicroKernel::Scalar => (2, 0),
            MicroKernel::Avx2 => (0, 2),
        };
        assert_eq!((m.gemms_kernel_scalar, m.gemms_kernel_avx2), expected);
        assert_eq!(m.gemms_kernel_scalar + m.gemms_kernel_avx2, m.gemms_blocked);
        let mut other = Meter::new();
        other.record_gemm(1.0, 1, KernelPath::BlockedParallel);
        m.merge(&other);
        assert_eq!(m.gemms_kernel_scalar + m.gemms_kernel_avx2, 3);
    }
}
