//! Per-rank structured event tracing on the simulated virtual clock.
//!
//! Every rank of a cluster run can record [`TraceEvent`] spans: compute
//! flushes (with exact flop/kernel/byte payloads), collectives (with their
//! blocked and hidden wait split out of the split-phase accounting), host
//! payload copies, and step/layer scopes. The recorder is a thread-local
//! installed by the cluster driver on each rank thread, so tracing is
//! **zero-cost when disabled**: every hook first reads one thread-local
//! `Cell<bool>` and returns. No charging arithmetic anywhere consults the
//! tracer — enabling it changes no simulated time, no counter, no result
//! byte.
//!
//! Events are recorded at the *same program points, with the same values*,
//! as the [`crate::Meter`] / comm-stats counters they mirror, so per-op
//! totals reconcile exactly (integer counters bitwise, f64 totals in the
//! same accumulation order). That reconciliation is enforced by tests and
//! by the `trace_dump` bench bin.
//!
//! Enable tracing either per cluster (`RunConfig::with_trace(true)`) or
//! for a whole process via the `TESSERACT_TRACE=1` environment variable,
//! which `RunConfig::from_env` parses and installs here through
//! [`set_default_enabled`].
//! Export with [`chrome::chrome_trace_json`] and open the file in
//! Perfetto / `chrome://tracing`; analyze with [`critical::critical_path`].

pub mod chrome;
pub mod critical;
pub mod json;

use std::cell::{Cell, RefCell};
use std::sync::OnceLock;

/// What one trace span was doing. Field values are recorded verbatim from
/// the charging sites they mirror so totals reconcile with the counters.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceKind {
    /// One `flush_compute` batch: the exact pending meter values that were
    /// folded into the virtual clock (or, for a zero-flop flush, only
    /// allocated bytes — a zero-duration span).
    Compute { flops: f64, kernels: u64, bytes_allocated: u64 },
    /// One collective on this rank, spanning deposit → charged exit.
    Comm {
        /// Collective op name (`broadcast`, `all_reduce`, …).
        op: &'static str,
        /// Rendezvous key: the group id half.
        key_group: u64,
        /// Rendezvous key: the per-group sequence half.
        key_seq: u64,
        /// Latest entry/deposit virtual time across the group — the serial
        /// exit is `max_entry_vt + cost`, so this is where the collective's
        /// cross-rank dependency points.
        max_entry_vt: f64,
        /// α–β cost charged for this op (seconds).
        cost: f64,
        /// Wait this rank's clock actually paid inside the op — the exact
        /// `Meter::comm_wait_nanos` delta.
        blocked_nanos: u64,
        /// Wait hidden under compute — the exact
        /// `Meter::overlap_hidden_nanos` delta (zero on blocking calls).
        hidden_nanos: u64,
        /// The hidden seconds as handed to the stats collector (f64, for
        /// reconciling `OpStats::hidden_time`).
        hidden_time: f64,
        /// Wire bytes this event recorded into the stats (zero unless
        /// `recorded`).
        wire_bytes: u64,
        /// Seconds this event recorded into `OpStats::time`.
        stats_time: f64,
        /// True iff this rank recorded the op into the global stats (one
        /// designated member per logical collective), so
        /// `count(recorded) == OpStats::calls` cluster-wide.
        recorded: bool,
    },
    /// One host-side payload deep copy (a `clone_counted`).
    Copy { op: &'static str, bytes: u64 },
    /// A semantic scope: a layer forward/backward, a pipeline stage, a
    /// training step. Purely structural — carries no charges.
    Scope { phase: &'static str },
}

/// One span on one rank's virtual timeline. `begin`/`end` are virtual
/// seconds since run start (`begin == end` for instantaneous events).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    pub rank: usize,
    pub name: String,
    pub begin: f64,
    pub end: f64,
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Span duration in virtual seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.begin
    }
}

struct Tracer {
    rank: usize,
    events: Vec<TraceEvent>,
    /// Meter-scope labels seen since the last compute flush; they name the
    /// next [`TraceKind::Compute`] event (labels are naming-only — the
    /// flush's meter values are the authoritative charges).
    labels: Vec<&'static str>,
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static TRACER: RefCell<Option<Tracer>> = const { RefCell::new(None) };
}

static DEFAULT_ON: OnceLock<bool> = OnceLock::new();

/// Installs the process-default trace toggle (first caller wins). This is
/// the setter the run configuration applies after parsing
/// `TESSERACT_TRACE`; nothing in this crate reads the environment.
pub fn set_default_enabled(on: bool) {
    let _ = DEFAULT_ON.set(on);
}

/// The process-default trace toggle: whatever [`set_default_enabled`]
/// installed, or `false` if nothing did. Per-cluster `with_trace` overrides
/// win over this default.
pub fn default_enabled() -> bool {
    DEFAULT_ON.get().copied().unwrap_or(false)
}

/// True iff a tracer is installed on this thread. Every hook gates on this
/// first, so the disabled-path cost is a single thread-local read.
#[inline]
pub fn is_active() -> bool {
    ACTIVE.with(Cell::get)
}

/// Installs a fresh tracer for `rank` on the current thread. The cluster
/// driver calls this on each rank thread when tracing is enabled.
pub fn install(rank: usize) {
    TRACER
        .with(|t| *t.borrow_mut() = Some(Tracer { rank, events: Vec::new(), labels: Vec::new() }));
    ACTIVE.with(|a| a.set(true));
}

/// Uninstalls the current thread's tracer and returns its recorded events
/// (empty if none was installed).
pub fn take() -> Vec<TraceEvent> {
    ACTIVE.with(|a| a.set(false));
    TRACER.with(|t| t.borrow_mut().take()).map(|t| t.events).unwrap_or_default()
}

/// Records `label` as a name hint for the next compute flush. Called by
/// [`crate::meter::MeterScope`] on drop.
#[inline]
pub fn on_scope_label(label: &'static str) {
    if !is_active() {
        return;
    }
    TRACER.with(|t| {
        if let Some(tr) = t.borrow_mut().as_mut() {
            tr.labels.push(label);
        }
    });
}

/// Records one compute flush carrying the exact pending meter values that
/// were folded into the clock. Skips all-zero flushes. The event name is
/// derived from the meter-scope labels seen since the previous flush
/// (consecutive duplicates collapsed, at most four shown).
pub fn on_flush(flops: f64, kernels: u64, bytes_allocated: u64, begin: f64, end: f64) {
    if !is_active() {
        return;
    }
    if flops == 0.0 && kernels == 0 && bytes_allocated == 0 {
        TRACER.with(|t| {
            if let Some(tr) = t.borrow_mut().as_mut() {
                tr.labels.clear();
            }
        });
        return;
    }
    TRACER.with(|t| {
        if let Some(tr) = t.borrow_mut().as_mut() {
            let name = compute_name(&tr.labels, flops, kernels);
            tr.labels.clear();
            let rank = tr.rank;
            tr.events.push(TraceEvent {
                rank,
                name,
                begin,
                end,
                kind: TraceKind::Compute { flops, kernels, bytes_allocated },
            });
        }
    });
}

/// Builds the display name of a compute event from its scope labels.
fn compute_name(labels: &[&'static str], flops: f64, kernels: u64) -> String {
    let mut parts: Vec<&str> = Vec::new();
    for &l in labels {
        if parts.last() != Some(&l) {
            parts.push(l);
        }
    }
    if parts.is_empty() {
        return if flops == 0.0 && kernels == 0 { "alloc".into() } else { "compute".into() };
    }
    if parts.len() > 4 {
        let shown = parts[..3].join("+");
        format!("{shown}+\u{2026}")
    } else {
        parts.join("+")
    }
}

/// Records a fully-built span (comm, copy or scope). The caller supplies
/// everything but the rank.
pub fn record(name: String, begin: f64, end: f64, kind: TraceKind) {
    if !is_active() {
        return;
    }
    TRACER.with(|t| {
        if let Some(tr) = t.borrow_mut().as_mut() {
            let rank = tr.rank;
            tr.events.push(TraceEvent { rank, name, begin, end, kind });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_hooks_record_nothing() {
        assert!(!is_active());
        on_scope_label("gemm");
        on_flush(1.0, 1, 8, 0.0, 1.0);
        record("x".into(), 0.0, 0.0, TraceKind::Scope { phase: "fwd" });
        assert!(take().is_empty());
    }

    #[test]
    fn install_take_roundtrip_with_labels() {
        install(3);
        assert!(is_active());
        on_scope_label("gemm");
        on_scope_label("gemm");
        on_scope_label("add");
        on_flush(10.0, 2, 64, 1.0, 2.0);
        // Zero flush clears labels but records nothing.
        on_scope_label("stale");
        on_flush(0.0, 0, 0, 2.0, 2.0);
        on_flush(5.0, 1, 0, 2.0, 3.0);
        let events = take();
        assert!(!is_active());
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "gemm+add");
        assert_eq!(events[0].rank, 3);
        assert_eq!(
            events[0].kind,
            TraceKind::Compute { flops: 10.0, kernels: 2, bytes_allocated: 64 }
        );
        assert_eq!(events[1].name, "compute");
        // Tracer is gone: further hooks are no-ops.
        on_flush(1.0, 1, 1, 0.0, 1.0);
        assert!(take().is_empty());
    }

    #[test]
    fn compute_names_collapse_and_cap() {
        assert_eq!(compute_name(&[], 1.0, 1), "compute");
        assert_eq!(compute_name(&[], 0.0, 0), "alloc");
        assert_eq!(compute_name(&["a", "a", "b"], 1.0, 1), "a+b");
        assert_eq!(compute_name(&["a", "b", "c", "d", "e"], 1.0, 1), "a+b+c+\u{2026}");
    }
}
