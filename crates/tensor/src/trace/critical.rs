//! Critical-path analysis over per-rank traces.
//!
//! Walks backwards from the last event on the slowest rank, attributing
//! every nanosecond of the makespan to an op: compute spans are charged to
//! their flush, blocking collective waits to the collective, and when a
//! collective's exit was bound by the slowest participant the walk *hops*
//! to that straggler rank (found via the shared rendezvous key and the
//! matching entry time) — exactly the cross-rank dependency the simulated
//! `max(entry clocks) + cost` rule creates. The result names the ops that
//! bound the makespan, per scheme, which is what decides where further
//! overlap tuning pays off.

use std::collections::HashSet;

use super::{TraceEvent, TraceKind};

/// Time-comparison slack: virtual times are f64 sums of α–β terms, so two
/// "equal" instants can differ by a few ulps.
const EPS: f64 = 1e-12;

/// One attributed stretch of the critical path (walked backwards, stored
/// in reverse-chronological order).
#[derive(Clone, Debug)]
pub struct Segment {
    pub rank: usize,
    /// Op name the stretch is attributed to (`gemm`, `broadcast`, `idle`…).
    pub name: String,
    /// `"compute"`, `"comm"` or `"idle"`.
    pub category: &'static str,
    pub start: f64,
    pub end: f64,
}

impl Segment {
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The walked critical path of one run.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// Segments in reverse-chronological order (makespan → time zero).
    pub segments: Vec<Segment>,
    /// The run's makespan (latest event end over all ranks).
    pub makespan: f64,
}

impl CriticalPath {
    /// Total attributed seconds per op name, sorted descending.
    pub fn op_totals(&self) -> Vec<(String, f64)> {
        let mut totals: Vec<(String, f64)> = Vec::new();
        for seg in &self.segments {
            match totals.iter_mut().find(|(n, _)| *n == seg.name) {
                Some((_, t)) => *t += seg.duration(),
                None => totals.push((seg.name.clone(), seg.duration())),
            }
        }
        totals.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        totals
    }

    /// The single op bounding the makespan (largest attributed total).
    pub fn bounding_op(&self) -> Option<(String, f64)> {
        self.op_totals().into_iter().next()
    }

    /// Renders the top-`k` makespan-bounding ops as an aligned text table.
    pub fn render_top_k(&self, k: usize) -> String {
        let mut out = format!("critical path: makespan {:.9} s\n", self.makespan);
        let totals = self.op_totals();
        for (i, (name, secs)) in totals.iter().take(k).enumerate() {
            let frac = if self.makespan > 0.0 { secs / self.makespan } else { 0.0 };
            out.push_str(&format!(
                "  {:>2}. {:<16} {:>12.9} s  {:>5.1}%\n",
                i + 1,
                name,
                secs,
                frac * 100.0
            ));
        }
        if totals.is_empty() {
            out.push_str("  (no events)\n");
        }
        out
    }
}

/// An event the walk may land on: compute always; collectives only when
/// they actually blocked the clock (a fully-hidden or zero-cost collective
/// cannot bound the makespan at its completion point).
fn walkable(ev: &TraceEvent) -> bool {
    match &ev.kind {
        TraceKind::Compute { .. } => true,
        TraceKind::Comm { blocked_nanos, .. } => *blocked_nanos > 0,
        TraceKind::Copy { .. } | TraceKind::Scope { .. } => false,
    }
}

/// Walks the cross-rank critical path over per-rank event lists (indexed
/// by rank, as in `RunOutput::traces`).
pub fn critical_path(traces: &[Vec<TraceEvent>]) -> CriticalPath {
    let makespan =
        traces.iter().flatten().filter(|e| walkable(e)).map(|e| e.end).fold(0.0f64, f64::max);
    let mut segments = Vec::new();
    if makespan <= EPS {
        return CriticalPath { segments, makespan };
    }
    // Start on the rank whose last walkable event realizes the makespan.
    let mut rank = traces
        .iter()
        .enumerate()
        .filter_map(|(r, evs)| {
            evs.iter()
                .filter(|e| walkable(e))
                .map(|e| e.end)
                .fold(None, |m: Option<f64>, e| Some(m.map_or(e, |m| m.max(e))))
                .map(|end| (r, end))
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(r, _)| r)
        .unwrap_or(0);
    let mut cur_t = makespan;
    // (rank, index) pairs already attributed — guarantees termination even
    // if float slack lets a zero-duration event match repeatedly.
    let mut consumed: HashSet<(usize, usize)> = HashSet::new();

    while cur_t > EPS {
        // Latest unconsumed walkable event on this rank ending at/before
        // the cursor.
        let found = traces[rank]
            .iter()
            .enumerate()
            .filter(|(i, e)| !consumed.contains(&(rank, *i)) && walkable(e) && e.end <= cur_t + EPS)
            .max_by(|a, b| a.1.end.partial_cmp(&b.1.end).unwrap_or(std::cmp::Ordering::Equal));
        let Some((idx, ev)) = found else {
            // Nothing earlier on this rank: the remainder is ramp-up idle.
            segments.push(Segment {
                rank,
                name: "start".into(),
                category: "idle",
                start: 0.0,
                end: cur_t,
            });
            break;
        };
        consumed.insert((rank, idx));
        if cur_t - ev.end > EPS {
            segments.push(Segment {
                rank,
                name: "idle".into(),
                category: "idle",
                start: ev.end,
                end: cur_t,
            });
        }
        cur_t = ev.end.min(cur_t);
        match &ev.kind {
            TraceKind::Compute { .. } => {
                segments.push(Segment {
                    rank,
                    name: ev.name.clone(),
                    category: "compute",
                    start: ev.begin,
                    end: cur_t,
                });
                cur_t = ev.begin;
            }
            TraceKind::Comm { key_group, key_seq, max_entry_vt, .. } => {
                let from = max_entry_vt.min(cur_t).max(0.0);
                segments.push(Segment {
                    rank,
                    name: ev.name.clone(),
                    category: "comm",
                    start: from,
                    end: cur_t,
                });
                cur_t = from;
                // Hop to the straggler: the member of the same rendezvous
                // whose entry (event begin) equals the group's max entry.
                let straggler = traces.iter().enumerate().find_map(|(r, evs)| {
                    evs.iter().enumerate().find_map(|(i, cand)| match &cand.kind {
                        TraceKind::Comm { key_group: g, key_seq: s, .. }
                            if g == key_group
                                && s == key_seq
                                && (cand.begin - max_entry_vt).abs() <= EPS
                                && !consumed.contains(&(r, i)) =>
                        {
                            Some(r)
                        }
                        _ => None,
                    })
                });
                if let Some(r) = straggler {
                    rank = r;
                }
            }
            TraceKind::Copy { .. } | TraceKind::Scope { .. } => unreachable!("filtered"),
        }
    }
    CriticalPath { segments, makespan }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute(rank: usize, name: &str, begin: f64, end: f64) -> TraceEvent {
        TraceEvent {
            rank,
            name: name.into(),
            begin,
            end,
            kind: TraceKind::Compute { flops: 1.0, kernels: 1, bytes_allocated: 0 },
        }
    }

    fn comm(
        rank: usize,
        name: &str,
        begin: f64,
        end: f64,
        key: (u64, u64),
        max_entry_vt: f64,
        blocked_nanos: u64,
    ) -> TraceEvent {
        TraceEvent {
            rank,
            name: name.into(),
            begin,
            end,
            kind: TraceKind::Comm {
                op: "all_reduce",
                key_group: key.0,
                key_seq: key.1,
                max_entry_vt,
                cost: end - max_entry_vt,
                blocked_nanos,
                hidden_nanos: 0,
                hidden_time: 0.0,
                wire_bytes: 0,
                stats_time: 0.0,
                recorded: rank == 0,
            },
        }
    }

    #[test]
    fn hops_to_the_straggler_rank() {
        // Rank 1 computes until t=5 (the straggler); rank 0 computes until
        // t=1 and blocks in the collective from 1 to 6 (cost 1 after
        // max entry 5). The critical path must be: collective (5→6) then
        // rank 1's compute (0→5).
        let traces = vec![
            vec![compute(0, "gemm", 0.0, 1.0), comm(0, "all_reduce", 1.0, 6.0, (9, 0), 5.0, 5_000)],
            vec![
                compute(1, "slowgemm", 0.0, 5.0),
                comm(1, "all_reduce", 5.0, 6.0, (9, 0), 5.0, 1_000),
            ],
        ];
        let cp = critical_path(&traces);
        assert!((cp.makespan - 6.0).abs() < 1e-9);
        let totals = cp.op_totals();
        let slow = totals.iter().find(|(n, _)| n == "slowgemm").expect("straggler attributed");
        assert!((slow.1 - 5.0).abs() < 1e-9, "straggler compute dominates: {totals:?}");
        assert_eq!(cp.bounding_op().unwrap().0, "slowgemm");
        // The whole makespan is attributed (no gaps on this synthetic path).
        let attributed: f64 = cp.segments.iter().map(Segment::duration).sum();
        assert!((attributed - cp.makespan).abs() < 1e-9);
    }

    #[test]
    fn idle_gaps_are_attributed() {
        let traces = vec![vec![compute(0, "a", 0.0, 1.0), compute(0, "b", 2.0, 3.0)]];
        let cp = critical_path(&traces);
        let idle: f64 =
            cp.segments.iter().filter(|s| s.category == "idle").map(Segment::duration).sum();
        assert!((idle - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_traces_yield_empty_path() {
        let cp = critical_path(&[vec![], vec![]]);
        assert_eq!(cp.makespan, 0.0);
        assert!(cp.segments.is_empty());
        assert!(cp.bounding_op().is_none());
        assert!(cp.render_top_k(3).contains("no events"));
    }

    #[test]
    fn render_names_the_top_op() {
        let traces = vec![vec![compute(0, "gemm", 0.0, 2.0), compute(0, "add", 2.0, 2.5)]];
        let cp = critical_path(&traces);
        let table = cp.render_top_k(1);
        assert!(table.contains("gemm"), "{table}");
        assert!(!table.contains("add"), "{table}");
    }
}
