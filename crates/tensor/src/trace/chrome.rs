//! Chrome-trace / Perfetto JSON export.
//!
//! Produces the classic `{"traceEvents": [...]}` format: one *process* per
//! rank, three *threads* per rank (compute, comm, scopes), complete events
//! (`ph: "X"`) with microsecond timestamps on the virtual clock, instant
//! events for host payload copies, and flow arrows (`ph: "s"` → `"f"`)
//! across each overlapped split-phase collective so the hidden window is
//! visible. Open the file at <https://ui.perfetto.dev> or
//! `chrome://tracing`.

use super::{TraceEvent, TraceKind};

/// Track (tid) layout within each rank's process.
const TID_COMPUTE: u32 = 0;
const TID_COMM: u32 = 1;
const TID_SCOPES: u32 = 2;

/// Escapes a string for embedding in a JSON literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Virtual seconds → fractional microseconds (Chrome's `ts` unit), with
/// nanosecond precision preserved in the fraction.
fn us(vt: f64) -> String {
    format!("{:.3}", vt * 1e6)
}

fn push_event(out: &mut String, body: String) {
    out.push_str("    {");
    out.push_str(&body);
    out.push_str("},\n");
}

/// Renders per-rank traces (as returned in `RunOutput::traces`) to a
/// Chrome-trace JSON document.
pub fn chrome_trace_json(traces: &[Vec<TraceEvent>]) -> String {
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n");
    for (rank, events) in traces.iter().enumerate() {
        push_event(
            &mut out,
            format!(
                "\"ph\":\"M\",\"pid\":{rank},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"rank {rank}\"}}"
            ),
        );
        for (tid, tname) in [(TID_COMPUTE, "compute"), (TID_COMM, "comm"), (TID_SCOPES, "scopes")] {
            push_event(
                &mut out,
                format!(
                    "\"ph\":\"M\",\"pid\":{rank},\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{tname}\"}}"
                ),
            );
        }
        for ev in events {
            let name = escape_json(&ev.name);
            match &ev.kind {
                TraceKind::Compute { flops, kernels, bytes_allocated } => {
                    push_event(
                        &mut out,
                        format!(
                            "\"ph\":\"X\",\"pid\":{rank},\"tid\":{TID_COMPUTE},\
                             \"name\":\"{name}\",\"cat\":\"compute\",\"ts\":{},\"dur\":{:.3},\
                             \"args\":{{\"flops\":{flops},\"kernels\":{kernels},\
                             \"bytes_allocated\":{bytes_allocated}}}",
                            us(ev.begin),
                            ev.duration() * 1e6,
                        ),
                    );
                }
                TraceKind::Comm {
                    op,
                    key_group,
                    key_seq,
                    blocked_nanos,
                    hidden_nanos,
                    wire_bytes,
                    ..
                } => {
                    push_event(
                        &mut out,
                        format!(
                            "\"ph\":\"X\",\"pid\":{rank},\"tid\":{TID_COMM},\
                             \"name\":\"{name}\",\"cat\":\"comm\",\"ts\":{},\"dur\":{:.3},\
                             \"args\":{{\"op\":\"{op}\",\"blocked_ns\":{blocked_nanos},\
                             \"hidden_ns\":{hidden_nanos},\"wire_bytes\":{wire_bytes},\
                             \"key\":\"{key_group:x}:{key_seq}\"}}",
                            us(ev.begin),
                            ev.duration() * 1e6,
                        ),
                    );
                    // Flow arrow across the overlapped window: deposit
                    // (begin) → complete (end) whenever the split-phase
                    // machinery hid wait under compute.
                    if *hidden_nanos > 0 {
                        let id = format!("{key_group:x}-{key_seq}-r{rank}");
                        push_event(
                            &mut out,
                            format!(
                                "\"ph\":\"s\",\"pid\":{rank},\"tid\":{TID_COMM},\
                                 \"name\":\"overlap\",\"cat\":\"comm\",\"id\":\"{id}\",\"ts\":{}",
                                us(ev.begin),
                            ),
                        );
                        push_event(
                            &mut out,
                            format!(
                                "\"ph\":\"f\",\"bp\":\"e\",\"pid\":{rank},\"tid\":{TID_COMM},\
                                 \"name\":\"overlap\",\"cat\":\"comm\",\"id\":\"{id}\",\"ts\":{}",
                                us(ev.end),
                            ),
                        );
                    }
                }
                TraceKind::Copy { op, bytes } => {
                    push_event(
                        &mut out,
                        format!(
                            "\"ph\":\"i\",\"s\":\"t\",\"pid\":{rank},\"tid\":{TID_COMM},\
                             \"name\":\"{name}\",\"cat\":\"copy\",\"ts\":{},\
                             \"args\":{{\"op\":\"{op}\",\"bytes\":{bytes}}}",
                            us(ev.begin),
                        ),
                    );
                }
                TraceKind::Scope { phase } => {
                    push_event(
                        &mut out,
                        format!(
                            "\"ph\":\"X\",\"pid\":{rank},\"tid\":{TID_SCOPES},\
                             \"name\":\"{name}\",\"cat\":\"scope\",\"ts\":{},\"dur\":{:.3},\
                             \"args\":{{\"phase\":\"{phase}\"}}",
                            us(ev.begin),
                            ev.duration() * 1e6,
                        ),
                    );
                }
            }
        }
    }
    // Strip the trailing ",\n" of the last event (the metadata events
    // guarantee at least one was written for a non-empty trace set).
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceKind) -> TraceEvent {
        TraceEvent { rank: 0, name: "n\"1".into(), begin: 1e-6, end: 3e-6, kind }
    }

    #[test]
    fn emits_parseable_structure_with_metadata_and_flows() {
        let traces = vec![vec![
            ev(TraceKind::Compute { flops: 2.0, kernels: 1, bytes_allocated: 8 }),
            ev(TraceKind::Comm {
                op: "broadcast",
                key_group: 0xabc,
                key_seq: 7,
                max_entry_vt: 0.0,
                cost: 1e-6,
                blocked_nanos: 100,
                hidden_nanos: 50,
                hidden_time: 5e-8,
                wire_bytes: 64,
                stats_time: 1e-6,
                recorded: true,
            }),
            ev(TraceKind::Copy { op: "broadcast", bytes: 64 }),
            ev(TraceKind::Scope { phase: "fwd" }),
        ]];
        let json = chrome_trace_json(&traces);
        let doc = crate::trace::json::parse(&json).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");
        // 4 metadata + 4 events + 2 flow halves.
        assert_eq!(events.len(), 10);
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("s")
                && e.get("id").and_then(|i| i.as_str()) == Some("abc-7-r0")
        }));
        assert!(events.iter().all(|e| e.get("ph").is_some() && e.get("pid").is_some()));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_traces_render_empty_array() {
        let json = chrome_trace_json(&[]);
        let doc = crate::trace::json::parse(&json).expect("valid JSON");
        assert_eq!(doc.get("traceEvents").and_then(|v| v.as_array()).map(Vec::len), Some(0));
    }
}
