//! Minimal JSON parser for validating emitted trace (and bench) documents
//! in-tree — the workspace is hermetic, so there is no serde to lean on.
//! Supports the full JSON grammar the Chrome-trace emitter uses: objects,
//! arrays, strings (with escapes incl. `\uXXXX`), numbers, booleans, null.

/// A parsed JSON value. Objects preserve key order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        // Surrogate pairs are not needed by our emitter;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape \\{} at byte {}", esc as char, *pos)),
                }
            }
            _ => {
                // Take the whole run of plain bytes up to the next quote or
                // escape and UTF-8-validate it once. (`"` and `\` are ASCII,
                // so they never appear inside a multi-byte sequence.)
                // Validating from `start` to end-of-input per character made
                // this O(n^2) on megabyte documents.
                let start = *pos - 1;
                let mut end = *pos;
                while end < b.len() && b[end] != b'"' && b[end] != b'\\' {
                    end += 1;
                }
                let s = std::str::from_utf8(&b[start..end]).map_err(|_| "invalid UTF-8")?;
                out.push_str(s);
                *pos = end;
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid number bytes")?;
    s.parse::<f64>().map(Value::Num).map_err(|_| format!("invalid number {s:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3e-2], "b": {"c": "x\n\"yA"}, "d": true, "e": null}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-0.03));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\n\"yA"));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"k\" 1}").is_err());
    }

    #[test]
    fn multibyte_runs_and_escapes_interleave() {
        let v = parse(r#""héllo é wörld → \"q\" done""#).unwrap();
        assert_eq!(v.as_str(), Some("héllo é wörld → \"q\" done"));
    }

    #[test]
    fn megabyte_documents_parse_in_linear_time() {
        // Regression guard for the O(n^2) string scanner: a ~1 MB array of
        // string-bearing objects (the Chrome-trace shape) must parse fast
        // enough that the suite doesn't notice. The quadratic version took
        // tens of seconds here.
        let item = r#"{"name": "broadcast_shared", "ph": "X", "dur": 1.5},"#;
        let mut doc = String::from("[");
        while doc.len() < 1 << 20 {
            doc.push_str(item);
        }
        doc.push_str(r#"{"name": "end"}]"#);
        let v = parse(&doc).unwrap();
        let arr = v.as_array().unwrap();
        assert!(arr.len() > 10_000);
        assert_eq!(arr[0].get("name").and_then(Value::as_str), Some("broadcast_shared"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse(" { } ").unwrap(), Value::Obj(vec![]));
    }
}
