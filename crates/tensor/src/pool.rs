//! In-tree, std-only thread pool for the dense kernels.
//!
//! Built on `std::thread` + `std::sync::{Mutex, Condvar}` only, so the
//! workspace keeps its no-external-dependency guarantee. The pool runs one
//! *job* at a time; a job is an indexed task range `0..n_tasks` executed by
//! [`ThreadPool::parallel_for`]. Workers and the submitting thread pull task
//! indices from a shared cursor, so scheduling is dynamic, but **which task
//! computes which output is fixed by the task index**, never by thread
//! identity — that is what lets the blocked GEMM keep bitwise-deterministic
//! results at any thread count (see `matmul.rs` and DESIGN.md §5).
//!
//! Concurrency contract:
//! * `parallel_for` blocks until every task of its job has finished, so task
//!   closures may borrow stack data.
//! * If the pool is already busy (another thread is mid-`parallel_for`, or a
//!   task recursively calls back in), the call degrades to inline serial
//!   execution instead of queueing — no deadlocks, identical results.
//! * A panicking task does not wedge the pool: remaining tasks still drain,
//!   then the panic is re-raised on the submitting thread.
//!
//! The process-wide pool is lazily created on first use and sized by
//! [`set_configured_threads`] — installed by the run configuration
//! (`RunConfig`, which owns the `TESSERACT_THREADS` parsing) — defaulting to
//! `std::thread::available_parallelism`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError, TryLockError};
use std::thread::JoinHandle;

/// Locks ignoring poisoning: the only unwind that can poison these mutexes
/// is the deliberate re-panic at the end of `parallel_for` (task panics are
/// caught before the state lock is re-taken), and the protected state is
/// consistent at that point.
fn lock_state(m: &Mutex<State>) -> MutexGuard<'_, State> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Type-erased pointer to the borrowed task closure of the active job.
/// Validity: `parallel_for` does not return before `completed == n_tasks`,
/// so workers never dereference it after the borrow ends.
#[derive(Clone, Copy)]
struct TaskRef(*const (dyn Fn(usize) + Sync + 'static));
// SAFETY: the closure itself is `Sync`, and the raw pointer is only shared
// while `parallel_for` keeps the referent alive (see above).
unsafe impl Send for TaskRef {}

struct Job {
    task: TaskRef,
    n_tasks: usize,
    /// Next unclaimed task index.
    next: usize,
    /// Tasks that have finished running (successfully or by panic).
    completed: usize,
    panicked: bool,
}

#[derive(Default)]
struct State {
    job: Option<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers sleep here waiting for work (or shutdown).
    work: Condvar,
    /// The submitting thread sleeps here waiting for job completion.
    done: Condvar,
}

/// A fixed-size pool executing indexed parallel jobs. See module docs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Guards job submission; `try_lock` failure means "busy → run inline".
    submit: Mutex<()>,
    threads: usize,
}

impl ThreadPool {
    /// Pool with `threads` total execution streams. The submitting thread
    /// participates in every job, so `threads - 1` workers are spawned;
    /// `threads <= 1` yields a pool that always runs inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self { shared, handles, submit: Mutex::new(()), threads }
    }

    /// Total execution streams (workers + the submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `body(0), body(1), …, body(n_tasks - 1)`, potentially in
    /// parallel, returning once all of them have finished. Tasks must be
    /// independent; each task index is executed exactly once.
    pub fn parallel_for(&self, n_tasks: usize, body: &(dyn Fn(usize) + Sync)) {
        if n_tasks <= 1 || self.handles.is_empty() {
            return run_inline(n_tasks, body);
        }
        // Busy (concurrent submitter or recursive call): degrade to inline.
        // A poisoned guard (an earlier job panicked) is still a free guard.
        let _guard = match self.submit.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return run_inline(n_tasks, body),
        };

        // SAFETY: erase the borrow lifetime; we hold the job open only for
        // the duration of this call (see TaskRef invariant).
        let task = TaskRef(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(body as *const _)
        });

        {
            let mut state = lock_state(&self.shared.state);
            debug_assert!(state.job.is_none(), "submit guard held, job slot must be free");
            state.job = Some(Job { task, n_tasks, next: 0, completed: 0, panicked: false });
            self.shared.work.notify_all();
        }

        // The submitting thread works too, then waits for stragglers.
        let caller_panicked = !drain_tasks(&self.shared, body);

        let panicked = {
            let mut state = lock_state(&self.shared.state);
            loop {
                let job = state.job.as_ref().expect("job cleared only by submitter");
                if job.completed == job.n_tasks {
                    break;
                }
                state = self.shared.done.wait(state).unwrap();
            }
            let job = state.job.take().expect("job present until taken here");
            job.panicked
        };
        if panicked || caller_panicked {
            panic!("ThreadPool::parallel_for: a task panicked");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        lock_state(&self.shared.state).shutdown = true;
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn run_inline(n_tasks: usize, body: &(dyn Fn(usize) + Sync)) {
    for idx in 0..n_tasks {
        body(idx);
    }
}

/// Claims and runs tasks of the active job until none are left. Returns
/// `false` if any task this thread ran panicked (recorded in the job too).
fn drain_tasks(shared: &Shared, body: &(dyn Fn(usize) + Sync)) -> bool {
    let mut ok = true;
    loop {
        let idx = {
            let mut state = lock_state(&shared.state);
            let Some(job) = state.job.as_mut() else { return ok };
            if job.next >= job.n_tasks {
                return ok;
            }
            let idx = job.next;
            job.next += 1;
            idx
        };
        let panicked = catch_unwind(AssertUnwindSafe(|| body(idx))).is_err();
        let mut state = lock_state(&shared.state);
        let job = state.job.as_mut().expect("job open while tasks in flight");
        job.completed += 1;
        if panicked {
            job.panicked = true;
            ok = false;
        }
        if job.completed == job.n_tasks {
            shared.done.notify_all();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        // Wait until there is claimable work or shutdown.
        let task = {
            let mut state = lock_state(&shared.state);
            loop {
                if state.shutdown {
                    return;
                }
                match state.job.as_mut() {
                    Some(job) if job.next < job.n_tasks => break job.task,
                    _ => state = shared.work.wait(state).unwrap(),
                }
            }
        };
        // SAFETY: `task` stays valid while the job is open (TaskRef invariant).
        let body = unsafe { &*task.0 };
        drain_tasks(shared, body);
    }
}

// ---------------------------------------------------------------------------
// Process-wide pool
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
static THREAD_OVERRIDE: OnceLock<usize> = OnceLock::new();

/// Overrides the thread count the global pool is built with. The first
/// caller wins (later calls with a different value are ignored, like every
/// once-per-process knob here), and the override only matters before the
/// first dense kernel forces the pool into existence. This is the
/// process-global setter the run configuration installs — nothing in this
/// crate reads the environment.
pub fn set_configured_threads(n: usize) {
    assert!(n >= 1, "thread pool needs at least one thread");
    let _ = THREAD_OVERRIDE.set(n);
}

/// Thread count the global pool uses: the installed
/// [`set_configured_threads`] override if any, else the machine's available
/// parallelism.
pub fn configured_threads() -> usize {
    THREAD_OVERRIDE.get().copied().unwrap_or_else(hardware_threads)
}

/// Hardware execution streams the host exposes (ignores any configured
/// override). Benches record this next to the configured pool size so a
/// scaling curve measured on a constrained host is interpretable.
pub fn host_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn hardware_threads() -> usize {
    host_threads()
}

/// The lazily-created process-wide pool shared by all dense kernels.
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(configured_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_task_exactly_once() {
        for threads in [1, 2, 7, 16] {
            let pool = ThreadPool::new(threads);
            let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            pool.parallel_for(hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads}: every index must run exactly once"
            );
        }
    }

    #[test]
    fn zero_and_single_task_jobs() {
        let pool = ThreadPool::new(4);
        let count = AtomicUsize::new(0);
        pool.parallel_for(0, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
        pool.parallel_for(1, &|i| {
            assert_eq!(i, 0);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn tasks_may_mutate_disjoint_borrowed_data() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0u64; 64];
        let base = data.as_mut_ptr() as usize;
        pool.parallel_for(64, &|i| {
            // Disjoint writes through the erased pointer, as the kernels do.
            unsafe { *(base as *mut u64).add(i) = i as u64 * 3 };
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
    }

    #[test]
    fn recursive_submission_degrades_to_inline() {
        let pool = ThreadPool::new(3);
        let count = AtomicUsize::new(0);
        pool.parallel_for(4, &|_| {
            pool.parallel_for(5, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn pool_survives_a_panicking_job() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate to the submitter");
        // The pool must still execute subsequent jobs.
        let count = AtomicUsize::new(0);
        pool.parallel_for(10, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
        assert!(global().threads() >= 1);
    }
}
