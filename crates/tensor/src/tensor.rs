//! The [`TensorLike`] abstraction and its two backends.
//!
//! Distributed layers and parallel matmul algorithms in the other crates are
//! written **once**, generically over `T: TensorLike`. Instantiated with
//! [`DenseTensor`] they do real `f32` arithmetic (used for correctness tests
//! and the Figure-7 training runs); instantiated with [`ShadowTensor`] they
//! execute the identical control flow — same collectives, same message
//! shapes, same op sequence — while only tracking shapes, flops and bytes.
//! This is what lets the Table 1 / Table 2 paper-scale sweeps (hidden size
//! up to 8192, 64 ranks) run in milliseconds on one CPU core with *exact*
//! communication-volume accounting.
//!
//! Both backends charge the [`Meter`] with identical numbers for identical
//! ops, so a dense run and a shadow run of the same configuration report the
//! same simulated time.

use crate::init::global_xavier;
use crate::matmul;
use crate::matrix::Matrix;
use crate::meter::Meter;
use crate::nn;
use crate::ELEM_BYTES;

/// Approximate flops per element for GELU (tanh-based). The constant only
/// needs to be consistent across backends; it mirrors the handful of
/// transcendental ops a fused GELU kernel performs.
pub const GELU_FLOPS_PER_ELEM: f64 = 12.0;
/// Approximate flops per element for a fused row softmax (max, exp, sum, div).
pub const SOFTMAX_FLOPS_PER_ELEM: f64 = 6.0;
/// Flops per element for `1/sqrt(x + eps)`.
pub const RSQRT_FLOPS_PER_ELEM: f64 = 3.0;

/// Common interface of the dense and shadow tensor backends.
///
/// Every op validates shapes (so the shadow backend still catches layout
/// bugs), charges the meter, and returns a new tensor. `self` is always the
/// "primary" operand; see each method for the exact semantics.
pub trait TensorLike: Clone + Send + Sync + Sized + 'static {
    /// All-zero tensor (dense) / blank shape (shadow).
    fn zeros(rows: usize, cols: usize) -> Self;

    /// The `[r0..r0+nr, c0..c0+nc]` block of the *global* Xavier-initialized
    /// `[global_rows, global_cols]` parameter identified by
    /// `(root_seed, param_id)`. Every rank calling this with the same global
    /// shape and ids reconstructs blocks of the *same* global matrix, which
    /// is what makes arrangements numerically comparable (Figure 7).
    fn init_xavier_block(
        global_rows: usize,
        global_cols: usize,
        r0: usize,
        c0: usize,
        nr: usize,
        nc: usize,
        root_seed: u64,
        param_id: u64,
    ) -> Self;

    fn rows(&self) -> usize;
    fn cols(&self) -> usize;

    fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    /// Number of stored elements.
    fn elem_count(&self) -> usize {
        self.rows() * self.cols()
    }

    /// Wire size of this tensor in bytes (what a collective would move).
    fn byte_size(&self) -> usize {
        self.elem_count() * ELEM_BYTES
    }

    /// `C = self · rhs`.
    fn matmul(&self, rhs: &Self, m: &mut Meter) -> Self;
    /// `C = self · rhsᵀ`.
    fn matmul_nt(&self, rhs: &Self, m: &mut Meter) -> Self;
    /// `C = selfᵀ · rhs`.
    fn matmul_tn(&self, rhs: &Self, m: &mut Meter) -> Self;

    /// Transposed copy.
    fn transpose(&self, m: &mut Meter) -> Self;

    /// Elementwise `self + rhs`.
    fn add(&self, rhs: &Self, m: &mut Meter) -> Self;
    /// Elementwise in-place `self += rhs`.
    fn add_assign(&mut self, rhs: &Self, m: &mut Meter);
    /// Elementwise `self - rhs`.
    fn sub(&self, rhs: &Self, m: &mut Meter) -> Self;
    /// Elementwise (Hadamard) `self ∘ rhs`.
    fn hadamard(&self, rhs: &Self, m: &mut Meter) -> Self;
    /// `self * s`.
    fn scale(&self, s: f32, m: &mut Meter) -> Self;

    /// Row sums as a `[rows, 1]` column vector.
    fn row_sums(&self, m: &mut Meter) -> Self;
    /// Row sums of squares as a `[rows, 1]` column vector.
    fn row_sums_of_squares(&self, m: &mut Meter) -> Self;
    /// Column sums as a `[1, cols]` row vector.
    fn col_sums(&self, m: &mut Meter) -> Self;

    /// Broadcast-add a `[1, cols]` row vector to every row (bias add).
    fn add_rowvec(&self, v: &Self, m: &mut Meter) -> Self;
    /// Broadcast-add a `[rows, 1]` column vector to every column.
    fn add_colvec(&self, v: &Self, m: &mut Meter) -> Self;
    /// Broadcast-subtract a `[rows, 1]` column vector from every column.
    fn sub_colvec(&self, v: &Self, m: &mut Meter) -> Self;
    /// Broadcast-multiply by a `[rows, 1]` column vector.
    fn mul_colvec(&self, v: &Self, m: &mut Meter) -> Self;

    /// Elementwise `1 / sqrt(self + eps)`.
    fn rsqrt_add(&self, eps: f32, m: &mut Meter) -> Self;

    /// Elementwise GELU.
    fn gelu(&self, m: &mut Meter) -> Self;
    /// GELU backward: `self` is the forward *input* `X`, returns `dY ∘ gelu'(X)`.
    fn gelu_backward(&self, dy: &Self, m: &mut Meter) -> Self;

    /// Row-wise softmax.
    fn softmax_rows(&self, m: &mut Meter) -> Self;
    /// In-place row-wise softmax: bitwise-identical values to
    /// [`TensorLike::softmax_rows`] with no output allocation (the decode
    /// hot path of KV-cached attention runs this once per step).
    fn softmax_rows_inplace(&mut self, m: &mut Meter);
    /// Masked in-place row softmax: row `i` is softmaxed over its first
    /// `limits[i]` entries and zeroed beyond them — the causal-attention
    /// kernel (see `nn::softmax_rows_masked_inplace`). Charges flops for
    /// the active (unmasked) elements only.
    fn softmax_rows_masked_inplace(&mut self, limits: &[usize], m: &mut Meter);
    /// Softmax backward: `self` is the forward *output* `Y`.
    fn softmax_rows_backward(&self, dy: &Self, m: &mut Meter) -> Self;

    /// Rows `r0..r1` as a new tensor.
    fn slice_rows(&self, r0: usize, r1: usize, m: &mut Meter) -> Self;
    /// Columns `c0..c1` as a new tensor.
    fn slice_cols(&self, c0: usize, c1: usize, m: &mut Meter) -> Self;
    /// Vertical concatenation.
    fn concat_rows(parts: &[Self], m: &mut Meter) -> Self;
    /// Horizontal concatenation.
    fn concat_cols(parts: &[Self], m: &mut Meter) -> Self;

    /// Elementwise accumulation used *inside* collectives (reduce /
    /// all-reduce combine step). Not metered: communication costs are
    /// accounted by the cluster cost model, not the compute meter.
    fn reduce_add_inplace(&mut self, other: &Self);

    /// Dense backing matrix, if this backend has real data.
    fn try_matrix(&self) -> Option<&Matrix>;

    /// Frobenius norm of the stored values, if this backend has real data
    /// (the shadow backend returns `None`; LAMB/LARS fall back to a trust
    /// ratio of 1 there). Not metered: norm computation inside optimizers
    /// is negligible against the fwd/bwd work the tables time.
    fn frobenius(&self) -> Option<f32>;
}

// ---------------------------------------------------------------------------
// DenseTensor
// ---------------------------------------------------------------------------

/// Real `f32` tensor; all math is actually performed.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseTensor(pub Matrix);

impl DenseTensor {
    pub fn from_matrix(m: Matrix) -> Self {
        Self(m)
    }

    pub fn matrix(&self) -> &Matrix {
        &self.0
    }

    pub fn into_matrix(self) -> Matrix {
        self.0
    }
}

fn ew_shape_check<T: TensorLike>(a: &T, b: &T, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch {:?} vs {:?}", a.shape(), b.shape());
}

impl TensorLike for DenseTensor {
    fn zeros(rows: usize, cols: usize) -> Self {
        Self(Matrix::zeros(rows, cols))
    }

    fn init_xavier_block(
        global_rows: usize,
        global_cols: usize,
        r0: usize,
        c0: usize,
        nr: usize,
        nc: usize,
        root_seed: u64,
        param_id: u64,
    ) -> Self {
        let global = global_xavier(global_rows, global_cols, root_seed, param_id);
        Self(global.block(r0, c0, nr, nc))
    }

    fn rows(&self) -> usize {
        self.0.rows()
    }

    fn cols(&self) -> usize {
        self.0.cols()
    }

    fn matmul(&self, rhs: &Self, m: &mut Meter) -> Self {
        let out = matmul::matmul(&self.0, &rhs.0);
        m.record_gemm(
            matmul::matmul_flops(self.rows(), self.cols(), rhs.cols()),
            out.len() * ELEM_BYTES,
            matmul::planned_path(self.rows(), self.cols(), rhs.cols()),
        );
        Self(out)
    }

    fn matmul_nt(&self, rhs: &Self, m: &mut Meter) -> Self {
        let out = matmul::matmul_nt(&self.0, &rhs.0);
        m.record_gemm(
            matmul::matmul_flops(self.rows(), self.cols(), rhs.rows()),
            out.len() * ELEM_BYTES,
            matmul::planned_path(self.rows(), self.cols(), rhs.rows()),
        );
        Self(out)
    }

    fn matmul_tn(&self, rhs: &Self, m: &mut Meter) -> Self {
        let out = matmul::matmul_tn(&self.0, &rhs.0);
        m.record_gemm(
            matmul::matmul_flops(self.cols(), self.rows(), rhs.cols()),
            out.len() * ELEM_BYTES,
            matmul::planned_path(self.cols(), self.rows(), rhs.cols()),
        );
        Self(out)
    }

    fn transpose(&self, m: &mut Meter) -> Self {
        let out = self.0.transpose();
        m.record(0.0, out.len() * ELEM_BYTES);
        Self(out)
    }

    fn add(&self, rhs: &Self, m: &mut Meter) -> Self {
        ew_shape_check(self, rhs, "add");
        let mut out = self.0.clone();
        out.add_assign(&rhs.0);
        m.record(self.elem_count() as f64, out.len() * ELEM_BYTES);
        Self(out)
    }

    fn add_assign(&mut self, rhs: &Self, m: &mut Meter) {
        ew_shape_check(self, rhs, "add_assign");
        self.0.add_assign(&rhs.0);
        m.record(self.elem_count() as f64, 0);
    }

    fn sub(&self, rhs: &Self, m: &mut Meter) -> Self {
        ew_shape_check(self, rhs, "sub");
        let mut out = self.0.clone();
        out.sub_assign(&rhs.0);
        m.record(self.elem_count() as f64, out.len() * ELEM_BYTES);
        Self(out)
    }

    fn hadamard(&self, rhs: &Self, m: &mut Meter) -> Self {
        ew_shape_check(self, rhs, "hadamard");
        let mut out = self.0.clone();
        for (a, b) in out.data_mut().iter_mut().zip(rhs.0.data().iter()) {
            *a *= b;
        }
        m.record(self.elem_count() as f64, out.len() * ELEM_BYTES);
        Self(out)
    }

    fn scale(&self, s: f32, m: &mut Meter) -> Self {
        let mut out = self.0.clone();
        out.scale_assign(s);
        m.record(self.elem_count() as f64, out.len() * ELEM_BYTES);
        Self(out)
    }

    fn row_sums(&self, m: &mut Meter) -> Self {
        let mut out = Matrix::zeros(self.rows(), 1);
        for i in 0..self.rows() {
            out[(i, 0)] = self.0.row(i).iter().sum();
        }
        m.record(self.elem_count() as f64, out.len() * ELEM_BYTES);
        Self(out)
    }

    fn row_sums_of_squares(&self, m: &mut Meter) -> Self {
        let mut out = Matrix::zeros(self.rows(), 1);
        for i in 0..self.rows() {
            out[(i, 0)] = self.0.row(i).iter().map(|v| v * v).sum();
        }
        m.record(2.0 * self.elem_count() as f64, out.len() * ELEM_BYTES);
        Self(out)
    }

    fn col_sums(&self, m: &mut Meter) -> Self {
        let mut out = Matrix::zeros(1, self.cols());
        for i in 0..self.rows() {
            for (o, &v) in out.row_mut(0).iter_mut().zip(self.0.row(i).iter()) {
                *o += v;
            }
        }
        m.record(self.elem_count() as f64, out.len() * ELEM_BYTES);
        Self(out)
    }

    fn add_rowvec(&self, v: &Self, m: &mut Meter) -> Self {
        assert_eq!(v.shape(), (1, self.cols()), "add_rowvec: bad vector shape");
        let out = nn::bias_add(&self.0, v.0.row(0));
        m.record(self.elem_count() as f64, out.len() * ELEM_BYTES);
        Self(out)
    }

    fn add_colvec(&self, v: &Self, m: &mut Meter) -> Self {
        assert_eq!(v.shape(), (self.rows(), 1), "add_colvec: bad vector shape");
        let mut out = self.0.clone();
        for i in 0..out.rows() {
            let s = v.0[(i, 0)];
            for x in out.row_mut(i) {
                *x += s;
            }
        }
        m.record(self.elem_count() as f64, out.len() * ELEM_BYTES);
        Self(out)
    }

    fn sub_colvec(&self, v: &Self, m: &mut Meter) -> Self {
        assert_eq!(v.shape(), (self.rows(), 1), "sub_colvec: bad vector shape");
        let mut out = self.0.clone();
        for i in 0..out.rows() {
            let s = v.0[(i, 0)];
            for x in out.row_mut(i) {
                *x -= s;
            }
        }
        m.record(self.elem_count() as f64, out.len() * ELEM_BYTES);
        Self(out)
    }

    fn mul_colvec(&self, v: &Self, m: &mut Meter) -> Self {
        assert_eq!(v.shape(), (self.rows(), 1), "mul_colvec: bad vector shape");
        let mut out = self.0.clone();
        for i in 0..out.rows() {
            let s = v.0[(i, 0)];
            for x in out.row_mut(i) {
                *x *= s;
            }
        }
        m.record(self.elem_count() as f64, out.len() * ELEM_BYTES);
        Self(out)
    }

    fn rsqrt_add(&self, eps: f32, m: &mut Meter) -> Self {
        let mut out = self.0.clone();
        for x in out.data_mut() {
            *x = 1.0 / (*x + eps).sqrt();
        }
        m.record(RSQRT_FLOPS_PER_ELEM * self.elem_count() as f64, out.len() * ELEM_BYTES);
        Self(out)
    }

    fn gelu(&self, m: &mut Meter) -> Self {
        let out = nn::gelu_matrix(&self.0);
        m.record(GELU_FLOPS_PER_ELEM * self.elem_count() as f64, out.len() * ELEM_BYTES);
        Self(out)
    }

    fn gelu_backward(&self, dy: &Self, m: &mut Meter) -> Self {
        ew_shape_check(self, dy, "gelu_backward");
        let out = nn::gelu_backward_matrix(&self.0, &dy.0);
        m.record(GELU_FLOPS_PER_ELEM * self.elem_count() as f64, out.len() * ELEM_BYTES);
        Self(out)
    }

    fn softmax_rows(&self, m: &mut Meter) -> Self {
        let out = nn::softmax_rows(&self.0);
        m.record(SOFTMAX_FLOPS_PER_ELEM * self.elem_count() as f64, out.len() * ELEM_BYTES);
        Self(out)
    }

    fn softmax_rows_inplace(&mut self, m: &mut Meter) {
        nn::softmax_rows_inplace(&mut self.0);
        // Same math as the allocating path, but no output allocation.
        m.record(SOFTMAX_FLOPS_PER_ELEM * self.elem_count() as f64, 0);
    }

    fn softmax_rows_masked_inplace(&mut self, limits: &[usize], m: &mut Meter) {
        nn::softmax_rows_masked_inplace(&mut self.0, limits);
        let active: usize = limits.iter().sum();
        m.record(SOFTMAX_FLOPS_PER_ELEM * active as f64, 0);
    }

    fn softmax_rows_backward(&self, dy: &Self, m: &mut Meter) -> Self {
        ew_shape_check(self, dy, "softmax_rows_backward");
        let out = nn::softmax_rows_backward(&self.0, &dy.0);
        m.record(SOFTMAX_FLOPS_PER_ELEM * self.elem_count() as f64, out.len() * ELEM_BYTES);
        Self(out)
    }

    fn slice_rows(&self, r0: usize, r1: usize, m: &mut Meter) -> Self {
        let out = self.0.slice_rows(r0, r1);
        m.record(0.0, out.len() * ELEM_BYTES);
        Self(out)
    }

    fn slice_cols(&self, c0: usize, c1: usize, m: &mut Meter) -> Self {
        let out = self.0.slice_cols(c0, c1);
        m.record(0.0, out.len() * ELEM_BYTES);
        Self(out)
    }

    fn concat_rows(parts: &[Self], m: &mut Meter) -> Self {
        let mats: Vec<Matrix> = parts.iter().map(|p| p.0.clone()).collect();
        let out = Matrix::concat_rows(&mats);
        m.record(0.0, out.len() * ELEM_BYTES);
        Self(out)
    }

    fn concat_cols(parts: &[Self], m: &mut Meter) -> Self {
        let mats: Vec<Matrix> = parts.iter().map(|p| p.0.clone()).collect();
        let out = Matrix::concat_cols(&mats);
        m.record(0.0, out.len() * ELEM_BYTES);
        Self(out)
    }

    fn reduce_add_inplace(&mut self, other: &Self) {
        assert_eq!(self.shape(), other.shape(), "reduce_add_inplace: shape mismatch");
        self.0.add_assign(&other.0);
    }

    fn try_matrix(&self) -> Option<&Matrix> {
        Some(&self.0)
    }

    fn frobenius(&self) -> Option<f32> {
        Some(self.0.frobenius_norm())
    }
}

// ---------------------------------------------------------------------------
// ShadowTensor
// ---------------------------------------------------------------------------

/// Shape-only tensor: carries `(rows, cols)` and nothing else. All ops
/// validate shapes exactly like the dense backend and charge the meter with
/// identical flop/byte numbers, so paper-scale configurations can run
/// through the real distributed code in microseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShadowTensor {
    rows: usize,
    cols: usize,
}

impl ShadowTensor {
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols }
    }
}

impl TensorLike for ShadowTensor {
    fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols }
    }

    fn init_xavier_block(
        _global_rows: usize,
        _global_cols: usize,
        _r0: usize,
        _c0: usize,
        nr: usize,
        nc: usize,
        _root_seed: u64,
        _param_id: u64,
    ) -> Self {
        Self { rows: nr, cols: nc }
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn matmul(&self, rhs: &Self, m: &mut Meter) -> Self {
        assert_eq!(self.cols, rhs.rows, "matmul: inner dims {} vs {}", self.cols, rhs.rows);
        let out = Self::new(self.rows, rhs.cols);
        m.record_gemm(
            matmul::matmul_flops(self.rows, self.cols, rhs.cols),
            out.byte_size(),
            matmul::planned_path(self.rows, self.cols, rhs.cols),
        );
        out
    }

    fn matmul_nt(&self, rhs: &Self, m: &mut Meter) -> Self {
        assert_eq!(self.cols, rhs.cols, "matmul_nt: inner dims {} vs {}", self.cols, rhs.cols);
        let out = Self::new(self.rows, rhs.rows);
        m.record_gemm(
            matmul::matmul_flops(self.rows, self.cols, rhs.rows),
            out.byte_size(),
            matmul::planned_path(self.rows, self.cols, rhs.rows),
        );
        out
    }

    fn matmul_tn(&self, rhs: &Self, m: &mut Meter) -> Self {
        assert_eq!(self.rows, rhs.rows, "matmul_tn: inner dims {} vs {}", self.rows, rhs.rows);
        let out = Self::new(self.cols, rhs.cols);
        m.record_gemm(
            matmul::matmul_flops(self.cols, self.rows, rhs.cols),
            out.byte_size(),
            matmul::planned_path(self.cols, self.rows, rhs.cols),
        );
        out
    }

    fn transpose(&self, m: &mut Meter) -> Self {
        let out = Self::new(self.cols, self.rows);
        m.record(0.0, out.byte_size());
        out
    }

    fn add(&self, rhs: &Self, m: &mut Meter) -> Self {
        ew_shape_check(self, rhs, "add");
        m.record(self.elem_count() as f64, self.byte_size());
        *self
    }

    fn add_assign(&mut self, rhs: &Self, m: &mut Meter) {
        ew_shape_check(self, rhs, "add_assign");
        m.record(self.elem_count() as f64, 0);
    }

    fn sub(&self, rhs: &Self, m: &mut Meter) -> Self {
        ew_shape_check(self, rhs, "sub");
        m.record(self.elem_count() as f64, self.byte_size());
        *self
    }

    fn hadamard(&self, rhs: &Self, m: &mut Meter) -> Self {
        ew_shape_check(self, rhs, "hadamard");
        m.record(self.elem_count() as f64, self.byte_size());
        *self
    }

    fn scale(&self, _s: f32, m: &mut Meter) -> Self {
        m.record(self.elem_count() as f64, self.byte_size());
        *self
    }

    fn row_sums(&self, m: &mut Meter) -> Self {
        let out = Self::new(self.rows, 1);
        m.record(self.elem_count() as f64, out.byte_size());
        out
    }

    fn row_sums_of_squares(&self, m: &mut Meter) -> Self {
        let out = Self::new(self.rows, 1);
        m.record(2.0 * self.elem_count() as f64, out.byte_size());
        out
    }

    fn col_sums(&self, m: &mut Meter) -> Self {
        let out = Self::new(1, self.cols);
        m.record(self.elem_count() as f64, out.byte_size());
        out
    }

    fn add_rowvec(&self, v: &Self, m: &mut Meter) -> Self {
        assert_eq!(v.shape(), (1, self.cols), "add_rowvec: bad vector shape");
        m.record(self.elem_count() as f64, self.byte_size());
        *self
    }

    fn add_colvec(&self, v: &Self, m: &mut Meter) -> Self {
        assert_eq!(v.shape(), (self.rows, 1), "add_colvec: bad vector shape");
        m.record(self.elem_count() as f64, self.byte_size());
        *self
    }

    fn sub_colvec(&self, v: &Self, m: &mut Meter) -> Self {
        assert_eq!(v.shape(), (self.rows, 1), "sub_colvec: bad vector shape");
        m.record(self.elem_count() as f64, self.byte_size());
        *self
    }

    fn mul_colvec(&self, v: &Self, m: &mut Meter) -> Self {
        assert_eq!(v.shape(), (self.rows, 1), "mul_colvec: bad vector shape");
        m.record(self.elem_count() as f64, self.byte_size());
        *self
    }

    fn rsqrt_add(&self, _eps: f32, m: &mut Meter) -> Self {
        m.record(RSQRT_FLOPS_PER_ELEM * self.elem_count() as f64, self.byte_size());
        *self
    }

    fn gelu(&self, m: &mut Meter) -> Self {
        m.record(GELU_FLOPS_PER_ELEM * self.elem_count() as f64, self.byte_size());
        *self
    }

    fn gelu_backward(&self, dy: &Self, m: &mut Meter) -> Self {
        ew_shape_check(self, dy, "gelu_backward");
        m.record(GELU_FLOPS_PER_ELEM * self.elem_count() as f64, self.byte_size());
        *self
    }

    fn softmax_rows(&self, m: &mut Meter) -> Self {
        m.record(SOFTMAX_FLOPS_PER_ELEM * self.elem_count() as f64, self.byte_size());
        *self
    }

    fn softmax_rows_inplace(&mut self, m: &mut Meter) {
        m.record(SOFTMAX_FLOPS_PER_ELEM * self.elem_count() as f64, 0);
    }

    fn softmax_rows_masked_inplace(&mut self, limits: &[usize], m: &mut Meter) {
        assert_eq!(self.rows, limits.len(), "softmax mask: one limit per row");
        assert!(
            limits.iter().all(|&l| l <= self.cols),
            "softmax mask: limit exceeds {} columns",
            self.cols
        );
        let active: usize = limits.iter().sum();
        m.record(SOFTMAX_FLOPS_PER_ELEM * active as f64, 0);
    }

    fn softmax_rows_backward(&self, dy: &Self, m: &mut Meter) -> Self {
        ew_shape_check(self, dy, "softmax_rows_backward");
        m.record(SOFTMAX_FLOPS_PER_ELEM * self.elem_count() as f64, self.byte_size());
        *self
    }

    fn slice_rows(&self, r0: usize, r1: usize, m: &mut Meter) -> Self {
        assert!(r0 <= r1 && r1 <= self.rows, "slice_rows out of bounds");
        let out = Self::new(r1 - r0, self.cols);
        m.record(0.0, out.byte_size());
        out
    }

    fn slice_cols(&self, c0: usize, c1: usize, m: &mut Meter) -> Self {
        assert!(c0 <= c1 && c1 <= self.cols, "slice_cols out of bounds");
        let out = Self::new(self.rows, c1 - c0);
        m.record(0.0, out.byte_size());
        out
    }

    fn concat_rows(parts: &[Self], m: &mut Meter) -> Self {
        assert!(!parts.is_empty());
        let cols = parts[0].cols;
        assert!(parts.iter().all(|p| p.cols == cols), "concat_rows: column mismatch");
        let out = Self::new(parts.iter().map(|p| p.rows).sum(), cols);
        m.record(0.0, out.byte_size());
        out
    }

    fn concat_cols(parts: &[Self], m: &mut Meter) -> Self {
        assert!(!parts.is_empty());
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows), "concat_cols: row mismatch");
        let out = Self::new(rows, parts.iter().map(|p| p.cols).sum());
        m.record(0.0, out.byte_size());
        out
    }

    fn reduce_add_inplace(&mut self, other: &Self) {
        assert_eq!(self.shape(), other.shape(), "reduce_add_inplace: shape mismatch");
    }

    fn try_matrix(&self) -> Option<&Matrix> {
        None
    }

    fn frobenius(&self) -> Option<f32> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    fn dense(rows: usize, cols: usize, seed: u64) -> DenseTensor {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        DenseTensor(Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng))
    }

    /// Runs the same op sequence on both backends and checks the meters agree
    /// — the invariant that makes shadow timing trustworthy.
    #[test]
    fn dense_and_shadow_meters_agree() {
        let a = dense(6, 4, 1);
        let b = dense(4, 8, 2);
        let sa = ShadowTensor::new(6, 4);
        let sb = ShadowTensor::new(4, 8);

        let mut md = Meter::new();
        let mut ms = Meter::new();

        let cd = a.matmul(&b, &mut md);
        let cs = sa.matmul(&sb, &mut ms);
        assert_eq!(cd.shape(), cs.shape());

        let gd = cd.gelu(&mut md);
        let gs = cs.gelu(&mut ms);
        let _ = gd.softmax_rows(&mut md);
        let _ = gs.softmax_rows(&mut ms);
        let mut ipd = cd.clone();
        let mut ips = cs;
        ipd.softmax_rows_inplace(&mut md);
        ips.softmax_rows_inplace(&mut ms);
        let limits = [1usize, 2, 3, 4, 5, 8];
        let mut mkd = cd.clone();
        let mut mks = cs;
        mkd.softmax_rows_masked_inplace(&limits, &mut md);
        mks.softmax_rows_masked_inplace(&limits, &mut ms);
        let _ = cd.row_sums(&mut md);
        let _ = cs.row_sums(&mut ms);
        let _ = cd.slice_cols(1, 5, &mut md);
        let _ = cs.slice_cols(1, 5, &mut ms);

        assert_eq!(md, ms);
    }

    #[test]
    fn shadow_shapes_follow_dense_shapes() {
        let mut m = Meter::new();
        let a = ShadowTensor::new(3, 5);
        let b = ShadowTensor::new(7, 5);
        assert_eq!(a.matmul_nt(&b, &mut m).shape(), (3, 7));
        let c = ShadowTensor::new(3, 9);
        assert_eq!(a.matmul_tn(&c, &mut m).shape(), (5, 9));
        assert_eq!(a.transpose(&mut m).shape(), (5, 3));
        assert_eq!(a.col_sums(&mut m).shape(), (1, 5));
        assert_eq!(
            ShadowTensor::concat_rows(&[a, ShadowTensor::new(2, 5)], &mut m).shape(),
            (5, 5)
        );
        assert_eq!(
            ShadowTensor::concat_cols(&[a, ShadowTensor::new(3, 2)], &mut m).shape(),
            (3, 7)
        );
    }

    #[test]
    #[should_panic(expected = "matmul: inner dims")]
    fn shadow_catches_shape_bugs() {
        let mut m = Meter::new();
        let a = ShadowTensor::new(3, 5);
        let b = ShadowTensor::new(4, 2);
        let _ = a.matmul(&b, &mut m);
    }

    #[test]
    fn xavier_block_assembles_to_global() {
        // Four quadrant blocks of an 8x8 parameter must tile the global one.
        let full = DenseTensor::init_xavier_block(8, 8, 0, 0, 8, 8, 42, 7);
        let mut m = Meter::new();
        let mut quads = Vec::new();
        for bi in 0..2 {
            let mut row = Vec::new();
            for bj in 0..2 {
                row.push(DenseTensor::init_xavier_block(8, 8, bi * 4, bj * 4, 4, 4, 42, 7));
            }
            row_major_push(&mut quads, row, &mut m);
        }
        let assembled = DenseTensor::concat_rows(&quads, &mut m);
        assert_eq!(assembled.matrix(), full.matrix());
    }

    fn row_major_push(quads: &mut Vec<DenseTensor>, row: Vec<DenseTensor>, m: &mut Meter) {
        quads.push(DenseTensor::concat_cols(&row, m));
    }

    #[test]
    fn dense_colvec_broadcasts() {
        let mut m = Meter::new();
        let x = DenseTensor(Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32));
        let v = DenseTensor(Matrix::from_vec(2, 1, vec![10.0, 20.0]));
        let y = x.add_colvec(&v, &mut m);
        assert_eq!(y.matrix().row(0), &[10.0, 11.0, 12.0]);
        assert_eq!(y.matrix().row(1), &[23.0, 24.0, 25.0]);
        let z = x.mul_colvec(&v, &mut m);
        assert_eq!(z.matrix().row(1), &[60.0, 80.0, 100.0]);
        let w = x.sub_colvec(&v, &mut m);
        assert_eq!(w.matrix().row(0), &[-10.0, -9.0, -8.0]);
    }

    #[test]
    fn dense_rowvec_bias() {
        let mut m = Meter::new();
        let x = DenseTensor(Matrix::zeros(2, 3));
        let v = DenseTensor(Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let y = x.add_rowvec(&v, &mut m);
        assert_eq!(y.matrix().row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn dense_row_and_col_sums() {
        let mut m = Meter::new();
        let x = DenseTensor(Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32));
        let rs = x.row_sums(&mut m);
        assert_eq!(rs.matrix().data(), &[3.0, 12.0]);
        let cs = x.col_sums(&mut m);
        assert_eq!(cs.matrix().data(), &[3.0, 5.0, 7.0]);
        let rss = x.row_sums_of_squares(&mut m);
        assert_eq!(rss.matrix().data(), &[5.0, 50.0]);
    }

    #[test]
    fn byte_size_uses_elem_bytes() {
        let t = ShadowTensor::new(3, 5);
        assert_eq!(t.byte_size(), 15 * ELEM_BYTES);
    }

    #[test]
    fn frobenius_by_backend() {
        let d = DenseTensor(Matrix::from_vec(1, 4, vec![1.0, 2.0, 2.0, 0.0]));
        assert!((d.frobenius().unwrap() - 3.0).abs() < 1e-6);
        assert_eq!(ShadowTensor::new(1, 4).frobenius(), None);
    }

    #[test]
    fn reduce_add_matches_add() {
        let a = dense(3, 3, 10);
        let b = dense(3, 3, 11);
        let mut m = Meter::new();
        let expected = a.add(&b, &mut m);
        let mut acc = a.clone();
        acc.reduce_add_inplace(&b);
        assert_eq!(acc.matrix(), expected.matrix());
    }
}
