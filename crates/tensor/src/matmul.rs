//! Matrix-multiplication kernels.
//!
//! Three orientations are needed by the distributed algorithms (the paper's
//! §3.1 defines Tesseract variants for `C = A·B`, `C = A·Bᵀ`, `C = Aᵀ·B`;
//! the latter two implement the backward rules `A' = C'·Bᵀ`, `B' = Aᵀ·C'`).
//!
//! Each orientation has two implementations sharing one numerical contract:
//!
//! * a **serial** triple-loop kernel (`*_serial`) used below the
//!   [`planned_path`] size threshold, where blocking overhead would dominate;
//! * a **cache-blocked, packed, multi-threaded** kernel (`*_blocked`) used
//!   above it: A and B are repacked into `MR`/`NR`-wide micro-panels sized
//!   to L1/L2 ([`BLOCK_M`]/[`BLOCK_K`]/[`BLOCK_N`]), a register-tiled
//!   micro-kernel accumulates an `MR×NR` block of C, and row-blocks of C are
//!   distributed over the in-tree [`pool::ThreadPool`].
//!
//! The blocked path is itself **runtime-dispatched** over a family of
//! [`MicroKernel`] backends sharing one packing implementation (packing is
//! parameterized by the backend's `MR`/`NR`):
//!
//! * [`MicroKernel::Scalar`] — `MR×NR = 4×8`, plain mul+add, the portable
//!   reference on every architecture;
//! * [`MicroKernel::Avx2`] — `MR×NR = 6×16`, `_mm256` FMA intrinsics behind
//!   `#[target_feature(enable = "avx2,fma")]`, selected only when
//!   `is_x86_feature_detected!` proves the host supports it.
//!
//! The backend is resolved **once per process** ([`active_kernel`], a
//! `OnceLock`): auto-detection by default, or forced with
//! `TESSERACT_KERNEL=scalar|avx2` for testing and benchmarking. Dispatch
//! therefore costs nothing in the hot loop.
//!
//! **Determinism contract** (DESIGN.md §5), now **per kernel path**: within
//! a fixed backend, every element of C is computed by exactly one task as
//! `((c + a_i0·b_0j) + a_i1·b_1j) + …` in strictly ascending k order —
//! blocking tiles k but visits tiles in order, packing copies values
//! bit-exactly, which micro-tile (full or edge) computes an element depends
//! only on the shape and the backend's tile constants, never on thread
//! count. A fixed backend therefore produces **bitwise-identical** output
//! at any thread count, so the pool size can never change a result. The
//! scalar backend is additionally bitwise-identical to the `*_serial`
//! triple loops. *Across* backends results agree only within floating-point
//! tolerance: AVX2 uses fused multiply-add (one rounding per `a·b + c`
//! instead of two), so its k-chains round differently than scalar mul+add.

use std::sync::OnceLock;

use crate::matrix::Matrix;
use crate::pool::{self, ThreadPool};

/// Rows of C per parallel task and per A-panel repack (L2-sized with
/// `BLOCK_K`: 64·256 f32 = 64 KiB).
pub const BLOCK_M: usize = 64;
/// Depth (k) tile; one packed B micro-panel stream is `BLOCK_K·NR` f32
/// (8 KiB scalar, 16 KiB AVX2), resident in L1 across a whole row of
/// micro-tiles.
pub const BLOCK_K: usize = 256;
/// Column (n) tile; the packed B block `BLOCK_K·BLOCK_N` f32 = 256 KiB
/// stays L2-resident while a task sweeps its row panel.
pub const BLOCK_N: usize = 256;

/// Scalar micro-tile rows: C accumulators held in registers are `MR×NR`
/// f32 (4×8 = 8 SSE vectors, the x86-64 baseline budget).
const SCALAR_MR: usize = 4;
/// Scalar micro-tile columns (two 4-lane f32 vectors per accumulator row).
const SCALAR_NR: usize = 8;

/// AVX2 micro-tile rows: 6×16 f32 = 12 ymm accumulators, leaving registers
/// for two B loads and the A broadcast (the BLIS Haswell shape).
const AVX2_MR: usize = 6;
/// AVX2 micro-tile columns (two 8-lane ymm vectors per accumulator row).
const AVX2_NR: usize = 16;

/// `m·k·n` below which the serial kernel is dispatched (≈ one 64³ GEMM);
/// under this size the pack/tile bookkeeping costs more than it saves.
pub const BLOCKED_MIN_ELEMS: usize = 64 * 64 * 64;

/// Which implementation [`planned_path`] selects for a GEMM shape. The
/// [`crate::Meter`] records a count per variant so experiments can audit
/// what actually ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelPath {
    /// Simple triple-loop kernel, single thread.
    Serial,
    /// Cache-blocked packed kernel, row-blocks parallelized over the pool.
    BlockedParallel,
}

/// Register micro-kernel backend of the blocked path. Resolved once per
/// process by [`active_kernel`]; tests and benches can force one per call
/// via [`matmul_blocked_with`] and friends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MicroKernel {
    /// Portable `4×8` mul+add tile — bitwise-identical to the `*_serial`
    /// triple loops, available on every architecture.
    Scalar,
    /// `6×16` AVX2+FMA tile (`_mm256_fmadd_ps`); requires runtime-detected
    /// `avx2` and `fma` CPU features.
    Avx2,
}

impl MicroKernel {
    /// Micro-tile rows of this backend.
    pub const fn mr(self) -> usize {
        match self {
            MicroKernel::Scalar => SCALAR_MR,
            MicroKernel::Avx2 => AVX2_MR,
        }
    }

    /// Micro-tile columns of this backend.
    pub const fn nr(self) -> usize {
        match self {
            MicroKernel::Scalar => SCALAR_NR,
            MicroKernel::Avx2 => AVX2_NR,
        }
    }

    /// Stable lowercase name used by `TESSERACT_KERNEL`, bench JSON, and
    /// log lines.
    pub const fn name(self) -> &'static str {
        match self {
            MicroKernel::Scalar => "scalar",
            MicroKernel::Avx2 => "avx2",
        }
    }

    /// Whether the running host can execute this backend.
    pub fn supported(self) -> bool {
        match self {
            MicroKernel::Scalar => true,
            MicroKernel::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
        }
    }
}

static ACTIVE_KERNEL: OnceLock<MicroKernel> = OnceLock::new();

/// Forces the micro-kernel backend for the whole process. This is the
/// setter the run configuration installs (historically the
/// `TESSERACT_KERNEL` env var, now parsed in `tesseract-comm`'s
/// `RunConfig`); forcing an unsupported backend panics — a forced path must
/// never silently degrade. Must run before the first blocked GEMM resolves
/// the backend; forcing a *different* backend after resolution panics too,
/// because the per-process parity guarantees would otherwise be violated.
pub fn force_kernel(k: MicroKernel) {
    assert!(
        k.supported(),
        "TESSERACT_KERNEL={} forced, but this host does not support it",
        k.name()
    );
    let got = *ACTIVE_KERNEL.get_or_init(|| k);
    assert_eq!(
        got,
        k,
        "kernel backend already resolved to {} before {} was forced",
        got.name(),
        k.name()
    );
}

/// The backend every host-feature-supported blocked GEMM runs on, resolved
/// exactly once per process: the [`force_kernel`] override if one was
/// installed first, else the widest backend the CPU supports.
pub fn active_kernel() -> MicroKernel {
    *ACTIVE_KERNEL.get_or_init(detect_kernel)
}

/// Widest supported backend, in preference order.
fn detect_kernel() -> MicroKernel {
    if MicroKernel::Avx2.supported() {
        MicroKernel::Avx2
    } else {
        MicroKernel::Scalar
    }
}

/// Deterministic dispatch decision for a `[m,k]·[k,n]` product. Depends only
/// on the shape — never on thread count, data, or the active micro-kernel
/// backend (the thresholds are the *scalar* tile so metered dispatch counts
/// are identical on every host) — so dense and shadow backends agree and
/// runs are reproducible. Degenerate outputs (fewer rows or columns than
/// one scalar micro-tile) stay serial: most of each register tile would be
/// padding.
pub fn planned_path(m: usize, k: usize, n: usize) -> KernelPath {
    if m >= SCALAR_MR
        && n >= SCALAR_NR
        && m.saturating_mul(k).saturating_mul(n) >= BLOCKED_MIN_ELEMS
    {
        KernelPath::BlockedParallel
    } else {
        KernelPath::Serial
    }
}

// ---------------------------------------------------------------------------
// Public entry points: dispatch serial vs blocked-parallel
// ---------------------------------------------------------------------------

/// `C = A · B`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dims {} vs {}", a.cols(), b.rows());
    match planned_path(a.rows(), a.cols(), b.cols()) {
        KernelPath::Serial => matmul_serial(a, b),
        KernelPath::BlockedParallel => matmul_blocked(a, b, pool::global()),
    }
}

/// `C = A · Bᵀ` without materializing the transpose.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_nt: inner dims {} vs {}", a.cols(), b.cols());
    match planned_path(a.rows(), a.cols(), b.rows()) {
        KernelPath::Serial => matmul_nt_serial(a, b),
        KernelPath::BlockedParallel => matmul_nt_blocked(a, b, pool::global()),
    }
}

/// `C = Aᵀ · B` without materializing the transpose.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_tn: inner dims {} vs {}", a.rows(), b.rows());
    match planned_path(a.cols(), a.rows(), b.cols()) {
        KernelPath::Serial => matmul_tn_serial(a, b),
        KernelPath::BlockedParallel => matmul_tn_blocked(a, b, pool::global()),
    }
}

// ---------------------------------------------------------------------------
// Serial reference kernels
// ---------------------------------------------------------------------------
//
// ikj / dot-product order so LLVM vectorizes the contiguous inner loops.
// Deliberately branch-free: the old `if a_ik == 0.0 { continue }` "skip"
// both defeated vectorization and broke IEEE semantics (`0 · NaN` must be
// NaN, `0 · inf` must be NaN — skipping dropped them).

/// Serial `C = A · B`.
pub fn matmul_serial(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dims {} vs {}", a.cols(), b.rows());
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for (kk, &a_ik) in a_row.iter().enumerate().take(k) {
            let b_row = b.row(kk);
            for (c_ij, &b_kj) in c_row.iter_mut().zip(b_row.iter()) {
                *c_ij += a_ik * b_kj;
            }
        }
    }
    c
}

/// Serial `C = A · Bᵀ`.
pub fn matmul_nt_serial(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_nt: inner dims {} vs {}", a.cols(), b.cols());
    let m = a.rows();
    let n = b.rows();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for j in 0..n {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            c_row[j] = acc;
        }
    }
    c
}

/// Serial `C = Aᵀ · B`.
pub fn matmul_tn_serial(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_tn: inner dims {} vs {}", a.rows(), b.rows());
    let m = a.cols();
    let n = b.cols();
    let k = a.rows();
    let mut c = Matrix::zeros(m, n);
    for kk in 0..k {
        let a_row = a.row(kk);
        let b_row = b.row(kk);
        for (i, &a_ki) in a_row.iter().enumerate().take(m) {
            let c_row = c.row_mut(i);
            for (c_ij, &b_kj) in c_row.iter_mut().zip(b_row.iter()) {
                *c_ij += a_ki * b_kj;
            }
        }
    }
    c
}

// ---------------------------------------------------------------------------
// Blocked, packed, parallel kernels
// ---------------------------------------------------------------------------

/// How the logical `[m,k]·[k,n]` operands map onto the stored matrices.
#[derive(Clone, Copy)]
enum Orient {
    /// `A[m,k]`, `B[k,n]` as stored.
    Nn,
    /// logical B is `Bᵀ` of the stored `[n,k]` matrix.
    Nt,
    /// logical A is `Aᵀ` of the stored `[k,m]` matrix.
    Tn,
}

/// Blocked-parallel `C = A · B` on an explicit pool, on the process-wide
/// [`active_kernel`] (exposed so tests and benches can pin thread counts;
/// production call sites use [`matmul`]).
pub fn matmul_blocked(a: &Matrix, b: &Matrix, pool: &ThreadPool) -> Matrix {
    matmul_blocked_with(a, b, pool, active_kernel())
}

/// Blocked-parallel `C = A · Bᵀ` on an explicit pool.
pub fn matmul_nt_blocked(a: &Matrix, b: &Matrix, pool: &ThreadPool) -> Matrix {
    matmul_nt_blocked_with(a, b, pool, active_kernel())
}

/// Blocked-parallel `C = Aᵀ · B` on an explicit pool.
pub fn matmul_tn_blocked(a: &Matrix, b: &Matrix, pool: &ThreadPool) -> Matrix {
    matmul_tn_blocked_with(a, b, pool, active_kernel())
}

/// [`matmul_blocked`] with an explicitly forced micro-kernel backend.
/// Panics if `kernel` is unsupported on this host. This is the race-free
/// way for tests to pin a path (no env mutation).
pub fn matmul_blocked_with(
    a: &Matrix,
    b: &Matrix,
    pool: &ThreadPool,
    kernel: MicroKernel,
) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dims {} vs {}", a.cols(), b.rows());
    gemm_blocked(kernel, Orient::Nn, a, b, a.rows(), a.cols(), b.cols(), pool)
}

/// [`matmul_nt_blocked`] with an explicitly forced micro-kernel backend.
pub fn matmul_nt_blocked_with(
    a: &Matrix,
    b: &Matrix,
    pool: &ThreadPool,
    kernel: MicroKernel,
) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_nt: inner dims {} vs {}", a.cols(), b.cols());
    gemm_blocked(kernel, Orient::Nt, a, b, a.rows(), a.cols(), b.rows(), pool)
}

/// [`matmul_tn_blocked`] with an explicitly forced micro-kernel backend.
pub fn matmul_tn_blocked_with(
    a: &Matrix,
    b: &Matrix,
    pool: &ThreadPool,
    kernel: MicroKernel,
) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_tn: inner dims {} vs {}", a.rows(), b.rows());
    gemm_blocked(kernel, Orient::Tn, a, b, a.cols(), a.rows(), b.cols(), pool)
}

/// Shared pointer to C's buffer handed to tasks; tasks write disjoint row
/// ranges, so no two tasks alias.
#[derive(Clone, Copy)]
struct CPtr(*mut f32);
unsafe impl Send for CPtr {}
unsafe impl Sync for CPtr {}

impl CPtr {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the bare non-`Sync` pointer inside it.
    fn get(self) -> *mut f32 {
        self.0
    }
}

#[allow(clippy::too_many_arguments)]
fn gemm_blocked(
    kernel: MicroKernel,
    orient: Orient,
    a: &Matrix,
    b: &Matrix,
    m: usize,
    k: usize,
    n: usize,
    pool: &ThreadPool,
) -> Matrix {
    assert!(kernel.supported(), "micro-kernel {:?} unsupported on this host", kernel);
    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    // B is packed ONCE, up front, and shared read-only by every task —
    // repacking it per row-block would add O(k·n) copies per task.
    let b_packed = PackedB::new(orient, b, k, n, kernel.nr());
    let n_tasks = m.div_ceil(BLOCK_M);
    let c_ptr = CPtr(c.data_mut().as_mut_ptr());
    pool.parallel_for(n_tasks, &|t| {
        let i0 = t * BLOCK_M;
        let i1 = (i0 + BLOCK_M).min(m);
        // SAFETY: tasks receive disjoint row ranges of C (task t owns rows
        // [t·BLOCK_M, (t+1)·BLOCK_M)), and `parallel_for` completes before
        // `c` is touched again by this thread.
        let c_rows =
            unsafe { std::slice::from_raw_parts_mut(c_ptr.get().add(i0 * n), (i1 - i0) * n) };
        gemm_row_block(kernel, orient, a, &b_packed, c_rows, i0, i1 - i0, k, n);
    });
    c
}

/// All of logical B repacked into `nr`-column micro-panels, grouped by
/// k-tile: slot `(kc_idx, q)` holds `B[kc .. kc+kb, q·nr .. q·nr+nr]` as
/// `kb` rows of `nr` contiguous values (zero-padded at both remainders).
/// Padded lanes feed don't-care accumulator columns that are never stored.
/// One implementation serves every micro-kernel backend: the panel width
/// `nr` is a constructor parameter, and each `(k-tile, column-panel)` slot
/// is the fixed size `BLOCK_K·nr` so panel addresses are computable without
/// per-tile offset tables.
struct PackedB {
    buf: Vec<f32>,
    n_panels: usize,
    nr: usize,
}

impl PackedB {
    fn new(orient: Orient, b: &Matrix, k: usize, n: usize, nr: usize) -> Self {
        let slot = BLOCK_K * nr;
        let n_panels = n.div_ceil(nr);
        let k_tiles = k.div_ceil(BLOCK_K);
        // Pre-zeroed, each slot written once: padding needs no extra pass.
        let mut buf = vec![0.0f32; k_tiles * n_panels * slot];
        for (kc_idx, kc) in (0..k).step_by(BLOCK_K).enumerate() {
            let kb = (k - kc).min(BLOCK_K);
            for q in 0..n_panels {
                let slot_buf = &mut buf[(kc_idx * n_panels + q) * slot..][..slot];
                let j = q * nr;
                let cols = (n - j).min(nr);
                match orient {
                    Orient::Nn | Orient::Tn => {
                        // Stored row-major [k, n]: copy a row stripe per kk.
                        for kk in 0..kb {
                            let src = &b.row(kc + kk)[j..j + cols];
                            slot_buf[kk * nr..kk * nr + cols].copy_from_slice(src);
                        }
                    }
                    Orient::Nt => {
                        // Logical B = stored Bᵀ [n, k]: logical column j is
                        // storage row j — walk it contiguously, scatter with
                        // stride nr.
                        for (l, row) in (0..cols).map(|l| (l, b.row(j + l))) {
                            for (kk, &v) in row[kc..kc + kb].iter().enumerate() {
                                slot_buf[kk * nr + l] = v;
                            }
                        }
                    }
                }
            }
        }
        Self { buf, n_panels, nr }
    }

    fn panel(&self, kc_idx: usize, q: usize) -> &[f32] {
        let slot = BLOCK_K * self.nr;
        &self.buf[(kc_idx * self.n_panels + q) * slot..][..slot]
    }
}

/// Monomorphizes the row-block sweep over the backend's tile constants.
/// The enum → const-generic hop happens once per task, far off the hot
/// path; everything below it compiles with `MR`/`NR` as literals.
#[allow(clippy::too_many_arguments)]
fn gemm_row_block(
    kernel: MicroKernel,
    orient: Orient,
    a: &Matrix,
    b_packed: &PackedB,
    c_rows: &mut [f32],
    i0: usize,
    mb: usize,
    k: usize,
    n: usize,
) {
    match kernel {
        MicroKernel::Scalar => gemm_row_block_g::<SCALAR_MR, SCALAR_NR>(
            kernel, orient, a, b_packed, c_rows, i0, mb, k, n,
        ),
        MicroKernel::Avx2 => {
            gemm_row_block_g::<AVX2_MR, AVX2_NR>(kernel, orient, a, b_packed, c_rows, i0, mb, k, n)
        }
    }
}

/// Computes rows `[i0, i0+mb)` of C. Per k-tile: repack the A row panel
/// (once — it is reused across every column panel), then sweep column panels
/// outer / row panels inner so each packed B panel stays L1-resident while
/// the L2-resident A panel streams past it. Serial per task; parallelism
/// lives one level up.
#[allow(clippy::too_many_arguments)]
fn gemm_row_block_g<const MR: usize, const NR: usize>(
    kernel: MicroKernel,
    orient: Orient,
    a: &Matrix,
    b_packed: &PackedB,
    c_rows: &mut [f32],
    i0: usize,
    mb: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!((MR, NR), (kernel.mr(), kernel.nr()));
    debug_assert_eq!(b_packed.nr, NR, "B packed for a different backend");
    let row_panels = mb.div_ceil(MR);
    let mut a_pack = vec![0.0f32; row_panels * MR * k.min(BLOCK_K)];
    for (kc_idx, kc) in (0..k).step_by(BLOCK_K).enumerate() {
        let kb = (k - kc).min(BLOCK_K);
        pack_a(orient, a, &mut a_pack, i0, mb, kc, kb, MR);
        for q in 0..b_packed.n_panels {
            let cols = (n - q * NR).min(NR);
            let b_panel = b_packed.panel(kc_idx, q);
            for p in 0..row_panels {
                let rows = (mb - p * MR).min(MR);
                let a_panel = &a_pack[p * kb * MR..(p + 1) * kb * MR];
                micro_kernel::<MR, NR>(
                    kernel,
                    a_panel,
                    b_panel,
                    kb,
                    c_rows,
                    p * MR,
                    q * NR,
                    n,
                    rows,
                    cols,
                );
            }
        }
    }
}

/// `MR×NR` register-tile update: `C[tile] += Apanel · Bpanel` over `kb`
/// depth steps. Full tiles take the backend's fast path; remainder tiles
/// take the shared scalar edge path. Which path computes an element is a
/// pure function of shape and tile constants — never of thread count — so
/// each backend stays bitwise deterministic (the per-path parity contract).
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel<const MR: usize, const NR: usize>(
    kernel: MicroKernel,
    a_panel: &[f32],
    b_panel: &[f32],
    kb: usize,
    c_rows: &mut [f32],
    ci: usize,
    cj: usize,
    n: usize,
    rows: usize,
    cols: usize,
) {
    if rows == MR && cols == NR {
        match kernel {
            MicroKernel::Scalar => {
                micro_kernel_full::<MR, NR>(a_panel, b_panel, kb, c_rows, ci, cj, n)
            }
            MicroKernel::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: `MicroKernel::Avx2` is only dispatched after
                // `supported()` verified avx2+fma at kernel-selection time
                // (gemm_blocked asserts it), and full-tile bounds were just
                // checked (`rows == MR && cols == NR`).
                unsafe {
                    micro_kernel_avx2(a_panel, b_panel, kb, c_rows, ci, cj, n)
                }
                #[cfg(not(target_arch = "x86_64"))]
                unreachable!("Avx2 backend cannot be selected off x86_64")
            }
        }
    } else {
        micro_kernel_edge::<MR, NR>(a_panel, b_panel, kb, c_rows, ci, cj, n, rows, cols);
    }
}

/// Scalar full-tile fast path. Every access to `acc` is a constant index
/// (the `MR`/`NR` loops fully unroll), so the array lives in registers;
/// loading the C tile first keeps each element's k-chain unbroken across
/// k-tiles.
#[inline]
fn micro_kernel_full<const MR: usize, const NR: usize>(
    a_panel: &[f32],
    b_panel: &[f32],
    kb: usize,
    c_rows: &mut [f32],
    ci: usize,
    cj: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, acc_row) in acc.iter_mut().enumerate() {
        let src: &[f32; NR] = c_rows[(ci + r) * n + cj..][..NR].try_into().unwrap();
        *acc_row = *src;
    }
    for (av, bv) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)).take(kb) {
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let ar = av[r];
            for (x, &bl) in acc_row.iter_mut().zip(bv) {
                *x += ar * bl;
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        let dst: &mut [f32; NR] = (&mut c_rows[(ci + r) * n + cj..][..NR]).try_into().unwrap();
        *dst = *acc_row;
    }
}

/// AVX2+FMA full-tile fast path: a `6×16` C tile as 12 ymm accumulators,
/// per depth step two B loads and six A broadcasts feeding
/// `_mm256_fmadd_ps`. FMA fuses each `a·b + c` into one rounding, so this
/// backend's k-chains differ from scalar in the last ulps (the per-path
/// parity contract); within the backend the chain is still strictly
/// ascending-k and thread-count independent.
///
/// # Safety
/// Caller must guarantee the host supports `avx2` and `fma`, that
/// `a_panel` holds at least `kb·6` f32, `b_panel` at least `kb·16`, and
/// that rows `ci..ci+6` × cols `cj..cj+16` are in-bounds in `c_rows`
/// (row stride `n`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro_kernel_avx2(
    a_panel: &[f32],
    b_panel: &[f32],
    kb: usize,
    c_rows: &mut [f32],
    ci: usize,
    cj: usize,
    n: usize,
) {
    use std::arch::x86_64::*;
    debug_assert!(a_panel.len() >= kb * AVX2_MR && b_panel.len() >= kb * AVX2_NR);
    debug_assert!((ci + AVX2_MR - 1) * n + cj + AVX2_NR <= c_rows.len());
    let mut acc = [[_mm256_setzero_ps(); 2]; AVX2_MR];
    for (r, acc_row) in acc.iter_mut().enumerate() {
        let p = c_rows.as_ptr().add((ci + r) * n + cj);
        acc_row[0] = _mm256_loadu_ps(p);
        acc_row[1] = _mm256_loadu_ps(p.add(8));
    }
    let mut ap = a_panel.as_ptr();
    let mut bp = b_panel.as_ptr();
    for _ in 0..kb {
        let b0 = _mm256_loadu_ps(bp);
        let b1 = _mm256_loadu_ps(bp.add(8));
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let ar = _mm256_broadcast_ss(&*ap.add(r));
            acc_row[0] = _mm256_fmadd_ps(ar, b0, acc_row[0]);
            acc_row[1] = _mm256_fmadd_ps(ar, b1, acc_row[1]);
        }
        ap = ap.add(AVX2_MR);
        bp = bp.add(AVX2_NR);
    }
    for (r, acc_row) in acc.iter().enumerate() {
        let p = c_rows.as_mut_ptr().add((ci + r) * n + cj);
        _mm256_storeu_ps(p, acc_row[0]);
        _mm256_storeu_ps(p.add(8), acc_row[1]);
    }
}

/// Remainder tiles at the right/bottom edges, shared by every backend:
/// same ascending-k arithmetic as the scalar full tile (plain mul+add),
/// but loads and stores clip to the valid `rows × cols` region (padded
/// accumulator lanes are computed and discarded). Not speed-critical.
#[allow(clippy::too_many_arguments)]
fn micro_kernel_edge<const MR: usize, const NR: usize>(
    a_panel: &[f32],
    b_panel: &[f32],
    kb: usize,
    c_rows: &mut [f32],
    ci: usize,
    cj: usize,
    n: usize,
    rows: usize,
    cols: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for r in 0..rows {
        let c_row = &c_rows[(ci + r) * n + cj..(ci + r) * n + cj + cols];
        acc[r][..cols].copy_from_slice(c_row);
    }
    for (av, bv) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)).take(kb) {
        for r in 0..MR {
            let ar = av[r];
            for l in 0..NR {
                acc[r][l] += ar * bv[l];
            }
        }
    }
    for r in 0..rows {
        let c_row = &mut c_rows[(ci + r) * n + cj..(ci + r) * n + cj + cols];
        c_row.copy_from_slice(&acc[r][..cols]);
    }
}

/// Packs logical-A rows `[i0, i0+mb) × [kc, kc+kb)` into `mr`-row panels:
/// `buf[(panel·kb + kk)·mr + r]`, zero-padding the row remainder (padded
/// rows are computed into don't-care accumulator lanes and never stored).
/// Shared by every micro-kernel backend via the `mr` parameter.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    orient: Orient,
    a: &Matrix,
    buf: &mut [f32],
    i0: usize,
    mb: usize,
    kc: usize,
    kb: usize,
    mr: usize,
) {
    let panels = mb.div_ceil(mr);
    match orient {
        Orient::Nn | Orient::Nt => {
            // Logical A is the stored matrix: copy row slices, stride mr out.
            for p in 0..panels {
                let panel = &mut buf[p * kb * mr..(p + 1) * kb * mr];
                let rows = (mb - p * mr).min(mr);
                for r in 0..mr {
                    if r < rows {
                        let a_row = &a.row(i0 + p * mr + r)[kc..kc + kb];
                        for (kk, &v) in a_row.iter().enumerate() {
                            panel[kk * mr + r] = v;
                        }
                    } else {
                        for kk in 0..kb {
                            panel[kk * mr + r] = 0.0;
                        }
                    }
                }
            }
        }
        Orient::Tn => {
            // Logical A = stored Aᵀ: row kk of storage holds the panel's
            // r-contiguous values, so each copy is a contiguous stripe.
            for p in 0..panels {
                let panel = &mut buf[p * kb * mr..(p + 1) * kb * mr];
                let rows = (mb - p * mr).min(mr);
                for kk in 0..kb {
                    let src = &a.row(kc + kk)[i0 + p * mr..i0 + p * mr + rows];
                    let dst = &mut panel[kk * mr..kk * mr + mr];
                    dst[..rows].copy_from_slice(src);
                    dst[rows..].fill(0.0);
                }
            }
        }
    }
}

/// Flop count of a `[m,k] x [k,n]` multiply-accumulate product. All three
/// orientations above perform exactly this much work; the shadow backend
/// charges the same number so dense and shadow runs agree on metering.
pub fn matmul_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    fn reference(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a[(i, k)] * b[(k, j)];
                }
                c[(i, j)] = acc;
            }
        }
        c
    }

    #[test]
    fn matmul_matches_reference() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let a = Matrix::random_uniform(7, 5, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(5, 9, -1.0, 1.0, &mut rng);
        crate::assert_slices_close(matmul(&a, &b).data(), reference(&a, &b).data(), 1e-5);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let a = Matrix::random_uniform(4, 4, -1.0, 1.0, &mut rng);
        assert_eq!(matmul(&a, &Matrix::eye(4)), a);
        assert_eq!(matmul(&Matrix::eye(4), &a), a);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let a = Matrix::random_uniform(6, 4, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(8, 4, -1.0, 1.0, &mut rng);
        crate::assert_slices_close(
            matmul_nt(&a, &b).data(),
            matmul(&a, &b.transpose()).data(),
            1e-5,
        );
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let a = Matrix::random_uniform(4, 6, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(4, 8, -1.0, 1.0, &mut rng);
        crate::assert_slices_close(
            matmul_tn(&a, &b).data(),
            matmul(&a.transpose(), &b).data(),
            1e-5,
        );
    }

    #[test]
    fn associativity_within_tolerance() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let a = Matrix::random_uniform(5, 6, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(6, 7, -1.0, 1.0, &mut rng);
        let c = Matrix::random_uniform(7, 3, -1.0, 1.0, &mut rng);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        crate::assert_slices_close(left.data(), right.data(), 1e-4);
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(matmul_flops(2, 3, 4), 48.0);
    }

    #[test]
    #[should_panic(expected = "matmul: inner dims")]
    fn mismatched_dims_panic() {
        matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }

    #[test]
    fn kernel_table_is_consistent() {
        assert_eq!(MicroKernel::Scalar.name(), "scalar");
        assert_eq!(MicroKernel::Avx2.name(), "avx2");
        assert_eq!((MicroKernel::Scalar.mr(), MicroKernel::Scalar.nr()), (4, 8));
        assert_eq!((MicroKernel::Avx2.mr(), MicroKernel::Avx2.nr()), (6, 16));
        assert!(MicroKernel::Scalar.supported(), "scalar must run everywhere");
        // The resolved process-wide backend must itself be runnable.
        assert!(active_kernel().supported());
        // OnceLock: the same answer every time.
        assert_eq!(active_kernel(), active_kernel());
    }

    /// Regression for the removed zero-skip branch: `0 · NaN` must reach C
    /// as NaN (IEEE 754), in every orientation and on every kernel path.
    #[test]
    fn zero_times_nan_propagates() {
        let mut a = Matrix::zeros(2, 3); // A is all zeros, incl. the NaN row
        a[(1, 1)] = 1.0;
        let mut b = Matrix::full(3, 2, 1.0);
        b[(0, 0)] = f32::NAN; // multiplied only by A's zeros
        let c = matmul_serial(&a, &b);
        assert!(c[(0, 0)].is_nan(), "0 * NaN must propagate into C");
        assert!(c[(1, 0)].is_nan());
        assert!(!c[(0, 1)].is_nan());
        let pool = ThreadPool::new(2);
        for kernel in [MicroKernel::Scalar, MicroKernel::Avx2] {
            if !kernel.supported() {
                continue;
            }
            let cb = matmul_blocked_with(&a, &b, &pool, kernel);
            assert!(cb[(0, 0)].is_nan() && cb[(1, 0)].is_nan() && !cb[(0, 1)].is_nan());
        }

        // Aᵀ·B with a zero in Aᵀ against a NaN in B.
        let mut at = Matrix::zeros(3, 2);
        at[(2, 0)] = 2.0;
        let ct = matmul_tn_serial(&at, &b);
        assert!(ct[(0, 0)].is_nan());
        // A·Bᵀ: NaN in B's column hit by a zero of A.
        let mut bt = Matrix::full(2, 3, 1.0);
        bt[(0, 0)] = f32::NAN;
        let cn = matmul_nt_serial(&a, &bt);
        assert!(cn[(0, 0)].is_nan());
    }

    /// The scalar backend must agree bit-for-bit with the serial triple
    /// loops, so dispatch on the scalar path can never change results.
    #[test]
    fn serial_and_blocked_scalar_agree_bitwise_at_the_threshold() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        let pool = ThreadPool::new(3);
        let a = Matrix::random_uniform(64, 64, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(64, 64, -1.0, 1.0, &mut rng);
        let k = MicroKernel::Scalar;
        assert_eq!(matmul_serial(&a, &b), matmul_blocked_with(&a, &b, &pool, k));
        assert_eq!(matmul_nt_serial(&a, &b), matmul_nt_blocked_with(&a, &b, &pool, k));
        assert_eq!(matmul_tn_serial(&a, &b), matmul_tn_blocked_with(&a, &b, &pool, k));
    }

    /// Each backend must be bitwise deterministic across thread counts
    /// (the per-path parity contract); across backends, results agree
    /// within floating-point tolerance (FMA rounds once per step).
    #[test]
    fn per_path_thread_parity_and_cross_path_tolerance() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let (m, k, n) = (70, 97, 45);
        let a = Matrix::random_uniform(m, k, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(k, n, -1.0, 1.0, &mut rng);
        let pool1 = ThreadPool::new(1);
        let pool4 = ThreadPool::new(4);
        let scalar = matmul_blocked_with(&a, &b, &pool1, MicroKernel::Scalar);
        assert_eq!(scalar, matmul_blocked_with(&a, &b, &pool4, MicroKernel::Scalar));
        if MicroKernel::Avx2.supported() {
            let avx2 = matmul_blocked_with(&a, &b, &pool1, MicroKernel::Avx2);
            assert_eq!(avx2, matmul_blocked_with(&a, &b, &pool4, MicroKernel::Avx2));
            assert!(
                crate::max_rel_diff(scalar.data(), avx2.data()) < 1e-5,
                "scalar and avx2 backends diverged beyond FMA rounding"
            );
        }
    }

    #[test]
    fn planned_path_thresholds() {
        assert_eq!(planned_path(4, 4, 4), KernelPath::Serial);
        assert_eq!(planned_path(64, 64, 64), KernelPath::BlockedParallel);
        // Degenerate outputs stay serial no matter how much work k adds.
        assert_eq!(planned_path(1, 1 << 20, 1), KernelPath::Serial);
        assert_eq!(planned_path(usize::MAX, 2, usize::MAX), KernelPath::BlockedParallel);
    }

    #[test]
    fn empty_dims_yield_zero_matrices() {
        let pool = ThreadPool::new(2);
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 5);
        let c = matmul_blocked(&a, &b, &pool);
        assert_eq!(c.shape(), (3, 5));
        assert!(c.data().iter().all(|&v| v == 0.0));
    }
}
