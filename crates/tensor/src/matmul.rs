//! Matrix-multiplication kernels.
//!
//! Three orientations are needed by the distributed algorithms (the paper's
//! §3.1 defines Tesseract variants for `C = A·B`, `C = A·Bᵀ`, `C = Aᵀ·B`;
//! the latter two implement the backward rules `A' = C'·Bᵀ`, `B' = Aᵀ·C'`).
//!
//! Each orientation has two implementations sharing one numerical contract:
//!
//! * a **serial** triple-loop kernel (`*_serial`) used below the
//!   [`planned_path`] size threshold, where blocking overhead would dominate;
//! * a **cache-blocked, packed, multi-threaded** kernel (`*_blocked`) used
//!   above it: A and B are repacked into `MR`/`NR`-wide micro-panels sized
//!   to L1/L2 ([`BLOCK_M`]/[`BLOCK_K`]/[`BLOCK_N`]), a register-tiled
//!   micro-kernel accumulates an `MR×NR` block of C, and row-blocks of C are
//!   distributed over the in-tree [`pool::ThreadPool`].
//!
//! **Determinism contract** (DESIGN.md §5): every element of C is computed
//! by exactly one task as `((0 + a_i0·b_0j) + a_i1·b_1j) + …` in strictly
//! ascending k order, in both implementations — blocking tiles k but visits
//! tiles in order, packing copies values bit-exactly, and vectorization only
//! spans independent elements, never one element's reduction chain. The two
//! paths therefore produce **bitwise-identical** output at any thread count,
//! so the dispatcher and pool size can never change a result.

use crate::matrix::Matrix;
use crate::pool::{self, ThreadPool};

/// Rows of C per parallel task and per A-panel repack (L2-sized with
/// `BLOCK_K`: 64·256 f32 = 64 KiB).
pub const BLOCK_M: usize = 64;
/// Depth (k) tile; one packed B micro-panel stream is `BLOCK_K·NR` f32
/// = 8 KiB, resident in L1 across a whole row of micro-tiles.
pub const BLOCK_K: usize = 256;
/// Column (n) tile; the packed B block `BLOCK_K·BLOCK_N` f32 = 256 KiB
/// stays L2-resident while a task sweeps its row panel.
pub const BLOCK_N: usize = 256;

/// Micro-tile rows: C accumulators held in registers are `MR×NR` f32
/// (4×8 = 8 SSE vectors, the x86-64 baseline budget).
const MR: usize = 4;
/// Micro-tile columns (two 4-lane f32 vectors per accumulator row).
const NR: usize = 8;

/// `m·k·n` below which the serial kernel is dispatched (≈ one 64³ GEMM);
/// under this size the pack/tile bookkeeping costs more than it saves.
pub const BLOCKED_MIN_ELEMS: usize = 64 * 64 * 64;

/// Which implementation [`planned_path`] selects for a GEMM shape. The
/// [`crate::Meter`] records a count per variant so experiments can audit
/// what actually ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelPath {
    /// Simple triple-loop kernel, single thread.
    Serial,
    /// Cache-blocked packed kernel, row-blocks parallelized over the pool.
    BlockedParallel,
}

/// Deterministic dispatch decision for a `[m,k]·[k,n]` product. Depends only
/// on the shape — never on thread count or data — so dense and shadow
/// backends agree and runs are reproducible. Degenerate outputs (fewer rows
/// or columns than one micro-tile) stay serial: most of each register tile
/// would be padding.
pub fn planned_path(m: usize, k: usize, n: usize) -> KernelPath {
    if m >= MR && n >= NR && m.saturating_mul(k).saturating_mul(n) >= BLOCKED_MIN_ELEMS {
        KernelPath::BlockedParallel
    } else {
        KernelPath::Serial
    }
}

// ---------------------------------------------------------------------------
// Public entry points: dispatch serial vs blocked-parallel
// ---------------------------------------------------------------------------

/// `C = A · B`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dims {} vs {}", a.cols(), b.rows());
    match planned_path(a.rows(), a.cols(), b.cols()) {
        KernelPath::Serial => matmul_serial(a, b),
        KernelPath::BlockedParallel => matmul_blocked(a, b, pool::global()),
    }
}

/// `C = A · Bᵀ` without materializing the transpose.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_nt: inner dims {} vs {}", a.cols(), b.cols());
    match planned_path(a.rows(), a.cols(), b.rows()) {
        KernelPath::Serial => matmul_nt_serial(a, b),
        KernelPath::BlockedParallel => matmul_nt_blocked(a, b, pool::global()),
    }
}

/// `C = Aᵀ · B` without materializing the transpose.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_tn: inner dims {} vs {}", a.rows(), b.rows());
    match planned_path(a.cols(), a.rows(), b.cols()) {
        KernelPath::Serial => matmul_tn_serial(a, b),
        KernelPath::BlockedParallel => matmul_tn_blocked(a, b, pool::global()),
    }
}

// ---------------------------------------------------------------------------
// Serial reference kernels
// ---------------------------------------------------------------------------
//
// ikj / dot-product order so LLVM vectorizes the contiguous inner loops.
// Deliberately branch-free: the old `if a_ik == 0.0 { continue }` "skip"
// both defeated vectorization and broke IEEE semantics (`0 · NaN` must be
// NaN, `0 · inf` must be NaN — skipping dropped them).

/// Serial `C = A · B`.
pub fn matmul_serial(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dims {} vs {}", a.cols(), b.rows());
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for (kk, &a_ik) in a_row.iter().enumerate().take(k) {
            let b_row = b.row(kk);
            for (c_ij, &b_kj) in c_row.iter_mut().zip(b_row.iter()) {
                *c_ij += a_ik * b_kj;
            }
        }
    }
    c
}

/// Serial `C = A · Bᵀ`.
pub fn matmul_nt_serial(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_nt: inner dims {} vs {}", a.cols(), b.cols());
    let m = a.rows();
    let n = b.rows();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for j in 0..n {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            c_row[j] = acc;
        }
    }
    c
}

/// Serial `C = Aᵀ · B`.
pub fn matmul_tn_serial(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_tn: inner dims {} vs {}", a.rows(), b.rows());
    let m = a.cols();
    let n = b.cols();
    let k = a.rows();
    let mut c = Matrix::zeros(m, n);
    for kk in 0..k {
        let a_row = a.row(kk);
        let b_row = b.row(kk);
        for (i, &a_ki) in a_row.iter().enumerate().take(m) {
            let c_row = c.row_mut(i);
            for (c_ij, &b_kj) in c_row.iter_mut().zip(b_row.iter()) {
                *c_ij += a_ki * b_kj;
            }
        }
    }
    c
}

// ---------------------------------------------------------------------------
// Blocked, packed, parallel kernels
// ---------------------------------------------------------------------------

/// How the logical `[m,k]·[k,n]` operands map onto the stored matrices.
#[derive(Clone, Copy)]
enum Orient {
    /// `A[m,k]`, `B[k,n]` as stored.
    Nn,
    /// logical B is `Bᵀ` of the stored `[n,k]` matrix.
    Nt,
    /// logical A is `Aᵀ` of the stored `[k,m]` matrix.
    Tn,
}

/// Blocked-parallel `C = A · B` on an explicit pool (exposed so tests and
/// benches can pin thread counts; production call sites use [`matmul`]).
pub fn matmul_blocked(a: &Matrix, b: &Matrix, pool: &ThreadPool) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dims {} vs {}", a.cols(), b.rows());
    gemm_blocked(Orient::Nn, a, b, a.rows(), a.cols(), b.cols(), pool)
}

/// Blocked-parallel `C = A · Bᵀ` on an explicit pool.
pub fn matmul_nt_blocked(a: &Matrix, b: &Matrix, pool: &ThreadPool) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_nt: inner dims {} vs {}", a.cols(), b.cols());
    gemm_blocked(Orient::Nt, a, b, a.rows(), a.cols(), b.rows(), pool)
}

/// Blocked-parallel `C = Aᵀ · B` on an explicit pool.
pub fn matmul_tn_blocked(a: &Matrix, b: &Matrix, pool: &ThreadPool) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_tn: inner dims {} vs {}", a.rows(), b.rows());
    gemm_blocked(Orient::Tn, a, b, a.cols(), a.rows(), b.cols(), pool)
}

/// Shared pointer to C's buffer handed to tasks; tasks write disjoint row
/// ranges, so no two tasks alias.
#[derive(Clone, Copy)]
struct CPtr(*mut f32);
unsafe impl Send for CPtr {}
unsafe impl Sync for CPtr {}

impl CPtr {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the bare non-`Sync` pointer inside it.
    fn get(self) -> *mut f32 {
        self.0
    }
}

fn gemm_blocked(
    orient: Orient,
    a: &Matrix,
    b: &Matrix,
    m: usize,
    k: usize,
    n: usize,
    pool: &ThreadPool,
) -> Matrix {
    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    // B is packed ONCE, up front, and shared read-only by every task —
    // repacking it per row-block would add O(k·n) copies per task.
    let b_packed = PackedB::new(orient, b, k, n);
    let n_tasks = m.div_ceil(BLOCK_M);
    let c_ptr = CPtr(c.data_mut().as_mut_ptr());
    pool.parallel_for(n_tasks, &|t| {
        let i0 = t * BLOCK_M;
        let i1 = (i0 + BLOCK_M).min(m);
        // SAFETY: tasks receive disjoint row ranges of C (task t owns rows
        // [t·BLOCK_M, (t+1)·BLOCK_M)), and `parallel_for` completes before
        // `c` is touched again by this thread.
        let c_rows =
            unsafe { std::slice::from_raw_parts_mut(c_ptr.get().add(i0 * n), (i1 - i0) * n) };
        gemm_row_block(orient, a, &b_packed, c_rows, i0, i1 - i0, k, n);
    });
    c
}

/// Fixed-size slot for one `(k-tile, column-panel)` of packed B, so panel
/// addresses are computable without per-tile offset tables.
const B_SLOT: usize = BLOCK_K * NR;

/// All of logical B repacked into `NR`-column micro-panels, grouped by
/// k-tile: slot `(kc_idx, q)` holds `B[kc .. kc+kb, q·NR .. q·NR+NR]` as
/// `kb` rows of `NR` contiguous values (zero-padded at both remainders).
/// Padded lanes feed don't-care accumulator columns that are never stored.
struct PackedB {
    buf: Vec<f32>,
    n_panels: usize,
}

impl PackedB {
    fn new(orient: Orient, b: &Matrix, k: usize, n: usize) -> Self {
        let n_panels = n.div_ceil(NR);
        let k_tiles = k.div_ceil(BLOCK_K);
        // Pre-zeroed, each slot written once: padding needs no extra pass.
        let mut buf = vec![0.0f32; k_tiles * n_panels * B_SLOT];
        for (kc_idx, kc) in (0..k).step_by(BLOCK_K).enumerate() {
            let kb = (k - kc).min(BLOCK_K);
            for q in 0..n_panels {
                let slot = &mut buf[(kc_idx * n_panels + q) * B_SLOT..][..B_SLOT];
                let j = q * NR;
                let cols = (n - j).min(NR);
                match orient {
                    Orient::Nn | Orient::Tn => {
                        // Stored row-major [k, n]: copy a row stripe per kk.
                        for kk in 0..kb {
                            let src = &b.row(kc + kk)[j..j + cols];
                            slot[kk * NR..kk * NR + cols].copy_from_slice(src);
                        }
                    }
                    Orient::Nt => {
                        // Logical B = stored Bᵀ [n, k]: logical column j is
                        // storage row j — walk it contiguously, scatter with
                        // stride NR.
                        for (l, row) in (0..cols).map(|l| (l, b.row(j + l))) {
                            for (kk, &v) in row[kc..kc + kb].iter().enumerate() {
                                slot[kk * NR + l] = v;
                            }
                        }
                    }
                }
            }
        }
        Self { buf, n_panels }
    }

    fn panel(&self, kc_idx: usize, q: usize) -> &[f32] {
        &self.buf[(kc_idx * self.n_panels + q) * B_SLOT..][..B_SLOT]
    }
}

/// Computes rows `[i0, i0+mb)` of C. Per k-tile: repack the A row panel
/// (once — it is reused across every column panel), then sweep column panels
/// outer / row panels inner so each 8 KiB packed B panel stays L1-resident
/// while the L2-resident A panel streams past it. Serial per task;
/// parallelism lives one level up.
fn gemm_row_block(
    orient: Orient,
    a: &Matrix,
    b_packed: &PackedB,
    c_rows: &mut [f32],
    i0: usize,
    mb: usize,
    k: usize,
    n: usize,
) {
    let row_panels = mb.div_ceil(MR);
    let mut a_pack = vec![0.0f32; row_panels * MR * k.min(BLOCK_K)];
    for (kc_idx, kc) in (0..k).step_by(BLOCK_K).enumerate() {
        let kb = (k - kc).min(BLOCK_K);
        pack_a(orient, a, &mut a_pack, i0, mb, kc, kb);
        for q in 0..b_packed.n_panels {
            let cols = (n - q * NR).min(NR);
            let b_panel = b_packed.panel(kc_idx, q);
            for p in 0..row_panels {
                let rows = (mb - p * MR).min(MR);
                let a_panel = &a_pack[p * kb * MR..(p + 1) * kb * MR];
                micro_kernel(a_panel, b_panel, kb, c_rows, p * MR, q * NR, n, rows, cols);
            }
        }
    }
}

/// `MR×NR` register-tile update: `C[tile] += Apanel · Bpanel` over `kb`
/// depth steps. The full-tile case is split out with constant-size loads
/// and stores so LLVM promotes the whole accumulator array to vector
/// registers; the `l` loop vectorizes, the per-element k chain stays scalar
/// and in-order (the determinism contract).
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel(
    a_panel: &[f32],
    b_panel: &[f32],
    kb: usize,
    c_rows: &mut [f32],
    ci: usize,
    cj: usize,
    n: usize,
    rows: usize,
    cols: usize,
) {
    if rows == MR && cols == NR {
        micro_kernel_full(a_panel, b_panel, kb, c_rows, ci, cj, n);
    } else {
        micro_kernel_edge(a_panel, b_panel, kb, c_rows, ci, cj, n, rows, cols);
    }
}

/// Full-tile fast path. Every access to `acc` is a constant index (the
/// `MR`/`NR` loops fully unroll), so the array lives in registers; loading
/// the C tile first keeps each element's k-chain unbroken across k-tiles.
#[inline]
fn micro_kernel_full(
    a_panel: &[f32],
    b_panel: &[f32],
    kb: usize,
    c_rows: &mut [f32],
    ci: usize,
    cj: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, acc_row) in acc.iter_mut().enumerate() {
        let src: &[f32; NR] = c_rows[(ci + r) * n + cj..][..NR].try_into().unwrap();
        *acc_row = *src;
    }
    for (av, bv) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)).take(kb) {
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let ar = av[r];
            for (x, &bl) in acc_row.iter_mut().zip(bv) {
                *x += ar * bl;
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        let dst: &mut [f32; NR] = (&mut c_rows[(ci + r) * n + cj..][..NR]).try_into().unwrap();
        *dst = *acc_row;
    }
}

/// Remainder tiles at the right/bottom edges: same arithmetic, but loads
/// and stores clip to the valid `rows × cols` region (padded accumulator
/// lanes are computed and discarded). Not speed-critical.
#[allow(clippy::too_many_arguments)]
fn micro_kernel_edge(
    a_panel: &[f32],
    b_panel: &[f32],
    kb: usize,
    c_rows: &mut [f32],
    ci: usize,
    cj: usize,
    n: usize,
    rows: usize,
    cols: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for r in 0..rows {
        let c_row = &c_rows[(ci + r) * n + cj..(ci + r) * n + cj + cols];
        acc[r][..cols].copy_from_slice(c_row);
    }
    for (av, bv) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)).take(kb) {
        for r in 0..MR {
            let ar = av[r];
            for l in 0..NR {
                acc[r][l] += ar * bv[l];
            }
        }
    }
    for r in 0..rows {
        let c_row = &mut c_rows[(ci + r) * n + cj..(ci + r) * n + cj + cols];
        c_row.copy_from_slice(&acc[r][..cols]);
    }
}

/// Packs logical-A rows `[i0, i0+mb) × [kc, kc+kb)` into `MR`-row panels:
/// `buf[(panel·kb + kk)·MR + r]`, zero-padding the row remainder (padded
/// rows are computed into don't-care accumulator lanes and never stored).
fn pack_a(orient: Orient, a: &Matrix, buf: &mut [f32], i0: usize, mb: usize, kc: usize, kb: usize) {
    let panels = mb.div_ceil(MR);
    match orient {
        Orient::Nn | Orient::Nt => {
            // Logical A is the stored matrix: copy row slices, stride MR out.
            for p in 0..panels {
                let panel = &mut buf[p * kb * MR..(p + 1) * kb * MR];
                let rows = (mb - p * MR).min(MR);
                for r in 0..MR {
                    if r < rows {
                        let a_row = &a.row(i0 + p * MR + r)[kc..kc + kb];
                        for (kk, &v) in a_row.iter().enumerate() {
                            panel[kk * MR + r] = v;
                        }
                    } else {
                        for kk in 0..kb {
                            panel[kk * MR + r] = 0.0;
                        }
                    }
                }
            }
        }
        Orient::Tn => {
            // Logical A = stored Aᵀ: row kk of storage holds the panel's
            // r-contiguous values, so each copy is a contiguous quad.
            for p in 0..panels {
                let panel = &mut buf[p * kb * MR..(p + 1) * kb * MR];
                let rows = (mb - p * MR).min(MR);
                for kk in 0..kb {
                    let src = &a.row(kc + kk)[i0 + p * MR..i0 + p * MR + rows];
                    let dst = &mut panel[kk * MR..kk * MR + MR];
                    dst[..rows].copy_from_slice(src);
                    dst[rows..].fill(0.0);
                }
            }
        }
    }
}

/// Flop count of a `[m,k] x [k,n]` multiply-accumulate product. All three
/// orientations above perform exactly this much work; the shadow backend
/// charges the same number so dense and shadow runs agree on metering.
pub fn matmul_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    fn reference(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a[(i, k)] * b[(k, j)];
                }
                c[(i, j)] = acc;
            }
        }
        c
    }

    #[test]
    fn matmul_matches_reference() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let a = Matrix::random_uniform(7, 5, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(5, 9, -1.0, 1.0, &mut rng);
        crate::assert_slices_close(matmul(&a, &b).data(), reference(&a, &b).data(), 1e-5);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let a = Matrix::random_uniform(4, 4, -1.0, 1.0, &mut rng);
        assert_eq!(matmul(&a, &Matrix::eye(4)), a);
        assert_eq!(matmul(&Matrix::eye(4), &a), a);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let a = Matrix::random_uniform(6, 4, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(8, 4, -1.0, 1.0, &mut rng);
        crate::assert_slices_close(
            matmul_nt(&a, &b).data(),
            matmul(&a, &b.transpose()).data(),
            1e-5,
        );
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let a = Matrix::random_uniform(4, 6, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(4, 8, -1.0, 1.0, &mut rng);
        crate::assert_slices_close(
            matmul_tn(&a, &b).data(),
            matmul(&a.transpose(), &b).data(),
            1e-5,
        );
    }

    #[test]
    fn associativity_within_tolerance() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let a = Matrix::random_uniform(5, 6, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(6, 7, -1.0, 1.0, &mut rng);
        let c = Matrix::random_uniform(7, 3, -1.0, 1.0, &mut rng);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        crate::assert_slices_close(left.data(), right.data(), 1e-4);
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(matmul_flops(2, 3, 4), 48.0);
    }

    #[test]
    #[should_panic(expected = "matmul: inner dims")]
    fn mismatched_dims_panic() {
        matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }

    /// Regression for the removed zero-skip branch: `0 · NaN` must reach C
    /// as NaN (IEEE 754), in every orientation and on both kernel paths.
    #[test]
    fn zero_times_nan_propagates() {
        let mut a = Matrix::zeros(2, 3); // A is all zeros, incl. the NaN row
        a[(1, 1)] = 1.0;
        let mut b = Matrix::full(3, 2, 1.0);
        b[(0, 0)] = f32::NAN; // multiplied only by A's zeros
        let c = matmul_serial(&a, &b);
        assert!(c[(0, 0)].is_nan(), "0 * NaN must propagate into C");
        assert!(c[(1, 0)].is_nan());
        assert!(!c[(0, 1)].is_nan());
        let pool = ThreadPool::new(2);
        let cb = matmul_blocked(&a, &b, &pool);
        assert_eq!(
            c.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            cb.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        // Aᵀ·B with a zero in Aᵀ against a NaN in B.
        let mut at = Matrix::zeros(3, 2);
        at[(2, 0)] = 2.0;
        let ct = matmul_tn_serial(&at, &b);
        assert!(ct[(0, 0)].is_nan());
        // A·Bᵀ: NaN in B's column hit by a zero of A.
        let mut bt = Matrix::full(2, 3, 1.0);
        bt[(0, 0)] = f32::NAN;
        let cn = matmul_nt_serial(&a, &bt);
        assert!(cn[(0, 0)].is_nan());
    }

    /// The dispatcher's two paths must agree bit-for-bit, so dispatch can
    /// never change results.
    #[test]
    fn serial_and_blocked_agree_bitwise_at_the_threshold() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        let pool = ThreadPool::new(3);
        let a = Matrix::random_uniform(64, 64, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(64, 64, -1.0, 1.0, &mut rng);
        assert_eq!(matmul_serial(&a, &b), matmul_blocked(&a, &b, &pool));
        assert_eq!(matmul_nt_serial(&a, &b), matmul_nt_blocked(&a, &b, &pool));
        assert_eq!(matmul_tn_serial(&a, &b), matmul_tn_blocked(&a, &b, &pool));
    }

    #[test]
    fn planned_path_thresholds() {
        assert_eq!(planned_path(4, 4, 4), KernelPath::Serial);
        assert_eq!(planned_path(64, 64, 64), KernelPath::BlockedParallel);
        // Degenerate outputs stay serial no matter how much work k adds.
        assert_eq!(planned_path(1, 1 << 20, 1), KernelPath::Serial);
        assert_eq!(planned_path(usize::MAX, 2, usize::MAX), KernelPath::BlockedParallel);
    }

    #[test]
    fn empty_dims_yield_zero_matrices() {
        let pool = ThreadPool::new(2);
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 5);
        let c = matmul_blocked(&a, &b, &pool);
        assert_eq!(c.shape(), (3, 5));
        assert!(c.data().iter().all(|&v| v == 0.0));
    }
}
