//! Matrix-multiplication kernels.
//!
//! Three orientations are needed by the distributed algorithms (the paper's
//! §3.1 defines Tesseract variants for `C = A·B`, `C = A·Bᵀ`, `C = Aᵀ·B`;
//! the latter two implement the backward rules `A' = C'·Bᵀ`, `B' = Aᵀ·C'`).
//! The inner loops are written in ikj / dot-product order so that LLVM can
//! vectorize them on contiguous rows.

use crate::matrix::Matrix;

/// `C = A · B`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dims {} vs {}", a.cols(), b.rows());
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for (kk, &a_ik) in a_row.iter().enumerate().take(k) {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = b.row(kk);
            for (c_ij, &b_kj) in c_row.iter_mut().zip(b_row.iter()) {
                *c_ij += a_ik * b_kj;
            }
        }
    }
    c
}

/// `C = A · Bᵀ` without materializing the transpose.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_nt: inner dims {} vs {}", a.cols(), b.cols());
    let m = a.rows();
    let n = b.rows();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for j in 0..n {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            c_row[j] = acc;
        }
    }
    c
}

/// `C = Aᵀ · B` without materializing the transpose.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_tn: inner dims {} vs {}", a.rows(), b.rows());
    let m = a.cols();
    let n = b.cols();
    let k = a.rows();
    let mut c = Matrix::zeros(m, n);
    for kk in 0..k {
        let a_row = a.row(kk);
        let b_row = b.row(kk);
        for (i, &a_ki) in a_row.iter().enumerate().take(m) {
            if a_ki == 0.0 {
                continue;
            }
            let c_row = c.row_mut(i);
            for (c_ij, &b_kj) in c_row.iter_mut().zip(b_row.iter()) {
                *c_ij += a_ki * b_kj;
            }
        }
    }
    c
}

/// Flop count of a `[m,k] x [k,n]` multiply-accumulate product. All three
/// orientations above perform exactly this much work; the shadow backend
/// charges the same number so dense and shadow runs agree on metering.
pub fn matmul_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    fn reference(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a[(i, k)] * b[(k, j)];
                }
                c[(i, j)] = acc;
            }
        }
        c
    }

    #[test]
    fn matmul_matches_reference() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let a = Matrix::random_uniform(7, 5, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(5, 9, -1.0, 1.0, &mut rng);
        crate::assert_slices_close(matmul(&a, &b).data(), reference(&a, &b).data(), 1e-5);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let a = Matrix::random_uniform(4, 4, -1.0, 1.0, &mut rng);
        assert_eq!(matmul(&a, &Matrix::eye(4)), a);
        assert_eq!(matmul(&Matrix::eye(4), &a), a);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let a = Matrix::random_uniform(6, 4, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(8, 4, -1.0, 1.0, &mut rng);
        crate::assert_slices_close(
            matmul_nt(&a, &b).data(),
            matmul(&a, &b.transpose()).data(),
            1e-5,
        );
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let a = Matrix::random_uniform(4, 6, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(4, 8, -1.0, 1.0, &mut rng);
        crate::assert_slices_close(
            matmul_tn(&a, &b).data(),
            matmul(&a.transpose(), &b).data(),
            1e-5,
        );
    }

    #[test]
    fn associativity_within_tolerance() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let a = Matrix::random_uniform(5, 6, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(6, 7, -1.0, 1.0, &mut rng);
        let c = Matrix::random_uniform(7, 3, -1.0, 1.0, &mut rng);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        crate::assert_slices_close(left.data(), right.data(), 1e-4);
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(matmul_flops(2, 3, 4), 48.0);
    }

    #[test]
    #[should_panic(expected = "matmul: inner dims")]
    fn mismatched_dims_panic() {
        matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }
}
