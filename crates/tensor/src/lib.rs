//! # tesseract-tensor
//!
//! Dense tensor substrate for the Tesseract reproduction.
//!
//! This crate provides everything the distributed layers need from a tensor
//! library, with **two interchangeable backends** behind the [`TensorLike`]
//! trait:
//!
//! * [`DenseTensor`] — real `f32` math backed by [`Matrix`]. Used by every
//!   correctness test and by the Figure-7 training experiments.
//! * [`ShadowTensor`] — shape-and-flops only. Used to push the *paper-scale*
//!   Table 1 / Table 2 configurations through the very same layer and
//!   collective code without doing terabytes of arithmetic on one CPU core:
//!   every op validates shapes and charges the [`Meter`] with the exact flop
//!   and byte counts the dense op would have incurred.
//!
//! The crate also contains the numerical kernels themselves ([`matmul`]),
//! neural-network primitives ([`nn`]), a deterministic in-tree PRNG
//! ([`rng`]) and Xavier initialization ([`init`]).

pub mod init;
pub mod matmul;
pub mod matrix;
pub mod meter;
pub mod nn;
pub mod pool;
pub mod rng;
pub mod tensor;
pub mod trace;

pub use matmul::{KernelPath, MicroKernel};
pub use matrix::Matrix;
pub use meter::{Meter, MeterScope};
pub use pool::ThreadPool;
pub use rng::Xoshiro256StarStar;
pub use tensor::{DenseTensor, ShadowTensor, TensorLike};
pub use trace::{TraceEvent, TraceKind};

/// Size in bytes of one stored element. The cluster cost model multiplies
/// message element counts by this to obtain wire bytes; keeping it here makes
/// the (single) precision assumption explicit and auditable.
pub const ELEM_BYTES: usize = core::mem::size_of::<f32>();

/// Relative tolerance used by the equality helpers in tests.
pub fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let denom = a.abs().max(b.abs()).max(1.0);
    diff / denom <= tol
}

/// Asserts two slices are elementwise approximately equal; panics with the
/// first offending index. Intended for tests and verification binaries.
pub fn assert_slices_close(a: &[f32], b: &[f32], tol: f32) {
    assert_eq!(a.len(), b.len(), "length mismatch: {} vs {}", a.len(), b.len());
    for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(approx_eq(x, y, tol), "mismatch at index {i}: {x} vs {y} (tol {tol})");
    }
}

/// Maximum relative elementwise difference between two slices.
pub fn max_rel_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let denom = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() / denom
        })
        .fold(0.0, f32::max)
}
