//! Property-based tests (proptest) for the tensor substrate: algebraic
//! identities of the kernels and structural invariants of the matrix type.

// Gated behind the `proptest-tests` feature: run with
//     cargo test -p <crate> --features proptest-tests
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use tesseract_tensor::matmul::{matmul, matmul_nt, matmul_tn};
use tesseract_tensor::nn;
use tesseract_tensor::{approx_eq, max_rel_diff, Matrix, Xoshiro256StarStar};

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..8, 1usize..8, 1usize..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_left_distributive((m, k, n) in dims(), seed in 0u64..1000) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let a = Matrix::random_uniform(m, k, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(k, n, -1.0, 1.0, &mut rng);
        let c = Matrix::random_uniform(k, n, -1.0, 1.0, &mut rng);
        let mut b_plus_c = b.clone();
        b_plus_c.add_assign(&c);
        let lhs = matmul(&a, &b_plus_c);
        let mut rhs = matmul(&a, &b);
        rhs.add_assign(&matmul(&a, &c));
        prop_assert!(max_rel_diff(lhs.data(), rhs.data()) < 1e-4);
    }

    #[test]
    fn transpose_reverses_products((m, k, n) in dims(), seed in 0u64..1000) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let a = Matrix::random_uniform(m, k, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(k, n, -1.0, 1.0, &mut rng);
        // (AB)ᵀ = Bᵀ Aᵀ
        let lhs = matmul(&a, &b).transpose();
        let rhs = matmul(&b.transpose(), &a.transpose());
        prop_assert!(max_rel_diff(lhs.data(), rhs.data()) < 1e-4);
    }

    #[test]
    fn nt_and_tn_agree_with_explicit_transposes((m, k, n) in dims(), seed in 0u64..1000) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let a = Matrix::random_uniform(m, k, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(n, k, -1.0, 1.0, &mut rng);
        prop_assert!(max_rel_diff(
            matmul_nt(&a, &b).data(),
            matmul(&a, &b.transpose()).data()
        ) < 1e-4);
        let c = Matrix::random_uniform(m, n, -1.0, 1.0, &mut rng);
        prop_assert!(max_rel_diff(
            matmul_tn(&a, &c).data(),
            matmul(&a.transpose(), &c).data()
        ) < 1e-4);
    }

    #[test]
    fn softmax_rows_are_distributions(m in matrix_strategy(4, 6)) {
        let y = nn::softmax_rows(&m);
        for i in 0..y.rows() {
            let sum: f32 = y.row(i).iter().sum();
            prop_assert!(approx_eq(sum, 1.0, 1e-4));
            prop_assert!(y.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn layernorm_output_is_normalized(m in matrix_strategy(3, 16)) {
        let cache = nn::layernorm_rows(&m, 1e-5);
        for i in 0..cache.y.rows() {
            let row = cache.y.row(i);
            let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
            prop_assert!(mean.abs() < 1e-3, "row {i} mean {mean}");
        }
    }

    #[test]
    fn slice_concat_rows_round_trip(m in matrix_strategy(6, 4), split in 1usize..5) {
        let top = m.slice_rows(0, split);
        let bottom = m.slice_rows(split, 6);
        prop_assert_eq!(Matrix::concat_rows(&[top, bottom]), m);
    }

    #[test]
    fn slice_concat_cols_round_trip(m in matrix_strategy(4, 6), split in 1usize..5) {
        let left = m.slice_cols(0, split);
        let right = m.slice_cols(split, 6);
        prop_assert_eq!(Matrix::concat_cols(&[left, right]), m);
    }

    #[test]
    fn block_tiling_reconstructs(m in matrix_strategy(6, 6), br in 1usize..4, bc in 1usize..4) {
        // Tile with (possibly ragged) blocks and reassemble.
        let mut rebuilt = Matrix::zeros(6, 6);
        let mut r = 0;
        while r < 6 {
            let nr = br.min(6 - r);
            let mut c = 0;
            while c < 6 {
                let nc = bc.min(6 - c);
                rebuilt.set_block(r, c, &m.block(r, c, nr, nc));
                c += nc;
            }
            r += nr;
        }
        prop_assert_eq!(rebuilt, m);
    }

    #[test]
    fn rng_uniform_respects_bounds(seed in 0u64..10_000, lo in -5.0f32..0.0, width in 0.1f32..10.0) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let hi = lo + width;
        for _ in 0..100 {
            let x = rng.uniform(lo, hi);
            prop_assert!(x >= lo && x < hi);
        }
    }

    #[test]
    fn gelu_is_monotone_on_positive_axis(a in 0.0f32..5.0, delta in 0.001f32..5.0) {
        prop_assert!(nn::gelu(a + delta) >= nn::gelu(a));
    }

    #[test]
    fn cross_entropy_is_nonnegative(seed in 0u64..1000, label in 0usize..4) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let logits = Matrix::random_uniform(1, 4, -3.0, 3.0, &mut rng);
        let (loss, grad) = nn::softmax_cross_entropy(&logits, &[label]);
        prop_assert!(loss >= 0.0);
        // Gradient rows sum to ~0 (softmax minus one-hot).
        let s: f32 = grad.row(0).iter().sum();
        prop_assert!(s.abs() < 1e-5);
    }
}

// ---------------------------------------------------------------------------
// Forced-kernel-path properties (per-path parity contract, DESIGN.md §5)
// ---------------------------------------------------------------------------

use tesseract_tensor::matmul::{
    matmul_blocked_with, matmul_nt_blocked_with, matmul_nt_serial, matmul_serial,
    matmul_tn_blocked_with, matmul_tn_serial,
};
use tesseract_tensor::{MicroKernel, ThreadPool};

/// Shapes spanning both backends' remainder edges: m and n range from
/// strictly below one scalar tile (4×8) through several AVX2 tiles (6×16),
/// k crosses nothing-divides-anything territory.
fn kernel_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..40, 1usize..96, 1usize..40)
}

fn forced_kernels() -> Vec<MicroKernel> {
    let mut kernels = vec![MicroKernel::Scalar];
    if MicroKernel::Avx2.supported() {
        kernels.push(MicroKernel::Avx2);
    }
    kernels
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scalar and AVX2 backends agree within FMA rounding tolerance on
    /// random shapes, including micro-tile remainder edges, in all three
    /// orientations.
    #[test]
    fn forced_paths_agree_within_tolerance((m, k, n) in kernel_dims(), seed in 0u64..1000) {
        if MicroKernel::Avx2.supported() {
            let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
            let a = Matrix::random_uniform(m, k, -2.0, 2.0, &mut rng);
            let b = Matrix::random_uniform(k, n, -2.0, 2.0, &mut rng);
            let bt = Matrix::random_uniform(n, k, -2.0, 2.0, &mut rng);
            let at = Matrix::random_uniform(k, m, -2.0, 2.0, &mut rng);
            let pool = ThreadPool::new(2);
            let (s, v) = (MicroKernel::Scalar, MicroKernel::Avx2);
            prop_assert!(max_rel_diff(
                matmul_blocked_with(&a, &b, &pool, s).data(),
                matmul_blocked_with(&a, &b, &pool, v).data(),
            ) < 1e-4);
            prop_assert!(max_rel_diff(
                matmul_nt_blocked_with(&a, &bt, &pool, s).data(),
                matmul_nt_blocked_with(&a, &bt, &pool, v).data(),
            ) < 1e-4);
            prop_assert!(max_rel_diff(
                matmul_tn_blocked_with(&at, &b, &pool, s).data(),
                matmul_tn_blocked_with(&at, &b, &pool, v).data(),
            ) < 1e-4);
        }
    }

    /// Within a fixed backend, the blocked kernel is bitwise identical at
    /// 1/2/4 threads — and the scalar backend is additionally bitwise
    /// identical to the serial triple loop.
    #[test]
    fn each_path_is_bitwise_thread_invariant((m, k, n) in kernel_dims(), seed in 0u64..1000) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let a = Matrix::random_uniform(m, k, -2.0, 2.0, &mut rng);
        let b = Matrix::random_uniform(k, n, -2.0, 2.0, &mut rng);
        let bt = Matrix::random_uniform(n, k, -2.0, 2.0, &mut rng);
        let at = Matrix::random_uniform(k, m, -2.0, 2.0, &mut rng);
        for kernel in forced_kernels() {
            let single = ThreadPool::new(1);
            let nn1 = matmul_blocked_with(&a, &b, &single, kernel);
            let nt1 = matmul_nt_blocked_with(&a, &bt, &single, kernel);
            let tn1 = matmul_tn_blocked_with(&at, &b, &single, kernel);
            if kernel == MicroKernel::Scalar {
                prop_assert_eq!(&nn1, &matmul_serial(&a, &b));
                prop_assert_eq!(&nt1, &matmul_nt_serial(&a, &bt));
                prop_assert_eq!(&tn1, &matmul_tn_serial(&at, &b));
            }
            for threads in [2usize, 4] {
                let pool = ThreadPool::new(threads);
                prop_assert_eq!(&nn1, &matmul_blocked_with(&a, &b, &pool, kernel));
                prop_assert_eq!(&nt1, &matmul_nt_blocked_with(&a, &bt, &pool, kernel));
                prop_assert_eq!(&tn1, &matmul_tn_blocked_with(&at, &b, &pool, kernel));
            }
        }
    }
}
