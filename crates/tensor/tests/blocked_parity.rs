//! Per-kernel-path parity of the blocked (and blocked-parallel) GEMM
//! kernels, and determinism across thread counts.
//!
//! The contract under test (DESIGN.md §5), per micro-kernel backend:
//!
//! * **Scalar path**: for every orientation and every shape,
//!   `*_blocked_with(.., MicroKernel::Scalar)` produces **bitwise
//!   identical** output to `*_serial`, regardless of how many threads the
//!   pool has — both accumulate each output element along the same
//!   ascending-k mul+add chain.
//! * **AVX2 path**: `*_blocked_with(.., MicroKernel::Avx2)` is **bitwise
//!   identical to itself** at any thread count (which micro-tile computes
//!   an element depends only on shape and tile constants), and agrees with
//!   the scalar path within floating-point tolerance — FMA fuses `a·b + c`
//!   into one rounding, so the two backends' chains round differently.
//!
//! Blocking and parallelism only change iteration *grouping*, never a
//! backend's per-element floating-point evaluation order.

use tesseract_tensor::matmul::{
    matmul_blocked_with, matmul_nt_blocked_with, matmul_nt_serial, matmul_serial,
    matmul_tn_blocked_with, matmul_tn_serial, BLOCK_K, BLOCK_M, BLOCK_N,
};
use tesseract_tensor::{max_rel_diff, Matrix, MicroKernel, ThreadPool, Xoshiro256StarStar};

/// Backends to run the forced-path matrix over: scalar always, AVX2 when
/// the host supports it (forcing an unsupported backend panics by design).
fn testable_kernels() -> Vec<MicroKernel> {
    let mut kernels = vec![MicroKernel::Scalar];
    if MicroKernel::Avx2.supported() {
        kernels.push(MicroKernel::Avx2);
    }
    kernels
}

/// Deterministic test matrix with non-trivial mantissas (so reassociated
/// summation would actually change bits) and mixed signs/magnitudes.
fn gen(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Matrix::random_uniform(rows, cols, -2.5, 2.5, &mut rng)
}

fn assert_bitwise_eq(label: &str, reference: &Matrix, candidate: &Matrix) {
    assert_eq!(reference.shape(), candidate.shape(), "{label}: shape mismatch");
    for (i, (r, c)) in reference.data().iter().zip(candidate.data()).enumerate() {
        assert_eq!(r.to_bits(), c.to_bits(), "{label}: bit mismatch at flat index {i}: {r} vs {c}");
    }
}

/// Checks all three orientations at one `(m, k, n)`: the scalar backend
/// bitwise against the serial triple loops on the given pool, and every
/// other supported backend bitwise against its own 1-thread result plus
/// within tolerance of scalar. Operand shapes are arranged so the *logical*
/// product is m×k · k×n in every orientation (nt stores B as n×k, tn stores
/// A as k×m).
fn check_shape(m: usize, k: usize, n: usize, pool: &ThreadPool, label: &str) {
    let single = ThreadPool::new(1);
    let a = gen(m, k, 1);
    let b = gen(k, n, 2);
    let bt = gen(n, k, 3);
    let at = gen(k, m, 4);
    let serial = (matmul_serial(&a, &b), matmul_nt_serial(&a, &bt), matmul_tn_serial(&at, &b));

    for kernel in testable_kernels() {
        let kn = kernel.name();
        let nn = matmul_blocked_with(&a, &b, pool, kernel);
        let nt = matmul_nt_blocked_with(&a, &bt, pool, kernel);
        let tn = matmul_tn_blocked_with(&at, &b, pool, kernel);
        match kernel {
            // Scalar: bitwise against the serial reference.
            MicroKernel::Scalar => {
                assert_bitwise_eq(&format!("{label} {kn} nn {m}x{k}x{n}"), &serial.0, &nn);
                assert_bitwise_eq(&format!("{label} {kn} nt {m}x{k}x{n}"), &serial.1, &nt);
                assert_bitwise_eq(&format!("{label} {kn} tn {m}x{k}x{n}"), &serial.2, &tn);
            }
            // SIMD: bitwise against itself serially, tolerant vs scalar.
            MicroKernel::Avx2 => {
                assert_bitwise_eq(
                    &format!("{label} {kn} nn {m}x{k}x{n} vs 1 thread"),
                    &matmul_blocked_with(&a, &b, &single, kernel),
                    &nn,
                );
                assert_bitwise_eq(
                    &format!("{label} {kn} nt {m}x{k}x{n} vs 1 thread"),
                    &matmul_nt_blocked_with(&a, &bt, &single, kernel),
                    &nt,
                );
                assert_bitwise_eq(
                    &format!("{label} {kn} tn {m}x{k}x{n} vs 1 thread"),
                    &matmul_tn_blocked_with(&at, &b, &single, kernel),
                    &tn,
                );
                for (orient, reference, candidate) in
                    [("nn", &serial.0, &nn), ("nt", &serial.1, &nt), ("tn", &serial.2, &tn)]
                {
                    let diff = max_rel_diff(reference.data(), candidate.data());
                    assert!(
                        diff < 1e-4,
                        "{label} {kn} {orient} {m}x{k}x{n}: beyond FMA tolerance ({diff:e})"
                    );
                }
            }
        }
    }
}

/// Shapes chosen to hit every remainder path in the packing and both
/// micro-kernel tile sets: degenerate dims, sizes just off the scalar
/// (MR=4, NR=8) and AVX2 (MR=6, NR=16) register tiles — including
/// m,n strictly below one tile — sizes straddling the cache-block
/// boundaries, and extreme aspect ratios.
fn adversarial_shapes() -> Vec<(usize, usize, usize)> {
    vec![
        (1, 1, 1),
        (1, 17, 1),
        (2, 3, 5),
        (3, 1, 9),   // k=1: single multiply, no accumulation chain
        (4, 8, 8),   // exactly one scalar register tile
        (5, 9, 11),  // one past the scalar tile in every dim
        (6, 16, 16), // exactly one AVX2 register tile
        (7, 17, 17), // one past the AVX2 tile in every dim
        (5, 20, 15), // below one AVX2 tile in m and n, above scalar's
        (7, 13, 23), // primes: nothing divides anything
        (BLOCK_M + 1, BLOCK_K + 2, BLOCK_N + 3),
        (65, 130, 97),
        (BLOCK_M, 7, BLOCK_N), // thin k: packing dominated by remainders
        (1, 300, 500),         // single-row C
        (500, 300, 1),         // single-column C
        (3, 1024, 4),          // tall accumulation, tiny output
        (190, 5, 6),           // tall-skinny A
        (6, 5, 190),           // short-wide B
    ]
}

#[test]
fn blocked_matches_reference_per_path_on_adversarial_shapes() {
    let pool = ThreadPool::new(4);
    for (m, k, n) in adversarial_shapes() {
        check_shape(m, k, n, &pool, "adversarial");
    }
}

#[test]
fn every_path_is_bitwise_deterministic_across_thread_counts() {
    // Big enough for several row-block tasks (m > 2 * BLOCK_M) with remainder,
    // so different thread counts genuinely interleave differently.
    let (m, k, n) = (2 * BLOCK_M + 37, 75, 61);
    let a = gen(m, k, 10);
    let b = gen(k, n, 11);
    let bt = gen(n, k, 12);
    let at = gen(k, m, 13);

    for kernel in testable_kernels() {
        let single = ThreadPool::new(1);
        let reference = (
            matmul_blocked_with(&a, &b, &single, kernel),
            matmul_nt_blocked_with(&a, &bt, &single, kernel),
            matmul_tn_blocked_with(&at, &b, &single, kernel),
        );
        if kernel == MicroKernel::Scalar {
            // The scalar backend's 1-thread result is itself pinned to the
            // serial triple loop, anchoring the whole matrix of checks.
            assert_bitwise_eq("scalar anchor nn", &matmul_serial(&a, &b), &reference.0);
            assert_bitwise_eq("scalar anchor nt", &matmul_nt_serial(&a, &bt), &reference.1);
            assert_bitwise_eq("scalar anchor tn", &matmul_tn_serial(&at, &b), &reference.2);
        }
        for threads in [1, 2, 4, 7, 16] {
            let pool = ThreadPool::new(threads);
            let label = format!("{} threads={threads}", kernel.name());
            assert_bitwise_eq(
                &format!("{label} nn"),
                &reference.0,
                &matmul_blocked_with(&a, &b, &pool, kernel),
            );
            assert_bitwise_eq(
                &format!("{label} nt"),
                &reference.1,
                &matmul_nt_blocked_with(&a, &bt, &pool, kernel),
            );
            assert_bitwise_eq(
                &format!("{label} tn"),
                &reference.2,
                &matmul_tn_blocked_with(&at, &b, &pool, kernel),
            );
        }
    }
}

#[test]
fn blocked_matches_serial_with_special_values() {
    // NaN/inf placed mid-matrix must flow through packing (including the
    // zero-padded lanes) without contaminating neighbouring outputs, on
    // every backend.
    let m = 9;
    let k = 21;
    let n = 13;
    let mut a = gen(m, k, 20);
    let mut b = gen(k, n, 21);
    a.data_mut()[k + 3] = f32::NAN;
    a.data_mut()[2 * k + 5] = f32::INFINITY;
    b.data_mut()[4 * n + 2] = f32::NEG_INFINITY;
    b.data_mut()[7 * n + 9] = 0.0;

    let pool = ThreadPool::new(3);
    let serial = matmul_serial(&a, &b);
    // Sanity: the NaN actually reached the output somewhere.
    assert!(serial.data().iter().any(|v| v.is_nan()));
    assert_bitwise_eq(
        "special-values scalar nn",
        &serial,
        &matmul_blocked_with(&a, &b, &pool, MicroKernel::Scalar),
    );
    if MicroKernel::Avx2.supported() {
        let avx2 = matmul_blocked_with(&a, &b, &pool, MicroKernel::Avx2);
        // Special values classify identically even where rounding differs.
        for (i, (s, v)) in serial.data().iter().zip(avx2.data()).enumerate() {
            assert_eq!(s.is_nan(), v.is_nan(), "NaN placement diverged at {i}");
            assert_eq!(
                s.is_infinite() && !s.is_nan(),
                v.is_infinite() && !v.is_nan(),
                "infinity placement diverged at {i}"
            );
        }
    }
}

#[test]
fn public_entry_points_match_the_active_kernel_above_the_dispatch_threshold() {
    // 96^3 is above BLOCKED_MIN_ELEMS, so the public fns take the blocked
    // path through the global pool on the process-wide backend — results
    // must be bitwise identical to that backend run serially (and hence,
    // when the backend is scalar, to the serial triple loop).
    let s = 96;
    let a = gen(s, s, 30);
    let b = gen(s, s, 31);
    let bt = gen(s, s, 32);
    let kernel = tesseract_tensor::matmul::active_kernel();
    let single = ThreadPool::new(1);
    assert_bitwise_eq(
        "public nn",
        &matmul_blocked_with(&a, &b, &single, kernel),
        &tesseract_tensor::matmul::matmul(&a, &b),
    );
    assert_bitwise_eq(
        "public nt",
        &matmul_nt_blocked_with(&a, &bt, &single, kernel),
        &tesseract_tensor::matmul::matmul_nt(&a, &bt),
    );
    assert_bitwise_eq(
        "public tn",
        &matmul_tn_blocked_with(&a, &b, &single, kernel),
        &tesseract_tensor::matmul::matmul_tn(&a, &b),
    );
}
