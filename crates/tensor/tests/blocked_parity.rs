//! Bitwise parity of the blocked (and blocked-parallel) GEMM kernels against
//! the serial reference, and determinism across thread counts.
//!
//! The contract under test (DESIGN.md §5): for every orientation and every
//! shape, `*_blocked` produces **bitwise identical** output to `*_serial`,
//! regardless of how many threads the pool has. This holds because both
//! kernels accumulate each output element along the same ascending-k chain;
//! blocking and parallelism only change iteration *grouping*, never the
//! per-element floating-point evaluation order.

use tesseract_tensor::matmul::{
    matmul_blocked, matmul_nt_blocked, matmul_nt_serial, matmul_serial, matmul_tn_blocked,
    matmul_tn_serial, BLOCK_K, BLOCK_M, BLOCK_N,
};
use tesseract_tensor::{Matrix, ThreadPool, Xoshiro256StarStar};

/// Deterministic test matrix with non-trivial mantissas (so reassociated
/// summation would actually change bits) and mixed signs/magnitudes.
fn gen(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Matrix::random_uniform(rows, cols, -2.5, 2.5, &mut rng)
}

fn assert_bitwise_eq(label: &str, reference: &Matrix, candidate: &Matrix) {
    assert_eq!(reference.shape(), candidate.shape(), "{label}: shape mismatch");
    for (i, (r, c)) in reference.data().iter().zip(candidate.data()).enumerate() {
        assert_eq!(r.to_bits(), c.to_bits(), "{label}: bit mismatch at flat index {i}: {r} vs {c}");
    }
}

/// Checks all three orientations at one `(m, k, n)` against the given pool.
/// Operand shapes are arranged so the *logical* product is m×k · k×n in every
/// orientation (nt stores B as n×k, tn stores A as k×m).
fn check_shape(m: usize, k: usize, n: usize, pool: &ThreadPool, label: &str) {
    let a = gen(m, k, 1);
    let b = gen(k, n, 2);
    assert_bitwise_eq(
        &format!("{label} nn {m}x{k}x{n}"),
        &matmul_serial(&a, &b),
        &matmul_blocked(&a, &b, pool),
    );

    let bt = gen(n, k, 3);
    assert_bitwise_eq(
        &format!("{label} nt {m}x{k}x{n}"),
        &matmul_nt_serial(&a, &bt),
        &matmul_nt_blocked(&a, &bt, pool),
    );

    let at = gen(k, m, 4);
    assert_bitwise_eq(
        &format!("{label} tn {m}x{k}x{n}"),
        &matmul_tn_serial(&at, &b),
        &matmul_tn_blocked(&at, &b, pool),
    );
}

/// Shapes chosen to hit every remainder path in the packing and micro-kernel:
/// degenerate dims, sizes just off the register tile (MR=4, NR=8), sizes
/// straddling the cache-block boundaries, and extreme aspect ratios.
fn adversarial_shapes() -> Vec<(usize, usize, usize)> {
    vec![
        (1, 1, 1),
        (1, 17, 1),
        (2, 3, 5),
        (3, 1, 9),   // k=1: single multiply, no accumulation chain
        (4, 8, 8),   // exactly one register tile
        (5, 9, 11),  // one past the register tile in every dim
        (7, 13, 23), // primes: nothing divides anything
        (BLOCK_M + 1, BLOCK_K + 2, BLOCK_N + 3),
        (65, 130, 97),
        (BLOCK_M, 7, BLOCK_N), // thin k: packing dominated by remainders
        (1, 300, 500),         // single-row C
        (500, 300, 1),         // single-column C
        (3, 1024, 4),          // tall accumulation, tiny output
        (190, 5, 6),           // tall-skinny A
        (6, 5, 190),           // short-wide B
    ]
}

#[test]
fn blocked_matches_serial_bitwise_on_adversarial_shapes() {
    let pool = ThreadPool::new(4);
    for (m, k, n) in adversarial_shapes() {
        check_shape(m, k, n, &pool, "adversarial");
    }
}

#[test]
fn blocked_is_bitwise_deterministic_across_thread_counts() {
    // Big enough for several row-block tasks (m > 2 * BLOCK_M) with remainder,
    // so different thread counts genuinely interleave differently.
    let (m, k, n) = (2 * BLOCK_M + 37, 75, 61);
    let a = gen(m, k, 10);
    let b = gen(k, n, 11);
    let bt = gen(n, k, 12);
    let at = gen(k, m, 13);

    let reference = (matmul_serial(&a, &b), matmul_nt_serial(&a, &bt), matmul_tn_serial(&at, &b));
    for threads in [1, 2, 7, 16] {
        let pool = ThreadPool::new(threads);
        let label = format!("threads={threads}");
        assert_bitwise_eq(&format!("{label} nn"), &reference.0, &matmul_blocked(&a, &b, &pool));
        assert_bitwise_eq(&format!("{label} nt"), &reference.1, &matmul_nt_blocked(&a, &bt, &pool));
        assert_bitwise_eq(&format!("{label} tn"), &reference.2, &matmul_tn_blocked(&at, &b, &pool));
    }
}

#[test]
fn blocked_matches_serial_with_special_values() {
    // NaN/inf placed mid-matrix must flow through packing (including the
    // zero-padded lanes) without contaminating neighbouring outputs.
    let m = 9;
    let k = 21;
    let n = 13;
    let mut a = gen(m, k, 20);
    let mut b = gen(k, n, 21);
    a.data_mut()[k + 3] = f32::NAN;
    a.data_mut()[2 * k + 5] = f32::INFINITY;
    b.data_mut()[4 * n + 2] = f32::NEG_INFINITY;
    b.data_mut()[7 * n + 9] = 0.0;

    let pool = ThreadPool::new(3);
    let serial = matmul_serial(&a, &b);
    let blocked = matmul_blocked(&a, &b, &pool);
    assert_bitwise_eq("special-values nn", &serial, &blocked);
    // Sanity: the NaN actually reached the output somewhere.
    assert!(serial.data().iter().any(|v| v.is_nan()));
}

#[test]
fn public_entry_points_match_serial_above_the_dispatch_threshold() {
    // 96^3 is above BLOCKED_MIN_ELEMS, so the public fns take the blocked
    // path through the global pool — results must still be bitwise serial.
    let s = 96;
    let a = gen(s, s, 30);
    let b = gen(s, s, 31);
    let bt = gen(s, s, 32);
    assert_bitwise_eq(
        "public nn",
        &matmul_serial(&a, &b),
        &tesseract_tensor::matmul::matmul(&a, &b),
    );
    assert_bitwise_eq(
        "public nt",
        &matmul_nt_serial(&a, &bt),
        &tesseract_tensor::matmul::matmul_nt(&a, &bt),
    );
    assert_bitwise_eq(
        "public tn",
        &matmul_tn_serial(&a, &b),
        &tesseract_tensor::matmul::matmul_tn(&a, &b),
    );
}
