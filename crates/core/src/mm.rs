//! The Tesseract parallel matrix multiplication (paper §3.1, Algorithm 3)
//! and its transpose variants, which together implement the forward pass
//! and the backward rules of Eq. 3 (`A' = C'·Bᵀ`, `B' = Aᵀ·C'` with the
//! depth all-reduce of `B'`).
//!
//! All three functions are SPMD: every rank of the grid calls them with its
//! local blocks and receives its local block of the result. With `d = 1`
//! they are exactly 2-D SUMMA (Optimus); with `d = q` they are a 3-D
//! algorithm; in between they are the paper's 2.5-D scheme in which the `d`
//! layers run `q×q` SUMMA multiplications concurrently over disjoint row
//! bands of `A`/`C`, sharing only the replicated `B`.

use std::sync::Arc;

use tesseract_comm::{Payload, RankCtx};
use tesseract_tensor::TensorLike;

use crate::grid::TesseractGrid;

/// `C = A·B` (Algorithm 3).
///
/// * `a_local`: this rank's A-type block `[a/(q·d), b/q]`.
/// * `b_local`: this rank's B-type block `[b/q, c/q]`.
/// * returns this rank's C-type block `[a/(q·d), c/q]`.
///
/// Per step `t`: `A_{i,t,k}` is broadcast along the row, `B_{t,j,k}` along
/// the column, and every rank accumulates `C += A_t · B_t`. No inter-layer
/// communication happens in the forward pass.
///
/// The panels travel zero-copy: the step-`t` root deposits `Arc::clone` of
/// its local block (no self-clone) and every member multiplies against the
/// shared allocation, so each panel is materialized exactly once per
/// rendezvous regardless of the group size.
pub fn tesseract_matmul<T>(
    grid: &TesseractGrid,
    ctx: &mut RankCtx,
    a_local: &Arc<T>,
    b_local: &Arc<T>,
) -> T
where
    T: TensorLike + Payload,
{
    let q = grid.shape.q;
    assert_eq!(a_local.cols(), b_local.rows(), "tesseract_matmul: inner block dims disagree");
    let mut c: Option<T> = None;
    for t in 0..q {
        let a_t = grid.row.broadcast_shared(ctx, t, (grid.j() == t).then(|| Arc::clone(a_local)));
        let b_t = grid.col.broadcast_shared(ctx, t, (grid.i() == t).then(|| Arc::clone(b_local)));
        let partial = a_t.matmul(&b_t, &mut ctx.meter);
        match c.as_mut() {
            None => c = Some(partial),
            Some(acc) => acc.add_assign(&partial, &mut ctx.meter),
        }
    }
    c.expect("q >= 1")
}

/// `C = A·Bᵀ` — the activation-gradient rule `A' = C'·Bᵀ` of Eq. 3.
///
/// * `a_local`: A-type block of `[a, c]` (e.g. the output gradient `C'`).
/// * `b_local`: B-type block of the `[b, c]` weight.
/// * returns the A-type block of `C = A·Bᵀ` with global shape `[a, b]`.
///
/// Per step `t`: `B_{t,j,k}` is broadcast along the column; every rank
/// computes `A · B_tᵀ` and the row reduces the partials to member `t`,
/// which owns column block `t` of the result.
///
/// The weight panel is `Arc`-shared along the column and the freshly
/// computed partials are consumed by the in-place row reduction, so the
/// whole backward rule performs zero payload copies.
pub fn tesseract_matmul_nt<T>(
    grid: &TesseractGrid,
    ctx: &mut RankCtx,
    a_local: &T,
    b_local: &Arc<T>,
) -> Arc<T>
where
    T: TensorLike + Payload,
{
    let q = grid.shape.q;
    assert_eq!(a_local.cols(), b_local.cols(), "tesseract_matmul_nt: inner block dims disagree");
    let mut mine: Option<Arc<T>> = None;
    for t in 0..q {
        let b_t = grid.col.broadcast_shared(ctx, t, (grid.i() == t).then(|| Arc::clone(b_local)));
        let partial = a_local.matmul_nt(&b_t, &mut ctx.meter);
        let reduced = grid.row.reduce_shared(ctx, t, partial);
        if grid.j() == t {
            mine = Some(reduced.expect("root receives reduction"));
        }
    }
    mine.expect("every rank is root for exactly one t")
}

/// `C = Aᵀ·B` — the weight-gradient rule `B' = Aᵀ·C'` of Eq. 3.
///
/// * `a_local`: A-type block of `[a, b]` (e.g. the cached input `A`).
/// * `b_local`: A-type block of `[a, c]` (e.g. the output gradient `C'`).
/// * returns the B-type block of `C = Aᵀ·B` with global shape `[b, c]`.
///
/// Per step `t`: `A_{i,t,k}` is broadcast along the row; every rank
/// computes `A_tᵀ · B` and the column reduces the partials to member `t`.
/// Because each depth layer only sums its own row band `h = i + k·q`, the
/// partial weight gradients are finally **all-reduced across depth**
/// (`depth_reduce = true`), exactly as §3.1 prescribes for `B'`. Pass
/// `false` to inspect the per-layer partials (used by tests and ablations).
pub fn tesseract_matmul_tn<T>(
    grid: &TesseractGrid,
    ctx: &mut RankCtx,
    a_local: &Arc<T>,
    b_local: &T,
    depth_reduce: bool,
) -> Arc<T>
where
    T: TensorLike + Payload,
{
    let q = grid.shape.q;
    assert_eq!(a_local.rows(), b_local.rows(), "tesseract_matmul_tn: inner block dims disagree");
    let mut mine: Option<Arc<T>> = None;
    for t in 0..q {
        let a_t = grid.row.broadcast_shared(ctx, t, (grid.j() == t).then(|| Arc::clone(a_local)));
        let partial = a_t.matmul_tn(b_local, &mut ctx.meter);
        let reduced = grid.col.reduce_shared(ctx, t, partial);
        if grid.i() == t {
            mine = Some(reduced.expect("root receives reduction"));
        }
    }
    let mut c = mine.expect("every rank is root for exactly one t");
    if depth_reduce && grid.shape.d > 1 {
        // Reduce *through* the Arc: copy-on-write touches only member 0's
        // accumulator, and every depth replica ends up holding the same
        // combined allocation.
        c = Arc::clone(&*grid.depth.all_reduce_shared(ctx, c));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridShape;
    use crate::partition::{a_block, b_block, combine_b, combine_c};
    use tesseract_comm::Cluster;
    use tesseract_tensor::{
        assert_slices_close, matmul, DenseTensor, Matrix, ShadowTensor, Xoshiro256StarStar,
    };

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
    }

    fn run_matmul(shape: GridShape, a: &Matrix, b: &Matrix) -> Matrix {
        let out = Cluster::a100(shape.size()).run(|ctx| {
            let grid = TesseractGrid::new(ctx, shape, 0);
            let (i, j, k) = grid.coords;
            let a_loc = Arc::new(DenseTensor::from_matrix(a_block(a, shape, i, j, k)));
            let b_loc = Arc::new(DenseTensor::from_matrix(b_block(b, shape, i, j)));
            tesseract_matmul(&grid, ctx, &a_loc, &b_loc).into_matrix()
        });
        combine_c(&out.results, shape)
    }

    #[test]
    fn matmul_matches_serial_on_2x2x1() {
        let shape = GridShape::new(2, 1);
        let a = random(8, 6, 1);
        let b = random(6, 4, 2);
        let got = run_matmul(shape, &a, &b);
        assert_slices_close(got.data(), matmul::matmul(&a, &b).data(), 1e-4);
    }

    #[test]
    fn matmul_matches_serial_on_2x2x2() {
        let shape = GridShape::new(2, 2);
        let a = random(8, 6, 3);
        let b = random(6, 4, 4);
        let got = run_matmul(shape, &a, &b);
        assert_slices_close(got.data(), matmul::matmul(&a, &b).data(), 1e-4);
    }

    #[test]
    fn matmul_matches_serial_on_3x3x2() {
        let shape = GridShape::new(3, 2);
        let a = random(12, 9, 5);
        let b = random(9, 6, 6);
        let got = run_matmul(shape, &a, &b);
        assert_slices_close(got.data(), matmul::matmul(&a, &b).data(), 1e-4);
    }

    #[test]
    fn matmul_matches_serial_on_2x2x4_cube_exceeding_depth() {
        // d > q is unusual but nothing in the algorithm forbids it.
        let shape = GridShape::new(2, 4);
        let a = random(16, 4, 7);
        let b = random(4, 4, 8);
        let got = run_matmul(shape, &a, &b);
        assert_slices_close(got.data(), matmul::matmul(&a, &b).data(), 1e-4);
    }

    #[test]
    fn matmul_nt_matches_serial() {
        for (q, d, seed) in [(2usize, 1usize, 10u64), (2, 2, 11), (3, 2, 12)] {
            let shape = GridShape::new(q, d);
            // Global: A [a, c], B [b, c] → C = A·Bᵀ is [a, b].
            let (a_rows, b_rows, c_cols) = (4 * q * d, 2 * q, 3 * q);
            let a = random(a_rows, c_cols, seed);
            let b = random(b_rows, c_cols, seed + 100);
            let out = Cluster::a100(shape.size()).run(|ctx| {
                let grid = TesseractGrid::new(ctx, shape, 0);
                let (i, j, k) = grid.coords;
                let a_loc = DenseTensor::from_matrix(a_block(&a, shape, i, j, k));
                let b_loc = Arc::new(DenseTensor::from_matrix(b_block(&b, shape, i, j)));
                tesseract_matmul_nt(&grid, ctx, &a_loc, &b_loc).matrix().clone()
            });
            let got = combine_c(&out.results, shape);
            let expected = matmul::matmul_nt(&a, &b);
            assert_slices_close(got.data(), expected.data(), 1e-4);
        }
    }

    #[test]
    fn matmul_tn_matches_serial_with_depth_reduce() {
        for (q, d, seed) in [(2usize, 1usize, 20u64), (2, 2, 21), (3, 2, 22)] {
            let shape = GridShape::new(q, d);
            // Global: A [a, b], B [a, c] → C = Aᵀ·B is [b, c] (B-type).
            let (a_rows, b_cols, c_cols) = (4 * q * d, 2 * q, 3 * q);
            let a = random(a_rows, b_cols, seed);
            let b = random(a_rows, c_cols, seed + 100);
            let out = Cluster::a100(shape.size()).run(|ctx| {
                let grid = TesseractGrid::new(ctx, shape, 0);
                let (i, j, k) = grid.coords;
                let a_loc = Arc::new(DenseTensor::from_matrix(a_block(&a, shape, i, j, k)));
                let b_loc = DenseTensor::from_matrix(a_block(&b, shape, i, j, k));
                tesseract_matmul_tn(&grid, ctx, &a_loc, &b_loc, true).matrix().clone()
            });
            let got = combine_b(&out.results, shape);
            let expected = matmul::matmul_tn(&a, &b);
            assert_slices_close(got.data(), expected.data(), 1e-4);

            // All depth replicas must agree after the all-reduce.
            for off in 0..shape.size() {
                let (i, j, _k) = shape.coords_of(off);
                let replica0 = &out.results[shape.offset_of(i, j, 0)];
                assert_eq!(&out.results[off], replica0);
            }
        }
    }

    #[test]
    fn without_depth_reduce_layers_hold_partials() {
        let shape = GridShape::new(2, 2);
        let a = random(8, 4, 30);
        let b = random(8, 6, 31);
        let out = Cluster::a100(shape.size()).run(|ctx| {
            let grid = TesseractGrid::new(ctx, shape, 0);
            let (i, j, k) = grid.coords;
            let a_loc = Arc::new(DenseTensor::from_matrix(a_block(&a, shape, i, j, k)));
            let b_loc = DenseTensor::from_matrix(a_block(&b, shape, i, j, k));
            tesseract_matmul_tn(&grid, ctx, &a_loc, &b_loc, false).matrix().clone()
        });
        // Summing partials across depth by hand must equal the full result.
        let mut parts = Vec::new();
        for off in 0..shape.size() {
            let (i, j, k) = shape.coords_of(off);
            if k == 0 {
                let mut sum = out.results[shape.offset_of(i, j, 0)].clone();
                sum.add_assign(&out.results[shape.offset_of(i, j, 1)]);
                parts.push(sum);
            } else {
                parts.push(Matrix::zeros(1, 1)); // placeholder, unused by combine_b
            }
        }
        // Rebuild using only k = 0 entries.
        let mut full_parts = vec![Matrix::zeros(4 / 2, 6 / 2); shape.size()];
        let mut idx = 0;
        for off in 0..shape.size() {
            let (_i, _j, k) = shape.coords_of(off);
            if k == 0 {
                full_parts[off] = parts[idx].clone();
                idx += 1;
            }
        }
        let got = combine_b(&full_parts, shape);
        let expected = matmul::matmul_tn(&a, &b);
        assert_slices_close(got.data(), expected.data(), 1e-4);
    }

    #[test]
    fn shadow_backend_runs_same_code_path() {
        let shape = GridShape::new(2, 2);
        let out = Cluster::a100(shape.size()).run(|ctx| {
            let grid = TesseractGrid::new(ctx, shape, 0);
            // Global A [16, 8], B [8, 8] at shadow scale.
            let a_loc = Arc::new(ShadowTensor::new(16 / 4, 8 / 2));
            let b_loc = Arc::new(ShadowTensor::new(8 / 2, 8 / 2));
            let c = tesseract_matmul(&grid, ctx, &a_loc, &b_loc);
            ctx.flush_compute();
            (c.shape(), ctx.clock())
        });
        for (shape_c, clock) in &out.results {
            assert_eq!(*shape_c, (4, 4));
            assert!(*clock > 0.0);
        }
        // Broadcasts happened: 2 per step × q steps × (rows+cols groups).
        assert!(out.comm.get(tesseract_comm::CollectiveOp::Broadcast).calls > 0);
    }

    #[test]
    fn dense_and_shadow_report_identical_makespan() {
        let shape = GridShape::new(2, 1);
        let a = random(8, 8, 40);
        let b = random(8, 8, 41);
        let dense = Cluster::a100(shape.size()).run(|ctx| {
            let grid = TesseractGrid::new(ctx, shape, 0);
            let (i, j, k) = grid.coords;
            let a_loc = Arc::new(DenseTensor::from_matrix(a_block(&a, shape, i, j, k)));
            let b_loc = Arc::new(DenseTensor::from_matrix(b_block(&b, shape, i, j)));
            let _ = tesseract_matmul(&grid, ctx, &a_loc, &b_loc);
        });
        let shadow = Cluster::a100(shape.size()).run(|ctx| {
            let grid = TesseractGrid::new(ctx, shape, 0);
            let a_loc = Arc::new(ShadowTensor::new(4, 4));
            let b_loc = Arc::new(ShadowTensor::new(4, 4));
            let _ = tesseract_matmul(&grid, ctx, &a_loc, &b_loc);
        });
        assert!((dense.makespan() - shadow.makespan()).abs() < 1e-15);
        assert_eq!(dense.comm.total_wire_bytes(), shadow.comm.total_wire_bytes());
    }
}
