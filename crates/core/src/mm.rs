//! The Tesseract parallel matrix multiplication (paper §3.1, Algorithm 3)
//! and its transpose variants, which together implement the forward pass
//! and the backward rules of Eq. 3 (`A' = C'·Bᵀ`, `B' = Aᵀ·C'` with the
//! depth all-reduce of `B'`).
//!
//! All three functions are SPMD: every rank of the grid calls them with its
//! local blocks and receives its local block of the result. With `d = 1`
//! they are exactly 2-D SUMMA (Optimus); with `d = q` they are a 3-D
//! algorithm; in between they are the paper's 2.5-D scheme in which the `d`
//! layers run `q×q` SUMMA multiplications concurrently over disjoint row
//! bands of `A`/`C`, sharing only the replicated `B`.
//!
//! # Double-buffered pipeline
//!
//! The main entry points run the SUMMA loop **double-buffered** on the
//! split-phase collectives: the step-`t+1` panel broadcasts are begun
//! before the step-`t` partial product is computed, so the rendezvous wait
//! overlaps the GEMM; likewise the partial-sum reductions of the backward
//! rules are begun as soon as a partial is computed and completed one step
//! later, and `tesseract_matmul_tn`'s depth all-reduce is begun the moment
//! the local contribution is final. Results are **bitwise identical** to
//! the serial loop — the panels travel as the same shared `Arc`s and the
//! reductions fold in the same ascending member order; only the virtual
//! clock improves (the hidden wait is reported via
//! `Meter::overlap_hidden_nanos`). The `*_serial` twins run the original
//! blocking loops and exist as the parity/ablation baseline.

use std::sync::Arc;

use tesseract_comm::{Payload, PendingCollective, RankCtx};
use tesseract_tensor::TensorLike;

use crate::grid::TesseractGrid;

/// Begins the step-`t` row/column panel broadcasts of Algorithm 3 (the
/// shared prefetch half of the double-buffered loop).
fn begin_panels<'g, T>(
    grid: &'g TesseractGrid,
    ctx: &mut RankCtx,
    a_local: &Arc<T>,
    b_local: &Arc<T>,
    t: usize,
) -> (PendingCollective<'g, Arc<T>>, PendingCollective<'g, Arc<T>>)
where
    T: TensorLike + Payload,
{
    let a = grid.row.broadcast_shared_begin(ctx, t, (grid.j() == t).then(|| Arc::clone(a_local)));
    let b = grid.col.broadcast_shared_begin(ctx, t, (grid.i() == t).then(|| Arc::clone(b_local)));
    (a, b)
}

/// `C = A·B` (Algorithm 3).
///
/// * `a_local`: this rank's A-type block `[a/(q·d), b/q]`.
/// * `b_local`: this rank's B-type block `[b/q, c/q]`.
/// * returns this rank's C-type block `[a/(q·d), c/q]`.
///
/// Per step `t`: `A_{i,t,k}` is broadcast along the row, `B_{t,j,k}` along
/// the column, and every rank accumulates `C += A_t · B_t`. No inter-layer
/// communication happens in the forward pass.
///
/// The panels travel zero-copy: the step-`t` root deposits `Arc::clone` of
/// its local block (no self-clone) and every member multiplies against the
/// shared allocation, so each panel is materialized exactly once per
/// rendezvous regardless of the group size.
///
/// The loop is double-buffered: step `t+1`'s panel broadcasts are begun
/// before step `t`'s partial product is computed, hiding the rendezvous
/// wait under the GEMM. Data is bitwise identical to
/// [`tesseract_matmul_serial`].
pub fn tesseract_matmul<T>(
    grid: &TesseractGrid,
    ctx: &mut RankCtx,
    a_local: &Arc<T>,
    b_local: &Arc<T>,
) -> T
where
    T: TensorLike + Payload,
{
    let q = grid.shape.q;
    assert_eq!(a_local.cols(), b_local.rows(), "tesseract_matmul: inner block dims disagree");
    let (pa, pb) = begin_panels(grid, ctx, a_local, b_local, 0);
    let a_t = pa.complete(ctx);
    let b_t = pb.complete(ctx);
    let mut next = (q > 1).then(|| begin_panels(grid, ctx, a_local, b_local, 1));
    let mut c = a_t.matmul(&b_t, &mut ctx.meter.scope("gemm"));
    for t in 1..q {
        let (pa, pb) = next.take().expect("prefetched by the previous step");
        let a_t = pa.complete(ctx);
        let b_t = pb.complete(ctx);
        if t + 1 < q {
            next = Some(begin_panels(grid, ctx, a_local, b_local, t + 1));
        }
        let partial = a_t.matmul(&b_t, &mut ctx.meter.scope("gemm"));
        c.add_assign(&partial, &mut ctx.meter.scope("add"));
    }
    c
}

/// Blocking-collective reference for [`tesseract_matmul`]: the original
/// serial SUMMA loop (broadcast, broadcast, multiply — every step waits).
/// Kept as the parity baseline and the `overlap_sweep` ablation.
pub fn tesseract_matmul_serial<T>(
    grid: &TesseractGrid,
    ctx: &mut RankCtx,
    a_local: &Arc<T>,
    b_local: &Arc<T>,
) -> T
where
    T: TensorLike + Payload,
{
    let q = grid.shape.q;
    assert_eq!(a_local.cols(), b_local.rows(), "tesseract_matmul: inner block dims disagree");
    let a_t = grid.row.broadcast_shared(ctx, 0, (grid.j() == 0).then(|| Arc::clone(a_local)));
    let b_t = grid.col.broadcast_shared(ctx, 0, (grid.i() == 0).then(|| Arc::clone(b_local)));
    let mut c = a_t.matmul(&b_t, &mut ctx.meter.scope("gemm"));
    for t in 1..q {
        let a_t = grid.row.broadcast_shared(ctx, t, (grid.j() == t).then(|| Arc::clone(a_local)));
        let b_t = grid.col.broadcast_shared(ctx, t, (grid.i() == t).then(|| Arc::clone(b_local)));
        let partial = a_t.matmul(&b_t, &mut ctx.meter.scope("gemm"));
        c.add_assign(&partial, &mut ctx.meter.scope("add"));
    }
    c
}

/// `C = A·Bᵀ` — the activation-gradient rule `A' = C'·Bᵀ` of Eq. 3.
///
/// * `a_local`: A-type block of `[a, c]` (e.g. the output gradient `C'`).
/// * `b_local`: B-type block of the `[b, c]` weight.
/// * returns the A-type block of `C = A·Bᵀ` with global shape `[a, b]`.
///
/// Per step `t`: `B_{t,j,k}` is broadcast along the column; every rank
/// computes `A · B_tᵀ` and the row reduces the partials to member `t`,
/// which owns column block `t` of the result.
///
/// The weight panel is `Arc`-shared along the column and the freshly
/// computed partials are consumed by the in-place row reduction, so the
/// whole backward rule performs zero payload copies.
///
/// Double-buffered: step `t+1`'s column broadcast is begun before step
/// `t`'s GEMM, and each step's row reduction is begun right after its
/// partial is computed but only completed one step later — both waits hide
/// under the next GEMM. Data is bitwise identical to
/// [`tesseract_matmul_nt_serial`].
pub fn tesseract_matmul_nt<T>(
    grid: &TesseractGrid,
    ctx: &mut RankCtx,
    a_local: &T,
    b_local: &Arc<T>,
) -> Arc<T>
where
    T: TensorLike + Payload,
{
    let q = grid.shape.q;
    assert_eq!(a_local.cols(), b_local.cols(), "tesseract_matmul_nt: inner block dims disagree");
    let mut mine: Option<Arc<T>> = None;
    let pb = grid.col.broadcast_shared_begin(ctx, 0, (grid.i() == 0).then(|| Arc::clone(b_local)));
    let b_t = pb.complete(ctx);
    let mut next_b = (q > 1).then(|| {
        grid.col.broadcast_shared_begin(ctx, 1, (grid.i() == 1).then(|| Arc::clone(b_local)))
    });
    let partial = a_local.matmul_nt(&b_t, &mut ctx.meter.scope("gemm"));
    let mut pending_red = grid.row.reduce_shared_begin(ctx, 0, partial);
    for t in 1..q {
        let pb = next_b.take().expect("prefetched by the previous step");
        let b_t = pb.complete(ctx);
        if t + 1 < q {
            next_b = Some(grid.col.broadcast_shared_begin(
                ctx,
                t + 1,
                (grid.i() == t + 1).then(|| Arc::clone(b_local)),
            ));
        }
        let partial = a_local.matmul_nt(&b_t, &mut ctx.meter.scope("gemm"));
        if let Some(r) = pending_red.complete(ctx) {
            mine = Some(r);
        }
        pending_red = grid.row.reduce_shared_begin(ctx, t, partial);
    }
    if let Some(r) = pending_red.complete(ctx) {
        mine = Some(r);
    }
    mine.expect("every rank is root for exactly one t")
}

/// Blocking-collective reference for [`tesseract_matmul_nt`]: one fully
/// synchronous broadcast + reduce per step.
pub fn tesseract_matmul_nt_serial<T>(
    grid: &TesseractGrid,
    ctx: &mut RankCtx,
    a_local: &T,
    b_local: &Arc<T>,
) -> Arc<T>
where
    T: TensorLike + Payload,
{
    let q = grid.shape.q;
    assert_eq!(a_local.cols(), b_local.cols(), "tesseract_matmul_nt: inner block dims disagree");
    let mut mine: Option<Arc<T>> = None;
    for t in 0..q {
        let b_t = grid.col.broadcast_shared(ctx, t, (grid.i() == t).then(|| Arc::clone(b_local)));
        let partial = a_local.matmul_nt(&b_t, &mut ctx.meter.scope("gemm"));
        let reduced = grid.row.reduce_shared(ctx, t, partial);
        if grid.j() == t {
            mine = Some(reduced.expect("root receives reduction"));
        }
    }
    mine.expect("every rank is root for exactly one t")
}

/// `C = Aᵀ·B` — the weight-gradient rule `B' = Aᵀ·C'` of Eq. 3.
///
/// * `a_local`: A-type block of `[a, b]` (e.g. the cached input `A`).
/// * `b_local`: A-type block of `[a, c]` (e.g. the output gradient `C'`).
/// * returns the B-type block of `C = Aᵀ·B` with global shape `[b, c]`.
///
/// Per step `t`: `A_{i,t,k}` is broadcast along the row; every rank
/// computes `A_tᵀ · B` and the column reduces the partials to member `t`.
/// Because each depth layer only sums its own row band `h = i + k·q`, the
/// partial weight gradients are finally **all-reduced across depth**
/// (`depth_reduce = true`), exactly as §3.1 prescribes for `B'`. Pass
/// `false` to inspect the per-layer partials (used by tests and ablations).
///
/// Double-buffered like [`tesseract_matmul_nt`]; in addition the depth
/// all-reduce is begun the moment this rank's column reduction delivers
/// its final local contribution (at step `t = i`, the same program point
/// on every member of the depth fiber), so it overlaps the remaining SUMMA
/// steps. Data is bitwise identical to [`tesseract_matmul_tn_serial`].
pub fn tesseract_matmul_tn<T>(
    grid: &TesseractGrid,
    ctx: &mut RankCtx,
    a_local: &Arc<T>,
    b_local: &T,
    depth_reduce: bool,
) -> Arc<T>
where
    T: TensorLike + Payload,
{
    let q = grid.shape.q;
    assert_eq!(a_local.rows(), b_local.rows(), "tesseract_matmul_tn: inner block dims disagree");
    let overlap_depth = depth_reduce && grid.shape.d > 1;
    let mut mine: Option<Arc<T>> = None;
    let mut depth_pending: Option<PendingCollective<'_, Arc<Arc<T>>>> = None;
    let pa = grid.row.broadcast_shared_begin(ctx, 0, (grid.j() == 0).then(|| Arc::clone(a_local)));
    let a_t = pa.complete(ctx);
    let mut next_a = (q > 1).then(|| {
        grid.row.broadcast_shared_begin(ctx, 1, (grid.j() == 1).then(|| Arc::clone(a_local)))
    });
    let partial = a_t.matmul_tn(b_local, &mut ctx.meter.scope("gemm"));
    let mut pending_red = grid.col.reduce_shared_begin(ctx, 0, partial);
    for t in 1..q {
        let pa = next_a.take().expect("prefetched by the previous step");
        let a_t = pa.complete(ctx);
        if t + 1 < q {
            next_a = Some(grid.row.broadcast_shared_begin(
                ctx,
                t + 1,
                (grid.j() == t + 1).then(|| Arc::clone(a_local)),
            ));
        }
        let partial = a_t.matmul_tn(b_local, &mut ctx.meter.scope("gemm"));
        let reduced = pending_red.complete(ctx);
        settle_reduced(grid, ctx, overlap_depth, reduced, &mut mine, &mut depth_pending);
        pending_red = grid.col.reduce_shared_begin(ctx, t, partial);
    }
    let reduced = pending_red.complete(ctx);
    settle_reduced(grid, ctx, overlap_depth, reduced, &mut mine, &mut depth_pending);
    if let Some(dp) = depth_pending {
        mine = Some(Arc::clone(&*dp.complete(ctx)));
    }
    mine.expect("every rank is root for exactly one t")
}

/// Disposes of one completed column reduction in [`tesseract_matmul_tn`]:
/// the step-`t` root (rank `i == t`) either keeps the combined block or,
/// when overlapping the depth all-reduce, begins it immediately — the same
/// program point on every member of its depth fiber, so the fiber's SPMD
/// schedule stays aligned.
fn settle_reduced<'g, T>(
    grid: &'g TesseractGrid,
    ctx: &mut RankCtx,
    overlap_depth: bool,
    reduced: Option<Arc<T>>,
    mine: &mut Option<Arc<T>>,
    depth_pending: &mut Option<PendingCollective<'g, Arc<Arc<T>>>>,
) where
    T: TensorLike + Payload,
{
    if let Some(r) = reduced {
        if overlap_depth {
            // Reduce *through* the Arc: copy-on-write touches only member
            // 0's accumulator, and every depth replica ends up holding the
            // same combined allocation.
            *depth_pending = Some(grid.depth.all_reduce_shared_begin(ctx, r));
        } else {
            *mine = Some(r);
        }
    }
}

/// Blocking-collective reference for [`tesseract_matmul_tn`]: one fully
/// synchronous broadcast + reduce per step, depth all-reduce at the end.
pub fn tesseract_matmul_tn_serial<T>(
    grid: &TesseractGrid,
    ctx: &mut RankCtx,
    a_local: &Arc<T>,
    b_local: &T,
    depth_reduce: bool,
) -> Arc<T>
where
    T: TensorLike + Payload,
{
    let q = grid.shape.q;
    assert_eq!(a_local.rows(), b_local.rows(), "tesseract_matmul_tn: inner block dims disagree");
    let mut mine: Option<Arc<T>> = None;
    for t in 0..q {
        let a_t = grid.row.broadcast_shared(ctx, t, (grid.j() == t).then(|| Arc::clone(a_local)));
        let partial = a_t.matmul_tn(b_local, &mut ctx.meter.scope("gemm"));
        let reduced = grid.col.reduce_shared(ctx, t, partial);
        if grid.i() == t {
            mine = Some(reduced.expect("root receives reduction"));
        }
    }
    let mut c = mine.expect("every rank is root for exactly one t");
    if depth_reduce && grid.shape.d > 1 {
        // Reduce *through* the Arc: copy-on-write touches only member 0's
        // accumulator, and every depth replica ends up holding the same
        // combined allocation.
        c = Arc::clone(&*grid.depth.all_reduce_shared(ctx, c));
    }
    c
}

// ---------------------------------------------------------------------------
// Sequence-parallel variants.
//
// Under sequence parallelism the A-type activation band `[R, h]` of a depth
// layer is sharded along its *rows* (the sequence/sample dimension) over the
// row fiber: member `j` holds `x_sp = [R/q, h]`, the `j`-th row chunk,
// instead of the dense `[R, h/q]` column chunk. The SUMMA step-`t` panel —
// in the dense schedule a row *broadcast* of root `t`'s column chunk — is
// reassembled from a row *all-gather* of every member's `[R/q, h/q]` slice
// of its own column chunk `t`, concatenated in ascending member order. The
// assembled panel is the same matrix value the dense broadcast would have
// delivered, so the GEMMs — and therefore the results — are **bitwise
// identical** to the dense path, and the collective count stays flat: one
// all-gather replaces one broadcast per step.
//
// The backward activation rule swaps the dense reduce-to-root for a
// reduce-scatter (same ascending fold, so the combined values are bitwise
// equal — see `CommGroup::reduce_scatter_shared`), after which every member
// keeps its own row chunk of each column block. The boundary between a
// sequence-sharded and a dense region is one all-to-all each way
// ([`sp_scatter_to_seq`] / [`sp_gather_from_seq`]).

/// Begins the step-`t` sequence-parallel panel gather: every row-fiber
/// member contributes its `[R/q, h/q]` slice of column chunk `t`, and the
/// completed gather reassembles the exact dense broadcast panel.
fn sp_panel_begin<'g, T>(
    grid: &'g TesseractGrid,
    ctx: &mut RankCtx,
    x_sp: &T,
    t: usize,
) -> PendingCollective<'g, Vec<Arc<T>>>
where
    T: TensorLike + Payload,
{
    let q = grid.shape.q;
    debug_assert_eq!(x_sp.cols() % q, 0, "sp panel: hidden not divisible by q");
    let wc = x_sp.cols() / q;
    let slice = x_sp.slice_cols(t * wc, (t + 1) * wc, &mut ctx.meter.scope("sp"));
    grid.row.all_gather_shared_begin(ctx, Arc::new(slice))
}

/// Concatenates gathered panel slices (ascending member order) into the
/// dense step panel.
fn sp_panel_assemble<T>(parts: &[Arc<T>], ctx: &mut RankCtx) -> T
where
    T: TensorLike + Payload,
{
    let owned: Vec<T> = parts.iter().map(|p| (**p).clone()).collect();
    T::concat_rows(&owned, &mut ctx.meter.scope("sp"))
}

/// `C = X·B` where `X` enters **sequence-sharded**: `x_sp` is this rank's
/// `[R/q, h]` row chunk of the activation band and the result is this
/// rank's *dense* C-type block `[R, c/q]`, exactly as [`tesseract_matmul`]
/// would return for the dense `[R, h/q]` layout.
///
/// Per step `t` the row all-gather of column-chunk-`t` slices replaces the
/// dense row broadcast (same payload volume across the fiber, same count);
/// the column broadcast of `B_t` and the accumulation are unchanged.
/// Double-buffered like [`tesseract_matmul`]; bitwise identical to it.
pub fn tesseract_matmul_sp_in<T>(
    grid: &TesseractGrid,
    ctx: &mut RankCtx,
    x_sp: &T,
    b_local: &Arc<T>,
) -> T
where
    T: TensorLike + Payload,
{
    let q = grid.shape.q;
    assert_eq!(x_sp.cols() % q, 0, "tesseract_matmul_sp_in: hidden not divisible by q");
    assert_eq!(
        x_sp.cols() / q,
        b_local.rows(),
        "tesseract_matmul_sp_in: inner block dims disagree"
    );
    let pa = sp_panel_begin(grid, ctx, x_sp, 0);
    let pb = grid.col.broadcast_shared_begin(ctx, 0, (grid.i() == 0).then(|| Arc::clone(b_local)));
    let parts = pa.complete(ctx);
    let b_t = pb.complete(ctx);
    let mut next = (q > 1).then(|| {
        let pa = sp_panel_begin(grid, ctx, x_sp, 1);
        let pb =
            grid.col.broadcast_shared_begin(ctx, 1, (grid.i() == 1).then(|| Arc::clone(b_local)));
        (pa, pb)
    });
    let a_t = sp_panel_assemble(&parts, ctx);
    let mut c = a_t.matmul(&b_t, &mut ctx.meter.scope("gemm"));
    for t in 1..q {
        let (pa, pb) = next.take().expect("prefetched by the previous step");
        let parts = pa.complete(ctx);
        let b_t = pb.complete(ctx);
        if t + 1 < q {
            next = Some((
                sp_panel_begin(grid, ctx, x_sp, t + 1),
                grid.col.broadcast_shared_begin(
                    ctx,
                    t + 1,
                    (grid.i() == t + 1).then(|| Arc::clone(b_local)),
                ),
            ));
        }
        let a_t = sp_panel_assemble(&parts, ctx);
        let partial = a_t.matmul(&b_t, &mut ctx.meter.scope("gemm"));
        c.add_assign(&partial, &mut ctx.meter.scope("add"));
    }
    c
}

/// Slices this rank's sequence chunk (row chunk `j`) out of a combined
/// column block.
fn sp_seq_chunk<T>(grid: &TesseractGrid, ctx: &mut RankCtx, reduced: &T) -> T
where
    T: TensorLike + Payload,
{
    let q = grid.shape.q;
    debug_assert_eq!(reduced.rows() % q, 0, "sp chunk: rows not divisible by q");
    let rh = reduced.rows() / q;
    let j = grid.j();
    reduced.slice_rows(j * rh, (j + 1) * rh, &mut ctx.meter.scope("sp"))
}

/// `C = A·Bᵀ` with a **sequence-sharded** result: the activation-gradient
/// rule of Eq. 3 for a layer whose input entered sequence-sharded. `a_local`
/// is the dense output gradient `[R, c/q]`, `b_local` the `[b, c]` weight
/// block, and the return is this rank's `[R/q, b·q… /q·q] = [R/q, h]` row
/// chunk of the input gradient.
///
/// The dense row reduce-to-root of each step becomes a row reduce-scatter:
/// the partials fold in the identical ascending member order (bitwise equal
/// to the dense reduction), every member keeps its own row chunk, and the
/// `q` chunks concatenate (ascending step order) into the sequence-sharded
/// gradient. Collective count stays flat; double-buffered like
/// [`tesseract_matmul_nt`] with each reduce-scatter completed one step
/// late.
pub fn tesseract_matmul_nt_sp<T>(
    grid: &TesseractGrid,
    ctx: &mut RankCtx,
    a_local: &T,
    b_local: &Arc<T>,
) -> T
where
    T: TensorLike + Payload,
{
    let q = grid.shape.q;
    assert_eq!(a_local.cols(), b_local.cols(), "tesseract_matmul_nt_sp: inner block dims disagree");
    assert_eq!(a_local.rows() % q, 0, "tesseract_matmul_nt_sp: rows not divisible by q");
    let mut chunks: Vec<T> = Vec::with_capacity(q);
    let pb = grid.col.broadcast_shared_begin(ctx, 0, (grid.i() == 0).then(|| Arc::clone(b_local)));
    let b_t = pb.complete(ctx);
    let mut next_b = (q > 1).then(|| {
        grid.col.broadcast_shared_begin(ctx, 1, (grid.i() == 1).then(|| Arc::clone(b_local)))
    });
    let partial = a_local.matmul_nt(&b_t, &mut ctx.meter.scope("gemm"));
    let mut pending_red = grid.row.reduce_scatter_shared_begin(ctx, partial);
    for t in 1..q {
        let pb = next_b.take().expect("prefetched by the previous step");
        let b_t = pb.complete(ctx);
        if t + 1 < q {
            next_b = Some(grid.col.broadcast_shared_begin(
                ctx,
                t + 1,
                (grid.i() == t + 1).then(|| Arc::clone(b_local)),
            ));
        }
        let partial = a_local.matmul_nt(&b_t, &mut ctx.meter.scope("gemm"));
        let reduced = pending_red.complete(ctx);
        chunks.push(sp_seq_chunk(grid, ctx, &reduced));
        pending_red = grid.row.reduce_scatter_shared_begin(ctx, partial);
    }
    let reduced = pending_red.complete(ctx);
    chunks.push(sp_seq_chunk(grid, ctx, &reduced));
    T::concat_cols(&chunks, &mut ctx.meter.scope("sp"))
}

/// `C = Xᵀ·B` with a **sequence-sharded** `X`: the weight-gradient rule of
/// Eq. 3 for a layer whose cached input is the `[R/q, h]` row chunk
/// `x_sp`. `b_local` is the dense output gradient `[R, c/q]`; the return is
/// the B-type weight-gradient block, bitwise identical to
/// [`tesseract_matmul_tn`] on the dense cached input.
///
/// The step-`t` row broadcast of the cached panel becomes the same panel
/// all-gather as [`tesseract_matmul_sp_in`]; the column reductions and the
/// overlapped depth all-reduce are unchanged.
pub fn tesseract_matmul_tn_sp<T>(
    grid: &TesseractGrid,
    ctx: &mut RankCtx,
    x_sp: &T,
    b_local: &T,
    depth_reduce: bool,
) -> Arc<T>
where
    T: TensorLike + Payload,
{
    let q = grid.shape.q;
    assert_eq!(
        x_sp.rows() * q,
        b_local.rows(),
        "tesseract_matmul_tn_sp: inner block dims disagree"
    );
    let overlap_depth = depth_reduce && grid.shape.d > 1;
    let mut mine: Option<Arc<T>> = None;
    let mut depth_pending: Option<PendingCollective<'_, Arc<Arc<T>>>> = None;
    let pa = sp_panel_begin(grid, ctx, x_sp, 0);
    let parts = pa.complete(ctx);
    let mut next_a = (q > 1).then(|| sp_panel_begin(grid, ctx, x_sp, 1));
    let a_t = sp_panel_assemble(&parts, ctx);
    let partial = a_t.matmul_tn(b_local, &mut ctx.meter.scope("gemm"));
    let mut pending_red = grid.col.reduce_shared_begin(ctx, 0, partial);
    for t in 1..q {
        let pa = next_a.take().expect("prefetched by the previous step");
        let parts = pa.complete(ctx);
        if t + 1 < q {
            next_a = Some(sp_panel_begin(grid, ctx, x_sp, t + 1));
        }
        let a_t = sp_panel_assemble(&parts, ctx);
        let partial = a_t.matmul_tn(b_local, &mut ctx.meter.scope("gemm"));
        let reduced = pending_red.complete(ctx);
        settle_reduced(grid, ctx, overlap_depth, reduced, &mut mine, &mut depth_pending);
        pending_red = grid.col.reduce_shared_begin(ctx, t, partial);
    }
    let reduced = pending_red.complete(ctx);
    settle_reduced(grid, ctx, overlap_depth, reduced, &mut mine, &mut depth_pending);
    if let Some(dp) = depth_pending {
        mine = Some(Arc::clone(&*dp.complete(ctx)));
    }
    mine.expect("every rank is root for exactly one t")
}

/// Re-shards a dense C-type block into the sequence-sharded layout:
/// `[R, c/q]` (column chunk `j`) in, `[R/q, c]` (row chunk `j`) out, via
/// one row-fiber all-to-all. Member `j` keeps row chunk `j` of every
/// member's deposit, concatenated in ascending member order — a pure
/// relayout, so values are preserved bitwise. With `q = 1` the singleton
/// exchange returns the tensor unchanged.
pub fn sp_scatter_to_seq<T>(grid: &TesseractGrid, ctx: &mut RankCtx, x_dense: T) -> T
where
    T: TensorLike + Payload,
{
    let q = grid.shape.q;
    assert_eq!(x_dense.rows() % q, 0, "sp_scatter_to_seq: rows not divisible by q");
    let rh = x_dense.rows() / q;
    let j = grid.j();
    let deposits = grid.row.all_to_all_shared(ctx, Arc::new(x_dense));
    let chunks: Vec<T> = deposits
        .iter()
        .map(|d| d.slice_rows(j * rh, (j + 1) * rh, &mut ctx.meter.scope("sp")))
        .collect();
    T::concat_cols(&chunks, &mut ctx.meter.scope("sp"))
}

/// Inverse of [`sp_scatter_to_seq`]: `[R/q, c]` (row chunk `j`) in,
/// `[R, c/q]` (column chunk `j`) out. Member `j` keeps column chunk `j` of
/// every member's deposit, concatenated in ascending member order.
pub fn sp_gather_from_seq<T>(grid: &TesseractGrid, ctx: &mut RankCtx, x_sp: T) -> T
where
    T: TensorLike + Payload,
{
    let q = grid.shape.q;
    assert_eq!(x_sp.cols() % q, 0, "sp_gather_from_seq: cols not divisible by q");
    let wc = x_sp.cols() / q;
    let j = grid.j();
    let deposits = grid.row.all_to_all_shared(ctx, Arc::new(x_sp));
    let chunks: Vec<T> = deposits
        .iter()
        .map(|d| d.slice_cols(j * wc, (j + 1) * wc, &mut ctx.meter.scope("sp")))
        .collect();
    T::concat_rows(&chunks, &mut ctx.meter.scope("sp"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridShape;
    use crate::partition::{a_block, b_block, combine_b, combine_c};
    use tesseract_comm::Cluster;
    use tesseract_tensor::{
        assert_slices_close, matmul, DenseTensor, Matrix, ShadowTensor, Xoshiro256StarStar,
    };

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
    }

    fn run_matmul(shape: GridShape, a: &Matrix, b: &Matrix) -> Matrix {
        let out = Cluster::a100(shape.size()).run(|ctx| {
            let grid = TesseractGrid::new(ctx, shape, 0);
            let (i, j, k) = grid.coords;
            let a_loc = Arc::new(DenseTensor::from_matrix(a_block(a, shape, i, j, k)));
            let b_loc = Arc::new(DenseTensor::from_matrix(b_block(b, shape, i, j)));
            tesseract_matmul(&grid, ctx, &a_loc, &b_loc).into_matrix()
        });
        combine_c(&out.results, shape)
    }

    #[test]
    fn matmul_matches_serial_on_2x2x1() {
        let shape = GridShape::new(2, 1);
        let a = random(8, 6, 1);
        let b = random(6, 4, 2);
        let got = run_matmul(shape, &a, &b);
        assert_slices_close(got.data(), matmul::matmul(&a, &b).data(), 1e-4);
    }

    #[test]
    fn matmul_matches_serial_on_2x2x2() {
        let shape = GridShape::new(2, 2);
        let a = random(8, 6, 3);
        let b = random(6, 4, 4);
        let got = run_matmul(shape, &a, &b);
        assert_slices_close(got.data(), matmul::matmul(&a, &b).data(), 1e-4);
    }

    #[test]
    fn matmul_matches_serial_on_3x3x2() {
        let shape = GridShape::new(3, 2);
        let a = random(12, 9, 5);
        let b = random(9, 6, 6);
        let got = run_matmul(shape, &a, &b);
        assert_slices_close(got.data(), matmul::matmul(&a, &b).data(), 1e-4);
    }

    #[test]
    fn matmul_matches_serial_on_2x2x4_cube_exceeding_depth() {
        // d > q is unusual but nothing in the algorithm forbids it.
        let shape = GridShape::new(2, 4);
        let a = random(16, 4, 7);
        let b = random(4, 4, 8);
        let got = run_matmul(shape, &a, &b);
        assert_slices_close(got.data(), matmul::matmul(&a, &b).data(), 1e-4);
    }

    #[test]
    fn matmul_nt_matches_serial() {
        for (q, d, seed) in [(2usize, 1usize, 10u64), (2, 2, 11), (3, 2, 12)] {
            let shape = GridShape::new(q, d);
            // Global: A [a, c], B [b, c] → C = A·Bᵀ is [a, b].
            let (a_rows, b_rows, c_cols) = (4 * q * d, 2 * q, 3 * q);
            let a = random(a_rows, c_cols, seed);
            let b = random(b_rows, c_cols, seed + 100);
            let out = Cluster::a100(shape.size()).run(|ctx| {
                let grid = TesseractGrid::new(ctx, shape, 0);
                let (i, j, k) = grid.coords;
                let a_loc = DenseTensor::from_matrix(a_block(&a, shape, i, j, k));
                let b_loc = Arc::new(DenseTensor::from_matrix(b_block(&b, shape, i, j)));
                tesseract_matmul_nt(&grid, ctx, &a_loc, &b_loc).matrix().clone()
            });
            let got = combine_c(&out.results, shape);
            let expected = matmul::matmul_nt(&a, &b);
            assert_slices_close(got.data(), expected.data(), 1e-4);
        }
    }

    #[test]
    fn matmul_tn_matches_serial_with_depth_reduce() {
        for (q, d, seed) in [(2usize, 1usize, 20u64), (2, 2, 21), (3, 2, 22)] {
            let shape = GridShape::new(q, d);
            // Global: A [a, b], B [a, c] → C = Aᵀ·B is [b, c] (B-type).
            let (a_rows, b_cols, c_cols) = (4 * q * d, 2 * q, 3 * q);
            let a = random(a_rows, b_cols, seed);
            let b = random(a_rows, c_cols, seed + 100);
            let out = Cluster::a100(shape.size()).run(|ctx| {
                let grid = TesseractGrid::new(ctx, shape, 0);
                let (i, j, k) = grid.coords;
                let a_loc = Arc::new(DenseTensor::from_matrix(a_block(&a, shape, i, j, k)));
                let b_loc = DenseTensor::from_matrix(a_block(&b, shape, i, j, k));
                tesseract_matmul_tn(&grid, ctx, &a_loc, &b_loc, true).matrix().clone()
            });
            let got = combine_b(&out.results, shape);
            let expected = matmul::matmul_tn(&a, &b);
            assert_slices_close(got.data(), expected.data(), 1e-4);

            // All depth replicas must agree after the all-reduce.
            for off in 0..shape.size() {
                let (i, j, _k) = shape.coords_of(off);
                let replica0 = &out.results[shape.offset_of(i, j, 0)];
                assert_eq!(&out.results[off], replica0);
            }
        }
    }

    #[test]
    fn without_depth_reduce_layers_hold_partials() {
        let shape = GridShape::new(2, 2);
        let a = random(8, 4, 30);
        let b = random(8, 6, 31);
        let out = Cluster::a100(shape.size()).run(|ctx| {
            let grid = TesseractGrid::new(ctx, shape, 0);
            let (i, j, k) = grid.coords;
            let a_loc = Arc::new(DenseTensor::from_matrix(a_block(&a, shape, i, j, k)));
            let b_loc = DenseTensor::from_matrix(a_block(&b, shape, i, j, k));
            tesseract_matmul_tn(&grid, ctx, &a_loc, &b_loc, false).matrix().clone()
        });
        // Summing partials across depth by hand must equal the full result.
        let mut parts = Vec::new();
        for off in 0..shape.size() {
            let (i, j, k) = shape.coords_of(off);
            if k == 0 {
                let mut sum = out.results[shape.offset_of(i, j, 0)].clone();
                sum.add_assign(&out.results[shape.offset_of(i, j, 1)]);
                parts.push(sum);
            } else {
                parts.push(Matrix::zeros(1, 1)); // placeholder, unused by combine_b
            }
        }
        // Rebuild using only k = 0 entries.
        let mut full_parts = vec![Matrix::zeros(4 / 2, 6 / 2); shape.size()];
        let mut idx = 0;
        for off in 0..shape.size() {
            let (_i, _j, k) = shape.coords_of(off);
            if k == 0 {
                full_parts[off] = parts[idx].clone();
                idx += 1;
            }
        }
        let got = combine_b(&full_parts, shape);
        let expected = matmul::matmul_tn(&a, &b);
        assert_slices_close(got.data(), expected.data(), 1e-4);
    }

    #[test]
    fn shadow_backend_runs_same_code_path() {
        let shape = GridShape::new(2, 2);
        let out = Cluster::a100(shape.size()).run(|ctx| {
            let grid = TesseractGrid::new(ctx, shape, 0);
            // Global A [16, 8], B [8, 8] at shadow scale.
            let a_loc = Arc::new(ShadowTensor::new(16 / 4, 8 / 2));
            let b_loc = Arc::new(ShadowTensor::new(8 / 2, 8 / 2));
            let c = tesseract_matmul(&grid, ctx, &a_loc, &b_loc);
            ctx.flush_compute();
            (c.shape(), ctx.clock())
        });
        for (shape_c, clock) in &out.results {
            assert_eq!(*shape_c, (4, 4));
            assert!(*clock > 0.0);
        }
        // Broadcasts happened: 2 per step × q steps × (rows+cols groups).
        assert!(out.comm.get(tesseract_comm::CollectiveOp::Broadcast).calls > 0);
    }

    #[test]
    fn dense_and_shadow_report_identical_makespan() {
        let shape = GridShape::new(2, 1);
        let a = random(8, 8, 40);
        let b = random(8, 8, 41);
        let dense = Cluster::a100(shape.size()).run(|ctx| {
            let grid = TesseractGrid::new(ctx, shape, 0);
            let (i, j, k) = grid.coords;
            let a_loc = Arc::new(DenseTensor::from_matrix(a_block(&a, shape, i, j, k)));
            let b_loc = Arc::new(DenseTensor::from_matrix(b_block(&b, shape, i, j)));
            let _ = tesseract_matmul(&grid, ctx, &a_loc, &b_loc);
        });
        let shadow = Cluster::a100(shape.size()).run(|ctx| {
            let grid = TesseractGrid::new(ctx, shape, 0);
            let a_loc = Arc::new(ShadowTensor::new(4, 4));
            let b_loc = Arc::new(ShadowTensor::new(4, 4));
            let _ = tesseract_matmul(&grid, ctx, &a_loc, &b_loc);
        });
        assert!((dense.makespan() - shadow.makespan()).abs() < 1e-15);
        assert_eq!(dense.comm.total_wire_bytes(), shadow.comm.total_wire_bytes());
    }

    /// Exact (bitwise) equality — the SP schedule promises bit-identical
    /// results, not merely close ones.
    fn assert_bits_eq(got: &Matrix, want: &Matrix) {
        assert_eq!(got.shape(), want.shape(), "shape mismatch");
        for (g, w) in got.data().iter().zip(want.data()) {
            assert_eq!(g.to_bits(), w.to_bits(), "bitwise mismatch: {g} vs {w}");
        }
    }

    #[test]
    fn sp_scatter_gather_roundtrip_is_identity() {
        for (q, d) in [(1usize, 1usize), (2, 1), (2, 2), (3, 2)] {
            let shape = GridShape::new(q, d);
            let rows = 2 * q; // per-rank band rows R, divisible by q
            let cols = 3 * q;
            Cluster::a100(shape.size()).run(|ctx| {
                let grid = TesseractGrid::new(ctx, shape, 0);
                let (i, j, k) = grid.coords;
                let mut rng = Xoshiro256StarStar::seed_from_u64(50 + (i * 16 + j * 4 + k) as u64);
                let x = DenseTensor::from_matrix(Matrix::random_uniform(
                    rows,
                    cols / q,
                    -1.0,
                    1.0,
                    &mut rng,
                ));
                let sp = sp_scatter_to_seq(&grid, ctx, x.clone());
                assert_eq!(sp.shape(), (rows / q, cols));
                let back = sp_gather_from_seq(&grid, ctx, sp);
                assert_bits_eq(back.matrix(), x.matrix());
            });
        }
    }

    #[test]
    fn sp_in_forward_is_bitwise_identical_to_dense() {
        for (q, d, seed) in [(2usize, 1usize, 60u64), (2, 2, 61), (3, 2, 62)] {
            let shape = GridShape::new(q, d);
            let (a_rows, inner, c_cols) = (2 * q * q * d, 2 * q, 3 * q);
            let a = random(a_rows, inner, seed);
            let b = random(inner, c_cols, seed + 100);
            Cluster::a100(shape.size()).run(|ctx| {
                let grid = TesseractGrid::new(ctx, shape, 0);
                let (i, j, k) = grid.coords;
                let a_loc = Arc::new(DenseTensor::from_matrix(a_block(&a, shape, i, j, k)));
                let b_loc = Arc::new(DenseTensor::from_matrix(b_block(&b, shape, i, j)));
                let dense = tesseract_matmul(&grid, ctx, &a_loc, &b_loc);
                let x_sp = sp_scatter_to_seq(&grid, ctx, (*a_loc).clone());
                let sp = tesseract_matmul_sp_in(&grid, ctx, &x_sp, &b_loc);
                assert_bits_eq(sp.matrix(), dense.matrix());
            });
        }
    }

    #[test]
    fn nt_sp_backward_is_bitwise_identical_to_dense() {
        for (q, d, seed) in [(2usize, 1usize, 70u64), (2, 2, 71), (3, 2, 72)] {
            let shape = GridShape::new(q, d);
            let (a_rows, b_rows, c_cols) = (2 * q * q * d, 2 * q, 3 * q);
            let a = random(a_rows, c_cols, seed);
            let b = random(b_rows, c_cols, seed + 100);
            Cluster::a100(shape.size()).run(|ctx| {
                let grid = TesseractGrid::new(ctx, shape, 0);
                let (i, j, k) = grid.coords;
                let a_loc = DenseTensor::from_matrix(a_block(&a, shape, i, j, k));
                let b_loc = Arc::new(DenseTensor::from_matrix(b_block(&b, shape, i, j)));
                let dense = tesseract_matmul_nt(&grid, ctx, &a_loc, &b_loc);
                let dx_sp = tesseract_matmul_nt_sp(&grid, ctx, &a_loc, &b_loc);
                // Re-shard the sequence-sharded gradient back to the dense
                // layout: a pure relayout, so bits must match exactly.
                let back = sp_gather_from_seq(&grid, ctx, dx_sp);
                assert_bits_eq(back.matrix(), dense.matrix());
            });
        }
    }

    #[test]
    fn tn_sp_backward_is_bitwise_identical_to_dense() {
        for (q, d, seed) in [(2usize, 1usize, 80u64), (2, 2, 81), (3, 2, 82)] {
            let shape = GridShape::new(q, d);
            let (a_rows, b_cols, c_cols) = (2 * q * q * d, 2 * q, 3 * q);
            let a = random(a_rows, b_cols, seed);
            let b = random(a_rows, c_cols, seed + 100);
            Cluster::a100(shape.size()).run(|ctx| {
                let grid = TesseractGrid::new(ctx, shape, 0);
                let (i, j, k) = grid.coords;
                let a_loc = Arc::new(DenseTensor::from_matrix(a_block(&a, shape, i, j, k)));
                let b_loc = DenseTensor::from_matrix(a_block(&b, shape, i, j, k));
                let dense = tesseract_matmul_tn(&grid, ctx, &a_loc, &b_loc, true);
                let x_sp = sp_scatter_to_seq(&grid, ctx, (*a_loc).clone());
                let sp = tesseract_matmul_tn_sp(&grid, ctx, &x_sp, &b_loc, true);
                assert_bits_eq(sp.matrix(), dense.matrix());
            });
        }
    }

    #[test]
    fn sp_keeps_the_collective_count_flat() {
        // Forward: per matmul the dense path issues q row broadcasts +
        // q column broadcasts; the SP path swaps each row broadcast for a
        // row all-gather. Total collective calls must be equal.
        let shape = GridShape::new(2, 2);
        let count = |sp: bool| {
            let out = Cluster::a100(shape.size()).run(|ctx| {
                let grid = TesseractGrid::new(ctx, shape, 0);
                let a_loc = Arc::new(ShadowTensor::new(4, 4));
                let b_loc = Arc::new(ShadowTensor::new(4, 4));
                if sp {
                    let x_sp = sp_scatter_to_seq(&grid, ctx, (*a_loc).clone());
                    let _ = tesseract_matmul_sp_in(&grid, ctx, &x_sp, &b_loc);
                } else {
                    let _ = tesseract_matmul(&grid, ctx, &a_loc, &b_loc);
                }
            });
            let total: u64 =
                tesseract_comm::CollectiveOp::ALL.iter().map(|op| out.comm.get(*op).calls).sum();
            let a2a = out.comm.get(tesseract_comm::CollectiveOp::AllToAll).calls;
            (total, a2a)
        };
        let (dense_total, dense_a2a) = count(false);
        let (sp_total, sp_a2a) = count(true);
        assert_eq!(dense_a2a, 0);
        // The SP run pays exactly the one boundary all-to-all extra; the
        // SUMMA loop itself stays flat.
        assert_eq!(sp_total - sp_a2a, dense_total);
    }
}
