//! Closed-form communication and memory analysis (paper §1, §3.1,
//! Eq. 7–12): transmission counts of Cannon / 2.5-D / Tesseract, the
//! per-processor memory formulas for Tesseract vs. Megatron-LM, per-layer
//! communication-time expressions and the isoefficiency functions.
//!
//! The `comm_cost_table` and `memory_table` binaries evaluate these and
//! cross-check them against byte counts *measured* by the simulated
//! cluster's collectives.

/// §3.1: Cannon's algorithm transfer count for one matmul on `p` GPUs:
/// `2·p^{3/2} − 2·p^{1/2}`.
pub fn transmissions_cannon(p: usize) -> f64 {
    let p = p as f64;
    2.0 * p.powf(1.5) - 2.0 * p.sqrt()
}

/// §3.1: 2.5-D algorithm transfer count: `2·p − 2·p^{1/3}`.
pub fn transmissions_25d(p: usize) -> f64 {
    let p = p as f64;
    2.0 * p - 2.0 * p.powf(1.0 / 3.0)
}

/// §3.1: Tesseract transfer count at `d = q` (so `p = q³`): `2·p^{2/3}`.
pub fn transmissions_tesseract_cube(p: usize) -> f64 {
    (p as f64).powf(2.0 / 3.0) * 2.0
}

/// Eq. 7/8: per-processor element count for one Tesseract matmul of
/// `[a, b] × [b, c]` on a `[q, q, d]` grid:
/// `ab/p + bcd/p + ac/p` with `p = q²d`.
pub fn memory_tesseract(a: usize, b: usize, c: usize, q: usize, d: usize) -> f64 {
    let p = (q * q * d) as f64;
    let (a, b, c, d) = (a as f64, b as f64, c as f64, d as f64);
    a * b / p + b * c * d / p + a * c / p
}

/// Eq. 9/10: per-processor element count for Megatron-LM:
/// `ab + bc/p + ac/p` (the full activation is replicated on every GPU).
pub fn memory_megatron(a: usize, b: usize, c: usize, p: usize) -> f64 {
    let p = p as f64;
    let (a, b, c) = (a as f64, b as f64, c as f64);
    a * b + b * c / p + a * c / p
}

/// §3.1: Megatron-LM per-layer communication time
/// `2·β·(p−1)·b·s·h / p` (two all-reduces of the `[b·s, h]` activation).
pub fn comm_time_megatron(beta: f64, p: usize, b: usize, s: usize, h: usize) -> f64 {
    let pf = p as f64;
    2.0 * beta * (pf - 1.0) * (b * s * h) as f64 / pf
}

/// §3.1: Optimus (2-D) per-layer communication time as printed in the
/// paper: `2·β·b·s·h·q·log(p) / p` on a `[q, q]` mesh with `p = q²`.
/// (The paper's expression contains `h²`; dimensional analysis of SUMMA
/// broadcast volumes gives `h` — each of the `q` broadcast steps moves
/// `[b·s/q, h/q]` blocks — so we expose the dimensionally consistent form
/// and note the discrepancy in EXPERIMENTS.md.)
pub fn comm_time_optimus(beta: f64, p: usize, b: usize, s: usize, h: usize) -> f64 {
    let pf = p as f64;
    let q = pf.sqrt();
    2.0 * beta * (b * s * h) as f64 * q * pf.log2() / pf
}

/// Tesseract per-layer communication time: the Optimus broadcast pattern on
/// a `q×q` layer but with the batch (rows) further divided by `d`, i.e.
/// volume reduced by the depth factor.
pub fn comm_time_tesseract(beta: f64, q: usize, d: usize, b: usize, s: usize, h: usize) -> f64 {
    let p = (q * q * d) as f64;
    let qf = q as f64;
    2.0 * beta * (b * s * h) as f64 * qf * p.log2() / p / d as f64
}

/// §3.1 isoefficiency functions: the rate at which problem size must grow
/// with `p` to hold efficiency constant. Returns `W(p)` up to a constant.
pub fn isoefficiency_megatron(p: usize) -> f64 {
    (p as f64).powi(3)
}

/// Optimus: `W ~ (√p · log p)³`.
pub fn isoefficiency_optimus(p: usize) -> f64 {
    let pf = p as f64;
    (pf.sqrt() * pf.log2()).powi(3)
}

/// Eq. 1/2 and Eq. 4/5: bandwidth and latency lower bounds.
/// Cannon (2-D): `W = Ω(n²/√p)`, `S = Ω(√p)`.
pub fn lower_bounds_2d(n: usize, p: usize) -> (f64, f64) {
    let (n, p) = (n as f64, p as f64);
    (n * n / p.sqrt(), p.sqrt())
}

/// 2.5-D with replication `d`: `W = Ω(n²/√(d·p))`, `S = Ω(√p / d^{3/2})`.
pub fn lower_bounds_25d(n: usize, p: usize, d: usize) -> (f64, f64) {
    let (n, p, d) = (n as f64, p as f64, d as f64);
    (n * n / (d * p).sqrt(), p.sqrt() / d.powf(1.5))
}

/// Parallel efficiency from Eq. 12: `1 / (1 + T_comm · p / W)`.
pub fn efficiency(serial_work: f64, p: usize, t_comm: f64) -> f64 {
    1.0 / (1.0 + t_comm * p as f64 / serial_work)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §1: "with 64 processors, Cannon needs 31.5× the communication of
    /// Tesseract, and 2.5-D needs 3.75×".
    #[test]
    fn paper_ratio_claims_at_p64() {
        let cannon = transmissions_cannon(64);
        let d25 = transmissions_25d(64);
        let tess = transmissions_tesseract_cube(64);
        assert!((cannon / tess - 31.5).abs() < 1e-9, "cannon ratio {}", cannon / tess);
        assert!((d25 / tess - 3.75).abs() < 1e-9, "2.5-D ratio {}", d25 / tess);
    }

    /// §3.1: Tesseract requires fewer transmissions than Cannon and 2.5-D
    /// once more than a handful of GPUs are involved, and its advantage
    /// grows with q (p = q³).
    #[test]
    fn transmission_advantage_grows_with_q() {
        let at = |q: usize| {
            let p = q * q * q;
            (transmissions_cannon(p), transmissions_25d(p), transmissions_tesseract_cube(p))
        };
        let mut prev_cannon_ratio = 0.0;
        let mut prev_25d_ratio = 0.0;
        for q in 2..=8 {
            let (cannon, d25, tess) = at(q);
            assert!(cannon > tess, "q={q}: Tesseract beats Cannon");
            assert!(d25 > tess, "q={q}: Tesseract beats 2.5-D");
            assert!(cannon / tess > prev_cannon_ratio, "Cannon ratio grows");
            assert!(d25 / tess > prev_25d_ratio, "2.5-D ratio grows");
            prev_cannon_ratio = cannon / tess;
            prev_25d_ratio = d25 / tess;
        }
    }

    /// Eq. 8 vs Eq. 10: Megatron stores the full `[a, b]` activation;
    /// Tesseract stores `1/p` of it.
    #[test]
    fn tesseract_memory_is_smaller_for_large_activations() {
        let (a, b, c) = (6144, 3072, 12288);
        let (q, d) = (4, 4);
        let p = q * q * d;
        let tess = memory_tesseract(a, b, c, q, d);
        let mega = memory_megatron(a, b, c, p);
        assert!(tess < mega, "tesseract {} vs megatron {}", tess, mega);
        // The activation term dominates Megatron's footprint; Tesseract's
        // only overhead is the d-fold weight replication (Eq. 8), so the
        // ratio is large: here a·b/p + b·c·d/p + a·c/p vs a·b + ... ≈ 5.4×.
        assert!(mega / tess > 5.0);
    }

    #[test]
    fn memory_formulas_match_hand_computation() {
        // [8, 4] x [4, 6] on [2, 2, 2]: p = 8.
        let tess = memory_tesseract(8, 4, 6, 2, 2);
        assert!((tess - (32.0 / 8.0 + 24.0 * 2.0 / 8.0 + 48.0 / 8.0)).abs() < 1e-12);
        let mega = memory_megatron(8, 4, 6, 8);
        assert!((mega - (32.0 + 3.0 + 6.0)).abs() < 1e-12);
    }

    #[test]
    fn megatron_comm_time_saturates_with_p() {
        let t4 = comm_time_megatron(1e-9, 4, 12, 512, 3072);
        let t64 = comm_time_megatron(1e-9, 64, 12, 512, 3072);
        // (p-1)/p → 1: all-reduce volume stops shrinking with more GPUs.
        assert!(t64 > t4);
        assert!(t64 / t4 < 1.4);
    }

    #[test]
    fn depth_reduces_tesseract_comm_time() {
        let t_d1 = comm_time_tesseract(1e-9, 8, 1, 384, 512, 8192);
        let t_d4 = comm_time_tesseract(1e-9, 4, 4, 768, 512, 4096);
        // [4,4,4] moves less than [8,8,1] at the same p = 64 (§4.2).
        assert!(t_d4 < t_d1, "{t_d4} vs {t_d1}");
    }

    #[test]
    fn isoefficiency_ordering() {
        // Megatron's isoefficiency grows faster than Optimus's beyond the
        // small-p regime where the log factor dominates.
        assert!(isoefficiency_megatron(4096) > isoefficiency_optimus(4096));
    }

    #[test]
    fn lower_bounds_shrink_with_replication() {
        let (w2d, s2d) = lower_bounds_2d(4096, 64);
        let (w25, s25) = lower_bounds_25d(4096, 64, 4);
        assert!(w25 < w2d);
        assert!(s25 < s2d);
    }

    #[test]
    fn efficiency_is_one_without_comm() {
        assert_eq!(efficiency(1e9, 64, 0.0), 1.0);
        assert!(efficiency(1e9, 64, 1e6) < 1.0);
    }
}
