//! Tesseract-parallel feed-forward (MLP) layer (paper §3.2.1, Figure 5a).
//!
//! Two linear layers `[h, 4h]` and `[4h, h]` with a GELU in between, all on
//! the `[q, q, d]` grid. Parameter matrices stay resident in their owning
//! processors between steps ("store the parameter matrices inside each
//! processor for the next computation to avoid waste of communication").

use std::sync::Arc;

use tesseract_comm::{Payload, RankCtx};
use tesseract_tensor::TensorLike;

use crate::grid::TesseractGrid;
use crate::layers::linear::{SpMode, TesseractLinear};
use crate::module::{Module, ParamRef, Tape};

/// Feed-forward block: `fc2(gelu(fc1(x)))`.
pub struct TesseractMlp<T> {
    pub fc1: TesseractLinear<T>,
    pub fc2: TesseractLinear<T>,
    /// Tape of pre-activation blocks (GELU backward needs the input).
    tape: Tape<Arc<T>>,
}

impl<T: TensorLike + Payload> TesseractMlp<T> {
    /// `hidden → mlp_hidden → hidden`, weights at `param_id` and
    /// `param_id + 1` (biases are zero-initialized).
    pub fn new(
        ctx: &RankCtx,
        grid: &TesseractGrid,
        hidden: usize,
        mlp_hidden: usize,
        with_bias: bool,
        seed: u64,
        param_id: u64,
    ) -> Self {
        Self::new_with_sp(ctx, grid, hidden, mlp_hidden, with_bias, seed, param_id, false)
    }

    /// [`TesseractMlp::new`] with an explicit sequence-parallel mode: when
    /// `sp` is set, `fc1` consumes the `[R/q, h]` row chunk
    /// ([`SpMode::SeqIn`]) and `fc2` re-shards its output
    /// ([`SpMode::SeqOut`]); the GELU in between stays dense.
    #[allow(clippy::too_many_arguments)]
    pub fn new_with_sp(
        ctx: &RankCtx,
        grid: &TesseractGrid,
        hidden: usize,
        mlp_hidden: usize,
        with_bias: bool,
        seed: u64,
        param_id: u64,
        sp: bool,
    ) -> Self {
        let mut fc1 =
            TesseractLinear::new(ctx, grid, hidden, mlp_hidden, with_bias, seed, param_id);
        let mut fc2 =
            TesseractLinear::new(ctx, grid, mlp_hidden, hidden, with_bias, seed, param_id + 1);
        if sp {
            fc1 = fc1.with_sp_mode(SpMode::SeqIn);
            fc2 = fc2.with_sp_mode(SpMode::SeqOut);
        }
        Self { fc1, fc2, tape: Tape::new() }
    }

    /// Inference forward: `fc2(gelu(fc1(x)))` with no tape pushes.
    pub fn forward_infer(&self, grid: &TesseractGrid, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        let pre = self.fc1.forward_infer(grid, ctx, x);
        let act = Arc::new(pre.gelu(&mut ctx.meter));
        self.fc2.forward_infer(grid, ctx, &act)
    }

    /// Activations currently queued across this block's tapes.
    pub fn tape_depth(&self) -> usize {
        self.tape.depth() + self.fc1.tape_depth() + self.fc2.tape_depth()
    }
}

impl<T: TensorLike + Payload> Module<T> for TesseractMlp<T> {
    fn name(&self) -> &'static str {
        "mlp"
    }

    fn forward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        let pre = self.fc1.forward(grid, ctx, x);
        let act = Arc::new(pre.gelu(&mut ctx.meter));
        let bytes = pre.byte_size() as u64;
        self.tape.push_tracked(ctx, bytes, pre);
        self.fc2.forward(grid, ctx, &act)
    }

    fn backward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, dy: &Arc<T>) -> Arc<T> {
        let d_act = self.fc2.backward(grid, ctx, dy);
        let pre = self.tape.pop_tracked(ctx, "TesseractMlp");
        let d_pre = Arc::new(pre.gelu_backward(&d_act, &mut ctx.meter));
        self.fc1.backward(grid, ctx, &d_pre)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_, T>)) {
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }

    fn zero_grad(&mut self) {
        self.tape.debug_assert_balanced("TesseractMlp");
        self.fc1.zero_grad();
        self.fc2.zero_grad();
    }

    fn reset_tape(&mut self, ctx: &mut RankCtx) {
        self.tape.clear_tracked(ctx);
        self.fc1.reset_tape(ctx);
        self.fc2.reset_tape(ctx);
    }
}
