//! Distributed layer normalization (paper §3.2.2, Eq. 13/14).
//!
//! The hidden dimension is split across the `q` columns of the grid, so the
//! per-row statistics `ΣX` and `ΣX²` are computed locally and **all-reduced
//! along the row** (one fused `[rows, 2]` all-reduce). The backward pass
//! all-reduces `Σ X̂ᵢ(δJ/δX̂)ᵢ` and `Σ(δJ/δX̂)ᵢ` the same way and applies
//! Eq. 14 with the taped `X̂` and `1/sqrt(Var+ε)`.

use std::sync::Arc;

use tesseract_comm::{Payload, RankCtx};
use tesseract_tensor::TensorLike;

use crate::grid::TesseractGrid;
use crate::module::{Module, ParamRef, Tape};

/// Parameter-free distributed layer norm over the (globally split) hidden
/// dimension.
pub struct TesseractLayerNorm<T> {
    /// Global hidden size `h` (local tensors have `h/q` columns, or the
    /// full `h` in sequence-parallel mode).
    pub hidden_global: usize,
    pub eps: f32,
    /// Sequence-parallel mode: the input is this rank's `[R/q, h]` row
    /// chunk (full hidden width), so the per-row statistics need **no
    /// collective at all** — the row-fiber all-reduce of the dense layout
    /// is replaced by a local fold over the `q` column chunks in the same
    /// ascending order, which keeps the results bitwise identical.
    sp: bool,
    /// Tape of (x̂ local block, inv_std column vector) per microbatch.
    /// `x̂` is the same allocation handed to the next layer, so taping it
    /// costs one `Arc` bump rather than a deep copy.
    tape: Tape<(Arc<T>, T)>,
}

impl<T: TensorLike + Payload> TesseractLayerNorm<T> {
    pub fn new(hidden_global: usize, eps: f32) -> Self {
        Self::new_sp(hidden_global, eps, false)
    }

    /// Builds the layer in dense (`sp = false`) or sequence-parallel
    /// (`sp = true`) layout.
    pub fn new_sp(hidden_global: usize, eps: f32, sp: bool) -> Self {
        Self { hidden_global, eps, sp, tape: Tape::new() }
    }

    /// Folds per-column-chunk `[rows, 2]` packed statistics in ascending
    /// chunk order — the identical left fold (same combine op, same order)
    /// the dense row-fiber all-reduce performs over per-member packed
    /// statistics, so the result is bitwise equal to the dense one. The
    /// closure receives the column range `[c0, c1)` of chunk `c` and
    /// returns that chunk's packed `[rows, 2]` statistics.
    fn fold_chunk_stats(
        q: usize,
        width: usize,
        ctx: &mut RankCtx,
        mut stat: impl FnMut(usize, usize, &mut RankCtx) -> T,
    ) -> T {
        debug_assert_eq!(width % q, 0, "layernorm sp: width not divisible by q");
        let wc = width / q;
        let mut acc: Option<T> = None;
        for c in 0..q {
            let packed = stat(c * wc, (c + 1) * wc, ctx);
            match acc.as_mut() {
                None => acc = Some(packed),
                Some(a) => a.reduce_add_inplace(&packed),
            }
        }
        acc.expect("q >= 1")
    }

    /// Inference forward: identical statistics and normalization to
    /// [`Module::forward`] (bitwise — per-row math over the same row-group
    /// all-reduce), but `&self` and no tape push.
    pub fn forward_infer(&self, grid: &TesseractGrid, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        assert!(!self.sp, "forward_infer runs the dense serving path");
        let n = self.hidden_global as f32;
        assert_eq!(
            x.cols() * grid.shape.q,
            self.hidden_global,
            "layernorm: local width times q must equal global hidden"
        );
        let s1 = x.row_sums(&mut ctx.meter);
        let s2 = x.row_sums_of_squares(&mut ctx.meter);
        let packed = T::concat_cols(&[s1, s2], &mut ctx.meter);
        let packed = grid.row.all_reduce_shared(ctx, packed);
        let s1 = packed.slice_cols(0, 1, &mut ctx.meter);
        let s2 = packed.slice_cols(1, 2, &mut ctx.meter);
        let mean = s1.scale(1.0 / n, &mut ctx.meter);
        let mean_sq = mean.hadamard(&mean, &mut ctx.meter);
        let var = s2.scale(1.0 / n, &mut ctx.meter).sub(&mean_sq, &mut ctx.meter);
        let inv_std = var.rsqrt_add(self.eps, &mut ctx.meter);
        Arc::new(x.sub_colvec(&mean, &mut ctx.meter).mul_colvec(&inv_std, &mut ctx.meter))
    }

    /// Activations currently queued on the tape (zero outside training).
    pub fn tape_depth(&self) -> usize {
        self.tape.depth()
    }
}

impl<T: TensorLike + Payload> Module<T> for TesseractLayerNorm<T> {
    fn name(&self) -> &'static str {
        "layernorm"
    }

    /// Forward: `X̂ = (X − E[X]) / sqrt(Var[X] + ε)`. Dense layout
    /// all-reduces the packed statistics along the row fiber; the
    /// sequence-parallel layout holds the full hidden width locally and
    /// folds per-chunk statistics in the identical order, with **zero**
    /// collectives.
    fn forward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        let n = self.hidden_global as f32;
        let q = grid.shape.q;
        let packed: T = if self.sp {
            assert_eq!(
                x.cols(),
                self.hidden_global,
                "layernorm sp: input must carry the full hidden width"
            );
            Self::fold_chunk_stats(q, x.cols(), ctx, |c0, c1, ctx| {
                let xc = x.slice_cols(c0, c1, &mut ctx.meter);
                let s1 = xc.row_sums(&mut ctx.meter);
                let s2 = xc.row_sums_of_squares(&mut ctx.meter);
                T::concat_cols(&[s1, s2], &mut ctx.meter)
            })
        } else {
            assert_eq!(
                x.cols() * q,
                self.hidden_global,
                "layernorm: local width times q must equal global hidden"
            );
            let s1 = x.row_sums(&mut ctx.meter);
            let s2 = x.row_sums_of_squares(&mut ctx.meter);
            let packed = T::concat_cols(&[s1, s2], &mut ctx.meter);
            (*grid.row.all_reduce_shared(ctx, packed)).clone()
        };
        let s1 = packed.slice_cols(0, 1, &mut ctx.meter);
        let s2 = packed.slice_cols(1, 2, &mut ctx.meter);
        let mean = s1.scale(1.0 / n, &mut ctx.meter);
        let mean_sq = mean.hadamard(&mean, &mut ctx.meter);
        let var = s2.scale(1.0 / n, &mut ctx.meter).sub(&mean_sq, &mut ctx.meter);
        let inv_std = var.rsqrt_add(self.eps, &mut ctx.meter);
        let xhat =
            Arc::new(x.sub_colvec(&mean, &mut ctx.meter).mul_colvec(&inv_std, &mut ctx.meter));
        let bytes = (xhat.byte_size() + inv_std.byte_size()) as u64;
        self.tape.push_tracked(ctx, bytes, (Arc::clone(&xhat), inv_std));
        xhat
    }

    /// Backward (Eq. 14): `dX = (dY − (X̂·Σ(X̂∘dY) + Σ dY)/n) ∘ inv_std`,
    /// with the same dense-all-reduce vs. sequence-parallel local-fold
    /// split as the forward.
    fn backward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, dy: &Arc<T>) -> Arc<T> {
        let (xhat, inv_std) = self.tape.pop_tracked(ctx, "TesseractLayerNorm");
        let n = self.hidden_global as f32;
        let packed: T = if self.sp {
            let prod = xhat.hadamard(dy, &mut ctx.meter);
            Self::fold_chunk_stats(grid.shape.q, dy.cols(), ctx, |c0, c1, ctx| {
                let t1 = prod.slice_cols(c0, c1, &mut ctx.meter).row_sums(&mut ctx.meter);
                let t2 = dy.slice_cols(c0, c1, &mut ctx.meter).row_sums(&mut ctx.meter);
                T::concat_cols(&[t1, t2], &mut ctx.meter)
            })
        } else {
            let t1 = xhat.hadamard(dy, &mut ctx.meter).row_sums(&mut ctx.meter);
            let t2 = dy.row_sums(&mut ctx.meter);
            let packed = T::concat_cols(&[t1, t2], &mut ctx.meter);
            (*grid.row.all_reduce_shared(ctx, packed)).clone()
        };
        let t1 = packed.slice_cols(0, 1, &mut ctx.meter);
        let t2 = packed.slice_cols(1, 2, &mut ctx.meter);
        let correction = xhat
            .mul_colvec(&t1, &mut ctx.meter)
            .add_colvec(&t2, &mut ctx.meter)
            .scale(1.0 / n, &mut ctx.meter);
        Arc::new(dy.sub(&correction, &mut ctx.meter).mul_colvec(&inv_std, &mut ctx.meter))
    }

    // No parameters: the default (empty) visit_params applies.

    fn zero_grad(&mut self) {
        self.tape.debug_assert_balanced("TesseractLayerNorm");
    }

    fn reset_tape(&mut self, ctx: &mut RankCtx) {
        self.tape.clear_tracked(ctx);
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(ParamRef<'_, T>)) {}
}
