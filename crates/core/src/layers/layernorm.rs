//! Distributed layer normalization (paper §3.2.2, Eq. 13/14).
//!
//! The hidden dimension is split across the `q` columns of the grid, so the
//! per-row statistics `ΣX` and `ΣX²` are computed locally and **all-reduced
//! along the row** (one fused `[rows, 2]` all-reduce). The backward pass
//! all-reduces `Σ X̂ᵢ(δJ/δX̂)ᵢ` and `Σ(δJ/δX̂)ᵢ` the same way and applies
//! Eq. 14 with the taped `X̂` and `1/sqrt(Var+ε)`.

use std::sync::Arc;

use tesseract_comm::{Payload, RankCtx};
use tesseract_tensor::TensorLike;

use crate::grid::TesseractGrid;
use crate::module::{Module, ParamRef, Tape};

/// Parameter-free distributed layer norm over the (globally split) hidden
/// dimension.
pub struct TesseractLayerNorm<T> {
    /// Global hidden size `h` (local tensors have `h/q` columns).
    pub hidden_global: usize,
    pub eps: f32,
    /// Tape of (x̂ local block, inv_std column vector) per microbatch.
    /// `x̂` is the same allocation handed to the next layer, so taping it
    /// costs one `Arc` bump rather than a deep copy.
    tape: Tape<(Arc<T>, T)>,
}

impl<T: TensorLike + Payload> TesseractLayerNorm<T> {
    pub fn new(hidden_global: usize, eps: f32) -> Self {
        Self { hidden_global, eps, tape: Tape::new() }
    }

    /// Inference forward: identical statistics and normalization to
    /// [`Module::forward`] (bitwise — per-row math over the same row-group
    /// all-reduce), but `&self` and no tape push.
    pub fn forward_infer(&self, grid: &TesseractGrid, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        let n = self.hidden_global as f32;
        assert_eq!(
            x.cols() * grid.shape.q,
            self.hidden_global,
            "layernorm: local width times q must equal global hidden"
        );
        let s1 = x.row_sums(&mut ctx.meter);
        let s2 = x.row_sums_of_squares(&mut ctx.meter);
        let packed = T::concat_cols(&[s1, s2], &mut ctx.meter);
        let packed = grid.row.all_reduce_shared(ctx, packed);
        let s1 = packed.slice_cols(0, 1, &mut ctx.meter);
        let s2 = packed.slice_cols(1, 2, &mut ctx.meter);
        let mean = s1.scale(1.0 / n, &mut ctx.meter);
        let mean_sq = mean.hadamard(&mean, &mut ctx.meter);
        let var = s2.scale(1.0 / n, &mut ctx.meter).sub(&mean_sq, &mut ctx.meter);
        let inv_std = var.rsqrt_add(self.eps, &mut ctx.meter);
        Arc::new(x.sub_colvec(&mean, &mut ctx.meter).mul_colvec(&inv_std, &mut ctx.meter))
    }

    /// Activations currently queued on the tape (zero outside training).
    pub fn tape_depth(&self) -> usize {
        self.tape.depth()
    }
}

impl<T: TensorLike + Payload> Module<T> for TesseractLayerNorm<T> {
    fn name(&self) -> &'static str {
        "layernorm"
    }

    /// Forward: `X̂ = (X − E[X]) / sqrt(Var[X] + ε)` with row-group
    /// all-reduced statistics.
    fn forward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        let n = self.hidden_global as f32;
        assert_eq!(
            x.cols() * grid.shape.q,
            self.hidden_global,
            "layernorm: local width times q must equal global hidden"
        );
        let s1 = x.row_sums(&mut ctx.meter);
        let s2 = x.row_sums_of_squares(&mut ctx.meter);
        let packed = T::concat_cols(&[s1, s2], &mut ctx.meter);
        let packed = grid.row.all_reduce_shared(ctx, packed);
        let s1 = packed.slice_cols(0, 1, &mut ctx.meter);
        let s2 = packed.slice_cols(1, 2, &mut ctx.meter);
        let mean = s1.scale(1.0 / n, &mut ctx.meter);
        let mean_sq = mean.hadamard(&mean, &mut ctx.meter);
        let var = s2.scale(1.0 / n, &mut ctx.meter).sub(&mean_sq, &mut ctx.meter);
        let inv_std = var.rsqrt_add(self.eps, &mut ctx.meter);
        let xhat =
            Arc::new(x.sub_colvec(&mean, &mut ctx.meter).mul_colvec(&inv_std, &mut ctx.meter));
        self.tape.push((Arc::clone(&xhat), inv_std));
        xhat
    }

    /// Backward (Eq. 14): `dX = (dY − (X̂·Σ(X̂∘dY) + Σ dY)/n) ∘ inv_std`.
    fn backward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, dy: &Arc<T>) -> Arc<T> {
        let (xhat, inv_std) = self.tape.pop("TesseractLayerNorm");
        let n = self.hidden_global as f32;
        let t1 = xhat.hadamard(dy, &mut ctx.meter).row_sums(&mut ctx.meter);
        let t2 = dy.row_sums(&mut ctx.meter);
        let packed = T::concat_cols(&[t1, t2], &mut ctx.meter);
        let packed = grid.row.all_reduce_shared(ctx, packed);
        let t1 = packed.slice_cols(0, 1, &mut ctx.meter);
        let t2 = packed.slice_cols(1, 2, &mut ctx.meter);
        let correction = xhat
            .mul_colvec(&t1, &mut ctx.meter)
            .add_colvec(&t2, &mut ctx.meter)
            .scale(1.0 / n, &mut ctx.meter);
        Arc::new(dy.sub(&correction, &mut ctx.meter).mul_colvec(&inv_std, &mut ctx.meter))
    }

    // No parameters: the default (empty) visit_params applies.

    fn zero_grad(&mut self) {
        self.tape.debug_assert_balanced("TesseractLayerNorm");
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(ParamRef<'_, T>)) {}
}
