//! A full Tesseract-parallel Transformer layer and stack (paper §3.2):
//! pre-norm residual blocks `x + Attn(LN(x))` and `x + MLP(LN(x))`, the
//! architecture Megatron-LM adapted ("the whole model consists of multiple
//! identical Transformer layers"). Residual adds are local (§3.2.2).

use std::sync::Arc;

use tesseract_comm::{Payload, RankCtx};
use tesseract_tensor::TensorLike;

use crate::config::TransformerConfig;
use crate::grid::TesseractGrid;
use crate::infer::{InferBatch, LayerKv};
use crate::layers::attention::TesseractAttention;
use crate::layers::layernorm::TesseractLayerNorm;
use crate::layers::mlp::TesseractMlp;
use crate::module::{Module, ParamRef, Sequential};

/// Number of parameter ids one Transformer layer consumes (Wq, Wk, Wv, Wo,
/// fc1, fc2).
pub const PARAM_IDS_PER_LAYER: u64 = 6;

/// One Transformer layer on the `[q, q, d]` grid.
pub struct TesseractTransformerLayer<T> {
    pub ln1: TesseractLayerNorm<T>,
    pub attn: TesseractAttention<T>,
    pub ln2: TesseractLayerNorm<T>,
    pub mlp: TesseractMlp<T>,
}

impl<T: TensorLike + Payload> TesseractTransformerLayer<T> {
    pub fn new(
        ctx: &RankCtx,
        grid: &TesseractGrid,
        cfg: TransformerConfig,
        with_bias: bool,
        seed: u64,
        param_id: u64,
    ) -> Self {
        cfg.validate_for_grid(grid.shape.q, grid.shape.d);
        Self {
            ln1: TesseractLayerNorm::new(cfg.hidden, cfg.eps),
            attn: TesseractAttention::new(ctx, grid, cfg, with_bias, seed, param_id),
            ln2: TesseractLayerNorm::new(cfg.hidden, cfg.eps),
            mlp: TesseractMlp::new(
                ctx,
                grid,
                cfg.hidden,
                cfg.mlp_hidden(),
                with_bias,
                seed,
                param_id + 4,
            ),
        }
    }

    /// Inference forward with KV-cached causal attention: the same
    /// pre-norm residual wiring as [`Module::forward`], no tape pushes.
    /// `layer_idx` selects this layer's [`LayerKv`] slice out of each
    /// request's cache in `batch`.
    pub fn forward_infer(
        &self,
        grid: &TesseractGrid,
        ctx: &mut RankCtx,
        x: &Arc<T>,
        layer_idx: usize,
        batch: &mut InferBatch<T>,
    ) -> Arc<T> {
        let a = self.ln1.forward_infer(grid, ctx, x);
        let kvs: Vec<&mut LayerKv<T>> =
            batch.kvs.iter_mut().map(|rk| &mut rk.layers[layer_idx]).collect();
        let b = self.attn.forward_infer(grid, ctx, &a, &batch.new_rows, kvs);
        let x1 = Arc::new(x.add(&b, &mut ctx.meter));
        let c = self.ln2.forward_infer(grid, ctx, &x1);
        let d = self.mlp.forward_infer(grid, ctx, &c);
        Arc::new(x1.add(&d, &mut ctx.meter))
    }

    /// Activations currently queued across this layer's tapes.
    pub fn tape_depth(&self) -> usize {
        self.ln1.tape_depth()
            + self.attn.tape_depth()
            + self.ln2.tape_depth()
            + self.mlp.tape_depth()
    }
}

impl<T: TensorLike + Payload> Module<T> for TesseractTransformerLayer<T> {
    fn name(&self) -> &'static str {
        "transformer_layer"
    }

    /// Forward over the local `[b/(dq)·s, h/q]` activation block.
    fn forward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        let a = self.ln1.forward(grid, ctx, x);
        let b = self.attn.forward(grid, ctx, &a);
        let x1 = Arc::new(x.add(&b, &mut ctx.meter));
        let c = self.ln2.forward(grid, ctx, &x1);
        let d = self.mlp.forward(grid, ctx, &c);
        Arc::new(x1.add(&d, &mut ctx.meter))
    }

    /// Backward; returns `dX`.
    fn backward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, dy: &Arc<T>) -> Arc<T> {
        // y = x1 + mlp(ln2(x1)), so dy flows both directly and through mlp.
        let d_mlp_in = self.mlp.backward(grid, ctx, dy);
        let d_x1_from_ln2 = self.ln2.backward(grid, ctx, &d_mlp_in);
        let d_x1 = Arc::new(dy.add(&d_x1_from_ln2, &mut ctx.meter));
        // x1 = x + attn(ln1(x)).
        let d_attn_in = self.attn.backward(grid, ctx, &d_x1);
        let d_x_from_ln1 = self.ln1.backward(grid, ctx, &d_attn_in);
        Arc::new(d_x1.add(&d_x_from_ln1, &mut ctx.meter))
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_, T>)) {
        self.attn.visit_params(f);
        self.mlp.visit_params(f);
    }

    fn zero_grad(&mut self) {
        self.ln1.zero_grad();
        self.attn.zero_grad();
        self.ln2.zero_grad();
        self.mlp.zero_grad();
    }
}

/// A stack of `cfg.layers` identical Transformer layers, composed as a
/// [`Sequential`] of [`TesseractTransformerLayer`] modules.
pub struct TesseractTransformer<T> {
    pub layers: Sequential<T>,
    pub cfg: TransformerConfig,
}

impl<T: TensorLike + Payload> TesseractTransformer<T> {
    /// Builds the stack; layer `l` uses param ids
    /// `base_param_id + l·PARAM_IDS_PER_LAYER ..`.
    pub fn new(
        ctx: &RankCtx,
        grid: &TesseractGrid,
        cfg: TransformerConfig,
        with_bias: bool,
        seed: u64,
        base_param_id: u64,
    ) -> Self {
        let mut layers = Sequential::new();
        for l in 0..cfg.layers {
            layers.push_boxed(Box::new(TesseractTransformerLayer::new(
                ctx,
                grid,
                cfg,
                with_bias,
                seed,
                base_param_id + l as u64 * PARAM_IDS_PER_LAYER,
            )));
        }
        Self { layers, cfg }
    }
}

impl<T: TensorLike + Payload> Module<T> for TesseractTransformer<T> {
    fn name(&self) -> &'static str {
        "transformer"
    }

    fn forward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        self.layers.forward(grid, ctx, x)
    }

    fn backward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, dy: &Arc<T>) -> Arc<T> {
        self.layers.backward(grid, ctx, dy)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_, T>)) {
        self.layers.visit_params(f);
    }

    fn zero_grad(&mut self) {
        self.layers.zero_grad();
    }
}
