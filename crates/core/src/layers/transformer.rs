//! A full Tesseract-parallel Transformer layer and stack (paper §3.2):
//! pre-norm residual blocks `x + Attn(LN(x))` and `x + MLP(LN(x))`, the
//! architecture Megatron-LM adapted ("the whole model consists of multiple
//! identical Transformer layers"). Residual adds are local (§3.2.2).

use std::sync::Arc;

use tesseract_comm::{Payload, RankCtx};
use tesseract_tensor::TensorLike;

use crate::config::TransformerConfig;
use crate::grid::TesseractGrid;
use crate::infer::{InferBatch, LayerKv};
use crate::layers::attention::TesseractAttention;
use crate::layers::layernorm::TesseractLayerNorm;
use crate::layers::mlp::TesseractMlp;
use crate::mm::{sp_gather_from_seq, sp_scatter_to_seq};
use crate::module::{CheckpointSegment, Module, ParamRef, Sequential};

/// Execution options of a [`TesseractTransformer`] stack (sequence
/// parallelism and tape recomputation); the default is the original dense,
/// no-recompute behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackOptions {
    /// Shard layer-norm/residual activations along the sequence dimension
    /// over the row fiber. Bitwise identical to the dense layout; the
    /// stack's external contract (dense blocks in, dense blocks out) is
    /// preserved by one boundary all-to-all each way.
    pub sequence_parallel: bool,
    /// Checkpoint every `k` layers: forward keeps only segment inputs,
    /// backward replays each segment before unwinding it. `None` disables
    /// recomputation. `k` need not divide the layer count — the last
    /// segment is simply shorter.
    pub recompute_every: Option<usize>,
}

/// Number of parameter ids one Transformer layer consumes (Wq, Wk, Wv, Wo,
/// fc1, fc2).
pub const PARAM_IDS_PER_LAYER: u64 = 6;

/// One Transformer layer on the `[q, q, d]` grid.
pub struct TesseractTransformerLayer<T> {
    pub ln1: TesseractLayerNorm<T>,
    pub attn: TesseractAttention<T>,
    pub ln2: TesseractLayerNorm<T>,
    pub mlp: TesseractMlp<T>,
}

impl<T: TensorLike + Payload> TesseractTransformerLayer<T> {
    pub fn new(
        ctx: &RankCtx,
        grid: &TesseractGrid,
        cfg: TransformerConfig,
        with_bias: bool,
        seed: u64,
        param_id: u64,
    ) -> Self {
        Self::new_with_sp(ctx, grid, cfg, with_bias, seed, param_id, false)
    }

    /// [`TesseractTransformerLayer::new`] with an explicit sequence-parallel
    /// mode. Under `sp` the layer consumes and produces `[b/(dq)·s/q, h]`
    /// row chunks: the layer norms run collective-free on the full hidden
    /// width, the residual adds stay local, and the four linears
    /// gather/re-shard at the block boundaries.
    pub fn new_with_sp(
        ctx: &RankCtx,
        grid: &TesseractGrid,
        cfg: TransformerConfig,
        with_bias: bool,
        seed: u64,
        param_id: u64,
        sp: bool,
    ) -> Self {
        if sp {
            cfg.validate_for_grid_sp(grid.shape.q, grid.shape.d);
        } else {
            cfg.validate_for_grid(grid.shape.q, grid.shape.d);
        }
        Self {
            ln1: TesseractLayerNorm::new_sp(cfg.hidden, cfg.eps, sp),
            attn: TesseractAttention::new_with_sp(ctx, grid, cfg, with_bias, seed, param_id, sp),
            ln2: TesseractLayerNorm::new_sp(cfg.hidden, cfg.eps, sp),
            mlp: TesseractMlp::new_with_sp(
                ctx,
                grid,
                cfg.hidden,
                cfg.mlp_hidden(),
                with_bias,
                seed,
                param_id + 4,
                sp,
            ),
        }
    }

    /// Inference forward with KV-cached causal attention: the same
    /// pre-norm residual wiring as [`Module::forward`], no tape pushes.
    /// `layer_idx` selects this layer's [`LayerKv`] slice out of each
    /// request's cache in `batch`.
    pub fn forward_infer(
        &self,
        grid: &TesseractGrid,
        ctx: &mut RankCtx,
        x: &Arc<T>,
        layer_idx: usize,
        batch: &mut InferBatch<T>,
    ) -> Arc<T> {
        let a = self.ln1.forward_infer(grid, ctx, x);
        let kvs: Vec<&mut LayerKv<T>> =
            batch.kvs.iter_mut().map(|rk| &mut rk.layers[layer_idx]).collect();
        let b = self.attn.forward_infer(grid, ctx, &a, &batch.new_rows, kvs);
        let x1 = Arc::new(x.add(&b, &mut ctx.meter));
        let c = self.ln2.forward_infer(grid, ctx, &x1);
        let d = self.mlp.forward_infer(grid, ctx, &c);
        Arc::new(x1.add(&d, &mut ctx.meter))
    }

    /// Activations currently queued across this layer's tapes.
    pub fn tape_depth(&self) -> usize {
        self.ln1.tape_depth()
            + self.attn.tape_depth()
            + self.ln2.tape_depth()
            + self.mlp.tape_depth()
    }
}

impl<T: TensorLike + Payload> Module<T> for TesseractTransformerLayer<T> {
    fn name(&self) -> &'static str {
        "transformer_layer"
    }

    /// Forward over the local `[b/(dq)·s, h/q]` activation block.
    fn forward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        let a = self.ln1.forward(grid, ctx, x);
        let b = self.attn.forward(grid, ctx, &a);
        let x1 = Arc::new(x.add(&b, &mut ctx.meter));
        let c = self.ln2.forward(grid, ctx, &x1);
        let d = self.mlp.forward(grid, ctx, &c);
        Arc::new(x1.add(&d, &mut ctx.meter))
    }

    /// Backward; returns `dX`.
    fn backward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, dy: &Arc<T>) -> Arc<T> {
        // y = x1 + mlp(ln2(x1)), so dy flows both directly and through mlp.
        let d_mlp_in = self.mlp.backward(grid, ctx, dy);
        let d_x1_from_ln2 = self.ln2.backward(grid, ctx, &d_mlp_in);
        let d_x1 = Arc::new(dy.add(&d_x1_from_ln2, &mut ctx.meter));
        // x1 = x + attn(ln1(x)).
        let d_attn_in = self.attn.backward(grid, ctx, &d_x1);
        let d_x_from_ln1 = self.ln1.backward(grid, ctx, &d_attn_in);
        Arc::new(d_x1.add(&d_x_from_ln1, &mut ctx.meter))
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_, T>)) {
        self.attn.visit_params(f);
        self.mlp.visit_params(f);
    }

    fn zero_grad(&mut self) {
        self.ln1.zero_grad();
        self.attn.zero_grad();
        self.ln2.zero_grad();
        self.mlp.zero_grad();
    }

    fn reset_tape(&mut self, ctx: &mut RankCtx) {
        self.ln1.reset_tape(ctx);
        self.attn.reset_tape(ctx);
        self.ln2.reset_tape(ctx);
        self.mlp.reset_tape(ctx);
    }
}

/// A stack of `cfg.layers` identical Transformer layers, composed as a
/// [`Sequential`] of [`TesseractTransformerLayer`] modules (each possibly
/// wrapped in a [`CheckpointSegment`] when recomputation is on).
///
/// The stack's external contract is always the dense layout — `[R, h/q]`
/// blocks in and out, for activations *and* gradients — regardless of
/// [`StackOptions::sequence_parallel`]: the SP re-layout happens at the
/// stack boundary (one all-to-all each way), so embedding/pooling/head
/// layers and the trainer never see sharded tensors.
pub struct TesseractTransformer<T> {
    pub layers: Sequential<T>,
    pub cfg: TransformerConfig,
    opts: StackOptions,
}

impl<T: TensorLike + Payload> TesseractTransformer<T> {
    /// Builds the stack; layer `l` uses param ids
    /// `base_param_id + l·PARAM_IDS_PER_LAYER ..`.
    pub fn new(
        ctx: &RankCtx,
        grid: &TesseractGrid,
        cfg: TransformerConfig,
        with_bias: bool,
        seed: u64,
        base_param_id: u64,
    ) -> Self {
        Self::new_with_options(
            ctx,
            grid,
            cfg,
            with_bias,
            seed,
            base_param_id,
            StackOptions::default(),
        )
    }

    /// [`TesseractTransformer::new`] with explicit [`StackOptions`].
    /// Parameter ids are assigned identically in every mode, so stacks
    /// built with different options hold bitwise-identical weights.
    pub fn new_with_options(
        ctx: &RankCtx,
        grid: &TesseractGrid,
        cfg: TransformerConfig,
        with_bias: bool,
        seed: u64,
        base_param_id: u64,
        opts: StackOptions,
    ) -> Self {
        if let Some(k) = opts.recompute_every {
            assert!(k >= 1, "recompute_every must be at least 1");
        }
        let make_layer = |l: usize| {
            TesseractTransformerLayer::new_with_sp(
                ctx,
                grid,
                cfg,
                with_bias,
                seed,
                base_param_id + l as u64 * PARAM_IDS_PER_LAYER,
                opts.sequence_parallel,
            )
        };
        let mut layers = Sequential::new();
        match opts.recompute_every {
            None => {
                for l in 0..cfg.layers {
                    layers.push_boxed(Box::new(make_layer(l)));
                }
            }
            Some(k) => {
                // Checkpoint every k layers; k need not divide the layer
                // count — the trailing segment is shorter.
                let mut l = 0;
                while l < cfg.layers {
                    let mut seg = Sequential::new();
                    for sl in l..cfg.layers.min(l + k) {
                        seg.push_boxed(Box::new(make_layer(sl)));
                    }
                    layers.push_boxed(Box::new(CheckpointSegment::new(seg)));
                    l += k;
                }
            }
        }
        Self { layers, cfg, opts }
    }

    /// The options this stack was built with.
    pub fn options(&self) -> StackOptions {
        self.opts
    }
}

impl<T: TensorLike + Payload> Module<T> for TesseractTransformer<T> {
    fn name(&self) -> &'static str {
        "transformer"
    }

    fn forward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        if self.opts.sequence_parallel {
            let x_sp = Arc::new(sp_scatter_to_seq(grid, ctx, (**x).clone()));
            let y_sp = self.layers.forward(grid, ctx, &x_sp);
            Arc::new(sp_gather_from_seq(grid, ctx, (*y_sp).clone()))
        } else {
            self.layers.forward(grid, ctx, x)
        }
    }

    fn backward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, dy: &Arc<T>) -> Arc<T> {
        if self.opts.sequence_parallel {
            // Gradient of a relayout is the inverse relayout: the boundary
            // all-to-alls mirror the forward pair in reverse order.
            let dy_sp = Arc::new(sp_scatter_to_seq(grid, ctx, (**dy).clone()));
            let dx_sp = self.layers.backward(grid, ctx, &dy_sp);
            Arc::new(sp_gather_from_seq(grid, ctx, (*dx_sp).clone()))
        } else {
            self.layers.backward(grid, ctx, dy)
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_, T>)) {
        self.layers.visit_params(f);
    }

    fn zero_grad(&mut self) {
        self.layers.zero_grad();
    }

    fn reset_tape(&mut self, ctx: &mut RankCtx) {
        self.layers.reset_tape(ctx);
    }
}
