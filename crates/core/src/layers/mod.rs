//! Tesseract-parallel Transformer layers (paper §3.2).

pub mod attention;
pub mod layernorm;
pub mod linear;
pub mod mlp;
pub mod transformer;

pub use attention::TesseractAttention;
pub use layernorm::TesseractLayerNorm;
pub use linear::{SpMode, TesseractLinear};
pub use mlp::TesseractMlp;
pub use transformer::{
    StackOptions, TesseractTransformer, TesseractTransformerLayer, PARAM_IDS_PER_LAYER,
};

// Re-exported for the many call sites that historically imported `ParamRef`
// from the linear layer; it now lives in [`crate::module`].
pub use crate::module::ParamRef;
