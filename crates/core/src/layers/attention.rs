//! Tesseract-parallel multi-head self-attention (paper §3.2.1, Figure 5b).
//!
//! The fused QKV projection `[h, 3h]` and the output projection `[h, h]`
//! run as Tesseract matmuls. Between them, attention itself is **fully
//! local**: rank `(i, j, k)` holds `b/(d·q)` whole samples (rows) and
//! `n/q` whole heads (columns), so `softmax(QKᵀ/√d̄)V` for its
//! (sample, head) pairs needs no communication — the property §3.2.1
//! emphasizes ("with no communication with other position's tokens, the
//! attention part is also parallelizable").

use std::sync::Arc;

use tesseract_comm::{Payload, RankCtx};
use tesseract_tensor::TensorLike;

use crate::config::TransformerConfig;
use crate::grid::TesseractGrid;
use crate::infer::LayerKv;
use crate::layers::linear::{SpMode, TesseractLinear};
use crate::module::{Module, ParamRef, Tape};

struct HeadCache<T> {
    q: T,
    k: T,
    v: T,
    attn: T,
}

/// Multi-head self-attention on the `[q, q, d]` grid.
pub struct TesseractAttention<T> {
    pub wqkv: TesseractLinear<T>,
    pub wo: TesseractLinear<T>,
    cfg: TransformerConfig,
    /// Sequence-parallel mode: the block's input/output activations are
    /// `[R/q, h]` row chunks; the QKV projection gathers them back into
    /// dense panels ([`SpMode::SeqIn`]) and the output projection
    /// re-shards on the way out ([`SpMode::SeqOut`]). The attention
    /// interior — scores, softmax, weighted sum — is dense and untouched.
    sp: bool,
    /// Tape of per-microbatch head caches (see [`Tape`] on pipelining).
    tape: Tape<Vec<HeadCache<T>>>,
}

impl<T: TensorLike + Payload> TesseractAttention<T> {
    /// Builds the layer; consumes param ids `param_id .. param_id + 4`
    /// (Wq, Wk, Wv, Wo).
    pub fn new(
        ctx: &RankCtx,
        grid: &TesseractGrid,
        cfg: TransformerConfig,
        with_bias: bool,
        seed: u64,
        param_id: u64,
    ) -> Self {
        Self::new_with_sp(ctx, grid, cfg, with_bias, seed, param_id, false)
    }

    /// [`TesseractAttention::new`] with an explicit sequence-parallel mode.
    pub fn new_with_sp(
        ctx: &RankCtx,
        grid: &TesseractGrid,
        cfg: TransformerConfig,
        with_bias: bool,
        seed: u64,
        param_id: u64,
        sp: bool,
    ) -> Self {
        let h = cfg.hidden;
        // Three independent [h, h] projections fused column-wise so each
        // rank's slice holds Q/K/V for exactly its own heads.
        let mut wqkv = TesseractLinear::new_fused(
            ctx,
            grid,
            h,
            &[(h, param_id), (h, param_id + 1), (h, param_id + 2)],
            with_bias,
            seed,
        );
        let mut wo = TesseractLinear::new(ctx, grid, h, h, with_bias, seed, param_id + 3);
        if sp {
            wqkv = wqkv.with_sp_mode(SpMode::SeqIn);
            wo = wo.with_sp_mode(SpMode::SeqOut);
        }
        Self { wqkv, wo, cfg, sp, tape: Tape::new() }
    }

    /// Rows per rank = local samples × sequence length.
    fn local_samples(&self, grid: &TesseractGrid) -> usize {
        let per = self.cfg.batch / (grid.shape.q * grid.shape.d);
        assert!(per >= 1, "batch too small for grid");
        per
    }

    /// Heads per rank.
    fn local_heads(&self, grid: &TesseractGrid) -> usize {
        self.cfg.heads / grid.shape.q
    }

    /// KV-cached **causal** inference forward over a batch of request
    /// segments (no tape, `&self`).
    ///
    /// `x` is the row-concatenation of each request's *new* tokens
    /// (`new_rows[r]` rows for request `r`: the whole prompt during
    /// prefill, one row per decode step). For each request and each
    /// locally-owned head, the new K/V rows are appended to that request's
    /// [`LayerKv`] and attention runs over the full cached prefix with a
    /// causal mask (`softmax_rows_masked_inplace`): new token `t` attends
    /// `cached + t + 1` positions. A decode step is therefore O(L) per
    /// token instead of the O(L²) full-prefix recompute — and, because
    /// every op involved is per-row deterministic (serial-GEMM dot
    /// products, masked row softmax), bitwise identical to it.
    ///
    /// SPMD contract: ranks sharing an `(i, k)` lane see the same
    /// segments; ranks on other lanes may pass different (even empty)
    /// batches — the collective sequence (QKV matmul, output projection)
    /// is independent of the segment list.
    pub fn forward_infer(
        &self,
        grid: &TesseractGrid,
        ctx: &mut RankCtx,
        x: &Arc<T>,
        new_rows: &[usize],
        mut kvs: Vec<&mut LayerKv<T>>,
    ) -> Arc<T> {
        assert!(!self.sp, "forward_infer runs the dense serving path");
        let hd = self.cfg.head_dim();
        let heads = self.local_heads(grid);
        let local_h = x.cols();
        assert_eq!(local_h * grid.shape.q, self.cfg.hidden, "attention input width mismatch");
        assert_eq!(new_rows.len(), kvs.len(), "one KV cache per request segment");
        let total: usize = new_rows.iter().sum();
        assert_eq!(x.rows(), total, "attention input rows mismatch");

        let qkv = self.wqkv.forward_infer(grid, ctx, x);
        let q_all = qkv.slice_cols(0, local_h, &mut ctx.meter);
        let k_all = qkv.slice_cols(local_h, 2 * local_h, &mut ctx.meter);
        let v_all = qkv.slice_cols(2 * local_h, 3 * local_h, &mut ctx.meter);

        let scale = 1.0 / (hd as f32).sqrt();
        let mut seg_outs = Vec::with_capacity(kvs.len());
        let mut r0 = 0;
        for (ri, kv) in kvs.iter_mut().enumerate() {
            let t_new = new_rows[ri];
            assert!(t_new >= 1, "request segment must carry at least one new token");
            assert_eq!(kv.heads.len(), heads, "KV cache head count mismatch");
            let r1 = r0 + t_new;
            let qs = q_all.slice_rows(r0, r1, &mut ctx.meter);
            let ks = k_all.slice_rows(r0, r1, &mut ctx.meter);
            let vs = v_all.slice_rows(r0, r1, &mut ctx.meter);
            let cached = kv.seq_len();
            let limits: Vec<usize> = (0..t_new).map(|t| cached + t + 1).collect();
            let mut head_outs = Vec::with_capacity(heads);
            for hi in 0..heads {
                let (c0, c1) = (hi * hd, (hi + 1) * hd);
                let qh = qs.slice_cols(c0, c1, &mut ctx.meter);
                let kh = ks.slice_cols(c0, c1, &mut ctx.meter);
                let vh = vs.slice_cols(c0, c1, &mut ctx.meter);
                let slot = &mut kv.heads[hi];
                // Append the new K/V rows to the cache (metered as data
                // movement, like every concat), then attend over the full
                // prefix.
                let k_prev = std::mem::replace(&mut slot.k, T::zeros(0, hd));
                let v_prev = std::mem::replace(&mut slot.v, T::zeros(0, hd));
                let k_full = T::concat_rows(&[k_prev, kh], &mut ctx.meter);
                let v_full = T::concat_rows(&[v_prev, vh], &mut ctx.meter);
                let mut scores = qh.matmul_nt(&k_full, &mut ctx.meter).scale(scale, &mut ctx.meter);
                scores.softmax_rows_masked_inplace(&limits, &mut ctx.meter);
                let out = scores.matmul(&v_full, &mut ctx.meter);
                slot.k = k_full;
                slot.v = v_full;
                head_outs.push(out);
            }
            seg_outs.push(T::concat_cols(&head_outs, &mut ctx.meter));
            r0 = r1;
        }
        let merged = if seg_outs.is_empty() {
            // Empty lane this step: still a [0, h/q] block so the output
            // projection's collectives run in lockstep with busy lanes.
            Arc::new(T::zeros(0, local_h))
        } else {
            Arc::new(T::concat_rows(&seg_outs, &mut ctx.meter))
        };
        self.wo.forward_infer(grid, ctx, &merged)
    }

    /// Activations currently queued across this block's tapes.
    pub fn tape_depth(&self) -> usize {
        self.tape.depth() + self.wqkv.tape_depth() + self.wo.tape_depth()
    }
}

impl<T: TensorLike + Payload> Module<T> for TesseractAttention<T> {
    fn name(&self) -> &'static str {
        "attention"
    }

    /// Forward over the local activation block `[b/(dq)·s, h/q]` (dense)
    /// or `[b/(dq)·s/q, h]` (sequence-parallel).
    fn forward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        let s = self.cfg.seq;
        let hd = self.cfg.head_dim();
        let q = grid.shape.q;
        let samples = self.local_samples(grid);
        let heads = self.local_heads(grid);
        let local_h = self.cfg.hidden / q;
        if self.sp {
            assert_eq!(x.cols(), self.cfg.hidden, "attention sp input width mismatch");
            assert_eq!(x.rows() * q, samples * s, "attention sp input rows mismatch");
        } else {
            assert_eq!(x.cols() * q, self.cfg.hidden, "attention input width mismatch");
            assert_eq!(x.rows(), samples * s, "attention input rows mismatch");
        }

        // SeqIn gathers the sharded rows back, so `qkv` is dense either way.
        let qkv = self.wqkv.forward(grid, ctx, x);
        let q_all = qkv.slice_cols(0, local_h, &mut ctx.meter);
        let k_all = qkv.slice_cols(local_h, 2 * local_h, &mut ctx.meter);
        let v_all = qkv.slice_cols(2 * local_h, 3 * local_h, &mut ctx.meter);

        let mut caches = Vec::with_capacity(samples * heads);
        let scale = 1.0 / (hd as f32).sqrt();
        let mut sample_outs = Vec::with_capacity(samples);
        for si in 0..samples {
            let (r0, r1) = (si * s, (si + 1) * s);
            let qs = q_all.slice_rows(r0, r1, &mut ctx.meter);
            let ks = k_all.slice_rows(r0, r1, &mut ctx.meter);
            let vs = v_all.slice_rows(r0, r1, &mut ctx.meter);
            let mut head_outs = Vec::with_capacity(heads);
            for hi in 0..heads {
                let (c0, c1) = (hi * hd, (hi + 1) * hd);
                let qh = qs.slice_cols(c0, c1, &mut ctx.meter);
                let kh = ks.slice_cols(c0, c1, &mut ctx.meter);
                let vh = vs.slice_cols(c0, c1, &mut ctx.meter);
                let scores = qh.matmul_nt(&kh, &mut ctx.meter).scale(scale, &mut ctx.meter);
                let attn = scores.softmax_rows(&mut ctx.meter);
                let out = attn.matmul(&vh, &mut ctx.meter);
                caches.push(HeadCache { q: qh, k: kh, v: vh, attn });
                head_outs.push(out);
            }
            sample_outs.push(T::concat_cols(&head_outs, &mut ctx.meter));
        }
        let cache_bytes: u64 = caches
            .iter()
            .map(|c| {
                (c.q.byte_size() + c.k.byte_size() + c.v.byte_size() + c.attn.byte_size()) as u64
            })
            .sum();
        self.tape.push_tracked(ctx, cache_bytes, caches);
        let merged = Arc::new(T::concat_rows(&sample_outs, &mut ctx.meter));
        self.wo.forward(grid, ctx, &merged)
    }

    /// Backward; returns `dX` and accumulates projection gradients.
    fn backward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, dy: &Arc<T>) -> Arc<T> {
        let s = self.cfg.seq;
        let hd = self.cfg.head_dim();
        let samples = self.local_samples(grid);
        let heads = self.local_heads(grid);
        let scale = 1.0 / (hd as f32).sqrt();

        let d_merged = self.wo.backward(grid, ctx, dy);
        let caches = self.tape.pop_tracked(ctx, "TesseractAttention");
        assert_eq!(caches.len(), samples * heads, "cache/shape mismatch in backward");

        let mut dq_rows = Vec::with_capacity(samples);
        let mut dk_rows = Vec::with_capacity(samples);
        let mut dv_rows = Vec::with_capacity(samples);
        for si in 0..samples {
            let (r0, r1) = (si * s, (si + 1) * s);
            let d_sample = d_merged.slice_rows(r0, r1, &mut ctx.meter);
            let mut dq_heads = Vec::with_capacity(heads);
            let mut dk_heads = Vec::with_capacity(heads);
            let mut dv_heads = Vec::with_capacity(heads);
            for hi in 0..heads {
                let cache = &caches[si * heads + hi];
                let (c0, c1) = (hi * hd, (hi + 1) * hd);
                let d_out = d_sample.slice_cols(c0, c1, &mut ctx.meter);
                // out = attn · V
                let d_attn = d_out.matmul_nt(&cache.v, &mut ctx.meter);
                let dv = cache.attn.matmul_tn(&d_out, &mut ctx.meter);
                // attn = softmax(scores), scores = scale · Q Kᵀ
                let d_scores = cache
                    .attn
                    .softmax_rows_backward(&d_attn, &mut ctx.meter)
                    .scale(scale, &mut ctx.meter);
                let dq = d_scores.matmul(&cache.k, &mut ctx.meter);
                let dk = d_scores.matmul_tn(&cache.q, &mut ctx.meter);
                dq_heads.push(dq);
                dk_heads.push(dk);
                dv_heads.push(dv);
            }
            dq_rows.push(T::concat_cols(&dq_heads, &mut ctx.meter));
            dk_rows.push(T::concat_cols(&dk_heads, &mut ctx.meter));
            dv_rows.push(T::concat_cols(&dv_heads, &mut ctx.meter));
        }
        let dq_all = T::concat_rows(&dq_rows, &mut ctx.meter);
        let dk_all = T::concat_rows(&dk_rows, &mut ctx.meter);
        let dv_all = T::concat_rows(&dv_rows, &mut ctx.meter);
        let d_qkv = Arc::new(T::concat_cols(&[dq_all, dk_all, dv_all], &mut ctx.meter));
        self.wqkv.backward(grid, ctx, &d_qkv)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_, T>)) {
        self.wqkv.visit_params(f);
        self.wo.visit_params(f);
    }

    fn zero_grad(&mut self) {
        self.tape.debug_assert_balanced("TesseractAttention");
        self.wqkv.zero_grad();
        self.wo.zero_grad();
    }

    fn reset_tape(&mut self, ctx: &mut RankCtx) {
        self.tape.clear_tracked(ctx);
        self.wqkv.reset_tape(ctx);
        self.wo.reset_tape(ctx);
    }
}
