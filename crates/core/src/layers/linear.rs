//! Tesseract-parallel linear layer (paper §3.2.1).
//!
//! Weight `W [in, out]` is B-type partitioned: rank `(i, j, k)` holds block
//! `[in/q, out/q]`, replicated across depth. The forward pass is one
//! Tesseract matmul; the backward applies Eq. 3 (`dX = dY·Wᵀ`,
//! `dW = Xᵀ·dY` + depth all-reduce).
//!
//! The bias follows §3.2.2 exactly: it lives on the row-0 processors of each
//! layer, is **broadcast down each column** in the forward pass, and its
//! gradients are **reduced back to row 0** (plus a depth all-reduce so the
//! replicas stay in sync).
//!
//! Fused projections (the attention `[h, 3h]` QKV weight) are built with
//! [`TesseractLinear::new_fused`]: each sub-weight is an independently
//! Xavier-initialized global matrix whose local blocks are concatenated
//! column-wise, so every rank's output columns hold *its own heads'*
//! Q/K/V — the layout trick Megatron-style implementations rely on.

use std::sync::Arc;

use tesseract_comm::{Payload, RankCtx};
use tesseract_tensor::TensorLike;

use crate::grid::TesseractGrid;
use crate::mm::{
    sp_gather_from_seq, sp_scatter_to_seq, tesseract_matmul, tesseract_matmul_nt,
    tesseract_matmul_nt_sp, tesseract_matmul_sp_in, tesseract_matmul_tn, tesseract_matmul_tn_sp,
};
use crate::module::{Module, Tape};
// Historical home of `ParamRef`; re-exported so old import paths keep working.
pub use crate::module::ParamRef;

/// How this layer's activations are sharded along the sequence dimension
/// (see the sequence-parallel section of `crate::mm`).
///
/// The weight layout is identical in all three modes; only the activation
/// relayout around the Tesseract matmul changes, and every mode is bitwise
/// identical to [`SpMode::Dense`] on the same data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpMode {
    /// Dense activations `[R, h/q]` in and out (the original layout).
    #[default]
    Dense,
    /// Input arrives sequence-sharded `[R/q, h]`, output leaves dense —
    /// the first linear of a block (QKV projection, MLP `fc1`).
    SeqIn,
    /// Input arrives dense, output leaves sequence-sharded `[R/q, h]` —
    /// the last linear of a block (output projection, MLP `fc2`).
    SeqOut,
}

/// Tesseract column/row-blocked linear layer.
///
/// The weight and bias blocks are `Arc`-held so the forward/backward
/// broadcasts can deposit them into the fabric without cloning; the
/// optimizer still mutates them through [`ParamRef`] via `Arc::make_mut`
/// (copy-on-write, a no-op once any transient rendezvous shares drop).
pub struct TesseractLinear<T> {
    pub in_features: usize,
    pub out_features: usize,
    w: Arc<T>,
    dw: T,
    /// Bias block `[1, out/q]`, present only on row-0 ranks.
    bias: Option<Arc<T>>,
    dbias: Option<T>,
    /// Microbatch activation tape (see [`Tape`] on GPipe LIFO ordering).
    tape: Tape<Arc<T>>,
    with_bias: bool,
    sp: SpMode,
}

impl<T: TensorLike + Payload> TesseractLinear<T> {
    /// A plain `[in, out]` linear layer with Xavier weight `param_id`.
    pub fn new(
        ctx: &RankCtx,
        grid: &TesseractGrid,
        in_features: usize,
        out_features: usize,
        with_bias: bool,
        seed: u64,
        param_id: u64,
    ) -> Self {
        Self::new_fused(ctx, grid, in_features, &[(out_features, param_id)], with_bias, seed)
    }

    /// A fused projection: one matmul over the column-concatenation of
    /// several independently-initialized `[in, out_i]` weights.
    pub fn new_fused(
        ctx: &RankCtx,
        grid: &TesseractGrid,
        in_features: usize,
        outs: &[(usize, u64)],
        with_bias: bool,
        seed: u64,
    ) -> Self {
        let _ = ctx;
        let q = grid.shape.q;
        assert_eq!(in_features % q, 0, "in_features must divide by q");
        let (i, j, _k) = grid.coords;
        let in_local = in_features / q;
        let mut blocks = Vec::with_capacity(outs.len());
        let mut scratch = tesseract_tensor::Meter::new();
        for &(out_i, pid) in outs {
            assert_eq!(out_i % q, 0, "out_features must divide by q");
            let out_local = out_i / q;
            blocks.push(T::init_xavier_block(
                in_features,
                out_i,
                i * in_local,
                j * out_local,
                in_local,
                out_local,
                seed,
                pid,
            ));
        }
        let w = T::concat_cols(&blocks, &mut scratch);
        let out_features: usize = outs.iter().map(|&(o, _)| o).sum();
        let out_local_total = out_features / q;
        let (bias, dbias) = if with_bias && i == 0 {
            // Biases are zero-initialized (standard practice), so they need
            // no parameter id and match the serial reference trivially.
            (Some(Arc::new(T::zeros(1, out_local_total))), Some(T::zeros(1, out_local_total)))
        } else {
            (None, None)
        };
        Self {
            in_features,
            out_features,
            w: Arc::new(w),
            dw: T::zeros(in_local, out_local_total),
            bias,
            dbias,
            tape: Tape::new(),
            with_bias,
            sp: SpMode::Dense,
        }
    }

    /// Selects the sequence-parallel relayout this layer applies around its
    /// matmul (builder-style; the default is [`SpMode::Dense`]).
    pub fn with_sp_mode(mut self, sp: SpMode) -> Self {
        self.sp = sp;
        self
    }

    /// The sequence-parallel mode this layer was built with.
    pub fn sp_mode(&self) -> SpMode {
        self.sp
    }

    /// Forward for inference: `Y = X·W (+ bias)` exactly like
    /// [`Module::forward`] — same Tesseract matmul, same bias broadcast,
    /// bitwise-identical output — but `&self` and **no tape push**, so
    /// serving never accumulates activations it will not backpropagate.
    pub fn forward_infer(&self, grid: &TesseractGrid, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        assert_eq!(self.sp, SpMode::Dense, "forward_infer runs the dense serving path");
        let mut y = tesseract_matmul(grid, ctx, x, &self.w);
        if self.with_bias {
            let b = grid.col.broadcast_shared(ctx, 0, self.bias.as_ref().map(Arc::clone));
            y = y.add_rowvec(&b, &mut ctx.meter);
        }
        Arc::new(y)
    }

    /// Activations currently queued on the tape (zero outside training).
    pub fn tape_depth(&self) -> usize {
        self.tape.depth()
    }

    /// This rank's weight block (for tests).
    pub fn weight(&self) -> &T {
        &self.w
    }

    /// This rank's accumulated weight gradient (for tests).
    pub fn weight_grad(&self) -> &T {
        &self.dw
    }

    /// This rank's bias block, if it owns one.
    pub fn bias(&self) -> Option<&T> {
        self.bias.as_deref()
    }

    /// This rank's bias gradient, if it owns one.
    pub fn bias_grad(&self) -> Option<&T> {
        self.dbias.as_ref()
    }
}

impl<T: TensorLike + Payload> Module<T> for TesseractLinear<T> {
    fn name(&self) -> &'static str {
        "linear"
    }

    /// Forward: `Y = X·W (+ bias broadcast down the column)`. Tapes `X`.
    ///
    /// Under [`SpMode::SeqIn`] `X` arrives sequence-sharded; under
    /// [`SpMode::SeqOut`] the dense product is re-sharded on the way out.
    /// Both are bitwise identical to the dense layout (the bias is always
    /// added on the dense product, before any re-shard).
    fn forward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        let mut y = match self.sp {
            SpMode::SeqIn => tesseract_matmul_sp_in(grid, ctx, &**x, &self.w),
            SpMode::Dense | SpMode::SeqOut => tesseract_matmul(grid, ctx, x, &self.w),
        };
        if self.with_bias {
            let b = grid.col.broadcast_shared(ctx, 0, self.bias.as_ref().map(Arc::clone));
            y = y.add_rowvec(&b, &mut ctx.meter);
        }
        if self.sp == SpMode::SeqOut {
            y = sp_scatter_to_seq(grid, ctx, y);
        }
        self.tape.push_tracked(ctx, x.byte_size() as u64, Arc::clone(x));
        Arc::new(y)
    }

    /// Backward: returns `dX`; accumulates `dW` (and `dbias` on row 0).
    fn backward(&mut self, grid: &TesseractGrid, ctx: &mut RankCtx, dy: &Arc<T>) -> Arc<T> {
        let x = self.tape.pop_tracked(ctx, "TesseractLinear");
        // A SeqOut layer receives the output gradient sequence-sharded;
        // re-shard it back to dense (the exact inverse of the forward
        // relayout) and run the dense rules from there.
        let dy_dense: Arc<T>;
        let dy = if self.sp == SpMode::SeqOut {
            dy_dense = Arc::new(sp_gather_from_seq(grid, ctx, (**dy).clone()));
            &dy_dense
        } else {
            dy
        };
        if self.with_bias {
            let db_local = dy.col_sums(&mut ctx.meter);
            let db = grid.col.reduce_shared(ctx, 0, db_local);
            if grid.i() == 0 {
                let mut db = db.expect("row-0 rank receives bias gradient");
                if grid.shape.d > 1 {
                    db = Arc::clone(&*grid.depth.all_reduce_shared(ctx, db));
                }
                self.dbias.as_mut().expect("row-0 rank holds bias").add_assign(&db, &mut ctx.meter);
            }
        }
        if self.sp == SpMode::SeqIn {
            let dw = tesseract_matmul_tn_sp(grid, ctx, &*x, &**dy, true);
            self.dw.add_assign(&dw, &mut ctx.meter);
            Arc::new(tesseract_matmul_nt_sp(grid, ctx, &**dy, &self.w))
        } else {
            let dw = tesseract_matmul_tn(grid, ctx, &x, &**dy, true);
            self.dw.add_assign(&dw, &mut ctx.meter);
            tesseract_matmul_nt(grid, ctx, &**dy, &self.w)
        }
    }

    /// Visits (weight, grad) pairs for the optimizer, in a deterministic
    /// order. Row-0 ranks visit the bias too.
    fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_, T>)) {
        f(ParamRef { weight: Arc::make_mut(&mut self.w), grad: &mut self.dw });
        if let (Some(b), Some(db)) = (self.bias.as_mut(), self.dbias.as_mut()) {
            f(ParamRef { weight: Arc::make_mut(b), grad: db });
        }
    }

    fn zero_grad(&mut self) {
        self.tape.debug_assert_balanced("TesseractLinear");
        self.dw = T::zeros(self.dw.rows(), self.dw.cols());
        if let Some(db) = self.dbias.as_mut() {
            *db = T::zeros(db.rows(), db.cols());
        }
    }

    fn reset_tape(&mut self, ctx: &mut RankCtx) {
        self.tape.clear_tracked(ctx);
    }
}
