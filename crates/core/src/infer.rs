//! Forward-only inference on the `[q, q, d]` grid: per-request KV caches
//! and a no-tape model stack for serving.
//!
//! Serving never backpropagates, so the training `Module::forward` path —
//! which tapes every activation for the matching backward — is the wrong
//! tool: each decode step would grow every layer's tape forever. This
//! module provides the `forward_infer` counterpart: `&self`, no tape
//! pushes, and **causal KV-cached attention** so a decode step costs O(L)
//! per token instead of the O(L²) full-prefix recompute.
//!
//! ## KV-cache sharding
//!
//! The cache follows the activation layout exactly. A request lives on one
//! `(i, k)` **lane** (the `q·d` row-block owners of Figure 4a); within
//! that lane, rank `(i, j, k)` computes — and therefore caches — the K/V
//! of *its own* `n/q` heads, the same columns its fused QKV slice
//! produces. Nothing is replicated: a request's cache is sharded across
//! the `q` ranks of its row fiber and absent everywhere else, and the
//! per-rank footprint (`2 · L · n/q · d̄ · 4` bytes per layer) is what
//! [`RequestKv::bytes`] reports and the serving engine feeds into
//! `Meter::note_kv_cache_bytes`.
//!
//! ## Bitwise parity with recompute
//!
//! Cached decode is bitwise identical to recomputing the full prefix
//! through the same causal path: every op involved is per-row
//! deterministic (serial-GEMM rows are independent dot products over a
//! fixed accumulation order, layer norm / masked softmax / GELU are
//! per-row), and the SUMMA stages fold partial products in the same `l`
//! order regardless of how many rows the local block carries. The parity
//! tests in `crates/serve` pin this property per token.

use std::sync::Arc;

use tesseract_comm::{Payload, RankCtx};
use tesseract_tensor::TensorLike;

use crate::config::TransformerConfig;
use crate::grid::TesseractGrid;
use crate::layers::transformer::{TesseractTransformerLayer, PARAM_IDS_PER_LAYER};

/// Bytes per cached element (the stack is f32 end to end).
const ELEM_BYTES: u64 = 4;

/// One locally-owned head's K/V blocks for one layer of one request:
/// `[seq_len, head_dim]` each, grown by row-append every step.
pub struct HeadKv<T> {
    pub k: T,
    pub v: T,
}

/// One attention layer's KV cache for one request: one [`HeadKv`] per
/// locally-owned head (`n/q` of them on every rank of the request's lane).
pub struct LayerKv<T> {
    pub heads: Vec<HeadKv<T>>,
}

impl<T: TensorLike> LayerKv<T> {
    /// An empty cache for `local_heads` heads of width `head_dim`.
    pub fn empty(local_heads: usize, head_dim: usize) -> Self {
        let heads = (0..local_heads)
            .map(|_| HeadKv { k: T::zeros(0, head_dim), v: T::zeros(0, head_dim) })
            .collect();
        Self { heads }
    }

    /// Cached sequence length (identical across heads by construction).
    pub fn seq_len(&self) -> usize {
        self.heads.first().map_or(0, |h| h.k.rows())
    }

    /// Resident bytes of this layer's cache on this rank.
    pub fn bytes(&self) -> u64 {
        self.heads.iter().map(|h| (h.k.elem_count() + h.v.elem_count()) as u64 * ELEM_BYTES).sum()
    }
}

/// Full per-request KV cache on this rank: one [`LayerKv`] per
/// transformer layer.
pub struct RequestKv<T> {
    pub layers: Vec<LayerKv<T>>,
}

impl<T: TensorLike> RequestKv<T> {
    /// An empty cache for a `layers`-deep stack.
    pub fn empty(layers: usize, local_heads: usize, head_dim: usize) -> Self {
        Self { layers: (0..layers).map(|_| LayerKv::empty(local_heads, head_dim)).collect() }
    }

    /// Tokens cached so far (prompt + generated).
    pub fn seq_len(&self) -> usize {
        self.layers.first().map_or(0, |l| l.seq_len())
    }

    /// Total resident bytes of this request's cache on this rank.
    pub fn bytes(&self) -> u64 {
        self.layers.iter().map(LayerKv::bytes).sum()
    }
}

/// One inference step's worth of batched requests on this rank's lane.
///
/// `new_rows[r]` new tokens for request `r` (whole prompt during prefill,
/// one during decode), with `kvs[r]` its cache — typically `mem::take`n
/// out of the scheduler's slots for the step and returned afterwards. The
/// step input `x` is the row-concatenation of the segments in the same
/// order.
pub struct InferBatch<T> {
    pub new_rows: Vec<usize>,
    pub kvs: Vec<RequestKv<T>>,
}

impl<T: TensorLike> InferBatch<T> {
    /// An empty batch (lanes with nothing runnable still step the model so
    /// collectives stay in lockstep).
    pub fn empty() -> Self {
        Self { new_rows: Vec::new(), kvs: Vec::new() }
    }

    /// Total new tokens across segments — the row count `x` must have.
    pub fn total_rows(&self) -> usize {
        self.new_rows.iter().sum()
    }
}

/// A forward-only transformer stack for serving: the same layers, weights
/// (same seed / parameter ids) and collectives as
/// [`crate::TesseractTransformer`], but held as a typed `Vec` so each
/// layer can thread its slice of the per-request KV caches.
pub struct InferModel<T> {
    pub layers: Vec<TesseractTransformerLayer<T>>,
    pub cfg: TransformerConfig,
}

impl<T: TensorLike + Payload> InferModel<T> {
    /// Builds the stack; layer `l` uses param ids
    /// `base_param_id + l·PARAM_IDS_PER_LAYER ..`, matching
    /// `TesseractTransformer::new` bit for bit.
    pub fn new(
        ctx: &RankCtx,
        grid: &TesseractGrid,
        cfg: TransformerConfig,
        with_bias: bool,
        seed: u64,
        base_param_id: u64,
    ) -> Self {
        let layers = (0..cfg.layers)
            .map(|l| {
                TesseractTransformerLayer::new(
                    ctx,
                    grid,
                    cfg,
                    with_bias,
                    seed,
                    base_param_id + l as u64 * PARAM_IDS_PER_LAYER,
                )
            })
            .collect();
        Self { layers, cfg }
    }

    /// An empty KV cache shaped for this model on this grid.
    pub fn new_kv(&self, grid: &TesseractGrid) -> RequestKv<T> {
        RequestKv::empty(self.cfg.layers, self.cfg.heads / grid.shape.q, self.cfg.head_dim())
    }

    /// One inference step over the batch: `x` is `[batch.total_rows(),
    /// h/q]`, the output has the same shape, and every request's cache in
    /// `batch.kvs` has grown by its `new_rows`. No tape is touched.
    pub fn forward_infer(
        &self,
        grid: &TesseractGrid,
        ctx: &mut RankCtx,
        x: &Arc<T>,
        batch: &mut InferBatch<T>,
    ) -> Arc<T> {
        assert_eq!(x.rows(), batch.total_rows(), "batch rows mismatch");
        let mut h = Arc::clone(x);
        for (li, layer) in self.layers.iter().enumerate() {
            h = ctx.traced("transformer_layer", "infer", |ctx| {
                layer.forward_infer(grid, ctx, &h, li, batch)
            });
        }
        h
    }

    /// Activations queued across every tape in the stack — zero unless
    /// someone ran the training forward.
    pub fn tape_depth(&self) -> usize {
        self.layers.iter().map(TesseractTransformerLayer::tape_depth).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesseract_tensor::DenseTensor;

    #[test]
    fn empty_kv_reports_zero_everything() {
        let kv: RequestKv<DenseTensor> = RequestKv::empty(3, 2, 8);
        assert_eq!(kv.layers.len(), 3);
        assert_eq!(kv.seq_len(), 0);
        assert_eq!(kv.bytes(), 0);
    }

    #[test]
    fn kv_bytes_count_k_and_v_across_heads_and_layers() {
        let mut kv: RequestKv<DenseTensor> = RequestKv::empty(2, 2, 4);
        for layer in &mut kv.layers {
            for h in &mut layer.heads {
                h.k = DenseTensor::zeros(5, 4);
                h.v = DenseTensor::zeros(5, 4);
            }
        }
        assert_eq!(kv.seq_len(), 5);
        // 2 layers × 2 heads × 2 (K and V) × 5×4 elems × 4 bytes.
        assert_eq!(kv.bytes(), 2 * 2 * 2 * 5 * 4 * 4);
    }

    #[test]
    fn empty_batch_has_no_rows() {
        let b: InferBatch<DenseTensor> = InferBatch::empty();
        assert_eq!(b.total_rows(), 0);
    }
}
