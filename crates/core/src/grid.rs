//! The `[q, q, d]` processor grid (paper §3.1, Figure 3).
//!
//! `p = q²·d` ranks are arranged as `d` layers of `q×q` meshes. The layout
//! is declared as a named-axis [`Mesh`] — axes `[("depth", d), ("row", q),
//! ("col", q)]`, outermost-first — whose row-major strides reproduce the
//! paper's **layer-major** numbering (`rank = base + k·q² + i·q + j`): each
//! depth layer occupies consecutive ranks, so with the paper's "q² is a
//! multiple of 4" arrangement a whole layer packs into nodes and row/column
//! collectives stay on NVLink wherever possible, while the rarer depth
//! communication crosses nodes — exactly the placement rationale of §4.
//! Coordinates, offsets and the three communication fibers are all derived
//! from the mesh's axis strides rather than hard-coded literals.

use crate::config::ShapeError;
use tesseract_comm::{CommGroup, Mesh, MeshAxis, RankCtx};

/// Shape parameters of a Tesseract arrangement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridShape {
    /// Tesseract dimension `q` (mesh side).
    pub q: usize,
    /// Tesseract depth `d`, with `1 ≤ d` (the paper studies `1 ≤ d ≤ q`).
    pub d: usize,
}

impl GridShape {
    /// Builds the shape, rejecting degenerate sides instead of panicking —
    /// the planner enumerates factorizations and needs cheap rejection.
    pub fn try_new(q: usize, d: usize) -> Result<Self, ShapeError> {
        if q == 0 || d == 0 {
            return Err(ShapeError::NonPositive { what: "grid shape" });
        }
        Ok(Self { q, d })
    }

    pub fn new(q: usize, d: usize) -> Self {
        Self::try_new(q, d).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checks that the grid consumes exactly `world` ranks.
    pub fn check_world(&self, world: usize) -> Result<(), ShapeError> {
        if self.size() != world {
            return Err(ShapeError::Capacity {
                what: format!("tesseract [{0},{0},{1}]", self.q, self.d),
                needed: self.size(),
                available: world,
            });
        }
        Ok(())
    }

    /// Total processor count `p = q²·d`.
    pub fn size(&self) -> usize {
        self.q * self.q * self.d
    }

    /// `d = 1` makes Tesseract the 2-D SUMMA algorithm (Optimus).
    pub fn is_2d(&self) -> bool {
        self.d == 1
    }

    /// `d = q` makes Tesseract a 3-D algorithm.
    pub fn is_3d(&self) -> bool {
        self.d == self.q
    }

    /// The named-axis mesh underlying this grid: `[("depth", d),
    /// ("row", q), ("col", q)]` over ranks `base..base+q²d`. Row-major
    /// strides make the layout layer-major (`depth` outermost, `col`
    /// contiguous).
    pub fn mesh(&self, base: usize) -> Mesh {
        Mesh::new(
            base,
            vec![
                MeshAxis::new("depth", self.d),
                MeshAxis::new("row", self.q),
                MeshAxis::new("col", self.q),
            ],
        )
    }

    /// Grid coordinates `(i, j, k)` of a rank offset within the grid.
    pub fn coords_of(&self, offset: usize) -> (usize, usize, usize) {
        assert!(offset < self.size(), "offset {offset} out of grid {self:?}");
        let c = self.mesh(0).coords_of(offset);
        (c[1], c[2], c[0])
    }

    /// Rank offset of grid coordinates `(i, j, k)`.
    pub fn offset_of(&self, i: usize, j: usize, k: usize) -> usize {
        assert!(i < self.q && j < self.q && k < self.d, "({i},{j},{k}) out of grid {self:?}");
        self.mesh(0).offset_of(&[k, i, j])
    }

    /// The A/C-matrix row-block index `h = i + k·q` owned by `(i, ·, k)`
    /// (Algorithm 3 / Figure 4a: inputs are split into `q·d` row blocks).
    pub fn a_row_block(&self, i: usize, k: usize) -> usize {
        i + k * self.q
    }
}

/// One rank's handle onto a Tesseract grid: its coordinates plus the three
/// communication fibers the algorithm uses.
pub struct TesseractGrid {
    pub shape: GridShape,
    /// First global rank of this grid (grids can be embedded in a larger
    /// hybrid-parallel world).
    pub base: usize,
    /// The named-axis mesh the groups below are fibers of.
    pub mesh: Mesh,
    /// This rank's `(i, j, k)` coordinates.
    pub coords: (usize, usize, usize),
    /// Peers sharing `(i, k)`, ordered by `j` — SUMMA row broadcasts (the
    /// fiber along the `"col"` axis).
    pub row: CommGroup,
    /// Peers sharing `(j, k)`, ordered by `i` — SUMMA column broadcasts
    /// (the fiber along the `"row"` axis).
    pub col: CommGroup,
    /// Peers sharing `(i, j)`, ordered by `k` — weight-gradient all-reduce
    /// (the fiber along the `"depth"` axis).
    pub depth: CommGroup,
}

impl TesseractGrid {
    /// Builds this rank's grid handle. Must be called by all `shape.size()`
    /// ranks `base..base+p` (SPMD).
    pub fn new(ctx: &RankCtx, shape: GridShape, base: usize) -> Self {
        let p = shape.size();
        assert!(
            ctx.rank >= base && ctx.rank < base + p,
            "rank {} outside grid [{base}, {})",
            ctx.rank,
            base + p
        );
        let mesh = shape.mesh(base);
        let c = mesh.coords_of_rank(ctx.rank);
        let (k, i, j) = (c[0], c[1], c[2]);
        // Each comm group varies exactly one named axis: the SUMMA "row"
        // group broadcasts along columns (j varies), the "col" group along
        // rows (i varies), the depth group along k.
        let row = ctx.group("tess.row", mesh.fiber_ranks("col", &c));
        let col = ctx.group("tess.col", mesh.fiber_ranks("row", &c));
        let depth = ctx.group("tess.depth", mesh.fiber_ranks("depth", &c));
        Self { shape, base, mesh, coords: (i, j, k), row, col, depth }
    }

    pub fn i(&self) -> usize {
        self.coords.0
    }

    pub fn j(&self) -> usize {
        self.coords.1
    }

    pub fn k(&self) -> usize {
        self.coords.2
    }

    /// Row-block index of the A/C partitions this rank owns.
    pub fn a_row_block(&self) -> usize {
        self.shape.a_row_block(self.i(), self.k())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesseract_comm::Cluster;

    #[test]
    fn try_new_rejects_degenerate_sides_with_the_legacy_text() {
        assert_eq!(
            GridShape::try_new(0, 1).unwrap_err().to_string(),
            "grid shape must be positive"
        );
        assert_eq!(
            GridShape::try_new(2, 0).unwrap_err().to_string(),
            "grid shape must be positive"
        );
        assert_eq!(GridShape::try_new(2, 2), Ok(GridShape { q: 2, d: 2 }));
    }

    #[test]
    #[should_panic(expected = "grid shape must be positive")]
    fn new_still_panics_on_degenerate_sides() {
        GridShape::new(0, 3);
    }

    #[test]
    fn check_world_reports_capacity_mismatch() {
        let s = GridShape::new(4, 2);
        assert_eq!(s.check_world(32), Ok(()));
        assert_eq!(
            s.check_world(64).unwrap_err().to_string(),
            "tesseract [4,4,2] needs 32 ranks but 64 are available"
        );
    }

    #[test]
    fn coords_round_trip() {
        let s = GridShape::new(4, 2);
        for off in 0..s.size() {
            let (i, j, k) = s.coords_of(off);
            assert_eq!(s.offset_of(i, j, k), off);
        }
    }

    #[test]
    fn size_and_special_cases() {
        assert_eq!(GridShape::new(4, 2).size(), 32);
        assert!(GridShape::new(8, 1).is_2d());
        assert!(GridShape::new(4, 4).is_3d());
        assert!(!GridShape::new(4, 2).is_2d());
        assert!(!GridShape::new(4, 2).is_3d());
    }

    #[test]
    fn layer_major_layout_packs_layers() {
        let s = GridShape::new(2, 2);
        // Layer 0 = offsets 0..4, layer 1 = offsets 4..8.
        assert_eq!(s.coords_of(0), (0, 0, 0));
        assert_eq!(s.coords_of(3), (1, 1, 0));
        assert_eq!(s.coords_of(4), (0, 0, 1));
        assert_eq!(s.coords_of(7), (1, 1, 1));
    }

    #[test]
    fn a_row_blocks_cover_qd_rows() {
        let s = GridShape::new(2, 3);
        let mut seen = vec![false; s.q * s.d];
        for k in 0..s.d {
            for i in 0..s.q {
                seen[s.a_row_block(i, k)] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn grid_groups_have_correct_membership() {
        let shape = GridShape::new(2, 2);
        let out = Cluster::a100(shape.size()).run(|ctx| {
            let g = TesseractGrid::new(ctx, shape, 0);
            (g.coords, g.row.ranks().to_vec(), g.col.ranks().to_vec(), g.depth.ranks().to_vec())
        });
        // Rank 0 = (0,0,0): row {0,1}, col {0,2}, depth {0,4}.
        let (c0, r0, col0, d0) = &out.results[0];
        assert_eq!(*c0, (0, 0, 0));
        assert_eq!(r0, &vec![0, 1]);
        assert_eq!(col0, &vec![0, 2]);
        assert_eq!(d0, &vec![0, 4]);
        // Rank 7 = (1,1,1): row {6,7}, col {5,7}, depth {3,7}.
        let (c7, r7, col7, d7) = &out.results[7];
        assert_eq!(*c7, (1, 1, 1));
        assert_eq!(r7, &vec![6, 7]);
        assert_eq!(col7, &vec![5, 7]);
        assert_eq!(d7, &vec![3, 7]);
    }

    #[test]
    fn grid_with_base_offset() {
        let shape = GridShape::new(2, 1);
        let out = Cluster::a100(8).run(|ctx| {
            // Two independent grids: ranks 0..4 and 4..8.
            let base = if ctx.rank < 4 { 0 } else { 4 };
            let g = TesseractGrid::new(ctx, shape, base);
            (g.base, g.row.ranks().to_vec())
        });
        assert_eq!(out.results[5].0, 4);
        assert_eq!(out.results[5].1, vec![4, 5]);
    }
}
