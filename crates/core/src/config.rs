//! Transformer configuration shared by the distributed schemes and the
//! serial reference, matching the notation of paper §3 (batch `b`, sequence
//! `s`, hidden `h`, heads `n`, layers `N`).

/// Hyperparameters of one Transformer stack.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransformerConfig {
    /// Global batch size `b`.
    pub batch: usize,
    /// Sequence length `s`.
    pub seq: usize,
    /// Hidden size `h`.
    pub hidden: usize,
    /// Number of attention heads `n`; must divide `hidden`.
    pub heads: usize,
    /// MLP expansion factor (paper: 4, i.e. `[h, 4h]` and `[4h, h]`).
    pub mlp_ratio: usize,
    /// Number of Transformer layers `N`.
    pub layers: usize,
    /// Layer-norm epsilon.
    pub eps: f32,
}

impl TransformerConfig {
    /// A small configuration for tests: everything divisible by 4.
    pub fn tiny() -> Self {
        Self { batch: 4, seq: 4, hidden: 16, heads: 4, mlp_ratio: 4, layers: 1, eps: 1e-5 }
    }

    /// Head dimension `h / n`.
    pub fn head_dim(&self) -> usize {
        assert_eq!(self.hidden % self.heads, 0, "heads must divide hidden");
        self.hidden / self.heads
    }

    /// Total rows of the flattened `[b·s, h]` activation matrix.
    pub fn rows(&self) -> usize {
        self.batch * self.seq
    }

    /// MLP intermediate width `4h`.
    pub fn mlp_hidden(&self) -> usize {
        self.hidden * self.mlp_ratio
    }

    /// Validates divisibility for a `[q, q, d]` arrangement: `q·d | b`
    /// (whole samples per rank), `q | n` (whole heads per rank) and
    /// `q | h/n`-free constraints via `q | h` and `q | 4h`.
    pub fn validate_for_grid(&self, q: usize, d: usize) {
        assert_eq!(
            self.batch % (q * d),
            0,
            "batch {} not divisible by q*d = {}",
            self.batch,
            q * d
        );
        assert_eq!(self.heads % q, 0, "heads {} not divisible by q = {q}", self.heads);
        assert_eq!(self.hidden % q, 0, "hidden {} not divisible by q = {q}", self.hidden);
        assert_eq!(
            self.mlp_hidden() % q,
            0,
            "mlp hidden {} not divisible by q = {q}",
            self.mlp_hidden()
        );
    }

    /// Approximate parameter count of the stack (weights only).
    pub fn param_count(&self) -> usize {
        let attn = 3 * self.hidden * self.hidden + self.hidden * self.hidden;
        let mlp = 2 * self.hidden * self.mlp_hidden();
        self.layers * (attn + mlp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_is_consistent() {
        let c = TransformerConfig::tiny();
        assert_eq!(c.head_dim(), 4);
        assert_eq!(c.rows(), 16);
        assert_eq!(c.mlp_hidden(), 64);
        c.validate_for_grid(2, 2);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn validation_catches_bad_batch() {
        let c = TransformerConfig { batch: 3, ..TransformerConfig::tiny() };
        c.validate_for_grid(2, 2);
    }

    #[test]
    fn param_count_formula() {
        let c = TransformerConfig::tiny();
        assert_eq!(c.param_count(), 4 * 16 * 16 + 2 * 16 * 64);
    }
}
