//! Transformer configuration shared by the distributed schemes and the
//! serial reference, matching the notation of paper §3 (batch `b`, sequence
//! `s`, hidden `h`, heads `n`, layers `N`).

use std::fmt;

/// Why a processor arrangement cannot run a workload: the structured form
/// of every divisibility/capacity constraint the construction paths used to
/// enforce with bare `assert!`s. The planner rejects candidates by matching
/// on these; the legacy panicking entry points format them with [`fmt::Display`]
/// (the rendered text is identical to the old assert messages, so existing
/// `should_panic` expectations keep holding).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShapeError {
    /// A structural parameter (grid side, depth, dp, pp) was zero.
    NonPositive {
        /// What was zero, e.g. `"grid shape"`.
        what: &'static str,
    },
    /// A workload dimension does not divide evenly over an arrangement
    /// axis: `what = value` must be a multiple of `by = divisor`.
    Indivisible { what: &'static str, value: usize, by: &'static str, divisor: usize },
    /// An arrangement needs a different rank count than is available.
    Capacity { what: String, needed: usize, available: usize },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::NonPositive { what } => write!(f, "{what} must be positive"),
            ShapeError::Indivisible { what, value, by, divisor } => {
                write!(f, "{what} {value} not divisible by {by} = {divisor}")
            }
            ShapeError::Capacity { what, needed, available } => {
                write!(f, "{what} needs {needed} ranks but {available} are available")
            }
        }
    }
}

impl std::error::Error for ShapeError {}

/// Hyperparameters of one Transformer stack.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransformerConfig {
    /// Global batch size `b`.
    pub batch: usize,
    /// Sequence length `s`.
    pub seq: usize,
    /// Hidden size `h`.
    pub hidden: usize,
    /// Number of attention heads `n`; must divide `hidden`.
    pub heads: usize,
    /// MLP expansion factor (paper: 4, i.e. `[h, 4h]` and `[4h, h]`).
    pub mlp_ratio: usize,
    /// Number of Transformer layers `N`.
    pub layers: usize,
    /// Layer-norm epsilon.
    pub eps: f32,
}

impl TransformerConfig {
    /// A small configuration for tests: everything divisible by 4.
    pub fn tiny() -> Self {
        Self { batch: 4, seq: 4, hidden: 16, heads: 4, mlp_ratio: 4, layers: 1, eps: 1e-5 }
    }

    /// Head dimension `h / n`.
    pub fn head_dim(&self) -> usize {
        assert_eq!(self.hidden % self.heads, 0, "heads must divide hidden");
        self.hidden / self.heads
    }

    /// Total rows of the flattened `[b·s, h]` activation matrix.
    pub fn rows(&self) -> usize {
        self.batch * self.seq
    }

    /// MLP intermediate width `4h`.
    pub fn mlp_hidden(&self) -> usize {
        self.hidden * self.mlp_ratio
    }

    /// Checks divisibility for a `[q, q, d]` arrangement: `q·d | b`
    /// (whole samples per rank), `q | n` (whole heads per rank) and
    /// `q | h/n`-free constraints via `q | h` and `q | 4h`. Returns the
    /// first violated constraint so planners can reject candidates without
    /// unwinding.
    pub fn check_for_grid(&self, q: usize, d: usize) -> Result<(), ShapeError> {
        if self.batch % (q * d) != 0 {
            return Err(ShapeError::Indivisible {
                what: "batch",
                value: self.batch,
                by: "q*d",
                divisor: q * d,
            });
        }
        if self.heads % q != 0 {
            return Err(ShapeError::Indivisible {
                what: "heads",
                value: self.heads,
                by: "q",
                divisor: q,
            });
        }
        if self.hidden % q != 0 {
            return Err(ShapeError::Indivisible {
                what: "hidden",
                value: self.hidden,
                by: "q",
                divisor: q,
            });
        }
        if self.mlp_hidden() % q != 0 {
            return Err(ShapeError::Indivisible {
                what: "mlp hidden",
                value: self.mlp_hidden(),
                by: "q",
                divisor: q,
            });
        }
        Ok(())
    }

    /// Panicking form of [`TransformerConfig::check_for_grid`] for the
    /// execution paths, where an infeasible arrangement is a caller bug.
    pub fn validate_for_grid(&self, q: usize, d: usize) {
        if let Err(e) = self.check_for_grid(q, d) {
            panic!("{e}");
        }
    }

    /// [`TransformerConfig::check_for_grid`] plus the sequence-parallel
    /// constraint: the sequence dimension shards over the `q` members of
    /// the row fiber, so `q | s` (each rank holds whole `s/q`-row chunks
    /// of every sample).
    pub fn check_for_grid_sp(&self, q: usize, d: usize) -> Result<(), ShapeError> {
        self.check_for_grid(q, d)?;
        if self.seq % q != 0 {
            return Err(ShapeError::Indivisible {
                what: "seq",
                value: self.seq,
                by: "q",
                divisor: q,
            });
        }
        Ok(())
    }

    /// Panicking form of [`TransformerConfig::check_for_grid_sp`].
    pub fn validate_for_grid_sp(&self, q: usize, d: usize) {
        if let Err(e) = self.check_for_grid_sp(q, d) {
            panic!("{e}");
        }
    }

    /// Approximate parameter count of the stack (weights only).
    pub fn param_count(&self) -> usize {
        let attn = 3 * self.hidden * self.hidden + self.hidden * self.hidden;
        let mlp = 2 * self.hidden * self.mlp_hidden();
        self.layers * (attn + mlp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_is_consistent() {
        let c = TransformerConfig::tiny();
        assert_eq!(c.head_dim(), 4);
        assert_eq!(c.rows(), 16);
        assert_eq!(c.mlp_hidden(), 64);
        c.validate_for_grid(2, 2);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn validation_catches_bad_batch() {
        let c = TransformerConfig { batch: 3, ..TransformerConfig::tiny() };
        c.validate_for_grid(2, 2);
    }

    #[test]
    fn param_count_formula() {
        let c = TransformerConfig::tiny();
        assert_eq!(c.param_count(), 4 * 16 * 16 + 2 * 16 * 64);
    }

    #[test]
    fn check_for_grid_reports_the_violated_constraint() {
        let c = TransformerConfig { batch: 3, ..TransformerConfig::tiny() };
        assert_eq!(
            c.check_for_grid(2, 2).unwrap_err().to_string(),
            "batch 3 not divisible by q*d = 4"
        );
        let c = TransformerConfig { batch: 8, heads: 2, hidden: 16, ..TransformerConfig::tiny() };
        assert_eq!(
            c.check_for_grid(4, 2).unwrap_err().to_string(),
            "heads 2 not divisible by q = 4"
        );
        let c = TransformerConfig { batch: 8, hidden: 18, ..TransformerConfig::tiny() };
        assert_eq!(
            c.check_for_grid(4, 1).unwrap_err().to_string(),
            "hidden 18 not divisible by q = 4"
        );
        assert_eq!(TransformerConfig::tiny().check_for_grid(2, 2), Ok(()));
    }

    #[test]
    fn check_for_grid_sp_requires_seq_divisibility() {
        let c = TransformerConfig { seq: 6, ..TransformerConfig::tiny() };
        assert_eq!(
            c.check_for_grid_sp(4, 1).unwrap_err().to_string(),
            "seq 6 not divisible by q = 4"
        );
        // The base constraints are still checked first.
        let c = TransformerConfig { batch: 3, seq: 6, ..TransformerConfig::tiny() };
        assert_eq!(
            c.check_for_grid_sp(2, 2).unwrap_err().to_string(),
            "batch 3 not divisible by q*d = 4"
        );
        assert_eq!(TransformerConfig::tiny().check_for_grid_sp(2, 2), Ok(()));
    }

    #[test]
    #[should_panic(expected = "seq 6 not divisible by q = 4")]
    fn validate_for_grid_sp_panics_with_the_same_text() {
        let c = TransformerConfig { seq: 6, ..TransformerConfig::tiny() };
        c.validate_for_grid_sp(4, 1);
    }
}
