//! # tesseract-core
//!
//! The paper's primary contribution: **Tesseract**, a 2.5-D tensor-parallel
//! scheme arranging `p = q²·d` processors as `d` layers of `q×q` meshes.
//!
//! * [`grid`] — the `[q, q, d]` processor grid and its row/column/depth
//!   communication fibers (Figure 3).
//! * [`partition`] — Figure 4's split/combine rules for input (A-type) and
//!   weight (B-type) matrices.
//! * [`mm`] — Algorithm 3 (`C = A·B`) plus the `A·Bᵀ` / `Aᵀ·B` variants
//!   implementing the backward rules of Eq. 3, including the depth
//!   all-reduce of weight gradients.
//! * [`module`] — the [`module::Module`] trait every layer implements, the
//!   shared [`module::Tape`] activation stack and the [`module::Sequential`]
//!   container pipeline stages and layer lists are built from.
//! * [`layers`] — the Tesseract Transformer of §3.2: parallel linear, MLP,
//!   multi-head attention, distributed layer norm, residual blocks.
//! * [`infer`] — the forward-only serving path: per-request KV caches
//!   sharded with the `[q, q, d]` layout and a no-tape `forward_infer`
//!   stack with causal KV-cached attention.
//! * [`analysis`] — closed-form communication/memory formulas (Eq. 7–12 and
//!   the §1/§3.1 transmission-count claims).
//!
//! Everything is generic over [`tesseract_tensor::TensorLike`], so the same
//! code runs real math (`DenseTensor`) for correctness and shape-only math
//! (`ShadowTensor`) for paper-scale timing reproduction.

pub mod analysis;
pub mod config;
pub mod grid;
pub mod infer;
pub mod layers;
pub mod mm;
pub mod module;
pub mod partition;

pub use config::{ShapeError, TransformerConfig};
pub use grid::{GridShape, TesseractGrid};
pub use infer::{HeadKv, InferBatch, InferModel, LayerKv, RequestKv};
pub use layers::SpMode;
pub use layers::{
    TesseractAttention, TesseractLayerNorm, TesseractLinear, TesseractMlp, TesseractTransformer,
    TesseractTransformerLayer,
};
pub use mm::{
    sp_gather_from_seq, sp_scatter_to_seq, tesseract_matmul, tesseract_matmul_nt,
    tesseract_matmul_nt_serial, tesseract_matmul_nt_sp, tesseract_matmul_serial,
    tesseract_matmul_sp_in, tesseract_matmul_tn, tesseract_matmul_tn_serial,
    tesseract_matmul_tn_sp,
};
pub use module::{CheckpointSegment, Module, ParamRef, Sequential, Tape};
