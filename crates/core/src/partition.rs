//! Matrix partitioning per Figure 4.
//!
//! * **A-type** (inputs, activations, outputs): a global `[a, b]` matrix is
//!   split into `q·d` row blocks × `q` column blocks; rank `(i, j, k)` owns
//!   block `(h, j)` with `h = i + k·q`, of shape `[a/(q·d), b/q]`.
//! * **B-type** (weights): a global `[b, c]` matrix is split into `q×q`
//!   blocks; rank `(i, j, k)` owns block `(i, j)` of shape `[b/q, c/q]`,
//!   **replicated across depth** — this replication is the extra `d` factor
//!   in the paper's memory formula (Eq. 8) and what the depth all-reduce of
//!   `B'` synchronizes in backward.
//!
//! These helpers operate on dense [`Matrix`] values and are used by tests,
//! examples and the verification binaries to move between global and
//! per-rank views.

use tesseract_tensor::Matrix;

use crate::grid::GridShape;

/// Checks `[rows, cols]` divides evenly into the A-type partition grid.
pub fn validate_a_dims(shape: GridShape, rows: usize, cols: usize) {
    assert_eq!(rows % (shape.q * shape.d), 0, "rows {rows} not divisible by q*d");
    assert_eq!(cols % shape.q, 0, "cols {cols} not divisible by q");
}

/// Checks `[rows, cols]` divides evenly into the B-type partition grid.
pub fn validate_b_dims(shape: GridShape, rows: usize, cols: usize) {
    assert_eq!(rows % shape.q, 0, "rows {rows} not divisible by q");
    assert_eq!(cols % shape.q, 0, "cols {cols} not divisible by q");
}

/// Local A-type block shape for a global `[rows, cols]`.
pub fn a_block_shape(shape: GridShape, rows: usize, cols: usize) -> (usize, usize) {
    validate_a_dims(shape, rows, cols);
    (rows / (shape.q * shape.d), cols / shape.q)
}

/// Local B-type block shape for a global `[rows, cols]`.
pub fn b_block_shape(shape: GridShape, rows: usize, cols: usize) -> (usize, usize) {
    validate_b_dims(shape, rows, cols);
    (rows / shape.q, cols / shape.q)
}

/// The A-type block owned by rank `(i, j, k)` (Figure 4a).
pub fn a_block(global: &Matrix, shape: GridShape, i: usize, j: usize, k: usize) -> Matrix {
    let (br, bc) = a_block_shape(shape, global.rows(), global.cols());
    let h = shape.a_row_block(i, k);
    global.block(h * br, j * bc, br, bc)
}

/// The B-type block owned by rank `(i, j, ·)` (Figure 4b; depth-replicated).
pub fn b_block(global: &Matrix, shape: GridShape, i: usize, j: usize) -> Matrix {
    let (br, bc) = b_block_shape(shape, global.rows(), global.cols());
    global.block(i * br, j * bc, br, bc)
}

/// Splits a global A-type matrix into per-rank blocks indexed by grid
/// offset (`k·q² + i·q + j`).
pub fn split_a(global: &Matrix, shape: GridShape) -> Vec<Matrix> {
    (0..shape.size())
        .map(|off| {
            let (i, j, k) = shape.coords_of(off);
            a_block(global, shape, i, j, k)
        })
        .collect()
}

/// Splits a global B-type matrix into per-rank blocks indexed by grid
/// offset (each depth layer receives an identical copy).
pub fn split_b(global: &Matrix, shape: GridShape) -> Vec<Matrix> {
    (0..shape.size())
        .map(|off| {
            let (i, j, _k) = shape.coords_of(off);
            b_block(global, shape, i, j)
        })
        .collect()
}

/// Combines per-rank A/C-type blocks (indexed by grid offset) back into the
/// global matrix (Figure 4c). Blocks from different depth layers land in
/// different row bands; depth replicas of C do not exist (each layer owns
/// distinct rows `h = i + k·q`).
pub fn combine_c(parts: &[Matrix], shape: GridShape) -> Matrix {
    assert_eq!(parts.len(), shape.size(), "need one block per rank");
    let (br, bc) = parts[0].shape();
    assert!(parts.iter().all(|p| p.shape() == (br, bc)), "ragged C blocks");
    let mut global = Matrix::zeros(br * shape.q * shape.d, bc * shape.q);
    for (off, part) in parts.iter().enumerate() {
        let (i, j, k) = shape.coords_of(off);
        let h = shape.a_row_block(i, k);
        global.set_block(h * br, j * bc, part);
    }
    global
}

/// Combines B-type blocks from depth layer 0 back into the global matrix
/// (used to inspect weights after training).
pub fn combine_b(parts: &[Matrix], shape: GridShape) -> Matrix {
    assert_eq!(parts.len(), shape.size(), "need one block per rank");
    let (br, bc) = parts[0].shape();
    let mut global = Matrix::zeros(br * shape.q, bc * shape.q);
    for (off, part) in parts.iter().enumerate() {
        let (i, j, k) = shape.coords_of(off);
        if k == 0 {
            global.set_block(i * br, j * bc, part);
        }
    }
    global
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesseract_tensor::Xoshiro256StarStar;

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
    }

    #[test]
    fn a_split_combine_round_trip() {
        let shape = GridShape::new(2, 2);
        let global = random(8, 6, 1);
        let parts = split_a(&global, shape);
        assert_eq!(parts.len(), 8);
        assert_eq!(parts[0].shape(), (2, 3));
        assert_eq!(combine_c(&parts, shape), global);
    }

    #[test]
    fn b_split_is_depth_replicated() {
        let shape = GridShape::new(2, 3);
        let global = random(4, 4, 2);
        let parts = split_b(&global, shape);
        // Same (i, j) across k must be identical.
        for i in 0..2 {
            for j in 0..2 {
                let p0 = &parts[shape.offset_of(i, j, 0)];
                for k in 1..3 {
                    assert_eq!(&parts[shape.offset_of(i, j, k)], p0);
                }
            }
        }
        assert_eq!(combine_b(&parts, shape), global);
    }

    #[test]
    fn a_block_uses_h_equals_i_plus_kq() {
        let shape = GridShape::new(2, 2);
        let global = Matrix::from_fn(8, 2, |i, _| i as f32);
        // Rank (0, 0, 1) owns row block h = 0 + 1*2 = 2 → global rows 4..6.
        let blk = a_block(&global, shape, 0, 0, 1);
        assert_eq!(blk.data(), &[4.0, 5.0]);
    }

    #[test]
    fn d1_reduces_to_summa_partitioning() {
        let shape = GridShape::new(2, 1);
        let global = random(4, 4, 3);
        let a_parts = split_a(&global, shape);
        let b_parts = split_b(&global, shape);
        // With d = 1, A and B partitioning coincide (plain 2-D blocks).
        assert_eq!(a_parts, b_parts);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_dims_panic() {
        a_block_shape(GridShape::new(2, 2), 6, 4);
    }
}
