//! The `Module` abstraction: one interface for every distributed layer.
//!
//! Every Tesseract layer used to re-implement the same duck-typed trio —
//! inherent `forward` / `backward` / `visit_params` — plus its own private
//! LIFO cache of forward activations. [`Module`] makes that contract a
//! first-class trait, [`Tape`] centralizes the microbatch activation
//! stacks (push-on-forward / pop-on-backward, with balance accounting so
//! GPipe-style schedules cannot silently desync), and [`Sequential`] turns
//! layer lists and pipeline-stage slices into ordinary `Module`
//! compositions.
//!
//! The trait is generic over the communication world `G` (default:
//! [`TesseractGrid`]) so the Megatron baseline — whose layers run on a 1-D
//! `MegatronWorld` — shares the same interface. Consumers that only need
//! parameters (optimizers, gradient sync, gradient clipping) take
//! `&mut dyn Module<T>` and call [`Module::visit_params`]; consumers that
//! drive computation (trainer, pipeline schedules, timing harnesses) call
//! [`Module::forward`] / [`Module::backward`].

use std::sync::Arc;

use tesseract_comm::{Payload, RankCtx};
use tesseract_tensor::TensorLike;

use crate::grid::TesseractGrid;

/// One (weight, gradient) pair exposed to optimizers and gradient sync.
pub struct ParamRef<'a, T> {
    pub weight: &'a mut T,
    pub grad: &'a mut T,
}

/// A distributed layer: forward/backward over local activation blocks on a
/// communication world `G`, plus deterministic parameter traversal.
///
/// SPMD contract: all ranks of a grid hold structurally identical modules
/// and must call the same methods in the same order; `visit_params` must
/// visit parameters in a deterministic order so per-parameter collectives
/// (data-parallel all-reduce, optimizer state) line up across ranks.
pub trait Module<T: TensorLike + Payload, G = TesseractGrid> {
    /// Short stable name used to label trace scopes (e.g. `linear`,
    /// `layernorm`). Purely observational: tracing-disabled runs never
    /// call it on a hot path.
    fn name(&self) -> &'static str {
        "module"
    }

    /// Forward over this rank's local activation block. Implementations
    /// that need activations in `backward` push them onto a [`Tape`].
    ///
    /// Activations flow as `Arc<T>` so layers can cache them, broadcast
    /// them, or hand them to the next layer without deep-copying; the
    /// borrowed kernel API is reached through deref coercion (`&Arc<T>`
    /// coerces to `&T` at call sites).
    fn forward(&mut self, grid: &G, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T>;

    /// Backward; returns `dX` and accumulates parameter gradients. Pops
    /// the activations cached by the matching `forward` (LIFO, so several
    /// queued microbatch forwards are unwound in reverse order).
    fn backward(&mut self, grid: &G, ctx: &mut RankCtx, dy: &Arc<T>) -> Arc<T>;

    /// Visits every (weight, grad) pair in a deterministic order.
    /// Parameter-free modules use the default empty body.
    fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_, T>)) {
        let _ = f;
    }

    /// Number of parameter tensors this module exposes.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |_| n += 1);
        n
    }

    /// Total elements across this rank's parameter blocks.
    fn param_elems(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |pr| n += pr.weight.elem_count());
        n
    }

    /// Zeroes accumulated gradients. Called at step boundaries; modules
    /// that own a [`Tape`] also assert it is balanced here (every forward
    /// matched by a backward).
    fn zero_grad(&mut self) {
        self.visit_params(&mut |pr| {
            *pr.grad = T::zeros(pr.grad.rows(), pr.grad.cols());
        });
    }

    /// Drops every queued forward activation and releases its tracked
    /// bytes, as if the matching backwards had run. Checkpointed
    /// recomputation calls this after a segment's forward so only the
    /// segment *input* stays resident; the tape is rebuilt by the replay
    /// inside backward. Modules without tapes use the default no-op.
    fn reset_tape(&mut self, ctx: &mut RankCtx) {
        let _ = ctx;
    }
}

// ---------------------------------------------------------------------------
// Tape
// ---------------------------------------------------------------------------

/// A LIFO stack of per-microbatch forward activations.
///
/// GPipe-style pipelining runs several microbatch forwards before the
/// matching backwards (in reverse order), so entries push on forward and
/// pop on backward. The tape counts pushes and pops so a desynchronized
/// schedule fails loudly: popping an empty tape panics, and
/// [`Tape::debug_assert_balanced`] (called by `zero_grad` at step
/// boundaries) catches forwards that were never unwound.
/// Entries may carry a tracked byte size (via [`Tape::push_tracked`]) that
/// feeds the per-rank activation high-water mark in
/// [`tesseract_tensor::Meter::activation_bytes_peak`]; the matching pop (or
/// a checkpoint [`Tape::clear_tracked`]) releases exactly what the push
/// charged.
#[derive(Debug)]
pub struct Tape<V> {
    items: Vec<V>,
    /// Tracked byte size per entry, parallel to `items` (0 for untracked
    /// pushes).
    bytes: Vec<u64>,
    pushes: u64,
    pops: u64,
}

impl<V> Default for Tape<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> Tape<V> {
    pub fn new() -> Self {
        Self { items: Vec::new(), bytes: Vec::new(), pushes: 0, pops: 0 }
    }

    /// Caches one microbatch's forward state.
    pub fn push(&mut self, v: V) {
        self.pushes += 1;
        self.items.push(v);
        self.bytes.push(0);
    }

    /// Caches one microbatch's forward state and books `bytes` of tape
    /// residency against the rank's activation high-water mark.
    pub fn push_tracked(&mut self, ctx: &mut RankCtx, bytes: u64, v: V) {
        ctx.charge_tape_push(bytes);
        self.pushes += 1;
        self.items.push(v);
        self.bytes.push(bytes);
    }

    /// Retrieves the most recent unconsumed forward state.
    ///
    /// Panics when the tape is empty: a backward was issued without a
    /// matching forward (`what` names the offending module).
    pub fn pop(&mut self, what: &str) -> V {
        self.pops += 1;
        self.bytes.pop();
        self.items.pop().unwrap_or_else(|| {
            panic!(
                "{what}: backward without forward (activation tape empty after \
                 {} forwards / {} backwards)",
                self.pushes, self.pops
            )
        })
    }

    /// [`Tape::pop`] plus release of the bytes the matching
    /// [`Tape::push_tracked`] charged.
    pub fn pop_tracked(&mut self, ctx: &mut RankCtx, what: &str) -> V {
        self.pops += 1;
        if let Some(b) = self.bytes.pop() {
            ctx.charge_tape_pop(b);
        }
        self.items.pop().unwrap_or_else(|| {
            panic!(
                "{what}: backward without forward (activation tape empty after \
                 {} forwards / {} backwards)",
                self.pushes, self.pops
            )
        })
    }

    /// Drops every queued entry and releases all tracked bytes, counting
    /// the drops as pops so the balance invariant holds. The checkpoint
    /// wrapper calls this through [`Module::reset_tape`] after a segment's
    /// forward.
    pub fn clear_tracked(&mut self, ctx: &mut RankCtx) {
        self.pops += self.items.len() as u64;
        self.items.clear();
        ctx.charge_tape_pop(self.bytes.drain(..).sum());
    }

    /// Microbatches currently queued (forwards not yet unwound).
    pub fn depth(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Lifetime push/pop counters (for schedule diagnostics).
    pub fn counts(&self) -> (u64, u64) {
        (self.pushes, self.pops)
    }

    /// Debug-asserts that every forward has been consumed by a backward —
    /// the step-boundary invariant GPipe schedules must maintain.
    pub fn debug_assert_balanced(&self, what: &str) {
        debug_assert!(
            self.items.is_empty(),
            "{what}: activation tape unbalanced at step boundary \
             ({} forwards vs {} backwards; {} microbatch(es) never unwound)",
            self.pushes,
            self.pops,
            self.items.len()
        );
    }
}

/// Zeroes every gradient a module exposes (the body of the default
/// [`Module::zero_grad`], reusable from overrides that add tape asserts).
pub fn zero_params<T: TensorLike + Payload, G>(m: &mut dyn Module<T, G>) {
    m.visit_params(&mut |pr| {
        *pr.grad = T::zeros(pr.grad.rows(), pr.grad.cols());
    });
}

// ---------------------------------------------------------------------------
// Sequential
// ---------------------------------------------------------------------------

/// An ordered composition of modules: forward runs them left to right,
/// backward unwinds right to left. This is how the Transformer stack, the
/// ViT (embed → body → pool → head) and hybrid pipeline-stage slices are
/// all expressed.
pub struct Sequential<T, G = TesseractGrid> {
    mods: Vec<Box<dyn Module<T, G> + Send>>,
}

impl<T: TensorLike + Payload, G> Default for Sequential<T, G> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: TensorLike + Payload, G> Sequential<T, G> {
    pub fn new() -> Self {
        Self { mods: Vec::new() }
    }

    pub fn from_modules(mods: Vec<Box<dyn Module<T, G> + Send>>) -> Self {
        Self { mods }
    }

    /// Appends a module; returns `self` for builder-style chaining.
    pub fn push(mut self, m: impl Module<T, G> + Send + 'static) -> Self {
        self.mods.push(Box::new(m));
        self
    }

    /// Appends a boxed module in place.
    pub fn push_boxed(&mut self, m: Box<dyn Module<T, G> + Send>) {
        self.mods.push(m);
    }

    pub fn len(&self) -> usize {
        self.mods.len()
    }

    pub fn is_empty(&self) -> bool {
        self.mods.is_empty()
    }

    /// The boxed modules, for stage re-slicing and per-module inspection.
    pub fn modules_mut(&mut self) -> &mut Vec<Box<dyn Module<T, G> + Send>> {
        &mut self.mods
    }
}

impl<T: TensorLike + Payload, G> Module<T, G> for Sequential<T, G> {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn forward(&mut self, grid: &G, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        let mut h = Arc::clone(x);
        for m in &mut self.mods {
            h = ctx.traced(m.name(), "fwd", |ctx| m.forward(grid, ctx, &h));
        }
        h
    }

    fn backward(&mut self, grid: &G, ctx: &mut RankCtx, dy: &Arc<T>) -> Arc<T> {
        let mut g = Arc::clone(dy);
        for m in self.mods.iter_mut().rev() {
            g = ctx.traced(m.name(), "bwd", |ctx| m.backward(grid, ctx, &g));
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_, T>)) {
        for m in &mut self.mods {
            m.visit_params(f);
        }
    }

    fn zero_grad(&mut self) {
        for m in &mut self.mods {
            m.zero_grad();
        }
    }

    fn reset_tape(&mut self, ctx: &mut RankCtx) {
        for m in &mut self.mods {
            m.reset_tape(ctx);
        }
    }
}

// ---------------------------------------------------------------------------
// CheckpointSegment
// ---------------------------------------------------------------------------

/// Activation-checkpointing wrapper: runs a [`Sequential`] segment's
/// forward, then immediately drops the segment's internal activation tapes
/// ([`Module::reset_tape`]) and keeps only the segment *input* resident.
/// Backward replays the segment forward to rebuild the tapes — bitwise
/// deterministic (same data, same kernels) and issued at the same program
/// point on every rank, so the replayed collective schedule stays
/// SPMD-aligned — then unwinds it as usual.
///
/// Peak tape residency drops from "every layer of the stack" to "one
/// segment input per segment plus the deepest single segment", at the cost
/// of one extra forward per segment (the classic recompute trade).
pub struct CheckpointSegment<T, G = TesseractGrid> {
    inner: Sequential<T, G>,
    input_tape: Tape<Arc<T>>,
}

impl<T: TensorLike + Payload, G> CheckpointSegment<T, G> {
    pub fn new(inner: Sequential<T, G>) -> Self {
        Self { inner, input_tape: Tape::new() }
    }

    /// Number of modules inside the checkpointed segment.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<T: TensorLike + Payload, G> Module<T, G> for CheckpointSegment<T, G> {
    fn name(&self) -> &'static str {
        "checkpoint"
    }

    fn forward(&mut self, grid: &G, ctx: &mut RankCtx, x: &Arc<T>) -> Arc<T> {
        let y = self.inner.forward(grid, ctx, x);
        // Everything the segment taped is recomputable from `x`: release
        // it now and keep only the input.
        self.inner.reset_tape(ctx);
        self.input_tape.push_tracked(ctx, x.byte_size() as u64, Arc::clone(x));
        y
    }

    fn backward(&mut self, grid: &G, ctx: &mut RankCtx, dy: &Arc<T>) -> Arc<T> {
        let x = self.input_tape.pop_tracked(ctx, "CheckpointSegment");
        let _ = self.inner.forward(grid, ctx, &x);
        self.inner.backward(grid, ctx, dy)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_, T>)) {
        self.inner.visit_params(f);
    }

    fn zero_grad(&mut self) {
        self.input_tape.debug_assert_balanced("CheckpointSegment");
        self.inner.zero_grad();
    }

    fn reset_tape(&mut self, ctx: &mut RankCtx) {
        self.input_tape.clear_tracked(ctx);
        self.inner.reset_tape(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesseract_tensor::DenseTensor;

    #[test]
    fn tape_is_lifo_and_counts() {
        let mut t: Tape<u32> = Tape::new();
        for v in 0..4 {
            t.push(v);
        }
        assert_eq!(t.depth(), 4);
        for v in (0..4).rev() {
            assert_eq!(t.pop("test"), v);
        }
        assert!(t.is_empty());
        assert_eq!(t.counts(), (4, 4));
        t.debug_assert_balanced("test");
    }

    #[test]
    #[should_panic(expected = "backward without forward")]
    fn tape_pop_on_empty_panics() {
        let mut t: Tape<DenseTensor> = Tape::new();
        let _ = t.pop("test-module");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "activation tape unbalanced")]
    fn tape_imbalance_is_caught_at_step_boundary() {
        let mut t: Tape<u8> = Tape::new();
        t.push(1);
        t.push(2);
        let _ = t.pop("test");
        t.debug_assert_balanced("test");
    }
}
