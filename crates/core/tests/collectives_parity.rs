//! Parity suite for the zero-copy collective path: the `Arc`-shared
//! broadcasts and in-place reductions used by the three Tesseract matmul
//! variants must be **bitwise** identical to the historical cloning path
//! (every receiver gets a deep copy, reductions fold cloned deposits), and
//! the forward pass must perform zero per-receiver payload copies.
//!
//! The cloning implementations below are deliberate re-creations of the
//! pre-refactor algorithms on the owned collective API; they share nothing
//! with `tesseract_core::mm` except the grid.

use std::sync::Arc;

use tesseract_comm::{Cluster, CollectiveOp, RankCtx};
use tesseract_core::partition::{a_block, b_block};
use tesseract_core::{
    tesseract_matmul, tesseract_matmul_nt, tesseract_matmul_tn, GridShape, TesseractGrid,
};
use tesseract_tensor::{DenseTensor, Matrix, TensorLike, Xoshiro256StarStar};

/// The grids the issue names: 2-D, 2.5-D and the wide 2-D arrangement.
const SHAPES: [(usize, usize); 3] = [(2, 1), (2, 2), (4, 1)];

fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
}

/// Algorithm 3 on the owned (cloning) collectives.
fn cloning_matmul(
    grid: &TesseractGrid,
    ctx: &mut RankCtx,
    a_local: &DenseTensor,
    b_local: &DenseTensor,
) -> DenseTensor {
    let q = grid.shape.q;
    let mut c: Option<DenseTensor> = None;
    for t in 0..q {
        let a_t = grid.row.broadcast(ctx, t, (grid.j() == t).then(|| a_local.clone()));
        let b_t = grid.col.broadcast(ctx, t, (grid.i() == t).then(|| b_local.clone()));
        let partial = a_t.matmul(&b_t, &mut ctx.meter);
        match c.as_mut() {
            None => c = Some(partial),
            Some(acc) => acc.add_assign(&partial, &mut ctx.meter),
        }
    }
    c.expect("q >= 1")
}

/// `C = A·Bᵀ` on the owned collectives.
fn cloning_matmul_nt(
    grid: &TesseractGrid,
    ctx: &mut RankCtx,
    a_local: &DenseTensor,
    b_local: &DenseTensor,
) -> DenseTensor {
    let q = grid.shape.q;
    let mut mine: Option<DenseTensor> = None;
    for t in 0..q {
        let b_t = grid.col.broadcast(ctx, t, (grid.i() == t).then(|| b_local.clone()));
        let partial = a_local.matmul_nt(&b_t, &mut ctx.meter);
        let reduced = grid.row.reduce(ctx, t, partial);
        if grid.j() == t {
            mine = Some(reduced.expect("root receives reduction"));
        }
    }
    mine.expect("every rank is root for exactly one t")
}

/// `C = Aᵀ·B` on the owned collectives.
fn cloning_matmul_tn(
    grid: &TesseractGrid,
    ctx: &mut RankCtx,
    a_local: &DenseTensor,
    b_local: &DenseTensor,
    depth_reduce: bool,
) -> DenseTensor {
    let q = grid.shape.q;
    let mut mine: Option<DenseTensor> = None;
    for t in 0..q {
        let a_t = grid.row.broadcast(ctx, t, (grid.j() == t).then(|| a_local.clone()));
        let partial = a_t.matmul_tn(b_local, &mut ctx.meter);
        let reduced = grid.col.reduce(ctx, t, partial);
        if grid.i() == t {
            mine = Some(reduced.expect("root receives reduction"));
        }
    }
    let mut c = mine.expect("every rank is root for exactly one t");
    if depth_reduce && grid.shape.d > 1 {
        c = grid.depth.all_reduce(ctx, c);
    }
    c
}

#[test]
fn shared_matmul_is_bitwise_equal_to_cloning_path() {
    for (q, d) in SHAPES {
        let shape = GridShape::new(q, d);
        let (a_rows, inner, b_cols) = (4 * q * d, 2 * q, 3 * q);
        let a = random(a_rows, inner, 7);
        let b = random(inner, b_cols, 8);
        let run = |shared: bool| {
            let (a, b) = (a.clone(), b.clone());
            Cluster::a100(shape.size()).run(move |ctx| {
                let grid = TesseractGrid::new(ctx, shape, 0);
                let (i, j, k) = grid.coords;
                let a_loc = DenseTensor::from_matrix(a_block(&a, shape, i, j, k));
                let b_loc = DenseTensor::from_matrix(b_block(&b, shape, i, j));
                if shared {
                    tesseract_matmul(&grid, ctx, &Arc::new(a_loc), &Arc::new(b_loc)).into_matrix()
                } else {
                    cloning_matmul(&grid, ctx, &a_loc, &b_loc).into_matrix()
                }
            })
        };
        let shared = run(true);
        let cloning = run(false);
        assert_eq!(shared.results, cloning.results, "[{q},{q},{d}]: matmul diverged");
        // The shared path never copies a payload; the cloning path pays one
        // copy per receiver (the counter itself is exercised both ways).
        assert_eq!(shared.comm.total_copies(), 0, "[{q},{q},{d}]");
        assert!(cloning.comm.total_copies() > 0, "[{q},{q},{d}]");
    }
}

#[test]
fn shared_matmul_nt_is_bitwise_equal_to_cloning_path() {
    for (q, d) in SHAPES {
        let shape = GridShape::new(q, d);
        // Global: A [a, c], B [b, c] → C = A·Bᵀ is [a, b].
        let (a_rows, b_rows, c_cols) = (4 * q * d, 2 * q, 3 * q);
        let a = random(a_rows, c_cols, 17);
        let b = random(b_rows, c_cols, 18);
        let run = |shared: bool| {
            let (a, b) = (a.clone(), b.clone());
            Cluster::a100(shape.size()).run(move |ctx| {
                let grid = TesseractGrid::new(ctx, shape, 0);
                let (i, j, k) = grid.coords;
                let a_loc = DenseTensor::from_matrix(a_block(&a, shape, i, j, k));
                let b_loc = DenseTensor::from_matrix(b_block(&b, shape, i, j));
                if shared {
                    tesseract_matmul_nt(&grid, ctx, &a_loc, &Arc::new(b_loc)).matrix().clone()
                } else {
                    cloning_matmul_nt(&grid, ctx, &a_loc, &b_loc).into_matrix()
                }
            })
        };
        let shared = run(true);
        let cloning = run(false);
        assert_eq!(shared.results, cloning.results, "[{q},{q},{d}]: matmul_nt diverged");
        assert_eq!(shared.comm.total_copies(), 0, "[{q},{q},{d}]");
    }
}

#[test]
fn shared_matmul_tn_is_bitwise_equal_to_cloning_path() {
    for (q, d) in SHAPES {
        let shape = GridShape::new(q, d);
        // Global: A [a, b], B [a, c] → C = Aᵀ·B is [b, c].
        let (a_rows, b_cols, c_cols) = (4 * q * d, 2 * q, 3 * q);
        let a = random(a_rows, b_cols, 27);
        let b = random(a_rows, c_cols, 28);
        let run = |shared: bool| {
            let (a, b) = (a.clone(), b.clone());
            Cluster::a100(shape.size()).run(move |ctx| {
                let grid = TesseractGrid::new(ctx, shape, 0);
                let (i, j, k) = grid.coords;
                let a_loc = DenseTensor::from_matrix(a_block(&a, shape, i, j, k));
                let b_loc = DenseTensor::from_matrix(a_block(&b, shape, i, j, k));
                if shared {
                    tesseract_matmul_tn(&grid, ctx, &Arc::new(a_loc), &b_loc, true).matrix().clone()
                } else {
                    cloning_matmul_tn(&grid, ctx, &a_loc, &b_loc, true).into_matrix()
                }
            })
        };
        let shared = run(true);
        let cloning = run(false);
        assert_eq!(shared.results, cloning.results, "[{q},{q},{d}]: matmul_tn diverged");
        assert_eq!(shared.comm.total_copies(), 0, "[{q},{q},{d}]");
    }
}

/// The issue's acceptance gate (also the CI copy-regression gate, since
/// `scripts/ci.sh` runs this file under `cargo test`): one forward
/// `tesseract_matmul` on `[4, 4, 2]` must register **zero** per-receiver
/// payload clones on every rank — each broadcast panel is materialized
/// exactly once regardless of the 4-member group fan-out.
#[test]
fn forward_matmul_on_4x4x2_copies_nothing() {
    let shape = GridShape::new(4, 2); // [4, 4, 2] = 32 ranks
    let (a_rows, inner, b_cols) = (4 * 4 * 2 * 2, 4 * 2, 4 * 3);
    let a = random(a_rows, inner, 37);
    let b = random(inner, b_cols, 38);
    let out = Cluster::a100(shape.size()).run(move |ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let a_loc = Arc::new(DenseTensor::from_matrix(a_block(&a, shape, i, j, k)));
        let b_loc = Arc::new(DenseTensor::from_matrix(b_block(&b, shape, i, j)));
        let _ = tesseract_matmul(&grid, ctx, &a_loc, &b_loc);
        ctx.flush_compute();
    });
    let bcast = out.comm.get(CollectiveOp::Broadcast);
    assert!(bcast.calls > 0, "the forward must actually broadcast");
    assert_eq!(bcast.copies, 0, "broadcast panels must never be cloned per receiver");
    assert_eq!(out.comm.total_copies(), 0, "the whole forward must perform zero payload copies");
    for (rank, report) in out.reports.iter().enumerate() {
        assert_eq!(report.payload_copies, 0, "rank {rank} cloned a payload");
        assert_eq!(report.payload_copy_bytes, 0, "rank {rank} cloned payload bytes");
    }
}
