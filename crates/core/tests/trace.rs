//! Integration tests of the per-rank event tracer on the simulated cluster:
//! exact reconciliation of trace totals against the run's own accounting,
//! zero-perturbation when enabled, scope balance under GPipe tape rewind,
//! begin/complete pairing across group members and the Chrome-trace schema.

use std::sync::Arc;

use tesseract_comm::RunConfig;
use tesseract_core::layers::{TesseractLayerNorm, TesseractLinear};
use tesseract_core::partition::{a_block, b_block};
use tesseract_core::{
    tesseract_matmul, tesseract_matmul_nt, tesseract_matmul_tn, GridShape, Module, Sequential,
    TesseractGrid,
};
use tesseract_tensor::trace::{chrome, json};
use tesseract_tensor::{DenseTensor, Matrix, TraceKind, Xoshiro256StarStar};

const SEED: u64 = 7;

fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
}

/// One traced fwd+bwd matmul step on the `[q, q, d]` grid.
fn traced_step(shape: GridShape, trace: bool) -> tesseract_comm::RunOutput<Matrix> {
    let rows = 8 * shape.q * shape.d;
    let a = random(rows, 16, 1);
    let b = random(16, 16, 2);
    RunConfig::from_env(shape.size()).with_trace(trace).cluster().run(move |ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let a_loc = Arc::new(DenseTensor::from_matrix(a_block(&a, shape, i, j, k)));
        let b_loc = Arc::new(DenseTensor::from_matrix(b_block(&b, shape, i, j)));
        let dy = tesseract_matmul(&grid, ctx, &a_loc, &b_loc);
        let _dx = tesseract_matmul_nt(&grid, ctx, &dy, &b_loc);
        let dw = tesseract_matmul_tn(&grid, ctx, &a_loc, &dy, true);
        ctx.flush_compute();
        dw.matrix().clone()
    })
}

/// The acceptance grid: every per-rank integer counter rebuilt from the
/// trace must equal the `RankReport` exactly, and the per-op call/wire/copy
/// counts must equal the global `CommStats` exactly.
#[test]
fn trace_reconciles_with_meter_and_stats_on_the_cube() {
    let out = traced_step(GridShape::new(2, 2), true);
    assert_eq!(out.traces.len(), 8);
    for (report, events) in out.reports.iter().zip(&out.traces) {
        assert!(!events.is_empty());
        let (mut flops, mut kernels, mut bytes) = (0.0f64, 0u64, 0u64);
        let (mut blocked, mut hidden) = (0u64, 0u64);
        for ev in events {
            assert_eq!(ev.rank, report.rank, "event recorded on the wrong rank's timeline");
            match &ev.kind {
                TraceKind::Compute { flops: f, kernels: k, bytes_allocated: b } => {
                    flops += f;
                    kernels += k;
                    bytes += b;
                }
                TraceKind::Comm { blocked_nanos, hidden_nanos, .. } => {
                    blocked += blocked_nanos;
                    hidden += hidden_nanos;
                }
                _ => {}
            }
        }
        assert_eq!(flops, report.flops);
        assert_eq!(kernels, report.kernels);
        assert_eq!(bytes, report.bytes_allocated);
        assert_eq!(blocked, report.comm_wait_nanos);
        assert_eq!(hidden, report.overlap_hidden_nanos);
    }
    // Exactly one rank records each logical collective into the stats.
    let mut calls: std::collections::HashMap<&'static str, u64> = Default::default();
    let mut wire: std::collections::HashMap<&'static str, u64> = Default::default();
    for ev in out.traces.iter().flatten() {
        if let TraceKind::Comm { op, wire_bytes, recorded, .. } = &ev.kind {
            if *recorded {
                *calls.entry(op).or_default() += 1;
            }
            *wire.entry(op).or_default() += wire_bytes;
        }
    }
    for (op, stats) in &out.comm.per_op {
        assert_eq!(calls.remove(op.name()).unwrap_or(0), stats.calls, "{}", op.name());
        assert_eq!(wire.remove(op.name()).unwrap_or(0), stats.wire_bytes, "{}", op.name());
    }
    assert!(calls.is_empty() && wire.is_empty(), "trace saw ops the stats never recorded");
}

/// Tracing is observational: enabling it must not change results, reports,
/// stats or the makespan by a single bit — and disabled runs carry no
/// events.
#[test]
fn tracing_does_not_perturb_results_or_accounting() {
    let shape = GridShape::new(2, 1);
    let plain = traced_step(shape, false);
    let traced = traced_step(shape, true);
    assert_eq!(plain.results, traced.results);
    assert_eq!(plain.reports, traced.reports);
    assert_eq!(plain.makespan(), traced.makespan());
    assert_eq!(plain.comm.total_wire_bytes(), traced.comm.total_wire_bytes());
    assert!(plain.traces.iter().all(Vec::is_empty), "untraced run must carry no events");
    assert!(traced.traces.iter().all(|t| !t.is_empty()));
}

/// A GPipe schedule (all forwards, then all backwards in reverse) through
/// a `Sequential` must emit one balanced fwd/bwd scope pair per module per
/// microbatch, and scope spans must nest (contain or stay disjoint — no
/// partial overlap), even though the tape rewinds in reverse order.
#[test]
fn scope_events_balance_under_tape_rewind() {
    let shape = GridShape::new(2, 1);
    let microbatches = 3usize;
    let xs: Vec<Matrix> = (0..microbatches).map(|m| random(8, 8, 30 + m as u64)).collect();
    let dys: Vec<Matrix> = (0..microbatches).map(|m| random(8, 8, 40 + m as u64)).collect();
    let out = RunConfig::from_env(shape.size()).with_trace(true).cluster().run(move |ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let mut seq: Sequential<DenseTensor> = Sequential::new()
            .push(TesseractLayerNorm::new(8, 1e-5))
            .push(TesseractLinear::new(ctx, &grid, 8, 8, true, SEED, 3));
        for x in &xs {
            let x_loc = Arc::new(DenseTensor::from_matrix(a_block(x, shape, i, j, k)));
            let _ = seq.forward(&grid, ctx, &x_loc);
        }
        for dy in dys.iter().rev() {
            let dy_loc = Arc::new(DenseTensor::from_matrix(a_block(dy, shape, i, j, k)));
            let _ = seq.backward(&grid, ctx, &dy_loc);
        }
        seq.zero_grad();
    });
    for events in &out.traces {
        let scopes: Vec<_> = events
            .iter()
            .filter_map(|ev| match &ev.kind {
                TraceKind::Scope { phase } => Some((ev.name.as_str(), *phase, ev.begin, ev.end)),
                _ => None,
            })
            .collect();
        let fwd = scopes.iter().filter(|s| s.1 == "fwd").count();
        let bwd = scopes.iter().filter(|s| s.1 == "bwd").count();
        // 2 modules x 3 microbatches, once per direction.
        assert_eq!(fwd, 6, "fwd scopes: {scopes:?}");
        assert_eq!(bwd, 6, "bwd scopes: {scopes:?}");
        for (name, _, begin, end) in &scopes {
            assert!(begin <= end, "{name}: scope runs backwards");
            assert!(
                name.ends_with(".fwd") || name.ends_with(".bwd"),
                "{name}: scope name must carry its phase"
            );
        }
        // Nesting discipline: any two scope spans either nest or are
        // disjoint. (Equal endpoints count as nesting.)
        for a in &scopes {
            for b in &scopes {
                let disjoint = a.3 <= b.2 || b.3 <= a.2;
                let nested = (a.2 <= b.2 && b.3 <= a.3) || (b.2 <= a.2 && a.3 <= b.3);
                assert!(disjoint || nested, "scopes partially overlap: {:?} vs {:?}", a, b);
            }
        }
    }
}

/// All members of one logical collective (same `(group, seq)` rendezvous
/// key) must agree on `max_entry_vt`, and the last-arriving member's own
/// entry must realize it — the pairing the critical-path walker hops on.
#[test]
fn comm_events_pair_across_group_members() {
    let out = traced_step(GridShape::new(2, 2), true);
    let mut by_key: std::collections::HashMap<(u64, u64, &'static str), Vec<(f64, f64, bool)>> =
        Default::default();
    for ev in out.traces.iter().flatten() {
        if let TraceKind::Comm { op, key_group, key_seq, max_entry_vt, recorded, .. } = &ev.kind {
            by_key.entry((*key_group, *key_seq, op)).or_default().push((
                ev.begin,
                *max_entry_vt,
                *recorded,
            ));
        }
    }
    assert!(!by_key.is_empty());
    for ((g, s, op), members) in &by_key {
        let max_entry = members[0].1;
        for (_, m, _) in members {
            assert_eq!(*m, max_entry, "{op} ({g:x},{s}): members disagree on max entry");
        }
        let latest = members.iter().map(|m| m.0).fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (latest - max_entry).abs() < 1e-12,
            "{op} ({g:x},{s}): no member's entry realizes max_entry_vt \
             (latest {latest}, max {max_entry})"
        );
        let recorded = members.iter().filter(|m| m.2).count();
        assert_eq!(recorded, 1, "{op} ({g:x},{s}): exactly one member records the stats");
    }
}

/// The emitted Chrome-trace JSON must parse, declare nanosecond display
/// units, and contain one complete (`ph: "X"`) event per traced span with
/// the mandatory fields.
#[test]
fn chrome_json_is_valid_chrome_trace_format() {
    let out = traced_step(GridShape::new(2, 1), true);
    let payload = chrome::chrome_trace_json(&out.traces);
    let doc = json::parse(&payload).expect("chrome trace must be valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ns"),
        "displayTimeUnit missing"
    );
    let events = doc.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");
    let spans = out.traces.iter().flatten().count();
    let complete: Vec<_> =
        events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).collect();
    assert!(!complete.is_empty());
    assert!(
        complete.len() <= spans,
        "more complete events than recorded spans ({} vs {spans})",
        complete.len()
    );
    for e in events {
        let ph = e.get("ph").and_then(|p| p.as_str()).expect("every event has ph");
        assert!(e.get("pid").and_then(|v| v.as_f64()).is_some(), "every event has pid");
        match ph {
            "X" => {
                assert!(e.get("name").and_then(|v| v.as_str()).is_some());
                assert!(e.get("ts").and_then(|v| v.as_f64()).is_some());
                assert!(e.get("dur").and_then(|v| v.as_f64()).map_or(false, |d| d >= 0.0));
                assert!(e.get("tid").and_then(|v| v.as_f64()).is_some());
            }
            "M" | "i" | "s" | "f" => {}
            other => panic!("unexpected event phase {other:?}"),
        }
    }
}
