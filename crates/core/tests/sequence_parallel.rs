//! Sequence parallelism (SP) contract tests.
//!
//! The SP schedule promises *bitwise* identity with the dense layout — the
//! gathered panels are the same matrix values the dense broadcasts deliver,
//! the reduce-scatter folds in the same ascending order as the dense
//! reductions, and the layer-norm chunk folds replicate the dense
//! all-reduce fold — so every comparison here is on `f32::to_bits`, not a
//! tolerance.

use std::sync::Arc;

use tesseract_comm::{Cluster, RunConfig};
use tesseract_core::layers::StackOptions;
use tesseract_core::partition::a_block;
use tesseract_core::{GridShape, Module, TesseractGrid, TesseractTransformer, TransformerConfig};
use tesseract_tensor::{DenseTensor, Matrix, ShadowTensor, TensorLike, Xoshiro256StarStar};

const SEED: u64 = 321;

fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
}

fn cfg_for(q: usize, d: usize, layers: usize) -> TransformerConfig {
    TransformerConfig {
        batch: q * d,
        seq: 2 * q,
        hidden: 8 * q,
        heads: q,
        mlp_ratio: 2,
        layers,
        eps: 1e-5,
    }
}

fn assert_bits_eq(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape mismatch");
    for (g, w) in got.data().iter().zip(want.data()) {
        assert_eq!(g.to_bits(), w.to_bits(), "{what}: bitwise mismatch ({g} vs {w})");
    }
}

/// Runs one forward + backward of a stack built with `opts` and returns
/// per-rank `(y, dx, grads)` matrices.
fn run_stack(
    shape: GridShape,
    cfg: TransformerConfig,
    opts: StackOptions,
    trace: bool,
) -> Vec<(Matrix, Matrix, Vec<Matrix>)> {
    let x = random(cfg.rows(), cfg.hidden, 11);
    let dy = random(cfg.rows(), cfg.hidden, 12);
    let out = RunConfig::new(shape.size()).with_trace(trace).cluster().run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let mut stack = TesseractTransformer::<DenseTensor>::new_with_options(
            ctx, &grid, cfg, true, SEED, 0, opts,
        );
        let x_loc = Arc::new(DenseTensor::from_matrix(a_block(&x, shape, i, j, k)));
        let dy_loc = Arc::new(DenseTensor::from_matrix(a_block(&dy, shape, i, j, k)));
        let y = stack.forward(&grid, ctx, &x_loc);
        let dx = stack.backward(&grid, ctx, &dy_loc);
        let mut grads = Vec::new();
        stack.visit_params(&mut |pr| grads.push(pr.grad.matrix().clone()));
        (y.matrix().clone(), dx.matrix().clone(), grads)
    });
    out.results
}

fn assert_runs_bitwise_equal(
    got: &[(Matrix, Matrix, Vec<Matrix>)],
    want: &[(Matrix, Matrix, Vec<Matrix>)],
    label: &str,
) {
    assert_eq!(got.len(), want.len());
    for (r, ((gy, gdx, gg), (wy, wdx, wg))) in got.iter().zip(want).enumerate() {
        assert_bits_eq(gy, wy, &format!("{label}: rank {r} forward output"));
        assert_bits_eq(gdx, wdx, &format!("{label}: rank {r} input gradient"));
        assert_eq!(gg.len(), wg.len(), "{label}: rank {r} gradient count");
        for (p, (g, w)) in gg.iter().zip(wg).enumerate() {
            assert_bits_eq(g, w, &format!("{label}: rank {r} grad {p}"));
        }
    }
}

#[test]
fn sp_stack_is_bitwise_identical_to_dense() {
    for (q, d) in [(2usize, 1usize), (2, 2)] {
        let shape = GridShape::new(q, d);
        let cfg = cfg_for(q, d, 2);
        let dense = run_stack(shape, cfg, StackOptions::default(), false);
        let sp = run_stack(
            shape,
            cfg,
            StackOptions { sequence_parallel: true, recompute_every: None },
            false,
        );
        assert_runs_bitwise_equal(&sp, &dense, &format!("sp [{q},{q},{d}]"));
    }
}

#[test]
fn sp_stack_is_bitwise_identical_to_dense_when_traced() {
    // Tracing must be purely observational: the traced SP run produces the
    // same bits as the untraced dense run.
    let shape = GridShape::new(2, 2);
    let cfg = cfg_for(2, 2, 2);
    let dense_untraced = run_stack(shape, cfg, StackOptions::default(), false);
    let sp_traced = run_stack(
        shape,
        cfg,
        StackOptions { sequence_parallel: true, recompute_every: None },
        true,
    );
    assert_runs_bitwise_equal(&sp_traced, &dense_untraced, "sp traced [2,2,2]");
}

#[test]
fn sp_on_a_q1_grid_is_a_bitwise_noop() {
    // With q = 1 every fiber is a singleton: the boundary all-to-alls and
    // panel gathers move nothing, so SP must be the dense computation.
    let shape = GridShape::new(1, 2);
    let cfg = cfg_for(1, 2, 2);
    let dense = run_stack(shape, cfg, StackOptions::default(), false);
    let sp = run_stack(
        shape,
        cfg,
        StackOptions { sequence_parallel: true, recompute_every: None },
        false,
    );
    assert_runs_bitwise_equal(&sp, &dense, "sp [1,1,2]");
}

#[test]
fn recompute_is_bitwise_identical_even_when_k_does_not_divide_layers() {
    // 3 layers, checkpoint every 2: segments of 2 + 1 (the trailing
    // segment is shorter). Replayed forwards must reproduce the same bits.
    let shape = GridShape::new(2, 1);
    let cfg = cfg_for(2, 1, 3);
    let plain = run_stack(shape, cfg, StackOptions::default(), false);
    for sp in [false, true] {
        let rec = run_stack(
            shape,
            cfg,
            StackOptions { sequence_parallel: sp, recompute_every: Some(2) },
            false,
        );
        assert_runs_bitwise_equal(&rec, &plain, &format!("recompute k=2 sp={sp}"));
    }
}

#[test]
#[should_panic(expected = "seq 5 not divisible by q = 2")]
fn sp_stack_rejects_seq_not_divisible_by_q() {
    let shape = GridShape::new(2, 1);
    let cfg = TransformerConfig { seq: 5, ..cfg_for(2, 1, 1) };
    let _ = run_stack(
        shape,
        cfg,
        StackOptions { sequence_parallel: true, recompute_every: None },
        false,
    );
}

/// Per-rank peak tape residency for a stack run on the shadow backend.
fn peak_activation_bytes(shape: GridShape, cfg: TransformerConfig, opts: StackOptions) -> Vec<u64> {
    let out = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let mut stack = TesseractTransformer::<ShadowTensor>::new_with_options(
            ctx, &grid, cfg, true, SEED, 0, opts,
        );
        let rows = cfg.rows() / (shape.q * shape.d);
        let x = Arc::new(ShadowTensor::new(rows, cfg.hidden / shape.q));
        let y = stack.forward(&grid, ctx, &x);
        let dy = Arc::new(ShadowTensor::new(y.rows(), y.cols()));
        let _ = stack.backward(&grid, ctx, &dy);
        ctx.flush_compute();
    });
    out.reports.iter().map(|r| r.activation_bytes_peak).collect()
}

#[test]
fn sp_and_recompute_reduce_peak_activation_bytes() {
    // Long sequence so the layer-norm inv_std columns ([R, 1] dense vs
    // [R/q, 1] SP) are visible in the per-rank peaks, and several layers so
    // checkpointing has something to drop.
    let shape = GridShape::new(2, 1);
    let cfg = TransformerConfig {
        batch: 2,
        seq: 64,
        hidden: 16,
        heads: 2,
        mlp_ratio: 2,
        layers: 4,
        eps: 1e-5,
    };
    let dense = peak_activation_bytes(shape, cfg, StackOptions::default());
    let sp = peak_activation_bytes(
        shape,
        cfg,
        StackOptions { sequence_parallel: true, recompute_every: None },
    );
    let sp_rec = peak_activation_bytes(
        shape,
        cfg,
        StackOptions { sequence_parallel: true, recompute_every: Some(1) },
    );
    for r in 0..dense.len() {
        assert!(dense[r] > 0, "dense rank {r} tracked no activations");
        assert!(
            sp[r] < dense[r],
            "rank {r}: SP peak {} must be strictly below dense {}",
            sp[r],
            dense[r]
        );
        assert!(
            sp_rec[r] < sp[r],
            "rank {r}: recompute peak {} must be strictly below SP {}",
            sp_rec[r],
            sp[r]
        );
    }
}
