//! Bitwise parity between the mesh-derived `[q,q,d]` layout and the legacy
//! hard-coded layer-major literals.
//!
//! `TesseractGrid` now derives coordinates and its row/col/depth fibers
//! from the named-axis `Mesh` (`[("depth",d),("row",q),("col",q)]`). These
//! tests pin that derivation to the original closed forms — same members,
//! same order — on the paper's `[2,2,1]`, `[2,2,2]` and `[4,4,2]`
//! arrangements, so the refactor cannot silently renumber any rank group.

use tesseract_comm::Cluster;
use tesseract_core::{GridShape, TesseractGrid};

/// Legacy layout literals, re-encoded independently of `GridShape`:
/// `rank = base + k·q² + i·q + j`.
fn legacy_offset(q: usize, i: usize, j: usize, k: usize) -> usize {
    k * q * q + i * q + j
}

fn legacy_coords(q: usize, off: usize) -> (usize, usize, usize) {
    let layer = q * q;
    ((off % layer) / q, off % q, off / layer)
}

const SHAPES: [(usize, usize); 3] = [(2, 1), (2, 2), (4, 2)];

#[test]
fn mesh_coords_and_offsets_match_legacy_literals() {
    for (q, d) in SHAPES {
        let shape = GridShape::new(q, d);
        for off in 0..shape.size() {
            assert_eq!(shape.coords_of(off), legacy_coords(q, off), "[{q},{q},{d}] off {off}");
        }
        for k in 0..d {
            for i in 0..q {
                for j in 0..q {
                    assert_eq!(
                        shape.offset_of(i, j, k),
                        legacy_offset(q, i, j, k),
                        "[{q},{q},{d}] ({i},{j},{k})"
                    );
                }
            }
        }
    }
}

#[test]
fn mesh_fibers_match_legacy_group_construction() {
    for (q, d) in SHAPES {
        let shape = GridShape::new(q, d);
        let base = 3; // an embedded grid must offset every member
        let mesh = shape.mesh(base);
        for off in 0..shape.size() {
            let (i, j, k) = legacy_coords(q, off);
            let coords = mesh.coords_of(off);
            assert_eq!(coords, vec![k, i, j]);
            // Legacy loops: row varies j, col varies i, depth varies k —
            // each ascending along the varied index.
            let row: Vec<usize> = (0..q).map(|jj| base + legacy_offset(q, i, jj, k)).collect();
            let col: Vec<usize> = (0..q).map(|ii| base + legacy_offset(q, ii, j, k)).collect();
            let depth: Vec<usize> = (0..d).map(|kk| base + legacy_offset(q, i, j, kk)).collect();
            assert_eq!(mesh.fiber_ranks("col", &coords), row, "[{q},{q},{d}] row fiber @ {off}");
            assert_eq!(mesh.fiber_ranks("row", &coords), col, "[{q},{q},{d}] col fiber @ {off}");
            assert_eq!(
                mesh.fiber_ranks("depth", &coords),
                depth,
                "[{q},{q},{d}] depth fiber @ {off}"
            );
        }
    }
}

#[test]
fn constructed_grid_groups_match_legacy_membership_end_to_end() {
    for (q, d) in SHAPES {
        let shape = GridShape::new(q, d);
        let out = Cluster::a100(shape.size()).run(move |ctx| {
            let g = TesseractGrid::new(ctx, shape, 0);
            (g.coords, g.row.ranks().to_vec(), g.col.ranks().to_vec(), g.depth.ranks().to_vec())
        });
        for (rank, (coords, row, col, depth)) in out.results.iter().enumerate() {
            let (i, j, k) = legacy_coords(q, rank);
            assert_eq!(*coords, (i, j, k), "[{q},{q},{d}] rank {rank}");
            let want_row: Vec<usize> = (0..q).map(|jj| legacy_offset(q, i, jj, k)).collect();
            let want_col: Vec<usize> = (0..q).map(|ii| legacy_offset(q, ii, j, k)).collect();
            let want_depth: Vec<usize> = (0..d).map(|kk| legacy_offset(q, i, j, kk)).collect();
            assert_eq!(row, &want_row, "[{q},{q},{d}] rank {rank} row group");
            assert_eq!(col, &want_col, "[{q},{q},{d}] rank {rank} col group");
            assert_eq!(depth, &want_depth, "[{q},{q},{d}] rank {rank} depth group");
        }
    }
}
