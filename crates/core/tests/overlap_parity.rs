//! Parity suite for the double-buffered SUMMA pipeline: the overlapped
//! loops in `tesseract_core::mm` must be **bitwise** identical to their
//! blocking `*_serial` twins — forward and both backward rules — on every
//! grid the issue names, and the overlap must never make the simulated
//! step slower.

use std::sync::Arc;

use tesseract_comm::Cluster;
use tesseract_core::{
    tesseract_matmul, tesseract_matmul_nt, tesseract_matmul_nt_serial, tesseract_matmul_serial,
    tesseract_matmul_tn, tesseract_matmul_tn_serial, GridShape, TesseractGrid,
};
use tesseract_tensor::{DenseTensor, Matrix, Xoshiro256StarStar};

/// The grids the issue names: plain 2-D SUMMA, the 2.5-D cube, and a
/// larger 2.5-D arrangement.
const SHAPES: [(usize, usize); 3] = [(2, 1), (2, 2), (4, 2)];

fn block(rows: usize, cols: usize, seed: u64) -> DenseTensor {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    DenseTensor::from_matrix(Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng))
}

/// Runs `pipelined` and `serial` as separate cluster runs on identical
/// per-rank inputs and asserts bitwise-equal results plus a no-slower
/// pipelined makespan.
fn assert_parity<F, G>(shape: GridShape, what: &str, pipelined: F, serial: G)
where
    F: Fn(&TesseractGrid, &mut tesseract_comm::RankCtx) -> Matrix + Send + Sync + Copy,
    G: Fn(&TesseractGrid, &mut tesseract_comm::RankCtx) -> Matrix + Send + Sync + Copy,
{
    let fast = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        pipelined(&grid, ctx)
    });
    let slow = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        serial(&grid, ctx)
    });
    assert_eq!(fast.results, slow.results, "{what} on {shape:?}: data must be bitwise identical");
    assert!(
        fast.makespan() <= slow.makespan(),
        "{what} on {shape:?}: pipelined step must not be slower ({} vs {})",
        fast.makespan(),
        slow.makespan()
    );
}

#[test]
fn forward_pipeline_is_bitwise_identical_to_serial() {
    for (q, d) in SHAPES {
        let shape = GridShape::new(q, d);
        assert_parity(
            shape,
            "forward",
            |grid, ctx| {
                let a = Arc::new(block(3, 4, 100 + ctx.rank as u64));
                let b = Arc::new(block(4, 5, 200 + ctx.rank as u64));
                tesseract_matmul(grid, ctx, &a, &b).matrix().clone()
            },
            |grid, ctx| {
                let a = Arc::new(block(3, 4, 100 + ctx.rank as u64));
                let b = Arc::new(block(4, 5, 200 + ctx.rank as u64));
                tesseract_matmul_serial(grid, ctx, &a, &b).matrix().clone()
            },
        );
    }
}

#[test]
fn nt_backward_pipeline_is_bitwise_identical_to_serial() {
    for (q, d) in SHAPES {
        let shape = GridShape::new(q, d);
        assert_parity(
            shape,
            "A' = C'·Bᵀ",
            |grid, ctx| {
                let a = block(3, 6, 300 + ctx.rank as u64);
                let b = Arc::new(block(4, 6, 400 + ctx.rank as u64));
                tesseract_matmul_nt(grid, ctx, &a, &b).matrix().clone()
            },
            |grid, ctx| {
                let a = block(3, 6, 300 + ctx.rank as u64);
                let b = Arc::new(block(4, 6, 400 + ctx.rank as u64));
                tesseract_matmul_nt_serial(grid, ctx, &a, &b).matrix().clone()
            },
        );
    }
}

#[test]
fn tn_backward_pipeline_is_bitwise_identical_to_serial() {
    for (q, d) in SHAPES {
        let shape = GridShape::new(q, d);
        for depth_reduce in [true, false] {
            let what = if depth_reduce {
                "B' = Aᵀ·C' (depth all-reduce)"
            } else {
                "B' = Aᵀ·C' (partials)"
            };
            assert_parity(
                shape,
                what,
                move |grid, ctx| {
                    let a = Arc::new(block(5, 3, 500 + ctx.rank as u64));
                    let b = block(5, 4, 600 + ctx.rank as u64);
                    tesseract_matmul_tn(grid, ctx, &a, &b, depth_reduce).matrix().clone()
                },
                move |grid, ctx| {
                    let a = Arc::new(block(5, 3, 500 + ctx.rank as u64));
                    let b = block(5, 4, 600 + ctx.rank as u64);
                    tesseract_matmul_tn_serial(grid, ctx, &a, &b, depth_reduce).matrix().clone()
                },
            );
        }
    }
}

/// On a real multi-step grid the pipeline must actually hide wait, not
/// just tie: the hidden-time counters are non-zero and the makespan is
/// strictly smaller than the serial loop's.
#[test]
fn pipeline_strictly_beats_serial_on_the_cube() {
    let shape = GridShape::new(2, 2);
    let fast = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let a = Arc::new(block(16, 16, 700 + ctx.rank as u64));
        let b = Arc::new(block(16, 16, 800 + ctx.rank as u64));
        let _ = tesseract_matmul(&grid, ctx, &a, &b);
    });
    let slow = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let a = Arc::new(block(16, 16, 700 + ctx.rank as u64));
        let b = Arc::new(block(16, 16, 800 + ctx.rank as u64));
        let _ = tesseract_matmul_serial(&grid, ctx, &a, &b);
    });
    assert!(
        fast.makespan() < slow.makespan(),
        "double-buffered SUMMA must strictly beat the serial loop: {} vs {}",
        fast.makespan(),
        slow.makespan()
    );
    assert!(fast.comm.total_hidden_time() > 0.0);
    assert_eq!(slow.comm.total_hidden_time(), 0.0);
    assert!(fast.reports.iter().all(|r| r.overlap_hidden_nanos > 0));
}
