//! Direct unit tests of each distributed layer against the serial kernels
//! in `tesseract_tensor::nn` (finer-grained than the full-stack parity
//! tests in `tesseract-baselines`).

use std::sync::Arc;

use tesseract_comm::Cluster;
use tesseract_core::layers::{TesseractLayerNorm, TesseractLinear, TesseractMlp};
use tesseract_core::partition::{a_block, combine_c};
use tesseract_core::{
    GridShape, Module, TesseractGrid, TesseractTransformerLayer, TransformerConfig,
};
use tesseract_tensor::{
    assert_slices_close, init::global_xavier, matmul::matmul, nn, DenseTensor, Matrix, TensorLike,
    Xoshiro256StarStar,
};

const SEED: u64 = 99;

fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
}

#[test]
fn layernorm_matches_serial_kernel() {
    let shape = GridShape::new(2, 2);
    let x = random(8, 8, 1);
    let dy = random(8, 8, 2);
    let out = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let mut ln = TesseractLayerNorm::<DenseTensor>::new(8, 1e-5);
        let x_loc = Arc::new(DenseTensor::from_matrix(a_block(&x, shape, i, j, k)));
        let dy_loc = Arc::new(DenseTensor::from_matrix(a_block(&dy, shape, i, j, k)));
        let y = ln.forward(&grid, ctx, &x_loc);
        let dx = ln.backward(&grid, ctx, &dy_loc);
        (y.matrix().clone(), dx.matrix().clone())
    });
    let y = combine_c(&out.results.iter().map(|(y, _)| y.clone()).collect::<Vec<_>>(), shape);
    let dx = combine_c(&out.results.iter().map(|(_, d)| d.clone()).collect::<Vec<_>>(), shape);
    let cache = nn::layernorm_rows(&x, 1e-5);
    assert_slices_close(y.data(), cache.y.data(), 1e-4);
    let dx_ser = nn::layernorm_rows_backward(&cache, &dy);
    assert_slices_close(dx.data(), dx_ser.data(), 1e-4);
}

#[test]
fn linear_forward_matches_global_weight_product() {
    let shape = GridShape::new(2, 2);
    let (in_f, out_f) = (8, 12);
    let x = random(16, in_f, 3);
    let w_global = global_xavier(in_f, out_f, SEED, 7);
    let out = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let mut lin = TesseractLinear::<DenseTensor>::new(ctx, &grid, in_f, out_f, false, SEED, 7);
        let x_loc = Arc::new(DenseTensor::from_matrix(a_block(&x, shape, i, j, k)));
        lin.forward(&grid, ctx, &x_loc).matrix().clone()
    });
    let y = combine_c(&out.results, shape);
    assert_slices_close(y.data(), matmul(&x, &w_global).data(), 1e-4);
}

#[test]
fn linear_bias_lives_on_row_zero_and_broadcasts() {
    let shape = GridShape::new(2, 2);
    let out = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let lin = TesseractLinear::<DenseTensor>::new(ctx, &grid, 4, 4, true, SEED, 0);
        (grid.coords, lin.bias().is_some())
    });
    for ((i, _j, _k), has_bias) in &out.results {
        assert_eq!(*has_bias, *i == 0, "bias must live exactly on row-0 ranks");
    }
}

#[test]
fn linear_bias_gradient_reduces_to_row_zero() {
    // §3.2.2: "the backward process drives the gradients to be reduced back
    // to the processor on row 0". With dY = ones, dbias = column sums over
    // the whole global batch = b·s rows of ones.
    let shape = GridShape::new(2, 2);
    let rows_global = 8;
    let out = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let mut lin = TesseractLinear::<DenseTensor>::new(ctx, &grid, 4, 4, true, SEED, 0);
        let x = Matrix::full(rows_global, 4, 1.0);
        let x_loc = Arc::new(DenseTensor::from_matrix(a_block(&x, shape, i, j, k)));
        let _ = lin.forward(&grid, ctx, &x_loc);
        let dy_loc = Arc::new(DenseTensor::from_matrix(Matrix::full(x_loc.rows(), 2, 1.0)));
        let _ = lin.backward(&grid, ctx, &dy_loc);
        lin.bias_grad().map(|g| g.clone().into_matrix())
    });
    for off in 0..shape.size() {
        let (i, _, _) = shape.coords_of(off);
        match &out.results[off] {
            Some(g) => {
                assert_eq!(i, 0);
                // Every global row contributed 1.0 to each bias column.
                assert!(g.data().iter().all(|&v| (v - rows_global as f32).abs() < 1e-4));
            }
            None => assert_ne!(i, 0),
        }
    }
}

#[test]
fn mlp_gradient_matches_finite_difference() {
    let shape = GridShape::new(2, 1);
    let x = random(4, 4, 5);
    let dy = random(4, 4, 6);
    let run = |input: &Matrix| -> Matrix {
        let out = Cluster::a100(shape.size()).run(|ctx| {
            let grid = TesseractGrid::new(ctx, shape, 0);
            let (i, j, k) = grid.coords;
            let mut mlp = TesseractMlp::<DenseTensor>::new(ctx, &grid, 4, 8, true, SEED, 0);
            let x_loc = Arc::new(DenseTensor::from_matrix(a_block(input, shape, i, j, k)));
            mlp.forward(&grid, ctx, &x_loc).matrix().clone()
        });
        combine_c(&out.results, shape)
    };
    let out = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let mut mlp = TesseractMlp::<DenseTensor>::new(ctx, &grid, 4, 8, true, SEED, 0);
        let x_loc = Arc::new(DenseTensor::from_matrix(a_block(&x, shape, i, j, k)));
        let _ = mlp.forward(&grid, ctx, &x_loc);
        let dy_loc = Arc::new(DenseTensor::from_matrix(a_block(&dy, shape, i, j, k)));
        mlp.backward(&grid, ctx, &dy_loc).matrix().clone()
    });
    let dx = combine_c(&out.results, shape);
    let h = 1e-2f32;
    for &(r, c) in &[(0usize, 0usize), (1, 2), (3, 3)] {
        let mut xp = x.clone();
        xp[(r, c)] += h;
        let mut xm = x.clone();
        xm[(r, c)] -= h;
        let (yp, ym) = (run(&xp), run(&xm));
        let mut fd = 0.0f32;
        for i in 0..4 {
            for j in 0..4 {
                fd += dy[(i, j)] * (yp[(i, j)] - ym[(i, j)]) / (2.0 * h);
            }
        }
        assert!(
            (dx[(r, c)] - fd).abs() < 0.03 * dx[(r, c)].abs().max(1.0),
            "({r},{c}): {} vs {fd}",
            dx[(r, c)]
        );
    }
}

#[test]
fn forward_backward_can_repeat_across_steps() {
    // Regression for cache handling: two consecutive train-style steps must
    // work (caches push/pop in LIFO order and never leak).
    let shape = GridShape::new(2, 1);
    let cfg = TransformerConfig {
        batch: 4,
        seq: 2,
        hidden: 8,
        heads: 2,
        mlp_ratio: 2,
        layers: 1,
        eps: 1e-5,
    };
    let x = random(cfg.rows(), cfg.hidden, 7);
    let out = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let mut layer =
            TesseractTransformerLayer::<DenseTensor>::new(ctx, &grid, cfg, true, SEED, 0);
        let x_loc = Arc::new(DenseTensor::from_matrix(a_block(&x, shape, i, j, k)));
        let mut outs = Vec::new();
        for _step in 0..3 {
            let y = layer.forward(&grid, ctx, &x_loc);
            let _ = layer.backward(&grid, ctx, &y);
            layer.zero_grad();
            outs.push(y.matrix().clone());
        }
        outs
    });
    // Weights unchanged between steps (no optimizer) → identical outputs.
    for outs in &out.results {
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[1], outs[2]);
    }
}

#[test]
fn gpipe_style_multi_forward_then_backward_works() {
    // Two forwards queued before two backwards (reverse order), as the
    // pipeline scheduler does.
    let shape = GridShape::new(2, 1);
    let cfg = TransformerConfig {
        batch: 4,
        seq: 2,
        hidden: 8,
        heads: 2,
        mlp_ratio: 2,
        layers: 1,
        eps: 1e-5,
    };
    let x1 = random(cfg.rows(), cfg.hidden, 8);
    let x2 = random(cfg.rows(), cfg.hidden, 9);
    let out = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let mut layer =
            TesseractTransformerLayer::<DenseTensor>::new(ctx, &grid, cfg, true, SEED, 0);
        let x1_loc = Arc::new(DenseTensor::from_matrix(a_block(&x1, shape, i, j, k)));
        let x2_loc = Arc::new(DenseTensor::from_matrix(a_block(&x2, shape, i, j, k)));
        let y1 = layer.forward(&grid, ctx, &x1_loc);
        let y2 = layer.forward(&grid, ctx, &x2_loc);
        // Backward in reverse microbatch order (LIFO caches).
        let d2 = layer.backward(&grid, ctx, &y2);
        let d1 = layer.backward(&grid, ctx, &y1);
        (d1.matrix().clone(), d2.matrix().clone())
    });
    // Cross-check against single-microbatch runs.
    let single = |x: &Matrix, seed_tag: u64| -> Matrix {
        let _ = seed_tag;
        let out = Cluster::a100(shape.size()).run(|ctx| {
            let grid = TesseractGrid::new(ctx, shape, 0);
            let (i, j, k) = grid.coords;
            let mut layer =
                TesseractTransformerLayer::<DenseTensor>::new(ctx, &grid, cfg, true, SEED, 0);
            let x_loc = Arc::new(DenseTensor::from_matrix(a_block(x, shape, i, j, k)));
            let y = layer.forward(&grid, ctx, &x_loc);
            layer.backward(&grid, ctx, &y).matrix().clone()
        });
        combine_c(&out.results, shape)
    };
    let d1 = combine_c(&out.results.iter().map(|(a, _)| a.clone()).collect::<Vec<_>>(), shape);
    let d2 = combine_c(&out.results.iter().map(|(_, b)| b.clone()).collect::<Vec<_>>(), shape);
    assert_slices_close(d1.data(), single(&x1, 1).data(), 1e-5);
    assert_slices_close(d2.data(), single(&x2, 2).data(), 1e-5);
}
