//! Integration tests of the `Module`/`Tape`/`Sequential` abstractions on
//! the simulated cluster: GPipe-style microbatched schedules (all forwards,
//! then all backwards in reverse) against sequential per-microbatch
//! execution, plus the tape's failure modes.

use std::sync::Arc;

use tesseract_comm::Cluster;
use tesseract_core::layers::{TesseractLayerNorm, TesseractLinear};
use tesseract_core::partition::a_block;
use tesseract_core::{GridShape, Module, Sequential, TesseractGrid};
use tesseract_tensor::{assert_slices_close, DenseTensor, Matrix, Xoshiro256StarStar};

const SEED: u64 = 2024;

fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
}

/// A GPipe step queues every microbatch forward before any backward runs
/// (reverse order). The shared tape must hand each backward the activations
/// of *its own* microbatch, so gradients and dX must match running the
/// microbatches one at a time (forward immediately followed by backward).
#[test]
fn tape_survives_four_microbatch_gpipe_schedule() {
    let shape = GridShape::new(2, 2);
    let microbatches = 4;
    let xs: Vec<Matrix> = (0..microbatches).map(|m| random(8, 8, 10 + m as u64)).collect();
    let dys: Vec<Matrix> = (0..microbatches).map(|m| random(8, 8, 20 + m as u64)).collect();

    let run = |pipelined: bool| {
        let xs = xs.clone();
        let dys = dys.clone();
        Cluster::a100(shape.size()).run(move |ctx| {
            let grid = TesseractGrid::new(ctx, shape, 0);
            let (i, j, k) = grid.coords;
            let mut model = TesseractLinear::<DenseTensor>::new(ctx, &grid, 8, 8, true, SEED, 1);
            let x_loc: Vec<Arc<DenseTensor>> = xs
                .iter()
                .map(|x| Arc::new(DenseTensor::from_matrix(a_block(x, shape, i, j, k))))
                .collect();
            let dy_loc: Vec<Arc<DenseTensor>> = dys
                .iter()
                .map(|dy| Arc::new(DenseTensor::from_matrix(a_block(dy, shape, i, j, k))))
                .collect();
            let mut dxs = Vec::new();
            if pipelined {
                // GPipe: all forwards, then all backwards in reverse order.
                for x in &x_loc {
                    let _ = model.forward(&grid, ctx, x);
                }
                for dy in dy_loc.iter().rev() {
                    dxs.push(model.backward(&grid, ctx, dy).matrix().clone());
                }
                dxs.reverse();
            } else {
                for (x, dy) in x_loc.iter().zip(&dy_loc) {
                    let _ = model.forward(&grid, ctx, x);
                    dxs.push(model.backward(&grid, ctx, dy).matrix().clone());
                }
            }
            // zero_grad's tape-balance debug assertion must accept a clean
            // schedule.
            let dw = model.weight_grad().clone().into_matrix();
            model.zero_grad();
            (dxs, dw)
        })
    };

    let gpipe = run(true);
    let serial = run(false);
    for (rank, (g, s)) in gpipe.results.iter().zip(serial.results.iter()).enumerate() {
        // dW sums the microbatch contributions in reverse order under
        // GPipe, so it matches up to f32 summation-order noise only.
        assert_slices_close(g.1.data(), s.1.data(), 1e-5);
        for (m, (gx, sx)) in g.0.iter().zip(s.0.iter()).enumerate() {
            // dX touches no accumulated state: bitwise identical.
            assert_eq!(gx, sx, "rank {rank}, microbatch {m}: dX must match");
        }
    }
}

/// Issuing a backward with no queued forward is a schedule bug; the tape
/// fails fast naming the module (the panic propagates through the cluster).
#[test]
#[should_panic(expected = "backward without forward")]
fn backward_on_empty_tape_panics() {
    let shape = GridShape::new(1, 1);
    Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let mut lin = TesseractLinear::<DenseTensor>::new(ctx, &grid, 4, 4, false, SEED, 1);
        let dy = Arc::new(DenseTensor::from_matrix(random(4, 4, 3)));
        let _ = lin.backward(&grid, ctx, &dy);
    });
}

/// A `Sequential` of modules must behave exactly like calling the modules
/// by hand: forward left-to-right, backward right-to-left.
#[test]
fn sequential_composition_matches_manual_chaining() {
    let shape = GridShape::new(2, 1);
    let x = random(8, 8, 40);
    let dy = random(8, 8, 41);
    let out = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let x_loc = Arc::new(DenseTensor::from_matrix(a_block(&x, shape, i, j, k)));
        let dy_loc = Arc::new(DenseTensor::from_matrix(a_block(&dy, shape, i, j, k)));

        let mut seq: Sequential<DenseTensor> = Sequential::new()
            .push(TesseractLayerNorm::new(8, 1e-5))
            .push(TesseractLinear::new(ctx, &grid, 8, 8, true, SEED, 2));
        let y_seq = seq.forward(&grid, ctx, &x_loc);
        let dx_seq = seq.backward(&grid, ctx, &dy_loc);
        assert_eq!(seq.param_count(), if grid.i() == 0 { 2 } else { 1 });

        let mut ln = TesseractLayerNorm::<DenseTensor>::new(8, 1e-5);
        let mut lin = TesseractLinear::<DenseTensor>::new(ctx, &grid, 8, 8, true, SEED, 2);
        let h = ln.forward(&grid, ctx, &x_loc);
        let y_man = lin.forward(&grid, ctx, &h);
        let d_h = lin.backward(&grid, ctx, &dy_loc);
        let dx_man = ln.backward(&grid, ctx, &d_h);

        (
            y_seq.matrix().clone(),
            y_man.matrix().clone(),
            dx_seq.matrix().clone(),
            dx_man.matrix().clone(),
        )
    });
    for (rank, (ys, ym, ds, dm)) in out.results.iter().enumerate() {
        assert_eq!(ys, ym, "rank {rank}: sequential forward differs from manual");
        assert_eq!(ds, dm, "rank {rank}: sequential backward differs from manual");
    }
}
