//! Property-based tests for the Tesseract core: partitioning bijections,
//! grid coordinate bijections, the distributed matmul against serial on
//! randomized shapes, and the closed-form analysis invariants.

// Gated behind the `proptest-tests` feature: run with
//     cargo test -p <crate> --features proptest-tests
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use tesseract_comm::Cluster;
use tesseract_core::analysis;
use tesseract_core::mm::tesseract_matmul;
use tesseract_core::partition::{a_block, b_block, combine_c, split_a, split_b};
use tesseract_core::{GridShape, TesseractGrid};
use tesseract_tensor::{matmul::matmul, max_rel_diff, DenseTensor, Matrix, Xoshiro256StarStar};

fn grid_strategy() -> impl Strategy<Value = GridShape> {
    (1usize..4, 1usize..4).prop_map(|(q, d)| GridShape::new(q, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn grid_coords_are_a_bijection(shape in grid_strategy()) {
        let mut seen = std::collections::HashSet::new();
        for off in 0..shape.size() {
            let (i, j, k) = shape.coords_of(off);
            prop_assert!(i < shape.q && j < shape.q && k < shape.d);
            prop_assert_eq!(shape.offset_of(i, j, k), off);
            prop_assert!(seen.insert((i, j, k)));
        }
    }

    #[test]
    fn a_partition_round_trips(shape in grid_strategy(), mult_r in 1usize..3, mult_c in 1usize..3, seed in 0u64..1000) {
        let rows = shape.q * shape.d * mult_r;
        let cols = shape.q * mult_c;
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let global = Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng);
        let parts = split_a(&global, shape);
        prop_assert_eq!(combine_c(&parts, shape), global);
    }

    #[test]
    fn b_partition_is_depth_replicated(shape in grid_strategy(), mult in 1usize..3, seed in 0u64..1000) {
        let n = shape.q * mult;
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let global = Matrix::random_uniform(n, n, -1.0, 1.0, &mut rng);
        let parts = split_b(&global, shape);
        for off in 0..shape.size() {
            let (i, j, _) = shape.coords_of(off);
            prop_assert_eq!(&parts[off], &parts[shape.offset_of(i, j, 0)]);
        }
    }

    #[test]
    fn blocks_cover_global_exactly_once(shape in grid_strategy(), seed in 0u64..1000) {
        // Sum of ones through the A partition covers each cell once.
        let rows = shape.q * shape.d * 2;
        let cols = shape.q * 2;
        let _ = seed;
        let ones = Matrix::full(rows, cols, 1.0);
        let parts = split_a(&ones, shape);
        let total: f32 = parts.iter().map(|p| p.sum()).sum();
        prop_assert!((total - (rows * cols) as f32).abs() < 1e-3);
    }

    #[test]
    fn analysis_formulas_are_positive_and_ordered(q in 2usize..8) {
        let p = q * q * q;
        let cannon = analysis::transmissions_cannon(p);
        let d25 = analysis::transmissions_25d(p);
        let tess = analysis::transmissions_tesseract_cube(p);
        prop_assert!(cannon > 0.0 && d25 > 0.0 && tess > 0.0);
        prop_assert!(tess < d25);
        prop_assert!(d25 < cannon);
    }

    #[test]
    fn memory_formula_matches_block_shapes(shape in grid_strategy(), mr in 1usize..4, mc in 1usize..4) {
        let a_rows = shape.q * shape.d * mr;
        let inner = shape.q * mc;
        let b_cols = shape.q * (mc + 1);
        let formula = analysis::memory_tesseract(a_rows, inner, b_cols, shape.q, shape.d);
        let a = (a_rows / (shape.q * shape.d)) * (inner / shape.q);
        let b = (inner / shape.q) * (b_cols / shape.q);
        let c = (a_rows / (shape.q * shape.d)) * (b_cols / shape.q);
        prop_assert!((formula - (a + b + c) as f64).abs() < 1e-6);
    }
}

proptest! {
    // Fewer cases: each spawns a simulated cluster.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn tesseract_matmul_matches_serial_on_random_shapes(
        q in 1usize..3,
        d in 1usize..3,
        mr in 1usize..3,
        mk in 1usize..3,
        mn in 1usize..3,
        seed in 0u64..1000,
    ) {
        let shape = GridShape::new(q, d);
        let (a_rows, inner, b_cols) = (q * d * mr, q * mk, q * mn);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let a = Matrix::random_uniform(a_rows, inner, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(inner, b_cols, -1.0, 1.0, &mut rng);
        let out = Cluster::a100(shape.size()).run(|ctx| {
            let grid = TesseractGrid::new(ctx, shape, 0);
            let (i, j, k) = grid.coords;
            let a_loc = std::sync::Arc::new(DenseTensor::from_matrix(a_block(&a, shape, i, j, k)));
            let b_loc = std::sync::Arc::new(DenseTensor::from_matrix(b_block(&b, shape, i, j)));
            tesseract_matmul(&grid, ctx, &a_loc, &b_loc).into_matrix()
        });
        let got = combine_c(&out.results, shape);
        let expected = matmul(&a, &b);
        prop_assert!(max_rel_diff(got.data(), expected.data()) < 1e-4);
    }

    #[test]
    fn tesseract_matmul_wire_bytes_match_closed_form(
        q in 2usize..4,
        d in 1usize..3,
        mr in 1usize..3,
    ) {
        // Broadcast volume of Algorithm 3: per step t there are q·d row
        // groups broadcasting an A block and q·d column groups broadcasting
        // a B block, each to q−1 peers.
        let shape = GridShape::new(q, d);
        let (a_rows, inner, b_cols) = (q * d * mr * 2, q * 2, q * 3);
        let out = Cluster::a100(shape.size()).run(|ctx| {
            let grid = TesseractGrid::new(ctx, shape, 0);
            let a_loc =
                std::sync::Arc::new(tesseract_tensor::ShadowTensor::new(a_rows / (q * d), inner / q));
            let b_loc =
                std::sync::Arc::new(tesseract_tensor::ShadowTensor::new(inner / q, b_cols / q));
            let _ = tesseract_matmul(&grid, ctx, &a_loc, &b_loc);
        });
        let a_block_bytes = (a_rows / (q * d)) * (inner / q) * 4;
        let b_block_bytes = (inner / q) * (b_cols / q) * 4;
        let expected = q * q * d * (q - 1) * (a_block_bytes + b_block_bytes);
        prop_assert_eq!(out.comm.total_wire_bytes(), expected as u64);
    }
}
