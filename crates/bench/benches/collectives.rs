//! Criterion benchmarks of the simulated-cluster collectives: wall-time of
//! the rendezvous fabric itself (how fast the simulator executes), not the
//! simulated seconds it reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tesseract_comm::Cluster;
use tesseract_tensor::{DenseTensor, Matrix};

fn bench_all_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/all_reduce");
    group.sample_size(10);
    for ranks in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                Cluster::a100(ranks).run(|ctx| {
                    let g = ctx.world_group();
                    let t = DenseTensor::from_matrix(Matrix::full(16, 16, ctx.rank as f32));
                    black_box(g.all_reduce(ctx, t));
                })
            })
        });
    }
    group.finish();
}

fn bench_broadcast_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/broadcast_chain");
    group.sample_size(10);
    group.bench_function("4ranks_x16", |b| {
        b.iter(|| {
            Cluster::a100(4).run(|ctx| {
                let g = ctx.world_group();
                for _ in 0..16 {
                    let payload =
                        (ctx.rank == 0).then(|| DenseTensor::from_matrix(Matrix::full(8, 8, 1.0)));
                    black_box(g.broadcast(ctx, 0, payload));
                }
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench_all_reduce, bench_broadcast_chain);
criterion_main!(benches);
