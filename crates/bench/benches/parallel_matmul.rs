//! Criterion benchmarks of the distributed matmul algorithms running real
//! dense math on the simulated cluster (small blocks; p = 4), comparing the
//! per-algorithm host cost of Tesseract, SUMMA, Cannon and 2.5-D.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tesseract_baselines::cannon::{cannon_matmul, cannon_mesh};
use tesseract_baselines::solomonik::{solomonik_grid, solomonik_matmul};
use tesseract_baselines::summa::{summa_matmul, summa_mesh};
use tesseract_comm::Cluster;
use tesseract_core::mm::tesseract_matmul;
use tesseract_core::partition::{a_block, b_block};
use tesseract_core::{GridShape, TesseractGrid};
use tesseract_tensor::{DenseTensor, Matrix, Xoshiro256StarStar};

fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
}

fn bench_algorithms(c: &mut Criterion) {
    let n = 32usize;
    let a = random(n, n, 1);
    let b = random(n, n, 2);
    let mut group = c.benchmark_group("distributed_matmul_32");
    group.sample_size(10);

    group.bench_function("tesseract_2x2x2", |bench| {
        let shape = GridShape::new(2, 2);
        bench.iter(|| {
            Cluster::a100(8).run(|ctx| {
                let grid = TesseractGrid::new(ctx, shape, 0);
                let (i, j, k) = grid.coords;
                let a_loc = DenseTensor::from_matrix(a_block(&a, shape, i, j, k));
                let b_loc = DenseTensor::from_matrix(b_block(&b, shape, i, j));
                black_box(tesseract_matmul(&grid, ctx, &a_loc, &b_loc));
            })
        })
    });

    group.bench_function("summa_2x2", |bench| {
        let shape = GridShape::new(2, 1);
        bench.iter(|| {
            Cluster::a100(4).run(|ctx| {
                let grid = summa_mesh(ctx, 2, 0);
                let (i, j, _) = grid.coords;
                let a_loc = DenseTensor::from_matrix(b_block(&a, shape, i, j));
                let b_loc = DenseTensor::from_matrix(b_block(&b, shape, i, j));
                black_box(summa_matmul(&grid, ctx, &a_loc, &b_loc));
            })
        })
    });

    group.bench_function("cannon_2x2", |bench| {
        let shape = GridShape::new(2, 1);
        bench.iter(|| {
            Cluster::a100(4).run(|ctx| {
                let grid = cannon_mesh(ctx, 2, 0);
                let (i, j, _) = grid.coords;
                let a_loc = DenseTensor::from_matrix(b_block(&a, shape, i, j));
                let b_loc = DenseTensor::from_matrix(b_block(&b, shape, i, j));
                black_box(cannon_matmul(&grid, ctx, &a_loc, &b_loc));
            })
        })
    });

    group.bench_function("solomonik_2x2x2", |bench| {
        let shape2d = GridShape::new(2, 1);
        bench.iter(|| {
            Cluster::a100(8).run(|ctx| {
                let grid = solomonik_grid(ctx, 2, 2, 0);
                let (i, j, k) = grid.coords;
                let a_loc = (k == 0).then(|| DenseTensor::from_matrix(b_block(&a, shape2d, i, j)));
                let b_loc = (k == 0).then(|| DenseTensor::from_matrix(b_block(&b, shape2d, i, j)));
                black_box(solomonik_matmul(&grid, ctx, a_loc, b_loc));
            })
        })
    });

    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
