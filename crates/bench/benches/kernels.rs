//! Criterion micro-benchmarks of the dense tensor kernels — the host-side
//! compute substrate whose *metered* counterparts drive the simulated
//! clock. These measure real wall time on the build machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tesseract_tensor::matmul::{matmul, matmul_nt, matmul_tn};
use tesseract_tensor::nn;
use tesseract_tensor::{Matrix, Xoshiro256StarStar};

fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let a = random(n, n, 1);
        let b = random(n, n, 2);
        group.bench_with_input(BenchmarkId::new("nn", n), &n, |bench, _| {
            bench.iter(|| matmul(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("nt", n), &n, |bench, _| {
            bench.iter(|| matmul_nt(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("tn", n), &n, |bench, _| {
            bench.iter(|| matmul_tn(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

fn bench_nn_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn");
    group.sample_size(10);
    let x = random(64, 256, 3);
    group.bench_function("softmax_rows_64x256", |b| {
        b.iter(|| nn::softmax_rows(black_box(&x)))
    });
    group.bench_function("layernorm_64x256", |b| {
        b.iter(|| nn::layernorm_rows(black_box(&x), 1e-5))
    });
    group.bench_function("gelu_64x256", |b| b.iter(|| nn::gelu_matrix(black_box(&x))));
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_nn_ops);
criterion_main!(benches);
