//! Criterion micro-benchmarks of the dense tensor kernels — the host-side
//! compute substrate whose *metered* counterparts drive the simulated
//! clock. These measure real wall time on the build machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tesseract_tensor::matmul::{
    matmul, matmul_blocked, matmul_nt, matmul_nt_blocked, matmul_nt_serial, matmul_serial,
    matmul_tn, matmul_tn_blocked, matmul_tn_serial,
};
use tesseract_tensor::nn;
use tesseract_tensor::{Matrix, ThreadPool, Xoshiro256StarStar};

fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let a = random(n, n, 1);
        let b = random(n, n, 2);
        group.bench_with_input(BenchmarkId::new("nn", n), &n, |bench, _| {
            bench.iter(|| matmul(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("nt", n), &n, |bench, _| {
            bench.iter(|| matmul_nt(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("tn", n), &n, |bench, _| {
            bench.iter(|| matmul_tn(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

/// Serial reference vs blocked kernel (1-thread pool, isolating the
/// cache-blocking + packing win) vs blocked on the process pool, for every
/// orientation at sizes around the dispatch threshold.
fn bench_kernel_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_path");
    group.sample_size(10);
    let single = ThreadPool::new(1);
    for n in [64usize, 128, 256] {
        let a = random(n, n, 1);
        let b = random(n, n, 2);
        group.bench_with_input(BenchmarkId::new("serial_nn", n), &n, |bench, _| {
            bench.iter(|| matmul_serial(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("blocked1_nn", n), &n, |bench, _| {
            bench.iter(|| matmul_blocked(black_box(&a), black_box(&b), &single))
        });
        group.bench_with_input(BenchmarkId::new("serial_nt", n), &n, |bench, _| {
            bench.iter(|| matmul_nt_serial(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("blocked1_nt", n), &n, |bench, _| {
            bench.iter(|| matmul_nt_blocked(black_box(&a), black_box(&b), &single))
        });
        group.bench_with_input(BenchmarkId::new("serial_tn", n), &n, |bench, _| {
            bench.iter(|| matmul_tn_serial(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("blocked1_tn", n), &n, |bench, _| {
            bench.iter(|| matmul_tn_blocked(black_box(&a), black_box(&b), &single))
        });
        group.bench_with_input(BenchmarkId::new("blocked_pool_nn", n), &n, |bench, _| {
            bench.iter(|| {
                matmul_blocked(black_box(&a), black_box(&b), tesseract_tensor::pool::global())
            })
        });
    }
    group.finish();
}

fn bench_nn_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn");
    group.sample_size(10);
    let x = random(64, 256, 3);
    group.bench_function("softmax_rows_64x256", |b| b.iter(|| nn::softmax_rows(black_box(&x))));
    group
        .bench_function("layernorm_64x256", |b| b.iter(|| nn::layernorm_rows(black_box(&x), 1e-5)));
    group.bench_function("gelu_64x256", |b| b.iter(|| nn::gelu_matrix(black_box(&x))));
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_kernel_paths, bench_nn_ops);
criterion_main!(benches);
