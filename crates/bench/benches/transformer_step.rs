//! Criterion benchmark of a full shadow-backend Table-1-style measurement:
//! how fast the harness itself regenerates one strong-scaling cell. (The
//! *simulated* seconds these produce are deterministic; this measures the
//! host cost of producing them.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tesseract_bench::timing::{time_megatron, time_tesseract};
use tesseract_core::{GridShape, TransformerConfig};

fn small_cfg() -> TransformerConfig {
    TransformerConfig {
        batch: 8,
        seq: 128,
        hidden: 512,
        heads: 8,
        mlp_ratio: 4,
        layers: 2,
        eps: 1e-5,
    }
}

fn bench_shadow_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("harness/shadow_step");
    group.sample_size(10);
    group.bench_function("tesseract_2x2x2", |b| {
        b.iter(|| black_box(time_tesseract(GridShape::new(2, 2), small_cfg())))
    });
    group.bench_function("tesseract_4x4x1", |b| {
        b.iter(|| black_box(time_tesseract(GridShape::new(4, 1), small_cfg())))
    });
    group.bench_function("megatron_8", |b| b.iter(|| black_box(time_megatron(8, small_cfg()))));
    group.finish();
}

criterion_group!(benches, bench_shadow_steps);
criterion_main!(benches);
