//! Paper-scale timing runs on the shadow backend.
//!
//! Each function spins up the simulated cluster at the requested world
//! size, builds the scheme's Transformer stack with [`ShadowTensor`]s
//! (shapes + exact flop/byte metering, no data), executes one forward and
//! one backward over one batch, and reports the **virtual** seconds —
//! `max` over ranks, which is what a host-side `time` measurement of one
//! training iteration sees on a real cluster.

use tesseract_baselines::megatron::{MegatronTransformer, MegatronWorld};
use tesseract_comm::{Cluster, CommStats};
use tesseract_core::{GridShape, Module, TesseractGrid, TesseractTransformer, TransformerConfig};
use tesseract_tensor::ShadowTensor;

/// Virtual-time measurement of one fwd+bwd batch.
#[derive(Clone, Debug)]
pub struct SchemeTiming {
    /// Simulated forward seconds per batch (max over ranks).
    pub forward: f64,
    /// Simulated backward seconds per batch.
    pub backward: f64,
    /// Simulated seconds of collective wait the split-phase pipeline hid
    /// under compute (max over ranks, like `forward`; 0 when every
    /// collective in the step was blocking).
    pub overlap_hidden: f64,
    /// Global collective statistics of the whole fwd+bwd step.
    pub comm: CommStats,
}

impl SchemeTiming {
    /// Paper metric: sequences per second through fwd+bwd.
    pub fn throughput(&self, batch: usize) -> f64 {
        batch as f64 / (self.forward + self.backward)
    }

    /// Paper metric: sequences per second through forward only.
    pub fn inference(&self, batch: usize) -> f64 {
        batch as f64 / self.forward
    }
}

/// Times one batch through a Tesseract `[q, q, d]` Transformer stack.
///
/// The backward pass models **activation recomputation** (Chen et al.
/// 2016), which Megatron-LM-era large-model training enables by default:
/// one extra forward runs before the true backward, making backward ≈ 3×
/// forward — exactly the ratio the paper's tables show (e.g. 0.4749 /
/// 0.1225 ≈ 3.9 for Megatron, 0.2636 / 0.0869 ≈ 3.0 for Tesseract).
pub fn time_tesseract(shape: GridShape, cfg: TransformerConfig) -> SchemeTiming {
    cfg.validate_for_grid(shape.q, shape.d);
    let out = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let mut model = TesseractTransformer::<ShadowTensor>::new(ctx, &grid, cfg, true, 0, 0);
        let rows_local = cfg.rows() / (shape.q * shape.d);
        let x = std::sync::Arc::new(ShadowTensor::new(rows_local, cfg.hidden / shape.q));
        let _ = model.forward(&grid, ctx, &x);
        ctx.flush_compute();
        let t_fwd = ctx.clock();
        // Backward phase under checkpointing = recompute forward + true
        // backward (the first forward's caches are modelled as discarded;
        // they only affect memory, not time).
        let y = model.forward(&grid, ctx, &x);
        let _ = model.backward(&grid, ctx, &y);
        ctx.flush_compute();
        (t_fwd, ctx.clock())
    });
    let forward = out.results.iter().map(|&(f, _)| f).fold(0.0, f64::max);
    let total = out.results.iter().map(|&(_, t)| t).fold(0.0, f64::max);
    let overlap_hidden = hidden_seconds(&out.reports);
    SchemeTiming { forward, backward: total - forward, overlap_hidden, comm: out.comm }
}

/// Max-over-ranks overlap-hidden seconds, mirroring the makespan
/// convention the `forward`/`backward` columns use.
fn hidden_seconds(reports: &[tesseract_comm::RankReport]) -> f64 {
    reports.iter().map(|r| r.overlap_hidden_nanos).max().unwrap_or(0) as f64 * 1e-9
}

/// Times one batch through a Megatron-LM 1-D Transformer stack on `p` GPUs.
pub fn time_megatron(p: usize, cfg: TransformerConfig) -> SchemeTiming {
    assert_eq!(cfg.heads % p, 0, "megatron needs p | heads");
    let out = Cluster::a100(p).run(|ctx| {
        let world = MegatronWorld::from_mesh(ctx, &MegatronWorld::tp_mesh(p, 0));
        let mut model = MegatronTransformer::<ShadowTensor>::new(&world, cfg, true, 0, 0);
        // Activations are replicated: every rank sees the full batch.
        let x = std::sync::Arc::new(ShadowTensor::new(cfg.rows(), cfg.hidden));
        let _ = model.forward(&world, ctx, &x);
        ctx.flush_compute();
        let t_fwd = ctx.clock();
        // Checkpointed backward = recompute forward + true backward, as in
        // `time_tesseract`.
        let y = model.forward(&world, ctx, &x);
        let _ = model.backward(&world, ctx, &y);
        ctx.flush_compute();
        (t_fwd, ctx.clock())
    });
    let forward = out.results.iter().map(|&(f, _)| f).fold(0.0, f64::max);
    let total = out.results.iter().map(|&(_, t)| t).fold(0.0, f64::max);
    let overlap_hidden = hidden_seconds(&out.reports);
    SchemeTiming { forward, backward: total - forward, overlap_hidden, comm: out.comm }
}

/// The paper's fixed experiment scale: sequence length and layer count are
/// not stated in §4; we use s = 512 (the Megatron-LM default of the era)
/// and N = 8 layers, and report shape-preserving *relative* results (see
/// EXPERIMENTS.md).
pub const SEQ_LEN: usize = 512;
pub const NUM_LAYERS: usize = 8;

/// Builds a Table-1/2 configuration.
pub fn paper_config(batch: usize, hidden: usize, heads: usize) -> TransformerConfig {
    TransformerConfig {
        batch,
        seq: SEQ_LEN,
        hidden,
        heads,
        mlp_ratio: 4,
        layers: NUM_LAYERS,
        eps: 1e-5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deeper_grids_beat_flat_grids_at_equal_p() {
        // The paper's headline strong-scaling observation: [4,4,4] is much
        // faster than [8,8,1] at 64 GPUs (§4.1 reports 2.07× on forward).
        let cfg = paper_config(16, 3072, 64);
        let t444 = time_tesseract(GridShape::new(4, 4), cfg);
        let t881 = time_tesseract(GridShape::new(8, 1), cfg);
        assert!(
            t444.forward < t881.forward,
            "[4,4,4] fwd {} must beat [8,8,1] fwd {}",
            t444.forward,
            t881.forward
        );
    }

    #[test]
    fn tesseract_beats_megatron_at_64_gpus() {
        let cfg_m = paper_config(16, 3072, 64);
        let mega = time_megatron(64, cfg_m);
        let tess = time_tesseract(GridShape::new(4, 4), cfg_m);
        assert!(
            tess.forward < mega.forward,
            "tesseract fwd {} must beat megatron fwd {}",
            tess.forward,
            mega.forward
        );
    }

    #[test]
    fn throughput_and_inference_definitions() {
        let t = SchemeTiming {
            forward: 0.1,
            backward: 0.3,
            overlap_hidden: 0.0,
            comm: CommStats::default(),
        };
        assert!((t.throughput(12) - 30.0).abs() < 1e-9);
        assert!((t.inference(12) - 120.0).abs() < 1e-9);
    }

    #[test]
    fn tesseract_timing_reports_hidden_overlap() {
        // The double-buffered SUMMA loops hide panel broadcasts behind
        // compute, so any multi-step grid must report non-zero hidden time.
        let cfg = paper_config(12, 1024, 16);
        let t = time_tesseract(GridShape::new(2, 2), cfg);
        assert!(t.overlap_hidden > 0.0, "pipeline hid no wait: {t:?}");
    }

    #[test]
    fn timing_is_deterministic() {
        let cfg = paper_config(12, 1024, 16);
        let a = time_tesseract(GridShape::new(2, 2), cfg);
        let b = time_tesseract(GridShape::new(2, 2), cfg);
        assert_eq!(a.forward, b.forward);
        assert_eq!(a.backward, b.backward);
    }
}
