//! # tesseract-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (see DESIGN.md §4 for the experiment index):
//!
//! * [`timing`] — runs the paper-scale Transformer configurations through
//!   the *shadow* tensor backend on the simulated cluster, producing the
//!   per-batch forward/backward virtual times behind Tables 1 and 2.
//! * [`tables`] — the row structures and renderers shared by the binaries.
//!
//! Binaries (one per table/figure): `table1_strong_scaling`,
//! `table2_weak_scaling`, `fig7_training_accuracy`, `fig6_hybrid`,
//! `comm_cost_table`, `memory_table`, `ablation_depth`.

pub mod tables;
pub mod timing;

pub use tables::{render_rows, ResultRow};
pub use timing::{time_megatron, time_tesseract, SchemeTiming};
