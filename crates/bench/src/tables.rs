//! Result-row structures and text renderers shared by the table binaries.

/// One row of a Table-1/Table-2-style result table.
#[derive(Clone, Debug)]
pub struct ResultRow {
    pub parallelization: String,
    pub gpus: usize,
    pub shape: String,
    pub batch: usize,
    pub hidden: usize,
    pub heads: usize,
    pub forward: f64,
    pub backward: f64,
    pub throughput: f64,
    pub inference: f64,
    /// Collective wait hidden under compute by the split-phase pipeline
    /// (seconds, max over ranks; 0 for schemes with blocking collectives).
    pub overlap_hidden: f64,
    /// Annotation (e.g. batch adjusted for divisibility).
    pub note: &'static str,
}

/// Renders rows in the paper's column layout.
pub fn render_rows(title: &str, rows: &[ResultRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n\n"));
    out.push_str(
        "| parallelization | #GPUs | shape | batch | hidden | heads | fwd time/batch (s) | bwd time/batch (s) | throughput (seq/s) | inference (seq/s) | hidden wait (s) | note |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {:.4} | {:.4} | {:.4} | {:.4} | {:.4} | {} |\n",
            r.parallelization,
            r.gpus,
            r.shape,
            r.batch,
            r.hidden,
            r.heads,
            r.forward,
            r.backward,
            r.throughput,
            r.inference,
            r.overlap_hidden,
            r.note,
        ));
    }
    out
}

/// Finds a row by its shape string (for the ratio summaries the paper
/// quotes in §4.1/§4.2).
pub fn row<'a>(rows: &'a [ResultRow], shape: &str) -> &'a ResultRow {
    rows.iter().find(|r| r.shape == shape).unwrap_or_else(|| panic!("no row with shape {shape}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultRow {
        ResultRow {
            parallelization: "Tesseract".into(),
            gpus: 64,
            shape: "[4,4,4]".into(),
            batch: 16,
            hidden: 3072,
            heads: 64,
            forward: 0.0869,
            backward: 0.2636,
            throughput: 2.8531,
            inference: 11.5075,
            overlap_hidden: 0.0123,
            note: "",
        }
    }

    #[test]
    fn render_contains_all_fields() {
        let s = render_rows("Table 1", &[sample()]);
        assert!(s.contains("Table 1"));
        assert!(s.contains("[4,4,4]"));
        assert!(s.contains("0.0869"));
        assert!(s.contains("2.8531"));
        assert!(s.contains("hidden wait (s)"));
        assert!(s.contains("0.0123"));
    }

    #[test]
    fn row_lookup_by_shape() {
        let rows = vec![sample()];
        assert_eq!(row(&rows, "[4,4,4]").gpus, 64);
    }

    #[test]
    #[should_panic(expected = "no row with shape")]
    fn row_lookup_panics_on_missing() {
        let _ = row(&[], "[9,9,9]");
    }
}
