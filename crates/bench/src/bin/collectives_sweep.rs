//! Collectives sweep: the cloning (owned) collective path vs the `Arc`-shared
//! zero-copy path, measured in **host wall time** and **payload copies**.
//!
//! Two sections:
//!
//! * `collectives` — each collective (broadcast / reduce / all-reduce /
//!   all-gather) run `iters` times on an 8-rank group with an `n×n` f32
//!   payload, once through the owned API (every receiver gets a deep copy)
//!   and once through the `_shared` API (one allocation per rendezvous);
//! * `matmul_step` — SUMMA training steps (forward `C = A·B` plus both
//!   backward rules `A' = C'·Bᵀ`, `B' = Aᵀ·C'`) on the `[4, 4, 1]` grid with
//!   skinny activations (`A` is `64×n` against the `n×n` weight, the
//!   transformer linear-layer regime where panel broadcasts are a
//!   first-order cost), comparing the shipped zero-copy `tesseract_matmul*`
//!   against a verbatim re-creation of the pre-refactor cloning hot loop.
//!
//! Payload copies never advance the simulated clocks — the wall-time columns
//! are real host seconds, the copy columns are the counters the simulator
//! records per collective.
//!
//! Run: `cargo run --release -p tesseract-bench --bin collectives_sweep -- \
//!           [--sizes 256,512] [--reps 3] [--iters 20] [--out BENCH_collectives.json]`

use std::sync::Arc;
use std::time::Instant;

use tesseract_comm::{Cluster, RankCtx};
use tesseract_core::partition::{a_block, b_block};
use tesseract_core::{
    tesseract_matmul, tesseract_matmul_nt, tesseract_matmul_tn, GridShape, TesseractGrid,
};
use tesseract_tensor::{DenseTensor, Matrix, TensorLike, Xoshiro256StarStar};

const GROUP: usize = 8;
const MATMUL_SHAPE: (usize, usize) = (4, 1); // [4, 4, 1]: the q >= 4 regime

fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
}

/// Median wall nanoseconds over `reps` runs of `f`; also returns the copy
/// counters of the last run (identical across runs by determinism).
fn median_run(reps: usize, mut f: impl FnMut() -> (u64, u64)) -> (f64, u64, u64) {
    let mut times = Vec::new();
    let mut copies = (0, 0);
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        copies = f();
        times.push(start.elapsed().as_nanos() as f64);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    (times[times.len() / 2], copies.0, copies.1)
}

/// Runs `iters` repetitions of one collective on a `GROUP`-rank cluster and
/// returns `(copies, copy_bytes)` from the comm stats.
fn collective_round(op: &str, shared: bool, n: usize, iters: usize) -> (u64, u64) {
    let op = op.to_string();
    let out = Cluster::a100(GROUP).run(move |ctx| {
        let g = ctx.world_group();
        let mine = DenseTensor::from_matrix(random(n, n, 5 + ctx.rank as u64));
        for _ in 0..iters {
            match (op.as_str(), shared) {
                ("broadcast", false) => {
                    let _ = g.broadcast(ctx, 0, (ctx.rank == 0).then(|| mine.clone()));
                }
                ("broadcast", true) => {
                    let payload = (ctx.rank == 0).then(|| Arc::new(mine.clone()));
                    let _ = g.broadcast_shared(ctx, 0, payload);
                }
                ("reduce", false) => {
                    let _ = g.reduce(ctx, 0, mine.clone());
                }
                ("reduce", true) => {
                    let _ = g.reduce_shared(ctx, 0, mine.clone());
                }
                ("all_reduce", false) => {
                    let _ = g.all_reduce(ctx, mine.clone());
                }
                ("all_reduce", true) => {
                    let _ = g.all_reduce_shared(ctx, mine.clone());
                }
                ("all_gather", false) => {
                    let _ = g.all_gather(ctx, mine.clone());
                }
                ("all_gather", true) => {
                    let _ = g.all_gather_shared(ctx, Arc::new(mine.clone()));
                }
                _ => unreachable!(),
            }
        }
    });
    (out.comm.total_copies(), out.comm.total_copy_bytes())
}

/// The pre-refactor SUMMA hot loop, re-created verbatim on the owned
/// collectives: the step-`t` root clones its own panel into the broadcast
/// and every receiver gets a deep copy; reductions fold cloned deposits.
fn cloning_step(grid: &TesseractGrid, ctx: &mut RankCtx, a_loc: &DenseTensor, b_loc: &DenseTensor) {
    let q = grid.shape.q;
    // Forward: C = A·B.
    let mut c: Option<DenseTensor> = None;
    for t in 0..q {
        let a_t = grid.row.broadcast(ctx, t, (grid.j() == t).then(|| a_loc.clone()));
        let b_t = grid.col.broadcast(ctx, t, (grid.i() == t).then(|| b_loc.clone()));
        let partial = a_t.matmul(&b_t, &mut ctx.meter);
        match c.as_mut() {
            None => c = Some(partial),
            Some(acc) => acc.add_assign(&partial, &mut ctx.meter),
        }
    }
    let dy = c.expect("q >= 1");
    // Backward dX = dY·Bᵀ.
    let mut dx: Option<DenseTensor> = None;
    for t in 0..q {
        let b_t = grid.col.broadcast(ctx, t, (grid.i() == t).then(|| b_loc.clone()));
        let partial = dy.matmul_nt(&b_t, &mut ctx.meter);
        let reduced = grid.row.reduce(ctx, t, partial);
        if grid.j() == t {
            dx = Some(reduced.expect("root receives reduction"));
        }
    }
    // Backward dW = Aᵀ·dY.
    let mut dw: Option<DenseTensor> = None;
    for t in 0..q {
        let a_t = grid.row.broadcast(ctx, t, (grid.j() == t).then(|| a_loc.clone()));
        let partial = a_t.matmul_tn(&dy, &mut ctx.meter);
        let reduced = grid.col.reduce(ctx, t, partial);
        if grid.i() == t {
            dw = Some(reduced.expect("root receives reduction"));
        }
    }
    let (dx, dw) = (dx.expect("assigned"), dw.expect("assigned"));
    std::hint::black_box(dx.matrix()[(0, 0)] + dw.matrix()[(0, 0)]);
}

/// The shipped zero-copy hot loop: same three products on the `Arc` path.
fn shared_step(
    grid: &TesseractGrid,
    ctx: &mut RankCtx,
    a_loc: &Arc<DenseTensor>,
    b_loc: &Arc<DenseTensor>,
) {
    let dy = tesseract_matmul(grid, ctx, a_loc, b_loc);
    let dx = tesseract_matmul_nt(grid, ctx, &dy, b_loc);
    let dw = tesseract_matmul_tn(grid, ctx, a_loc, &dy, true);
    std::hint::black_box(dx.matrix()[(0, 0)] + dw.matrix()[(0, 0)]);
}

/// Global activation rows for the matmul step: 16 rows per rank on the
/// `[4, 4, 1]` grid — the transformer regime, where the per-rank activation
/// block is skinny relative to the `n/q × n/q` weight panel it multiplies
/// (so the panel broadcast is a first-order cost, as in a linear layer).
const STEP_ROWS: usize = 64;

/// `iters` fwd+bwd matmul steps on `[4, 4, 1]` with global `A [64, n]`,
/// `B [n, n]`; returns `(copies, copy_bytes)`.
fn matmul_round(shared: bool, n: usize, iters: usize) -> (u64, u64) {
    let shape = GridShape::new(MATMUL_SHAPE.0, MATMUL_SHAPE.1);
    let a = random(STEP_ROWS, n, 91);
    let b = random(n, n, 92);
    let out = Cluster::a100(shape.size()).run(move |ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let a_loc = DenseTensor::from_matrix(a_block(&a, shape, i, j, k));
        let b_loc = DenseTensor::from_matrix(b_block(&b, shape, i, j));
        let (a_arc, b_arc) = (Arc::new(a_loc.clone()), Arc::new(b_loc.clone()));
        for _ in 0..iters {
            if shared {
                shared_step(&grid, ctx, &a_arc, &b_arc);
            } else {
                cloning_step(&grid, ctx, &a_loc, &b_loc);
            }
        }
    });
    (out.comm.total_copies(), out.comm.total_copy_bytes())
}

struct OpRow {
    op: &'static str,
    n: usize,
    owned_ns: f64,
    owned_copies: u64,
    owned_copy_bytes: u64,
    shared_ns: f64,
    shared_copies: u64,
    shared_copy_bytes: u64,
}

struct StepRow {
    n: usize,
    cloning_ns: f64,
    cloning_copies: u64,
    cloning_copy_bytes: u64,
    shared_ns: f64,
    shared_copies: u64,
    shared_copy_bytes: u64,
}

fn main() {
    let mut sizes: Vec<usize> = vec![256, 512];
    let mut reps = 3usize;
    let mut iters = 20usize;
    let mut out_path = String::from("BENCH_collectives.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value")).clone();
        match arg.as_str() {
            "--sizes" => {
                sizes = value("--sizes")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes wants comma-separated integers"))
                    .collect();
            }
            "--reps" => reps = value("--reps").parse().expect("--reps wants an integer"),
            "--iters" => iters = value("--iters").parse().expect("--iters wants an integer"),
            "--out" => out_path = value("--out"),
            other => panic!("unknown argument {other:?} (known: --sizes --reps --iters --out)"),
        }
    }
    let (mq, md) = MATMUL_SHAPE;
    assert!(sizes.iter().all(|&n| n % (mq * md * mq) == 0), "--sizes must divide the [4,4,1] grid");

    println!(
        "collectives_sweep: sizes {sizes:?}, {reps} reps, {iters} iters/collective, group {GROUP}\n"
    );
    println!("### collectives ({GROUP} ranks, n x n f32 payload, {iters} iters)\n");
    println!("| op | n | owned ns | shared ns | speedup | owned copies (bytes) | shared copies |");
    println!("|---|---|---|---|---|---|---|");
    let mut op_rows = Vec::new();
    for &n in &sizes {
        for op in ["broadcast", "reduce", "all_reduce", "all_gather"] {
            let (owned_ns, owned_copies, owned_copy_bytes) =
                median_run(reps, || collective_round(op, false, n, iters));
            let (shared_ns, shared_copies, shared_copy_bytes) =
                median_run(reps, || collective_round(op, true, n, iters));
            println!(
                "| {op} | {n} | {owned_ns:.0} | {shared_ns:.0} | {:.2}x | {owned_copies} ({owned_copy_bytes}) | {shared_copies} |",
                owned_ns / shared_ns,
            );
            op_rows.push(OpRow {
                op,
                n,
                owned_ns,
                owned_copies,
                owned_copy_bytes,
                shared_ns,
                shared_copies,
                shared_copy_bytes,
            });
        }
    }

    println!(
        "\n### matmul_step (fwd + both bwd rules, [{mq},{mq},{md}] grid, \
global A {STEP_ROWS} x n, B n x n, {iters} steps)\n"
    );
    println!("| n | cloning ns | shared ns | speedup | cloning copies (bytes) | shared copies |");
    println!("|---|---|---|---|---|---|");
    let mut step_rows = Vec::new();
    for &n in &sizes {
        let (cloning_ns, cloning_copies, cloning_copy_bytes) =
            median_run(reps, || matmul_round(false, n, iters));
        let (shared_ns, shared_copies, shared_copy_bytes) =
            median_run(reps, || matmul_round(true, n, iters));
        println!(
            "| {n} | {cloning_ns:.0} | {shared_ns:.0} | {:.2}x | {cloning_copies} ({cloning_copy_bytes}) | {shared_copies} |",
            cloning_ns / shared_ns,
        );
        step_rows.push(StepRow {
            n,
            cloning_ns,
            cloning_copies,
            cloning_copy_bytes,
            shared_ns,
            shared_copies,
            shared_copy_bytes,
        });
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"collectives_sweep\",\n");
    json.push_str(
        "  \"units\": { \"time\": \"ns (median, host wall)\", \"copies\": \"payload deep copies\" },\n",
    );
    json.push_str(&format!("  \"reps\": {reps},\n  \"iters\": {iters},\n"));
    json.push_str(&format!("  \"group\": {GROUP},\n"));
    json.push_str(&format!("  \"matmul_grid\": \"[{mq},{mq},{md}]\",\n"));
    json.push_str("  \"collectives\": [\n");
    for (i, r) in op_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"op\": \"{}\", \"n\": {}, \"owned_ns\": {:.0}, \"shared_ns\": {:.0}, \
\"speedup\": {:.3}, \"owned_copies\": {}, \"owned_copy_bytes\": {}, \
\"shared_copies\": {}, \"shared_copy_bytes\": {} }}{}\n",
            r.op,
            r.n,
            r.owned_ns,
            r.shared_ns,
            r.owned_ns / r.shared_ns,
            r.owned_copies,
            r.owned_copy_bytes,
            r.shared_copies,
            r.shared_copy_bytes,
            if i + 1 == op_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"matmul_step\": [\n");
    for (i, r) in step_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"n\": {}, \"cloning_ns\": {:.0}, \"shared_ns\": {:.0}, \"speedup\": {:.3}, \
\"cloning_copies\": {}, \"cloning_copy_bytes\": {}, \"shared_copies\": {}, \
\"shared_copy_bytes\": {} }}{}\n",
            r.n,
            r.cloning_ns,
            r.shared_ns,
            r.cloning_ns / r.shared_ns,
            r.cloning_copies,
            r.cloning_copy_bytes,
            r.shared_copies,
            r.shared_copy_bytes,
            if i + 1 == step_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("\nwrote {out_path}");
}
