//! Reproduces the **§1/§3.1 communication-count claims** (experiment C1):
//!
//! * Cannon needs `2p^{3/2} − 2p^{1/2}` transfers per matmul, the 2.5-D
//!   algorithm `2p − 2p^{1/3}`, Tesseract (d = q) only `2p^{2/3}`;
//! * at p = 64, Cannon moves 31.5× and 2.5-D 3.75× Tesseract's volume;
//! * Tesseract wins against Cannon for q > 2 and against 2.5-D for q > 4.
//!
//! The closed forms are evaluated and then cross-checked against the
//! *measured* wire bytes of the actual algorithm implementations running a
//! same-size matmul on the simulated cluster.
//!
//! Run: `cargo run --release -p tesseract-bench --bin comm_cost_table`

use tesseract_baselines::cannon::{cannon_matmul, cannon_mesh};
use tesseract_baselines::solomonik::{solomonik_grid, solomonik_matmul};
use tesseract_comm::Cluster;
use tesseract_core::analysis::{
    transmissions_25d, transmissions_cannon, transmissions_tesseract_cube,
};
use tesseract_core::{mm::tesseract_matmul, GridShape, TesseractGrid};
use tesseract_tensor::ShadowTensor;

fn main() {
    println!("## C1 — closed-form transfer counts per matmul (§1/§3.1)\n");
    println!("| p | Cannon 2p^1.5-2p^0.5 | 2.5-D 2p-2p^(1/3) | Tesseract 2p^(2/3) | Cannon/Tess | 2.5D/Tess |");
    println!("|---|---|---|---|---|---|");
    for q in [2usize, 3, 4, 5, 6] {
        let p = q * q * q;
        let c = transmissions_cannon(p);
        let d = transmissions_25d(p);
        let t = transmissions_tesseract_cube(p);
        println!("| {p} | {c:.2} | {d:.2} | {t:.2} | {:.2} | {:.2} |", c / t, d / t);
    }
    let (c64, d64, t64) =
        (transmissions_cannon(64), transmissions_25d(64), transmissions_tesseract_cube(64));
    println!("\npaper's p = 64 claims: Cannon/Tesseract = {:.2} (paper: 31.5), 2.5-D/Tesseract = {:.2} (paper: 3.75)\n", c64 / t64, d64 / t64);

    // Measured cross-check: one Transformer-like matmul — tall activation
    // A = [a, n] times weight B = [n, n] — at p = 64 in each scheme's
    // natural arrangement. (For a square one-shot matmul the weight
    // broadcasts dominate and depth cannot help; the tall-activation case
    // is the regime tensor parallelism targets and where §3.1's advantage
    // materializes.)
    let n = 4096usize;
    let a_rows = 32768usize; // b·s = 64 × 512
    println!("## C1 — measured wire bytes for one [{a_rows}, {n}] x [{n}, {n}] matmul at p = 64\n");

    // Cannon on [8, 8].
    let cannon = Cluster::a100(64).run(|ctx| {
        let grid = cannon_mesh(ctx, 8, 0);
        let a = ShadowTensor::new(a_rows / 8, n / 8);
        let b = ShadowTensor::new(n / 8, n / 8);
        let _ = cannon_matmul(&grid, ctx, &a, &b);
    });

    // Solomonik 2.5-D on [4, 4, 4].
    let solomonik = Cluster::a100(64).run(|ctx| {
        let grid = solomonik_grid(ctx, 4, 4, 0);
        let (_, _, k) = grid.coords;
        let a = (k == 0).then(|| ShadowTensor::new(a_rows / 4, n / 4));
        let b = (k == 0).then(|| ShadowTensor::new(n / 4, n / 4));
        let _ = solomonik_matmul(&grid, ctx, a, b);
    });

    // SUMMA / 2-D Tesseract on [8, 8, 1].
    let summa = Cluster::a100(64).run(|ctx| {
        let grid = TesseractGrid::new(ctx, GridShape::new(8, 1), 0);
        let a = std::sync::Arc::new(ShadowTensor::new(a_rows / 8, n / 8));
        let b = std::sync::Arc::new(ShadowTensor::new(n / 8, n / 8));
        let _ = tesseract_matmul(&grid, ctx, &a, &b);
    });

    // Tesseract on [4, 4, 4].
    let tess = Cluster::a100(64).run(|ctx| {
        let grid = TesseractGrid::new(ctx, GridShape::new(4, 4), 0);
        let a = std::sync::Arc::new(ShadowTensor::new(a_rows / 16, n / 4));
        let b = std::sync::Arc::new(ShadowTensor::new(n / 4, n / 4));
        let _ = tesseract_matmul(&grid, ctx, &a, &b);
    });

    println!("| algorithm | arrangement | wire bytes | collective calls | vs Tesseract |");
    println!("|---|---|---|---|---|");
    let t_bytes = tess.comm.total_wire_bytes() as f64;
    for (name, arr, out) in [
        ("Cannon", "[8,8]", &cannon),
        ("2.5-D (Solomonik)", "[4,4,4]", &solomonik),
        ("SUMMA / Optimus", "[8,8,1]", &summa),
        ("Tesseract", "[4,4,4]", &tess),
    ] {
        println!(
            "| {name} | {arr} | {} | {} | {:.2}x |",
            out.comm.total_wire_bytes(),
            out.comm.total_calls(),
            out.comm.total_wire_bytes() as f64 / t_bytes
        );
    }
    println!("\nFor the tall-activation matmuls a Transformer performs, Tesseract moves");
    println!("the least data, in line with the paper's closed forms (exact multiples");
    println!("differ because the closed forms count abstract 'transfers' while the");
    println!("harness counts bytes of concrete block sizes).");
}
