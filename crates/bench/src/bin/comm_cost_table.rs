//! Reproduces the **§1/§3.1 communication-count claims** (experiment C1)
//! and tabulates the **flat vs two-level (hierarchical) collective cost
//! crossover** per op, payload size and group placement.
//!
//! C1:
//! * Cannon needs `2p^{3/2} − 2p^{1/2}` transfers per matmul, the 2.5-D
//!   algorithm `2p − 2p^{1/3}`, Tesseract (d = q) only `2p^{2/3}`;
//! * at p = 64, Cannon moves 31.5× and 2.5-D 3.75× Tesseract's volume;
//! * Tesseract wins against Cannon for q > 2 and against 2.5-D for q > 4.
//!
//! The closed forms are evaluated and then cross-checked against the
//! *measured* wire bytes of the actual algorithm implementations running a
//! same-size matmul on the simulated cluster.
//!
//! The hierarchical section evaluates
//! `CostParams::phased_collective_time` — the two-level schedule the
//! simulator charges (NVLink phase inside each node, InfiniBand phase over
//! one leader per node, size-based selection against the flat algorithm) —
//! on mesh-derived placements of the paper's arrangements, and writes the
//! whole table to `BENCH_comm.json`. CI greps that JSON for a numeric
//! crossover and for `"intra_node_hier_exceeds_flat": false`; the binary
//! additionally panics if the model violates its own bounds (hierarchical
//! below the pure-NVLink floor, above the flat charge, not strictly
//! cheaper somewhere for multi-node placements with node sharing, or
//! unequal to flat for intra-node groups).
//!
//! Run: `cargo run --release -p tesseract-bench --bin comm_cost_table -- \
//!           [--out BENCH_comm.json]`

use tesseract_baselines::cannon::{cannon_matmul, cannon_mesh};
use tesseract_baselines::solomonik::{solomonik_grid, solomonik_matmul};
use tesseract_comm::{Cluster, CollectiveOp, CostParams, Link, Topology};
use tesseract_core::analysis::{
    transmissions_25d, transmissions_cannon, transmissions_tesseract_cube,
};
use tesseract_core::{mm::tesseract_matmul, GridShape, TesseractGrid};
use tesseract_tensor::ShadowTensor;

/// Payload sizes swept per (op, placement): 1 KiB … 64 MiB.
const SIZES: [usize; 5] = [1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26];

/// Ops the two-level schedule decomposes (point-to-point ops stay flat).
const HIER_OPS: [CollectiveOp; 4] = [
    CollectiveOp::Broadcast,
    CollectiveOp::Reduce,
    CollectiveOp::AllReduce,
    CollectiveOp::AllGather,
];

/// One mesh-derived rank group whose placement the crossover table sweeps.
struct PlacementCase {
    label: &'static str,
    ranks: Vec<usize>,
}

/// The paper's arrangements, expressed as fibers/sub-meshes of the
/// `[q,q,d]` named-axis mesh on the Meluxina packing (4 GPUs/node).
fn placement_cases() -> Vec<PlacementCase> {
    let qq21 = GridShape::new(2, 1).mesh(0);
    let qq22 = GridShape::new(2, 2).mesh(0);
    let qq44 = GridShape::new(4, 4).mesh(0);
    vec![
        // Row fiber of [2,2,1]: 2 ranks on one node.
        PlacementCase { label: "[2,2,1] row fiber", ranks: qq21.fiber_ranks("col", &[0, 0, 0]) },
        // One q×q layer of [2,2,2]: 4 ranks, exactly one node.
        PlacementCase { label: "[2,2,2] layer 0", ranks: (0..4).collect() },
        // Depth fiber of [2,2,2]: one rank on each of 2 nodes (no sharing).
        PlacementCase {
            label: "[2,2,2] depth fiber",
            ranks: qq22.fiber_ranks("depth", &[0, 0, 0]),
        },
        // The whole [2,2,2] cube: 8 ranks over 2 full nodes.
        PlacementCase { label: "[2,2,2] world", ranks: (0..8).collect() },
        // One 4×4 layer of [4,4,2]: 16 ranks over 4 full nodes.
        PlacementCase { label: "[4,4,2] layer 0", ranks: (0..16).collect() },
        // Depth fiber of [4,4,4]: one rank on each of 4 nodes (no sharing).
        PlacementCase {
            label: "[4,4,4] depth fiber",
            ranks: qq44.fiber_ranks("depth", &[0, 0, 0]),
        },
    ]
}

fn human_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{} MiB", b >> 20)
    } else {
        format!("{} KiB", b >> 10)
    }
}

fn main() {
    let mut out_path = "BENCH_comm.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => {
                out_path = args.next().unwrap_or_else(|| panic!("--out needs a value"));
            }
            other => panic!("unknown argument {other:?} (known: --out)"),
        }
    }

    println!("## C1 — closed-form transfer counts per matmul (§1/§3.1)\n");
    println!("| p | Cannon 2p^1.5-2p^0.5 | 2.5-D 2p-2p^(1/3) | Tesseract 2p^(2/3) | Cannon/Tess | 2.5D/Tess |");
    println!("|---|---|---|---|---|---|");
    for q in [2usize, 3, 4, 5, 6] {
        let p = q * q * q;
        let c = transmissions_cannon(p);
        let d = transmissions_25d(p);
        let t = transmissions_tesseract_cube(p);
        println!("| {p} | {c:.2} | {d:.2} | {t:.2} | {:.2} | {:.2} |", c / t, d / t);
    }
    let (c64, d64, t64) =
        (transmissions_cannon(64), transmissions_25d(64), transmissions_tesseract_cube(64));
    println!("\npaper's p = 64 claims: Cannon/Tesseract = {:.2} (paper: 31.5), 2.5-D/Tesseract = {:.2} (paper: 3.75)\n", c64 / t64, d64 / t64);

    // Measured cross-check: one Transformer-like matmul — tall activation
    // A = [a, n] times weight B = [n, n] — at p = 64 in each scheme's
    // natural arrangement. (For a square one-shot matmul the weight
    // broadcasts dominate and depth cannot help; the tall-activation case
    // is the regime tensor parallelism targets and where §3.1's advantage
    // materializes.)
    let n = 4096usize;
    let a_rows = 32768usize; // b·s = 64 × 512
    println!("## C1 — measured wire bytes for one [{a_rows}, {n}] x [{n}, {n}] matmul at p = 64\n");

    // Cannon on [8, 8].
    let cannon = Cluster::a100(64).run(|ctx| {
        let grid = cannon_mesh(ctx, 8, 0);
        let a = ShadowTensor::new(a_rows / 8, n / 8);
        let b = ShadowTensor::new(n / 8, n / 8);
        let _ = cannon_matmul(&grid, ctx, &a, &b);
    });

    // Solomonik 2.5-D on [4, 4, 4].
    let solomonik = Cluster::a100(64).run(|ctx| {
        let grid = solomonik_grid(ctx, 4, 4, 0);
        let (_, _, k) = grid.coords;
        let a = (k == 0).then(|| ShadowTensor::new(a_rows / 4, n / 4));
        let b = (k == 0).then(|| ShadowTensor::new(n / 4, n / 4));
        let _ = solomonik_matmul(&grid, ctx, a, b);
    });

    // SUMMA / 2-D Tesseract on [8, 8, 1].
    let summa = Cluster::a100(64).run(|ctx| {
        let grid = TesseractGrid::new(ctx, GridShape::new(8, 1), 0);
        let a = std::sync::Arc::new(ShadowTensor::new(a_rows / 8, n / 8));
        let b = std::sync::Arc::new(ShadowTensor::new(n / 8, n / 8));
        let _ = tesseract_matmul(&grid, ctx, &a, &b);
    });

    // Tesseract on [4, 4, 4].
    let tess = Cluster::a100(64).run(|ctx| {
        let grid = TesseractGrid::new(ctx, GridShape::new(4, 4), 0);
        let a = std::sync::Arc::new(ShadowTensor::new(a_rows / 16, n / 4));
        let b = std::sync::Arc::new(ShadowTensor::new(n / 4, n / 4));
        let _ = tesseract_matmul(&grid, ctx, &a, &b);
    });

    println!("| algorithm | arrangement | wire bytes | collective calls | vs Tesseract |");
    println!("|---|---|---|---|---|");
    let t_bytes = tess.comm.total_wire_bytes() as f64;
    for (name, arr, out) in [
        ("Cannon", "[8,8]", &cannon),
        ("2.5-D (Solomonik)", "[4,4,4]", &solomonik),
        ("SUMMA / Optimus", "[8,8,1]", &summa),
        ("Tesseract", "[4,4,4]", &tess),
    ] {
        println!(
            "| {name} | {arr} | {} | {} | {:.2}x |",
            out.comm.total_wire_bytes(),
            out.comm.total_calls(),
            out.comm.total_wire_bytes() as f64 / t_bytes
        );
    }
    println!("\nFor the tall-activation matmuls a Transformer performs, Tesseract moves");
    println!("the least data, in line with the paper's closed forms (exact multiples");
    println!("differ because the closed forms count abstract 'transfers' while the");
    println!("harness counts bytes of concrete block sizes).");

    // ---- Flat vs two-level hierarchical crossover --------------------
    let params = CostParams::a100_cluster();
    let topo = Topology::meluxina();
    println!(
        "\n## Flat vs two-level hierarchical collective cost (Meluxina packing, 4 GPUs/node)\n"
    );

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"comm_cost_table\",\n");
    json.push_str("  \"model\": \"two_level_hierarchical_vs_flat\",\n");
    json.push_str("  \"topology\": \"meluxina (4 GPUs/node, NVLink intra, InfiniBand inter)\",\n");
    json.push_str("  \"entries\": [\n");

    let mut intra_exceeds = false;
    let mut shared_crossovers = 0usize;
    let mut entries = Vec::new();
    for case in placement_cases() {
        let placement = topo.placement(&case.ranks);
        println!(
            "### {} — {} ranks on {} node(s), fullest node holds {}\n",
            case.label, placement.members, placement.nodes, placement.max_per_node
        );
        println!("| op | size | flat (µs) | two-level (µs) | intra (µs) | inter (µs) | winner |");
        println!("|---|---|---|---|---|---|---|");
        for op in HIER_OPS {
            let mut won_somewhere = false;
            let mut crossover: Option<usize> = None;
            let mut size_rows = Vec::new();
            for bytes in SIZES {
                let c = params.phased_collective_time(op, bytes, placement);
                let nv = params.collective_time(op, placement.members, bytes, Link::NvLink);
                assert!(
                    c.total >= nv && c.total <= c.flat,
                    "{op:?} {bytes} on {}: charged cost outside [NVLink, flat] bounds: {c:?}",
                    case.label
                );
                if placement.is_intra_node() {
                    intra_exceeds |= c.total > c.flat;
                    assert!(
                        c.total == c.flat,
                        "{op:?} {bytes} on intra-node {}: two-level must equal flat: {c:?}",
                        case.label
                    );
                }
                if c.hierarchical_won() {
                    won_somewhere = true;
                } else if won_somewhere && crossover.is_none() {
                    crossover = Some(bytes);
                }
                println!(
                    "| {} | {} | {:.1} | {:.1} | {:.1} | {:.1} | {} |",
                    op.name(),
                    human_bytes(bytes),
                    c.flat * 1e6,
                    c.total * 1e6,
                    c.intra * 1e6,
                    c.inter * 1e6,
                    if c.hierarchical_won() { "hierarchical" } else { "flat" }
                );
                size_rows.push(format!(
                    "        {{\"bytes\": {bytes}, \"flat_s\": {:e}, \"hier_s\": {:e}, \
                     \"intra_s\": {:e}, \"inter_s\": {:e}, \"hier_cheaper\": {}}}",
                    c.flat,
                    c.total,
                    c.intra,
                    c.inter,
                    c.hierarchical_won()
                ));
            }
            if placement.shares_nodes_across() {
                assert!(
                    won_somewhere,
                    "{op:?} on {}: members share nodes but the two-level schedule never won",
                    case.label
                );
            }
            if crossover.is_some() {
                shared_crossovers += 1;
            }
            entries.push(format!(
                "    {{\n      \"op\": \"{}\",\n      \"placement\": \"{}\",\n      \
                 \"members\": {},\n      \"nodes\": {},\n      \"max_per_node\": {},\n      \
                 \"intra_node\": {},\n      \"shares_nodes_across\": {},\n      \
                 \"hier_wins_somewhere\": {},\n      \"crossover_bytes\": {},\n      \
                 \"sizes\": [\n{}\n      ]\n    }}",
                op.name(),
                case.label,
                placement.members,
                placement.nodes,
                placement.max_per_node,
                placement.is_intra_node(),
                placement.shares_nodes_across(),
                won_somewhere,
                crossover.map_or("null".to_string(), |b| b.to_string()),
                size_rows.join(",\n")
            ));
        }
        println!();
    }
    json.push_str(&entries.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str(&format!("  \"intra_node_hier_exceeds_flat\": {intra_exceeds},\n"));
    json.push_str(&format!("  \"crossover_entries\": {shared_crossovers}\n"));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path} ({shared_crossovers} op/placement entries show a size crossover)");
    println!("\nReading the table: inside one node the two-level schedule *is* the flat");
    println!("NVLink algorithm (identical cost). Across nodes with several members per");
    println!("node, the InfiniBand phase spans node leaders only, so latency-bound");
    println!("sizes are strictly cheaper; tree ops pay the payload twice (NVLink +");
    println!("IB), so past ~3.2 MB selection falls back to the flat pipelined tree —");
    println!("that is the crossover. Ring ops (all-reduce / all-gather) also shrink");
    println!("the IB bandwidth term, so the two-level schedule wins at every size.");
}
