//! Reproduces **Figure 7** (training accuracy): the same Vision Transformer
//! trained on (1) a single GPU, (2) Tesseract `[2,2,1]`, (3) Tesseract
//! `[2,2,2]`, with fixed seeds and identical data order. The paper's claim:
//! "Tesseract does not introduce any approximations, thus it does not
//! affect the training accuracy" — the three curves coincide.
//!
//! The dataset is the synthetic ImageNet-100 substitute (100 classes,
//! class-prototype images; see DESIGN.md §2), scaled so the run finishes
//! in minutes on one CPU core.
//!
//! Run: `cargo run --release -p tesseract-bench --bin fig7_training_accuracy`

use tesseract_core::{GridShape, TransformerConfig};
use tesseract_train::{
    train_serial, train_tesseract, SyntheticVisionDataset, TrainReport, TrainSettings, ViTConfig,
};

fn main() {
    let vcfg = ViTConfig {
        body: TransformerConfig {
            batch: 16,
            seq: 4,
            hidden: 16,
            heads: 4,
            mlp_ratio: 2,
            layers: 2,
            eps: 1e-5,
        },
        patch_dim: 8,
        classes: 100,
    };
    let settings = TrainSettings {
        epochs: 10,
        steps_per_epoch: 12,
        lr: 3e-3,
        weight_decay: 0.3,
        seed: 42,
        data_seed: 20220829,
        clip_grad_norm: None,
    };
    let ds = SyntheticVisionDataset::new(vcfg.classes, vcfg.body.seq, vcfg.patch_dim, 0.35, 7);

    println!("Figure 7 — ViT training accuracy (synthetic ImageNet-100 substitute)");
    println!(
        "model: h={} heads={} layers={} | {} classes | batch {} | Adam lr {} wd {}\n",
        vcfg.body.hidden,
        vcfg.body.heads,
        vcfg.body.layers,
        vcfg.classes,
        vcfg.body.batch,
        settings.lr,
        settings.weight_decay
    );

    let serial = train_serial(vcfg, &ds, settings);
    let t221 = train_tesseract(GridShape::new(2, 1), vcfg, &ds, settings);
    let t222 = train_tesseract(GridShape::new(2, 2), vcfg, &ds, settings);

    println!("| epoch | single GPU acc | [2,2,1] acc | [2,2,2] acc | single loss | [2,2,1] loss | [2,2,2] loss |");
    println!("|---|---|---|---|---|---|---|");
    for e in 0..settings.epochs {
        println!(
            "| {} | {:.4} | {:.4} | {:.4} | {:.4} | {:.4} | {:.4} |",
            e + 1,
            serial.epochs[e].accuracy,
            t221.epochs[e].accuracy,
            t222.epochs[e].accuracy,
            serial.epochs[e].loss,
            t221.epochs[e].loss,
            t222.epochs[e].loss,
        );
    }

    let spread = |a: &TrainReport, b: &TrainReport| {
        a.epochs
            .iter()
            .zip(b.epochs.iter())
            .map(|(x, y)| (x.accuracy - y.accuracy).abs())
            .fold(0.0f32, f32::max)
    };
    println!(
        "\nmax |accuracy gap| vs single GPU: [2,2,1] = {:.4}, [2,2,2] = {:.4}",
        spread(&serial, &t221),
        spread(&serial, &t222)
    );
    println!(
        "final accuracy: single {:.4}, [2,2,1] {:.4}, [2,2,2] {:.4}",
        serial.final_accuracy(),
        t221.final_accuracy(),
        t222.final_accuracy()
    );
    println!("\nConclusion: the curves coincide (differences are f32 reduction-order noise) — Tesseract does not affect accuracy, as in the paper.");
}
