//! Validates and exercises the arrangement auto-tuner (`tesseract-plan`).
//!
//! Three modes (default: all three, in order):
//!
//! - `table1` — hands the planner 64 GPUs and the Table 1 workload
//!   (batch 16, hidden 3072, heads 64) with the paper's own scheme menu
//!   (Megatron + Tesseract, no hybrids) and **asserts** it re-derives the
//!   measured Table 1 winner, `tesseract[4,4,4]`, with no hand-picked grid
//!   input.
//! - `table2` — same validation at the Table 2 weak-scaling endpoint: the
//!   64-GPU `[4,4,4]` row's workload (batch 768, hidden 4096, heads 64);
//!   the planner must again select `tesseract[4,4,4]` over `[8,8,1]` and
//!   `megatron[64]`.
//! - `sweep` — a scale the paper never measured: 128 GPUs (only one
//!   feasible `d ≤ q` Tesseract grid, `[8,8,2]`), batch 256, hidden 4096,
//!   heads 128, with the **full** menu including 5-axis hybrids and 4
//!   microbatches — the mode where signature dedup and analytic pruning
//!   earn their keep.
//!
//! The ranked tables print to stdout and the JSON report (validated with
//! the in-tree parser before it is written) goes to `--out`
//! (default `BENCH_plan.json`).
//!
//! Run: `cargo run --release -p tesseract-bench --bin plan_sweep -- \
//!           [--mode table1|table2|sweep|all] [--out BENCH_plan.json]`

use tesseract_bench::timing::paper_config;
use tesseract_plan::{plan, CandidateMenu, EntryStatus, Plan, PlanRequest};

struct Mode {
    name: &'static str,
    /// Label the planner must select, if this mode validates a paper table.
    expected_winner: Option<&'static str>,
    request: PlanRequest,
}

fn modes(which: &str) -> Vec<Mode> {
    let mut out = Vec::new();
    if which == "all" || which == "table1" {
        let mut req = PlanRequest::new(64, paper_config(16, 3072, 64));
        req.menu = CandidateMenu::paper_schemes();
        out.push(Mode { name: "table1", expected_winner: Some("tesseract[4,4,4]"), request: req });
    }
    if which == "all" || which == "table2" {
        let mut req = PlanRequest::new(64, paper_config(768, 4096, 64));
        req.menu = CandidateMenu::paper_schemes();
        out.push(Mode { name: "table2", expected_winner: Some("tesseract[4,4,4]"), request: req });
    }
    if which == "all" || which == "sweep" {
        let req = PlanRequest::new(128, paper_config(256, 4096, 128));
        out.push(Mode { name: "sweep", expected_winner: None, request: req });
    }
    assert!(!out.is_empty(), "unknown --mode {which:?} (known: table1 table2 sweep all)");
    out
}

/// JSON object for one planned mode.
fn mode_json(mode: &Mode, p: &Plan) -> String {
    let winner = p.winner().expect("every mode has at least one feasible candidate");
    let mut j = String::from("    {\n");
    j.push_str(&format!("      \"mode\": \"{}\",\n", mode.name));
    j.push_str(&format!("      \"gpus\": {},\n", p.gpus));
    j.push_str(&format!(
        "      \"workload\": {{ \"batch\": {}, \"seq\": {}, \"hidden\": {}, \"heads\": {}, \"layers\": {} }},\n",
        p.cfg.batch, p.cfg.seq, p.cfg.hidden, p.cfg.heads, p.cfg.layers
    ));
    j.push_str(&format!("      \"winner\": \"{}\",\n", winner.label));
    match mode.expected_winner {
        Some(expected) => {
            j.push_str(&format!("      \"expected_winner\": \"{expected}\",\n"));
            j.push_str(&format!("      \"matches_expected\": {},\n", winner.label == expected));
        }
        None => {
            j.push_str("      \"expected_winner\": null,\n");
            j.push_str("      \"matches_expected\": null,\n");
        }
    }
    j.push_str("      \"candidates\": [\n");
    let mut first = true;
    for e in &p.entries {
        if !first {
            j.push_str(",\n");
        }
        first = false;
        j.push_str("        { ");
        j.push_str(&format!("\"arrangement\": \"{}\", ", e.label));
        j.push_str(&format!("\"signature\": \"{}\", ", e.signature));
        j.push_str(&format!(
            "\"analytic_s\": {{ \"compute\": {:.9}, \"comm\": {:.9}, \"total\": {:.9} }}, ",
            e.analytic.compute_s,
            e.analytic.comm_s,
            e.analytic.total_s()
        ));
        match (&e.status, &e.dryrun) {
            (EntryStatus::Ranked(r), Some(d)) => {
                j.push_str(&format!("\"rank\": {r}, "));
                j.push_str(&format!(
                    "\"dryrun\": {{ \"makespan_s\": {:.9}, \"forward_s\": {:.9}, \
\"backward_s\": {:.9}, \"peak_bytes\": {}, \"hidden_wait_frac\": {:.6}, \
\"throughput_seq_s\": {:.4} }}",
                    d.makespan_s,
                    d.forward_s,
                    d.backward_s,
                    d.peak_bytes,
                    d.hidden_wait_frac,
                    p.cfg.batch as f64 / d.makespan_s
                ));
            }
            (EntryStatus::PrunedByAnalytic, _) => {
                j.push_str("\"rank\": null, \"dryrun\": null, \"pruned\": true");
            }
            (EntryStatus::Duplicate { of }, _) => {
                j.push_str(&format!(
                    "\"rank\": null, \"dryrun\": null, \"duplicate_of\": \"{of}\""
                ));
            }
            _ => unreachable!("ranked entries always carry a dry-run"),
        }
        j.push_str(" }");
    }
    j.push_str("\n      ],\n");
    j.push_str("      \"infeasible\": [\n");
    let mut first = true;
    for (label, err) in &p.infeasible {
        if !first {
            j.push_str(",\n");
        }
        first = false;
        j.push_str(&format!("        {{ \"arrangement\": \"{label}\", \"reason\": \"{err}\" }}"));
    }
    j.push_str("\n      ],\n");
    j.push_str(&format!(
        "      \"search\": {{ \"feasible\": {}, \"infeasible\": {}, \"analytic_memo_hits\": {}, \
\"pruned_dryruns\": {}, \"duplicates_collapsed\": {} }}\n",
        p.entries.len(),
        p.infeasible.len(),
        p.analytic_memo_hits,
        p.pruned_dryruns,
        p.entries.iter().filter(|e| matches!(e.status, EntryStatus::Duplicate { .. })).count()
    ));
    j.push_str("    }");
    j
}

fn main() {
    let mut which = String::from("all");
    let mut out_path = String::from("BENCH_plan.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value")).clone();
        match arg.as_str() {
            "--mode" => which = value("--mode"),
            "--out" => out_path = value("--out"),
            other => panic!("unknown argument {other:?} (known: --mode --out)"),
        }
    }

    let mut sections = Vec::new();
    for mode in modes(&which) {
        println!("== mode {} ==", mode.name);
        let p = plan(&mode.request);
        print!("{}", p.describe());
        let winner = p.winner().expect("every mode has at least one feasible candidate");
        if let Some(expected) = mode.expected_winner {
            assert_eq!(
                winner.label, expected,
                "planner must re-derive the measured {} winner with no hand-picked grid",
                mode.name
            );
            println!("  OK: planner selected {expected} (the measured winner)\n");
        } else {
            println!("  selected: {} (scale the paper never measured)\n", winner.label);
        }
        sections.push(mode_json(&mode, &p));
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"plan_sweep\",\n");
    json.push_str(
        "  \"units\": { \"time\": \"simulated seconds (max over ranks)\", \
\"throughput\": \"sequences per simulated second\" },\n",
    );
    json.push_str("  \"modes\": [\n");
    json.push_str(&sections.join(",\n"));
    json.push_str("\n  ]\n}\n");

    // The report must round-trip through the in-tree parser before it is
    // published — a malformed escape or bare NaN fails here, not in CI.
    tesseract_tensor::trace::json::parse(&json)
        .unwrap_or_else(|e| panic!("emitted JSON failed to parse: {e}"));
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
