//! Ablation **A1 — the depth parameter** (§3.1/§4 conclusion: "with the
//! same total amount of processors, greater depths could further increase
//! the efficiency of Tesseract").
//!
//! Sweeps d at fixed p = 64 and decomposes the simulated step time into
//! compute vs communication, both with the real NVLink/IB topology and
//! with free communication (isolating the pure-compute effect of depth).
//!
//! Run: `cargo run --release -p tesseract-bench --bin ablation_depth`

use tesseract_comm::{CostParams, RunConfig, Topology};
use tesseract_core::{GridShape, Module, TesseractGrid, TesseractTransformer, TransformerConfig};
use tesseract_tensor::ShadowTensor;

fn run(shape: GridShape, cfg: TransformerConfig, params: CostParams) -> (f64, f64, f64) {
    let cluster = RunConfig::from_env(shape.size())
        .with_topology(Topology::meluxina())
        .with_params(params)
        .cluster();
    let out = cluster.run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let mut model = TesseractTransformer::<ShadowTensor>::new(ctx, &grid, cfg, true, 0, 0);
        let x = std::sync::Arc::new(ShadowTensor::new(
            cfg.rows() / (shape.q * shape.d),
            cfg.hidden / shape.q,
        ));
        let y = model.forward(&grid, ctx, &x);
        let _ = model.backward(&grid, ctx, &y);
        ctx.flush_compute();
    });
    (out.makespan(), out.max_compute_time(), out.max_comm_time())
}

fn main() {
    println!("## A1 — depth ablation at p = 64, fixed global problem (fwd+bwd step)\n");
    let cfg = TransformerConfig {
        batch: 32,
        seq: 512,
        hidden: 4096,
        heads: 64,
        mlp_ratio: 4,
        layers: 4,
        eps: 1e-5,
    };
    println!(
        "batch {} seq {} hidden {} heads {} layers {}\n",
        cfg.batch, cfg.seq, cfg.hidden, cfg.heads, cfg.layers
    );
    println!("| arrangement | d | total (s) | compute (s) | comm (s) | comm share |");
    println!("|---|---|---|---|---|---|");
    let mut totals = Vec::new();
    for (q, d) in [(8usize, 1usize), (4, 4)] {
        let shape = GridShape::new(q, d);
        let (total, compute, comm) = run(shape, cfg, CostParams::a100_cluster());
        println!(
            "| [{q},{q},{d}] | {d} | {total:.4} | {compute:.4} | {comm:.4} | {:.1}% |",
            100.0 * comm / total
        );
        totals.push((format!("[{q},{q},{d}]"), total));
    }

    // A smaller p where all of [q,q,d] in {4,2} arrangements exist.
    println!("\n### p = 16\n");
    println!("| arrangement | d | total (s) | compute (s) | comm (s) | comm share |");
    println!("|---|---|---|---|---|---|");
    for (q, d) in [(4usize, 1usize), (2, 4)] {
        let shape = GridShape::new(q, d);
        let (total, compute, comm) = run(shape, cfg, CostParams::a100_cluster());
        println!(
            "| [{q},{q},{d}] | {d} | {total:.4} | {compute:.4} | {comm:.4} | {:.1}% |",
            100.0 * comm / total
        );
    }

    // Free-communication control: depth changes compute balance only
    // marginally; the win comes from communication.
    println!("\n### control: free communication (infinite bandwidth, zero latency)\n");
    println!("| arrangement | total (s) |");
    println!("|---|---|");
    for (q, d) in [(8usize, 1usize), (4, 4)] {
        let shape = GridShape::new(q, d);
        let (total, _, _) = run(shape, cfg, CostParams::a100_cluster().free_comm());
        println!("| [{q},{q},{d}] | {total:.4} |");
    }

    println!("\nConclusion: at equal p the deeper arrangement wins, and the win");
    println!("disappears when communication is free — depth buys communication");
    println!("reduction, exactly the paper's §3.1 argument (W = Ω(n²/√(dp))).");
}
