//! Experiment **A2 — isoefficiency** (§3.1, Eq. 11/12): how parallel
//! efficiency `E = 1 / (1 + T_comm·p / W)` behaves as processors are added,
//! per scheme, using *measured* simulated communication times, and how much
//! work each scheme needs to hold efficiency — the empirical counterpart of
//! the paper's isoefficiency functions (`W ~ p³` for Megatron-LM,
//! `W ~ (√p·log p)³` for Optimus/Tesseract-style broadcast schemes).
//!
//! Run: `cargo run --release -p tesseract-bench --bin isoefficiency`

use tesseract_bench::timing::{paper_config, time_megatron, time_tesseract};
use tesseract_core::analysis::{efficiency, isoefficiency_megatron, isoefficiency_optimus};
use tesseract_core::GridShape;

fn main() {
    println!("## A2 — measured parallel efficiency (Eq. 12) on the strong-scaling problem\n");
    let cfg = paper_config(16, 3072, 64);

    // Serial work proxy: compute-seconds of the p = 1 run.
    let serial = time_tesseract(GridShape::new(1, 1), cfg);
    let w = serial.forward + serial.backward;
    println!("serial step time W = {:.4} simulated s\n", w);

    println!("| scheme | p | step (s) | speedup | efficiency |");
    println!("|---|---|---|---|---|");
    for (label, p, t) in [
        ("Tesseract [2,2,1]", 4, time_tesseract(GridShape::new(2, 1), cfg)),
        ("Tesseract [2,2,2]", 8, time_tesseract(GridShape::new(2, 2), cfg)),
        ("Tesseract [4,4,1]", 16, time_tesseract(GridShape::new(4, 1), cfg)),
        ("Tesseract [4,4,2]", 32, time_tesseract(GridShape::new(4, 2), cfg)),
        ("Tesseract [4,4,4]", 64, time_tesseract(GridShape::new(4, 4), cfg)),
        ("Tesseract [8,8,1]", 64, time_tesseract(GridShape::new(8, 1), cfg)),
        ("Megatron [4]", 4, time_megatron(4, cfg)),
        ("Megatron [16]", 16, time_megatron(16, cfg)),
        ("Megatron [64]", 64, time_megatron(64, cfg)),
    ] {
        let step = t.forward + t.backward;
        let speedup = w / step;
        println!(
            "| {label} | {p} | {step:.4} | {speedup:.2}x | {:.1}% |",
            100.0 * speedup / p as f64
        );
    }

    println!("\n## closed-form isoefficiency growth (work needed to hold efficiency)\n");
    println!("| p | Megatron W ~ p^3 | Optimus/Tesseract W ~ (sqrt(p) log p)^3 | ratio |");
    println!("|---|---|---|---|");
    for p in [16usize, 64, 256, 1024, 4096] {
        let m = isoefficiency_megatron(p);
        let o = isoefficiency_optimus(p);
        println!("| {p} | {m:.3e} | {o:.3e} | {:.1} |", m / o);
    }

    println!("\n## Eq. 12 sensitivity: efficiency vs communication time (p = 64)\n");
    println!("| T_comm / (W/p) | efficiency |");
    println!("|---|---|");
    let w_abs = 1.0;
    for frac in [0.0f64, 0.25, 1.0, 4.0, 16.0] {
        let t_comm = frac * w_abs / 64.0;
        println!("| {frac} | {:.3} |", efficiency(w_abs, 64, t_comm));
    }

    println!("\nMegatron's required work grows like p³ while the broadcast-based 2-D/2.5-D");
    println!("schemes need only (√p·log p)³ — the asymptotic reason Tesseract scales to");
    println!("larger clusters (§3.1).");
}
