//! Reproduces **Figure 6** (hybrid parallelism structure): dp = 2 × pp = 2
//! × Tesseract `[2,2,2]` = 32 GPUs. Prints the rank→(replica, stage, grid
//! position) map the figure illustrates, then runs one real GPipe training
//! step through the arrangement on the simulated cluster and reports the
//! timing decomposition.
//!
//! Run: `cargo run --release -p tesseract-bench --bin fig6_hybrid`

use tesseract_comm::Cluster;
use tesseract_core::TransformerConfig;
use tesseract_hybrid::{HybridShape, HybridTransformer};
use tesseract_tensor::ShadowTensor;

fn main() {
    let shape = HybridShape::figure6();
    println!("Figure 6 — GPU structure for Tesseract + pipeline + data parallelism\n");
    println!("{}", shape.describe());
    println!("rank → (replica, stage, i, j, k):");
    for rank in 0..shape.total() {
        let c = shape.coords_of(rank);
        let (i, j, k) = shape.grid.coords_of(c.tess_offset);
        print!("  {rank:>2} → (dp{}, pp{}, {i},{j},{k})", c.dp_idx, c.pp_idx);
        if (rank + 1) % 4 == 0 {
            println!();
        }
    }

    // One paper-scale GPipe step (shadow backend): 4 microbatches.
    let cfg = TransformerConfig {
        batch: 8, // per microbatch; q·d = 4 divides it
        seq: 512,
        hidden: 3072,
        heads: 64,
        mlp_ratio: 4,
        layers: 8, // 4 per stage
        eps: 1e-5,
    };
    let microbatches = 4;
    let out = Cluster::a100(shape.total()).run(|ctx| {
        let mut engine = HybridTransformer::<ShadowTensor>::new(ctx, shape, cfg, true, 0);
        // A-type partitioning splits rows into q·d bands (Figure 4a).
        let rows_local = engine.cfg.rows() / (shape.grid.q * shape.grid.d);
        let cols_local = cfg.hidden / shape.grid.q;
        let _ = engine.train_step(
            ctx,
            microbatches,
            |_m| ShadowTensor::new(rows_local, cols_local),
            |_ctx, y, _m| *y,
        );
        ctx.flush_compute();
        (ctx.rank, ctx.clock())
    });

    println!(
        "\none GPipe step: {} microbatches x batch {} (global batch {})",
        microbatches,
        cfg.batch,
        microbatches * cfg.batch * shape.dp
    );
    println!("simulated makespan: {:.4} s", out.makespan());
    println!("max compute time:   {:.4} s", out.max_compute_time());
    println!("max comm+wait time: {:.4} s (includes the pipeline bubble)", out.max_comm_time());
    println!("\ncollective traffic:\n{}", out.comm.render_table());
}
