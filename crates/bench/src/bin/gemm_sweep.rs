//! GEMM kernel sweep: seed-reference vs serial vs blocked micro-kernels,
//! plus a multi-core scaling curve.
//!
//! Times the `n×n×n` product for each requested size on five kernels:
//!
//! * `seed` — a verbatim copy of the pre-blocking kernel this repo shipped
//!   with (ikj loop with the zero-skip branch), kept here as the fixed
//!   baseline the speedup columns are measured against;
//! * `serial` — the current serial kernel (zero-skip removed, vectorizable);
//! * `scalar1` — the cache-blocked/packed kernel forced onto the scalar
//!   4×8 micro-kernel, 1-thread pool (the PR-5 state of the art, kept as
//!   the SIMD baseline);
//! * `blocked1` — the blocked kernel on the auto-detected micro-kernel
//!   backend ([`tesseract_tensor::matmul::active_kernel`]: AVX2+FMA 6×16
//!   where the host supports it), 1-thread pool — isolating the SIMD win;
//! * `blocked` — the same kernel on the process-wide pool (the
//!   `TESSERACT_THREADS`-configured size, recorded in the JSON).
//!
//! Then, per size, the active backend is swept over `--threads` (default
//! `1,2,4,8`) on explicit pools, publishing GFLOP/s and parallel efficiency
//! per thread count. Every swept thread count is checked **bitwise**
//! against the 1-thread result of the same backend before its timing is
//! accepted (the per-path parity contract); scalar-vs-SIMD agreement is
//! checked within floating-point tolerance.
//!
//! Reports median wall time over `--reps` runs as a table on stdout and as
//! JSON (`--out`, default `BENCH_kernels.json`). The JSON records which
//! micro-kernel actually ran (`"kernel"`), whether it was forced via
//! `TESSERACT_KERNEL` (`"kernel_forced"`), the configured pool size
//! (`"pool_threads"`), and the host's hardware parallelism (`"host_cpus"`)
//! so a curve measured on a core-limited container is interpretable.
//!
//! Run: `cargo run --release -p tesseract-bench --bin gemm_sweep -- \
//!           [--sizes 256,512,1024] [--reps 5] [--threads 1,2,4,8] \
//!           [--out BENCH_kernels.json]`

use std::time::Instant;

use tesseract_comm::RunConfig;
use tesseract_tensor::matmul::{active_kernel, matmul_blocked_with, matmul_serial, MicroKernel};
use tesseract_tensor::{max_rel_diff, pool, Matrix, ThreadPool, Xoshiro256StarStar};

/// The seed repo's `matmul`, copied verbatim (modulo `Matrix` accessors):
/// ikj order with a zero-skip branch on `a_ik`. The branch defeats
/// vectorization of the inner loop and mis-handles `0 × NaN`; it is the
/// baseline every speedup in BENCH_kernels.json is relative to.
fn matmul_seed(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dims {} vs {}", a.cols(), b.rows());
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for (kk, &a_ik) in a_row.iter().enumerate().take(k) {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = b.row(kk);
            for (c_ij, &b_kj) in c_row.iter_mut().zip(b_row.iter()) {
                *c_ij += a_ik * b_kj;
            }
        }
    }
    c
}

/// Median wall time in nanoseconds over `reps` runs of `f`.
fn median_ns(reps: usize, mut f: impl FnMut() -> Matrix) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            let out = f();
            let elapsed = start.elapsed().as_nanos() as f64;
            std::hint::black_box(out);
            elapsed
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// One thread count of the scaling sweep.
struct ScalePoint {
    threads: usize,
    ns: f64,
}

struct Row {
    n: usize,
    seed_ns: f64,
    serial_ns: f64,
    scalar1_ns: f64,
    blocked1_ns: f64,
    blocked_ns: f64,
    scaling: Vec<ScalePoint>,
}

fn gflops(n: usize, ns: f64) -> f64 {
    (2.0 * (n as f64).powi(3)) / ns
}

fn assert_bitwise(label: &str, reference: &Matrix, candidate: &Matrix) {
    for (i, (r, c)) in reference.data().iter().zip(candidate.data()).enumerate() {
        assert_eq!(
            r.to_bits(),
            c.to_bits(),
            "{label}: per-path parity violated at flat index {i}: {r} vs {c}"
        );
    }
}

fn main() {
    let mut sizes: Vec<usize> = vec![256, 512, 1024];
    let mut reps = 5usize;
    let mut threads: Vec<usize> = vec![1, 2, 4, 8];
    let mut out_path = String::from("BENCH_kernels.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value")).clone();
        match arg.as_str() {
            "--sizes" => {
                sizes = value("--sizes")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes wants comma-separated integers"))
                    .collect();
            }
            "--reps" => reps = value("--reps").parse().expect("--reps wants an integer"),
            "--threads" => {
                threads = value("--threads")
                    .split(',')
                    .map(|s| {
                        let t: usize =
                            s.trim().parse().expect("--threads wants comma-separated integers");
                        assert!(t >= 1, "--threads wants positive thread counts");
                        t
                    })
                    .collect();
            }
            "--out" => out_path = value("--out"),
            other => panic!("unknown argument {other:?} (known: --sizes --reps --threads --out)"),
        }
    }

    // All TESSERACT_* knobs are parsed and installed by the run
    // configuration (the single env-read site of the workspace); this bench
    // runs no cluster, so it installs explicitly before touching the pool.
    let run_cfg = RunConfig::from_env(1);
    run_cfg.install();
    let kernel = active_kernel();
    let kernel_forced = run_cfg.kernel.is_some();
    let single = ThreadPool::new(1);
    let global = pool::global();
    let host_cpus = pool::host_threads();
    println!(
        "gemm_sweep: sizes {sizes:?}, {reps} reps, micro-kernel {}{}, pool of {} thread(s) \
         (host has {host_cpus}), scaling over {threads:?}\n",
        kernel.name(),
        if kernel_forced { " (forced via TESSERACT_KERNEL)" } else { "" },
        global.threads(),
    );
    println!(
        "| n    | seed ns      | serial ns    | scalar1 ns   | blocked1 ns  | blocked ns   | serial GF/s | blk1 GF/s | blk GF/s | simd x | blk1 x | blk x |"
    );
    println!(
        "|------|--------------|--------------|--------------|--------------|--------------|-------------|-----------|----------|--------|--------|-------|"
    );

    let mut rows = Vec::new();
    for &n in &sizes {
        let mut rng = Xoshiro256StarStar::seed_from_u64(n as u64);
        let a = Matrix::random_uniform(n, n, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(n, n, -1.0, 1.0, &mut rng);

        // Correctness gates before any timing: per-path bitwise parity at
        // every swept thread count, and cross-path tolerance.
        let reference = matmul_blocked_with(&a, &b, &single, kernel);
        let scalar_ref = matmul_blocked_with(&a, &b, &single, MicroKernel::Scalar);
        let cross = max_rel_diff(reference.data(), scalar_ref.data());
        assert!(
            cross < 1e-4,
            "n={n}: {} vs scalar diverged beyond FMA tolerance ({cross:e})",
            kernel.name()
        );
        let pools: Vec<ThreadPool> = threads.iter().map(|&t| ThreadPool::new(t)).collect();
        for (t, p) in threads.iter().zip(&pools) {
            let out = matmul_blocked_with(&a, &b, p, kernel);
            assert_bitwise(&format!("n={n} {} threads={t}", kernel.name()), &reference, &out);
        }

        let scaling: Vec<ScalePoint> = threads
            .iter()
            .zip(&pools)
            .map(|(&t, p)| ScalePoint {
                threads: t,
                ns: median_ns(reps, || matmul_blocked_with(&a, &b, p, kernel)),
            })
            .collect();
        let row = Row {
            n,
            seed_ns: median_ns(reps, || matmul_seed(&a, &b)),
            serial_ns: median_ns(reps, || matmul_serial(&a, &b)),
            scalar1_ns: median_ns(reps, || {
                matmul_blocked_with(&a, &b, &single, MicroKernel::Scalar)
            }),
            blocked1_ns: median_ns(reps, || matmul_blocked_with(&a, &b, &single, kernel)),
            blocked_ns: median_ns(reps, || matmul_blocked_with(&a, &b, global, kernel)),
            scaling,
        };
        println!(
            "| {:<4} | {:>12.0} | {:>12.0} | {:>12.0} | {:>12.0} | {:>12.0} | {:>11.3} | {:>9.3} | {:>8.3} | {:>6.2} | {:>6.2} | {:>5.2} |",
            row.n,
            row.seed_ns,
            row.serial_ns,
            row.scalar1_ns,
            row.blocked1_ns,
            row.blocked_ns,
            gflops(n, row.serial_ns),
            gflops(n, row.blocked1_ns),
            gflops(n, row.blocked_ns),
            row.scalar1_ns / row.blocked1_ns,
            row.seed_ns / row.blocked1_ns,
            row.seed_ns / row.blocked_ns,
        );
        for p in &row.scaling {
            let speedup = row.scaling[0].ns / p.ns;
            println!(
                "|      scaling: {:>2} thread(s) {:>12.0} ns  {:>8.3} GF/s  speedup {:>5.2}  efficiency {:>4.2} |",
                p.threads,
                p.ns,
                gflops(n, p.ns),
                speedup,
                speedup / p.threads as f64,
            );
        }
        rows.push(row);
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"gemm_sweep\",\n");
    json.push_str("  \"units\": { \"time\": \"ns (median)\", \"rate\": \"GFLOP/s\" },\n");
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"kernel\": \"{}\",\n", kernel.name()));
    json.push_str(&format!("  \"kernel_forced\": {kernel_forced},\n"));
    json.push_str(&format!("  \"pool_threads\": {},\n", global.threads()));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!(
        "  \"threads_swept\": [{}],\n",
        threads.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ")
    ));
    json.push_str("  \"parity\": \"bitwise per kernel path at every swept thread count\",\n");
    json.push_str(
        "  \"kernels\": [\"seed\", \"serial\", \"scalar1\", \"blocked1\", \"blocked\"],\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"n\": {}, \"seed_ns\": {:.0}, \"serial_ns\": {:.0}, \"scalar1_ns\": {:.0}, \"blocked1_ns\": {:.0}, \"blocked_ns\": {:.0}, \
\"serial_gflops\": {:.3}, \"scalar1_gflops\": {:.3}, \"blocked1_gflops\": {:.3}, \"blocked_gflops\": {:.3}, \
\"speedup_serial\": {:.3}, \"speedup_blocked1\": {:.3}, \"speedup_blocked\": {:.3}, \"simd_speedup\": {:.3},\n",
            r.n,
            r.seed_ns,
            r.serial_ns,
            r.scalar1_ns,
            r.blocked1_ns,
            r.blocked_ns,
            gflops(r.n, r.serial_ns),
            gflops(r.n, r.scalar1_ns),
            gflops(r.n, r.blocked1_ns),
            gflops(r.n, r.blocked_ns),
            r.seed_ns / r.serial_ns,
            r.seed_ns / r.blocked1_ns,
            r.seed_ns / r.blocked_ns,
            r.scalar1_ns / r.blocked1_ns,
        ));
        json.push_str("      \"scaling\": [\n");
        for (j, p) in r.scaling.iter().enumerate() {
            let speedup = r.scaling[0].ns / p.ns;
            json.push_str(&format!(
                "        {{ \"threads\": {}, \"ns\": {:.0}, \"gflops\": {:.3}, \"speedup\": {:.3}, \"efficiency\": {:.3} }}{}\n",
                p.threads,
                p.ns,
                gflops(r.n, p.ns),
                speedup,
                speedup / p.threads as f64,
                if j + 1 == r.scaling.len() { "" } else { "," }
            ));
        }
        json.push_str(&format!("      ] }}{}\n", if i + 1 == rows.len() { "" } else { "," }));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("\nwrote {out_path}");
}
