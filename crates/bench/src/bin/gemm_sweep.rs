//! GEMM kernel sweep: seed-reference vs serial vs blocked vs blocked-parallel.
//!
//! Times the `n×n×n` product for each requested size on four kernels:
//!
//! * `seed` — a verbatim copy of the pre-blocking kernel this repo shipped
//!   with (ikj loop with the zero-skip branch), kept here as the fixed
//!   baseline the speedup columns are measured against;
//! * `serial` — the current serial kernel (zero-skip removed, vectorizable);
//! * `blocked1` — the cache-blocked/packed kernel on a 1-thread pool,
//!   isolating the blocking + packing win from parallelism;
//! * `blocked` — the same kernel on the process-wide pool
//!   (`TESSERACT_THREADS` threads).
//!
//! Reports median wall time over `--reps` runs, GFLOP/s, and speedups over
//! the seed kernel, as a table on stdout and as JSON (`--out`, default
//! `BENCH_kernels.json`).
//!
//! Run: `cargo run --release -p tesseract-bench --bin gemm_sweep -- \
//!           [--sizes 256,512,1024] [--reps 5] [--out BENCH_kernels.json]`

use std::time::Instant;

use tesseract_tensor::matmul::{matmul_blocked, matmul_serial};
use tesseract_tensor::{pool, Matrix, ThreadPool, Xoshiro256StarStar};

/// The seed repo's `matmul`, copied verbatim (modulo `Matrix` accessors):
/// ikj order with a zero-skip branch on `a_ik`. The branch defeats
/// vectorization of the inner loop and mis-handles `0 × NaN`; it is the
/// baseline every speedup in BENCH_kernels.json is relative to.
fn matmul_seed(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dims {} vs {}", a.cols(), b.rows());
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for (kk, &a_ik) in a_row.iter().enumerate().take(k) {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = b.row(kk);
            for (c_ij, &b_kj) in c_row.iter_mut().zip(b_row.iter()) {
                *c_ij += a_ik * b_kj;
            }
        }
    }
    c
}

/// Median wall time in nanoseconds over `reps` runs of `f`.
fn median_ns(reps: usize, mut f: impl FnMut() -> Matrix) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            let out = f();
            let elapsed = start.elapsed().as_nanos() as f64;
            std::hint::black_box(out);
            elapsed
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

struct Row {
    n: usize,
    seed_ns: f64,
    serial_ns: f64,
    blocked1_ns: f64,
    blocked_ns: f64,
}

fn gflops(n: usize, ns: f64) -> f64 {
    (2.0 * (n as f64).powi(3)) / ns
}

fn main() {
    let mut sizes: Vec<usize> = vec![256, 512, 1024];
    let mut reps = 5usize;
    let mut out_path = String::from("BENCH_kernels.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value")).clone();
        match arg.as_str() {
            "--sizes" => {
                sizes = value("--sizes")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes wants comma-separated integers"))
                    .collect();
            }
            "--reps" => reps = value("--reps").parse().expect("--reps wants an integer"),
            "--out" => out_path = value("--out"),
            other => panic!("unknown argument {other:?} (known: --sizes --reps --out)"),
        }
    }

    let single = ThreadPool::new(1);
    let global = pool::global();
    println!("gemm_sweep: sizes {sizes:?}, {reps} reps, pool of {} thread(s)\n", global.threads());
    println!(
        "| n    | seed ns      | serial ns    | blocked1 ns  | blocked ns   | serial GF/s | blocked GF/s | serial x | blk1 x | blk x |"
    );
    println!(
        "|------|--------------|--------------|--------------|--------------|-------------|--------------|----------|--------|-------|"
    );

    let mut rows = Vec::new();
    for &n in &sizes {
        let mut rng = Xoshiro256StarStar::seed_from_u64(n as u64);
        let a = Matrix::random_uniform(n, n, -1.0, 1.0, &mut rng);
        let b = Matrix::random_uniform(n, n, -1.0, 1.0, &mut rng);

        let row = Row {
            n,
            seed_ns: median_ns(reps, || matmul_seed(&a, &b)),
            serial_ns: median_ns(reps, || matmul_serial(&a, &b)),
            blocked1_ns: median_ns(reps, || matmul_blocked(&a, &b, &single)),
            blocked_ns: median_ns(reps, || matmul_blocked(&a, &b, global)),
        };
        println!(
            "| {:<4} | {:>12.0} | {:>12.0} | {:>12.0} | {:>12.0} | {:>11.3} | {:>12.3} | {:>8.2} | {:>6.2} | {:>5.2} |",
            row.n,
            row.seed_ns,
            row.serial_ns,
            row.blocked1_ns,
            row.blocked_ns,
            gflops(n, row.serial_ns),
            gflops(n, row.blocked_ns),
            row.seed_ns / row.serial_ns,
            row.seed_ns / row.blocked1_ns,
            row.seed_ns / row.blocked_ns,
        );
        rows.push(row);
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"gemm_sweep\",\n");
    json.push_str("  \"units\": { \"time\": \"ns (median)\", \"rate\": \"GFLOP/s\" },\n");
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"pool_threads\": {},\n", global.threads()));
    json.push_str("  \"kernels\": [\"seed\", \"serial\", \"blocked1\", \"blocked\"],\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"n\": {}, \"seed_ns\": {:.0}, \"serial_ns\": {:.0}, \"blocked1_ns\": {:.0}, \"blocked_ns\": {:.0}, \
\"serial_gflops\": {:.3}, \"blocked1_gflops\": {:.3}, \"blocked_gflops\": {:.3}, \
\"speedup_serial\": {:.3}, \"speedup_blocked1\": {:.3}, \"speedup_blocked\": {:.3} }}{}\n",
            r.n,
            r.seed_ns,
            r.serial_ns,
            r.blocked1_ns,
            r.blocked_ns,
            gflops(r.n, r.serial_ns),
            gflops(r.n, r.blocked1_ns),
            gflops(r.n, r.blocked_ns),
            r.seed_ns / r.serial_ns,
            r.seed_ns / r.blocked1_ns,
            r.seed_ns / r.blocked_ns,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("\nwrote {out_path}");
}
