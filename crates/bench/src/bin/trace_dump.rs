//! Per-rank event-trace dump: runs one fwd+bwd training matmul step on a
//! configurable Tesseract grid with tracing enabled, writes the per-rank
//! timelines as Chrome-trace / Perfetto JSON (load the file at
//! `ui.perfetto.dev` or `chrome://tracing`), and prints the critical-path
//! report naming the ops that bound the simulated makespan.
//!
//! Both the shipped double-buffered pipeline and the serial blocking
//! reference are traced, so the two timelines can be diffed side by side
//! (the pipelined one shows the hidden-wait flow arrows).
//!
//! Before writing anything the dump *reconciles* the trace against the
//! run's own accounting and panics on any mismatch:
//!
//! * per rank, the summed compute-event flops / kernels / allocated bytes
//!   and the summed comm-event blocked/hidden nanoseconds must equal the
//!   [`RankReport`] counters **exactly** (same values, same fold order);
//! * per collective op, the recorded event count, wire bytes and copy
//!   counts must equal the global [`CommStats`] exactly, and the f64
//!   time/hidden totals must agree to float-sum tolerance.
//!
//! Run: `cargo run --release -p tesseract-bench --bin trace_dump -- \
//!           [--grid 2,2] [--n 256] [--out TRACE.json] [--top 5]`

use std::sync::Arc;

use tesseract_comm::{RunConfig, RunOutput};
use tesseract_core::partition::{a_block, b_block};
use tesseract_core::{
    tesseract_matmul, tesseract_matmul_nt, tesseract_matmul_nt_serial, tesseract_matmul_serial,
    tesseract_matmul_tn, tesseract_matmul_tn_serial, GridShape, TesseractGrid,
};
use tesseract_tensor::trace::{chrome, critical, json};
use tesseract_tensor::{DenseTensor, Matrix, TraceKind, Xoshiro256StarStar};

fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
}

/// One fwd+bwd matmul step on the `[q, q, d]` grid with tracing on;
/// returns each rank's gradient blocks for the bitwise parity check.
fn step_round(pipelined: bool, shape: GridShape, n: usize) -> RunOutput<(Matrix, Matrix)> {
    let rows = 8 * shape.q * shape.d;
    let a = random(rows, n, 71);
    let b = random(n, n, 72);
    RunConfig::from_env(shape.size()).with_trace(true).cluster().run(move |ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let a_loc = Arc::new(DenseTensor::from_matrix(a_block(&a, shape, i, j, k)));
        let b_loc = Arc::new(DenseTensor::from_matrix(b_block(&b, shape, i, j)));
        let (dx, dw) = if pipelined {
            let dy = tesseract_matmul(&grid, ctx, &a_loc, &b_loc);
            let dx = tesseract_matmul_nt(&grid, ctx, &dy, &b_loc);
            let dw = tesseract_matmul_tn(&grid, ctx, &a_loc, &dy, true);
            (dx, dw)
        } else {
            let dy = tesseract_matmul_serial(&grid, ctx, &a_loc, &b_loc);
            let dx = tesseract_matmul_nt_serial(&grid, ctx, &dy, &b_loc);
            let dw = tesseract_matmul_tn_serial(&grid, ctx, &a_loc, &dy, true);
            (dx, dw)
        };
        ctx.flush_compute();
        (dx.matrix().clone(), dw.matrix().clone())
    })
}

/// Per-op aggregate rebuilt from trace events, mirroring `OpStats`.
#[derive(Default)]
struct OpAgg {
    calls: u64,
    wire_bytes: u64,
    time: f64,
    copies: u64,
    copy_bytes: u64,
    hidden_time: f64,
}

/// Panics unless the trace reconciles with the run's own accounting.
fn reconcile<R>(what: &str, run: &RunOutput<R>) {
    assert_eq!(run.traces.len(), run.reports.len(), "{what}: one trace per rank");
    // Per rank: integer counters and the rank-local f64 flop fold are
    // exact — compute events carry the very values the report folded, in
    // the same order.
    for (report, events) in run.reports.iter().zip(&run.traces) {
        assert!(!events.is_empty(), "{what}: rank {} traced no events", report.rank);
        let (mut flops, mut kernels, mut bytes) = (0.0f64, 0u64, 0u64);
        let (mut blocked, mut hidden) = (0u64, 0u64);
        for ev in events {
            match &ev.kind {
                TraceKind::Compute { flops: f, kernels: k, bytes_allocated: b } => {
                    flops += f;
                    kernels += k;
                    bytes += b;
                }
                TraceKind::Comm { blocked_nanos, hidden_nanos, .. } => {
                    blocked += blocked_nanos;
                    hidden += hidden_nanos;
                }
                _ => {}
            }
        }
        let r = report.rank;
        assert_eq!(flops, report.flops, "{what}: rank {r} trace flops != report");
        assert_eq!(kernels, report.kernels, "{what}: rank {r} trace kernels != report");
        assert_eq!(bytes, report.bytes_allocated, "{what}: rank {r} trace bytes != report");
        assert_eq!(blocked, report.comm_wait_nanos, "{what}: rank {r} blocked nanos != report");
        assert_eq!(hidden, report.overlap_hidden_nanos, "{what}: rank {r} hidden nanos != report");
    }
    // Per op across ranks: rebuild the stats table from the events.
    let mut agg: std::collections::HashMap<&'static str, OpAgg> = Default::default();
    for ev in run.traces.iter().flatten() {
        match &ev.kind {
            TraceKind::Comm { op, wire_bytes, stats_time, hidden_time, recorded, .. } => {
                let e = agg.entry(op).or_default();
                if *recorded {
                    e.calls += 1;
                }
                e.wire_bytes += wire_bytes;
                e.time += stats_time;
                e.hidden_time += hidden_time;
            }
            TraceKind::Copy { op, bytes } => {
                let e = agg.entry(op).or_default();
                e.copies += 1;
                e.copy_bytes += bytes;
            }
            _ => {}
        }
    }
    // The collector folds f64 time in cross-rank completion order, which
    // the trace cannot replay — integers must match exactly, floats to
    // accumulated-rounding tolerance.
    let tol = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1e-9);
    let mut checked = 0;
    for (op, stats) in &run.comm.per_op {
        let name = op.name();
        let got = agg.remove(name).unwrap_or_default();
        assert_eq!(got.calls, stats.calls, "{what}: {name} calls mismatch");
        assert_eq!(got.wire_bytes, stats.wire_bytes, "{what}: {name} wire bytes mismatch");
        assert_eq!(got.copies, stats.copies, "{what}: {name} copies mismatch");
        assert_eq!(got.copy_bytes, stats.copy_bytes, "{what}: {name} copy bytes mismatch");
        assert!(tol(got.time, stats.time), "{what}: {name} time {} != {}", got.time, stats.time);
        assert!(
            tol(got.hidden_time, stats.hidden_time),
            "{what}: {name} hidden {} != {}",
            got.hidden_time,
            stats.hidden_time
        );
        checked += 1;
    }
    assert!(agg.is_empty(), "{what}: trace has ops the stats never saw: {:?}", agg.keys());
    println!(
        "{what}: reconciled {} ranks and {checked} collective op(s) against the run accounting",
        run.reports.len()
    );
}

/// Writes the Chrome-trace JSON, re-parses it as a schema check, and
/// returns the number of `traceEvents` entries written.
fn write_chrome(path: &str, run: &RunOutput<(Matrix, Matrix)>) -> usize {
    let payload = chrome::chrome_trace_json(&run.traces);
    let doc = json::parse(&payload)
        .unwrap_or_else(|e| panic!("{path}: emitted chrome trace does not parse: {e}"));
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .unwrap_or_else(|| panic!("{path}: traceEvents array missing"));
    assert!(
        events.iter().any(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("X")
                && e.get("dur").and_then(|d| d.as_f64()).is_some()
        }),
        "{path}: no complete (ph: X) spans emitted"
    );
    std::fs::write(path, &payload).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    events.len()
}

fn main() {
    let mut grid = (2usize, 2usize);
    let mut n = 256usize;
    let mut out_path = String::from("TRACE.json");
    let mut top_k = 5usize;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value")).clone();
        match arg.as_str() {
            "--grid" => {
                let v = value("--grid");
                let mut parts = v
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().expect("--grid wants q,d (two integers)"));
                grid = (
                    parts.next().expect("--grid wants q,d"),
                    parts.next().expect("--grid wants q,d"),
                );
                assert!(parts.next().is_none(), "--grid wants exactly q,d");
            }
            "--n" => n = value("--n").parse().expect("--n wants an integer"),
            "--out" => out_path = value("--out"),
            "--top" => top_k = value("--top").parse().expect("--top wants an integer"),
            other => panic!("unknown argument {other:?} (known: --grid --n --out --top)"),
        }
    }
    let (q, d) = grid;
    let shape = GridShape::new(q, d);
    assert!(n % (q * q * d) == 0, "--n must be divisible by q*q*d = {}", q * q * d);
    let serial_path = match out_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.serial.json"),
        None => format!("{out_path}.serial"),
    };

    println!(
        "trace_dump: [{q},{q},{d}] grid ({} ranks), global A {} x {n}, B {n} x {n}\n",
        shape.size(),
        8 * q * d
    );

    let serial = step_round(false, shape, n);
    let pipelined = step_round(true, shape, n);
    assert_eq!(serial.results, pipelined.results, "pipelined step diverged from serial bitwise");
    reconcile("serial", &serial);
    reconcile("pipelined", &pipelined);

    let wrote = write_chrome(&out_path, &pipelined);
    let wrote_serial = write_chrome(&serial_path, &serial);
    println!("wrote {out_path} ({wrote} trace events, pipelined)");
    println!("wrote {serial_path} ({wrote_serial} trace events, serial)");
    println!("open either file at https://ui.perfetto.dev or chrome://tracing\n");

    for (what, run) in [("serial", &serial), ("pipelined", &pipelined)] {
        let cp = critical::critical_path(&run.traces);
        println!("[{what}] makespan {:.9} s", run.makespan());
        println!("{}", cp.render_top_k(top_k));
    }
}
