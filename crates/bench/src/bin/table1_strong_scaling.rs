//! Reproduces **Table 1** (strong scaling): fixed problem size
//! (hidden 3072, 64 attention heads, batch 12), schemes Megatron-LM
//! `[4]`/`[16]`/`[64]`, Optimus `[2,2]`/`[4,4]`/`[8,8]`, Tesseract `[2,2,1]` … `[8,8,1]`.
//!
//! Rows whose arrangement requires `q·d | batch` that 12 does not satisfy
//! (`[4,4,2]`, `[8,8,1]`, Optimus `[8,8]`) run with batch 16, as the paper itself
//! did for `[4,4,4]`; throughput/inference are per-sequence rates, so the
//! comparison is unaffected.
//!
//! Run: `cargo run --release -p tesseract-bench --bin table1_strong_scaling`

use tesseract_bench::tables::{render_rows, row, ResultRow};
use tesseract_bench::timing::{paper_config, time_megatron, time_tesseract};
use tesseract_core::GridShape;

fn main() {
    let hidden = 3072;
    let heads = 64;
    let mut rows = Vec::new();

    for p in [4usize, 16, 64] {
        let cfg = paper_config(12, hidden, heads);
        let t = time_megatron(p, cfg);
        rows.push(ResultRow {
            parallelization: "Megatron-LM".into(),
            gpus: p,
            shape: format!("[{p}]"),
            batch: 12,
            hidden,
            heads,
            forward: t.forward,
            backward: t.backward,
            throughput: t.throughput(12),
            inference: t.inference(12),
            overlap_hidden: t.overlap_hidden,
            note: "",
        });
    }

    // Optimus = Tesseract with d = 1 (validated bitwise against SUMMA).
    for (q, batch, note) in [(2usize, 12usize, ""), (4, 12, ""), (8, 16, "batch 16: q∤12")] {
        let cfg = paper_config(batch, hidden, heads);
        let t = time_tesseract(GridShape::new(q, 1), cfg);
        rows.push(ResultRow {
            parallelization: "Optimus".into(),
            gpus: q * q,
            shape: format!("[{q},{q}]"),
            batch,
            hidden,
            heads,
            forward: t.forward,
            backward: t.backward,
            throughput: t.throughput(batch),
            inference: t.inference(batch),
            overlap_hidden: t.overlap_hidden,
            note,
        });
    }

    for (q, d, batch, note) in [
        (2usize, 1usize, 12usize, ""),
        (2, 2, 12, ""),
        (4, 1, 12, ""),
        (4, 2, 16, "batch 16: q·d∤12"),
        (4, 4, 16, "paper also used 16"),
        (8, 1, 16, "batch 16: q·d∤12"),
    ] {
        let cfg = paper_config(batch, hidden, heads);
        let t = time_tesseract(GridShape::new(q, d), cfg);
        rows.push(ResultRow {
            parallelization: "Tesseract".into(),
            gpus: q * q * d,
            shape: format!("[{q},{q},{d}]"),
            batch,
            hidden,
            heads,
            forward: t.forward,
            backward: t.backward,
            throughput: t.throughput(batch),
            inference: t.inference(batch),
            overlap_hidden: t.overlap_hidden,
            note,
        });
    }

    println!("{}", render_rows("Table 1 — strong scaling (simulated A100 cluster)", &rows));

    // The ratio summaries §4.1 quotes.
    let t444 = row(&rows, "[4,4,4]");
    let t881 = row(&rows, "[8,8,1]");
    let m64 = row(&rows, "[64]");
    let o88 = row(&rows, "[8,8]");
    println!("### §4.1 ratio checks (paper values in parentheses)\n");
    println!("- [8,8,1] fwd / [4,4,4] fwd = {:.4} (paper: 2.0702)", t881.forward / t444.forward);
    println!(
        "- Megatron[64] fwd / Tesseract[4,4,4] fwd = {:.4} (paper: 1.3751)",
        m64.forward / t444.forward
    );
    println!(
        "- Optimus[8,8] fwd / Tesseract[4,4,4] fwd = {:.4} (paper: 1.5293)",
        o88.forward / t444.forward
    );
}
