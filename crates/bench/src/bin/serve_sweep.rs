//! Open-loop serving sweep: throughput and latency percentiles vs offered
//! load, per Tesseract arrangement, in **simulated** (virtual) seconds.
//!
//! Per arrangement the sweep first runs a *calibration flood* (every
//! request arrives at t≈0) to measure the engine's saturated capacity in
//! requests per simulated second, then replays the same request mix at
//! fixed multiples of that capacity under Poisson arrivals. Below the knee
//! (multiplier < 1) latency is dominated by service time; past it the
//! open-loop queue grows and the p50/p99 curve bends upward — the shape
//! `BENCH_serving.json` exists to show.
//!
//! Runs use [`ShadowTensor`]: the serving tests pin shadow and dense
//! backends to bitwise-identical latency results and rank reports, so the
//! sweep pays for shapes, not floats. The calibration flood of the first
//! arrangement is re-run with tracing on and exported as a Chrome-trace
//! JSON of the saturated steady state.
//!
//! Every run re-checks the engine's invariants (identical results on all
//! ranks, meter/engine counter reconciliation, ordered percentiles,
//! nonzero throughput) and the whole sweep is deterministic: same seed,
//! same bytes out.
//!
//! Run: `cargo run --release -p tesseract-bench --bin serve_sweep -- \
//!           [--grids 2,1;2,2;4,1] [--requests 48] [--seed 42] \
//!           [--out BENCH_serving.json] [--trace-out target/TRACE_serving.json]`

use tesseract_comm::{Cluster, RunConfig, RunOutput};
use tesseract_core::{GridShape, TransformerConfig};
use tesseract_serve::{
    generate, latency_stats, serve_on_cluster, ServeConfig, ServeSummary, TrafficConfig,
};
use tesseract_tensor::trace::{chrome, json};
use tesseract_tensor::ShadowTensor;

/// Offered load as multiples of the measured saturated capacity; the knee
/// sits at 1.0 by construction.
const LOAD_MULTIPLIERS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// Arrival rate that floods every request in at t≈0 for calibration.
const FLOOD_RATE: f64 = 1e12;

/// The served model: GPT-2-small-ish widths, scaled to stay honest on the
/// meter while every arrangement in the default sweep divides it evenly.
fn model() -> TransformerConfig {
    TransformerConfig {
        batch: 16,
        seq: 64,
        hidden: 256,
        heads: 8,
        mlp_ratio: 4,
        layers: 4,
        eps: 1e-5,
    }
}

fn serve_cfg(seed: u64) -> ServeConfig {
    ServeConfig {
        model: model(),
        with_bias: true,
        seed,
        max_batch_tokens: 128,
        max_lane_requests: 8,
    }
}

fn traffic_cfg(rate: f64, requests: usize, seed: u64) -> TrafficConfig {
    TrafficConfig { rate, requests, prompt_lens: (16, 64), output_lens: (4, 16), seed }
}

/// One load point's measurements (virtual seconds / per-virtual-second).
struct Point {
    multiplier: f64,
    offered_rps: f64,
    achieved_rps: f64,
    tokens_per_s: f64,
    p50_s: f64,
    p99_s: f64,
    ttft_p50_s: f64,
    makespan_s: f64,
    kv_peak_bytes: u64,
}

struct ArrangementCurve {
    shape: GridShape,
    capacity_rps: f64,
    points: Vec<Point>,
}

/// Runs one serving experiment and re-checks the engine invariants the
/// test suite pins, so a sweep can never silently report nonsense.
fn run_point(
    shape: GridShape,
    cfg: &ServeConfig,
    traffic_rate: f64,
    requests: usize,
    traffic_seed: u64,
) -> (RunOutput<ServeSummary>, Vec<f64>) {
    let traffic = generate(&traffic_cfg(traffic_rate, requests, traffic_seed));
    let out = serve_on_cluster::<ShadowTensor>(&Cluster::a100(shape.size()), shape, cfg, &traffic);
    let head = &out.results[0];
    assert_eq!(head.results.len(), requests, "every request must complete");
    for (summary, report) in out.results.iter().zip(&out.reports) {
        assert_eq!(summary.results, head.results, "ranks must agree on results");
        assert_eq!(report.prefill_steps, summary.prefill_steps, "prefill counters reconcile");
        assert_eq!(report.decode_steps, summary.decode_steps, "decode counters reconcile");
        assert_eq!(report.kv_cache_bytes_peak, summary.kv_peak_bytes, "KV peaks reconcile");
    }
    let latencies: Vec<f64> = head.results.iter().map(|r| r.latency()).collect();
    (out, latencies)
}

fn sweep_arrangement(shape: GridShape, requests: usize, seed: u64) -> ArrangementCurve {
    let cfg = serve_cfg(seed);
    let traffic_seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ shape.size() as u64;

    // Calibration: all-at-once arrivals measure the saturated service rate.
    let (flood, _) = run_point(shape, &cfg, FLOOD_RATE, requests, traffic_seed);
    let capacity_rps = requests as f64 / flood.makespan();
    assert!(capacity_rps > 0.0 && capacity_rps.is_finite());

    let mut points = Vec::new();
    for &mult in &LOAD_MULTIPLIERS {
        let offered_rps = capacity_rps * mult;
        let (out, latencies) = run_point(shape, &cfg, offered_rps, requests, traffic_seed);
        let head = &out.results[0];
        let stats = latency_stats(latencies);
        let ttft = latency_stats(head.results.iter().map(|r| r.ttft()).collect());
        let makespan_s = out.makespan();
        let tokens: usize = head.results.iter().map(|r| r.output_len).sum();
        let point = Point {
            multiplier: mult,
            offered_rps,
            achieved_rps: requests as f64 / makespan_s,
            tokens_per_s: tokens as f64 / makespan_s,
            p50_s: stats.p50,
            p99_s: stats.p99,
            ttft_p50_s: ttft.p50,
            makespan_s,
            kv_peak_bytes: out.reports.iter().map(|r| r.kv_cache_bytes_peak).max().unwrap_or(0),
        };
        assert!(point.p99_s >= point.p50_s, "percentiles must be ordered");
        assert!(point.achieved_rps > 0.0, "throughput must be nonzero");
        points.push(point);
    }
    // The open-loop signature: offered load past the knee queues.
    let (first, last) = (&points[0], &points[points.len() - 1]);
    assert!(
        last.p50_s > first.p50_s,
        "[{q},{q},{d}]: p50 at {}x capacity ({}) must exceed p50 at {}x ({})",
        last.multiplier,
        last.p50_s,
        first.multiplier,
        first.p50_s,
        q = shape.q,
        d = shape.d,
    );
    ArrangementCurve { shape, capacity_rps, points }
}

/// Re-runs the first arrangement's calibration flood with tracing on and
/// writes the saturated steady state as Chrome-trace JSON (schema-checked
/// by re-parsing, like `trace_dump`).
fn write_saturated_trace(path: &str, shape: GridShape, requests: usize, seed: u64) -> usize {
    let cfg = serve_cfg(seed);
    let traffic_seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ shape.size() as u64;
    let traffic = generate(&traffic_cfg(FLOOD_RATE, requests, traffic_seed));
    let cluster = RunConfig::from_env(shape.size()).with_trace(true).cluster();
    let out = serve_on_cluster::<ShadowTensor>(&cluster, shape, &cfg, &traffic);
    assert_eq!(out.traces.len(), shape.size(), "one trace per rank");
    let payload = chrome::chrome_trace_json(&out.traces);
    let doc = json::parse(&payload)
        .unwrap_or_else(|e| panic!("{path}: emitted chrome trace does not parse: {e}"));
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .unwrap_or_else(|| panic!("{path}: traceEvents array missing"));
    assert!(
        events.iter().any(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("X")
                && e.get("dur").and_then(|d| d.as_f64()).is_some()
        }),
        "{path}: no complete (ph: X) spans emitted"
    );
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).unwrap_or_else(|e| panic!("creating {parent:?}: {e}"));
        }
    }
    std::fs::write(path, &payload).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    events.len()
}

fn main() {
    let mut grids: Vec<(usize, usize)> = vec![(2, 1), (2, 2), (4, 1)];
    let mut requests = 48usize;
    let mut seed = 42u64;
    let mut out_path = String::from("BENCH_serving.json");
    // Traces are regenerated artifacts, not sources: they default under
    // target/ and are never committed (ci.sh proves one is generated and
    // parseable on every run).
    let mut trace_path = String::from("target/TRACE_serving.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value")).clone();
        match arg.as_str() {
            "--grids" => {
                grids = value("--grids")
                    .split(';')
                    .map(|pair| {
                        let mut parts = pair
                            .split(',')
                            .map(|s| s.trim().parse::<usize>().expect("--grids wants q,d pairs"));
                        let q = parts.next().expect("--grids wants q,d pairs");
                        let d = parts.next().expect("--grids wants q,d pairs");
                        assert!(parts.next().is_none(), "--grids wants q,d pairs");
                        (q, d)
                    })
                    .collect();
            }
            "--requests" => {
                requests = value("--requests").parse().expect("--requests wants an integer")
            }
            "--seed" => seed = value("--seed").parse().expect("--seed wants an integer"),
            "--out" => out_path = value("--out"),
            "--trace-out" => trace_path = value("--trace-out"),
            other => panic!(
                "unknown argument {other:?} (known: --grids --requests --seed --out --trace-out)"
            ),
        }
    }
    assert!(!grids.is_empty(), "--grids must name at least one arrangement");
    assert!(requests >= 2, "--requests must be at least 2");
    let m = model();
    for &(q, d) in &grids {
        m.validate_for_grid(q, d);
    }

    println!(
        "serve_sweep: {} requests per point, prompts 16-64, outputs 4-16 tokens, \
loads {LOAD_MULTIPLIERS:?} x measured capacity (virtual seconds)\n",
        requests
    );

    let mut curves = Vec::new();
    for &(q, d) in &grids {
        let shape = GridShape::new(q, d);
        let curve = sweep_arrangement(shape, requests, seed);
        println!(
            "[{q},{q},{d}] ({} ranks): saturated capacity {:.3} req/s",
            shape.size(),
            curve.capacity_rps
        );
        println!(
            "| load | offered (req/s) | achieved (req/s) | tokens/s | p50 (s) | p99 (s) | ttft p50 (s) |"
        );
        println!("|---|---|---|---|---|---|---|");
        for p in &curve.points {
            println!(
                "| {:.2}x | {:.3} | {:.3} | {:.3} | {:.6} | {:.6} | {:.6} |",
                p.multiplier,
                p.offered_rps,
                p.achieved_rps,
                p.tokens_per_s,
                p.p50_s,
                p.p99_s,
                p.ttft_p50_s
            );
        }
        println!();
        curves.push(curve);
    }

    // The invariant lines the CI smoke greps; they only print because the
    // asserts in `sweep_arrangement` already held for every arrangement.
    println!("invariant ok: p99 >= p50 at every load point");
    println!("invariant ok: nonzero throughput at every load point");
    println!("invariant ok: latency grows past the saturation knee");

    let trace_shape = GridShape::new(grids[0].0, grids[0].1);
    let events = write_saturated_trace(&trace_path, trace_shape, requests, seed);
    println!(
        "wrote {trace_path} ({events} trace events, saturated [{q},{q},{d}] steady state)",
        q = trace_shape.q,
        d = trace_shape.d
    );

    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"serve_sweep\",\n");
    out.push_str(
        "  \"units\": { \"time\": \"simulated seconds\", \
\"rates\": \"per simulated second\", \"kv_peak\": \"bytes, max over ranks\" },\n",
    );
    out.push_str(&format!(
        "  \"model\": {{ \"hidden\": {}, \"heads\": {}, \"layers\": {}, \"mlp_ratio\": {} }},\n",
        m.hidden, m.heads, m.layers, m.mlp_ratio
    ));
    out.push_str(&format!(
        "  \"traffic\": {{ \"requests\": {requests}, \"prompt_lens\": [16, 64], \
\"output_lens\": [4, 16], \"seed\": {seed} }},\n"
    ));
    out.push_str("  \"arrangements\": [\n");
    for (gi, curve) in curves.iter().enumerate() {
        let (q, d) = (curve.shape.q, curve.shape.d);
        out.push_str(&format!(
            "    {{ \"grid\": \"[{q},{q},{d}]\", \"world\": {}, \"capacity_rps\": {:.9},\n",
            curve.shape.size(),
            curve.capacity_rps
        ));
        out.push_str("      \"points\": [\n");
        for (pi, p) in curve.points.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"load\": {:.2}, \"offered_rps\": {:.9}, \"achieved_rps\": {:.9}, \
\"tokens_per_s\": {:.9}, \"p50_s\": {:.9}, \"p99_s\": {:.9}, \"ttft_p50_s\": {:.9}, \
\"makespan_s\": {:.9}, \"kv_peak_bytes\": {} }}{}\n",
                p.multiplier,
                p.offered_rps,
                p.achieved_rps,
                p.tokens_per_s,
                p.p50_s,
                p.p99_s,
                p.ttft_p50_s,
                p.makespan_s,
                p.kv_peak_bytes,
                if pi + 1 == curve.points.len() { "" } else { "," }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!("    }}{}\n", if gi + 1 == curves.len() { "" } else { "," }));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&out_path, &out).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
