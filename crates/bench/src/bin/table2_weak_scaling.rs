//! Reproduces **Table 2** (weak scaling): per-GPU problem size held at
//! `[b/(d·q), n/q, h/n] = [24, 16, 192]`, so batch/hidden/heads grow with
//! the arrangement exactly as in the paper's rows.
//!
//! Run: `cargo run --release -p tesseract-bench --bin table2_weak_scaling`

use tesseract_bench::tables::{render_rows, row, ResultRow};
use tesseract_bench::timing::{paper_config, time_megatron, time_tesseract};
use tesseract_core::GridShape;

fn main() {
    let mut rows = Vec::new();

    for (p, batch, hidden, heads) in
        [(4usize, 60usize, 2048usize, 32usize), (16, 60, 4096, 64), (64, 30, 8192, 128)]
    {
        let cfg = paper_config(batch, hidden, heads);
        let t = time_megatron(p, cfg);
        rows.push(ResultRow {
            parallelization: "Megatron-LM".into(),
            gpus: p,
            shape: format!("[{p}]"),
            batch,
            hidden,
            heads,
            forward: t.forward,
            backward: t.backward,
            throughput: t.throughput(batch),
            inference: t.inference(batch),
            overlap_hidden: t.overlap_hidden,
            note: "",
        });
    }

    for (q, batch, hidden, heads) in
        [(2usize, 96usize, 2048usize, 32usize), (4, 192, 4096, 64), (8, 384, 8192, 128)]
    {
        let cfg = paper_config(batch, hidden, heads);
        let t = time_tesseract(GridShape::new(q, 1), cfg);
        rows.push(ResultRow {
            parallelization: "Optimus".into(),
            gpus: q * q,
            shape: format!("[{q},{q}]"),
            batch,
            hidden,
            heads,
            forward: t.forward,
            backward: t.backward,
            throughput: t.throughput(batch),
            inference: t.inference(batch),
            overlap_hidden: t.overlap_hidden,
            note: "",
        });
    }

    for (q, d, batch, hidden, heads) in [
        (1usize, 1usize, 48usize, 1024usize, 16usize),
        (2, 1, 96, 2048, 32),
        (2, 2, 192, 2048, 32),
        (4, 1, 192, 4096, 64),
        (4, 2, 384, 4096, 64),
        (4, 4, 768, 4096, 64),
        (8, 1, 384, 8192, 128),
    ] {
        let cfg = paper_config(batch, hidden, heads);
        let t = time_tesseract(GridShape::new(q, d), cfg);
        rows.push(ResultRow {
            parallelization: "Tesseract".into(),
            gpus: q * q * d,
            shape: format!("[{q},{q},{d}]"),
            batch,
            hidden,
            heads,
            forward: t.forward,
            backward: t.backward,
            throughput: t.throughput(batch),
            inference: t.inference(batch),
            overlap_hidden: t.overlap_hidden,
            note: "",
        });
    }

    println!("{}", render_rows("Table 2 — weak scaling (simulated A100 cluster)", &rows));

    let t444 = row(&rows, "[4,4,4]");
    let t881 = row(&rows, "[8,8,1]");
    let m64 = row(&rows, "[64]");
    let o88 = row(&rows, "[8,8]");
    println!("### §4.2 ratio checks (paper values in parentheses)\n");
    println!("- [8,8,1] fwd / [4,4,4] fwd = {:.4} (paper: 1.5576)", t881.forward / t444.forward);
    println!(
        "- Tesseract[4,4,4] throughput / Megatron[64] = {:.4} (paper: 3.3746)",
        t444.throughput / m64.throughput
    );
    println!(
        "- Tesseract[4,4,4] throughput / Optimus[8,8] = {:.4} (paper: 1.7144)",
        t444.throughput / o88.throughput
    );
    println!(
        "- Tesseract[4,4,4] inference / Megatron[64] = {:.4} (paper: 4.0156)",
        t444.inference / m64.inference
    );
    println!(
        "- Tesseract[4,4,4] inference / Optimus[8,8] = {:.4} (paper: 1.6987)",
        t444.inference / o88.inference
    );
    println!(
        "- [4,4,4] throughput / [8,8,1] throughput = {:.4} (paper: 1.5092)",
        t444.throughput / t881.throughput
    );
}
