//! Sequence-parallelism memory sweep: per-GPU peak of *tape-held*
//! activation bytes over a full forward + backward, dense layout vs
//! sequence parallelism (SP) vs SP + tape recomputation, at growing
//! sequence lengths.
//!
//! Runs use [`ShadowTensor`]: the SP contract tests pin shadow and dense
//! backends to identical schedules, so the sweep pays for shapes, not
//! floats. Alongside the measured peaks the sweep keeps a collective-call
//! ledger proving the SP schedule's fusion claim: the row all-gathers and
//! reduce-scatters replace dense broadcasts/reduces one for one (SP's
//! sharded layer-norm needs strictly *fewer* stat reductions), so apart
//! from the boundary all-to-all relayouts SP never issues more collectives
//! than the dense schedule.
//!
//! Every point asserts, per rank, the ordering the memory table shows in
//! aggregate: `dense > sp > sp+recompute`. The greppable invariant lines
//! (`sp_peak_lt_dense:true`, …) only print after those asserts held at
//! every swept point.
//!
//! Run: `cargo run --release -p tesseract-bench --bin sp_sweep -- \
//!           [--grids 2,1;2,2;4,1] [--seqs 256,1024,4096] [--layers 4] \
//!           [--recompute 2] [--out BENCH_sp.json]`

use tesseract_comm::{CollectiveOp, RunConfig};
use tesseract_core::layers::StackOptions;
use tesseract_core::{GridShape, Module, TesseractGrid, TesseractTransformer, TransformerConfig};
use tesseract_tensor::{ShadowTensor, TensorLike};

/// The swept model, minus the sequence length (widths stay fixed so the
/// curve isolates the sequence axis).
fn model(seq: usize, layers: usize) -> TransformerConfig {
    TransformerConfig { batch: 16, seq, hidden: 256, heads: 8, mlp_ratio: 4, layers, eps: 1e-5 }
}

/// One mode's measurements at one (grid, seq) point.
struct ModeRun {
    /// Per-rank tape high-water bytes.
    per_rank: Vec<u64>,
    /// Max over ranks — the number a capacity planner reads.
    peak: u64,
    /// Collective calls summed over ranks and ops.
    calls: u64,
    /// The boundary relayout calls (all-to-all) within `calls`.
    a2a_calls: u64,
}

fn run_mode(shape: GridShape, cfg: TransformerConfig, opts: StackOptions) -> ModeRun {
    let (q, d) = (shape.q, shape.d);
    let out = RunConfig::from_env(shape.size()).cluster().run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let mut model = TesseractTransformer::<ShadowTensor>::new_with_options(
            ctx, &grid, cfg, true, 0, 0, opts,
        );
        let x = std::sync::Arc::new(ShadowTensor::new(cfg.rows() / (q * d), cfg.hidden / q));
        let y = model.forward(&grid, ctx, &x);
        let dy = std::sync::Arc::new(ShadowTensor::new(y.rows(), y.cols()));
        let _ = model.backward(&grid, ctx, &dy);
        ctx.flush_compute();
    });
    let per_rank: Vec<u64> = out.reports.iter().map(|r| r.activation_bytes_peak).collect();
    let peak = *per_rank.iter().max().expect("at least one rank");
    ModeRun {
        per_rank,
        peak,
        calls: out.comm.total_calls(),
        a2a_calls: out.comm.get(CollectiveOp::AllToAll).calls,
    }
}

fn main() {
    let mut grids: Vec<(usize, usize)> = vec![(2, 1), (2, 2), (4, 1)];
    let mut seqs: Vec<usize> = vec![256, 1024, 4096];
    let mut layers = 4usize;
    let mut recompute = 2usize;
    let mut out_path = String::from("BENCH_sp.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value")).clone();
        match arg.as_str() {
            "--grids" => {
                grids = value("--grids")
                    .split(';')
                    .map(|pair| {
                        let mut parts = pair
                            .split(',')
                            .map(|s| s.trim().parse::<usize>().expect("--grids wants q,d pairs"));
                        let q = parts.next().expect("--grids wants q,d pairs");
                        let d = parts.next().expect("--grids wants q,d pairs");
                        assert!(parts.next().is_none(), "--grids wants q,d pairs");
                        (q, d)
                    })
                    .collect();
            }
            "--seqs" => {
                seqs = value("--seqs")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--seqs wants integers"))
                    .collect();
            }
            "--layers" => layers = value("--layers").parse().expect("--layers wants an integer"),
            "--recompute" => {
                recompute = value("--recompute").parse().expect("--recompute wants an integer")
            }
            "--out" => out_path = value("--out"),
            other => panic!(
                "unknown argument {other:?} (known: --grids --seqs --layers --recompute --out)"
            ),
        }
    }
    assert!(!grids.is_empty() && !seqs.is_empty(), "need at least one grid and one seq");
    assert!(recompute >= 1, "--recompute wants k >= 1");
    for &(q, d) in &grids {
        assert!(q >= 2, "sp_sweep wants q >= 2 grids (q = 1 SP is the dense no-op)");
        for &s in &seqs {
            model(s, layers).validate_for_grid_sp(q, d);
        }
    }

    let sp_opts = StackOptions { sequence_parallel: true, recompute_every: None };
    let rc_opts = StackOptions { sequence_parallel: true, recompute_every: Some(recompute) };

    println!(
        "sp_sweep: {layers}-layer stack fwd+bwd, hidden 256, heads 8, mlp x4, \
checkpoint every k={recompute} layers (tape high-water per GPU)\n"
    );
    println!("| grid | seq | mode | measured-peak bytes/GPU | collectives | all-to-all |");
    println!("|---|---|---|---|---|---|");

    struct Point {
        q: usize,
        d: usize,
        seq: usize,
        dense: ModeRun,
        sp: ModeRun,
        rc: ModeRun,
    }
    let mut points = Vec::new();
    for &(q, d) in &grids {
        let shape = GridShape::new(q, d);
        for &seq in &seqs {
            let cfg = model(seq, layers);
            let dense = run_mode(shape, cfg, StackOptions::default());
            let sp = run_mode(shape, cfg, sp_opts);
            let rc = run_mode(shape, cfg, rc_opts);
            for (mode, run) in
                [("dense", &dense), ("sp", &sp), (&format!("sp+rc k={recompute}") as &str, &rc)]
            {
                println!(
                    "| [{q},{q},{d}] | {seq} | {mode} | {} | {} | {} |",
                    run.peak, run.calls, run.a2a_calls
                );
            }

            // Per-rank strict ordering: SP sheds the un-sharded layer-norm
            // stat columns, recompute sheds whole segments on top.
            for r in 0..dense.per_rank.len() {
                assert!(dense.per_rank[r] > 0, "[{q},{q},{d}] s={seq}: rank {r} tracked nothing");
                assert!(
                    sp.per_rank[r] < dense.per_rank[r],
                    "[{q},{q},{d}] s={seq}: rank {r} SP peak {} not below dense {}",
                    sp.per_rank[r],
                    dense.per_rank[r]
                );
                assert!(
                    rc.per_rank[r] < sp.per_rank[r],
                    "[{q},{q},{d}] s={seq}: rank {r} recompute peak {} not below SP {}",
                    rc.per_rank[r],
                    sp.per_rank[r]
                );
            }

            // The fusion ledger: aside from the boundary all-to-alls, SP
            // must not issue more collectives than the dense schedule.
            assert_eq!(dense.a2a_calls, 0, "[{q},{q},{d}] s={seq}: dense schedule used a2a");
            assert!(
                sp.calls - sp.a2a_calls <= dense.calls,
                "[{q},{q},{d}] s={seq}: SP collectives beyond the boundary a2a ({}) exceed dense ({})",
                sp.calls - sp.a2a_calls,
                dense.calls
            );
            points.push(Point { q, d, seq, dense, sp, rc });
        }
    }

    // Greppable only because every per-point assert above already held.
    println!();
    println!("sp_peak_lt_dense:true");
    println!("rc_peak_lt_sp:true");
    println!("sp_collectives_flat:true");

    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"sp_sweep\",\n");
    out.push_str(
        "  \"units\": { \"peak\": \"tape high-water bytes, per GPU\", \
\"collectives\": \"calls summed over ranks\" },\n",
    );
    out.push_str(&format!(
        "  \"model\": {{ \"hidden\": 256, \"heads\": 8, \"mlp_ratio\": 4, \"layers\": {layers} }},\n"
    ));
    out.push_str(&format!("  \"recompute_every\": {recompute},\n"));
    out.push_str("  \"points\": [\n");
    for (pi, p) in points.iter().enumerate() {
        let mode = |m: &ModeRun| {
            format!(
                "{{ \"peak_bytes\": {}, \"collective_calls\": {}, \"all_to_all_calls\": {} }}",
                m.peak, m.calls, m.a2a_calls
            )
        };
        out.push_str(&format!(
            "    {{ \"grid\": \"[{q},{q},{d}]\", \"world\": {}, \"seq\": {}, \
\"dense\": {}, \"sp\": {}, \"sp_recompute\": {} }}{}\n",
            p.q * p.q * p.d,
            p.seq,
            mode(&p.dense),
            mode(&p.sp),
            mode(&p.rc),
            if pi + 1 == points.len() { "" } else { "," },
            q = p.q,
            d = p.d,
        ));
    }
    out.push_str("  ]\n}\n");
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).unwrap_or_else(|e| panic!("creating {parent:?}: {e}"));
        }
    }
    std::fs::write(&out_path, &out).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
