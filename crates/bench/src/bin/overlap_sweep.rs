//! Overlap sweep: the double-buffered SUMMA pipeline vs the serial
//! broadcast-then-compute loop, measured in **simulated** (virtual) seconds.
//!
//! One full training matmul step — forward `C = A·B` plus both backward
//! rules `A' = C'·Bᵀ` and `B' = Aᵀ·C'` (with the depth all-reduce) — runs
//! on the `[2, 2, 2]` cube with global `A [64, n]` against the `n×n`
//! weight, once through the shipped `tesseract_matmul*` pipeline and once
//! through the `*_serial` reference loops. Both runs use `DenseTensor`, so
//! the sweep doubles as a bitwise-parity check at every size.
//!
//! Columns: virtual step seconds per variant, the pipeline's speedup, the
//! collective wait it hid under compute, and the fraction of the total
//! wait that was hidden (`hidden / (hidden + still-paid)`).
//!
//! Run: `cargo run --release -p tesseract-bench --bin overlap_sweep -- \
//!           [--sizes 256,512,1024] [--out BENCH_overlap.json]`

use std::sync::Arc;

use tesseract_comm::{Cluster, RunOutput};
use tesseract_core::partition::{a_block, b_block};
use tesseract_core::{
    tesseract_matmul, tesseract_matmul_nt, tesseract_matmul_nt_serial, tesseract_matmul_serial,
    tesseract_matmul_tn, tesseract_matmul_tn_serial, GridShape, TesseractGrid,
};
use tesseract_tensor::{DenseTensor, Matrix, Xoshiro256StarStar};

/// The 2.5-D cube the acceptance criterion names.
const SHAPE: (usize, usize) = (2, 2); // [2, 2, 2]

/// Global activation rows: skinny against the `n×n` weight, the
/// transformer linear-layer regime where panel broadcasts dominate.
const STEP_ROWS: usize = 64;

fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
}

/// One fwd+bwd matmul step on the cube; returns each rank's gradient
/// blocks so the two variants can be compared bitwise.
fn step_round(pipelined: bool, n: usize) -> RunOutput<(Matrix, Matrix)> {
    let shape = GridShape::new(SHAPE.0, SHAPE.1);
    let a = random(STEP_ROWS, n, 71);
    let b = random(n, n, 72);
    Cluster::a100(shape.size()).run(move |ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let (i, j, k) = grid.coords;
        let a_loc = Arc::new(DenseTensor::from_matrix(a_block(&a, shape, i, j, k)));
        let b_loc = Arc::new(DenseTensor::from_matrix(b_block(&b, shape, i, j)));
        let (dx, dw) = if pipelined {
            let dy = tesseract_matmul(&grid, ctx, &a_loc, &b_loc);
            let dx = tesseract_matmul_nt(&grid, ctx, &dy, &b_loc);
            let dw = tesseract_matmul_tn(&grid, ctx, &a_loc, &dy, true);
            (dx, dw)
        } else {
            let dy = tesseract_matmul_serial(&grid, ctx, &a_loc, &b_loc);
            let dx = tesseract_matmul_nt_serial(&grid, ctx, &dy, &b_loc);
            let dw = tesseract_matmul_tn_serial(&grid, ctx, &a_loc, &dy, true);
            (dx, dw)
        };
        ctx.flush_compute();
        (dx.matrix().clone(), dw.matrix().clone())
    })
}

struct Row {
    n: usize,
    serial_s: f64,
    pipelined_s: f64,
    hidden_s: f64,
    hidden_frac: f64,
}

fn main() {
    let mut sizes: Vec<usize> = vec![256, 512, 1024];
    let mut out_path = String::from("BENCH_overlap.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value")).clone();
        match arg.as_str() {
            "--sizes" => {
                sizes = value("--sizes")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes wants comma-separated integers"))
                    .collect();
            }
            "--out" => out_path = value("--out"),
            other => panic!("unknown argument {other:?} (known: --sizes --out)"),
        }
    }
    let (q, d) = SHAPE;
    assert!(sizes.iter().all(|&n| n % (q * q * d) == 0), "--sizes must divide the [2,2,2] grid");

    println!(
        "overlap_sweep: [{q},{q},{d}] grid, global A {STEP_ROWS} x n, B n x n, \
sizes {sizes:?} (virtual seconds; both runs bitwise-checked)\n"
    );
    println!(
        "| n | serial step (s) | pipelined step (s) | speedup | hidden wait (s) | hidden frac |"
    );
    println!("|---|---|---|---|---|---|");
    let mut rows = Vec::new();
    for &n in &sizes {
        let serial = step_round(false, n);
        let pipelined = step_round(true, n);
        assert_eq!(
            serial.results, pipelined.results,
            "n = {n}: pipelined step diverged from serial bitwise"
        );
        let serial_s = serial.makespan();
        let pipelined_s = pipelined.makespan();
        // Fraction of the pipelined run's total collective wait that was
        // hidden under compute (summed over ranks, like the stats table).
        let hidden_s = pipelined.comm.total_hidden_time();
        let paid_s: f64 = pipelined.reports.iter().map(|r| r.comm_wait_nanos as f64 * 1e-9).sum();
        let hidden_frac = hidden_s / (hidden_s + paid_s);
        println!(
            "| {n} | {serial_s:.6} | {pipelined_s:.6} | {:.3}x | {hidden_s:.6} | {hidden_frac:.3} |",
            serial_s / pipelined_s,
        );
        rows.push(Row { n, serial_s, pipelined_s, hidden_s, hidden_frac });
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"overlap_sweep\",\n");
    json.push_str(
        "  \"units\": { \"time\": \"simulated seconds (max over ranks)\", \
\"hidden\": \"simulated seconds summed over ranks\" },\n",
    );
    json.push_str(&format!("  \"grid\": \"[{q},{q},{d}]\",\n"));
    json.push_str(&format!("  \"step_rows\": {STEP_ROWS},\n"));
    json.push_str("  \"steps\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"n\": {}, \"serial_s\": {:.9}, \"pipelined_s\": {:.9}, \
\"speedup\": {:.4}, \"hidden_s\": {:.9}, \"hidden_frac\": {:.4} }}{}\n",
            r.n,
            r.serial_s,
            r.pipelined_s,
            r.serial_s / r.pipelined_s,
            r.hidden_s,
            r.hidden_frac,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("\nwrote {out_path}");
}
