//! Reproduces the **Eq. 7–10 memory model** (experiment C2): per-GPU
//! element counts for one `[a,b] × [b,c]` matmul under Tesseract
//! (`ab/p + bcd/p + ac/p`) versus Megatron-LM (`ab + bc/p + ac/p`), plus a
//! measured cross-check: the byte sizes of the blocks the implementations
//! actually hold.
//!
//! Run: `cargo run --release -p tesseract-bench --bin memory_table`

use tesseract_baselines::megatron::{MegatronTransformer, MegatronWorld};
use tesseract_comm::Cluster;
use tesseract_core::analysis::{memory_megatron, memory_tesseract};
use tesseract_core::layers::StackOptions;
use tesseract_core::partition::{a_block_shape, b_block_shape};
use tesseract_core::{GridShape, Module, TesseractGrid, TesseractTransformer, TransformerConfig};
use tesseract_tensor::{ShadowTensor, TensorLike};

fn main() {
    // The paper's MLP fc1 shapes: A = [b·s, h], B = [h, 4h].
    let (b, s, h) = (12usize, 512usize, 3072usize);
    let (a_rows, a_cols, b_cols) = (b * s, h, 4 * h);

    println!("## C2 — per-GPU memory for one [b·s, h] x [h, 4h] matmul (Eq. 7-10)\n");
    println!("A = [{a_rows}, {a_cols}], B = [{a_cols}, {b_cols}] (b={b}, s={s}, h={h})\n");
    println!("| scheme | p | arrangement | formula elements | measured elements | MB (f32) |");
    println!("|---|---|---|---|---|---|");

    for (q, d) in [(2usize, 1usize), (2, 2), (4, 1), (4, 2), (4, 4), (8, 1)] {
        let p = q * q * d;
        let shape = GridShape::new(q, d);
        let formula = memory_tesseract(a_rows, a_cols, b_cols, q, d);
        // Measured: the actual block shapes the partitioning produces.
        let (ar, ac) = a_block_shape(shape, a_rows, a_cols);
        let (br, bc) = b_block_shape(shape, a_cols, b_cols);
        let (cr, cc) = a_block_shape(shape, a_rows, b_cols);
        let measured = (ar * ac + br * bc + cr * cc) as f64;
        assert!(
            (formula - measured).abs() / measured < 1e-9,
            "Eq. 7/8 must match the real block sizes"
        );
        println!(
            "| Tesseract | {p} | [{q},{q},{d}] | {formula:.0} | {measured:.0} | {:.1} |",
            measured * 4.0 / 1e6
        );
    }

    for p in [4usize, 16, 64] {
        let formula = memory_megatron(a_rows, a_cols, b_cols, p);
        // Megatron: full A replicated, B column-split, C column-split.
        let measured = (a_rows * a_cols + a_cols * (b_cols / p) + a_rows * (b_cols / p)) as f64;
        assert!((formula - measured).abs() / measured < 1e-9);
        println!(
            "| Megatron-LM | {p} | [{p}] | {formula:.0} | {measured:.0} | {:.1} |",
            measured * 4.0 / 1e6
        );
    }

    // Measured activation traffic of a full Transformer layer forward:
    // bytes of op outputs each rank materializes (weights excluded — they
    // are resident). This extends Eq. 7-10 from one matmul to the layer the
    // paper actually runs.
    println!("\n### measured per-GPU activation bytes, one Transformer-layer forward (b=12, s=512, h=3072)\n");
    println!("| scheme | p | arrangement | activation MB/GPU |");
    println!("|---|---|---|---|");
    let cfg = TransformerConfig {
        batch: 16,
        seq: 512,
        hidden: 3072,
        heads: 64,
        mlp_ratio: 4,
        layers: 1,
        eps: 1e-5,
    };
    for (q, d) in [(2usize, 2usize), (4, 4), (8, 1)] {
        let shape = GridShape::new(q, d);
        let out = Cluster::a100(shape.size()).run(|ctx| {
            let grid = TesseractGrid::new(ctx, shape, 0);
            let mut model = TesseractTransformer::<ShadowTensor>::new(ctx, &grid, cfg, true, 0, 0);
            let x = std::sync::Arc::new(ShadowTensor::new(cfg.rows() / (q * d), cfg.hidden / q));
            let _ = model.forward(&grid, ctx, &x);
            ctx.flush_compute();
        });
        let max_bytes = out.reports.iter().map(|r| r.bytes_allocated).max().unwrap();
        println!(
            "| Tesseract | {} | [{q},{q},{d}] | {:.1} |",
            shape.size(),
            max_bytes as f64 / 1e6
        );
    }
    for p in [4usize, 64] {
        let out = Cluster::a100(p).run(|ctx| {
            let world = MegatronWorld::new(ctx, (0..p).collect());
            let mut model = MegatronTransformer::<ShadowTensor>::new(&world, cfg, true, 0, 0);
            let x = std::sync::Arc::new(ShadowTensor::new(cfg.rows(), cfg.hidden));
            let _ = model.forward(&world, ctx, &x);
            ctx.flush_compute();
        });
        let max_bytes = out.reports.iter().map(|r| r.bytes_allocated).max().unwrap();
        println!("| Megatron-LM | {p} | [{p}] | {:.1} |", max_bytes as f64 / 1e6);
    }

    // Measured peak of *tape-held* activations over a full forward +
    // backward — the high-water mark training actually pays. Tesseract
    // already 2-D-shards every wide activation, so sequence parallelism's
    // incremental saving is the per-row layer-norm stat vectors (exact
    // bytes, strictly smaller); recomputation (checkpoint every k layers)
    // drops whole segments and dominates at depth.
    let stack_cfg = TransformerConfig { layers: 4, ..cfg };
    println!("\n### measured-peak: per-GPU tape high-water bytes, 4-layer stack fwd+bwd\n");
    println!("| arrangement | mode | measured-peak bytes/GPU |");
    println!("|---|---|---|");
    for (q, d) in [(2usize, 2usize), (4, 4)] {
        let shape = GridShape::new(q, d);
        for (mode, opts) in [
            ("dense", StackOptions::default()),
            ("sp", StackOptions { sequence_parallel: true, recompute_every: None }),
            ("sp+rc k=1", StackOptions { sequence_parallel: true, recompute_every: Some(1) }),
        ] {
            let out = Cluster::a100(shape.size()).run(|ctx| {
                let grid = TesseractGrid::new(ctx, shape, 0);
                let mut model = TesseractTransformer::<ShadowTensor>::new_with_options(
                    ctx, &grid, stack_cfg, true, 0, 0, opts,
                );
                let x = std::sync::Arc::new(ShadowTensor::new(
                    stack_cfg.rows() / (q * d),
                    stack_cfg.hidden / q,
                ));
                let y = model.forward(&grid, ctx, &x);
                let dy = std::sync::Arc::new(ShadowTensor::new(y.rows(), y.cols()));
                let _ = model.backward(&grid, ctx, &dy);
                ctx.flush_compute();
            });
            let peak = out.reports.iter().map(|r| r.activation_bytes_peak).max().unwrap();
            println!("| [{q},{q},{d}] | {mode} | {peak} |");
        }
    }

    let t = memory_tesseract(a_rows, a_cols, b_cols, 4, 4);
    let m = memory_megatron(a_rows, a_cols, b_cols, 64);
    println!("\nAt p = 64: Megatron needs {:.1}x the memory of Tesseract [4,4,4] for this", m / t);
    println!("matmul — 'Megatron-LM requires p times more memory to store matrix A;");
    println!("although Tesseract spends more memory on matrix B, it is negligible' (§3.1).");
}
