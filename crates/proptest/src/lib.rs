//! Std-only, in-tree stand-in for the `proptest` crate.
//!
//! The offline build environment cannot fetch crates from a registry, so the
//! workspace's property suites link against this shim instead (via a cargo
//! dependency rename: `proptest = { package = "tesseract-proptest", .. }`).
//! It implements exactly the subset the suites use:
//!
//! * [`Strategy`] with [`Strategy::prop_map`],
//! * range strategies (`lo..hi`) for `usize`, `u64`, `i64`, `f32`, `f64`,
//! * tuple strategies up to arity 6,
//! * [`collection::vec`] with a fixed length,
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike real proptest there is no shrinking and no failure persistence:
//! cases are generated from a deterministic per-test seed (hashed from the
//! test name), so every run explores the same inputs and failures reproduce
//! exactly. That trade keeps the shim small while preserving what the suites
//! actually rely on: broad deterministic input coverage.

/// How many cases a `proptest!` test runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic case-generation RNG (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Seeds from a test name so each test walks its own input sequence.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        // Multiply-shift reduction; bias is negligible for test-case bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values of one type. The shim keeps the real crate's name
/// and combinator spelling so test code is source-compatible.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A constant strategy (proptest's `Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.next_below(span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i64, i32, i16, i8, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.next_unit_f64();
                let v = self.start as f64 + u * (self.end as f64 - self.start as f64);
                // Clamp: rounding at the top of a narrow f32 range could
                // otherwise land exactly on `end`.
                if v as $t >= self.end { self.start } else { v as $t }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// `Vec` of exactly `len` elements drawn from `element`. (The real crate
    /// also accepts size ranges; the workspace only uses fixed lengths.)
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drop-in for proptest's assertion: failure aborts the current case with a
/// panic carrying the formatted message (no shrinking to re-run, so a plain
/// assert is the honest equivalent).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The `proptest!` block: an optional config header followed by `#[test]`
/// functions whose arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($tail:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($tail)* }
    };
    ($($tail:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($tail)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($tail:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                let ($($pat,)+) =
                    $crate::Strategy::generate(&($($strat,)+), &mut rng);
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg); $($tail)* }
    };
}

pub mod prelude {
    /// Alias so `proptest::prelude::prop::collection::vec` style paths work.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f32..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let s = (-5i32..-1).generate(&mut rng);
            assert!((-5..-1).contains(&s));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let s = (0u64..1000, 0.0f32..1.0);
        for _ in 0..100 {
            assert_eq!(s.0.generate(&mut a), s.0.generate(&mut b));
        }
    }

    #[test]
    fn prop_map_and_vec_compose() {
        let mut rng = TestRng::from_seed(1);
        let strat = collection::vec(0usize..10, 5).prop_map(|v| v.len());
        assert_eq!(strat.generate(&mut rng), 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_tuples((a, b) in (0usize..5, 0usize..5), c in 0u64..3) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!(c < 3);
        }
    }
}
