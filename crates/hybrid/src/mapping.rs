//! Rank mapping for hybrid parallelism (paper §3.4, Figure 6).
//!
//! `total = dp · pp · q²·d` GPUs, declared as the 5-axis named mesh
//! `[("dp", dp), ("pp", pp), ("depth", d), ("row", q), ("col", q)]`: each
//! Tesseract module ("blocks in the same color" in Figure 6) occupies
//! consecutive ranks, pipeline stages of one data-parallel replica are
//! adjacent, and data-parallel replicas are outermost — the mesh's
//! row-major strides reproduce
//!
//! `rank = ((dp_idx · pp + pp_idx) · tesseract_size) + tesseract_offset`
//!
//! and the gradient all-reduce groups are the fibers along the `"dp"` axis.

use tesseract_comm::{Mesh, MeshAxis, Payload, RankCtx};
use tesseract_core::layers::{TesseractTransformerLayer, PARAM_IDS_PER_LAYER};
use tesseract_core::{GridShape, Sequential, ShapeError, TesseractGrid, TransformerConfig};
use tesseract_tensor::TensorLike;

/// Shape of a hybrid dp × pp × Tesseract arrangement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HybridShape {
    /// Data-parallel degree.
    pub dp: usize,
    /// Pipeline-parallel degree (number of stages).
    pub pp: usize,
    /// Tensor-parallel (Tesseract) grid of each module.
    pub grid: GridShape,
}

/// A rank's position in the hybrid arrangement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HybridCoords {
    pub dp_idx: usize,
    pub pp_idx: usize,
    /// Offset within the Tesseract module; decode with
    /// `GridShape::coords_of`.
    pub tess_offset: usize,
}

impl HybridShape {
    /// Builds the shape, rejecting degenerate degrees instead of panicking
    /// (the planner enumerates `dp × pp` factorizations and needs cheap
    /// rejection).
    pub fn try_new(dp: usize, pp: usize, grid: GridShape) -> Result<Self, ShapeError> {
        if dp == 0 || pp == 0 {
            return Err(ShapeError::NonPositive { what: "hybrid dp and pp" });
        }
        Ok(Self { dp, pp, grid })
    }

    pub fn new(dp: usize, pp: usize, grid: GridShape) -> Self {
        Self::try_new(dp, pp, grid).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checks that the arrangement consumes exactly `world` ranks.
    pub fn check_world(&self, world: usize) -> Result<(), ShapeError> {
        if self.total() != world {
            return Err(ShapeError::Capacity {
                what: format!(
                    "hybrid dp={} x pp={} x [{2},{2},{3}]",
                    self.dp, self.pp, self.grid.q, self.grid.d
                ),
                needed: self.total(),
                available: world,
            });
        }
        Ok(())
    }

    /// Checks that `pp` evenly carves a `layers`-deep stack and returns the
    /// per-stage depth.
    pub fn check_carve(&self, layers: usize) -> Result<usize, ShapeError> {
        if layers % self.pp != 0 {
            return Err(ShapeError::Indivisible {
                what: "layers",
                value: layers,
                by: "pp",
                divisor: self.pp,
            });
        }
        Ok(layers / self.pp)
    }

    /// The paper's Figure 6 example: dp = 2, pp = 2, Tesseract `[2, 2, 2]`
    /// → 32 GPUs.
    pub fn figure6() -> Self {
        Self::new(2, 2, GridShape::new(2, 2))
    }

    /// Total GPU count `dp · pp · q²·d`.
    pub fn total(&self) -> usize {
        self.dp * self.pp * self.grid.size()
    }

    /// The named-axis mesh underlying the whole hybrid world: the Tesseract
    /// axes innermost (so modules are contiguous), `pp` next (stages of one
    /// replica adjacent), `dp` outermost.
    pub fn mesh(&self) -> Mesh {
        Mesh::new(
            0,
            vec![
                MeshAxis::new("dp", self.dp),
                MeshAxis::new("pp", self.pp),
                MeshAxis::new("depth", self.grid.d),
                MeshAxis::new("row", self.grid.q),
                MeshAxis::new("col", self.grid.q),
            ],
        )
    }

    pub fn coords_of(&self, rank: usize) -> HybridCoords {
        assert!(rank < self.total(), "rank {rank} out of hybrid world {self:?}");
        let c = self.mesh().coords_of(rank);
        HybridCoords {
            dp_idx: c[0],
            pp_idx: c[1],
            tess_offset: self.grid.offset_of(c[3], c[4], c[2]),
        }
    }

    pub fn rank_of(&self, c: HybridCoords) -> usize {
        let (i, j, k) = self.grid.coords_of(c.tess_offset);
        self.mesh().rank_of(&[c.dp_idx, c.pp_idx, k, i, j])
    }

    /// First rank of the Tesseract module at `(dp_idx, pp_idx)`.
    pub fn module_base(&self, dp_idx: usize, pp_idx: usize) -> usize {
        self.mesh().rank_of(&[dp_idx, pp_idx, 0, 0, 0])
    }

    /// Ranks holding the same Tesseract position across data-parallel
    /// replicas at one pipeline stage — the gradient all-reduce group: the
    /// mesh fiber along the `"dp"` axis.
    pub fn dp_group_ranks(&self, pp_idx: usize, tess_offset: usize) -> Vec<usize> {
        let (i, j, k) = self.grid.coords_of(tess_offset);
        self.mesh().fiber_ranks("dp", &[0, pp_idx, k, i, j])
    }

    /// Carves pipeline stage `pp_idx`'s contiguous slice out of the full
    /// `cfg.layers`-deep Transformer stack, as a [`Sequential`] of layer
    /// modules on `grid`. Layer `l` of the *global* stack keeps its global
    /// parameter ids (`l · PARAM_IDS_PER_LAYER`), so the carved stages of a
    /// pipeline jointly hold exactly the weights of the monolithic model.
    /// Returns the stage module and the per-stage config
    /// (`layers = cfg.layers / pp`).
    pub fn carve_stage<T: TensorLike + Payload>(
        &self,
        ctx: &RankCtx,
        grid: &TesseractGrid,
        pp_idx: usize,
        cfg: TransformerConfig,
        with_bias: bool,
        seed: u64,
    ) -> (Sequential<T>, TransformerConfig) {
        assert!(pp_idx < self.pp, "stage {pp_idx} out of {} stages", self.pp);
        let layers_per_stage = self
            .check_carve(cfg.layers)
            .unwrap_or_else(|e| panic!("pp must divide the layer count: {e}"));
        let stage_cfg = TransformerConfig { layers: layers_per_stage, ..cfg };
        let first = pp_idx * layers_per_stage;
        let mut stage = Sequential::new();
        for l in first..first + layers_per_stage {
            stage.push_boxed(Box::new(TesseractTransformerLayer::new(
                ctx,
                grid,
                stage_cfg,
                with_bias,
                seed,
                l as u64 * PARAM_IDS_PER_LAYER,
            )));
        }
        (stage, stage_cfg)
    }

    /// Renders the Figure-6-style arrangement map.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "hybrid arrangement: dp={} x pp={} x tesseract [q={}, q={}, d={}] = {} GPUs\n",
            self.dp,
            self.pp,
            self.grid.q,
            self.grid.q,
            self.grid.d,
            self.total()
        ));
        for dp_idx in 0..self.dp {
            for pp_idx in 0..self.pp {
                let base = self.module_base(dp_idx, pp_idx);
                out.push_str(&format!(
                    "  replica {dp_idx}, stage {pp_idx}: ranks {base}..{}\n",
                    base + self.grid.size()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_has_32_gpus() {
        // §3.4: "The number of total GPU involved will be 32 equals to data
        // parallel size times pipeline parallel size times tesseract depth
        // times square of tesseract dimension."
        assert_eq!(HybridShape::figure6().total(), 32);
    }

    #[test]
    fn coords_round_trip() {
        let s = HybridShape::new(2, 3, GridShape::new(2, 1));
        for rank in 0..s.total() {
            assert_eq!(s.rank_of(s.coords_of(rank)), rank);
        }
    }

    #[test]
    fn modules_are_contiguous() {
        let s = HybridShape::figure6();
        let base = s.module_base(1, 0);
        for off in 0..8 {
            let c = s.coords_of(base + off);
            assert_eq!((c.dp_idx, c.pp_idx, c.tess_offset), (1, 0, off));
        }
    }

    #[test]
    fn dp_groups_stride_over_replicas() {
        let s = HybridShape::figure6(); // module size 8, pp 2.
        assert_eq!(s.dp_group_ranks(0, 3), vec![3, 19]);
        assert_eq!(s.dp_group_ranks(1, 0), vec![8, 24]);
    }

    #[test]
    fn try_new_and_checks_report_descriptive_errors() {
        assert_eq!(
            HybridShape::try_new(0, 2, GridShape::new(2, 1)).unwrap_err().to_string(),
            "hybrid dp and pp must be positive"
        );
        let s = HybridShape::figure6(); // dp=2, pp=2, [2,2,2] = 32 ranks.
        assert_eq!(s.check_world(32), Ok(()));
        assert_eq!(
            s.check_world(16).unwrap_err().to_string(),
            "hybrid dp=2 x pp=2 x [2,2,2] needs 32 ranks but 16 are available"
        );
        assert_eq!(s.check_carve(8), Ok(4));
        assert_eq!(s.check_carve(6), Ok(3));
        assert_eq!(s.check_carve(7).unwrap_err().to_string(), "layers 7 not divisible by pp = 2");
    }

    #[test]
    fn describe_mentions_every_module() {
        let s = HybridShape::figure6();
        let d = s.describe();
        assert!(d.contains("32 GPUs"));
        assert!(d.contains("replica 1, stage 1"));
    }
}
