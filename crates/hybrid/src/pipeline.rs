//! Pipeline parallelism (paper §3.4): GPipe-style microbatched schedule
//! between Tesseract modules.
//!
//! Each pipeline stage hosts a contiguous slice of the Transformer stack on
//! its own Tesseract grid. A step runs all microbatch forwards (activations
//! flow stage → stage through point-to-point sends between corresponding
//! ranks), then all backwards in reverse microbatch order — which is
//! exactly the order the layers' LIFO activation caches expect. The
//! simulated clocks naturally expose the pipeline bubble: a stage's `recv`
//! cannot complete before the sender produced the tensor.

use std::sync::Arc;

use tesseract_comm::{CommGroup, Payload, RankCtx};
use tesseract_core::{Module, TesseractGrid};
use tesseract_tensor::TensorLike;

const TAG_FWD: u64 = 0;
const TAG_BWD: u64 = 1;

/// One rank's handle on its pipeline position.
pub struct PipelineStage {
    pub pp: usize,
    pub pp_idx: usize,
    /// Pair group `[prev_peer, me]` (absent on the first stage).
    prev: Option<CommGroup>,
    /// Pair group `[me, next_peer]` (absent on the last stage).
    next: Option<CommGroup>,
}

impl PipelineStage {
    /// `prev_peer` / `next_peer` are the global ranks holding the same
    /// Tesseract position in the adjacent stages.
    pub fn new(
        ctx: &RankCtx,
        pp: usize,
        pp_idx: usize,
        prev_peer: Option<usize>,
        next_peer: Option<usize>,
    ) -> Self {
        assert_eq!(pp_idx == 0, prev_peer.is_none(), "first stage has no predecessor");
        assert_eq!(pp_idx == pp - 1, next_peer.is_none(), "last stage has no successor");
        let prev = prev_peer.map(|p| ctx.group("pipe", vec![p, ctx.rank]));
        let next = next_peer.map(|n| ctx.group("pipe", vec![ctx.rank, n]));
        Self { pp, pp_idx, prev, next }
    }

    pub fn is_first(&self) -> bool {
        self.pp_idx == 0
    }

    pub fn is_last(&self) -> bool {
        self.pp_idx == self.pp - 1
    }

    pub fn send_forward<P: Payload>(&self, ctx: &mut RankCtx, activation: P) {
        self.next
            .as_ref()
            .expect("last stage cannot send forward")
            .send(ctx, 1, TAG_FWD, activation);
    }

    pub fn recv_forward<P: Payload>(&self, ctx: &mut RankCtx) -> P {
        self.prev.as_ref().expect("first stage cannot recv forward").recv(ctx, 0, TAG_FWD)
    }

    pub fn send_backward<P: Payload>(&self, ctx: &mut RankCtx, grad: P) {
        self.prev.as_ref().expect("first stage cannot send backward").send(ctx, 0, TAG_BWD, grad);
    }

    pub fn recv_backward<P: Payload>(&self, ctx: &mut RankCtx) -> P {
        self.next.as_ref().expect("last stage cannot recv backward").recv(ctx, 1, TAG_BWD)
    }
}

/// Runs one GPipe step: all microbatch forwards, then all backwards in
/// reverse order.
///
/// * `inputs(m)` — the stage-0 input for microbatch `m` (ignored elsewhere).
/// * `forward(ctx, x)` — this stage's slice of the model.
/// * `loss_grad(ctx, y, m)` — on the *last* stage, converts output `y` of
///   microbatch `m` into the initial gradient (ignored elsewhere).
/// * `backward(ctx, dy)` — this stage's backward; returns `dX`.
///
/// Returns the last stage's outputs, in microbatch order (empty elsewhere).
#[allow(clippy::too_many_arguments)]
pub fn gpipe_step<P, Fi, Ff, Fl, Fb>(
    stage: &PipelineStage,
    ctx: &mut RankCtx,
    microbatches: usize,
    mut inputs: Fi,
    mut forward: Ff,
    mut loss_grad: Fl,
    mut backward: Fb,
) -> Vec<P>
where
    P: Payload,
    Fi: FnMut(usize) -> P,
    Ff: FnMut(&mut RankCtx, P) -> P,
    Fl: FnMut(&mut RankCtx, &P, usize) -> P,
    Fb: FnMut(&mut RankCtx, P) -> P,
{
    assert!(microbatches >= 1);
    let mut outputs = Vec::new();
    for m in 0..microbatches {
        let x = if stage.is_first() { inputs(m) } else { stage.recv_forward(ctx) };
        let y = forward(ctx, x);
        if stage.is_last() {
            outputs.push(y);
        } else {
            stage.send_forward(ctx, y);
        }
    }
    for m in (0..microbatches).rev() {
        let dy =
            if stage.is_last() { loss_grad(ctx, &outputs[m], m) } else { stage.recv_backward(ctx) };
        let dx = backward(ctx, dy);
        if !stage.is_first() {
            stage.send_backward(ctx, dx);
        }
    }
    outputs
}

/// [`gpipe_step`] specialized to a [`Module`] stage slice on a Tesseract
/// grid: all microbatch forwards push onto the module's activation tapes,
/// then all backwards pop them in reverse order — the schedule the tapes'
/// LIFO ordering exists for.
///
/// * `inputs(m)` — the stage-0 input for microbatch `m` (ignored elsewhere).
/// * `loss_grad(ctx, y, m)` — on the *last* stage, converts output `y` of
///   microbatch `m` into the initial gradient (ignored elsewhere).
///
/// Returns the last stage's outputs, in microbatch order (empty elsewhere).
///
/// Activations flow between stages as `Arc<T>`: within a simulated node the
/// point-to-point send hands the receiver a reference to the same buffer
/// (the wire cost is still charged on the virtual clocks), so no microbatch
/// activation is ever deep-copied by the schedule itself.
pub fn gpipe_step_module<T>(
    stage: &PipelineStage,
    grid: &TesseractGrid,
    ctx: &mut RankCtx,
    model: &mut dyn Module<T>,
    microbatches: usize,
    mut inputs: impl FnMut(usize) -> T,
    mut loss_grad: impl FnMut(&mut RankCtx, &T, usize) -> T,
) -> Vec<Arc<T>>
where
    T: TensorLike + Payload,
{
    assert!(microbatches >= 1);
    let mut outputs: Vec<Arc<T>> = Vec::new();
    for m in 0..microbatches {
        let x: Arc<T> =
            if stage.is_first() { Arc::new(inputs(m)) } else { stage.recv_forward(ctx) };
        let y = ctx.traced("stage", "fwd", |ctx| model.forward(grid, ctx, &x));
        if stage.is_last() {
            outputs.push(y);
        } else {
            stage.send_forward(ctx, y);
        }
    }
    for m in (0..microbatches).rev() {
        let dy: Arc<T> = if stage.is_last() {
            Arc::new(loss_grad(ctx, &outputs[m], m))
        } else {
            stage.recv_backward(ctx)
        };
        let dx = ctx.traced("stage", "bwd", |ctx| model.backward(grid, ctx, &dy));
        if !stage.is_first() {
            stage.send_backward(ctx, dx);
        }
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesseract_comm::Cluster;
    use tesseract_tensor::{DenseTensor, Matrix, TensorLike};

    /// Two single-rank stages computing y = (x·2)·3 with gradient flowing
    /// back as dy = 1 → dx should be 6 at stage 0.
    #[test]
    fn two_stage_pipeline_matches_serial_composition() {
        let out = Cluster::a100(2).run(|ctx| {
            let (prev, next) = if ctx.rank == 0 { (None, Some(1)) } else { (Some(0), None) };
            let stage = PipelineStage::new(ctx, 2, ctx.rank, prev, next);
            let factor = if ctx.rank == 0 { 2.0f32 } else { 3.0 };
            let mut received_dx = Vec::new();
            let outputs = gpipe_step::<DenseTensor, _, _, _, _>(
                &stage,
                ctx,
                3,
                |m| DenseTensor::from_matrix(Matrix::full(1, 1, m as f32 + 1.0)),
                |ctx, x| x.scale(factor, &mut ctx.meter),
                |_ctx, _y, _m| DenseTensor::from_matrix(Matrix::full(1, 1, 1.0)),
                |ctx, dy| {
                    let dx = dy.scale(factor, &mut ctx.meter);
                    received_dx.push(dx.matrix()[(0, 0)]);
                    dx
                },
            );
            let outs: Vec<f32> = outputs.iter().map(|o| o.matrix()[(0, 0)]).collect();
            (outs, received_dx)
        });
        // Last stage sees 1·2·3, 2·2·3, 3·2·3.
        assert_eq!(out.results[1].0, vec![6.0, 12.0, 18.0]);
        assert!(out.results[0].0.is_empty());
        // Backward: dy=1 → stage1 dx=3 → stage0 dx=3·2=6 for each microbatch.
        assert_eq!(out.results[1].1, vec![3.0, 3.0, 3.0]);
        assert_eq!(out.results[0].1, vec![6.0, 6.0, 6.0]);
    }

    /// The receiver's virtual clock must lag the sender's: the pipeline
    /// bubble exists in simulated time.
    #[test]
    fn pipeline_bubble_appears_in_virtual_time() {
        let out = Cluster::a100(2).run(|ctx| {
            let (prev, next) = if ctx.rank == 0 { (None, Some(1)) } else { (Some(0), None) };
            let stage = PipelineStage::new(ctx, 2, ctx.rank, prev, next);
            let _ = gpipe_step::<DenseTensor, _, _, _, _>(
                &stage,
                ctx,
                2,
                |_| DenseTensor::from_matrix(Matrix::full(64, 64, 1.0)),
                |ctx, x| x.matmul(&x, &mut ctx.meter),
                |_ctx, y, _| y.clone(),
                |ctx, dy| dy.scale(1.0, &mut ctx.meter),
            );
            ctx.flush_compute();
            ctx.clock()
        });
        assert!(out.results[1] > 0.0);
        // Stage 1 cannot have finished before stage 0 produced anything.
        assert!(out.results[1] >= out.results[0] * 0.5);
    }

    /// Three stages, one microbatch: data flows through the whole chain.
    #[test]
    fn three_stage_chain() {
        let out = Cluster::a100(3).run(|ctx| {
            let prev = (ctx.rank > 0).then(|| ctx.rank - 1);
            let next = (ctx.rank < 2).then(|| ctx.rank + 1);
            let stage = PipelineStage::new(ctx, 3, ctx.rank, prev, next);
            let outputs = gpipe_step::<DenseTensor, _, _, _, _>(
                &stage,
                ctx,
                1,
                |_| DenseTensor::from_matrix(Matrix::full(1, 1, 1.0)),
                |ctx, x| {
                    let one = DenseTensor::from_matrix(Matrix::full(1, 1, 1.0));
                    x.add(&one, &mut ctx.meter)
                },
                |_ctx, y, _| y.clone(),
                |ctx, dy| dy.scale(1.0, &mut ctx.meter),
            );
            outputs.first().map(|o| o.matrix()[(0, 0)])
        });
        assert_eq!(out.results[2], Some(4.0)); // 1 + 1 + 1 + 1
        assert_eq!(out.results[0], None);
    }
}
