//! # tesseract-hybrid
//!
//! Hybrid parallelism (paper §3.4, Figure 6): Tesseract tensor parallelism
//! composed with data parallelism (gradient all-reduce across replicas) and
//! GPipe-style pipeline parallelism (microbatched stage-to-stage
//! activations), with the Figure-6 rank mapping
//! `total = dp · pp · q²·d`.

pub mod data_parallel;
pub mod engine;
pub mod mapping;
pub mod pipeline;

pub use data_parallel::DataParallel;
pub use engine::HybridTransformer;
pub use mapping::{HybridCoords, HybridShape};
pub use pipeline::{gpipe_step, PipelineStage};
