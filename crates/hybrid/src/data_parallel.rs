//! Data parallelism on top of Tesseract (paper §3.4).
//!
//! Each data-parallel replica runs the same model on a disjoint slice of the
//! global batch; after backward, gradients are all-reduced across replicas
//! and averaged, exactly like PyTorch DDP over NCCL.

use tesseract_comm::{CommGroup, Payload, RankCtx};
use tesseract_core::module::{Module, ParamRef};
use tesseract_tensor::TensorLike;

/// One rank's handle on its data-parallel gradient-sync group (ranks that
/// hold the same model shard in different replicas).
pub struct DataParallel {
    pub group: CommGroup,
    pub replicas: usize,
}

impl DataParallel {
    pub fn new(ctx: &RankCtx, ranks: Vec<usize>) -> Self {
        let group = ctx.group("dp.grad", ranks);
        Self { replicas: group.size(), group }
    }

    /// All-reduces and averages every gradient the model exposes. Call once
    /// per step, after backward and before the optimizer.
    pub fn sync_gradients<T: TensorLike + Payload, G>(
        &self,
        ctx: &mut RankCtx,
        model: &mut dyn Module<T, G>,
    ) {
        self.sync_gradient_params::<T>(ctx, |f| model.visit_params(f));
    }

    /// Closure-based entry point for parameter sets that are not a
    /// [`Module`] (unit tests, ad-hoc tensors).
    pub fn sync_gradient_params<T: TensorLike + Payload>(
        &self,
        ctx: &mut RankCtx,
        visit: impl FnOnce(&mut dyn FnMut(ParamRef<'_, T>)),
    ) {
        let inv = 1.0 / self.replicas as f32;
        let group = &self.group;
        // SPMD: replicas expose parameters in identical order, so the
        // per-parameter all-reduces line up. Each gradient is moved into the
        // reduction (a placeholder takes its slot) so no rank clones its own
        // contribution; the combined sum comes back shared.
        let mut sync = |pr: ParamRef<'_, T>| {
            let g = std::mem::replace(pr.grad, T::zeros(1, 1));
            let summed = group.all_reduce_shared(ctx, g);
            *pr.grad = summed.scale(inv, &mut ctx.meter);
        };
        visit(&mut sync);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesseract_comm::Cluster;
    use tesseract_tensor::{DenseTensor, Matrix};

    #[test]
    fn gradients_are_averaged_across_replicas() {
        let out = Cluster::a100(2).run(|ctx| {
            let dp = DataParallel::new(ctx, vec![0, 1]);
            let mut w = DenseTensor::from_matrix(Matrix::full(2, 2, 0.0));
            let mut g = DenseTensor::from_matrix(Matrix::full(2, 2, (ctx.rank as f32 + 1.0) * 2.0));
            dp.sync_gradient_params::<DenseTensor>(ctx, |f| {
                f(ParamRef { weight: &mut w, grad: &mut g });
            });
            g.matrix()[(0, 0)]
        });
        // (2 + 4) / 2 = 3 on both replicas.
        assert_eq!(out.results, vec![3.0, 3.0]);
    }

    #[test]
    fn sync_handles_multiple_params_in_order() {
        let out = Cluster::a100(2).run(|ctx| {
            let dp = DataParallel::new(ctx, vec![0, 1]);
            let mut w1 = DenseTensor::from_matrix(Matrix::zeros(1, 1));
            let mut g1 = DenseTensor::from_matrix(Matrix::full(1, 1, ctx.rank as f32));
            let mut w2 = DenseTensor::from_matrix(Matrix::zeros(1, 2));
            let mut g2 = DenseTensor::from_matrix(Matrix::full(1, 2, 10.0 * ctx.rank as f32));
            dp.sync_gradient_params::<DenseTensor>(ctx, |f| {
                f(ParamRef { weight: &mut w1, grad: &mut g1 });
                f(ParamRef { weight: &mut w2, grad: &mut g2 });
            });
            (g1.matrix()[(0, 0)], g2.matrix()[(0, 1)])
        });
        assert_eq!(out.results, vec![(0.5, 5.0), (0.5, 5.0)]);
    }
}
