//! The combined dp × pp × Tesseract engine (paper §3.4, Figure 6).
//!
//! Each rank determines its (replica, stage, grid position) from
//! [`HybridShape`], builds its slice of the Transformer stack on its
//! module's Tesseract grid, and exposes a GPipe `train_step` that finishes
//! with the data-parallel gradient all-reduce.

use tesseract_comm::{Payload, RankCtx};
use tesseract_core::layers::linear::ParamRef;
use tesseract_core::layers::PARAM_IDS_PER_LAYER;
use tesseract_core::{TesseractGrid, TesseractTransformer, TransformerConfig};
use tesseract_tensor::TensorLike;

use crate::data_parallel::DataParallel;
use crate::mapping::{HybridCoords, HybridShape};
use crate::pipeline::PipelineStage;

/// One rank's slice of a hybrid-parallel Transformer.
pub struct HybridTransformer<T> {
    pub shape: HybridShape,
    pub coords: HybridCoords,
    pub grid: TesseractGrid,
    pub stage: PipelineStage,
    pub dp: DataParallel,
    /// This pipeline stage's contiguous slice of the layer stack.
    pub model: TesseractTransformer<T>,
    /// Configuration of one microbatch (`cfg.batch` = microbatch size).
    pub cfg: TransformerConfig,
}

impl<T: TensorLike + Payload> HybridTransformer<T> {
    /// `cfg.layers` is the *total* stack depth (must divide by `shape.pp`);
    /// `cfg.batch` is the per-microbatch batch size.
    pub fn new(
        ctx: &RankCtx,
        shape: HybridShape,
        cfg: TransformerConfig,
        with_bias: bool,
        seed: u64,
    ) -> Self {
        assert_eq!(ctx.world, shape.total(), "world size must match hybrid shape");
        assert_eq!(cfg.layers % shape.pp, 0, "pp must divide the layer count");
        let coords = shape.coords_of(ctx.rank);
        let base = shape.module_base(coords.dp_idx, coords.pp_idx);
        let grid = TesseractGrid::new(ctx, shape.grid, base);

        let layers_per_stage = cfg.layers / shape.pp;
        let stage_cfg = TransformerConfig { layers: layers_per_stage, ..cfg };
        let base_param_id = (coords.pp_idx * layers_per_stage) as u64 * PARAM_IDS_PER_LAYER;
        let model = TesseractTransformer::new(ctx, &grid, stage_cfg, with_bias, seed, base_param_id);

        let prev_peer = (coords.pp_idx > 0)
            .then(|| shape.module_base(coords.dp_idx, coords.pp_idx - 1) + coords.tess_offset);
        let next_peer = (coords.pp_idx + 1 < shape.pp)
            .then(|| shape.module_base(coords.dp_idx, coords.pp_idx + 1) + coords.tess_offset);
        let stage = PipelineStage::new(ctx, shape.pp, coords.pp_idx, prev_peer, next_peer);

        let dp = DataParallel::new(ctx, shape.dp_group_ranks(coords.pp_idx, coords.tess_offset));

        Self { shape, coords, grid, stage, dp, model, cfg: stage_cfg }
    }

    /// One GPipe training step over `microbatches` inputs, followed by the
    /// data-parallel gradient sync. `inputs(m)` supplies microbatch `m`'s
    /// local activation block on the first stage; `loss_grad` converts the
    /// last stage's output into the initial gradient. Returns last-stage
    /// outputs (empty on other stages).
    pub fn train_step(
        &mut self,
        ctx: &mut RankCtx,
        microbatches: usize,
        mut inputs: impl FnMut(usize) -> T,
        mut loss_grad: impl FnMut(&mut RankCtx, &T, usize) -> T,
    ) -> Vec<T> {
        // Same schedule as `gpipe_step`, inlined because forward and
        // backward both need `&mut self.model`.
        let mut outputs: Vec<T> = Vec::new();
        for m in 0..microbatches {
            let x = if self.stage.is_first() { inputs(m) } else { self.stage.recv_forward(ctx) };
            let y = self.model.forward(&self.grid, ctx, &x);
            if self.stage.is_last() {
                outputs.push(y);
            } else {
                self.stage.send_forward(ctx, y);
            }
        }
        for m in (0..microbatches).rev() {
            let dy = if self.stage.is_last() {
                loss_grad(ctx, &outputs[m], m)
            } else {
                self.stage.recv_backward(ctx)
            };
            let dx = self.model.backward(&self.grid, ctx, &dy);
            if !self.stage.is_first() {
                self.stage.send_backward(ctx, dx);
            }
        }
        if self.shape.dp > 1 {
            let dp = &self.dp;
            let model = &mut self.model;
            dp.sync_gradients::<T>(ctx, |f| model.visit_params(f));
        }
        outputs
    }

    pub fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_, T>)) {
        self.model.visit_params(f);
    }

    pub fn zero_grad(&mut self) {
        self.model.zero_grad();
    }
}
