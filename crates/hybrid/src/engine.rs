//! The combined dp × pp × Tesseract engine (paper §3.4, Figure 6).
//!
//! Each rank determines its (replica, stage, grid position) from
//! [`HybridShape`], carves its pipeline stage's slice of the Transformer
//! stack (a [`Sequential`] of layer modules, via
//! [`HybridShape::carve_stage`]) on its module's Tesseract grid, and
//! exposes a GPipe `train_step` that finishes with the data-parallel
//! gradient all-reduce.

use std::sync::Arc;

use tesseract_comm::{Payload, RankCtx};
use tesseract_core::module::{Module, ParamRef, Sequential};
use tesseract_core::{TesseractGrid, TransformerConfig};
use tesseract_tensor::TensorLike;

use crate::data_parallel::DataParallel;
use crate::mapping::{HybridCoords, HybridShape};
use crate::pipeline::{gpipe_step_module, PipelineStage};

/// One rank's slice of a hybrid-parallel Transformer.
pub struct HybridTransformer<T> {
    pub shape: HybridShape,
    pub coords: HybridCoords,
    pub grid: TesseractGrid,
    pub stage: PipelineStage,
    pub dp: DataParallel,
    /// This pipeline stage's contiguous slice of the layer stack.
    pub model: Sequential<T>,
    /// Configuration of one microbatch (`cfg.batch` = microbatch size).
    pub cfg: TransformerConfig,
}

impl<T: TensorLike + Payload> HybridTransformer<T> {
    /// `cfg.layers` is the *total* stack depth (must divide by `shape.pp`);
    /// `cfg.batch` is the per-microbatch batch size.
    pub fn new(
        ctx: &RankCtx,
        shape: HybridShape,
        cfg: TransformerConfig,
        with_bias: bool,
        seed: u64,
    ) -> Self {
        shape
            .check_world(ctx.world)
            .unwrap_or_else(|e| panic!("world size must match hybrid shape: {e}"));
        let coords = shape.coords_of(ctx.rank);
        let base = shape.module_base(coords.dp_idx, coords.pp_idx);
        let grid = TesseractGrid::new(ctx, shape.grid, base);

        let (model, stage_cfg) =
            shape.carve_stage::<T>(ctx, &grid, coords.pp_idx, cfg, with_bias, seed);

        let prev_peer = (coords.pp_idx > 0)
            .then(|| shape.module_base(coords.dp_idx, coords.pp_idx - 1) + coords.tess_offset);
        let next_peer = (coords.pp_idx + 1 < shape.pp)
            .then(|| shape.module_base(coords.dp_idx, coords.pp_idx + 1) + coords.tess_offset);
        let stage = PipelineStage::new(ctx, shape.pp, coords.pp_idx, prev_peer, next_peer);

        let dp = DataParallel::new(ctx, shape.dp_group_ranks(coords.pp_idx, coords.tess_offset));

        Self { shape, coords, grid, stage, dp, model, cfg: stage_cfg }
    }

    /// One GPipe training step over `microbatches` inputs, followed by the
    /// data-parallel gradient sync. `inputs(m)` supplies microbatch `m`'s
    /// local activation block on the first stage; `loss_grad` converts the
    /// last stage's output into the initial gradient. Returns last-stage
    /// outputs (empty on other stages).
    pub fn train_step(
        &mut self,
        ctx: &mut RankCtx,
        microbatches: usize,
        inputs: impl FnMut(usize) -> T,
        loss_grad: impl FnMut(&mut RankCtx, &T, usize) -> T,
    ) -> Vec<Arc<T>> {
        let outputs = gpipe_step_module(
            &self.stage,
            &self.grid,
            ctx,
            &mut self.model,
            microbatches,
            inputs,
            loss_grad,
        );
        if self.shape.dp > 1 {
            self.dp.sync_gradients(ctx, &mut self.model);
        }
        outputs
    }

    pub fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_, T>)) {
        self.model.visit_params(f);
    }

    pub fn zero_grad(&mut self) {
        self.model.zero_grad();
    }
}
