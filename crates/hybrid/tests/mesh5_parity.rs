//! Fiber parity on the 5-axis hybrid mesh `[dp, pp, depth, row, col]`.
//!
//! `mesh_parity` (crates/comm) pins the 3-axis Tesseract fibers; this suite
//! pins the two axes the hybrid arrangement adds — `dp` and `pp` — against
//! the closed-form stride arithmetic of paper §3.4
//! (`rank = ((dp_idx·pp + pp_idx)·q²d) + k·q² + i·q + j`), including a mesh
//! based at a nonzero rank, and exercises [`Mesh::fiber_group`] as a live
//! [`CommGroup`] on the simulated cluster.

use tesseract_comm::{Cluster, Mesh, MeshAxis};
use tesseract_core::GridShape;
use tesseract_hybrid::HybridShape;
use tesseract_tensor::{DenseTensor, Matrix};

/// Closed-form rank of §3.4's layout.
fn rank_of(shape: &HybridShape, dp: usize, pp: usize, k: usize, i: usize, j: usize) -> usize {
    let q = shape.grid.q;
    ((dp * shape.pp + pp) * shape.grid.size()) + k * q * q + i * q + j
}

#[test]
fn five_axis_strides_match_the_closed_form() {
    let shape = HybridShape::figure6(); // dp=2, pp=2, [2,2,2] = 32 ranks.
    let mesh = shape.mesh();
    let q = shape.grid.q;
    assert_eq!(mesh.stride("col"), 1);
    assert_eq!(mesh.stride("row"), q);
    assert_eq!(mesh.stride("depth"), q * q);
    assert_eq!(mesh.stride("pp"), shape.grid.size());
    assert_eq!(mesh.stride("dp"), shape.pp * shape.grid.size());
    for dp in 0..shape.dp {
        for pp in 0..shape.pp {
            for k in 0..shape.grid.d {
                for i in 0..q {
                    for j in 0..q {
                        assert_eq!(
                            mesh.rank_of(&[dp, pp, k, i, j]),
                            rank_of(&shape, dp, pp, k, i, j)
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn dp_and_pp_fibers_stride_over_replicas_and_stages() {
    let shape = HybridShape::new(3, 2, GridShape::new(2, 2)); // 3·2·8 = 48.
    let mesh = shape.mesh();
    // dp fiber at (·, pp=1, k=1, i=0, j=1): the gradient all-reduce group —
    // one member per replica, pp·q²d = 16 apart.
    let at = [0usize, 1, 1, 0, 1];
    let expected: Vec<usize> = (0..shape.dp).map(|r| rank_of(&shape, r, 1, 1, 0, 1)).collect();
    assert_eq!(mesh.fiber_ranks("dp", &at), expected);
    assert_eq!(expected, vec![13, 29, 45]);
    // ... and it agrees with the engine's own dp-group helper (which pins
    // the tesseract offset instead of raw coords).
    let tess_offset = shape.grid.offset_of(0, 1, 1);
    assert_eq!(shape.dp_group_ranks(1, tess_offset), expected);
    // pp fiber at the same point: one member per pipeline stage of replica
    // 0, q²d = 8 apart.
    let expected_pp: Vec<usize> = (0..shape.pp).map(|s| rank_of(&shape, 0, s, 1, 0, 1)).collect();
    assert_eq!(mesh.fiber_ranks("pp", &at), expected_pp);
    assert_eq!(expected_pp, vec![5, 13]);
}

#[test]
fn nonzero_base_offsets_every_fiber() {
    // A Figure-6 world carved out of a larger cluster starting at rank 7:
    // every fiber is the base-0 fiber shifted by 7.
    let axes = |base| {
        Mesh::new(
            base,
            vec![
                MeshAxis::new("dp", 2),
                MeshAxis::new("pp", 2),
                MeshAxis::new("depth", 2),
                MeshAxis::new("row", 2),
                MeshAxis::new("col", 2),
            ],
        )
    };
    let at0 = axes(0);
    let at7 = axes(7);
    assert_eq!(at7.base(), 7);
    for off in 0..at0.size() {
        let coords = at0.coords_of(off);
        assert_eq!(at7.coords_of_rank(off + 7), coords);
        for axis in ["dp", "pp", "depth", "row", "col"] {
            let shifted: Vec<usize> =
                at0.fiber_ranks(axis, &coords).into_iter().map(|r| r + 7).collect();
            assert_eq!(at7.fiber_ranks(axis, &coords), shifted);
        }
    }
}

#[test]
fn fiber_group_builds_live_collective_groups() {
    // Every rank of a Figure-6 world joins its dp fiber and its pp fiber as
    // real CommGroups and all-reduces a rank-valued scalar through each:
    // the sums only come out right if membership and ordering match the
    // closed form on every rank.
    let shape = HybridShape::figure6();
    let out = Cluster::a100(shape.total()).run(move |ctx| {
        let mesh = shape.mesh();
        let dp_group = mesh.fiber_group(ctx, "mesh5.dp", "dp");
        let pp_group = mesh.fiber_group(ctx, "mesh5.pp", "pp");
        let me = DenseTensor::from_matrix(Matrix::full(1, 1, ctx.rank as f32));
        let dp_sum = dp_group.all_reduce(ctx, me.clone());
        let pp_sum = pp_group.all_reduce(ctx, me);
        (
            dp_group.ranks().to_vec(),
            pp_group.ranks().to_vec(),
            dp_sum.matrix().data()[0],
            pp_sum.matrix().data()[0],
        )
    });
    for (rank, (dp_ranks, pp_ranks, dp_sum, pp_sum)) in out.results.iter().enumerate() {
        let coords = shape.mesh().coords_of(rank);
        let want_dp = shape.mesh().fiber_ranks("dp", &coords);
        let want_pp = shape.mesh().fiber_ranks("pp", &coords);
        assert_eq!(*dp_ranks, want_dp, "rank {rank} dp fiber");
        assert_eq!(*pp_ranks, want_pp, "rank {rank} pp fiber");
        assert_eq!(*dp_sum, want_dp.iter().sum::<usize>() as f32, "rank {rank} dp sum");
        assert_eq!(*pp_sum, want_pp.iter().sum::<usize>() as f32, "rank {rank} pp sum");
    }
}
