//! Hybrid-parallel parity: the dp × pp × Tesseract engine must compute the
//! same function and gradients as the serial oracle — Figure 6's
//! arrangement is still "no approximation".

use tesseract_baselines::serial::SerialTransformer;
use tesseract_comm::Cluster;
use tesseract_core::partition::{a_block, combine_c};
use tesseract_core::{GridShape, TransformerConfig};
use tesseract_hybrid::{HybridShape, HybridTransformer};
use tesseract_tensor::{assert_slices_close, DenseTensor, Matrix, Xoshiro256StarStar};

const SEED: u64 = 77;

fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
}

#[test]
fn pipeline_only_matches_serial_stack() {
    // pp = 2 single-rank stages over a 2-layer stack.
    let cfg = TransformerConfig {
        batch: 2,
        seq: 3,
        hidden: 8,
        heads: 2,
        mlp_ratio: 2,
        layers: 2,
        eps: 1e-5,
    };
    let x = random(cfg.rows(), cfg.hidden, 1);
    let dy = random(cfg.rows(), cfg.hidden, 2);
    let mut serial = SerialTransformer::new(cfg, true, SEED, 0);
    let y_ser = serial.forward(&x);
    let _ = serial.backward(&dy);

    let shape = HybridShape::new(1, 2, GridShape::new(1, 1));
    let out = Cluster::a100(2).run(|ctx| {
        let mut engine = HybridTransformer::<DenseTensor>::new(ctx, shape, cfg, true, SEED);
        let x = x.clone();
        let dy = dy.clone();
        let outputs = engine.train_step(
            ctx,
            1,
            |_m| DenseTensor::from_matrix(x.clone()),
            |_ctx, _y, _m| DenseTensor::from_matrix(dy.clone()),
        );
        let mut grads = Vec::new();
        engine.visit_params(&mut |pr| grads.push(pr.grad.clone().into_matrix()));
        (outputs.iter().map(|o| o.matrix().clone()).collect::<Vec<_>>(), grads)
    });
    // Last stage holds the full output (grid is [1,1,1]).
    let (ref outputs, ref stage1_grads) = out.results[1];
    assert_eq!(outputs.len(), 1);
    assert_slices_close(outputs[0].data(), y_ser.data(), 3e-4);

    // Stage 1 holds layer 1's params; compare its attention Wo gradient.
    let mut serial_grads = Vec::new();
    {
        let l = &serial.layers[1];
        serial_grads.push(l.attn.wq.dw.clone());
        let _ = &l;
    }
    // Grad order in visit_params: wqkv (fused), wqkv bias, wo, wo bias, ...
    // The fused wqkv grad's first h columns are Wq's gradient.
    let wq_grad = stage1_grads[0].slice_cols(0, cfg.hidden);
    assert_slices_close(wq_grad.data(), serial_grads[0].data(), 3e-4);
}

#[test]
fn data_parallel_averages_half_batch_gradients() {
    let cfg = TransformerConfig {
        batch: 2, // per replica
        seq: 2,
        hidden: 8,
        heads: 2,
        mlp_ratio: 2,
        layers: 1,
        eps: 1e-5,
    };
    let full_cfg = TransformerConfig { batch: 4, ..cfg };
    let x_full = random(full_cfg.rows(), cfg.hidden, 3);
    let dy_full = random(full_cfg.rows(), cfg.hidden, 4);

    let mut serial = SerialTransformer::new(full_cfg, true, SEED, 0);
    let _ = serial.forward(&x_full);
    let _ = serial.backward(&dy_full);
    let serial_wq = serial.layers[0].attn.wq.dw.clone();

    let shape = HybridShape::new(2, 1, GridShape::new(1, 1));
    let out = Cluster::a100(2).run(|ctx| {
        let mut engine = HybridTransformer::<DenseTensor>::new(ctx, shape, cfg, true, SEED);
        let rows_half = cfg.rows();
        let r0 = ctx.rank * rows_half;
        let x_half = x_full.slice_rows(r0, r0 + rows_half);
        let dy_half = dy_full.slice_rows(r0, r0 + rows_half);
        let _ = engine.train_step(
            ctx,
            1,
            |_m| DenseTensor::from_matrix(x_half.clone()),
            |_ctx, _y, _m| DenseTensor::from_matrix(dy_half.clone()),
        );
        let mut grads = Vec::new();
        engine.visit_params(&mut |pr| grads.push(pr.grad.clone().into_matrix()));
        grads
    });
    // Averaged dp gradient = (g_half0 + g_half1) / 2 = serial_full / 2.
    let wq_dp = out.results[0][0].slice_cols(0, cfg.hidden);
    let mut expected = serial_wq.clone();
    expected.scale_assign(0.5);
    assert_slices_close(wq_dp.data(), expected.data(), 3e-4);
    // Both replicas hold identical synced gradients.
    assert_eq!(out.results[0][0], out.results[1][0]);
}

#[test]
fn figure6_arrangement_matches_serial() {
    // The paper's full Figure 6: dp=2, pp=2, tesseract [2,2,2] → 32 ranks.
    let shape = HybridShape::figure6();
    let cfg = TransformerConfig {
        batch: 4, // per microbatch, divisible by q·d = 4
        seq: 2,
        hidden: 8,
        heads: 2,
        mlp_ratio: 2,
        layers: 2,
        eps: 1e-5,
    };
    // Global batch = dp · microbatch = 8 samples.
    let full_cfg = TransformerConfig { batch: 8, ..cfg };
    let x_full = random(full_cfg.rows(), cfg.hidden, 5);
    let dy_full = random(full_cfg.rows(), cfg.hidden, 6);
    let mut serial = SerialTransformer::new(full_cfg, true, SEED, 0);
    let y_ser = serial.forward(&x_full);
    let _ = serial.backward(&dy_full);

    let grid = shape.grid;
    let out = Cluster::a100(shape.total()).run(|ctx| {
        let mut engine = HybridTransformer::<DenseTensor>::new(ctx, shape, cfg, true, SEED);
        let coords = engine.coords;
        // Replica r sees samples [r·4, r·4+4) → rows [r·8, r·8+8).
        let rows_per_replica = cfg.rows();
        let r0 = coords.dp_idx * rows_per_replica;
        let x_rep = x_full.slice_rows(r0, r0 + rows_per_replica);
        let dy_rep = dy_full.slice_rows(r0, r0 + rows_per_replica);
        let (i, j, k) = engine.grid.coords;
        let x_loc = a_block(&x_rep, grid, i, j, k);
        let dy_loc = a_block(&dy_rep, grid, i, j, k);
        let outputs = engine.train_step(
            ctx,
            1,
            |_m| DenseTensor::from_matrix(x_loc.clone()),
            |_ctx, _y, _m| DenseTensor::from_matrix(dy_loc.clone()),
        );
        let grad0 = {
            let mut g = None;
            engine.visit_params(&mut |pr| {
                if g.is_none() {
                    g = Some(pr.grad.clone().into_matrix());
                }
            });
            g.unwrap()
        };
        (coords, outputs.iter().map(|o| o.matrix().clone()).collect::<Vec<_>>(), grad0)
    });

    // Assemble last-stage outputs of each replica and compare to serial.
    for dp_idx in 0..shape.dp {
        let mut blocks = vec![Matrix::zeros(1, 1); grid.size()];
        for (coords, outputs, _) in &out.results {
            if coords.dp_idx == dp_idx && coords.pp_idx == shape.pp - 1 {
                blocks[coords.tess_offset] = outputs[0].clone();
            }
        }
        let y_rep = combine_c(&blocks, grid);
        let rows = cfg.rows();
        let expected = y_ser.slice_rows(dp_idx * rows, (dp_idx + 1) * rows);
        assert_slices_close(y_rep.data(), expected.data(), 5e-4);
    }

    // Data-parallel sync: the first parameter gradient must be identical
    // across replicas (same stage, same tess offset).
    for pp_idx in 0..shape.pp {
        for off in 0..grid.size() {
            let mut seen: Option<&Matrix> = None;
            for (coords, _, grad) in &out.results {
                if coords.pp_idx == pp_idx && coords.tess_offset == off {
                    if let Some(prev) = seen {
                        assert_eq!(
                            prev, grad,
                            "dp replicas out of sync at stage {pp_idx} off {off}"
                        );
                    }
                    seen = Some(grad);
                }
            }
        }
    }
}
