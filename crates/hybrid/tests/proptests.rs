//! Property-based tests for the hybrid rank mapping.

// Gated behind the `proptest-tests` feature: run with
//     cargo test -p <crate> --features proptest-tests
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use tesseract_core::GridShape;
use tesseract_hybrid::HybridShape;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hybrid_coords_are_a_bijection(dp in 1usize..4, pp in 1usize..4, q in 1usize..3, d in 1usize..3) {
        let shape = HybridShape::new(dp, pp, GridShape::new(q, d));
        let mut seen = std::collections::HashSet::new();
        for rank in 0..shape.total() {
            let c = shape.coords_of(rank);
            prop_assert!(c.dp_idx < dp && c.pp_idx < pp && c.tess_offset < q * q * d);
            prop_assert_eq!(shape.rank_of(c), rank);
            prop_assert!(seen.insert((c.dp_idx, c.pp_idx, c.tess_offset)));
        }
    }

    #[test]
    fn dp_groups_partition_each_stage(dp in 1usize..4, pp in 1usize..4, q in 1usize..3, d in 1usize..3) {
        let shape = HybridShape::new(dp, pp, GridShape::new(q, d));
        for pp_idx in 0..pp {
            let mut covered = std::collections::HashSet::new();
            for off in 0..shape.grid.size() {
                for rank in shape.dp_group_ranks(pp_idx, off) {
                    prop_assert_eq!(shape.coords_of(rank).pp_idx, pp_idx);
                    prop_assert!(covered.insert(rank));
                }
            }
            prop_assert_eq!(covered.len(), dp * shape.grid.size());
        }
    }

    #[test]
    fn module_bases_are_disjoint_and_ordered(dp in 1usize..4, pp in 1usize..4, q in 1usize..3, d in 1usize..3) {
        let shape = HybridShape::new(dp, pp, GridShape::new(q, d));
        let mut prev_end = 0;
        for dp_idx in 0..dp {
            for pp_idx in 0..pp {
                let base = shape.module_base(dp_idx, pp_idx);
                prop_assert_eq!(base, prev_end);
                prev_end = base + shape.grid.size();
            }
        }
        prop_assert_eq!(prev_end, shape.total());
    }
}
