//! The continuous-batching serving engine.
//!
//! ## Request lifecycle
//!
//! `Pending → Active(unprefilled) → Active(decoding) → Done`. A request is
//! assigned to one `(i, k)` **lane** (round-robin by id over the `q·d` row
//! -block owners); the `q` ranks of that lane's row fiber hold its KV cache
//! and activations, sharded by heads/columns exactly like training. At
//! every step boundary the scheduler may **admit** newly-arrived requests
//! (up to `max_lane_requests` concurrent per lane) and **evicts** finished
//! ones, freeing their KV immediately — batch membership changes at step
//! granularity, never mid-request-blocking, which is what keeps the
//! cluster saturated under open-loop load.
//!
//! ## Batching policy
//!
//! Prefill and decode are batched separately (their row shapes differ by
//! orders of magnitude): a lane with any unprefilled admissions runs a
//! **prefill step** over as many of them as fit `max_batch_tokens`
//! (prefill-priority — time-to-first-token is the latency term admission
//! can actually help); otherwise it runs a **decode step** advancing up to
//! `max_batch_tokens` active requests by one token each.
//!
//! ## SPMD determinism
//!
//! Every rank mirrors the *metadata* scheduler for all lanes (arrivals and
//! lengths are in the shared traffic trace; generated token values never
//! influence scheduling). Each step begins with a world barrier, so
//! `ctx.clock()` is bitwise identical on every rank when decisions are
//! taken — all ranks compute the same global plan and execute the same
//! collective sequence, while only touching tensors for their own lane.
//! Lanes with nothing runnable step a zero-row batch to stay in lockstep;
//! when *no* lane is runnable, every rank `idle_until` the next arrival.
//! Latencies are measured on the virtual clock at these synchronized
//! barriers, which makes whole runs — results, reports, traces —
//! reproducible byte for byte.

use std::collections::BTreeMap;
use std::sync::Arc;

use tesseract_comm::{Cluster, Payload, RankCtx, RunConfig, RunOutput};
use tesseract_core::TransformerConfig;
use tesseract_core::{GridShape, InferBatch, InferModel, RequestKv, TesseractGrid};
use tesseract_tensor::TensorLike;

use crate::traffic::RequestSpec;

/// Seed salt separating prompt-content streams from weight-init streams.
const PROMPT_SEED_SALT: u64 = 0x5EED_0F_5E4E_D0D0;

/// Serving-engine parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Model hyperparameters (`batch`/`seq` are training-only and ignored
    /// here; lengths come from the traffic trace).
    pub model: TransformerConfig,
    /// Build layers with biases.
    pub with_bias: bool,
    /// Weight-init seed (prompts derive a salted stream from it).
    pub seed: u64,
    /// Per-lane token budget per step: caps the rows of one prefill batch
    /// and the width of one decode batch.
    pub max_batch_tokens: usize,
    /// Concurrent requests admitted per lane (KV-slot budget).
    pub max_lane_requests: usize,
}

/// Outcome of one request, on the virtual clock. Identical on every rank.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RequestResult {
    pub id: usize,
    /// Lane `(i + k·q)` the request ran on.
    pub lane: usize,
    pub arrival: f64,
    /// Barrier-synchronized time its prefill step completed (the first
    /// output token exists here).
    pub first_token_time: f64,
    /// Barrier-synchronized time its last token completed.
    pub finish_time: f64,
    pub prompt_len: usize,
    pub output_len: usize,
}

impl RequestResult {
    /// End-to-end completion latency.
    pub fn latency(&self) -> f64 {
        self.finish_time - self.arrival
    }

    /// Time to first token.
    pub fn ttft(&self) -> f64 {
        self.first_token_time - self.arrival
    }
}

/// Per-rank outcome of a serving run.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeSummary {
    /// All requests, id-ordered — identical on every rank by construction.
    pub results: Vec<RequestResult>,
    /// Prefill steps this rank's lane executed (mirrors `Meter`).
    pub prefill_steps: u64,
    /// Decode steps this rank's lane executed (mirrors `Meter`).
    pub decode_steps: u64,
    /// This rank's KV-cache high-water mark in bytes (mirrors `Meter`).
    pub kv_peak_bytes: u64,
    /// Global step-boundary count (barriers with at least one busy lane).
    pub steps_total: u64,
}

// ---------------------------------------------------------------------------
// Metadata scheduler (mirrored on every rank)
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq)]
enum ReqState {
    Pending,
    Active { prefilled: bool, generated: usize },
    Done,
}

/// One lane's share of a step.
#[derive(Clone, Debug, PartialEq)]
enum LanePhase {
    Idle,
    Prefill(Vec<usize>),
    Decode(Vec<usize>),
}

/// A global step decision: one phase per lane plus the requests that will
/// finish when the step completes.
#[derive(Clone, Debug)]
struct StepPlan {
    lanes: Vec<LanePhase>,
    finishing: Vec<Vec<usize>>,
}

enum Decision {
    AllDone,
    /// No lane runnable; sleep until this arrival time.
    IdleUntil(f64),
    Step(StepPlan),
}

struct Scheduler {
    specs: Vec<RequestSpec>,
    lane_of: Vec<usize>,
    state: Vec<ReqState>,
    first_token: Vec<f64>,
    finish: Vec<f64>,
    lanes: usize,
    max_lane_requests: usize,
    max_batch_tokens: usize,
    done: usize,
}

impl Scheduler {
    fn new(traffic: &[RequestSpec], lanes: usize, cfg: &ServeConfig) -> Self {
        assert!(cfg.max_batch_tokens >= 1, "max_batch_tokens must be positive");
        assert!(cfg.max_lane_requests >= 1, "max_lane_requests must be positive");
        for (i, spec) in traffic.iter().enumerate() {
            assert_eq!(spec.id, i, "traffic ids must be dense and ordered");
            assert!(spec.output_len >= 1, "requests must produce at least one token");
        }
        assert!(
            traffic.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "traffic must be arrival-sorted"
        );
        Self {
            lane_of: traffic.iter().map(|r| r.id % lanes).collect(),
            state: vec![ReqState::Pending; traffic.len()],
            first_token: vec![0.0; traffic.len()],
            finish: vec![0.0; traffic.len()],
            specs: traffic.to_vec(),
            lanes,
            max_lane_requests: cfg.max_lane_requests,
            max_batch_tokens: cfg.max_batch_tokens,
            done: 0,
        }
    }

    /// Admissions + phase choice for every lane at synchronized time
    /// `now`. Mutates only Pending→Active (admission); step effects apply
    /// in [`Scheduler::complete`].
    fn plan(&mut self, now: f64) -> Decision {
        // Admission: arrival-ordered (traffic order) per lane, bounded by
        // the lane's free KV slots.
        let mut active_per_lane = vec![0usize; self.lanes];
        for id in 0..self.specs.len() {
            if matches!(self.state[id], ReqState::Active { .. }) {
                active_per_lane[self.lane_of[id]] += 1;
            }
        }
        for id in 0..self.specs.len() {
            let lane = self.lane_of[id];
            if self.state[id] == ReqState::Pending
                && self.specs[id].arrival <= now
                && active_per_lane[lane] < self.max_lane_requests
            {
                self.state[id] = ReqState::Active { prefilled: false, generated: 0 };
                active_per_lane[lane] += 1;
            }
        }

        // Phase choice per lane: prefill-priority, then budgeted decode.
        let mut lanes = Vec::with_capacity(self.lanes);
        let mut finishing = Vec::with_capacity(self.lanes);
        let mut any_work = false;
        for lane in 0..self.lanes {
            let unprefilled: Vec<usize> = (0..self.specs.len())
                .filter(|&id| {
                    self.lane_of[id] == lane
                        && self.state[id] == ReqState::Active { prefilled: false, generated: 0 }
                })
                .collect();
            let (phase, fin) = if !unprefilled.is_empty() {
                // Greedy prefix under the token budget; the head request
                // always runs even if its prompt alone exceeds it.
                let mut batch = Vec::new();
                let mut tokens = 0usize;
                for id in unprefilled {
                    let plen = self.specs[id].prompt_len;
                    if batch.is_empty() || tokens + plen <= self.max_batch_tokens {
                        tokens += plen;
                        batch.push(id);
                    }
                }
                let fin: Vec<usize> =
                    batch.iter().copied().filter(|&id| self.specs[id].output_len == 1).collect();
                (LanePhase::Prefill(batch), fin)
            } else {
                let batch: Vec<usize> = (0..self.specs.len())
                    .filter(|&id| {
                        self.lane_of[id] == lane
                            && matches!(self.state[id], ReqState::Active { prefilled: true, .. })
                    })
                    .take(self.max_batch_tokens)
                    .collect();
                if batch.is_empty() {
                    (LanePhase::Idle, Vec::new())
                } else {
                    let fin: Vec<usize> = batch
                        .iter()
                        .copied()
                        .filter(|&id| match self.state[id] {
                            ReqState::Active { generated, .. } => {
                                generated + 1 == self.specs[id].output_len
                            }
                            _ => unreachable!("decode batch holds active requests"),
                        })
                        .collect();
                    (LanePhase::Decode(batch), fin)
                }
            };
            any_work |= phase != LanePhase::Idle;
            lanes.push(phase);
            finishing.push(fin);
        }

        if any_work {
            return Decision::Step(StepPlan { lanes, finishing });
        }
        if self.done == self.specs.len() {
            return Decision::AllDone;
        }
        let next = self
            .specs
            .iter()
            .zip(&self.state)
            .filter(|(_, s)| **s == ReqState::Pending)
            .map(|(r, _)| r.arrival)
            .fold(f64::INFINITY, f64::min);
        assert!(next > now, "unadmitted arrival in the past implies a runnable lane");
        Decision::IdleUntil(next)
    }

    /// Applies a completed step's effects at synchronized time `now`.
    fn complete(&mut self, plan: &StepPlan, now: f64) {
        for lane in 0..self.lanes {
            match &plan.lanes[lane] {
                LanePhase::Idle => {}
                LanePhase::Prefill(ids) => {
                    for &id in ids {
                        // The prefill step yields the first output token.
                        self.first_token[id] = now;
                        self.state[id] = ReqState::Active { prefilled: true, generated: 1 };
                    }
                }
                LanePhase::Decode(ids) => {
                    for &id in ids {
                        match &mut self.state[id] {
                            ReqState::Active { generated, .. } => *generated += 1,
                            _ => unreachable!("decode batch holds active requests"),
                        }
                    }
                }
            }
            for &id in &plan.finishing[lane] {
                self.finish[id] = now;
                self.state[id] = ReqState::Done;
                self.done += 1;
            }
        }
    }

    fn results(&self) -> Vec<RequestResult> {
        assert_eq!(self.done, self.specs.len(), "results requested before completion");
        self.specs
            .iter()
            .map(|spec| RequestResult {
                id: spec.id,
                lane: self.lane_of[spec.id],
                arrival: spec.arrival,
                first_token_time: self.first_token[spec.id],
                finish_time: self.finish[spec.id],
                prompt_len: spec.prompt_len,
                output_len: spec.output_len,
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Tensor-side engine (per rank)
// ---------------------------------------------------------------------------

/// This rank's resident state for one admitted request on its lane.
struct LaneSlot<T> {
    kv: Option<RequestKv<T>>,
    /// Next decode input `[1, h/q]`: the model output row of the request's
    /// latest token.
    next_input: Option<T>,
}

/// Runs the serving engine on one rank (SPMD: call from every rank of the
/// grid with the same `cfg` and `traffic`). Returns the per-rank summary;
/// `results` inside it is identical on every rank.
pub fn run_serve<T: TensorLike + Payload>(
    ctx: &mut RankCtx,
    grid: &TesseractGrid,
    cfg: &ServeConfig,
    traffic: &[RequestSpec],
) -> ServeSummary {
    cfg.model.validate_for_grid(grid.shape.q, grid.shape.d);
    let model = InferModel::<T>::new(ctx, grid, cfg.model, cfg.with_bias, cfg.seed, 0);
    let lanes = grid.shape.q * grid.shape.d;
    let my_lane = grid.a_row_block();
    let hidden = cfg.model.hidden;
    let local_h = hidden / grid.shape.q;
    let col0 = grid.j() * local_h;
    let prompt_seed = cfg.seed ^ PROMPT_SEED_SALT;
    let world = ctx.world_group();

    let mut sched = Scheduler::new(traffic, lanes, cfg);
    let mut slots: BTreeMap<usize, LaneSlot<T>> = BTreeMap::new();
    let mut prev: Option<StepPlan> = None;
    let (mut prefill_steps, mut decode_steps, mut steps_total) = (0u64, 0u64, 0u64);
    let mut kv_peak_bytes = 0u64;

    loop {
        // Step boundary: synchronize every rank's clock so all mirrored
        // schedulers decide from the same `now`.
        world.barrier(ctx);
        ctx.flush_compute();
        let now = ctx.clock();

        if let Some(plan) = prev.take() {
            sched.complete(&plan, now);
            // Eviction: finished requests leave at step granularity and
            // their KV blocks drop here.
            for &id in &plan.finishing[my_lane] {
                slots.remove(&id);
            }
        }

        let plan = match sched.plan(now) {
            Decision::AllDone => break,
            Decision::IdleUntil(t) => {
                // Open-loop lull: every rank sleeps to the same arrival.
                ctx.idle_until(t);
                continue;
            }
            Decision::Step(plan) => plan,
        };
        steps_total += 1;

        // Tensor work for my lane only; other lanes do theirs in parallel.
        let (ids, is_prefill): (&[usize], bool) = match &plan.lanes[my_lane] {
            LanePhase::Idle => (&[], false),
            LanePhase::Prefill(ids) => (ids, true),
            LanePhase::Decode(ids) => (ids, false),
        };
        let mut parts: Vec<T> = Vec::with_capacity(ids.len());
        let mut new_rows = Vec::with_capacity(ids.len());
        let mut kvs = Vec::with_capacity(ids.len());
        for &id in ids {
            if is_prefill {
                let plen = sched.specs[id].prompt_len;
                // The prompt is a deterministic function of (seed, id):
                // every rank of the lane extracts its own column block of
                // the same global [plen, h] matrix.
                parts.push(T::init_xavier_block(
                    plen,
                    hidden,
                    0,
                    col0,
                    plen,
                    local_h,
                    prompt_seed,
                    id as u64,
                ));
                new_rows.push(plen);
                kvs.push(model.new_kv(grid));
            } else {
                let slot = slots.get_mut(&id).expect("decode before prefill");
                parts.push(slot.next_input.take().expect("decode input missing"));
                new_rows.push(1);
                kvs.push(slot.kv.take().expect("KV missing from slot"));
            }
        }
        let x = Arc::new(if parts.is_empty() {
            // Empty lane: zero-row block keeps this rank inside every
            // collective of the step.
            T::zeros(0, local_h)
        } else {
            T::concat_rows(&parts, &mut ctx.meter)
        });
        drop(parts);

        let mut batch = InferBatch { new_rows, kvs };
        let y = model.forward_infer(grid, ctx, &x, &mut batch);

        if !ids.is_empty() {
            if is_prefill {
                ctx.meter.charge_prefill_step();
                prefill_steps += 1;
            } else {
                ctx.meter.charge_decode_step();
                decode_steps += 1;
            }
        }

        // Scatter outputs back: the last row of each segment is the next
        // decode input; caches (now grown) return to their slots.
        let mut r0 = 0;
        let kvs_back = std::mem::take(&mut batch.kvs);
        for (seg, (&id, kv)) in ids.iter().zip(kvs_back).enumerate() {
            let r1 = r0 + batch.new_rows[seg];
            let next = y.slice_rows(r1 - 1, r1, &mut ctx.meter);
            slots.insert(id, LaneSlot { kv: Some(kv), next_input: Some(next) });
            r0 = r1;
        }

        // KV high-water mark after the append, before any eviction.
        let resident: u64 = slots.values().map(|s| s.kv.as_ref().map_or(0, RequestKv::bytes)).sum();
        ctx.meter.note_kv_cache_bytes(resident);
        kv_peak_bytes = kv_peak_bytes.max(resident);

        prev = Some(plan);
    }

    assert!(slots.is_empty(), "all slots evicted at completion");
    assert_eq!(model.tape_depth(), 0, "inference must never grow a tape");
    ServeSummary {
        results: sched.results(),
        prefill_steps,
        decode_steps,
        kv_peak_bytes,
        steps_total,
    }
}

/// [`serve_on_cluster`] from a [`RunConfig`]: installs the process-global
/// knobs, builds the cluster and serves `traffic` on it.
pub fn serve_with_config<T: TensorLike + Payload>(
    run_cfg: &RunConfig,
    shape: GridShape,
    cfg: &ServeConfig,
    traffic: &[RequestSpec],
) -> RunOutput<ServeSummary> {
    serve_on_cluster::<T>(&run_cfg.cluster(), shape, cfg, traffic)
}

/// Convenience driver: spawns a `[q, q, d]` grid over the whole cluster
/// and serves `traffic` on it.
pub fn serve_on_cluster<T: TensorLike + Payload>(
    cluster: &Cluster,
    shape: GridShape,
    cfg: &ServeConfig,
    traffic: &[RequestSpec],
) -> RunOutput<ServeSummary> {
    shape.check_world(cluster.world).unwrap_or_else(|e| panic!("{e}"));
    cluster.run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        run_serve::<T>(ctx, &grid, cfg, traffic)
    })
}
