//! Latency/throughput summaries for serving runs.
//!
//! Percentiles use the nearest-rank definition on the sorted sample set,
//! which guarantees the monotonicity invariants the CI smoke greps for
//! (`p99 >= p50 >= min`) and is exact — no interpolation, so reruns of a
//! deterministic simulation reproduce every digit.

/// Summary statistics over a latency sample set (seconds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyStats {
    pub count: usize,
    pub mean: f64,
    pub p50: f64,
    pub p99: f64,
    pub max: f64,
}

/// Nearest-rank percentile of an ascending-sorted slice: the smallest
/// element such that at least `p`% of the samples are <= it.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample set");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "samples must be sorted");
    let n = sorted.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Computes [`LatencyStats`] from raw (unsorted) samples.
pub fn latency_stats(mut samples: Vec<f64>) -> LatencyStats {
    assert!(!samples.is_empty(), "latency stats of empty sample set");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let count = samples.len();
    let mean = samples.iter().sum::<f64>() / count as f64;
    LatencyStats {
        count,
        mean,
        p50: percentile(&samples, 50.0),
        p99: percentile(&samples, 99.0),
        max: *samples.last().expect("non-empty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_on_a_known_set() {
        // Classic nearest-rank example: 10 samples.
        let s: Vec<f64> = (1..=10).map(|v| v as f64).collect();
        assert_eq!(percentile(&s, 50.0), 5.0);
        assert_eq!(percentile(&s, 99.0), 10.0);
        assert_eq!(percentile(&s, 100.0), 10.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = [3.25];
        assert_eq!(percentile(&s, 0.0), 3.25);
        assert_eq!(percentile(&s, 50.0), 3.25);
        assert_eq!(percentile(&s, 99.0), 3.25);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let stats = latency_stats(vec![4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(stats.count, 5);
        assert_eq!(stats.mean, 3.0);
        assert_eq!(stats.p50, 3.0);
        assert_eq!(stats.p99, 5.0);
        assert_eq!(stats.max, 5.0);
        assert!(stats.p99 >= stats.p50);
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn empty_samples_panic() {
        let _ = latency_stats(Vec::new());
    }
}
