//! Synthetic open-loop traffic: Poisson arrivals with mixed prompt and
//! output lengths, from the in-tree deterministic PRNG.
//!
//! "Open-loop" means arrival times are drawn independently of how fast the
//! server drains them — the generator commits to a timeline up front, so
//! when the offered load exceeds capacity, queues (and latencies) grow
//! without bound past the saturation knee. That is the property the
//! serving sweep is after; closed-loop (wait-for-response) clients would
//! mask it.

use tesseract_tensor::Xoshiro256StarStar;

/// One request in the synthetic trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RequestSpec {
    /// Stable id, also the seed stream for the request's prompt content.
    pub id: usize,
    /// Arrival time on the virtual clock (seconds since run start).
    pub arrival: f64,
    /// Prompt tokens to prefill.
    pub prompt_len: usize,
    /// Output tokens to generate (>= 1; the prefill step produces the
    /// first one, each decode step one more).
    pub output_len: usize,
}

impl RequestSpec {
    /// Total tokens this request pushes through the model
    /// (prompt + generated-after-prefill).
    pub fn total_tokens(&self) -> usize {
        self.prompt_len + self.output_len - 1
    }
}

/// Traffic-generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct TrafficConfig {
    /// Offered load in requests per virtual second (Poisson rate λ).
    pub rate: f64,
    /// Number of requests to generate.
    pub requests: usize,
    /// Inclusive prompt-length range, sampled uniformly.
    pub prompt_lens: (usize, usize),
    /// Inclusive output-length range, sampled uniformly (min 1).
    pub output_lens: (usize, usize),
    /// PRNG seed; equal seeds give byte-identical traces.
    pub seed: u64,
}

/// Generates the arrival trace: exponential interarrival gaps
/// (`-ln(1-u)/λ`) and uniform mixed lengths, all from one deterministic
/// xoshiro256** stream.
pub fn generate(cfg: &TrafficConfig) -> Vec<RequestSpec> {
    assert!(cfg.rate > 0.0, "offered load must be positive");
    let (p_lo, p_hi) = cfg.prompt_lens;
    let (o_lo, o_hi) = cfg.output_lens;
    assert!(p_lo >= 1 && p_lo <= p_hi, "bad prompt length range");
    assert!(o_lo >= 1 && o_lo <= o_hi, "bad output length range");
    let mut rng = Xoshiro256StarStar::seed_from_u64(cfg.seed);
    let mut t = 0.0_f64;
    (0..cfg.requests)
        .map(|id| {
            // u in [0, 1) so 1-u in (0, 1]: ln is finite, gaps positive.
            let u = rng.next_f64();
            t += -(1.0 - u).ln() / cfg.rate;
            let prompt_len = p_lo + rng.next_usize(p_hi - p_lo + 1);
            let output_len = o_lo + rng.next_usize(o_hi - o_lo + 1);
            RequestSpec { id, arrival: t, prompt_len, output_len }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rate: f64, seed: u64) -> TrafficConfig {
        TrafficConfig { rate, requests: 200, prompt_lens: (4, 16), output_lens: (1, 8), seed }
    }

    #[test]
    fn arrivals_are_sorted_and_lengths_in_range() {
        let trace = generate(&cfg(10.0, 7));
        assert_eq!(trace.len(), 200);
        for w in trace.windows(2) {
            assert!(w[0].arrival < w[1].arrival, "arrivals must strictly increase");
        }
        for r in &trace {
            assert!((4..=16).contains(&r.prompt_len));
            assert!((1..=8).contains(&r.output_len));
            assert!(r.arrival > 0.0);
            assert_eq!(r.total_tokens(), r.prompt_len + r.output_len - 1);
        }
    }

    #[test]
    fn same_seed_is_bitwise_identical_and_seeds_differ() {
        let a = generate(&cfg(5.0, 42));
        let b = generate(&cfg(5.0, 42));
        assert_eq!(a, b);
        let c = generate(&cfg(5.0, 43));
        assert_ne!(a, c);
    }

    #[test]
    fn mean_interarrival_tracks_the_rate() {
        let rate = 20.0;
        let trace = generate(&TrafficConfig { requests: 5_000, ..cfg(rate, 3) });
        let span = trace.last().unwrap().arrival;
        let mean_gap = span / trace.len() as f64;
        assert!(
            (mean_gap - 1.0 / rate).abs() < 0.2 / rate,
            "mean gap {mean_gap} far from {}",
            1.0 / rate
        );
    }

    #[test]
    fn doubling_the_rate_roughly_halves_the_span() {
        let slow = generate(&TrafficConfig { requests: 2_000, ..cfg(5.0, 9) });
        let fast = generate(&TrafficConfig { requests: 2_000, ..cfg(10.0, 9) });
        let ratio = slow.last().unwrap().arrival / fast.last().unwrap().arrival;
        assert!((ratio - 2.0).abs() < 0.2, "span ratio {ratio} far from 2");
    }
}
