//! # tesseract-serve
//!
//! Batched inference serving on the Tesseract `[q, q, d]` grid (ROADMAP
//! item 1): a forward-only, KV-cached decode path driven by a
//! continuous-batching scheduler under synthetic open-loop traffic, all on
//! the simulated cluster's virtual clock.
//!
//! * [`traffic`] — deterministic Poisson arrival traces with mixed
//!   prompt/output lengths.
//! * [`engine`] — request lifecycle, per-lane admission/eviction at step
//!   granularity, prefill/decode batching under a token budget, and the
//!   SPMD step loop with barrier-synchronized latency accounting.
//! * [`metrics`] — nearest-rank latency percentiles and summaries.
//!
//! Correctness rests on `tesseract_core::infer`: cached decode is bitwise
//! identical per token to a full-prefix causal recompute (pinned by this
//! crate's tests), and the whole run — results, rank reports, traces — is
//! byte-identical across reruns with the same seed.

pub mod engine;
pub mod metrics;
pub mod traffic;

pub use engine::{
    run_serve, serve_on_cluster, serve_with_config, RequestResult, ServeConfig, ServeSummary,
};
pub use metrics::{latency_stats, percentile, LatencyStats};
pub use traffic::{generate, RequestSpec, TrafficConfig};
