//! Property-based KV-cache parity: over random prompt and decode lengths,
//! cached incremental decode must be bitwise identical to recomputing every
//! prefix from scratch through the same causal prefill path.

// Gated behind the `proptest-tests` feature: run with
//     cargo test -p tesseract-serve --features proptest-tests
#![cfg(feature = "proptest-tests")]

use std::sync::Arc;

use proptest::prelude::*;
use tesseract_comm::Cluster;
use tesseract_core::{GridShape, InferBatch, InferModel, TesseractGrid, TransformerConfig};
use tesseract_tensor::{DenseTensor, Matrix, TensorLike};

fn test_model() -> TransformerConfig {
    // Small enough that every GEMM stays on the serial (per-row bitwise)
    // kernel; batch divides q·d for [2,2,1].
    TransformerConfig { batch: 8, seq: 4, hidden: 16, heads: 4, mlp_ratio: 4, layers: 2, eps: 1e-5 }
}

/// One parity check: greedy cached decode vs full-prefix recompute, both
/// collected as per-token output rows that must match bitwise on every rank.
fn check_parity(prompt_len: usize, decode_tokens: usize, seed: u64) {
    let shape = GridShape::new(2, 1);
    let cfg = test_model();
    let out = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let model = InferModel::<DenseTensor>::new(ctx, &grid, cfg, true, seed, 0);
        let local_h = cfg.hidden / grid.shape.q;
        let prompt = DenseTensor::init_xavier_block(
            prompt_len,
            cfg.hidden,
            0,
            grid.j() * local_h,
            prompt_len,
            local_h,
            seed ^ 0xABCD,
            1,
        );

        // Cached path: one prefill, then one-row decode steps.
        let mut kv = model.new_kv(&grid);
        let mut cached_rows: Vec<Matrix> = Vec::new();
        let mut batch = InferBatch { new_rows: vec![prompt_len], kvs: vec![kv] };
        let y = model.forward_infer(&grid, ctx, &Arc::new(prompt.clone()), &mut batch);
        for t in 0..prompt_len {
            cached_rows.push(y.slice_rows(t, t + 1, &mut ctx.meter).matrix().clone());
        }
        let mut next = y.slice_rows(prompt_len - 1, prompt_len, &mut ctx.meter);
        kv = batch.kvs.pop().expect("cache returned");
        for _ in 0..decode_tokens {
            let mut batch = InferBatch { new_rows: vec![1], kvs: vec![kv] };
            let y = model.forward_infer(&grid, ctx, &Arc::new(next), &mut batch);
            cached_rows.push(y.matrix().clone());
            next = y.slice_rows(0, 1, &mut ctx.meter);
            kv = batch.kvs.pop().expect("cache returned");
        }

        // Recompute path: fresh cache + causal prefill per prefix length.
        let mut inputs = prompt;
        let mut recomputed_rows: Vec<Matrix> = Vec::new();
        for step in 0..=decode_tokens {
            let rows = inputs.rows();
            let mut batch = InferBatch { new_rows: vec![rows], kvs: vec![model.new_kv(&grid)] };
            let y = model.forward_infer(&grid, ctx, &Arc::new(inputs.clone()), &mut batch);
            if step == 0 {
                for t in 0..rows {
                    recomputed_rows.push(y.slice_rows(t, t + 1, &mut ctx.meter).matrix().clone());
                }
            } else {
                recomputed_rows.push(y.slice_rows(rows - 1, rows, &mut ctx.meter).matrix().clone());
            }
            if step < decode_tokens {
                let last = y.slice_rows(rows - 1, rows, &mut ctx.meter);
                inputs = DenseTensor::concat_rows(&[inputs, last], &mut ctx.meter);
            }
        }
        (cached_rows, recomputed_rows)
    });
    for (rank, (cached, recomputed)) in out.results.iter().enumerate() {
        prop_assert_eq!(cached.len(), prompt_len + decode_tokens);
        prop_assert_eq!(cached.len(), recomputed.len());
        for (t, (c, r)) in cached.iter().zip(recomputed).enumerate() {
            prop_assert_eq!(c, r, "rank {rank}: cached decode diverged at token {t}");
        }
    }
}

proptest! {
    // Fewer cases: each spawns a simulated cluster and decodes token by token.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cached_decode_matches_recompute_on_random_lengths(
        prompt_len in 1usize..12,
        decode_tokens in 1usize..8,
        seed in 0u64..1000,
    ) {
        check_parity(prompt_len, decode_tokens, seed);
    }
}
