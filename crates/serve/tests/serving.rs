//! Integration tests for the serving path: KV-cache bitwise parity,
//! no-grad inference, engine determinism, and counter reconciliation.

use std::sync::Arc;

use tesseract_comm::Cluster;
use tesseract_core::{GridShape, InferBatch, InferModel, TesseractGrid, TransformerConfig};
use tesseract_serve::{
    latency_stats, serve_on_cluster, RequestSpec, ServeConfig, ServeSummary, TrafficConfig,
};
use tesseract_tensor::{DenseTensor, Matrix, ShadowTensor, TensorLike};

fn test_model() -> TransformerConfig {
    // batch divides q·d for both [2,2,1] and [2,2,2]; everything small
    // enough that every GEMM stays on the serial (per-row bitwise) kernel.
    TransformerConfig { batch: 8, seq: 4, hidden: 16, heads: 4, mlp_ratio: 4, layers: 2, eps: 1e-5 }
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        model: test_model(),
        with_bias: true,
        seed: 77,
        max_batch_tokens: 32,
        max_lane_requests: 4,
    }
}

/// Builds this rank's column block of a deterministic `[rows, h]` prompt.
fn prompt_block(
    grid: &TesseractGrid,
    hidden: usize,
    rows: usize,
    seed: u64,
    stream: u64,
) -> DenseTensor {
    let local_h = hidden / grid.shape.q;
    DenseTensor::init_xavier_block(rows, hidden, 0, grid.j() * local_h, rows, local_h, seed, stream)
}

/// Decodes `decode_tokens` greedily with the KV cache (one prefill + one
/// step per token) and, in lockstep, re-runs every prefix from scratch
/// through the same causal path. Returns (cached, recomputed) per-token
/// output rows; the two must match bitwise.
fn cached_vs_recompute(shape: GridShape, prompt_len: usize, decode_tokens: usize, seed: u64) {
    let cfg = test_model();
    let out = Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let model = InferModel::<DenseTensor>::new(ctx, &grid, cfg, true, seed, 0);
        let prompt = prompt_block(&grid, cfg.hidden, prompt_len, seed ^ 0xABCD, 1);

        // Cached path: prefill once, then O(1)-row decode steps.
        let mut kv = model.new_kv(&grid);
        let mut cached_rows: Vec<Matrix> = Vec::new();
        let mut batch = InferBatch { new_rows: vec![prompt_len], kvs: vec![kv] };
        let y = model.forward_infer(&grid, ctx, &Arc::new(prompt.clone()), &mut batch);
        // Every prefill output row participates in parity, not just the
        // last: row t is "the model output for token t".
        for t in 0..prompt_len {
            cached_rows.push(y.slice_rows(t, t + 1, &mut ctx.meter).matrix().clone());
        }
        let mut next = y.slice_rows(prompt_len - 1, prompt_len, &mut ctx.meter);
        kv = batch.kvs.pop().expect("cache returned");
        for _ in 0..decode_tokens {
            let mut batch = InferBatch { new_rows: vec![1], kvs: vec![kv] };
            let y = model.forward_infer(&grid, ctx, &Arc::new(next), &mut batch);
            cached_rows.push(y.matrix().clone());
            next = y.slice_rows(0, 1, &mut ctx.meter);
            kv = batch.kvs.pop().expect("cache returned");
        }
        assert_eq!(kv.seq_len(), prompt_len + decode_tokens, "cache grew once per token");

        // Recompute path: for every prefix length L, a fresh cache and one
        // causal prefill over all L rows; its rows must equal the cached
        // path's rows bitwise.
        let mut inputs = prompt;
        let mut recomputed_rows: Vec<Matrix> = Vec::new();
        for step in 0..=decode_tokens {
            let rows = inputs.rows();
            let mut batch = InferBatch { new_rows: vec![rows], kvs: vec![model.new_kv(&grid)] };
            let y = model.forward_infer(&grid, ctx, &Arc::new(inputs.clone()), &mut batch);
            if step == 0 {
                for t in 0..rows {
                    recomputed_rows.push(y.slice_rows(t, t + 1, &mut ctx.meter).matrix().clone());
                }
            } else {
                recomputed_rows.push(y.slice_rows(rows - 1, rows, &mut ctx.meter).matrix().clone());
            }
            if step < decode_tokens {
                let last = y.slice_rows(rows - 1, rows, &mut ctx.meter);
                inputs = DenseTensor::concat_rows(&[inputs, last], &mut ctx.meter);
            }
        }
        (cached_rows, recomputed_rows)
    });
    for (rank, (cached, recomputed)) in out.results.iter().enumerate() {
        assert_eq!(cached.len(), prompt_len + decode_tokens);
        assert_eq!(cached.len(), recomputed.len());
        for (t, (c, r)) in cached.iter().zip(recomputed).enumerate() {
            assert_eq!(c, r, "rank {rank}: cached decode diverged from recompute at token {t}");
        }
    }
}

#[test]
fn cached_decode_matches_recompute_bitwise_on_2x2x1() {
    cached_vs_recompute(GridShape::new(2, 1), 5, 4, 11);
}

#[test]
fn cached_decode_matches_recompute_bitwise_on_2x2x2() {
    cached_vs_recompute(GridShape::new(2, 2), 6, 3, 13);
}

#[test]
fn single_token_prompt_decodes_consistently() {
    cached_vs_recompute(GridShape::new(2, 1), 1, 5, 17);
}

#[test]
fn inference_never_grows_tapes_and_drops_activation_arcs() {
    let shape = GridShape::new(2, 1);
    let cfg = test_model();
    Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let model = InferModel::<DenseTensor>::new(ctx, &grid, cfg, true, 5, 0);
        let prompt = Arc::new(prompt_block(&grid, cfg.hidden, 4, 99, 0));
        let weak_prompt = Arc::downgrade(&prompt);

        let mut kv = model.new_kv(&grid);
        let mut batch = InferBatch { new_rows: vec![4], kvs: vec![kv] };
        let y = model.forward_infer(&grid, ctx, &prompt, &mut batch);
        kv = batch.kvs.pop().expect("cache returned");
        let mut next = y.slice_rows(3, 4, &mut ctx.meter);
        assert_eq!(model.tape_depth(), 0, "prefill must not tape activations");
        drop(y);
        drop(prompt);
        assert!(
            weak_prompt.upgrade().is_none(),
            "prompt activation must be freed right after the prefill step"
        );

        for _ in 0..3 {
            let x = Arc::new(next);
            let weak_x = Arc::downgrade(&x);
            let mut batch = InferBatch { new_rows: vec![1], kvs: vec![kv] };
            let y = model.forward_infer(&grid, ctx, &x, &mut batch);
            kv = batch.kvs.pop().expect("cache returned");
            next = y.slice_rows(0, 1, &mut ctx.meter);
            assert_eq!(model.tape_depth(), 0, "decode must not tape activations");
            drop(y);
            drop(x);
            assert!(weak_x.upgrade().is_none(), "decode activations must be freed after each step");
        }
    });
}

#[test]
#[should_panic(expected = "backward without forward")]
fn backward_after_forward_infer_panics_on_the_empty_tape() {
    use tesseract_core::Module;
    let shape = GridShape::new(2, 1);
    let cfg = test_model();
    Cluster::a100(shape.size()).run(|ctx| {
        let grid = TesseractGrid::new(ctx, shape, 0);
        let mut model = InferModel::<DenseTensor>::new(ctx, &grid, cfg, true, 5, 0);
        let x = Arc::new(prompt_block(&grid, cfg.hidden, 4, 3, 0));
        let mut batch = InferBatch { new_rows: vec![4], kvs: vec![model.new_kv(&grid)] };
        let y = model.forward_infer(&grid, ctx, &x, &mut batch);
        // forward_infer taped nothing, so backward has nothing to unwind.
        let _ = model.layers[0].backward(&grid, ctx, &y);
    });
}

fn smoke_traffic() -> Vec<RequestSpec> {
    tesseract_serve::generate(&TrafficConfig {
        rate: 2_000.0,
        requests: 10,
        prompt_lens: (2, 6),
        output_lens: (1, 4),
        seed: 21,
    })
}

#[test]
fn engine_serves_all_requests_with_sane_latencies() {
    let shape = GridShape::new(2, 1);
    let traffic = smoke_traffic();
    let out = serve_on_cluster::<DenseTensor>(
        &Cluster::a100(shape.size()),
        shape,
        &serve_cfg(),
        &traffic,
    );
    let summary = &out.results[0];
    assert_eq!(summary.results.len(), traffic.len());
    for (r, spec) in summary.results.iter().zip(&traffic) {
        assert_eq!(r.id, spec.id);
        assert_eq!(r.prompt_len, spec.prompt_len);
        assert!(r.first_token_time > r.arrival, "prefill takes simulated time");
        assert!(r.finish_time >= r.first_token_time);
        if spec.output_len == 1 {
            assert_eq!(r.finish_time, r.first_token_time, "single-token requests finish at TTFT");
        }
    }
    let stats = latency_stats(summary.results.iter().map(|r| r.latency()).collect());
    assert!(stats.p99 >= stats.p50, "percentiles must be ordered");
    assert!(stats.p50 > 0.0);
    // Every rank mirrors the same metadata scheduler: identical results.
    for other in &out.results[1..] {
        assert_eq!(other.results, summary.results);
    }
    assert!(out.makespan() >= summary.results.iter().map(|r| r.finish_time).fold(0.0, f64::max));
}

#[test]
fn engine_reruns_are_bitwise_identical() {
    let shape = GridShape::new(2, 2);
    let traffic = smoke_traffic();
    let run = || {
        serve_on_cluster::<DenseTensor>(&Cluster::a100(shape.size()), shape, &serve_cfg(), &traffic)
    };
    let a = run();
    let b = run();
    assert_eq!(a.results, b.results, "summaries must be deterministic");
    assert_eq!(a.reports, b.reports, "rank reports must be deterministic");
    assert_eq!(a.makespan(), b.makespan());
}

#[test]
fn dense_and_shadow_serving_report_identical_virtual_time() {
    // The shadow backend charges byte-for-byte like the dense one, so the
    // sweep can run paper-scale serving on shapes alone. Latency results
    // and every rank report must agree bitwise across backends.
    let shape = GridShape::new(2, 1);
    let traffic = smoke_traffic();
    let cluster = Cluster::a100(shape.size());
    let dense = serve_on_cluster::<DenseTensor>(&cluster, shape, &serve_cfg(), &traffic);
    let shadow = serve_on_cluster::<ShadowTensor>(&cluster, shape, &serve_cfg(), &traffic);
    assert_eq!(dense.results, shadow.results);
    assert_eq!(dense.reports, shadow.reports);
}

#[test]
fn meter_counters_reconcile_with_the_engine_exactly() {
    let shape = GridShape::new(2, 2);
    let traffic = smoke_traffic();
    let out = serve_on_cluster::<DenseTensor>(
        &Cluster::a100(shape.size()),
        shape,
        &serve_cfg(),
        &traffic,
    );
    let mut total_prefills = 0u64;
    let mut total_decodes = 0u64;
    for (summary, report) in out.results.iter().zip(&out.reports) {
        assert_eq!(report.prefill_steps, summary.prefill_steps, "prefill counters reconcile");
        assert_eq!(report.decode_steps, summary.decode_steps, "decode counters reconcile");
        assert_eq!(report.kv_cache_bytes_peak, summary.kv_peak_bytes, "KV peaks reconcile");
        assert!(report.kv_cache_bytes_peak > 0, "serving must cache something");
        assert!(report.idle_time >= 0.0);
        total_prefills += report.prefill_steps;
        total_decodes += report.decode_steps;
    }
    // Each lane-step is counted by the q ranks of its row fiber (they all
    // execute it); fibers of the same lane agree.
    assert_eq!(total_prefills % (shape.q as u64), 0);
    assert!(total_prefills > 0);
    assert!(total_decodes > 0);
    // Decode outputs exactly the non-prefill tokens, globally.
    let expected_decode_tokens: usize = traffic.iter().map(|r| r.output_len - 1).sum();
    let decoded: usize = out.results[0].results.iter().map(|r| r.output_len - 1).sum();
    assert_eq!(decoded, expected_decode_tokens);
}

#[test]
fn offered_load_past_saturation_raises_latency() {
    // Same work, two arrival rates: a trickle vs everything-at-once. The
    // open-loop property the sweep reports — queueing delay past the
    // saturation knee — must be visible even at smoke scale.
    let shape = GridShape::new(2, 1);
    let base = TrafficConfig {
        rate: 1.0,
        requests: 8,
        prompt_lens: (3, 3),
        output_lens: (3, 3),
        seed: 55,
    };
    let run = |rate: f64| -> ServeSummary {
        let traffic = tesseract_serve::generate(&TrafficConfig { rate, ..base });
        let out = serve_on_cluster::<ShadowTensor>(
            &Cluster::a100(shape.size()),
            shape,
            &ServeConfig { max_lane_requests: 2, ..serve_cfg() },
            &traffic,
        );
        out.results[0].clone()
    };
    let trickle = run(0.5);
    let flood = run(50_000.0);
    let p50 = |s: &ServeSummary| latency_stats(s.results.iter().map(|r| r.latency()).collect()).p50;
    assert!(
        p50(&flood) > p50(&trickle),
        "saturated load must queue: p50 {} vs {}",
        p50(&flood),
        p50(&trickle)
    );
}
