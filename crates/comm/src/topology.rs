//! Cluster topology: which ranks share a node, and what link connects them.
//!
//! The paper's testbed (Meluxina) has 4 NVIDIA A100 GPUs per node, NVLink
//! (200 GB/s) inside a node and InfiniBand (200 Gb/s ≈ 25 GB/s) between
//! nodes. Ranks are packed into nodes in rank order, exactly as the paper
//! arranges experiments "by setting the size [q, q, d] where q² is a
//! multiple of 4" so that Tesseract's depth communication stays on the
//! faster links.
//!
//! Beyond classifying single links, the topology can summarize how a whole
//! group of ranks sits relative to node boundaries ([`Topology::placement`]):
//! how many nodes it spans and how many members share the fullest node. The
//! two-level collective cost model
//! ([`crate::cost::CostParams::phased_collective_time`]) is driven entirely
//! by that summary.

/// Kind of interconnect between two ranks. Ordered by slowness: `Local <
/// NvLink < InfiniBand`, so the worst link of a set is the `max`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Link {
    /// Same physical GPU (self-communication: free).
    Local,
    /// Intra-node NVLink.
    NvLink,
    /// Inter-node InfiniBand.
    InfiniBand,
}

/// How ranks are physically assigned to nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeArrangement {
    /// Ranks are packed into fixed-size nodes in rank order
    /// (`node = rank / gpus_per_node`).
    Packed {
        /// GPUs per node (Meluxina: 4).
        gpus_per_node: usize,
    },
    /// Every rank shares one giant node; useful to isolate algorithmic
    /// volume from placement effects in ablations.
    SingleNode,
}

/// Physical arrangement of ranks into nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Node-assignment rule for every rank.
    pub arrangement: NodeArrangement,
}

/// How a group of ranks sits relative to node boundaries: the summary the
/// two-level cost model needs to decompose a collective into an intra-node
/// phase and an inter-node phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupPlacement {
    /// Number of group members.
    pub members: usize,
    /// Number of distinct nodes the members occupy.
    pub nodes: usize,
    /// Members on the fullest node — the size of the widest intra-node
    /// phase.
    pub max_per_node: usize,
}

impl GroupPlacement {
    /// True when the whole group fits on one node (or is a singleton).
    pub fn is_intra_node(&self) -> bool {
        self.nodes <= 1
    }

    /// True when at least two members share a node *and* the group spans
    /// several nodes — the only placements where a two-level schedule can
    /// beat the flat worst-link charge.
    pub fn shares_nodes_across(&self) -> bool {
        self.nodes >= 2 && self.max_per_node >= 2
    }
}

impl Topology {
    pub fn new(gpus_per_node: usize) -> Self {
        assert!(gpus_per_node > 0);
        Self { arrangement: NodeArrangement::Packed { gpus_per_node } }
    }

    /// The paper's testbed: 4 GPUs per node.
    pub fn meluxina() -> Self {
        Self::new(4)
    }

    /// A degenerate topology where every rank shares one giant node.
    pub fn single_node() -> Self {
        Self { arrangement: NodeArrangement::SingleNode }
    }

    /// Node index hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        match self.arrangement {
            NodeArrangement::Packed { gpus_per_node } => rank / gpus_per_node,
            NodeArrangement::SingleNode => 0,
        }
    }

    /// Link between two ranks.
    pub fn link_between(&self, a: usize, b: usize) -> Link {
        if a == b {
            Link::Local
        } else if self.node_of(a) == self.node_of(b) {
            Link::NvLink
        } else {
            Link::InfiniBand
        }
    }

    /// Worst (slowest) link appearing among any pair in `ranks`: a max-fold
    /// of [`Topology::link_between`] over all pairs. Collective cost on the
    /// flat (non-hierarchical) model is dominated by this link.
    pub fn worst_link(&self, ranks: &[usize]) -> Link {
        let mut worst = Link::Local;
        for (idx, &a) in ranks.iter().enumerate() {
            for &b in &ranks[idx + 1..] {
                worst = worst.max(self.link_between(a, b));
                if worst == Link::InfiniBand {
                    return worst;
                }
            }
        }
        worst
    }

    /// Summarizes how `ranks` are spread over nodes. Duplicate ranks count
    /// once per occurrence (groups never contain duplicates in practice).
    pub fn placement(&self, ranks: &[usize]) -> GroupPlacement {
        let mut node_ids: Vec<usize> = ranks.iter().map(|&r| self.node_of(r)).collect();
        node_ids.sort_unstable();
        let mut nodes = 0;
        let mut max_per_node = 0;
        let mut i = 0;
        while i < node_ids.len() {
            let mut j = i + 1;
            while j < node_ids.len() && node_ids[j] == node_ids[i] {
                j += 1;
            }
            nodes += 1;
            max_per_node = max_per_node.max(j - i);
            i = j;
        }
        GroupPlacement { members: ranks.len(), nodes, max_per_node }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_packing_is_rank_order() {
        let t = Topology::meluxina();
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(63), 15);
    }

    #[test]
    fn link_classification() {
        let t = Topology::meluxina();
        assert_eq!(t.link_between(0, 0), Link::Local);
        assert_eq!(t.link_between(0, 3), Link::NvLink);
        assert_eq!(t.link_between(0, 4), Link::InfiniBand);
    }

    #[test]
    fn link_order_tracks_slowness() {
        assert!(Link::Local < Link::NvLink);
        assert!(Link::NvLink < Link::InfiniBand);
    }

    #[test]
    fn worst_link_of_groups() {
        let t = Topology::meluxina();
        assert_eq!(t.worst_link(&[1]), Link::Local);
        assert_eq!(t.worst_link(&[0, 1, 2, 3]), Link::NvLink);
        assert_eq!(t.worst_link(&[0, 1, 2, 3, 4]), Link::InfiniBand);
        assert_eq!(t.worst_link(&[8, 9]), Link::NvLink);
    }

    #[test]
    fn worst_link_is_a_pairwise_fold() {
        let t = Topology::meluxina();
        // A repeated rank only pairs with itself: the one pair is Local.
        assert_eq!(t.worst_link(&[3, 3]), Link::Local);
        // Member order is irrelevant.
        assert_eq!(t.worst_link(&[5, 0, 2]), Link::InfiniBand);
        assert_eq!(t.worst_link(&[2, 0, 5]), Link::InfiniBand);
    }

    #[test]
    fn single_node_never_uses_ib() {
        let t = Topology::single_node();
        assert_eq!(t.worst_link(&[0, 63]), Link::NvLink);
        assert_eq!(t.arrangement, NodeArrangement::SingleNode);
    }

    #[test]
    fn placement_counts_nodes_and_fullest_node() {
        let t = Topology::meluxina();
        // One full node.
        let p = t.placement(&[0, 1, 2, 3]);
        assert_eq!(p, GroupPlacement { members: 4, nodes: 1, max_per_node: 4 });
        assert!(p.is_intra_node());
        assert!(!p.shares_nodes_across());
        // Two full nodes: the multi-node-with-sharing case.
        let p = t.placement(&[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(p, GroupPlacement { members: 8, nodes: 2, max_per_node: 4 });
        assert!(p.shares_nodes_across());
        // One rank per node: spread, no sharing.
        let p = t.placement(&[0, 4, 8, 12]);
        assert_eq!(p, GroupPlacement { members: 4, nodes: 4, max_per_node: 1 });
        assert!(!p.is_intra_node());
        assert!(!p.shares_nodes_across());
        // Uneven spill: 3 on node 0, 1 on node 1.
        let p = t.placement(&[1, 2, 3, 4]);
        assert_eq!(p, GroupPlacement { members: 4, nodes: 2, max_per_node: 3 });
    }

    #[test]
    fn placement_on_single_node_topology_is_always_intra() {
        let t = Topology::single_node();
        let p = t.placement(&[0, 17, 63]);
        assert_eq!(p, GroupPlacement { members: 3, nodes: 1, max_per_node: 3 });
        assert!(p.is_intra_node());
    }
}
