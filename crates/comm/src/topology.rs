//! Cluster topology: which ranks share a node, and what link connects them.
//!
//! The paper's testbed (Meluxina) has 4 NVIDIA A100 GPUs per node, NVLink
//! (200 GB/s) inside a node and InfiniBand (200 Gb/s ≈ 25 GB/s) between
//! nodes. Ranks are packed into nodes in rank order, exactly as the paper
//! arranges experiments "by setting the size [q, q, d] where q² is a
//! multiple of 4" so that Tesseract's depth communication stays on the
//! faster links.

/// Kind of interconnect between two ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Link {
    /// Same physical GPU (self-communication: free).
    Local,
    /// Intra-node NVLink.
    NvLink,
    /// Inter-node InfiniBand.
    InfiniBand,
}

/// Physical arrangement of ranks into nodes.
#[derive(Clone, Copy, Debug)]
pub struct Topology {
    /// GPUs per node (Meluxina: 4).
    pub gpus_per_node: usize,
}

impl Topology {
    pub fn new(gpus_per_node: usize) -> Self {
        assert!(gpus_per_node > 0);
        Self { gpus_per_node }
    }

    /// The paper's testbed: 4 GPUs per node.
    pub fn meluxina() -> Self {
        Self::new(4)
    }

    /// A degenerate topology where every rank shares one giant node; useful
    /// to isolate algorithmic volume from placement effects in ablations.
    pub fn single_node() -> Self {
        Self::new(usize::MAX)
    }

    /// Node index hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        if self.gpus_per_node == usize::MAX {
            0
        } else {
            rank / self.gpus_per_node
        }
    }

    /// Link between two ranks.
    pub fn link_between(&self, a: usize, b: usize) -> Link {
        if a == b {
            Link::Local
        } else if self.node_of(a) == self.node_of(b) {
            Link::NvLink
        } else {
            Link::InfiniBand
        }
    }

    /// Worst (slowest) link appearing among any pair in `ranks`; collective
    /// cost is dominated by the slowest link the group spans.
    pub fn worst_link(&self, ranks: &[usize]) -> Link {
        if ranks.len() <= 1 {
            return Link::Local;
        }
        let first_node = self.node_of(ranks[0]);
        if ranks.iter().all(|&r| self.node_of(r) == first_node) {
            Link::NvLink
        } else {
            Link::InfiniBand
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_packing_is_rank_order() {
        let t = Topology::meluxina();
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(63), 15);
    }

    #[test]
    fn link_classification() {
        let t = Topology::meluxina();
        assert_eq!(t.link_between(0, 0), Link::Local);
        assert_eq!(t.link_between(0, 3), Link::NvLink);
        assert_eq!(t.link_between(0, 4), Link::InfiniBand);
    }

    #[test]
    fn worst_link_of_groups() {
        let t = Topology::meluxina();
        assert_eq!(t.worst_link(&[1]), Link::Local);
        assert_eq!(t.worst_link(&[0, 1, 2, 3]), Link::NvLink);
        assert_eq!(t.worst_link(&[0, 1, 2, 3, 4]), Link::InfiniBand);
        assert_eq!(t.worst_link(&[8, 9]), Link::NvLink);
    }

    #[test]
    fn single_node_never_uses_ib() {
        let t = Topology::single_node();
        assert_eq!(t.worst_link(&[0, 63]), Link::NvLink);
    }
}
