//! The simulated cluster driver: spawns one OS thread per rank and runs an
//! SPMD closure on each, exactly as `torch.distributed`/NCCL launches one
//! process per GPU. Returns each rank's result plus timing reports and the
//! global communication statistics.

use std::sync::Arc;
use std::time::Duration;

use tesseract_tensor::{trace, TraceEvent};

use crate::cost::CostParams;
use crate::ctx::{RankCtx, RankReport};
use crate::fabric::Fabric;
use crate::stats::{CommStats, StatsCollector};
use crate::topology::Topology;

/// A runnable simulated cluster. Build one through
/// [`crate::RunConfig`] — `RunConfig::new(world).cluster()` or
/// [`crate::RunConfig::from_env`] for the environment-configured defaults.
#[derive(Clone, Copy, Debug)]
pub struct Cluster {
    pub world: usize,
    pub topology: Topology,
    pub params: CostParams,
    /// Collect per-rank [`TraceEvent`] timelines during [`Cluster::run`]
    /// (set from [`crate::RunConfig::with_trace`] / `TESSERACT_TRACE`).
    pub trace: bool,
    /// Rendezvous timeout override for this cluster's fabric (seconds).
    /// `None` uses the process-wide default (120 s unless
    /// `TESSERACT_RENDEZVOUS_TIMEOUT_SECS` was installed). Tests that
    /// deliberately deadlock set this explicitly instead of racing on
    /// `std::env::set_var`.
    pub rendezvous_timeout_secs: Option<u64>,
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunOutput<R> {
    /// Per-rank closure results, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank timing reports, indexed by rank.
    pub reports: Vec<RankReport>,
    /// Global collective statistics.
    pub comm: CommStats,
    /// Per-rank event timelines, indexed by rank. Empty vectors unless the
    /// cluster ran with tracing enabled (see [`crate::RunConfig::with_trace`]).
    pub traces: Vec<Vec<TraceEvent>>,
}

impl<R> RunOutput<R> {
    /// Maximum virtual time across ranks — the simulated makespan, which is
    /// what the paper's per-batch times correspond to.
    pub fn makespan(&self) -> f64 {
        self.reports.iter().map(|r| r.virtual_time).fold(0.0, f64::max)
    }

    /// Maximum compute-only virtual time across ranks.
    pub fn max_compute_time(&self) -> f64 {
        self.reports.iter().map(|r| r.compute_time).fold(0.0, f64::max)
    }

    /// Maximum communication time across ranks.
    pub fn max_comm_time(&self) -> f64 {
        self.reports.iter().map(|r| r.comm_time).fold(0.0, f64::max)
    }
}

impl Cluster {
    /// A cluster with the paper's testbed topology and cost constants,
    /// honoring the `TESSERACT_*` environment knobs — shorthand for
    /// [`crate::RunConfig::from_env`]`(world).cluster()`.
    pub fn a100(world: usize) -> Self {
        crate::RunConfig::from_env(world).cluster()
    }

    /// A cluster with explicit topology and cost constants.
    #[deprecated(note = "build a `RunConfig` and call `.cluster()` instead")]
    pub fn custom(world: usize, topology: Topology, params: CostParams) -> Self {
        crate::RunConfig::from_env(world).with_topology(topology).with_params(params).cluster()
    }

    /// Enables (or disables) per-rank event tracing for this cluster.
    #[deprecated(note = "set tracing on the `RunConfig` via `RunConfig::with_trace`")]
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Sets an explicit rendezvous timeout for this cluster's fabric.
    #[deprecated(
        note = "set the timeout on the `RunConfig` via `RunConfig::with_rendezvous_timeout_secs`"
    )]
    pub fn with_rendezvous_timeout_secs(mut self, secs: u64) -> Self {
        self.rendezvous_timeout_secs = Some(secs);
        self
    }

    /// Runs `f` as one thread per rank and gathers results in rank order.
    ///
    /// Panics in any rank are propagated (after all threads finish or time
    /// out) with the rank id attached.
    pub fn run<R, F>(&self, f: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(&mut RankCtx) -> R + Send + Sync,
    {
        assert!(self.world > 0, "cluster needs at least one rank");
        let fabric = Arc::new(match self.rendezvous_timeout_secs {
            Some(secs) => Fabric::with_timeout(Duration::from_secs(secs)),
            None => Fabric::new(),
        });
        let stats = Arc::new(StatsCollector::new());
        let f = &f;

        let mut outcomes: Vec<Option<(R, RankReport, Vec<TraceEvent>)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..self.world)
                    .map(|rank| {
                        let fabric = Arc::clone(&fabric);
                        let stats = Arc::clone(&stats);
                        let params = self.params;
                        let topology = self.topology;
                        let world = self.world;
                        let traced = self.trace;
                        scope.spawn(move || {
                            if traced {
                                trace::install(rank);
                            }
                            let mut ctx =
                                RankCtx::new(rank, world, params, topology, fabric, stats);
                            let result = f(&mut ctx);
                            // Harvest after the report: `report` flushes the
                            // meter, so the final compute event is captured.
                            let report = ctx.report();
                            let events = if traced { trace::take() } else { Vec::new() };
                            (result, report, events)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .enumerate()
                    .map(|(rank, h)| match h.join() {
                        Ok(tuple) => Some(tuple),
                        Err(e) => {
                            let msg = e
                                .downcast_ref::<String>()
                                .map(String::as_str)
                                .or_else(|| e.downcast_ref::<&str>().copied())
                                .unwrap_or("<non-string panic>");
                            panic!("rank {rank} panicked: {msg}");
                        }
                    })
                    .collect()
            });

        let mut results = Vec::with_capacity(self.world);
        let mut reports = Vec::with_capacity(self.world);
        let mut traces = Vec::with_capacity(self.world);
        for outcome in outcomes.drain(..) {
            let (r, rep, events) = outcome.expect("all ranks joined");
            results.push(r);
            reports.push(rep);
            traces.push(events);
        }
        RunOutput { results, reports, comm: stats.snapshot(), traces }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CollectiveOp;
    use crate::group::Payload;
    use tesseract_tensor::{DenseTensor, Matrix, TensorLike};

    #[test]
    fn ranks_are_spmd_and_ordered() {
        let cluster = Cluster::a100(4);
        let out = cluster.run(|ctx| ctx.rank * 10);
        assert_eq!(out.results, vec![0, 10, 20, 30]);
        assert_eq!(out.reports.len(), 4);
    }

    #[test]
    fn all_reduce_sums_across_ranks() {
        let cluster = Cluster::a100(4);
        let out = cluster.run(|ctx| {
            let world = ctx.world_group();
            let t = DenseTensor::from_matrix(Matrix::full(2, 2, (ctx.rank + 1) as f32));
            let sum = world.all_reduce(ctx, t);
            sum.matrix()[(0, 0)]
        });
        // 1 + 2 + 3 + 4 = 10 on every rank.
        assert!(out.results.iter().all(|&v| v == 10.0));
        assert_eq!(out.comm.get(CollectiveOp::AllReduce).calls, 1);
    }

    #[test]
    fn broadcast_delivers_root_payload() {
        let cluster = Cluster::a100(3);
        let out = cluster.run(|ctx| {
            let world = ctx.world_group();
            let payload =
                (ctx.rank == 1).then(|| DenseTensor::from_matrix(Matrix::full(1, 4, 7.0)));
            let got = world.broadcast(ctx, 1, payload);
            got.matrix().sum()
        });
        assert!(out.results.iter().all(|&v| v == 28.0));
    }

    #[test]
    fn gather_scatter_round_trip() {
        let cluster = Cluster::a100(4);
        let out = cluster.run(|ctx| {
            let world = ctx.world_group();
            let mine = DenseTensor::from_matrix(Matrix::full(1, 1, ctx.rank as f32));
            let gathered = world.gather(ctx, 0, mine);
            let parts = gathered.map(|g| {
                g.into_iter()
                    .map(|t| {
                        let mut m = Meter::default();
                        t.scale(2.0, &mut m)
                    })
                    .collect::<Vec<_>>()
            });
            let back = world.scatter(ctx, 0, parts);
            back.matrix()[(0, 0)]
        });
        assert_eq!(out.results, vec![0.0, 2.0, 4.0, 6.0]);
    }

    use tesseract_tensor::Meter;

    #[test]
    fn shift_rotates_payloads() {
        let cluster = Cluster::a100(4);
        let out = cluster.run(|ctx| {
            let world = ctx.world_group();
            let mine = DenseTensor::from_matrix(Matrix::full(1, 1, ctx.rank as f32));
            let got = world.shift(ctx, 1, mine);
            got.matrix()[(0, 0)] as usize
        });
        // Rank r receives from (r - 1) mod 4.
        assert_eq!(out.results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn negative_shift_rotates_backwards() {
        let cluster = Cluster::a100(3);
        let out = cluster.run(|ctx| {
            let world = ctx.world_group();
            let mine = DenseTensor::from_matrix(Matrix::full(1, 1, ctx.rank as f32));
            let got = world.shift(ctx, -1, mine);
            got.matrix()[(0, 0)] as usize
        });
        assert_eq!(out.results, vec![1, 2, 0]);
    }

    #[test]
    fn subgroups_operate_independently() {
        let cluster = Cluster::a100(4);
        let out = cluster.run(|ctx| {
            let row = ctx.rank / 2;
            let ranks = vec![row * 2, row * 2 + 1];
            let g = ctx.group("row", ranks);
            let t = DenseTensor::from_matrix(Matrix::full(1, 1, (ctx.rank + 1) as f32));
            g.all_reduce(ctx, t).matrix()[(0, 0)]
        });
        assert_eq!(out.results, vec![3.0, 3.0, 7.0, 7.0]);
    }

    #[test]
    fn send_recv_moves_data_between_ranks() {
        let cluster = Cluster::a100(2);
        let out = cluster.run(|ctx| {
            let world = ctx.world_group();
            if ctx.rank == 0 {
                world.send(ctx, 1, 0, DenseTensor::from_matrix(Matrix::full(1, 1, 5.0)));
                0.0
            } else {
                let t: DenseTensor = world.recv(ctx, 0, 0);
                t.matrix()[(0, 0)]
            }
        });
        assert_eq!(out.results[1], 5.0);
        assert_eq!(out.comm.get(CollectiveOp::SendRecv).calls, 1);
    }

    #[test]
    fn clocks_are_synchronized_after_collectives() {
        let cluster = Cluster::a100(4);
        let out = cluster.run(|ctx| {
            // Unequal compute before the collective: rank r does r matmuls.
            let a = DenseTensor::from_matrix(Matrix::full(8, 8, 1.0));
            let mut acc = a.clone();
            for _ in 0..ctx.rank {
                acc = acc.matmul(&a, &mut ctx.meter);
            }
            let world = ctx.world_group();
            let _ = world.all_reduce(ctx, acc);
            ctx.flush_compute();
            ctx.clock()
        });
        let first = out.results[0];
        assert!(out.results.iter().all(|&c| (c - first).abs() < 1e-12));
        assert!(first > 0.0);
    }

    #[test]
    fn broadcast_charge_is_size_independent_of_receivers_and_synchronizes_clocks() {
        // Broadcast is charged in two fixed parts — the zero-byte rendezvous
        // latency plus the size-dependent `recharge` once the root's payload
        // size is known (the charging the calibrated tables were produced
        // with). Every member must land on exactly that clock, bitwise, and
        // payload *copies* must never move it: the shared path and the
        // cloning wrapper charge identically.
        let cluster = Cluster::a100(4);
        let out = cluster.run(|ctx| {
            let world = ctx.world_group();
            let payload =
                (ctx.rank == 0).then(|| DenseTensor::from_matrix(Matrix::full(4, 4, 1.0)));
            let got = world.broadcast_shared(ctx, 0, payload.map(Arc::new));
            let link = ctx.topology.worst_link(&(0..4).collect::<Vec<_>>());
            let expected = ctx.params.collective_time(CollectiveOp::Broadcast, 4, 0, link)
                + ctx.params.collective_time(CollectiveOp::Broadcast, 4, got.wire_size(), link);
            ctx.flush_compute();
            let after_shared = ctx.clock();
            // The owned wrapper deep-copies the result on every member; the
            // copy must cost host time only, never simulated time.
            let payload = (ctx.rank == 0).then(|| (*got).clone());
            let _ = world.broadcast(ctx, 0, payload);
            ctx.flush_compute();
            (after_shared, ctx.clock() - after_shared, expected)
        });
        let (first_clock, _, expected) = out.results[0];
        assert!(expected > 0.0);
        for &(clock, second_charge, _) in &out.results {
            assert_eq!(clock, first_clock, "member clocks diverged after broadcast");
            assert_eq!(clock, expected, "broadcast charge must be rendezvous + recharge");
            assert_eq!(second_charge, expected, "cloning wrapper must charge the same sim time");
        }
    }

    #[test]
    fn virtual_time_is_deterministic() {
        let run = || {
            Cluster::a100(8).run(|ctx| {
                let world = ctx.world_group();
                let t = DenseTensor::from_matrix(Matrix::full(16, 16, 1.0));
                let s = t.matmul(&t, &mut ctx.meter);
                let r = world.all_reduce(ctx, s);
                ctx.flush_compute();
                (ctx.clock(), r.matrix().sum())
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.results, b.results);
        assert_eq!(a.makespan(), b.makespan());
    }

    #[test]
    fn comm_stats_capture_volume() {
        let cluster = Cluster::a100(4);
        let out = cluster.run(|ctx| {
            let world = ctx.world_group();
            let t = DenseTensor::from_matrix(Matrix::zeros(4, 4));
            let _ = world.all_reduce(ctx, t);
        });
        let s = out.comm.get(CollectiveOp::AllReduce);
        assert_eq!(s.calls, 1);
        // 4x4 f32 = 64 bytes; ring all-reduce volume = 2 * 64 * (n-1).
        assert_eq!(s.wire_bytes, 2 * 64 * 3);
    }

    #[test]
    fn single_rank_cluster_works() {
        let out = Cluster::a100(1).run(|ctx| {
            let g = ctx.world_group();
            let t = DenseTensor::from_matrix(Matrix::full(2, 2, 3.0));
            g.all_reduce(ctx, t).matrix().sum()
        });
        assert_eq!(out.results, vec![12.0]);
        assert_eq!(out.makespan(), 0.0);
    }
}
