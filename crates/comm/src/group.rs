//! Process groups and collectives.
//!
//! A [`CommGroup`] is one rank's handle onto a subset of ranks (a grid row,
//! column or depth fiber). Collectives mirror the NCCL/MPI operations the
//! paper's implementation uses: broadcast, reduce, all-reduce, all-gather,
//! gather, scatter, cyclic shift (Cannon), barrier and point-to-point
//! send/recv. Each call:
//!
//! 1. flushes the caller's pending compute into its virtual clock,
//! 2. rendezvouses with the other members through the [`crate::fabric::Fabric`],
//! 3. advances everyone's clock to `max(entry clocks) + α–β cost`, and
//! 4. records wire bytes / call counts once per logical operation.
//!
//! Reductions combine deposits in ascending member order, so results are
//! bitwise deterministic run-to-run.

use std::cell::Cell;

use tesseract_tensor::TensorLike;

use crate::cost::CollectiveOp;
use crate::ctx::RankCtx;

/// Data that can travel through collectives.
pub trait Payload: Clone + Send + Sync + 'static {
    /// Size of one rank's contribution on the wire, in bytes.
    fn wire_size(&self) -> usize;
    /// Elementwise combine for reductions.
    fn combine(&mut self, other: &Self);
}

impl Payload for tesseract_tensor::DenseTensor {
    fn wire_size(&self) -> usize {
        self.byte_size()
    }

    fn combine(&mut self, other: &Self) {
        self.reduce_add_inplace(other);
    }
}

impl Payload for tesseract_tensor::ShadowTensor {
    fn wire_size(&self) -> usize {
        self.byte_size()
    }

    fn combine(&mut self, other: &Self) {
        self.reduce_add_inplace(other);
    }
}

impl Payload for () {
    fn wire_size(&self) -> usize {
        0
    }

    fn combine(&mut self, _other: &Self) {}
}

impl<P: Payload> Payload for Vec<P> {
    fn wire_size(&self) -> usize {
        self.iter().map(Payload::wire_size).sum()
    }

    fn combine(&mut self, other: &Self) {
        assert_eq!(self.len(), other.len(), "Vec payload length mismatch in reduce");
        for (a, b) in self.iter_mut().zip(other.iter()) {
            a.combine(b);
        }
    }
}

/// FNV-1a over a tag and the member ranks; gives every distinct group a
/// stable identifier shared by all of its members.
fn group_id(tag: &str, ranks: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for b in tag.as_bytes() {
        eat(*b);
    }
    eat(0xff);
    for &r in ranks {
        for b in (r as u64).to_le_bytes() {
            eat(b);
        }
    }
    h
}

/// One rank's handle onto a communication group.
///
/// Contract (SPMD): every member constructs the group with the same `tag`
/// and the same rank list (same order), constructs it once, and issues the
/// same collectives in the same order.
pub struct CommGroup {
    id: u64,
    ranks: Vec<usize>,
    my_index: usize,
    seq: Cell<u64>,
}

impl CommGroup {
    /// Creates this rank's handle. `ranks` must contain `ctx.rank`.
    pub fn new(ctx: &RankCtx, tag: &str, ranks: Vec<usize>) -> Self {
        let my_index = ranks
            .iter()
            .position(|&r| r == ctx.rank)
            .unwrap_or_else(|| panic!("rank {} not a member of group '{tag}' {ranks:?}", ctx.rank));
        Self { id: group_id(tag, &ranks), ranks, my_index, seq: Cell::new(0) }
    }

    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    pub fn my_index(&self) -> usize {
        self.my_index
    }

    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    fn next_seq(&self) -> u64 {
        let s = self.seq.get();
        self.seq.set(s + 1);
        s
    }

    /// Runs one rendezvous and applies clock/cost/stat accounting.
    /// `bytes` is the per-rank payload size used by the cost formulas.
    fn sync<P: Send + Sync + 'static>(
        &self,
        ctx: &mut RankCtx,
        op: CollectiveOp,
        bytes: usize,
        payload: Option<P>,
        record: bool,
    ) -> std::sync::Arc<Vec<Option<P>>> {
        ctx.flush_compute();
        let key = (self.id, self.next_seq());
        let entry = ctx.clock();
        let (max_vt, deposits) =
            ctx.fabric().exchange(key, self.my_index, self.size(), payload, entry);
        let link = ctx.topology.worst_link(&self.ranks);
        let cost = ctx.params.collective_time(op, self.size(), bytes, link);
        ctx.advance_comm(max_vt + cost);
        if record && self.my_index == 0 {
            let wire = ctx.params.wire_bytes(op, self.size(), bytes);
            ctx.stats().record(op, wire, cost);
        }
        deposits
    }

    /// Synchronizes all members without moving data.
    pub fn barrier(&self, ctx: &mut RankCtx) {
        let _ = self.sync::<()>(ctx, CollectiveOp::Barrier, 0, Some(()), true);
    }

    /// Root (by member index) provides the payload; everyone receives it.
    pub fn broadcast<P: Payload>(&self, ctx: &mut RankCtx, root: usize, payload: Option<P>) -> P {
        assert_eq!(
            payload.is_some(),
            self.my_index == root,
            "broadcast: exactly the root must supply the payload"
        );
        // The root's payload size drives the cost; non-roots don't know it
        // yet, which is fine: cost is applied identically from the deposit.
        let deposits = self.sync(ctx, CollectiveOp::Broadcast, 0, payload, false);
        let value = deposits[root].as_ref().expect("root deposited").clone();
        // Re-charge time/stats now that the size is known (sync charged 0).
        self.recharge(ctx, CollectiveOp::Broadcast, value.wire_size());
        value
    }

    /// Adds the cost of an op whose byte size was only known after the
    /// rendezvous. Keeps clocks identical across members because every
    /// member executes the same re-charge.
    fn recharge(&self, ctx: &mut RankCtx, op: CollectiveOp, bytes: usize) {
        let link = ctx.topology.worst_link(&self.ranks);
        let cost = ctx.params.collective_time(op, self.size(), bytes, link);
        ctx.advance_comm(ctx.clock() + cost);
        if self.my_index == 0 {
            let wire = ctx.params.wire_bytes(op, self.size(), bytes);
            ctx.stats().record(op, wire, cost);
        }
    }

    /// Sum-reduction to `root`; only the root receives the combined value.
    pub fn reduce<P: Payload>(&self, ctx: &mut RankCtx, root: usize, payload: P) -> Option<P> {
        let bytes = payload.wire_size();
        let deposits = self.sync(ctx, CollectiveOp::Reduce, bytes, Some(payload), true);
        if self.my_index == root {
            Some(combine_in_order(&deposits))
        } else {
            None
        }
    }

    /// Sum-reduction delivered to every member.
    pub fn all_reduce<P: Payload>(&self, ctx: &mut RankCtx, payload: P) -> P {
        let bytes = payload.wire_size();
        let deposits = self.sync(ctx, CollectiveOp::AllReduce, bytes, Some(payload), true);
        combine_in_order(&deposits)
    }

    /// Every member receives every member's payload, in member order.
    pub fn all_gather<P: Payload>(&self, ctx: &mut RankCtx, payload: P) -> Vec<P> {
        let bytes = payload.wire_size();
        let deposits = self.sync(ctx, CollectiveOp::AllGather, bytes, Some(payload), true);
        deposits.iter().map(|d| d.as_ref().expect("all deposited").clone()).collect()
    }

    /// Root receives every member's payload, in member order.
    pub fn gather<P: Payload>(&self, ctx: &mut RankCtx, root: usize, payload: P) -> Option<Vec<P>> {
        let bytes = payload.wire_size();
        let deposits = self.sync(ctx, CollectiveOp::Gather, bytes, Some(payload), true);
        if self.my_index == root {
            Some(deposits.iter().map(|d| d.as_ref().expect("all deposited").clone()).collect())
        } else {
            None
        }
    }

    /// Root provides one payload per member; each member receives its own.
    pub fn scatter<P: Payload>(&self, ctx: &mut RankCtx, root: usize, parts: Option<Vec<P>>) -> P {
        if let Some(ref p) = parts {
            assert_eq!(p.len(), self.size(), "scatter: need one part per member");
        }
        assert_eq!(
            parts.is_some(),
            self.my_index == root,
            "scatter: exactly the root must supply the parts"
        );
        let deposits = self.sync(ctx, CollectiveOp::Scatter, 0, parts, false);
        let all = deposits[root].as_ref().expect("root deposited");
        let mine = all[self.my_index].clone();
        self.recharge(ctx, CollectiveOp::Scatter, mine.wire_size());
        mine
    }

    /// Cyclic shift: every member sends its payload `offset` positions
    /// forward (member order, wrapping) and receives from `offset` behind.
    /// `offset` may be negative. This is Cannon's primitive.
    pub fn shift<P: Payload>(&self, ctx: &mut RankCtx, offset: isize, payload: P) -> P {
        let n = self.size() as isize;
        let bytes = payload.wire_size();
        let deposits = self.sync(ctx, CollectiveOp::Shift, bytes, Some(payload), true);
        let src = (self.my_index as isize - offset).rem_euclid(n) as usize;
        deposits[src].as_ref().expect("all deposited").clone()
    }

    /// Point-to-point send to another member (by member index).
    pub fn send<P: Payload>(&self, ctx: &mut RankCtx, dst: usize, tag: u64, payload: P) {
        assert!(dst < self.size() && dst != self.my_index, "send: bad destination");
        ctx.flush_compute();
        let bytes = payload.wire_size();
        let chan = (self.id, self.my_index, dst, tag);
        ctx.fabric().send(chan, payload, ctx.clock());
        let link = ctx.topology.link_between(self.ranks[self.my_index], self.ranks[dst]);
        let (alpha, _) = ctx.params.link_params(link);
        // The sender only pays injection latency; transfer time is charged
        // to the receiver (eager-send model).
        ctx.advance_comm(ctx.clock() + alpha);
        let wire = ctx.params.wire_bytes(CollectiveOp::SendRecv, 2, bytes);
        ctx.stats().record(CollectiveOp::SendRecv, wire, 0.0);
    }

    /// Point-to-point receive from another member (by member index).
    pub fn recv<P: Payload>(&self, ctx: &mut RankCtx, src: usize, tag: u64) -> P {
        assert!(src < self.size() && src != self.my_index, "recv: bad source");
        ctx.flush_compute();
        let chan = (self.id, src, self.my_index, tag);
        let (send_vt, payload): (f64, P) = ctx.fabric().recv(chan);
        let link = ctx.topology.link_between(self.ranks[src], self.ranks[self.my_index]);
        let cost = ctx.params.collective_time(CollectiveOp::SendRecv, 2, payload.wire_size(), link);
        let ready = send_vt.max(ctx.clock());
        ctx.advance_comm(ready + cost);
        payload
    }
}

/// Combines deposits in ascending member order (deterministic reduction).
fn combine_in_order<P: Payload>(deposits: &[Option<P>]) -> P {
    let mut iter = deposits.iter();
    let mut acc = iter.next().expect("non-empty group").as_ref().expect("deposited").clone();
    for d in iter {
        acc.combine(d.as_ref().expect("deposited"));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_ids_differ_by_ranks_and_tag() {
        let a = group_id("row", &[0, 1]);
        let b = group_id("row", &[2, 3]);
        let c = group_id("col", &[0, 1]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, group_id("row", &[0, 1]));
    }

    #[test]
    fn vec_payload_sizes_and_combines() {
        use tesseract_tensor::{DenseTensor, Matrix};
        let a = vec![
            DenseTensor::from_matrix(Matrix::full(2, 2, 1.0)),
            DenseTensor::from_matrix(Matrix::full(1, 2, 2.0)),
        ];
        assert_eq!(a.wire_size(), (4 + 2) * 4);
        let mut acc = a.clone();
        acc.combine(&a);
        assert_eq!(acc[0].matrix().data(), &[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(acc[1].matrix().data(), &[4.0, 4.0]);
    }
}
