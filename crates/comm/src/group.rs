//! Process groups and collectives.
//!
//! A [`CommGroup`] is one rank's handle onto a subset of ranks (a grid row,
//! column or depth fiber). Collectives mirror the NCCL/MPI operations the
//! paper's implementation uses: broadcast, reduce, all-reduce, all-gather,
//! gather, scatter, cyclic shift (Cannon), barrier and point-to-point
//! send/recv. Each call:
//!
//! 1. flushes the caller's pending compute into its virtual clock,
//! 2. rendezvouses with the other members through the [`crate::fabric::Fabric`],
//! 3. advances everyone's clock to `max(entry clocks) + α–β cost`, and
//! 4. records wire bytes / call counts once per logical operation.
//!
//! Reductions combine deposits in ascending member order, so results are
//! bitwise deterministic run-to-run.
//!
//! # Zero-copy collectives
//!
//! Read-only payloads travel as `Arc<P>`: [`CommGroup::broadcast_shared`]
//! and [`CommGroup::all_gather_shared`] hand every receiver an `Arc` clone
//! of the root's deposit — the payload is materialized exactly once per
//! rendezvous regardless of group size. [`CommGroup::reduce_shared`] and
//! [`CommGroup::all_reduce_shared`] take deposits *by value* and fold them
//! in place (ascending member order, once per rendezvous instead of once
//! per member). The owned-value collectives remain as compatibility
//! wrappers; every deep copy they make is recorded in
//! [`crate::stats::OpStats::copies`] and `Meter::payload_copies`, so the
//! cloning path is observable and copy regressions are testable.
//!
//! Ownership rule: an `Arc` returned from a shared collective may be read
//! freely but must never be mutated through `Arc::get_mut` — other ranks
//! (or the fabric slot, transiently) may hold clones. Use
//! `Arc::make_mut` for copy-on-write or clone explicitly.
//!
//! # Split-phase collectives
//!
//! Every data-moving collective also exists as a `*_begin` variant that
//! returns a [`PendingCollective`]: the payload is deposited into the
//! fabric immediately (after flushing pending compute, so the deposit
//! timestamp is exact), and the blocking wait plus all clock/cost/stat
//! accounting is deferred to [`PendingCollective::complete`]. Compute
//! issued between `begin` and `complete` overlaps the rendezvous; at
//! `complete` the clock is only advanced to the collective's serial exit
//! time (`max(entry clocks) + α–β cost`) if it is not already past it, so
//! the virtual clock charges exactly the *non-overlapped remainder* of the
//! wait. The hidden portion is recorded in `Meter::overlap_hidden_nanos`
//! and [`crate::stats::OpStats::hidden_time`] instead of being charged.
//!
//! Data results are bitwise identical to the blocking calls: the same
//! fabric slots, the same `Arc` sharing, the same ascending-member-order
//! folds — only the timing accounting differs.
//!
//! Pending collectives on one group must be completed in begin order
//! (FIFO, the NCCL stream discipline); completing out of order panics, as
//! does dropping a handle without completing it.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::Arc;

use tesseract_tensor::{trace, TensorLike, TraceKind};

use crate::cost::CollectiveOp;
use crate::ctx::RankCtx;
use crate::topology::GroupPlacement;

/// Per-collective trace observer. Opened at the public entry of every
/// collective (or at `complete` for split-phase ones, with the deposit
/// timestamp as its begin), it accumulates what the charging internals
/// (`sync`/`recharge`/`finish_charge`) already compute — rendezvous key,
/// slowest entry, α–β cost, stats contributions — plus *deltas* of the
/// rank's lifetime wait/hidden counters, and emits one
/// [`TraceKind::Comm`] span at [`CommScope::finish`]. When tracing is
/// inactive every method is a no-op behind one bool; the observer never
/// feeds back into any charge, so traced and untraced runs are bitwise
/// identical.
struct CommScope {
    active: bool,
    op: CollectiveOp,
    /// Span start: entry clock (blocking) or deposit timestamp (split-phase).
    begin: f64,
    key: (u64, u64),
    max_entry_vt: f64,
    cost: f64,
    wire_bytes: u64,
    stats_time: f64,
    recorded: bool,
    hidden_time: f64,
    /// Lifetime wait/hidden counters at open; the span's blocked/hidden
    /// charges are the deltas at finish (both counters are invariant under
    /// `flush_compute`, so interleaved flushes cannot contaminate them).
    wait0: u64,
    hidden0: u64,
}

impl CommScope {
    fn open(ctx: &RankCtx, op: CollectiveOp) -> Self {
        let active = trace::is_active();
        Self {
            active,
            op,
            begin: f64::NAN,
            key: (0, 0),
            max_entry_vt: 0.0,
            cost: 0.0,
            wire_bytes: 0,
            stats_time: 0.0,
            recorded: false,
            hidden_time: 0.0,
            wait0: if active { ctx.lifetime_comm_wait_nanos() } else { 0 },
            hidden0: if active { ctx.lifetime_overlap_hidden_nanos() } else { 0 },
        }
    }

    /// Opens a scope whose span starts at a known earlier instant (the
    /// split-phase deposit timestamp).
    fn open_at(ctx: &RankCtx, op: CollectiveOp, key: (u64, u64), begin: f64) -> Self {
        let mut s = Self::open(ctx, op);
        s.key = key;
        s.begin = begin;
        s
    }

    /// Notes one rendezvous: its key, this rank's entry clock and the
    /// group-wide slowest entry.
    fn note_sync(&mut self, key: (u64, u64), entry: f64, max_vt: f64) {
        if !self.active {
            return;
        }
        self.key = key;
        if self.begin.is_nan() {
            self.begin = entry;
        }
        self.max_entry_vt = max_vt;
    }

    /// Notes α–β cost charged on behalf of this collective (a deferred-size
    /// op charges twice: zero-byte latency plus the recharge).
    fn note_cost(&mut self, cost: f64) {
        if self.active {
            self.cost += cost;
        }
    }

    /// Notes that this rank recorded the op into the global stats.
    fn note_stats(&mut self, wire: u64, time: f64) {
        if self.active {
            self.recorded = true;
            self.wire_bytes += wire;
            self.stats_time += time;
        }
    }

    /// Notes hidden-overlap seconds as handed to the stats collector.
    fn note_hidden(&mut self, seconds: f64) {
        if self.active {
            self.hidden_time += seconds;
        }
    }

    /// Emits the span, ending at the rank's current (charged) clock.
    fn finish(self, ctx: &RankCtx) {
        if !self.active {
            return;
        }
        let end = ctx.clock();
        let begin = if self.begin.is_nan() { end } else { self.begin };
        trace::record(
            self.op.name().to_string(),
            begin,
            end,
            TraceKind::Comm {
                op: self.op.name(),
                key_group: self.key.0,
                key_seq: self.key.1,
                max_entry_vt: self.max_entry_vt,
                cost: self.cost,
                blocked_nanos: ctx.lifetime_comm_wait_nanos() - self.wait0,
                hidden_nanos: ctx.lifetime_overlap_hidden_nanos() - self.hidden0,
                hidden_time: self.hidden_time,
                wire_bytes: self.wire_bytes,
                stats_time: self.stats_time,
                recorded: self.recorded,
            },
        );
    }
}

/// FNV-1a over a point-to-point channel's `(src, dst, tag)` triple: the
/// sequence half of the trace key shared by a send event and its matching
/// recv event (the group id is the other half).
fn chan_seq(src: usize, dst: usize, tag: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for word in [src as u64, dst as u64, tag] {
        for b in word.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// Data that can travel through collectives.
pub trait Payload: Clone + Send + Sync + 'static {
    /// Size of one rank's contribution on the wire, in bytes.
    fn wire_size(&self) -> usize;
    /// Elementwise combine for reductions.
    fn combine(&mut self, other: &Self);
}

impl Payload for tesseract_tensor::DenseTensor {
    fn wire_size(&self) -> usize {
        self.byte_size()
    }

    fn combine(&mut self, other: &Self) {
        self.reduce_add_inplace(other);
    }
}

impl Payload for tesseract_tensor::ShadowTensor {
    fn wire_size(&self) -> usize {
        self.byte_size()
    }

    fn combine(&mut self, other: &Self) {
        self.reduce_add_inplace(other);
    }
}

impl Payload for () {
    fn wire_size(&self) -> usize {
        0
    }

    fn combine(&mut self, _other: &Self) {}
}

/// `Arc<P>` travels through collectives and point-to-point channels without
/// copying the inner payload (the pipeline sends activations this way).
/// Reducing through the `Arc` uses copy-on-write: uniquely-owned deposits
/// are combined in place, shared ones are cloned first.
impl<P: Payload> Payload for Arc<P> {
    fn wire_size(&self) -> usize {
        (**self).wire_size()
    }

    fn combine(&mut self, other: &Self) {
        Arc::make_mut(self).combine(other);
    }
}

impl<P: Payload> Payload for Vec<P> {
    fn wire_size(&self) -> usize {
        self.iter().map(Payload::wire_size).sum()
    }

    fn combine(&mut self, other: &Self) {
        assert_eq!(self.len(), other.len(), "Vec payload length mismatch in reduce");
        for (a, b) in self.iter_mut().zip(other.iter()) {
            a.combine(b);
        }
    }
}

/// FNV-1a over a tag and the member ranks; gives every distinct group a
/// stable identifier shared by all of its members.
fn group_id(tag: &str, ranks: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for b in tag.as_bytes() {
        eat(*b);
    }
    eat(0xff);
    for &r in ranks {
        for b in (r as u64).to_le_bytes() {
            eat(b);
        }
    }
    h
}

/// One rank's handle onto a communication group.
///
/// Contract (SPMD): every member constructs the group with the same `tag`
/// and the same rank list (same order), constructs it once, and issues the
/// same collectives in the same order.
pub struct CommGroup {
    id: u64,
    ranks: Vec<usize>,
    my_index: usize,
    /// Node-boundary summary of `ranks`, computed once at construction (the
    /// topology is immutable for the life of a run); drives the two-level
    /// cost model at every charging site.
    placement: GroupPlacement,
    seq: Cell<u64>,
    /// Sequence numbers of split-phase collectives begun but not yet
    /// completed, in begin order. `complete` must drain this FIFO from the
    /// front; anything else is a sequencing bug on this rank.
    outstanding: RefCell<VecDeque<u64>>,
}

impl CommGroup {
    /// Creates this rank's handle. `ranks` must contain `ctx.rank`.
    pub fn new(ctx: &RankCtx, tag: &str, ranks: Vec<usize>) -> Self {
        let my_index = ranks
            .iter()
            .position(|&r| r == ctx.rank)
            .unwrap_or_else(|| panic!("rank {} not a member of group '{tag}' {ranks:?}", ctx.rank));
        Self {
            id: group_id(tag, &ranks),
            placement: ctx.topology.placement(&ranks),
            ranks,
            my_index,
            seq: Cell::new(0),
            outstanding: RefCell::new(VecDeque::new()),
        }
    }

    /// How this group's members sit relative to node boundaries.
    pub fn placement(&self) -> GroupPlacement {
        self.placement
    }

    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    pub fn my_index(&self) -> usize {
        self.my_index
    }

    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    fn next_seq(&self) -> u64 {
        let s = self.seq.get();
        self.seq.set(s + 1);
        s
    }

    /// Runs one rendezvous and applies clock/cost/stat accounting.
    /// `bytes` is the per-rank payload size used by the cost formulas;
    /// `None` means the size is only known after the rendezvous (broadcast,
    /// scatter): the rendezvous is then charged as a zero-byte collective
    /// (latency only, no stats), and [`CommGroup::recharge`] applies the
    /// size-dependent cost and records stats once the size is known — the
    /// exact charging the calibrated tables were produced with.
    fn sync<P: Send + Sync + 'static>(
        &self,
        ctx: &mut RankCtx,
        op: CollectiveOp,
        bytes: Option<usize>,
        payload: Option<P>,
        span: &mut CommScope,
    ) -> Arc<Vec<Option<P>>> {
        ctx.flush_compute();
        let key = (self.id, self.next_seq());
        let entry = ctx.clock();
        let (max_vt, deposits) =
            ctx.fabric().exchange(key, self.my_index, self.size(), payload, entry);
        span.note_sync(key, entry, max_vt);
        let cost = ctx.params.phased_collective_time(op, bytes.unwrap_or(0), self.placement).total;
        span.note_cost(cost);
        ctx.advance_comm(max_vt + cost);
        if bytes.is_some() && self.my_index == 0 {
            let wire = ctx.params.wire_bytes(op, self.size(), bytes.unwrap_or(0));
            ctx.stats().record(op, wire, cost);
            span.note_stats(wire, cost);
        }
        deposits
    }

    /// Runs one reducing rendezvous: deposits every member's payload by
    /// value, folds them in ascending member order exactly once (on the
    /// last-arriving rank, in place — no deposit is cloned), and hands
    /// every member an `Arc` of the combined result.
    fn sync_reduce<P: Payload>(
        &self,
        ctx: &mut RankCtx,
        op: CollectiveOp,
        payload: P,
        span: &mut CommScope,
    ) -> Arc<P> {
        ctx.flush_compute();
        let bytes = payload.wire_size();
        let key = (self.id, self.next_seq());
        let entry = ctx.clock();
        let (max_vt, combined) = ctx.fabric().exchange_reduce(
            key,
            self.my_index,
            self.size(),
            payload,
            entry,
            combine_parts_in_order,
        );
        span.note_sync(key, entry, max_vt);
        let cost = ctx.params.phased_collective_time(op, bytes, self.placement).total;
        span.note_cost(cost);
        ctx.advance_comm(max_vt + cost);
        if self.my_index == 0 {
            let wire = ctx.params.wire_bytes(op, self.size(), bytes);
            ctx.stats().record(op, wire, cost);
            span.note_stats(wire, cost);
        }
        combined
    }

    /// Clones an owned value out of a shared collective result, recording
    /// the copy in both the run-wide comm stats and this rank's meter. The
    /// owned compatibility wrappers route every materialization through
    /// here so copy counts stay deterministic: broadcast/all-reduce make
    /// one per member, all-gather `n` per member, reduce one at the root.
    fn clone_counted<P: Payload>(&self, ctx: &mut RankCtx, op: CollectiveOp, payload: &P) -> P {
        let bytes = payload.wire_size() as u64;
        ctx.stats().charge_copy(op, bytes);
        ctx.meter.charge_payload_copy(bytes);
        if trace::is_active() {
            let vt = ctx.vt_now();
            trace::record(
                format!("copy:{}", op.name()),
                vt,
                vt,
                TraceKind::Copy { op: op.name(), bytes },
            );
        }
        payload.clone()
    }

    /// Synchronizes all members without moving data.
    pub fn barrier(&self, ctx: &mut RankCtx) {
        // Barrier cost is bytes-independent, so it is charged in `sync`
        // directly (no deferred recharge needed).
        let mut span = CommScope::open(ctx, CollectiveOp::Barrier);
        let _ = self.sync::<()>(ctx, CollectiveOp::Barrier, Some(0), Some(()), &mut span);
        span.finish(ctx);
    }

    /// Zero-copy broadcast: the root (by member index) deposits an `Arc` of
    /// its payload — without cloning its local block — and every member
    /// (root included) receives an `Arc` clone of that single allocation.
    /// The payload is materialized exactly once per rendezvous regardless
    /// of the group size.
    pub fn broadcast_shared<P: Payload>(
        &self,
        ctx: &mut RankCtx,
        root: usize,
        payload: Option<Arc<P>>,
    ) -> Arc<P> {
        assert_eq!(
            payload.is_some(),
            self.my_index == root,
            "broadcast: exactly the root must supply the payload"
        );
        // The root's payload size drives the cost; non-roots don't know it
        // yet, so the rendezvous charges the zero-byte latency and
        // `recharge` adds the size-dependent cost identically on every
        // member once the size is known. One trace span covers both halves.
        let mut span = CommScope::open(ctx, CollectiveOp::Broadcast);
        let deposits = self.sync(ctx, CollectiveOp::Broadcast, None, payload, &mut span);
        let value = Arc::clone(deposits[root].as_ref().expect("root deposited"));
        self.recharge(ctx, CollectiveOp::Broadcast, value.wire_size(), &mut span);
        span.finish(ctx);
        value
    }

    /// Root (by member index) provides the payload; everyone receives an
    /// owned copy. Compatibility wrapper over [`CommGroup::broadcast_shared`]:
    /// makes one counted deep copy per member.
    pub fn broadcast<P: Payload>(&self, ctx: &mut RankCtx, root: usize, payload: Option<P>) -> P {
        let shared = self.broadcast_shared(ctx, root, payload.map(Arc::new));
        self.clone_counted(ctx, CollectiveOp::Broadcast, &*shared)
    }

    /// Adds the cost of an op whose byte size was only known after the
    /// rendezvous. Keeps clocks identical across members because every
    /// member executes the same re-charge.
    fn recharge(&self, ctx: &mut RankCtx, op: CollectiveOp, bytes: usize, span: &mut CommScope) {
        let cost = ctx.params.phased_collective_time(op, bytes, self.placement).total;
        span.note_cost(cost);
        ctx.advance_comm(ctx.clock() + cost);
        if self.my_index == 0 {
            let wire = ctx.params.wire_bytes(op, self.size(), bytes);
            ctx.stats().record(op, wire, cost);
            span.note_stats(wire, cost);
        }
    }

    /// In-place sum-reduction to `root`: every member's payload is consumed
    /// by value and folded without cloning; only the root receives the
    /// combined value (shared, not copied).
    pub fn reduce_shared<P: Payload>(
        &self,
        ctx: &mut RankCtx,
        root: usize,
        payload: P,
    ) -> Option<Arc<P>> {
        let mut span = CommScope::open(ctx, CollectiveOp::Reduce);
        let combined = self.sync_reduce(ctx, CollectiveOp::Reduce, payload, &mut span);
        span.finish(ctx);
        (self.my_index == root).then_some(combined)
    }

    /// Sum-reduction to `root`, returning an owned value. Compatibility
    /// wrapper over [`CommGroup::reduce_shared`]: one counted copy at root.
    pub fn reduce<P: Payload>(&self, ctx: &mut RankCtx, root: usize, payload: P) -> Option<P> {
        let mut span = CommScope::open(ctx, CollectiveOp::Reduce);
        let combined = self.sync_reduce(ctx, CollectiveOp::Reduce, payload, &mut span);
        span.finish(ctx);
        (self.my_index == root).then(|| self.clone_counted(ctx, CollectiveOp::Reduce, &*combined))
    }

    /// In-place sum-reduction delivered to every member as one shared
    /// allocation: payloads are consumed by value, folded exactly once (in
    /// ascending member order), never cloned.
    pub fn all_reduce_shared<P: Payload>(&self, ctx: &mut RankCtx, payload: P) -> Arc<P> {
        let mut span = CommScope::open(ctx, CollectiveOp::AllReduce);
        let combined = self.sync_reduce(ctx, CollectiveOp::AllReduce, payload, &mut span);
        span.finish(ctx);
        combined
    }

    /// Sum-reduction delivered to every member as an owned value.
    /// Compatibility wrapper over [`CommGroup::all_reduce_shared`]: one
    /// counted copy per member.
    pub fn all_reduce<P: Payload>(&self, ctx: &mut RankCtx, payload: P) -> P {
        let mut span = CommScope::open(ctx, CollectiveOp::AllReduce);
        let combined = self.sync_reduce(ctx, CollectiveOp::AllReduce, payload, &mut span);
        span.finish(ctx);
        self.clone_counted(ctx, CollectiveOp::AllReduce, &*combined)
    }

    /// Zero-copy all-gather: every member receives `Arc` clones of every
    /// member's deposit, in member order. Each payload is materialized once
    /// cluster-wide instead of once per receiver (the owned wrapper's
    /// O(n²) clones).
    pub fn all_gather_shared<P: Payload>(&self, ctx: &mut RankCtx, payload: Arc<P>) -> Vec<Arc<P>> {
        let bytes = payload.wire_size();
        let mut span = CommScope::open(ctx, CollectiveOp::AllGather);
        let deposits =
            self.sync(ctx, CollectiveOp::AllGather, Some(bytes), Some(payload), &mut span);
        span.finish(ctx);
        deposits.iter().map(|d| Arc::clone(d.as_ref().expect("all deposited"))).collect()
    }

    /// Every member receives every member's payload, in member order.
    /// Compatibility wrapper over [`CommGroup::all_gather_shared`]: `n`
    /// counted copies per member.
    pub fn all_gather<P: Payload>(&self, ctx: &mut RankCtx, payload: P) -> Vec<P> {
        let shared = self.all_gather_shared(ctx, Arc::new(payload));
        shared.iter().map(|d| self.clone_counted(ctx, CollectiveOp::AllGather, &**d)).collect()
    }

    /// Fused reduce-scatter: every member's payload is consumed by value
    /// and folded exactly once in ascending member order — the identical
    /// fold [`CommGroup::all_reduce_shared`] performs, so the combined
    /// values are bitwise equal to an all-reduce — but the op is *charged*
    /// as a ring reduce-scatter (half the all-reduce's wire volume: each
    /// member keeps only a `1/n` slice). The shared-memory fabric hands
    /// every member an `Arc` of the full fold; the caller materializes its
    /// own slice (the "scatter" half), which is metered as data movement at
    /// the call site. This is what lets the sequence-parallel matmul path
    /// replace a reduce-to-root with a reduce-scatter without perturbing
    /// the fold order the parity tests pin.
    pub fn reduce_scatter_shared<P: Payload>(&self, ctx: &mut RankCtx, payload: P) -> Arc<P> {
        let mut span = CommScope::open(ctx, CollectiveOp::ReduceScatter);
        let combined = self.sync_reduce(ctx, CollectiveOp::ReduceScatter, payload, &mut span);
        span.finish(ctx);
        combined
    }

    /// Zero-copy all-to-all: every member deposits one `Arc` payload and
    /// receives `Arc` clones of every member's deposit, in member order —
    /// exactly the rendezvous shape of [`CommGroup::all_gather_shared`] —
    /// but charged as a pairwise all-to-all (`(n−1)α + (n−1)/n · b/β`: each
    /// peer only consumes a `1/n` slice of each deposit). The caller slices
    /// the portion addressed to it out of each deposit; those slices are
    /// metered as data movement at the call site. Used for the
    /// sequence-parallel boundary re-shards (`[R, c] ↔ [R/q, c·q]`).
    pub fn all_to_all_shared<P: Payload>(&self, ctx: &mut RankCtx, payload: Arc<P>) -> Vec<Arc<P>> {
        let bytes = payload.wire_size();
        let mut span = CommScope::open(ctx, CollectiveOp::AllToAll);
        let deposits =
            self.sync(ctx, CollectiveOp::AllToAll, Some(bytes), Some(payload), &mut span);
        span.finish(ctx);
        deposits.iter().map(|d| Arc::clone(d.as_ref().expect("all deposited"))).collect()
    }

    /// Root receives every member's payload, in member order (`n` counted
    /// copies, all at the root).
    pub fn gather<P: Payload>(&self, ctx: &mut RankCtx, root: usize, payload: P) -> Option<Vec<P>> {
        let bytes = payload.wire_size();
        let mut span = CommScope::open(ctx, CollectiveOp::Gather);
        let deposits =
            self.sync(ctx, CollectiveOp::Gather, Some(bytes), Some(Arc::new(payload)), &mut span);
        span.finish(ctx);
        (self.my_index == root).then(|| {
            deposits
                .iter()
                .map(|d| {
                    self.clone_counted(
                        ctx,
                        CollectiveOp::Gather,
                        &**d.as_ref().expect("all deposited"),
                    )
                })
                .collect()
        })
    }

    /// Root provides one payload per member; each member receives its own
    /// (one counted copy per member — the root's part vector is deposited
    /// whole, without cloning).
    pub fn scatter<P: Payload>(&self, ctx: &mut RankCtx, root: usize, parts: Option<Vec<P>>) -> P {
        if let Some(ref p) = parts {
            assert_eq!(p.len(), self.size(), "scatter: need one part per member");
        }
        assert_eq!(
            parts.is_some(),
            self.my_index == root,
            "scatter: exactly the root must supply the parts"
        );
        let mut span = CommScope::open(ctx, CollectiveOp::Scatter);
        let deposits = self.sync(ctx, CollectiveOp::Scatter, None, parts.map(Arc::new), &mut span);
        let all = deposits[root].as_ref().expect("root deposited");
        let mine = self.clone_counted(ctx, CollectiveOp::Scatter, &all[self.my_index]);
        self.recharge(ctx, CollectiveOp::Scatter, mine.wire_size(), &mut span);
        span.finish(ctx);
        mine
    }

    /// Cyclic shift: every member sends its payload `offset` positions
    /// forward (member order, wrapping) and receives from `offset` behind
    /// (one counted copy per member). `offset` may be negative. This is
    /// Cannon's primitive.
    pub fn shift<P: Payload>(&self, ctx: &mut RankCtx, offset: isize, payload: P) -> P {
        let n = self.size() as isize;
        let bytes = payload.wire_size();
        let mut span = CommScope::open(ctx, CollectiveOp::Shift);
        let deposits =
            self.sync(ctx, CollectiveOp::Shift, Some(bytes), Some(Arc::new(payload)), &mut span);
        span.finish(ctx);
        let src = (self.my_index as isize - offset).rem_euclid(n) as usize;
        self.clone_counted(
            ctx,
            CollectiveOp::Shift,
            &**deposits[src].as_ref().expect("all deposited"),
        )
    }

    // ---- Split-phase collectives ------------------------------------

    /// Non-blocking first half shared by all split-phase non-reducing
    /// collectives: flushes pending compute (so the deposit timestamp is
    /// exact), deposits the payload, and registers the sequence number as
    /// outstanding. Returns `(seq, deposit timestamp)`.
    fn begin_sync<P: Send + Sync + 'static>(
        &self,
        ctx: &mut RankCtx,
        payload: Option<P>,
    ) -> (u64, f64) {
        ctx.flush_compute();
        let seq = self.next_seq();
        let deposit_vt = ctx.clock();
        ctx.fabric().deposit((self.id, seq), self.my_index, self.size(), payload, deposit_vt);
        self.outstanding.borrow_mut().push_back(seq);
        (seq, deposit_vt)
    }

    /// Reducing counterpart of [`CommGroup::begin_sync`]. The payload's
    /// wire size must be captured here — it is consumed by the fold.
    /// Returns `(seq, deposit timestamp, wire bytes)`.
    fn begin_reduce<P: Payload>(&self, ctx: &mut RankCtx, payload: P) -> (u64, f64, usize) {
        ctx.flush_compute();
        let bytes = payload.wire_size();
        let seq = self.next_seq();
        let deposit_vt = ctx.clock();
        ctx.fabric().deposit_reduce(
            (self.id, seq),
            self.my_index,
            self.size(),
            payload,
            deposit_vt,
            combine_parts_in_order,
        );
        self.outstanding.borrow_mut().push_back(seq);
        (seq, deposit_vt, bytes)
    }

    /// Enforces the FIFO completion discipline: `seq` must be the oldest
    /// outstanding begin on this group.
    fn pop_outstanding(&self, op: CollectiveOp, seq: u64) {
        let mut q = self.outstanding.borrow_mut();
        let front = *q.front().unwrap_or_else(|| {
            panic!("completing {} seq {seq} but no split-phase begin is outstanding", op.name())
        });
        assert_eq!(
            front,
            seq,
            "split-phase collective completed out of order: completing {} seq {seq} \
             but the oldest outstanding begin is seq {front}",
            op.name()
        );
        q.pop_front();
    }

    /// Clock/cost/stat accounting for the completion half. The serial exit
    /// time is `max(entry clocks) + α–β cost` — identical to the blocking
    /// path — but the clock only advances by the *non-overlapped remainder*:
    /// whatever portion of the wait the caller's compute already covered is
    /// recorded as hidden time instead of being charged. `deferred_size`
    /// mirrors the blocking broadcast/scatter charging (zero-byte latency
    /// plus a size-dependent recharge; only the recharge reaches the stats).
    fn finish_charge(
        &self,
        ctx: &mut RankCtx,
        op: CollectiveOp,
        max_vt: f64,
        bytes: usize,
        deposit_vt: f64,
        deferred_size: bool,
        span: &mut CommScope,
    ) {
        let cost_b = ctx.params.phased_collective_time(op, bytes, self.placement).total;
        let cost0 = if deferred_size {
            ctx.params.phased_collective_time(op, 0, self.placement).total
        } else {
            0.0
        };
        span.note_sync(span.key, deposit_vt, max_vt);
        span.note_cost(cost0 + cost_b);
        let target = max_vt + cost0 + cost_b;
        let hidden = (ctx.clock().min(target) - deposit_vt).max(0.0);
        if hidden > 0.0 {
            ctx.meter.charge_overlap_hidden(hidden);
            ctx.stats().charge_hidden(op, hidden);
            span.note_hidden(hidden);
        }
        ctx.advance_comm(target);
        if self.my_index == 0 {
            let wire = ctx.params.wire_bytes(op, self.size(), bytes);
            ctx.stats().record(op, wire, cost_b);
            span.note_stats(wire, cost_b);
        }
    }

    fn pending<'g, R: 'g>(
        &'g self,
        op: CollectiveOp,
        seq: u64,
        finish: impl FnOnce(&mut RankCtx) -> R + 'g,
    ) -> PendingCollective<'g, R> {
        PendingCollective { op, seq, finish: Some(Box::new(finish)) }
    }

    /// Split-phase [`CommGroup::broadcast_shared`]: deposits the root's
    /// `Arc` immediately; the returned handle blocks (and pays only the
    /// non-overlapped wait) at `complete`. Data is bitwise identical to the
    /// blocking call — every member receives a clone of the same allocation.
    pub fn broadcast_shared_begin<'g, P: Payload>(
        &'g self,
        ctx: &mut RankCtx,
        root: usize,
        payload: Option<Arc<P>>,
    ) -> PendingCollective<'g, Arc<P>> {
        assert_eq!(
            payload.is_some(),
            self.my_index == root,
            "broadcast: exactly the root must supply the payload"
        );
        let (seq, deposit_vt) = self.begin_sync(ctx, payload);
        self.pending(CollectiveOp::Broadcast, seq, move |ctx| {
            self.pop_outstanding(CollectiveOp::Broadcast, seq);
            let mut span =
                CommScope::open_at(ctx, CollectiveOp::Broadcast, (self.id, seq), deposit_vt);
            ctx.flush_compute();
            let (max_vt, deposits) =
                ctx.fabric().wait::<Arc<P>>((self.id, seq), self.my_index, self.size());
            let value = Arc::clone(deposits[root].as_ref().expect("root deposited"));
            self.finish_charge(
                ctx,
                CollectiveOp::Broadcast,
                max_vt,
                value.wire_size(),
                deposit_vt,
                true,
                &mut span,
            );
            span.finish(ctx);
            value
        })
    }

    /// Split-phase [`CommGroup::broadcast`] (owned result; one counted copy
    /// per member, made at `complete`).
    pub fn broadcast_begin<'g, P: Payload>(
        &'g self,
        ctx: &mut RankCtx,
        root: usize,
        payload: Option<P>,
    ) -> PendingCollective<'g, P> {
        self.broadcast_shared_begin(ctx, root, payload.map(Arc::new))
            .map(move |ctx, shared| self.clone_counted(ctx, CollectiveOp::Broadcast, &*shared))
    }

    /// Split-phase [`CommGroup::reduce_shared`]: the payload is consumed
    /// and deposited immediately; `complete` hands the root the combined
    /// value (ascending member-order fold, bitwise identical to blocking).
    pub fn reduce_shared_begin<'g, P: Payload>(
        &'g self,
        ctx: &mut RankCtx,
        root: usize,
        payload: P,
    ) -> PendingCollective<'g, Option<Arc<P>>> {
        let (seq, deposit_vt, bytes) = self.begin_reduce(ctx, payload);
        self.pending(CollectiveOp::Reduce, seq, move |ctx| {
            self.pop_outstanding(CollectiveOp::Reduce, seq);
            let mut span =
                CommScope::open_at(ctx, CollectiveOp::Reduce, (self.id, seq), deposit_vt);
            ctx.flush_compute();
            let (max_vt, combined) =
                ctx.fabric().wait_reduce::<P>((self.id, seq), self.my_index, self.size());
            self.finish_charge(
                ctx,
                CollectiveOp::Reduce,
                max_vt,
                bytes,
                deposit_vt,
                false,
                &mut span,
            );
            span.finish(ctx);
            (self.my_index == root).then_some(combined)
        })
    }

    /// Split-phase [`CommGroup::reduce`] (owned result at root; one counted
    /// copy, made at `complete`).
    pub fn reduce_begin<'g, P: Payload>(
        &'g self,
        ctx: &mut RankCtx,
        root: usize,
        payload: P,
    ) -> PendingCollective<'g, Option<P>> {
        self.reduce_shared_begin(ctx, root, payload).map(move |ctx, shared| {
            shared.map(|s| self.clone_counted(ctx, CollectiveOp::Reduce, &*s))
        })
    }

    /// Split-phase [`CommGroup::all_reduce_shared`].
    pub fn all_reduce_shared_begin<'g, P: Payload>(
        &'g self,
        ctx: &mut RankCtx,
        payload: P,
    ) -> PendingCollective<'g, Arc<P>> {
        let (seq, deposit_vt, bytes) = self.begin_reduce(ctx, payload);
        self.pending(CollectiveOp::AllReduce, seq, move |ctx| {
            self.pop_outstanding(CollectiveOp::AllReduce, seq);
            let mut span =
                CommScope::open_at(ctx, CollectiveOp::AllReduce, (self.id, seq), deposit_vt);
            ctx.flush_compute();
            let (max_vt, combined) =
                ctx.fabric().wait_reduce::<P>((self.id, seq), self.my_index, self.size());
            self.finish_charge(
                ctx,
                CollectiveOp::AllReduce,
                max_vt,
                bytes,
                deposit_vt,
                false,
                &mut span,
            );
            span.finish(ctx);
            combined
        })
    }

    /// Split-phase [`CommGroup::all_reduce`] (owned result; one counted
    /// copy per member, made at `complete`).
    pub fn all_reduce_begin<'g, P: Payload>(
        &'g self,
        ctx: &mut RankCtx,
        payload: P,
    ) -> PendingCollective<'g, P> {
        self.all_reduce_shared_begin(ctx, payload)
            .map(move |ctx, shared| self.clone_counted(ctx, CollectiveOp::AllReduce, &*shared))
    }

    /// Split-phase [`CommGroup::all_gather_shared`].
    pub fn all_gather_shared_begin<'g, P: Payload>(
        &'g self,
        ctx: &mut RankCtx,
        payload: Arc<P>,
    ) -> PendingCollective<'g, Vec<Arc<P>>> {
        let bytes = payload.wire_size();
        let (seq, deposit_vt) = self.begin_sync(ctx, Some(payload));
        self.pending(CollectiveOp::AllGather, seq, move |ctx| {
            self.pop_outstanding(CollectiveOp::AllGather, seq);
            let mut span =
                CommScope::open_at(ctx, CollectiveOp::AllGather, (self.id, seq), deposit_vt);
            ctx.flush_compute();
            let (max_vt, deposits) =
                ctx.fabric().wait::<Arc<P>>((self.id, seq), self.my_index, self.size());
            self.finish_charge(
                ctx,
                CollectiveOp::AllGather,
                max_vt,
                bytes,
                deposit_vt,
                false,
                &mut span,
            );
            span.finish(ctx);
            deposits.iter().map(|d| Arc::clone(d.as_ref().expect("all deposited"))).collect()
        })
    }

    /// Split-phase [`CommGroup::all_gather`] (owned results; `n` counted
    /// copies per member, made at `complete`).
    pub fn all_gather_begin<'g, P: Payload>(
        &'g self,
        ctx: &mut RankCtx,
        payload: P,
    ) -> PendingCollective<'g, Vec<P>> {
        self.all_gather_shared_begin(ctx, Arc::new(payload)).map(move |ctx, shared| {
            shared.iter().map(|d| self.clone_counted(ctx, CollectiveOp::AllGather, &**d)).collect()
        })
    }

    /// Split-phase [`CommGroup::reduce_scatter_shared`]: the payload is
    /// consumed and deposited immediately; `complete` hands every member
    /// the full ascending-order fold (bitwise identical to all-reduce),
    /// charged as a reduce-scatter. Slots into the SUMMA split-phase
    /// schedule exactly where a `reduce_shared_begin` sat.
    pub fn reduce_scatter_shared_begin<'g, P: Payload>(
        &'g self,
        ctx: &mut RankCtx,
        payload: P,
    ) -> PendingCollective<'g, Arc<P>> {
        let (seq, deposit_vt, bytes) = self.begin_reduce(ctx, payload);
        self.pending(CollectiveOp::ReduceScatter, seq, move |ctx| {
            self.pop_outstanding(CollectiveOp::ReduceScatter, seq);
            let mut span =
                CommScope::open_at(ctx, CollectiveOp::ReduceScatter, (self.id, seq), deposit_vt);
            ctx.flush_compute();
            let (max_vt, combined) =
                ctx.fabric().wait_reduce::<P>((self.id, seq), self.my_index, self.size());
            self.finish_charge(
                ctx,
                CollectiveOp::ReduceScatter,
                max_vt,
                bytes,
                deposit_vt,
                false,
                &mut span,
            );
            span.finish(ctx);
            combined
        })
    }

    /// Split-phase [`CommGroup::all_to_all_shared`]: deposits this member's
    /// `Arc` immediately; `complete` returns every member's deposit in
    /// member order, charged as a pairwise all-to-all.
    pub fn all_to_all_shared_begin<'g, P: Payload>(
        &'g self,
        ctx: &mut RankCtx,
        payload: Arc<P>,
    ) -> PendingCollective<'g, Vec<Arc<P>>> {
        let bytes = payload.wire_size();
        let (seq, deposit_vt) = self.begin_sync(ctx, Some(payload));
        self.pending(CollectiveOp::AllToAll, seq, move |ctx| {
            self.pop_outstanding(CollectiveOp::AllToAll, seq);
            let mut span =
                CommScope::open_at(ctx, CollectiveOp::AllToAll, (self.id, seq), deposit_vt);
            ctx.flush_compute();
            let (max_vt, deposits) =
                ctx.fabric().wait::<Arc<P>>((self.id, seq), self.my_index, self.size());
            self.finish_charge(
                ctx,
                CollectiveOp::AllToAll,
                max_vt,
                bytes,
                deposit_vt,
                false,
                &mut span,
            );
            span.finish(ctx);
            deposits.iter().map(|d| Arc::clone(d.as_ref().expect("all deposited"))).collect()
        })
    }

    /// Point-to-point send to another member (by member index).
    pub fn send<P: Payload>(&self, ctx: &mut RankCtx, dst: usize, tag: u64, payload: P) {
        assert!(dst < self.size() && dst != self.my_index, "send: bad destination");
        let mut span = CommScope::open(ctx, CollectiveOp::SendRecv);
        ctx.flush_compute();
        let bytes = payload.wire_size();
        let chan = (self.id, self.my_index, dst, tag);
        let send_vt = ctx.clock();
        ctx.fabric().send(chan, payload, send_vt);
        span.note_sync((self.id, chan_seq(self.my_index, dst, tag)), send_vt, send_vt);
        let link = ctx.topology.link_between(self.ranks[self.my_index], self.ranks[dst]);
        let (alpha, _) = ctx.params.link_params(link);
        span.note_cost(alpha);
        // The sender only pays injection latency; transfer time is charged
        // to the receiver (eager-send model).
        ctx.advance_comm(ctx.clock() + alpha);
        let wire = ctx.params.wire_bytes(CollectiveOp::SendRecv, 2, bytes);
        ctx.stats().record(CollectiveOp::SendRecv, wire, 0.0);
        span.note_stats(wire, 0.0);
        span.finish(ctx);
    }

    /// Point-to-point receive from another member (by member index).
    pub fn recv<P: Payload>(&self, ctx: &mut RankCtx, src: usize, tag: u64) -> P {
        assert!(src < self.size() && src != self.my_index, "recv: bad source");
        let mut span = CommScope::open(ctx, CollectiveOp::SendRecv);
        ctx.flush_compute();
        let chan = (self.id, src, self.my_index, tag);
        let entry = ctx.clock();
        let (send_vt, payload): (f64, P) = ctx.fabric().recv(chan);
        // The recv's cross-rank dependency is the sender's injection time:
        // note it as the "slowest entry" so the critical path hops there.
        span.note_sync((self.id, chan_seq(src, self.my_index, tag)), entry, send_vt);
        let link = ctx.topology.link_between(self.ranks[src], self.ranks[self.my_index]);
        let cost = ctx.params.collective_time(CollectiveOp::SendRecv, 2, payload.wire_size(), link);
        span.note_cost(cost);
        let ready = send_vt.max(ctx.clock());
        ctx.advance_comm(ready + cost);
        span.finish(ctx);
        payload
    }
}

/// A split-phase collective whose payload is already deposited in the
/// fabric. Obtained from the `*_begin` methods on [`CommGroup`]; the result
/// (and all clock/cost accounting) is produced by
/// [`PendingCollective::complete`].
///
/// Handles on one group must be completed in begin order; completing out of
/// order panics. Dropping a handle without completing it also panics — a
/// forgotten `complete` would silently desynchronize the group's SPMD
/// schedule and wedge peers at the rendezvous timeout instead.
pub struct PendingCollective<'g, R> {
    op: CollectiveOp,
    seq: u64,
    finish: Option<Box<dyn FnOnce(&mut RankCtx) -> R + 'g>>,
}

impl<'g, R> PendingCollective<'g, R> {
    /// The collective op this handle belongs to.
    pub fn op(&self) -> CollectiveOp {
        self.op
    }

    /// Blocks until the rendezvous is full, charges the non-overlapped
    /// remainder of the wait to the virtual clock, and returns the result.
    pub fn complete(mut self, ctx: &mut RankCtx) -> R {
        let finish = self.finish.take().expect("finish closure present until complete");
        finish(ctx)
    }

    /// Post-processes the eventual result (used by the owned-value wrappers
    /// to defer their counted copies to `complete`).
    fn map<S>(mut self, f: impl FnOnce(&mut RankCtx, R) -> S + 'g) -> PendingCollective<'g, S>
    where
        R: 'g,
    {
        let finish = self.finish.take().expect("finish closure present until complete");
        PendingCollective {
            op: self.op,
            seq: self.seq,
            finish: Some(Box::new(move |ctx| {
                let r = finish(ctx);
                f(ctx, r)
            })),
        }
    }
}

impl<R> Drop for PendingCollective<'_, R> {
    fn drop(&mut self) {
        if self.finish.is_some() && !std::thread::panicking() {
            panic!("split-phase {} (seq {}) dropped without complete()", self.op.name(), self.seq);
        }
    }
}

/// Folds deposits in ascending member order (deterministic reduction),
/// consuming them: member 0's buffer becomes the accumulator in place, so
/// an n-way reduction performs zero payload copies.
fn combine_parts_in_order<P: Payload>(parts: Vec<P>) -> P {
    let mut iter = parts.into_iter();
    let mut acc = iter.next().expect("non-empty group");
    for d in iter {
        acc.combine(&d);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_ids_differ_by_ranks_and_tag() {
        let a = group_id("row", &[0, 1]);
        let b = group_id("row", &[2, 3]);
        let c = group_id("col", &[0, 1]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, group_id("row", &[0, 1]));
    }

    #[test]
    fn arc_payload_delegates_size_and_combines_copy_on_write() {
        use tesseract_tensor::{DenseTensor, Matrix};
        let base = Arc::new(DenseTensor::from_matrix(Matrix::full(2, 2, 1.0)));
        assert_eq!(base.wire_size(), 16);
        // A uniquely-owned accumulator combines in place…
        let mut unique = Arc::new(DenseTensor::from_matrix(Matrix::full(2, 2, 2.0)));
        let ptr_before = Arc::as_ptr(&unique);
        unique.combine(&base);
        assert_eq!(Arc::as_ptr(&unique), ptr_before, "unique Arc must not reallocate");
        assert_eq!(unique.matrix().data(), &[3.0; 4]);
        // …while a shared one copies-on-write, leaving other holders intact.
        let mut shared = Arc::clone(&base);
        shared.combine(&base);
        assert_eq!(shared.matrix().data(), &[2.0; 4]);
        assert_eq!(base.matrix().data(), &[1.0; 4], "original holder must be untouched");
    }

    #[test]
    fn combine_parts_in_order_is_left_fold_over_member_order() {
        use tesseract_tensor::{DenseTensor, Matrix};
        let parts: Vec<DenseTensor> =
            (0..4).map(|i| DenseTensor::from_matrix(Matrix::full(1, 2, i as f32))).collect();
        let acc = combine_parts_in_order(parts);
        assert_eq!(acc.matrix().data(), &[6.0, 6.0]);
    }

    #[test]
    fn vec_payload_sizes_and_combines() {
        use tesseract_tensor::{DenseTensor, Matrix};
        let a = vec![
            DenseTensor::from_matrix(Matrix::full(2, 2, 1.0)),
            DenseTensor::from_matrix(Matrix::full(1, 2, 2.0)),
        ];
        assert_eq!(a.wire_size(), (4 + 2) * 4);
        let mut acc = a.clone();
        acc.combine(&a);
        assert_eq!(acc[0].matrix().data(), &[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(acc[1].matrix().data(), &[4.0, 4.0]);
    }
}
