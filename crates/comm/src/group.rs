//! Process groups and collectives.
//!
//! A [`CommGroup`] is one rank's handle onto a subset of ranks (a grid row,
//! column or depth fiber). Collectives mirror the NCCL/MPI operations the
//! paper's implementation uses: broadcast, reduce, all-reduce, all-gather,
//! gather, scatter, cyclic shift (Cannon), barrier and point-to-point
//! send/recv. Each call:
//!
//! 1. flushes the caller's pending compute into its virtual clock,
//! 2. rendezvouses with the other members through the [`crate::fabric::Fabric`],
//! 3. advances everyone's clock to `max(entry clocks) + α–β cost`, and
//! 4. records wire bytes / call counts once per logical operation.
//!
//! Reductions combine deposits in ascending member order, so results are
//! bitwise deterministic run-to-run.
//!
//! # Zero-copy collectives
//!
//! Read-only payloads travel as `Arc<P>`: [`CommGroup::broadcast_shared`]
//! and [`CommGroup::all_gather_shared`] hand every receiver an `Arc` clone
//! of the root's deposit — the payload is materialized exactly once per
//! rendezvous regardless of group size. [`CommGroup::reduce_shared`] and
//! [`CommGroup::all_reduce_shared`] take deposits *by value* and fold them
//! in place (ascending member order, once per rendezvous instead of once
//! per member). The owned-value collectives remain as compatibility
//! wrappers; every deep copy they make is recorded in
//! [`crate::stats::OpStats::copies`] and `Meter::payload_copies`, so the
//! cloning path is observable and copy regressions are testable.
//!
//! Ownership rule: an `Arc` returned from a shared collective may be read
//! freely but must never be mutated through `Arc::get_mut` — other ranks
//! (or the fabric slot, transiently) may hold clones. Use
//! `Arc::make_mut` for copy-on-write or clone explicitly.

use std::cell::Cell;
use std::sync::Arc;

use tesseract_tensor::TensorLike;

use crate::cost::CollectiveOp;
use crate::ctx::RankCtx;

/// Data that can travel through collectives.
pub trait Payload: Clone + Send + Sync + 'static {
    /// Size of one rank's contribution on the wire, in bytes.
    fn wire_size(&self) -> usize;
    /// Elementwise combine for reductions.
    fn combine(&mut self, other: &Self);
}

impl Payload for tesseract_tensor::DenseTensor {
    fn wire_size(&self) -> usize {
        self.byte_size()
    }

    fn combine(&mut self, other: &Self) {
        self.reduce_add_inplace(other);
    }
}

impl Payload for tesseract_tensor::ShadowTensor {
    fn wire_size(&self) -> usize {
        self.byte_size()
    }

    fn combine(&mut self, other: &Self) {
        self.reduce_add_inplace(other);
    }
}

impl Payload for () {
    fn wire_size(&self) -> usize {
        0
    }

    fn combine(&mut self, _other: &Self) {}
}

/// `Arc<P>` travels through collectives and point-to-point channels without
/// copying the inner payload (the pipeline sends activations this way).
/// Reducing through the `Arc` uses copy-on-write: uniquely-owned deposits
/// are combined in place, shared ones are cloned first.
impl<P: Payload> Payload for Arc<P> {
    fn wire_size(&self) -> usize {
        (**self).wire_size()
    }

    fn combine(&mut self, other: &Self) {
        Arc::make_mut(self).combine(other);
    }
}

impl<P: Payload> Payload for Vec<P> {
    fn wire_size(&self) -> usize {
        self.iter().map(Payload::wire_size).sum()
    }

    fn combine(&mut self, other: &Self) {
        assert_eq!(self.len(), other.len(), "Vec payload length mismatch in reduce");
        for (a, b) in self.iter_mut().zip(other.iter()) {
            a.combine(b);
        }
    }
}

/// FNV-1a over a tag and the member ranks; gives every distinct group a
/// stable identifier shared by all of its members.
fn group_id(tag: &str, ranks: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for b in tag.as_bytes() {
        eat(*b);
    }
    eat(0xff);
    for &r in ranks {
        for b in (r as u64).to_le_bytes() {
            eat(b);
        }
    }
    h
}

/// One rank's handle onto a communication group.
///
/// Contract (SPMD): every member constructs the group with the same `tag`
/// and the same rank list (same order), constructs it once, and issues the
/// same collectives in the same order.
pub struct CommGroup {
    id: u64,
    ranks: Vec<usize>,
    my_index: usize,
    seq: Cell<u64>,
}

impl CommGroup {
    /// Creates this rank's handle. `ranks` must contain `ctx.rank`.
    pub fn new(ctx: &RankCtx, tag: &str, ranks: Vec<usize>) -> Self {
        let my_index = ranks
            .iter()
            .position(|&r| r == ctx.rank)
            .unwrap_or_else(|| panic!("rank {} not a member of group '{tag}' {ranks:?}", ctx.rank));
        Self { id: group_id(tag, &ranks), ranks, my_index, seq: Cell::new(0) }
    }

    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    pub fn my_index(&self) -> usize {
        self.my_index
    }

    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    fn next_seq(&self) -> u64 {
        let s = self.seq.get();
        self.seq.set(s + 1);
        s
    }

    /// Runs one rendezvous and applies clock/cost/stat accounting.
    /// `bytes` is the per-rank payload size used by the cost formulas;
    /// `None` means the size is only known after the rendezvous (broadcast,
    /// scatter): the rendezvous is then charged as a zero-byte collective
    /// (latency only, no stats), and [`CommGroup::recharge`] applies the
    /// size-dependent cost and records stats once the size is known — the
    /// exact charging the calibrated tables were produced with.
    fn sync<P: Send + Sync + 'static>(
        &self,
        ctx: &mut RankCtx,
        op: CollectiveOp,
        bytes: Option<usize>,
        payload: Option<P>,
    ) -> Arc<Vec<Option<P>>> {
        ctx.flush_compute();
        let key = (self.id, self.next_seq());
        let entry = ctx.clock();
        let (max_vt, deposits) =
            ctx.fabric().exchange(key, self.my_index, self.size(), payload, entry);
        let link = ctx.topology.worst_link(&self.ranks);
        let cost = ctx.params.collective_time(op, self.size(), bytes.unwrap_or(0), link);
        ctx.advance_comm(max_vt + cost);
        if bytes.is_some() && self.my_index == 0 {
            let wire = ctx.params.wire_bytes(op, self.size(), bytes.unwrap_or(0));
            ctx.stats().record(op, wire, cost);
        }
        deposits
    }

    /// Runs one reducing rendezvous: deposits every member's payload by
    /// value, folds them in ascending member order exactly once (on the
    /// last-arriving rank, in place — no deposit is cloned), and hands
    /// every member an `Arc` of the combined result.
    fn sync_reduce<P: Payload>(&self, ctx: &mut RankCtx, op: CollectiveOp, payload: P) -> Arc<P> {
        ctx.flush_compute();
        let bytes = payload.wire_size();
        let key = (self.id, self.next_seq());
        let entry = ctx.clock();
        let (max_vt, combined) = ctx.fabric().exchange_reduce(
            key,
            self.my_index,
            self.size(),
            payload,
            entry,
            combine_parts_in_order,
        );
        let link = ctx.topology.worst_link(&self.ranks);
        let cost = ctx.params.collective_time(op, self.size(), bytes, link);
        ctx.advance_comm(max_vt + cost);
        if self.my_index == 0 {
            let wire = ctx.params.wire_bytes(op, self.size(), bytes);
            ctx.stats().record(op, wire, cost);
        }
        combined
    }

    /// Clones an owned value out of a shared collective result, recording
    /// the copy in both the run-wide comm stats and this rank's meter. The
    /// owned compatibility wrappers route every materialization through
    /// here so copy counts stay deterministic: broadcast/all-reduce make
    /// one per member, all-gather `n` per member, reduce one at the root.
    fn clone_counted<P: Payload>(&self, ctx: &mut RankCtx, op: CollectiveOp, payload: &P) -> P {
        let bytes = payload.wire_size() as u64;
        ctx.stats().record_copy(op, bytes);
        ctx.meter.record_payload_copy(bytes);
        payload.clone()
    }

    /// Synchronizes all members without moving data.
    pub fn barrier(&self, ctx: &mut RankCtx) {
        // Barrier cost is bytes-independent, so it is charged in `sync`
        // directly (no deferred recharge needed).
        let _ = self.sync::<()>(ctx, CollectiveOp::Barrier, Some(0), Some(()));
    }

    /// Zero-copy broadcast: the root (by member index) deposits an `Arc` of
    /// its payload — without cloning its local block — and every member
    /// (root included) receives an `Arc` clone of that single allocation.
    /// The payload is materialized exactly once per rendezvous regardless
    /// of the group size.
    pub fn broadcast_shared<P: Payload>(
        &self,
        ctx: &mut RankCtx,
        root: usize,
        payload: Option<Arc<P>>,
    ) -> Arc<P> {
        assert_eq!(
            payload.is_some(),
            self.my_index == root,
            "broadcast: exactly the root must supply the payload"
        );
        // The root's payload size drives the cost; non-roots don't know it
        // yet, so the rendezvous charges the zero-byte latency and
        // `recharge` adds the size-dependent cost identically on every
        // member once the size is known.
        let deposits = self.sync(ctx, CollectiveOp::Broadcast, None, payload);
        let value = Arc::clone(deposits[root].as_ref().expect("root deposited"));
        self.recharge(ctx, CollectiveOp::Broadcast, value.wire_size());
        value
    }

    /// Root (by member index) provides the payload; everyone receives an
    /// owned copy. Compatibility wrapper over [`CommGroup::broadcast_shared`]:
    /// makes one counted deep copy per member.
    pub fn broadcast<P: Payload>(&self, ctx: &mut RankCtx, root: usize, payload: Option<P>) -> P {
        let shared = self.broadcast_shared(ctx, root, payload.map(Arc::new));
        self.clone_counted(ctx, CollectiveOp::Broadcast, &*shared)
    }

    /// Adds the cost of an op whose byte size was only known after the
    /// rendezvous. Keeps clocks identical across members because every
    /// member executes the same re-charge.
    fn recharge(&self, ctx: &mut RankCtx, op: CollectiveOp, bytes: usize) {
        let link = ctx.topology.worst_link(&self.ranks);
        let cost = ctx.params.collective_time(op, self.size(), bytes, link);
        ctx.advance_comm(ctx.clock() + cost);
        if self.my_index == 0 {
            let wire = ctx.params.wire_bytes(op, self.size(), bytes);
            ctx.stats().record(op, wire, cost);
        }
    }

    /// In-place sum-reduction to `root`: every member's payload is consumed
    /// by value and folded without cloning; only the root receives the
    /// combined value (shared, not copied).
    pub fn reduce_shared<P: Payload>(
        &self,
        ctx: &mut RankCtx,
        root: usize,
        payload: P,
    ) -> Option<Arc<P>> {
        let combined = self.sync_reduce(ctx, CollectiveOp::Reduce, payload);
        (self.my_index == root).then_some(combined)
    }

    /// Sum-reduction to `root`, returning an owned value. Compatibility
    /// wrapper over [`CommGroup::reduce_shared`]: one counted copy at root.
    pub fn reduce<P: Payload>(&self, ctx: &mut RankCtx, root: usize, payload: P) -> Option<P> {
        let combined = self.sync_reduce(ctx, CollectiveOp::Reduce, payload);
        (self.my_index == root).then(|| self.clone_counted(ctx, CollectiveOp::Reduce, &*combined))
    }

    /// In-place sum-reduction delivered to every member as one shared
    /// allocation: payloads are consumed by value, folded exactly once (in
    /// ascending member order), never cloned.
    pub fn all_reduce_shared<P: Payload>(&self, ctx: &mut RankCtx, payload: P) -> Arc<P> {
        self.sync_reduce(ctx, CollectiveOp::AllReduce, payload)
    }

    /// Sum-reduction delivered to every member as an owned value.
    /// Compatibility wrapper over [`CommGroup::all_reduce_shared`]: one
    /// counted copy per member.
    pub fn all_reduce<P: Payload>(&self, ctx: &mut RankCtx, payload: P) -> P {
        let combined = self.sync_reduce(ctx, CollectiveOp::AllReduce, payload);
        self.clone_counted(ctx, CollectiveOp::AllReduce, &*combined)
    }

    /// Zero-copy all-gather: every member receives `Arc` clones of every
    /// member's deposit, in member order. Each payload is materialized once
    /// cluster-wide instead of once per receiver (the owned wrapper's
    /// O(n²) clones).
    pub fn all_gather_shared<P: Payload>(&self, ctx: &mut RankCtx, payload: Arc<P>) -> Vec<Arc<P>> {
        let bytes = payload.wire_size();
        let deposits = self.sync(ctx, CollectiveOp::AllGather, Some(bytes), Some(payload));
        deposits.iter().map(|d| Arc::clone(d.as_ref().expect("all deposited"))).collect()
    }

    /// Every member receives every member's payload, in member order.
    /// Compatibility wrapper over [`CommGroup::all_gather_shared`]: `n`
    /// counted copies per member.
    pub fn all_gather<P: Payload>(&self, ctx: &mut RankCtx, payload: P) -> Vec<P> {
        let shared = self.all_gather_shared(ctx, Arc::new(payload));
        shared.iter().map(|d| self.clone_counted(ctx, CollectiveOp::AllGather, &**d)).collect()
    }

    /// Root receives every member's payload, in member order (`n` counted
    /// copies, all at the root).
    pub fn gather<P: Payload>(&self, ctx: &mut RankCtx, root: usize, payload: P) -> Option<Vec<P>> {
        let bytes = payload.wire_size();
        let deposits = self.sync(ctx, CollectiveOp::Gather, Some(bytes), Some(Arc::new(payload)));
        (self.my_index == root).then(|| {
            deposits
                .iter()
                .map(|d| {
                    self.clone_counted(
                        ctx,
                        CollectiveOp::Gather,
                        &**d.as_ref().expect("all deposited"),
                    )
                })
                .collect()
        })
    }

    /// Root provides one payload per member; each member receives its own
    /// (one counted copy per member — the root's part vector is deposited
    /// whole, without cloning).
    pub fn scatter<P: Payload>(&self, ctx: &mut RankCtx, root: usize, parts: Option<Vec<P>>) -> P {
        if let Some(ref p) = parts {
            assert_eq!(p.len(), self.size(), "scatter: need one part per member");
        }
        assert_eq!(
            parts.is_some(),
            self.my_index == root,
            "scatter: exactly the root must supply the parts"
        );
        let deposits = self.sync(ctx, CollectiveOp::Scatter, None, parts.map(Arc::new));
        let all = deposits[root].as_ref().expect("root deposited");
        let mine = self.clone_counted(ctx, CollectiveOp::Scatter, &all[self.my_index]);
        self.recharge(ctx, CollectiveOp::Scatter, mine.wire_size());
        mine
    }

    /// Cyclic shift: every member sends its payload `offset` positions
    /// forward (member order, wrapping) and receives from `offset` behind
    /// (one counted copy per member). `offset` may be negative. This is
    /// Cannon's primitive.
    pub fn shift<P: Payload>(&self, ctx: &mut RankCtx, offset: isize, payload: P) -> P {
        let n = self.size() as isize;
        let bytes = payload.wire_size();
        let deposits = self.sync(ctx, CollectiveOp::Shift, Some(bytes), Some(Arc::new(payload)));
        let src = (self.my_index as isize - offset).rem_euclid(n) as usize;
        self.clone_counted(
            ctx,
            CollectiveOp::Shift,
            &**deposits[src].as_ref().expect("all deposited"),
        )
    }

    /// Point-to-point send to another member (by member index).
    pub fn send<P: Payload>(&self, ctx: &mut RankCtx, dst: usize, tag: u64, payload: P) {
        assert!(dst < self.size() && dst != self.my_index, "send: bad destination");
        ctx.flush_compute();
        let bytes = payload.wire_size();
        let chan = (self.id, self.my_index, dst, tag);
        ctx.fabric().send(chan, payload, ctx.clock());
        let link = ctx.topology.link_between(self.ranks[self.my_index], self.ranks[dst]);
        let (alpha, _) = ctx.params.link_params(link);
        // The sender only pays injection latency; transfer time is charged
        // to the receiver (eager-send model).
        ctx.advance_comm(ctx.clock() + alpha);
        let wire = ctx.params.wire_bytes(CollectiveOp::SendRecv, 2, bytes);
        ctx.stats().record(CollectiveOp::SendRecv, wire, 0.0);
    }

    /// Point-to-point receive from another member (by member index).
    pub fn recv<P: Payload>(&self, ctx: &mut RankCtx, src: usize, tag: u64) -> P {
        assert!(src < self.size() && src != self.my_index, "recv: bad source");
        ctx.flush_compute();
        let chan = (self.id, src, self.my_index, tag);
        let (send_vt, payload): (f64, P) = ctx.fabric().recv(chan);
        let link = ctx.topology.link_between(self.ranks[src], self.ranks[self.my_index]);
        let cost = ctx.params.collective_time(CollectiveOp::SendRecv, 2, payload.wire_size(), link);
        let ready = send_vt.max(ctx.clock());
        ctx.advance_comm(ready + cost);
        payload
    }
}

/// Folds deposits in ascending member order (deterministic reduction),
/// consuming them: member 0's buffer becomes the accumulator in place, so
/// an n-way reduction performs zero payload copies.
fn combine_parts_in_order<P: Payload>(parts: Vec<P>) -> P {
    let mut iter = parts.into_iter();
    let mut acc = iter.next().expect("non-empty group");
    for d in iter {
        acc.combine(&d);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_ids_differ_by_ranks_and_tag() {
        let a = group_id("row", &[0, 1]);
        let b = group_id("row", &[2, 3]);
        let c = group_id("col", &[0, 1]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, group_id("row", &[0, 1]));
    }

    #[test]
    fn arc_payload_delegates_size_and_combines_copy_on_write() {
        use tesseract_tensor::{DenseTensor, Matrix};
        let base = Arc::new(DenseTensor::from_matrix(Matrix::full(2, 2, 1.0)));
        assert_eq!(base.wire_size(), 16);
        // A uniquely-owned accumulator combines in place…
        let mut unique = Arc::new(DenseTensor::from_matrix(Matrix::full(2, 2, 2.0)));
        let ptr_before = Arc::as_ptr(&unique);
        unique.combine(&base);
        assert_eq!(Arc::as_ptr(&unique), ptr_before, "unique Arc must not reallocate");
        assert_eq!(unique.matrix().data(), &[3.0; 4]);
        // …while a shared one copies-on-write, leaving other holders intact.
        let mut shared = Arc::clone(&base);
        shared.combine(&base);
        assert_eq!(shared.matrix().data(), &[2.0; 4]);
        assert_eq!(base.matrix().data(), &[1.0; 4], "original holder must be untouched");
    }

    #[test]
    fn combine_parts_in_order_is_left_fold_over_member_order() {
        use tesseract_tensor::{DenseTensor, Matrix};
        let parts: Vec<DenseTensor> =
            (0..4).map(|i| DenseTensor::from_matrix(Matrix::full(1, 2, i as f32))).collect();
        let acc = combine_parts_in_order(parts);
        assert_eq!(acc.matrix().data(), &[6.0, 6.0]);
    }

    #[test]
    fn vec_payload_sizes_and_combines() {
        use tesseract_tensor::{DenseTensor, Matrix};
        let a = vec![
            DenseTensor::from_matrix(Matrix::full(2, 2, 1.0)),
            DenseTensor::from_matrix(Matrix::full(1, 2, 2.0)),
        ];
        assert_eq!(a.wire_size(), (4 + 2) * 4);
        let mut acc = a.clone();
        acc.combine(&a);
        assert_eq!(acc[0].matrix().data(), &[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(acc[1].matrix().data(), &[4.0, 4.0]);
    }
}
