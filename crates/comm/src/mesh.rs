//! Named-axis device meshes (Mesh-TensorFlow-style layouts).
//!
//! A [`Mesh`] arranges a contiguous block of ranks `base..base+size` as a
//! row-major multi-dimensional grid whose axes carry **names** ("depth",
//! "row", "col", "dp", …) instead of positional conventions. Layouts that
//! used to hard-code stride arithmetic (`rank = base + k·q² + i·q + j`)
//! become declarations — list the axes outermost-first — and every derived
//! quantity (coordinates, offsets, communication fibers) falls out of the
//! axis strides:
//!
//! * [`Mesh::coords_of`] / [`Mesh::offset_of`] convert between a rank
//!   offset and its per-axis coordinates;
//! * [`Mesh::fiber_ranks`] produces the rank list obtained by varying one
//!   named axis while pinning all others — exactly the membership (and
//!   member order: ascending along the axis) of a collective group over
//!   that axis;
//! * [`Mesh::fiber_group`] builds the [`CommGroup`] directly.
//!
//! The Tesseract `[q,q,d]` grid is the 3-axis mesh
//! `[("depth", d), ("row", q), ("col", q)]`; the hybrid Figure-6 world
//! prepends `("dp", dp), ("pp", pp)`; Megatron-LM's 1-D tensor parallelism
//! is the 1-axis mesh `[("tp", p)]`.

use crate::ctx::RankCtx;
use crate::group::CommGroup;

/// One named dimension of a [`Mesh`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeshAxis {
    /// Axis name, unique within its mesh (e.g. `"row"`).
    pub name: &'static str,
    /// Number of positions along the axis (≥ 1).
    pub size: usize,
}

impl MeshAxis {
    pub fn new(name: &'static str, size: usize) -> Self {
        assert!(size >= 1, "mesh axis '{name}' must have positive size");
        Self { name, size }
    }
}

/// A named-axis layout of the contiguous ranks `base..base+size`, row-major
/// with the **last** listed axis contiguous (stride 1) and the first listed
/// axis outermost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mesh {
    base: usize,
    axes: Vec<MeshAxis>,
    /// `strides[a]` = rank-offset distance between neighbors along axis `a`.
    strides: Vec<usize>,
}

impl Mesh {
    /// Builds a mesh over `base..base+Πsize` from axes listed
    /// outermost-first. Axis names must be unique.
    pub fn new(base: usize, axes: Vec<MeshAxis>) -> Self {
        assert!(!axes.is_empty(), "a mesh needs at least one axis");
        for (i, a) in axes.iter().enumerate() {
            assert!(
                axes[i + 1..].iter().all(|b| b.name != a.name),
                "duplicate mesh axis name '{}'",
                a.name
            );
        }
        let mut strides = vec![1usize; axes.len()];
        for a in (0..axes.len().saturating_sub(1)).rev() {
            strides[a] = strides[a + 1] * axes[a + 1].size;
        }
        Self { base, axes, strides }
    }

    /// First global rank of the mesh.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Total rank count (product of axis sizes).
    pub fn size(&self) -> usize {
        self.axes.iter().map(|a| a.size).product()
    }

    /// The axes, outermost-first.
    pub fn axes(&self) -> &[MeshAxis] {
        &self.axes
    }

    /// Position of the named axis, panicking with the known names on a miss
    /// (axis names are static typos-by-construction).
    pub fn axis_index(&self, name: &str) -> usize {
        self.axes.iter().position(|a| a.name == name).unwrap_or_else(|| {
            let known: Vec<&str> = self.axes.iter().map(|a| a.name).collect();
            panic!("mesh has no axis '{name}' (axes: {known:?})")
        })
    }

    /// The named axis.
    pub fn axis(&self, name: &str) -> MeshAxis {
        self.axes[self.axis_index(name)]
    }

    /// Rank-offset distance between neighbors along the named axis.
    pub fn stride(&self, name: &str) -> usize {
        self.strides[self.axis_index(name)]
    }

    /// Per-axis coordinates of a rank offset within the mesh (same order as
    /// [`Mesh::axes`]).
    pub fn coords_of(&self, offset: usize) -> Vec<usize> {
        assert!(offset < self.size(), "offset {offset} out of mesh of size {}", self.size());
        self.axes.iter().zip(&self.strides).map(|(a, &s)| (offset / s) % a.size).collect()
    }

    /// Rank offset of per-axis coordinates (inverse of [`Mesh::coords_of`]).
    pub fn offset_of(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.axes.len(), "need one coordinate per axis");
        coords
            .iter()
            .zip(self.axes.iter().zip(&self.strides))
            .map(|(&c, (a, &s))| {
                assert!(c < a.size, "coordinate {c} out of axis '{}' (size {})", a.name, a.size);
                c * s
            })
            .sum()
    }

    /// Global rank at the given coordinates.
    pub fn rank_of(&self, coords: &[usize]) -> usize {
        self.base + self.offset_of(coords)
    }

    /// Per-axis coordinates of a global rank.
    pub fn coords_of_rank(&self, rank: usize) -> Vec<usize> {
        assert!(rank >= self.base, "rank {rank} below mesh base {}", self.base);
        self.coords_of(rank - self.base)
    }

    /// The global ranks obtained by varying the named axis over its full
    /// size while pinning every other coordinate from `at` (the coordinate
    /// `at` supplies for the varied axis itself is ignored). Ordered
    /// ascending along the axis — the canonical member order of a
    /// collective group over that axis.
    pub fn fiber_ranks(&self, axis: &str, at: &[usize]) -> Vec<usize> {
        let idx = self.axis_index(axis);
        let mut coords = at.to_vec();
        (0..self.axes[idx].size)
            .map(|c| {
                coords[idx] = c;
                self.rank_of(&coords)
            })
            .collect()
    }

    /// Builds the calling rank's [`CommGroup`] over its fiber along the
    /// named axis (the rank's own coordinates pin the other axes).
    pub fn fiber_group(&self, ctx: &RankCtx, tag: &str, axis: &str) -> CommGroup {
        let coords = self.coords_of_rank(ctx.rank);
        ctx.group(tag, self.fiber_ranks(axis, &coords))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qqd(q: usize, d: usize) -> Mesh {
        Mesh::new(
            0,
            vec![MeshAxis::new("depth", d), MeshAxis::new("row", q), MeshAxis::new("col", q)],
        )
    }

    #[test]
    fn strides_are_row_major_with_last_axis_contiguous() {
        let m = qqd(4, 2);
        assert_eq!(m.stride("col"), 1);
        assert_eq!(m.stride("row"), 4);
        assert_eq!(m.stride("depth"), 16);
        assert_eq!(m.size(), 32);
    }

    #[test]
    fn coords_round_trip_over_the_whole_mesh() {
        let m = qqd(3, 2);
        for off in 0..m.size() {
            assert_eq!(m.offset_of(&m.coords_of(off)), off);
        }
    }

    #[test]
    fn layer_major_literals_are_reproduced() {
        // rank = base + k·q² + i·q + j, with coords listed [k, i, j].
        let m = qqd(4, 2);
        for k in 0..2 {
            for i in 0..4 {
                for j in 0..4 {
                    assert_eq!(m.offset_of(&[k, i, j]), k * 16 + i * 4 + j);
                }
            }
        }
    }

    #[test]
    fn fibers_vary_one_axis_in_ascending_order() {
        let m = qqd(2, 2);
        // At (k=1, i=0, j=1): the "col" fiber spans j, the "row" fiber i,
        // the "depth" fiber k.
        assert_eq!(m.fiber_ranks("col", &[1, 0, 1]), vec![4, 5]);
        assert_eq!(m.fiber_ranks("row", &[1, 0, 1]), vec![5, 7]);
        assert_eq!(m.fiber_ranks("depth", &[1, 0, 1]), vec![1, 5]);
    }

    #[test]
    fn base_offsets_all_ranks() {
        let m = Mesh::new(10, vec![MeshAxis::new("tp", 4)]);
        assert_eq!(m.rank_of(&[2]), 12);
        assert_eq!(m.coords_of_rank(13), vec![3]);
        assert_eq!(m.fiber_ranks("tp", &[0]), vec![10, 11, 12, 13]);
    }

    #[test]
    #[should_panic(expected = "duplicate mesh axis name")]
    fn duplicate_axis_names_panic() {
        Mesh::new(0, vec![MeshAxis::new("x", 2), MeshAxis::new("x", 3)]);
    }

    #[test]
    #[should_panic(expected = "no axis 'diag'")]
    fn unknown_axis_panics_with_known_names() {
        qqd(2, 1).fiber_ranks("diag", &[0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of axis 'row'")]
    fn out_of_range_coordinate_panics() {
        qqd(2, 1).offset_of(&[0, 2, 0]);
    }
}
