//! # tesseract-comm
//!
//! The simulated multi-GPU cluster that substitutes for the paper's
//! 64xA100 testbed (see DESIGN.md §2 for the substitution argument).
//!
//! * One OS thread per rank executes an SPMD closure ([`Cluster::run`]).
//! * [`CommGroup`] provides NCCL-style collectives over arbitrary rank
//!   subsets (grid rows / columns / depth fibers).
//! * Timing is **virtual**: tensor ops charge a [`tesseract_tensor::Meter`],
//!   collectives synchronize clocks and add α–β costs from [`CostParams`]
//!   over the [`Topology`]'s NVLink/InfiniBand links. Results are therefore
//!   deterministic and independent of host load — a single-core laptop
//!   reproduces the same Table 1/Table 2 numbers as a large workstation.
//! * [`CommStats`] captures exact per-collective call counts and wire bytes,
//!   which the analysis binaries compare against the paper's closed-form
//!   communication claims.

pub mod cluster;
pub mod cost;
pub mod ctx;
pub mod fabric;
pub mod group;
pub mod mesh;
pub mod runconfig;
pub mod stats;
pub mod topology;

pub use cluster::{Cluster, RunOutput};
pub use cost::{CollectiveOp, CostParams, PhasedCost};
pub use ctx::{RankCtx, RankReport};
pub use group::{CommGroup, Payload, PendingCollective};
pub use mesh::{Mesh, MeshAxis};
pub use runconfig::RunConfig;
pub use stats::{CommStats, OpStats, StatsCollector};
pub use topology::{GroupPlacement, Link, NodeArrangement, Topology};
